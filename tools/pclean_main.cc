#include <iostream>
#include <string>
#include <vector>

#include "tools/pclean_cli.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return privateclean::RunPcleanCli(args, std::cout, std::cerr);
}
