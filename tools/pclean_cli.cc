#include "tools/pclean_cli.h"

#include <chrono>
#include <csignal>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <thread>

#include "common/string_util.h"
#include "core/privateclean.h"
#include "server/client.h"
#include "server/server.h"

namespace privateclean {

namespace {

/// Parsed command line: flag -> values (repeatable flags keep all).
struct ParsedArgs {
  std::map<std::string, std::vector<std::string>> flags;

  bool Has(const std::string& name) const { return flags.count(name) > 0; }

  Result<std::string> One(const std::string& name) const {
    auto it = flags.find(name);
    if (it == flags.end() || it->second.empty()) {
      return Status::InvalidArgument("missing required flag --" + name);
    }
    if (it->second.size() > 1) {
      return Status::InvalidArgument("flag --" + name +
                                     " given more than once");
    }
    return it->second[0];
  }

  const std::vector<std::string>& All(const std::string& name) const {
    static const std::vector<std::string> kEmpty;
    auto it = flags.find(name);
    return it == flags.end() ? kEmpty : it->second;
  }
};

Result<ParsedArgs> ParseFlags(const std::vector<std::string>& args,
                              size_t start) {
  ParsedArgs parsed;
  for (size_t i = start; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg.rfind("--", 0) != 0 || arg.size() <= 2) {
      return Status::InvalidArgument("expected a --flag, got '" + arg +
                                     "'");
    }
    std::string name = arg.substr(2);
    // --flag=value or --flag value.
    if (auto eq = name.find('='); eq != std::string::npos) {
      parsed.flags[name.substr(0, eq)].push_back(name.substr(eq + 1));
    } else if (name == "direct") {  // Boolean flags.
      parsed.flags[name].push_back("true");
    } else {
      if (i + 1 >= args.size()) {
        return Status::InvalidArgument("flag --" + name +
                                       " expects a value");
      }
      parsed.flags[name].push_back(args[++i]);
    }
  }
  return parsed;
}

Result<double> ParseFlagDouble(const ParsedArgs& args,
                               const std::string& name) {
  PCLEAN_ASSIGN_OR_RETURN(std::string text, args.One(name));
  return ParseDouble(text);
}

/// --mechanism NAME [--beta B]: the randomization family for discrete
/// attributes (privacy/mechanism.h). Defaults to the paper's GRR; the
/// spec is validated here so a typo'd family name fails before any I/O.
Result<MechanismSpec> ParseMechanismFlags(const ParsedArgs& args) {
  MechanismSpec mechanism;
  if (args.Has("mechanism")) {
    PCLEAN_ASSIGN_OR_RETURN(mechanism.name, args.One("mechanism"));
  }
  if (args.Has("beta")) {
    PCLEAN_ASSIGN_OR_RETURN(double beta, ParseFlagDouble(args, "beta"));
    mechanism.params["beta"] = beta;
  }
  PCLEAN_RETURN_NOT_OK(ValidateMechanismSpec(mechanism));
  return mechanism;
}

/// --csv-split MODE: record-splitting strategy for CSV ingest. "auto"
/// (default) uses the speculative-split parallel parser for large inputs
/// when --threads > 1, "serial" forces the single-pass parser, and
/// "speculative" forces the parallel parser; output is identical in
/// every mode.
Result<CsvSplitMode> ParseCsvSplitMode(const ParsedArgs& args) {
  if (!args.Has("csv-split")) return CsvSplitMode::kAuto;
  PCLEAN_ASSIGN_OR_RETURN(std::string mode, args.One("csv-split"));
  if (mode == "auto") return CsvSplitMode::kAuto;
  if (mode == "serial") return CsvSplitMode::kSerial;
  if (mode == "speculative") return CsvSplitMode::kSpeculative;
  return Status::InvalidArgument(
      "--csv-split expects auto, serial, or speculative; got '" + mode +
      "'");
}

/// --threads N: scan/randomization parallelism. 1 = single-threaded
/// (default), 0 = all hardware threads. Output is identical at every
/// setting; only wall-clock time changes.
Result<ExecutionOptions> ParseExecOptions(const ParsedArgs& args) {
  ExecutionOptions exec;
  if (args.Has("threads")) {
    PCLEAN_ASSIGN_OR_RETURN(std::string text, args.One("threads"));
    PCLEAN_ASSIGN_OR_RETURN(int64_t threads, ParseInt64(text));
    if (threads < 0) {
      return Status::InvalidArgument("--threads must be >= 0");
    }
    exec.num_threads = static_cast<size_t>(threads);
  }
  return exec;
}

void PrintUsage(std::ostream& out) {
  out << "pclean - PrivateClean command-line tool\n"
         "\n"
         "  pclean privatize --input data.csv --output release_dir\n"
         "         (--epsilon E | --p P --b B | --count-error TARGET)\n"
         "         [--mechanism grr|hlm|sampling] [--beta B]\n"
         "         [--seed N] [--threads N] [--csv-split MODE]\n"
         "  pclean info --release release_dir\n"
         "  pclean verify release_dir\n"
         "  pclean query --release release_dir --sql \"SELECT ...\"\n"
         "         [--direct] [--confidence C] [--threads N]\n"
         "         [--bootstrap R] [--seed N] [--replace attr:from=to]...\n"
         "         [--ledger ledger_dir --tenant NAME]\n"
         "  pclean query --connect SOCKET --sql \"SELECT ...\"\n"
         "         [--tenant NAME] [--release BIND_NAME] [--direct]\n"
         "         [--confidence C]\n"
         "  pclean budget grant --ledger ledger_dir --tenant NAME --epsilon E\n"
         "  pclean budget relax --ledger ledger_dir --tenant NAME --epsilon E\n"
         "  pclean budget show --ledger ledger_dir [--tenant NAME]\n"
         "  pclean serve release_dir... --socket PATH [--ledger ledger_dir]\n"
         "         [--pool-threads N] [--threads N] [--idle-timeout-ms N]\n"
         "         [--serve-for-ms N]\n"
         "\n"
         "  verify checks every release file against the MANIFEST checksums\n"
         "  and exits non-zero on any corruption (Data loss), a missing\n"
         "  release (Not found), or an unverifiable pre-manifest release\n"
         "  (Failed precondition).\n"
         "\n"
         "  --mechanism picks the discrete randomization family: grr\n"
         "  (paper generalized randomized response, the default), hlm\n"
         "  (Holohan-Leith-Mason optimal RR; --p is the per-attribute\n"
         "  target epsilon), or sampling (subsample-then-randomize; --p is\n"
         "  the inner randomization probability, --beta the sampling\n"
         "  rate in (0, 1]). --count-error tuning is grr-only.\n"
         "  --threads N uses N worker threads for randomization and query\n"
         "  scans (0 = all hardware threads); results are independent of N.\n"
         "  --csv-split MODE picks the ingest record splitter: auto\n"
         "  (speculative parallel split for large inputs, the default),\n"
         "  serial, or speculative; parsed records are identical in every\n"
         "  mode.\n"
         "  --bootstrap R wraps median/percentile/var/std estimates in a\n"
         "  bootstrap confidence interval with R replicates (needs R >= 10;\n"
         "  the replicate loop also threads per --threads). --seed fixes\n"
         "  the resampling stream.\n"
         "  budget manages per-tenant epsilon budgets in a crash-safe\n"
         "  ledger directory (WAL + checkpoint). grant opens or tops up a\n"
         "  tenant's budget, relax returns unspent epsilon after a\n"
         "  data-cleaning relaxation, and show prints granted/spent/\n"
         "  remaining. query with --ledger and --tenant charges the\n"
         "  query's epsilon cost against the tenant BEFORE executing and\n"
         "  rejects overdrafts (Resource exhausted) without running the\n"
         "  query.\n"
         "  serve opens the releases read-only and multiplexes analyst\n"
         "  sessions over a Unix-domain socket; query --connect runs the\n"
         "  same query through a session and prints the identical bytes.\n"
         "  With --ledger the server charges every session's queries\n"
         "  against its tenant's budget. --pool-threads sizes the session\n"
         "  scheduler (1 serializes all sessions; results never depend on\n"
         "  it). serve drains gracefully on SIGTERM/SIGINT, or after\n"
         "  --serve-for-ms milliseconds.\n";
}

Status RunPrivatize(const ParsedArgs& args, std::ostream& out) {
  PCLEAN_ASSIGN_OR_RETURN(std::string input, args.One("input"));
  PCLEAN_ASSIGN_OR_RETURN(std::string output, args.One("output"));

  std::ifstream f(input, std::ios::binary);
  if (!f) return Status::IOError("cannot open '" + input + "'");
  std::ostringstream buffer;
  buffer << f.rdbuf();
  std::string text = buffer.str();

  CsvOptions csv_options;
  csv_options.error_context = input;
  PCLEAN_ASSIGN_OR_RETURN(csv_options.exec, ParseExecOptions(args));
  PCLEAN_ASSIGN_OR_RETURN(csv_options.split, ParseCsvSplitMode(args));
  // Schema inference splits records with the same options, so a forced
  // speculative mode covers the whole ingest path.
  PCLEAN_ASSIGN_OR_RETURN(Schema schema, InferCsvSchema(text, csv_options));
  PCLEAN_ASSIGN_OR_RETURN(Table table, CsvToTable(text, schema, csv_options));

  uint64_t seed = 0;
  if (args.Has("seed")) {
    PCLEAN_ASSIGN_OR_RETURN(std::string seed_text, args.One("seed"));
    PCLEAN_ASSIGN_OR_RETURN(int64_t parsed, ParseInt64(seed_text));
    seed = static_cast<uint64_t>(parsed);
  }
  Rng rng(seed != 0 ? seed : 0x9E3779B97F4A7C15ULL);

  PCLEAN_ASSIGN_OR_RETURN(MechanismSpec mechanism,
                          ParseMechanismFlags(args));

  GrrParams params;
  if (args.Has("epsilon")) {
    PCLEAN_ASSIGN_OR_RETURN(double epsilon, ParseFlagDouble(args, "epsilon"));
    PCLEAN_ASSIGN_OR_RETURN(
        params, AllocateEpsilonBudget(table, epsilon, {}, mechanism));
  } else if (args.Has("count-error")) {
    if (mechanism.name != "grr") {
      return Status::InvalidArgument(
          "--count-error tuning models the paper's GRR estimator; use "
          "--epsilon (or --p/--b) with --mechanism " + mechanism.name);
    }
    PCLEAN_ASSIGN_OR_RETURN(double target,
                            ParseFlagDouble(args, "count-error"));
    PCLEAN_ASSIGN_OR_RETURN(TuningResult tuning,
                            TunePrivacyParameters(table, target));
    params = ToGrrParams(tuning);
  } else if (args.Has("p") && args.Has("b")) {
    // --p is the family's per-attribute parameter: the replacement
    // probability for grr, the target epsilon for hlm, the inner
    // randomization probability p0 for sampling.
    PCLEAN_ASSIGN_OR_RETURN(double p, ParseFlagDouble(args, "p"));
    PCLEAN_ASSIGN_OR_RETURN(double b, ParseFlagDouble(args, "b"));
    params = GrrParams::Uniform(p, b);
  } else {
    return Status::InvalidArgument(
        "privatize needs --epsilon, --count-error, or both --p and --b");
  }

  GrrOptions grr_options;
  grr_options.mechanism = mechanism;
  grr_options.exec = csv_options.exec;
  PCLEAN_ASSIGN_OR_RETURN(GrrOutput grr,
                          ApplyGrr(table, params, grr_options, rng));
  PCLEAN_RETURN_NOT_OK(WriteRelease(grr, output, csv_options.exec));
  PCLEAN_ASSIGN_OR_RETURN(PrivacyReport report,
                          AccountPrivacy(grr.metadata));
  out << "wrote release: " << output << "\n";
  out << "  rows: " << grr.table.num_rows() << "\n";
  out << "  mechanism: " << RenderMechanismSpec(grr.metadata.mechanism_spec)
      << "\n";
  out << "  total epsilon: " << FormatDouble(report.total_epsilon) << "\n";
  if (grr.total_regenerations > 0) {
    out << "  regenerations: " << grr.total_regenerations << "\n";
  }
  return Status::OK();
}

Status RunInfo(const ParsedArgs& args, std::ostream& out) {
  PCLEAN_ASSIGN_OR_RETURN(std::string dir, args.One("release"));
  PCLEAN_ASSIGN_OR_RETURN(LoadedRelease release, ReadRelease(dir));
  PCLEAN_ASSIGN_OR_RETURN(PrivacyReport report,
                          AccountPrivacy(release.metadata));
  out << "release: " << dir << "\n";
  out << "  rows: " << release.relation.num_rows() << "\n";
  out << "  mechanism: "
      << RenderMechanismSpec(release.metadata.mechanism_spec) << "\n";
  out << "  attributes:\n";
  const Schema& schema = release.relation.schema();
  for (size_t i = 0; i < schema.num_fields(); ++i) {
    const Field& field = schema.field(i);
    out << "    " << field.name << " ("
        << AttributeKindToString(field.kind) << " "
        << ValueTypeToString(field.type) << ")";
    if (field.kind == AttributeKind::kDiscrete) {
      const auto& meta = release.metadata.discrete.at(field.name);
      out << "  p=" << FormatDouble(meta.p)
          << "  N=" << meta.domain.size();
    } else {
      const auto& meta = release.metadata.numeric.at(field.name);
      out << "  b=" << FormatDouble(meta.b)
          << "  sensitivity=" << FormatDouble(meta.sensitivity);
    }
    out << "  epsilon="
        << FormatDouble(report.per_attribute_epsilon.at(field.name))
        << "\n";
  }
  out << "  total epsilon: " << FormatDouble(report.total_epsilon) << "\n";
  return Status::OK();
}

Status RunVerify(const ParsedArgs& args, std::string dir, std::ostream& out) {
  if (dir.empty()) {
    PCLEAN_ASSIGN_OR_RETURN(dir, args.One("release"));
  }
  PCLEAN_ASSIGN_OR_RETURN(ReleaseVerification verification,
                          VerifyRelease(dir));
  out << "release: " << dir << "\n";
  out << "  format: v" << verification.format_version << "\n";
  out << "  rows: " << verification.rows << "\n";
  for (const ReleaseFileCheck& check : verification.files) {
    out << "  " << check.file << "  " << check.bytes << " bytes  "
        << (check.status.ok() ? "OK" : check.status.ToString()) << "\n";
  }
  if (!verification.status.ok()) return verification.status;
  out << "verification: OK\n";
  return Status::OK();
}

/// Parses a --replace rule "attr:from=to" with values typed by the
/// attribute's column type.
Status ApplyReplaceRule(PrivateTable* table, const std::string& rule) {
  auto colon = rule.find(':');
  auto eq = rule.find('=', colon == std::string::npos ? 0 : colon + 1);
  if (colon == std::string::npos || eq == std::string::npos ||
      colon == 0 || eq <= colon + 1) {
    return Status::InvalidArgument(
        "--replace expects attr:from=to, got '" + rule + "'");
  }
  std::string attr = rule.substr(0, colon);
  std::string from_text = rule.substr(colon + 1, eq - colon - 1);
  std::string to_text = rule.substr(eq + 1);
  PCLEAN_ASSIGN_OR_RETURN(Field field,
                          table->relation().schema().FieldByName(attr));
  auto typed = [&](const std::string& text) -> Result<Value> {
    if (text == "\\N") return Value::Null();
    switch (field.type) {
      case ValueType::kInt64: {
        PCLEAN_ASSIGN_OR_RETURN(int64_t v, ParseInt64(text));
        return Value(v);
      }
      case ValueType::kDouble: {
        PCLEAN_ASSIGN_OR_RETURN(double v, ParseDouble(text));
        return Value(v);
      }
      default:
        return Value(text);
    }
  };
  PCLEAN_ASSIGN_OR_RETURN(Value from, typed(from_text));
  PCLEAN_ASSIGN_OR_RETURN(Value to, typed(to_text));
  return table->Clean(
      FindReplace::Single(attr, std::move(from), std::move(to)));
}

/// `pclean query --connect SOCKET`: the same query, served. The client
/// sends one QUERY frame and prints the RESULT payload verbatim, which
/// the server rendered through the exact functions the local path below
/// uses — so the bytes match a local `pclean query` over the same
/// release.
Status RunServedQuery(const ParsedArgs& args, std::ostream& out) {
  // Execution-owning flags make no sense here: the server owns the
  // table, the ledger, and the threading.
  for (const char* banned :
       {"ledger", "replace", "bootstrap", "seed", "threads", "csv-split"}) {
    if (args.Has(banned)) {
      return Status::InvalidArgument(
          std::string("--") + banned +
          " does not apply with --connect: the server owns execution");
    }
  }
  PCLEAN_ASSIGN_OR_RETURN(std::string socket_path, args.One("connect"));
  server::QueryRequest request;
  PCLEAN_ASSIGN_OR_RETURN(request.sql, args.One("sql"));
  request.direct = args.Has("direct");
  if (args.Has("confidence")) {
    PCLEAN_ASSIGN_OR_RETURN(request.confidence,
                            ParseFlagDouble(args, "confidence"));
  }
  std::string tenant;
  if (args.Has("tenant")) {
    PCLEAN_ASSIGN_OR_RETURN(tenant, args.One("tenant"));
  }
  // --release names the server-side bind name (directory basename);
  // empty binds the server's default release.
  std::string release;
  if (args.Has("release")) {
    PCLEAN_ASSIGN_OR_RETURN(release, args.One("release"));
  }
  PCLEAN_ASSIGN_OR_RETURN(
      server::Client client,
      server::Client::Connect(socket_path, tenant, release));
  PCLEAN_ASSIGN_OR_RETURN(std::string text, client.Query(request));
  out << text;
  // Polite close; a drain racing the BYE is not this query's failure.
  (void)client.Bye();
  return Status::OK();
}

Status RunQuery(const ParsedArgs& args, std::ostream& out) {
  if (args.Has("connect")) return RunServedQuery(args, out);
  PCLEAN_ASSIGN_OR_RETURN(std::string dir, args.One("release"));
  PCLEAN_ASSIGN_OR_RETURN(std::string sql, args.One("sql"));
  QueryOptions options;
  if (args.Has("confidence")) {
    PCLEAN_ASSIGN_OR_RETURN(options.confidence,
                            ParseFlagDouble(args, "confidence"));
  }
  PCLEAN_ASSIGN_OR_RETURN(options.exec, ParseExecOptions(args));
  if (args.Has("bootstrap")) {
    PCLEAN_ASSIGN_OR_RETURN(std::string text, args.One("bootstrap"));
    PCLEAN_ASSIGN_OR_RETURN(int64_t replicates, ParseInt64(text));
    if (replicates < 10) {
      return Status::InvalidArgument("--bootstrap needs >= 10 replicates");
    }
    options.bootstrap_replicates = static_cast<size_t>(replicates);
  }
  if (args.Has("seed")) {
    PCLEAN_ASSIGN_OR_RETURN(std::string seed_text, args.One("seed"));
    PCLEAN_ASSIGN_OR_RETURN(int64_t seed, ParseInt64(seed_text));
    if (seed != 0) options.bootstrap_seed = static_cast<uint64_t>(seed);
  }
  PCLEAN_ASSIGN_OR_RETURN(PrivateTable table, OpenRelease(dir, options.exec));
  for (const std::string& rule : args.All("replace")) {
    PCLEAN_RETURN_NOT_OK(ApplyReplaceRule(&table, rule));
  }
  // Admission control: with a ledger and tenant, the query's epsilon
  // cost is charged durably BEFORE any execution; an overdraft rejects
  // the query (Resource exhausted) with zero side effects on results.
  if (args.Has("ledger") || args.Has("tenant")) {
    if (!args.Has("ledger") || !args.Has("tenant")) {
      return Status::InvalidArgument(
          "--ledger and --tenant go together: both are needed to charge "
          "a query against a budget");
    }
    PCLEAN_ASSIGN_OR_RETURN(std::string ledger_dir, args.One("ledger"));
    PCLEAN_ASSIGN_OR_RETURN(std::string tenant, args.One("tenant"));
    PCLEAN_ASSIGN_OR_RETURN(BudgetLedger ledger,
                            BudgetLedger::Open(ledger_dir));
    PCLEAN_ASSIGN_OR_RETURN(AdmissionTicket ticket,
                            AdmitSqlQuery(ledger, tenant, table, sql));
    // A zero-cost query (no private attributes referenced) is admitted
    // even for a tenant the ledger has never seen; BudgetOrZero reads
    // such a tenant as all-zero.
    out << RenderAdmissionLine(tenant, ticket, ledger.BudgetOrZero(tenant));
  }
  // Rendering is shared with the server's RESULT payload
  // (RenderSqlResultText), which is what keeps a served answer
  // byte-identical to this local one.
  if (args.Has("direct")) {
    PCLEAN_ASSIGN_OR_RETURN(SqlResultSet rs,
                            ExecuteSqlQueryDirect(table, sql, options.exec));
    RenderSqlResultText(rs, /*direct=*/true, options.confidence, out);
    return Status::OK();
  }
  PCLEAN_ASSIGN_OR_RETURN(SqlResultSet rs, ExecuteSqlQuery(table, sql, options));
  RenderSqlResultText(rs, /*direct=*/false, options.confidence, out);
  return Status::OK();
}

/// Set by SIGTERM/SIGINT while `pclean serve` runs; the serve loop
/// polls it and drains gracefully.
volatile std::sig_atomic_t g_serve_stop = 0;
void HandleServeSignal(int) { g_serve_stop = 1; }

/// `pclean serve <release_dir>... --socket PATH`: the analyst session
/// daemon. Blocks until SIGTERM/SIGINT (or --serve-for-ms elapses, the
/// signal-free bound tests and the soak harness use), then drains:
/// in-flight and queued queries are answered, every session gets a
/// GOODBYE, and the socket is unlinked.
Status RunServe(const ParsedArgs& args,
                const std::vector<std::string>& release_dirs,
                std::ostream& out) {
  if (release_dirs.empty()) {
    return Status::InvalidArgument(
        "serve expects at least one release directory");
  }
  server::ServerOptions options;
  PCLEAN_ASSIGN_OR_RETURN(options.socket_path, args.One("socket"));
  options.release_dirs = release_dirs;
  if (args.Has("ledger")) {
    PCLEAN_ASSIGN_OR_RETURN(options.ledger_dir, args.One("ledger"));
  }
  if (args.Has("pool-threads")) {
    PCLEAN_ASSIGN_OR_RETURN(std::string text, args.One("pool-threads"));
    PCLEAN_ASSIGN_OR_RETURN(int64_t threads, ParseInt64(text));
    if (threads < 0) {
      return Status::InvalidArgument("--pool-threads must be >= 0");
    }
    options.pool_threads = static_cast<int>(threads);
  }
  PCLEAN_ASSIGN_OR_RETURN(options.query_exec, ParseExecOptions(args));
  if (args.Has("idle-timeout-ms")) {
    PCLEAN_ASSIGN_OR_RETURN(std::string text, args.One("idle-timeout-ms"));
    PCLEAN_ASSIGN_OR_RETURN(int64_t timeout, ParseInt64(text));
    if (timeout < 0) {
      return Status::InvalidArgument("--idle-timeout-ms must be >= 0");
    }
    options.idle_timeout_ms = static_cast<int>(timeout);
  }
  int64_t serve_for_ms = -1;
  if (args.Has("serve-for-ms")) {
    PCLEAN_ASSIGN_OR_RETURN(std::string text, args.One("serve-for-ms"));
    PCLEAN_ASSIGN_OR_RETURN(serve_for_ms, ParseInt64(text));
    if (serve_for_ms <= 0) {
      return Status::InvalidArgument("--serve-for-ms must be > 0");
    }
  }
  PCLEAN_ASSIGN_OR_RETURN(server::Server srv, server::Server::Start(options));
  out << "serving " << release_dirs.size()
      << (release_dirs.size() == 1 ? " release" : " releases") << " on "
      << srv.socket_path() << "\n";
  out.flush();
  g_serve_stop = 0;
  struct sigaction action;
  struct sigaction old_term;
  struct sigaction old_int;
  std::memset(&action, 0, sizeof action);
  action.sa_handler = HandleServeSignal;
  sigemptyset(&action.sa_mask);
  ::sigaction(SIGTERM, &action, &old_term);
  ::sigaction(SIGINT, &action, &old_int);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(serve_for_ms);
  while (g_serve_stop == 0 &&
         (serve_for_ms < 0 || std::chrono::steady_clock::now() < deadline)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  ::sigaction(SIGTERM, &old_term, nullptr);
  ::sigaction(SIGINT, &old_int, nullptr);
  PCLEAN_RETURN_NOT_OK(srv.Drain());
  out << "drained: " << srv.sessions_accepted() << " sessions, "
      << srv.queries_served() << " queries\n";
  return Status::OK();
}

void PrintTenantBudget(const std::string& tenant, const TenantBudget& budget,
                       std::ostream& out) {
  out << "  " << tenant << "  granted=" << FormatDouble(budget.granted)
      << "  spent=" << FormatDouble(budget.spent)
      << "  remaining=" << FormatDouble(budget.remaining()) << "\n";
}

/// `pclean budget <grant|relax|show>`: crash-safe per-tenant epsilon
/// accounts. grant/relax append a durable WAL record before reporting
/// success; show is read-only.
Status RunBudget(const ParsedArgs& args, const std::string& action,
                 std::ostream& out) {
  if (action.empty()) {
    return Status::InvalidArgument(
        "budget expects an action: grant, relax, or show");
  }
  PCLEAN_ASSIGN_OR_RETURN(std::string dir, args.One("ledger"));
  PCLEAN_ASSIGN_OR_RETURN(BudgetLedger ledger, BudgetLedger::Open(dir));
  if (action == "show") {
    out << "ledger: " << dir << "\n";
    if (args.Has("tenant")) {
      PCLEAN_ASSIGN_OR_RETURN(std::string tenant, args.One("tenant"));
      PCLEAN_ASSIGN_OR_RETURN(TenantBudget budget, ledger.Budget(tenant));
      PrintTenantBudget(tenant, budget, out);
      return Status::OK();
    }
    PCLEAN_ASSIGN_OR_RETURN(auto tenants, ledger.Snapshot());
    for (const auto& [tenant, budget] : tenants) {
      PrintTenantBudget(tenant, budget, out);
    }
    if (tenants.empty()) out << "  (no tenants)\n";
    return Status::OK();
  }
  if (action != "grant" && action != "relax") {
    return Status::InvalidArgument("unknown budget action '" + action +
                                   "': expected grant, relax, or show");
  }
  PCLEAN_ASSIGN_OR_RETURN(std::string tenant, args.One("tenant"));
  PCLEAN_ASSIGN_OR_RETURN(double epsilon, ParseFlagDouble(args, "epsilon"));
  if (action == "grant") {
    PCLEAN_RETURN_NOT_OK(ledger.Grant(tenant, epsilon));
  } else {
    PCLEAN_RETURN_NOT_OK(ledger.Relax(tenant, epsilon));
  }
  PCLEAN_ASSIGN_OR_RETURN(TenantBudget budget, ledger.Budget(tenant));
  out << action << " epsilon " << FormatDouble(epsilon) << ":\n";
  PrintTenantBudget(tenant, budget, out);
  return Status::OK();
}

}  // namespace

int RunPcleanCli(const std::vector<std::string>& args, std::ostream& out,
                 std::ostream& err) {
  if (args.empty() || args[0] == "help" || args[0] == "--help") {
    PrintUsage(out);
    return args.empty() ? 1 : 0;
  }
  const std::string& command = args[0];
  // `pclean verify <dir>` takes its release directory positionally;
  // the --release flag form works too. `pclean budget <action>` takes
  // its action positionally.
  // `pclean serve <dir>...` takes its release directories positionally.
  std::string verify_dir;
  std::string budget_action;
  std::vector<std::string> serve_dirs;
  size_t flag_start = 1;
  if (command == "serve") {
    while (flag_start < args.size() &&
           args[flag_start].rfind("--", 0) != 0) {
      serve_dirs.push_back(args[flag_start++]);
    }
  }
  if (command == "verify" && args.size() > 1 &&
      args[1].rfind("--", 0) != 0) {
    verify_dir = args[1];
    flag_start = 2;
  }
  if (command == "budget" && args.size() > 1 &&
      args[1].rfind("--", 0) != 0) {
    budget_action = args[1];
    flag_start = 2;
  }
  auto parsed = ParseFlags(args, flag_start);
  if (!parsed.ok()) {
    err << "pclean: " << parsed.status().ToString() << "\n";
    return 1;
  }
  Status st;
  if (command == "privatize") {
    st = RunPrivatize(*parsed, out);
  } else if (command == "info") {
    st = RunInfo(*parsed, out);
  } else if (command == "query") {
    st = RunQuery(*parsed, out);
  } else if (command == "verify") {
    st = RunVerify(*parsed, std::move(verify_dir), out);
  } else if (command == "budget") {
    st = RunBudget(*parsed, budget_action, out);
  } else if (command == "serve") {
    st = RunServe(*parsed, serve_dirs, out);
  } else {
    err << "pclean: unknown command '" << command << "'\n";
    PrintUsage(err);
    return 1;
  }
  if (!st.ok()) {
    err << "pclean " << command << ": " << st.ToString() << "\n";
    return 1;
  }
  return 0;
}

}  // namespace privateclean
