#ifndef PRIVATECLEAN_TOOLS_PCLEAN_CLI_H_
#define PRIVATECLEAN_TOOLS_PCLEAN_CLI_H_

#include <ostream>
#include <string>
#include <vector>

namespace privateclean {

/// The `pclean` command-line tool, as a testable function: `args` are
/// the arguments after the program name; normal output goes to `out`,
/// diagnostics to `err`; the return value is the process exit code.
///
/// Subcommands:
///
///   pclean privatize --input data.csv --output release_dir
///          (--epsilon E | --p P --b B | --count-error TARGET)
///          [--seed N]
///       Reads a CSV (schema inferred: numeric columns become numerical
///       attributes, the rest discrete), privatizes it with GRR, and
///       writes a release directory.
///
///   pclean info --release release_dir
///       Prints the release's size, schema, per-attribute and total ε.
///
///   pclean verify <release_dir>
///       Checks every file of the release against its MANIFEST (byte
///       length and CRC32C, plus a full parse) and reports per-file
///       results. Exits non-zero on corruption, a missing release, or
///       a pre-manifest (v1) release, which has no checksums to check.
///
///   pclean query --release release_dir --sql "SELECT ..."
///          [--direct] [--confidence C] [--replace attr:from=to]...
///       Opens a release, optionally applies find-and-replace cleaning
///       rules, and runs the query with the PrivateClean estimator
///       (or the Direct baseline with --direct).
int RunPcleanCli(const std::vector<std::string>& args, std::ostream& out,
                 std::ostream& err);

}  // namespace privateclean

#endif  // PRIVATECLEAN_TOOLS_PCLEAN_CLI_H_
