// Constraint-based cleaning on a private relation (the paper's TPC-DS
// scenario, §8.3.4). The customer_address projection carries two data
// quality constraints:
//
//   FD:  (ca_city, ca_county) -> ca_state
//   MD:  ca_country ~ ca_country under edit distance <= 1
//
// The provider releases a privatized copy of the corrupted table; the
// analyst detects the violations on the private relation, repairs them
// with the standard algorithms (majority-vote FD repair, edit-distance
// MD clustering), and runs GROUP BY-style counts with corrected
// estimates.

#include <cstdio>

#include "core/privateclean.h"
#include "datagen/tpcds.h"

using namespace privateclean;

int main() {
  Rng rng(95054);
  TpcdsOptions options;
  options.num_rows = 2000;
  Table address = *GenerateCustomerAddress(options, rng);

  // Corrupt it the way the paper does: random state replacements (FD
  // violations) and one-character country typos (MD violations).
  if (!CorruptStates(&address, 150, rng).ok()) return 1;
  if (!CorruptCountries(&address, 150, rng).ok()) return 1;

  auto fd_violations = FindFdViolations(address, CustomerAddressFd());
  auto md_clusters = FindMdClusters(address, CustomerAddressMd());
  std::printf("customer_address: %zu rows\n", address.num_rows());
  std::printf("  FD %s: %zu violating groups\n",
              CustomerAddressFd().ToString().c_str(),
              fd_violations->size());
  std::printf("  %s: %zu mergeable clusters\n\n",
              CustomerAddressMd().ToString().c_str(),
              md_clusters->size());

  // --- Provider: privatize the (still dirty) table ----------------------
  auto private_table = PrivateTable::Create(
      address, GrrParams::Uniform(/*p=*/0.1, /*b=*/0.0), GrrOptions{}, rng);
  if (!private_table.ok()) {
    std::fprintf(stderr, "privatize: %s\n",
                 private_table.status().ToString().c_str());
    return 1;
  }

  // --- Analyst: repair both constraints on the private relation ---------
  CleaningPipeline pipeline;
  pipeline.Emplace<FdRepair>(CustomerAddressFd());
  pipeline.Emplace<MdRepair>(CustomerAddressMd());
  Status st = private_table->Clean(pipeline);
  if (!st.ok()) {
    std::fprintf(stderr, "clean: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("Applied pipeline: %zu stages\n", pipeline.size());
  for (const std::string& stage : pipeline.StageNames()) {
    std::printf("  - %s\n", stage.c_str());
  }

  // Ground truth: the same repairs on the non-private dirty table.
  Table truth = address.Clone();
  if (!FdRepair(CustomerAddressFd()).Apply(&truth).ok()) return 1;
  if (!MdRepair(CustomerAddressMd()).Apply(&truth).ok()) return 1;

  // --- GROUP BY ca_country via corrected per-group counts ---------------
  auto truth_groups = *GroupByCount(truth, "ca_country");
  std::printf("\nGROUP BY ca_country (top groups):\n");
  std::printf("  %-16s %10s %14s %10s\n", "country", "true",
              "PrivateClean", "Direct");
  int shown = 0;
  // std::map iterates alphabetically; show the 5 largest instead.
  std::vector<std::pair<Value, size_t>> sorted(truth_groups.begin(),
                                               truth_groups.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  for (const auto& [country, true_count] : sorted) {
    if (shown++ >= 5) break;
    Predicate pred = Predicate::Equals("ca_country", country);
    auto pc = private_table->Count(pred);
    auto direct = private_table->ExecuteDirect(AggregateQuery::Count(pred));
    std::printf("  %-16s %10zu %14.1f %10.1f\n",
                country.ToString().c_str(), true_count,
                pc.ok() ? pc->estimate : -1.0,
                direct.ok() ? direct->estimate : -1.0);
  }

  // Provenance introspection: the country graph shows the MD merges.
  auto graph = private_table->ProvenanceFor("ca_country");
  if (graph.ok()) {
    std::printf("\nProvenance(ca_country): %zu dirty values -> %zu clean "
                "values, %zu edges, fork-free=%s\n",
                graph->num_dirty_values(), graph->num_clean_values(),
                graph->num_edges(), graph->is_fork_free() ? "yes" : "no");
  }
  return 0;
}
