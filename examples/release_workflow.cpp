// The full provider -> analyst handoff through a release directory.
//
// The provider privatizes a dirty relation under a total epsilon budget
// and writes a self-contained release (data.csv + mechanism metadata +
// randomization-time domains). A separate analyst process — simulated
// here by forgetting everything except the directory path — opens the
// release cold, cleans it, and queries it with corrected estimates.
// Everything in the release is a public parameter of the mechanism, so
// shipping it does not weaken the epsilon guarantee.

#include <cstdio>
#include <filesystem>

#include "core/privateclean.h"
#include "datagen/error_injection.h"
#include "datagen/synthetic.h"

using namespace privateclean;

namespace {

/// Provider side: build dirty data, privatize under an epsilon budget,
/// write the release. Returns the repair map the analyst will apply and
/// the ground truth needed to score the demo (a real provider would
/// keep neither).
struct ProviderOutput {
  std::unordered_map<Value, Value, ValueHash> repair_map;
  double truth_count = 0.0;
};

Result<ProviderOutput> RunProvider(const std::string& dir) {
  Rng rng(77);
  SyntheticOptions options;
  options.num_rows = 2000;
  PCLEAN_ASSIGN_OR_RETURN(Table base, GenerateSynthetic(options, rng));
  PCLEAN_ASSIGN_OR_RETURN(
      InjectionResult injected,
      InjectMixedErrors(base, "category", /*error_rate=*/0.3,
                        /*merge_fraction=*/0.5, rng));

  const double budget = 4.0;
  PCLEAN_ASSIGN_OR_RETURN(GrrParams params,
                          AllocateEpsilonBudget(injected.dirty, budget));
  PCLEAN_ASSIGN_OR_RETURN(
      GrrOutput grr, ApplyGrr(injected.dirty, params, GrrOptions{}, rng));
  PCLEAN_RETURN_NOT_OK(WriteRelease(grr, dir));
  PCLEAN_ASSIGN_OR_RETURN(PrivacyReport report,
                          AccountPrivacy(grr.metadata));
  std::printf("[provider] wrote release to %s (S=%zu, epsilon=%.3f)\n",
              dir.c_str(), grr.table.num_rows(), report.total_epsilon);

  ProviderOutput out;
  out.repair_map = injected.repair_map;
  Predicate pred = Predicate::In(
      "category", {SyntheticCategory(0), SyntheticCategory(1),
                   SyntheticCategory(2)});
  PCLEAN_ASSIGN_OR_RETURN(
      out.truth_count,
      ExecuteAggregate(injected.clean, AggregateQuery::Count(pred)));
  return out;
}

/// Analyst side: open the release cold, clean, query.
Status RunAnalyst(const std::string& dir,
                  const std::unordered_map<Value, Value, ValueHash>&
                      repair_map,
                  double truth_count) {
  PCLEAN_ASSIGN_OR_RETURN(PrivateTable pt, OpenRelease(dir));
  std::printf("[analyst]  opened release: %zu rows, epsilon=%.3f\n",
              pt.size(), pt.PrivacyAccounting()->total_epsilon);

  PCLEAN_RETURN_NOT_OK(pt.Clean(FindReplace("category", repair_map)));
  std::printf("[analyst]  repaired %zu value-level errors\n",
              repair_map.size());

  Predicate pred = Predicate::In(
      "category", {SyntheticCategory(0), SyntheticCategory(1),
                   SyntheticCategory(2)});
  PCLEAN_ASSIGN_OR_RETURN(QueryResult count, pt.Count(pred));
  PCLEAN_ASSIGN_OR_RETURN(
      QueryResult direct, pt.ExecuteDirect(AggregateQuery::Count(pred)));
  std::printf("[analyst]  count(category in top-3):\n");
  std::printf("             PrivateClean %.1f  95%% CI [%.1f, %.1f]\n",
              count.estimate, count.ci.lo, count.ci.hi);
  std::printf("             Direct       %.1f\n", direct.estimate);
  std::printf("             (truth, known only to this demo: %.0f)\n",
              truth_count);

  // Corrected GROUP BY over the whole cleaned domain.
  PCLEAN_ASSIGN_OR_RETURN(auto groups, pt.GroupByCountEstimate("category"));
  std::printf("[analyst]  corrected GROUP BY category: %zu groups, "
              "estimates sum to %.1f\n",
              groups.size(), [&] {
                double total = 0.0;
                for (const auto& [value, r] : groups) total += r.estimate;
                return total;
              }());
  return Status::OK();
}

}  // namespace

int main() {
  std::string dir =
      (std::filesystem::temp_directory_path() / "privateclean_release")
          .string();
  auto provider = RunProvider(dir);
  if (!provider.ok()) {
    std::fprintf(stderr, "provider: %s\n",
                 provider.status().ToString().c_str());
    return 1;
  }
  Status st = RunAnalyst(dir, provider->repair_map, provider->truth_count);
  if (!st.ok()) {
    std::fprintf(stderr, "analyst: %s\n", st.ToString().c_str());
    return 1;
  }
  std::filesystem::remove_all(dir);
  return 0;
}
