// Course-evaluation analysis on a private relation (the paper's MCAFE
// scenario, §8.5). A provider releases privatized student evaluations —
// country code and enthusiasm score — and the analyst aggregates
// European students against the rest, a semantic transformation that is
// only possible because GRR keeps the values human-readable (unlike
// encryption, §2.3). Demonstrates:
//   * parameter tuning from a target count accuracy (Appendix E),
//   * Extract cleaners creating a derived region attribute,
//   * corrected count/avg with confidence intervals vs Direct,
//   * epsilon accounting before release.

#include <cstdio>

#include "core/privateclean.h"
#include "datagen/mcafe.h"

using namespace privateclean;

int main() {
  Rng rng(2016);
  Table evaluations = *GenerateMcafe(McafeOptions{}, rng);
  std::printf("Collected %zu course evaluations.\n\n",
              evaluations.num_rows());
  std::printf("%s\n", evaluations.ToString(5).c_str());

  // --- Provider: pick privacy parameters from an accuracy target --------
  // "Any count query should be within 7 points of selectivity with 95%
  // confidence."
  auto tuning = TunePrivacyParameters(evaluations, /*max_count_error=*/0.07,
                                      /*confidence=*/0.95);
  if (!tuning.ok()) {
    std::fprintf(stderr, "tuning: %s\n",
                 tuning.status().ToString().c_str());
    return 1;
  }
  std::printf("Tuned parameters: p=%.3f, b(enthusiasm)=%.3f "
              "(per-attribute epsilon %.3f)\n",
              tuning->p, tuning->numeric_b.at("enthusiasm"),
              tuning->per_attribute_epsilon);

  GrrOptions grr_options;
  grr_options.ensure_domain_preserved = false;  // High distinct fraction.
  auto private_table = PrivateTable::Create(
      evaluations, ToGrrParams(*tuning), grr_options, rng);
  if (!private_table.ok()) {
    std::fprintf(stderr, "privatize: %s\n",
                 private_table.status().ToString().c_str());
    return 1;
  }
  PrivacyReport report = *private_table->PrivacyAccounting();
  std::printf("Released private relation with total epsilon %.3f\n\n",
              report.total_epsilon);

  // --- Analyst: derive a region attribute and aggregate -----------------
  ExtractAttribute derive_region(
      "region", {"country"}, [](const std::vector<Value>& tuple) {
        if (tuple[0].is_null()) return Value("unknown");
        return Value(McafeIsEurope(tuple[0]) ? "europe" : "other");
      });
  Status st = private_table->Clean(derive_region);
  if (!st.ok()) {
    std::fprintf(stderr, "clean: %s\n", st.ToString().c_str());
    return 1;
  }

  Predicate europe = Predicate::Equals("region", "europe");
  auto count = private_table->Count(europe);
  auto avg = private_table->Avg("enthusiasm", europe);
  auto direct_count =
      private_table->ExecuteDirect(AggregateQuery::Count(europe));

  // Ground truth (provider side, for demonstration only).
  Predicate truth_pred = Predicate::Udf("country", McafeIsEurope);
  double truth_count =
      *ExecuteAggregate(evaluations, AggregateQuery::Count(truth_pred));
  double truth_avg = *ExecuteAggregate(
      evaluations, AggregateQuery::Avg("enthusiasm", truth_pred));

  std::printf("European students:\n");
  std::printf("  true count    : %.0f\n", truth_count);
  if (count.ok()) {
    std::printf("  PrivateClean  : %.1f   95%% CI [%.1f, %.1f]\n",
                count->estimate, count->ci.lo, count->ci.hi);
  }
  if (direct_count.ok()) {
    std::printf("  Direct        : %.1f\n", direct_count->estimate);
  }
  std::printf("\nAverage enthusiasm (European students):\n");
  std::printf("  true          : %.3f\n", truth_avg);
  if (avg.ok()) {
    std::printf("  PrivateClean  : %.3f   95%% CI [%.3f, %.3f]\n",
                avg->estimate, avg->ci.lo, avg->ci.hi);
  }

  // --- Extension aggregates (§10) ---------------------------------------
  AggregateQuery median{AggregateType::kMedian, "enthusiasm", europe, 50.0};
  auto med = private_table->ExtendedAggregate(median);
  AggregateQuery stddev{AggregateType::kStd, "enthusiasm", std::nullopt,
                        50.0};
  auto sd = private_table->ExtendedAggregate(stddev);
  if (med.ok() && sd.ok()) {
    std::printf("\nExtensions: median enthusiasm (Europe) = %.2f, "
                "noise-corrected std (all) = %.2f\n",
                *med, *sd);
  }
  return 0;
}
