// Quickstart: the course-evaluation scenario from the paper's Figure 1.
//
// A provider holds a relation R(major, score) with inconsistent major
// spellings. It releases an ε-locally-differentially-private version; the
// analyst resolves the inconsistencies on the *private* relation and asks
// for the average score of Mechanical Engineers. PrivateClean's corrected
// estimator answers with a confidence interval; we compare against the
// Direct (uncorrected) baseline and the ground truth.

#include <cstdio>

#include "core/privateclean.h"
#include "table/table_builder.h"

using namespace privateclean;

namespace {

/// Builds the original (non-private, dirty) relation: 400 students over
/// a handful of majors, where "Mechanical Engineering" is also written
/// "Mech. Eng." and "Mechanical E.".
Result<Table> BuildCourseEvaluations(Rng& rng) {
  PCLEAN_ASSIGN_OR_RETURN(
      Schema schema,
      Schema::Make({Field::Discrete("major", ValueType::kString),
                    Field::Numerical("score", ValueType::kDouble)}));
  const char* spellings[] = {"Mechanical Engineering", "Mech. Eng.",
                             "Mechanical E."};
  const char* majors[] = {"EECS", "Civil Engineering", "Math", "Physics",
                          "Chemistry", "Biology", "History", "Economics"};
  TableBuilder builder(schema);
  for (int i = 0; i < 400; ++i) {
    double score;
    Value major;
    if (rng.Bernoulli(0.3)) {  // A mechanical engineer, some spelling.
      major = Value(spellings[rng.UniformInt(3)]);
      score = 3.2 + rng.Gaussian(0.0, 0.8);
    } else {
      major = Value(majors[rng.UniformInt(8)]);
      score = 3.8 + rng.Gaussian(0.0, 0.9);
    }
    builder.Row({major, Value(std::clamp(score, 0.0, 5.0))});
  }
  return builder.Finish();
}

}  // namespace

int main() {
  Rng rng(2016);

  auto original = BuildCourseEvaluations(rng);
  if (!original.ok()) {
    std::fprintf(stderr, "generate: %s\n",
                 original.status().ToString().c_str());
    return 1;
  }

  // --- Provider side: privatize with GRR --------------------------------
  GrrParams params = GrrParams::Uniform(/*p=*/0.15, /*b=*/0.5);
  auto private_table =
      PrivateTable::Create(*original, params, GrrOptions{}, rng);
  if (!private_table.ok()) {
    std::fprintf(stderr, "privatize: %s\n",
                 private_table.status().ToString().c_str());
    return 1;
  }
  auto report = private_table->PrivacyAccounting();
  std::printf("Private relation created: S=%zu, total epsilon=%.3f\n",
              private_table->size(), report->total_epsilon);

  // --- Analyst side: clean the private relation -------------------------
  std::unordered_map<Value, Value, ValueHash> fixes{
      {Value("Mechanical Engineering"), Value("Mech. Eng.")},
      {Value("Mechanical E."), Value("Mech. Eng.")},
  };
  Status st =
      private_table->Clean(FindReplace("major", std::move(fixes)));
  if (!st.ok()) {
    std::fprintf(stderr, "clean: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("Resolved major spellings on the private relation.\n\n");

  // --- Query: AVG(score) WHERE major = 'Mech. Eng.' ----------------------
  Predicate pred = Predicate::Equals("major", "Mech. Eng.");
  auto pc = private_table->Avg("score", pred);
  auto direct = private_table->ExecuteDirect(
      AggregateQuery::Avg("score", pred));
  if (!pc.ok() || !direct.ok()) {
    std::fprintf(stderr, "query failed\n");
    return 1;
  }

  // Ground truth: the same cleaning applied to the original relation.
  Table truth = original->Clone();
  std::unordered_map<Value, Value, ValueHash> fixes2{
      {Value("Mechanical Engineering"), Value("Mech. Eng.")},
      {Value("Mechanical E."), Value("Mech. Eng.")},
  };
  (void)FindReplace("major", std::move(fixes2)).Apply(&truth);
  auto truth_avg =
      ExecuteAggregate(truth, AggregateQuery::Avg("score", pred));

  std::printf("AVG(score) WHERE major = 'Mech. Eng.'\n");
  std::printf("  ground truth : %.4f\n", *truth_avg);
  std::printf("  PrivateClean : %.4f   95%% CI [%.4f, %.4f]\n",
              pc->estimate, pc->ci.lo, pc->ci.hi);
  std::printf("  Direct       : %.4f\n", direct->estimate);
  std::printf("\nEstimator internals: p=%.2f  l=%.1f  N=%.0f\n", pc->p,
              pc->l, pc->n);
  return 0;
}
