// Sensor-network log analysis on a private relation (the paper's
// IntelWireless scenario, §8.4). Sensor ids identify physical locations
// and must stay private; the logs contain failure episodes with spurious
// or missing ids and garbage readings. The analyst merges the spurious
// ids to NULL on the *private* relation and queries the healthy rows.
// Demonstrates:
//   * epsilon-matched privacy across discrete and numerical attributes,
//   * the Theorem 2 size bound and domain-preservation regeneration,
//   * MergeToNull cleaning with IS NOT NULL predicates,
//   * the paper's counter-intuitive result that the cleaned private
//     relation can beat the dirty original.

#include <cmath>
#include <cstdio>

#include "core/privateclean.h"
#include "datagen/intel_wireless.h"

using namespace privateclean;

int main() {
  Rng rng(2016);
  IntelWirelessOptions options;
  options.num_rows = 20000;
  IntelWirelessData data = *GenerateIntelWireless(options, rng);
  std::printf("Sensor log: %zu rows from %zu sensors (%.1f%% failures)\n",
              data.dirty.num_rows(), options.num_sensors,
              options.failure_rate * 100.0);

  // --- Provider: check the Theorem 2 bound, then privatize --------------
  const double p = 0.2;
  Domain id_domain = *Domain::FromColumn(data.dirty, "sensor_id");
  size_t min_size =
      *MinDatasetSizeForDomainPreservation(id_domain.size(), p, 0.05);
  std::printf("Theorem 2: need >= %zu rows for 95%% domain preservation "
              "(have %zu, N=%zu) -> expected regenerations %.3f\n",
              min_size, data.dirty.num_rows(), id_domain.size(),
              *ExpectedRegenerations(id_domain.size(), p,
                                     data.dirty.num_rows()));

  // epsilon-matched Laplace scales: every numerical attribute carries the
  // same epsilon as the id attribute.
  double eps = *EpsilonForRandomizedResponse(p);
  GrrParams params;
  params.default_p = p;
  for (const char* attr : {"temp", "humidity", "light"}) {
    double delta =
        *ColumnSensitivity(**data.dirty.ColumnByName(attr));
    params.numeric_b[attr] = *LaplaceScaleForEpsilon(delta, eps);
  }
  auto private_table =
      PrivateTable::Create(data.dirty, params, GrrOptions{}, rng);
  if (!private_table.ok()) {
    std::fprintf(stderr, "privatize: %s\n",
                 private_table.status().ToString().c_str());
    return 1;
  }
  std::printf("Released private log with total epsilon %.3f "
              "(4 attributes x %.3f)\n\n",
              private_table->PrivacyAccounting()->total_epsilon, eps);

  // --- Analyst: merge spurious ids to NULL, then query ------------------
  Status st = private_table->Clean(
      MergeToNull("sensor_id", data.is_spurious));
  if (!st.ok()) {
    std::fprintf(stderr, "clean: %s\n", st.ToString().c_str());
    return 1;
  }

  Predicate healthy = Predicate::IsNotNull("sensor_id");
  auto count = private_table->Count(healthy);
  auto avg_temp = private_table->Avg("temp", healthy);

  double truth_count =
      *ExecuteAggregate(data.clean, AggregateQuery::Count(healthy));
  double truth_avg =
      *ExecuteAggregate(data.clean, AggregateQuery::Avg("temp", healthy));
  double dirty_avg =
      *ExecuteAggregate(data.dirty, AggregateQuery::Avg("temp", healthy));

  std::printf("count(*) WHERE sensor_id IS NOT NULL\n");
  std::printf("  true                   : %.0f\n", truth_count);
  if (count.ok()) {
    std::printf("  PrivateClean (cleaned) : %.1f   95%% CI [%.1f, %.1f]\n",
                count->estimate, count->ci.lo, count->ci.hi);
  }
  std::printf("\navg(temp) WHERE sensor_id IS NOT NULL\n");
  std::printf("  true                   : %.3f\n", truth_avg);
  if (avg_temp.ok()) {
    std::printf("  PrivateClean (cleaned) : %.3f   95%% CI [%.3f, %.3f]\n",
                avg_temp->estimate, avg_temp->ci.lo, avg_temp->ci.hi);
  }
  std::printf("  dirty original, no priv: %.3f (error %.2f%%)\n",
              dirty_avg,
              100.0 * std::abs(dirty_avg - truth_avg) /
                  std::abs(truth_avg));
  if (avg_temp.ok()) {
    double pc_err = 100.0 * std::abs(avg_temp->estimate - truth_avg) /
                    std::abs(truth_avg);
    std::printf("\n%s\n",
                pc_err < 100.0 * std::abs(dirty_avg - truth_avg) /
                             std::abs(truth_avg)
                    ? "-> cleaning + privacy beat the dirty raw data "
                      "(privacy adds error, cleaning removes more)."
                    : "-> at this privacy level the dirty raw data was "
                      "still closer.");
  }

  // Per-sensor drill-down for one healthy sensor.
  Predicate s1 = Predicate::Equals("sensor_id", "s1");
  auto s1_count = private_table->Count(s1);
  if (s1_count.ok()) {
    double s1_truth =
        *ExecuteAggregate(data.clean, AggregateQuery::Count(s1));
    std::printf("\nSensor s1 rows: true %.0f, estimated %.1f "
                "[%.1f, %.1f]\n",
                s1_truth, s1_count->estimate, s1_count->ci.lo,
                s1_count->ci.hi);
  }
  return 0;
}
