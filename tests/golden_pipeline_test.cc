#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "core/privateclean.h"
#include "datagen/synthetic.h"
#include "table/csv.h"

// Golden end-to-end regression: a fixed-seed run of the full pipeline —
// synthetic dirty relation → CSV round trip through the speculative-split
// parser → GRR privatization → Transform cleaning (which rebuilds the
// provenance graph) → COUNT/SUM/AVG estimates — bit-compared against a
// checked-in golden file. Estimates and confidence bounds are serialized
// as raw IEEE-754 hex, so any change to the parser, the sharded
// estimator passes, the RNG forking discipline, or the provenance cut
// that perturbs even the last ulp of any result fails this test. Runs at
// 1, 2, and 8 threads (label `determinism`, so scripts/verify.sh also
// runs it under TSan): every thread count must reproduce the same file.

#ifndef PCLEAN_TEST_DATA_DIR
#error "PCLEAN_TEST_DATA_DIR must point at the tests/ source directory"
#endif

namespace privateclean {
namespace {

std::string HexBits(double v) {
  uint64_t bits;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(bits));
  return buf;
}

/// Runs the whole pipeline at `threads` and renders every estimate as
/// "name <estimate-bits> <ci.lo-bits> <ci.hi-bits>" lines.
std::string RunPipeline(size_t threads) {
  ExecutionOptions exec;
  exec.num_threads = threads;

  // Provider side: a skewed synthetic relation, serialized to CSV and
  // ingested through the speculative-split parser with chunks small
  // enough that the 400-row text spans many chunk boundaries.
  SyntheticOptions data_options;
  data_options.num_rows = 400;
  data_options.num_distinct = 20;
  data_options.zipf_skew = 1.5;
  Rng data_rng(777);
  Table dirty = *GenerateSynthetic(data_options, data_rng);

  CsvOptions csv;
  csv.null_literal = "\\N";
  csv.exec = exec;
  csv.split = CsvSplitMode::kSpeculative;
  csv.split_chunk_bytes = 256;
  std::string text = TableToCsv(dirty, csv);
  Table ingested = *CsvToTable(text, dirty.schema(), csv);

  GrrOptions grr_options;
  grr_options.exec = exec;
  Rng grr_rng(4242);
  PrivateTable pt = *PrivateTable::Create(
      ingested, GrrParams::Uniform(0.25, 5.0), grr_options, grr_rng);

  // Analyst side: merge two categories (a Transform), which invalidates
  // and lazily rebuilds the provenance graph inside the queries below.
  EXPECT_TRUE(pt.Clean(FindReplace::Single("category", SyntheticCategory(3),
                                           SyntheticCategory(0)))
                  .ok());

  QueryOptions query_options;
  query_options.exec = exec;
  const char* queries[][2] = {
      {"count_c0", "SELECT count(1) FROM r WHERE category = 'c0'"},
      {"count_c7", "SELECT count(1) FROM r WHERE category = 'c7'"},
      {"sum_c0", "SELECT sum(value) FROM r WHERE category = 'c0'"},
      {"avg_c1", "SELECT avg(value) FROM r WHERE category = 'c1'"},
      {"avg_all", "SELECT avg(value) FROM r"},
  };
  std::ostringstream out;
  for (const auto& q : queries) {
    QueryResult r = *ExecuteSql(pt, q[1], query_options);
    out << q[0] << " " << HexBits(r.estimate) << " " << HexBits(r.ci.lo)
        << " " << HexBits(r.ci.hi) << "\n";
  }

  // The grown grammar: range predicates, boolean WHERE trees, IN lists —
  // all collapse to one predicate and route through the same corrected
  // estimators, so their estimates golden-pin the vectorized comparison
  // and mask-combination kernels too.
  const char* grown[][2] = {
      {"count_range", "SELECT count(1) FROM r WHERE category >= 'c2' AND "
                      "category < 'c6'"},
      {"count_not_or", "SELECT count(1) FROM r WHERE NOT (category = 'c0' "
                       "OR category = 'c1')"},
      {"count_in", "SELECT count(1) FROM r WHERE category IN ('c1', 'c2', "
                   "'c5')"},
      {"sum_range", "SELECT sum(value) FROM r WHERE category <= 'c1'"},
  };
  for (const auto& q : grown) {
    QueryResult r = *ExecuteSql(pt, q[1], query_options);
    out << q[0] << " " << HexBits(r.estimate) << " " << HexBits(r.ci.lo)
        << " " << HexBits(r.ci.hi) << "\n";
  }

  // Grouped rows: keys and per-group corrected estimates, after ORDER BY
  // estimate / LIMIT shaping.
  SqlResultSet grouped = *ExecuteSqlQuery(
      pt,
      "SELECT count(1) FROM r GROUP BY category ORDER BY count(1) DESC "
      "LIMIT 3",
      query_options);
  for (const SqlRow& row : grouped.rows) {
    out << "group_" << RenderSqlLiteral(*row.group) << " "
        << HexBits(row.result.estimate) << " " << HexBits(row.result.ci.lo)
        << " " << HexBits(row.result.ci.hi) << "\n";
  }
  return out.str();
}

TEST(GoldenPipelineTest, EstimatesMatchCheckedInGoldenAtEveryThreadCount) {
  const std::string golden_path =
      std::string(PCLEAN_TEST_DATA_DIR) + "/golden/e2e_pipeline.golden";
  std::ifstream f(golden_path, std::ios::binary);
  ASSERT_TRUE(f) << "missing golden file " << golden_path
                 << "; expected content is:\n"
                 << RunPipeline(1);
  std::ostringstream buffer;
  buffer << f.rdbuf();
  const std::string golden = buffer.str();

  for (size_t threads : {1u, 2u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const std::string got = RunPipeline(threads);
    EXPECT_EQ(got, golden)
        << "pipeline output diverged from " << golden_path
        << " — if the change is intentional, regenerate the golden file "
           "with the printed content";
  }
}

}  // namespace
}  // namespace privateclean
