#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/privateclean.h"
#include "core/release.h"
#include "core/sql_execution.h"
#include "datagen/synthetic.h"
#include "privacy/grr.h"
#include "server/client.h"
#include "server/server.h"
#include "table/csv.h"

// Golden end-to-end regression: a fixed-seed run of the full pipeline —
// synthetic dirty relation → CSV round trip through the speculative-split
// parser → GRR privatization → Transform cleaning (which rebuilds the
// provenance graph) → COUNT/SUM/AVG estimates — bit-compared against a
// checked-in golden file. Estimates and confidence bounds are serialized
// as raw IEEE-754 hex, so any change to the parser, the sharded
// estimator passes, the RNG forking discipline, or the provenance cut
// that perturbs even the last ulp of any result fails this test. Runs at
// 1, 2, and 8 threads (label `determinism`, so scripts/verify.sh also
// runs it under TSan): every thread count must reproduce the same file.

#ifndef PCLEAN_TEST_DATA_DIR
#error "PCLEAN_TEST_DATA_DIR must point at the tests/ source directory"
#endif

namespace privateclean {
namespace {

std::string HexBits(double v) {
  uint64_t bits;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(bits));
  return buf;
}

/// Runs the whole pipeline at `threads` and renders every estimate as
/// "name <estimate-bits> <ci.lo-bits> <ci.hi-bits>" lines.
std::string RunPipeline(size_t threads) {
  ExecutionOptions exec;
  exec.num_threads = threads;

  // Provider side: a skewed synthetic relation, serialized to CSV and
  // ingested through the speculative-split parser with chunks small
  // enough that the 400-row text spans many chunk boundaries.
  SyntheticOptions data_options;
  data_options.num_rows = 400;
  data_options.num_distinct = 20;
  data_options.zipf_skew = 1.5;
  Rng data_rng(777);
  Table dirty = *GenerateSynthetic(data_options, data_rng);

  CsvOptions csv;
  csv.null_literal = "\\N";
  csv.exec = exec;
  csv.split = CsvSplitMode::kSpeculative;
  csv.split_chunk_bytes = 256;
  std::string text = TableToCsv(dirty, csv);
  Table ingested = *CsvToTable(text, dirty.schema(), csv);

  GrrOptions grr_options;
  grr_options.exec = exec;
  Rng grr_rng(4242);
  PrivateTable pt = *PrivateTable::Create(
      ingested, GrrParams::Uniform(0.25, 5.0), grr_options, grr_rng);

  // Analyst side: merge two categories (a Transform), which invalidates
  // and lazily rebuilds the provenance graph inside the queries below.
  EXPECT_TRUE(pt.Clean(FindReplace::Single("category", SyntheticCategory(3),
                                           SyntheticCategory(0)))
                  .ok());

  QueryOptions query_options;
  query_options.exec = exec;
  const char* queries[][2] = {
      {"count_c0", "SELECT count(1) FROM r WHERE category = 'c0'"},
      {"count_c7", "SELECT count(1) FROM r WHERE category = 'c7'"},
      {"sum_c0", "SELECT sum(value) FROM r WHERE category = 'c0'"},
      {"avg_c1", "SELECT avg(value) FROM r WHERE category = 'c1'"},
      {"avg_all", "SELECT avg(value) FROM r"},
  };
  std::ostringstream out;
  for (const auto& q : queries) {
    QueryResult r = *ExecuteSql(pt, q[1], query_options);
    out << q[0] << " " << HexBits(r.estimate) << " " << HexBits(r.ci.lo)
        << " " << HexBits(r.ci.hi) << "\n";
  }

  // The grown grammar: range predicates, boolean WHERE trees, IN lists —
  // all collapse to one predicate and route through the same corrected
  // estimators, so their estimates golden-pin the vectorized comparison
  // and mask-combination kernels too.
  const char* grown[][2] = {
      {"count_range", "SELECT count(1) FROM r WHERE category >= 'c2' AND "
                      "category < 'c6'"},
      {"count_not_or", "SELECT count(1) FROM r WHERE NOT (category = 'c0' "
                       "OR category = 'c1')"},
      {"count_in", "SELECT count(1) FROM r WHERE category IN ('c1', 'c2', "
                   "'c5')"},
      {"sum_range", "SELECT sum(value) FROM r WHERE category <= 'c1'"},
  };
  for (const auto& q : grown) {
    QueryResult r = *ExecuteSql(pt, q[1], query_options);
    out << q[0] << " " << HexBits(r.estimate) << " " << HexBits(r.ci.lo)
        << " " << HexBits(r.ci.hi) << "\n";
  }

  // Grouped rows: keys and per-group corrected estimates, after ORDER BY
  // estimate / LIMIT shaping.
  SqlResultSet grouped = *ExecuteSqlQuery(
      pt,
      "SELECT count(1) FROM r GROUP BY category ORDER BY count(1) DESC "
      "LIMIT 3",
      query_options);
  for (const SqlRow& row : grouped.rows) {
    out << "group_" << RenderSqlLiteral(*row.group) << " "
        << HexBits(row.result.estimate) << " " << HexBits(row.result.ci.lo)
        << " " << HexBits(row.result.ci.hi) << "\n";
  }
  return out.str();
}

TEST(GoldenPipelineTest, EstimatesMatchCheckedInGoldenAtEveryThreadCount) {
  const std::string golden_path =
      std::string(PCLEAN_TEST_DATA_DIR) + "/golden/e2e_pipeline.golden";
  std::ifstream f(golden_path, std::ios::binary);
  ASSERT_TRUE(f) << "missing golden file " << golden_path
                 << "; expected content is:\n"
                 << RunPipeline(1);
  std::ostringstream buffer;
  buffer << f.rdbuf();
  const std::string golden = buffer.str();

  for (size_t threads : {1u, 2u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const std::string got = RunPipeline(threads);
    EXPECT_EQ(got, golden)
        << "pipeline output diverged from " << golden_path
        << " — if the change is intentional, regenerate the golden file "
           "with the printed content";
  }
}

// Served determinism: the answer an analyst gets over a `pclean serve`
// session must be byte-identical to what a local `pclean query` prints
// for the same SQL over the same release — both ends render through
// RenderSqlResultText, and the session pool must not perturb a single
// bit of it at any pool size. Label `server` puts this under the
// sanitizer passes of scripts/verify.sh as well.
TEST(GoldenPipelineTest, ServedResultsAreByteIdenticalToLocalAtEveryPoolSize) {
  SyntheticOptions data_options;
  data_options.num_rows = 400;
  data_options.num_distinct = 20;
  data_options.zipf_skew = 1.5;
  Rng data_rng(777);
  Table dirty = *GenerateSynthetic(data_options, data_rng);
  GrrOptions grr_options;
  Rng grr_rng(4242);
  GrrOutput grr =
      *ApplyGrr(dirty, GrrParams::Uniform(0.25, 5.0), grr_options, grr_rng);
  const std::string dir = ::testing::TempDir() + "/pclean_golden_served";
  std::filesystem::remove_all(dir);
  ASSERT_TRUE(WriteRelease(grr, dir).ok());

  const double confidence = 0.9;
  const char* sqls[] = {
      "SELECT count(1) FROM r WHERE category = 'c0'",
      "SELECT sum(value) FROM r WHERE category IN ('c1', 'c2')",
      "SELECT avg(value) FROM r",
      "SELECT count(1) FROM r GROUP BY category ORDER BY count(1) DESC "
      "LIMIT 3",
  };
  // The local `pclean query` rendering of each result.
  PrivateTable local = *OpenRelease(dir);
  QueryOptions query_options;
  query_options.confidence = confidence;
  std::vector<std::string> expected;
  for (const char* sql : sqls) {
    SqlResultSet rs = *ExecuteSqlQuery(local, sql, query_options);
    std::ostringstream text;
    RenderSqlResultText(rs, /*direct=*/false, confidence, text);
    expected.push_back(text.str());
  }

  for (size_t pool : {1u, 2u, 8u}) {
    SCOPED_TRACE("pool_threads=" + std::to_string(pool));
    server::ServerOptions options;
    // Under /tmp, not the gtest temp dir: sun_path caps at ~107 bytes.
    options.socket_path = "/tmp/pcsrv_gold_" + std::to_string(::getpid()) +
                          "_" + std::to_string(pool) + ".sock";
    options.release_dirs = {dir};
    options.pool_threads = pool;
    auto srv = server::Server::Start(options);
    ASSERT_TRUE(srv.ok()) << srv.status().ToString();
    auto client = server::Client::Connect(options.socket_path);
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    for (size_t i = 0; i < expected.size(); ++i) {
      auto reply = client->Query(sqls[i], /*direct=*/false, confidence);
      ASSERT_TRUE(reply.ok()) << reply.status().ToString();
      EXPECT_EQ(*reply, expected[i]) << "served bytes diverged from the "
                                        "local rendering for: "
                                     << sqls[i];
    }
    ASSERT_TRUE(client->Bye().ok());
    ASSERT_TRUE(srv->Drain().ok());
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace privateclean
