#include "privacy/accountant.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "table/table_builder.h"

namespace privateclean {
namespace {

PrivateRelationMetadata MakeMetadata(double p, double b, double delta) {
  PrivateRelationMetadata meta;
  meta.dataset_size = 100;
  meta.discrete.emplace(
      "d", DiscreteAttributeMeta{p, Domain::FromValues({Value("a")})});
  meta.numeric.emplace("x", NumericAttributeMeta{b, delta});
  return meta;
}

TEST(AccountantTest, Theorem1Composition) {
  PrivacyReport report = *AccountPrivacy(MakeMetadata(0.25, 10.0, 100.0));
  double eps_d = std::log(3.0 / 0.25 - 2.0);
  double eps_n = 100.0 / 10.0;
  EXPECT_NEAR(report.per_attribute_epsilon.at("d"), eps_d, 1e-12);
  EXPECT_NEAR(report.per_attribute_epsilon.at("x"), eps_n, 1e-12);
  EXPECT_NEAR(report.total_epsilon, eps_d + eps_n, 1e-12);
  EXPECT_TRUE(report.fully_private);
}

TEST(AccountantTest, NonRandomizedDiscreteIsInfinite) {
  PrivacyReport report = *AccountPrivacy(MakeMetadata(0.0, 10.0, 100.0));
  EXPECT_TRUE(std::isinf(report.per_attribute_epsilon.at("d")));
  EXPECT_TRUE(std::isinf(report.total_epsilon));
  EXPECT_FALSE(report.fully_private);
}

TEST(AccountantTest, ZeroNoiseNumericIsInfinite) {
  PrivacyReport report = *AccountPrivacy(MakeMetadata(0.25, 0.0, 100.0));
  EXPECT_TRUE(std::isinf(report.per_attribute_epsilon.at("x")));
  EXPECT_FALSE(report.fully_private);
}

TEST(AccountantTest, ZeroNoiseOnConstantColumnIsPrivate) {
  // Delta == 0: the attribute carries no information.
  PrivacyReport report = *AccountPrivacy(MakeMetadata(0.25, 0.0, 0.0));
  EXPECT_DOUBLE_EQ(report.per_attribute_epsilon.at("x"), 0.0);
  EXPECT_TRUE(report.fully_private);
}

TEST(AccountantTest, FullRandomizationIsZeroEpsilon) {
  PrivacyReport report = *AccountPrivacy(MakeMetadata(1.0, 10.0, 100.0));
  EXPECT_NEAR(report.per_attribute_epsilon.at("d"), 0.0, 1e-12);
}

TEST(AccountantTest, AddingAttributesIncreasesEpsilon) {
  // The Theorem 1 interpretation: more attributes, more epsilon.
  PrivateRelationMetadata one = MakeMetadata(0.25, 10.0, 100.0);
  PrivateRelationMetadata two = MakeMetadata(0.25, 10.0, 100.0);
  two.discrete.emplace(
      "d2", DiscreteAttributeMeta{0.25, Domain::FromValues({Value("b")})});
  EXPECT_GT(AccountPrivacy(two)->total_epsilon,
            AccountPrivacy(one)->total_epsilon);
}

TEST(AccountantTest, NegativeRetentionIsInfinite) {
  // p < 0 is nonsensical metadata; treat it like "never retained" (no
  // privacy guarantee) rather than passing it to the log formula.
  PrivacyReport report = *AccountPrivacy(MakeMetadata(-0.5, 10.0, 100.0));
  EXPECT_TRUE(std::isinf(report.per_attribute_epsilon.at("d")));
  EXPECT_FALSE(report.fully_private);
}

TEST(AccountantTest, NegativeNoiseScaleIsInfinite) {
  // b < 0 never arises from the mechanism; the conservative reading is
  // "no noise was added".
  PrivacyReport report = *AccountPrivacy(MakeMetadata(0.25, -3.0, 100.0));
  EXPECT_TRUE(std::isinf(report.per_attribute_epsilon.at("x")));
  EXPECT_FALSE(report.fully_private);
}

TEST(AccountantTest, PositiveNoiseOnConstantColumnIsZeroEpsilon) {
  // sensitivity == 0 with real noise: ε = Δ/b = 0, and the report stays
  // fully private.
  PrivacyReport report = *AccountPrivacy(MakeMetadata(0.25, 5.0, 0.0));
  EXPECT_DOUBLE_EQ(report.per_attribute_epsilon.at("x"), 0.0);
  EXPECT_TRUE(report.fully_private);
}

TEST(AccountantTest, EmptyMetadataIsZero) {
  PrivateRelationMetadata meta;
  PrivacyReport report = *AccountPrivacy(meta);
  EXPECT_DOUBLE_EQ(report.total_epsilon, 0.0);
  EXPECT_TRUE(report.fully_private);
  EXPECT_TRUE(report.per_attribute_epsilon.empty());
}

}  // namespace
}  // namespace privateclean
