#include "privacy/accountant.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "table/table_builder.h"

namespace privateclean {
namespace {

PrivateRelationMetadata MakeMetadata(double p, double b, double delta) {
  PrivateRelationMetadata meta;
  meta.dataset_size = 100;
  meta.discrete.emplace(
      "d", DiscreteAttributeMeta{p, Domain::FromValues({Value("a")})});
  meta.numeric.emplace("x", NumericAttributeMeta{b, delta});
  return meta;
}

TEST(AccountantTest, Theorem1Composition) {
  PrivacyReport report = *AccountPrivacy(MakeMetadata(0.25, 10.0, 100.0));
  double eps_d = std::log(3.0 / 0.25 - 2.0);
  double eps_n = 100.0 / 10.0;
  EXPECT_NEAR(report.per_attribute_epsilon.at("d"), eps_d, 1e-12);
  EXPECT_NEAR(report.per_attribute_epsilon.at("x"), eps_n, 1e-12);
  EXPECT_NEAR(report.total_epsilon, eps_d + eps_n, 1e-12);
  EXPECT_TRUE(report.fully_private);
}

TEST(AccountantTest, NonRandomizedDiscreteIsInfinite) {
  PrivacyReport report = *AccountPrivacy(MakeMetadata(0.0, 10.0, 100.0));
  EXPECT_TRUE(std::isinf(report.per_attribute_epsilon.at("d")));
  EXPECT_TRUE(std::isinf(report.total_epsilon));
  EXPECT_FALSE(report.fully_private);
}

TEST(AccountantTest, ZeroNoiseNumericIsInfinite) {
  PrivacyReport report = *AccountPrivacy(MakeMetadata(0.25, 0.0, 100.0));
  EXPECT_TRUE(std::isinf(report.per_attribute_epsilon.at("x")));
  EXPECT_FALSE(report.fully_private);
}

TEST(AccountantTest, ZeroNoiseOnConstantColumnIsPrivate) {
  // Delta == 0: the attribute carries no information.
  PrivacyReport report = *AccountPrivacy(MakeMetadata(0.25, 0.0, 0.0));
  EXPECT_DOUBLE_EQ(report.per_attribute_epsilon.at("x"), 0.0);
  EXPECT_TRUE(report.fully_private);
}

TEST(AccountantTest, FullRandomizationIsZeroEpsilon) {
  PrivacyReport report = *AccountPrivacy(MakeMetadata(1.0, 10.0, 100.0));
  EXPECT_NEAR(report.per_attribute_epsilon.at("d"), 0.0, 1e-12);
}

TEST(AccountantTest, AddingAttributesIncreasesEpsilon) {
  // The Theorem 1 interpretation: more attributes, more epsilon.
  PrivateRelationMetadata one = MakeMetadata(0.25, 10.0, 100.0);
  PrivateRelationMetadata two = MakeMetadata(0.25, 10.0, 100.0);
  two.discrete.emplace(
      "d2", DiscreteAttributeMeta{0.25, Domain::FromValues({Value("b")})});
  EXPECT_GT(AccountPrivacy(two)->total_epsilon,
            AccountPrivacy(one)->total_epsilon);
}

TEST(AccountantTest, NegativeRetentionIsInfinite) {
  // p < 0 is nonsensical metadata; treat it like "never retained" (no
  // privacy guarantee) rather than passing it to the log formula.
  PrivacyReport report = *AccountPrivacy(MakeMetadata(-0.5, 10.0, 100.0));
  EXPECT_TRUE(std::isinf(report.per_attribute_epsilon.at("d")));
  EXPECT_FALSE(report.fully_private);
}

TEST(AccountantTest, NegativeNoiseScaleIsInfinite) {
  // b < 0 never arises from the mechanism; the conservative reading is
  // "no noise was added".
  PrivacyReport report = *AccountPrivacy(MakeMetadata(0.25, -3.0, 100.0));
  EXPECT_TRUE(std::isinf(report.per_attribute_epsilon.at("x")));
  EXPECT_FALSE(report.fully_private);
}

TEST(AccountantTest, PositiveNoiseOnConstantColumnIsZeroEpsilon) {
  // sensitivity == 0 with real noise: ε = Δ/b = 0, and the report stays
  // fully private.
  PrivacyReport report = *AccountPrivacy(MakeMetadata(0.25, 5.0, 0.0));
  EXPECT_DOUBLE_EQ(report.per_attribute_epsilon.at("x"), 0.0);
  EXPECT_TRUE(report.fully_private);
}

TEST(AccountantTest, EmptyMetadataIsZero) {
  PrivateRelationMetadata meta;
  PrivacyReport report = *AccountPrivacy(meta);
  EXPECT_DOUBLE_EQ(report.total_epsilon, 0.0);
  EXPECT_TRUE(report.fully_private);
  EXPECT_TRUE(report.per_attribute_epsilon.empty());
}

// --- Mechanism-aware accounting -------------------------------------------

PrivateRelationMetadata MetadataWithMechanism(const MechanismSpec& spec,
                                              double param, size_t n) {
  std::vector<Value> values;
  for (size_t i = 0; i < n; ++i) {
    values.push_back(Value(static_cast<int64_t>(i)));
  }
  PrivateRelationMetadata meta;
  meta.dataset_size = 100;
  meta.discrete.emplace(
      "d", DiscreteAttributeMeta{param, Domain::FromValues(values),
                                 *MakeMechanism(spec, param)});
  meta.mechanism_spec = spec;
  return meta;
}

TEST(AccountantTest, HlmAttributeSpendsExactlyItsTarget) {
  PrivacyReport report = *AccountPrivacy(
      MetadataWithMechanism(MechanismSpec{"hlm", {}}, 1.3, 8));
  EXPECT_DOUBLE_EQ(report.per_attribute_epsilon.at("d"), 1.3);
  EXPECT_TRUE(report.fully_private);
}

TEST(AccountantTest, HlmSingleValueDomainIsZeroEpsilon) {
  // One domain value: the output is constant whatever the input, so the
  // attribute leaks nothing even at a generous target.
  PrivacyReport report = *AccountPrivacy(
      MetadataWithMechanism(MechanismSpec{"hlm", {}}, 5.0, 1));
  EXPECT_DOUBLE_EQ(report.per_attribute_epsilon.at("d"), 0.0);
  EXPECT_TRUE(report.fully_private);
}

TEST(AccountantTest, SamplingReportsExactEpsilonWithinAmplificationBound) {
  const double beta = 0.5;
  const double p0 = 0.25;
  const size_t n = 4;
  MechanismSpec spec{"sampling", {{"beta", beta}}};
  PrivacyReport report =
      *AccountPrivacy(MetadataWithMechanism(spec, p0, n));

  // Exact accounting: ln(diag/off) of the combined confusion matrix,
  // which the matrix-free EpsilonFromConfusionMatrix agrees with …
  MechanismPtr m = *MakeMechanism(spec, p0);
  EXPECT_NEAR(report.per_attribute_epsilon.at("d"),
              *EpsilonFromConfusionMatrix((*m->Confusion(n)).Dense()),
              1e-12);
  // … and the subsampling amplification theorem dominates.
  const double nd = static_cast<double>(n);
  const double inner_eps = std::log(nd / p0 - nd + 1.0);
  EXPECT_LE(report.per_attribute_epsilon.at("d"),
            *SamplingAmplifiedEpsilon(inner_eps, beta) + 1e-12);
  EXPECT_TRUE(report.fully_private);
}

TEST(AccountantTest, NonPrivateSamplingConfigurationIsInfinite) {
  // beta == 1 with p0 == 0 never replaces a value: no guarantee.
  PrivacyReport report = *AccountPrivacy(
      MetadataWithMechanism(MechanismSpec{"sampling", {{"beta", 1.0}}},
                            0.0, 4));
  EXPECT_TRUE(std::isinf(report.per_attribute_epsilon.at("d")));
  EXPECT_FALSE(report.fully_private);
}

TEST(AccountantTest, EmptyDomainIsTypedInvalidArgument) {
  // An infeasible (parameter, domain-size) combination surfaces as a
  // typed error, not a crash or a silent infinity.
  PrivateRelationMetadata meta =
      MetadataWithMechanism(MechanismSpec{"hlm", {}}, 1.0, 8);
  meta.discrete.at("d").domain = Domain::FromValues({});
  auto report = AccountPrivacy(meta);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.status().IsInvalidArgument())
      << report.status().ToString();
}

// --- EpsilonFromConfusionMatrix (general, non-diagonal-constant) ----------

TEST(AccountantTest, EpsilonFromNonSymmetricConfusionMatrix) {
  // Worst-case log-likelihood ratio over output columns:
  // column 0 gives ln(0.7/0.1), column 1 gives ln(0.9/0.3); ε = ln 7.
  std::vector<std::vector<double>> m = {{0.7, 0.3}, {0.1, 0.9}};
  EXPECT_NEAR(*EpsilonFromConfusionMatrix(m), std::log(7.0), 1e-12);
}

TEST(AccountantTest, EpsilonFromConfusionMatrixSkipsImpossibleOutputs) {
  // The middle output never occurs under any input: it constrains
  // nothing, so ε comes from the remaining columns (ln 3).
  std::vector<std::vector<double>> m = {
      {0.5, 0.0, 0.5}, {0.2, 0.0, 0.8}, {0.6, 0.0, 0.4}};
  EXPECT_NEAR(*EpsilonFromConfusionMatrix(m), std::log(3.0), 1e-12);
}

TEST(AccountantTest, EpsilonFromConfusionMatrixTypedErrors) {
  // Non-square.
  EXPECT_TRUE(EpsilonFromConfusionMatrix({{0.5, 0.5}})
                  .status()
                  .IsInvalidArgument());
  // Empty.
  EXPECT_TRUE(EpsilonFromConfusionMatrix({}).status().IsInvalidArgument());
  // Row does not sum to 1.
  EXPECT_TRUE(EpsilonFromConfusionMatrix({{0.9, 0.2}, {0.5, 0.5}})
                  .status()
                  .IsInvalidArgument());
  // Negative entry.
  EXPECT_TRUE(EpsilonFromConfusionMatrix({{1.2, -0.2}, {0.5, 0.5}})
                  .status()
                  .IsInvalidArgument());
  // A column mixing zero and non-zero entries: observing that output
  // identifies the input — no finite ε exists, and that is a property of
  // the mechanism (FailedPrecondition), not of the matrix encoding.
  auto mixed = EpsilonFromConfusionMatrix({{1.0, 0.0}, {0.5, 0.5}});
  ASSERT_FALSE(mixed.ok());
  EXPECT_TRUE(mixed.status().IsFailedPrecondition())
      << mixed.status().ToString();
}

}  // namespace
}  // namespace privateclean
