#include "privacy/allocation.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "core/private_table.h"
#include "privacy/accountant.h"
#include "privacy/grr.h"
#include "table/table_builder.h"

namespace privateclean {
namespace {

Table TestTable() {
  Schema s = *Schema::Make({Field::Discrete("d1"), Field::Discrete("d2"),
                            Field::Numerical("x", ValueType::kDouble)});
  TableBuilder b(s);
  for (int i = 0; i < 100; ++i) {
    b.Row({Value("a" + std::to_string(i % 4)),
           Value("b" + std::to_string(i % 3)),
           Value(static_cast<double>(i % 11))});  // Sensitivity 10.
  }
  return *b.Finish();
}

TEST(AllocationTest, UniformSplitAchievesBudget) {
  Table t = TestTable();
  const double budget = 3.0;
  GrrParams params = *AllocateEpsilonBudget(t, budget);
  // Each of the 3 attributes gets epsilon = 1.
  double p = params.discrete_p.at("d1");
  EXPECT_NEAR(p, 3.0 / (std::exp(1.0) + 2.0), 1e-12);
  EXPECT_DOUBLE_EQ(params.discrete_p.at("d1"),
                   params.discrete_p.at("d2"));
  EXPECT_NEAR(params.numeric_b.at("x"), 10.0 / 1.0, 1e-12);

  // End to end: the accountant reports exactly the budget.
  Rng rng(5);
  GrrOutput out = *ApplyGrr(t, params, GrrOptions{}, rng);
  PrivacyReport report = *AccountPrivacy(out.metadata);
  EXPECT_NEAR(report.total_epsilon, budget, 1e-9);
  EXPECT_TRUE(report.fully_private);
}

TEST(AllocationTest, WeightsSkewTheSplit) {
  Table t = TestTable();
  // d1 gets half the share of the others: weights {0.5, 1, 1}.
  GrrParams params =
      *AllocateEpsilonBudget(t, 5.0, {{"d1", 0.5}});
  // Shares: d1 = 5*0.5/2.5 = 1, d2 = 2, x = 2.
  EXPECT_NEAR(params.discrete_p.at("d1"), 3.0 / (std::exp(1.0) + 2.0),
              1e-12);
  EXPECT_NEAR(params.discrete_p.at("d2"), 3.0 / (std::exp(2.0) + 2.0),
              1e-12);
  EXPECT_NEAR(params.numeric_b.at("x"), 10.0 / 2.0, 1e-12);
  // Smaller epsilon -> more randomization for d1.
  EXPECT_GT(params.discrete_p.at("d1"), params.discrete_p.at("d2"));
}

TEST(AllocationTest, WeightedBudgetStillComposesToTotal) {
  Table t = TestTable();
  GrrParams params =
      *AllocateEpsilonBudget(t, 4.0, {{"x", 2.0}, {"d2", 0.25}});
  Rng rng(6);
  GrrOutput out = *ApplyGrr(t, params, GrrOptions{}, rng);
  EXPECT_NEAR(AccountPrivacy(out.metadata)->total_epsilon, 4.0, 1e-9);
}

TEST(AllocationTest, ConstantNumericColumnGetsZeroNoise) {
  Schema s = *Schema::Make({Field::Discrete("d"),
                            Field::Numerical("c", ValueType::kDouble)});
  TableBuilder b(s);
  for (int i = 0; i < 10; ++i) b.Row({Value("v"), Value(7.0)});
  Table t = *b.Finish();
  GrrParams params = *AllocateEpsilonBudget(t, 2.0);
  EXPECT_DOUBLE_EQ(params.numeric_b.at("c"), 0.0);
}

TEST(AllocationTest, RejectsBadInputs) {
  Table t = TestTable();
  EXPECT_FALSE(AllocateEpsilonBudget(t, 0.0).ok());
  EXPECT_FALSE(AllocateEpsilonBudget(t, -1.0).ok());
  EXPECT_TRUE(AllocateEpsilonBudget(t, 1.0, {{"nope", 1.0}})
                  .status()
                  .IsNotFound());
  EXPECT_FALSE(AllocateEpsilonBudget(t, 1.0, {{"d1", 0.0}}).ok());
  EXPECT_FALSE(AllocateEpsilonBudget(t, 1.0, {{"d1", -2.0}}).ok());
  Schema empty_schema = *Schema::Make({});
  Table empty = *Table::MakeEmpty(empty_schema);
  EXPECT_FALSE(AllocateEpsilonBudget(empty, 1.0).ok());
}

TEST(AllocationTest, MoreBudgetMeansLessRandomization) {
  Table t = TestTable();
  GrrParams small = *AllocateEpsilonBudget(t, 0.3);
  GrrParams large = *AllocateEpsilonBudget(t, 30.0);
  EXPECT_GT(small.discrete_p.at("d1"), large.discrete_p.at("d1"));
  EXPECT_GT(small.numeric_b.at("x"), large.numeric_b.at("x"));
}

TEST(AllocationTest, PrivateTableFactoryWiring) {
  Table t = TestTable();
  Rng rng(7);
  PrivateTable pt = *PrivateTable::CreateWithEpsilonBudget(t, 6.0, rng);
  EXPECT_NEAR(pt.PrivacyAccounting()->total_epsilon, 6.0, 1e-9);
  EXPECT_EQ(pt.size(), 100u);
}

}  // namespace
}  // namespace privateclean
