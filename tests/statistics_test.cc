#include "common/statistics.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"

namespace privateclean {
namespace {

TEST(RunningMomentsTest, EmptyIsZero) {
  RunningMoments m;
  EXPECT_EQ(m.count(), 0u);
  EXPECT_EQ(m.Mean(), 0.0);
  EXPECT_EQ(m.PopulationVariance(), 0.0);
  EXPECT_EQ(m.SampleVariance(), 0.0);
}

TEST(RunningMomentsTest, SingleObservation) {
  RunningMoments m;
  m.Add(5.0);
  EXPECT_EQ(m.count(), 1u);
  EXPECT_EQ(m.Mean(), 5.0);
  EXPECT_EQ(m.PopulationVariance(), 0.0);
  EXPECT_EQ(m.SampleVariance(), 0.0);
  EXPECT_EQ(m.Sum(), 5.0);
}

TEST(RunningMomentsTest, KnownValues) {
  RunningMoments m;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) m.Add(x);
  EXPECT_DOUBLE_EQ(m.Mean(), 5.0);
  EXPECT_DOUBLE_EQ(m.PopulationVariance(), 4.0);
  EXPECT_NEAR(m.SampleVariance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(m.Sum(), 40.0);
}

TEST(RunningMomentsTest, NumericallyStableWithLargeOffset) {
  RunningMoments m;
  const double offset = 1e12;
  for (double x : {1.0, 2.0, 3.0}) m.Add(offset + x);
  EXPECT_NEAR(m.Mean() - offset, 2.0, 1e-3);
  EXPECT_NEAR(m.SampleVariance(), 1.0, 1e-3);
}

TEST(RunningMomentsTest, MergeEqualsSequential) {
  Rng rng(41);
  RunningMoments whole, a, b;
  for (int i = 0; i < 1000; ++i) {
    double x = rng.Gaussian(3.0, 2.0);
    whole.Add(x);
    (i < 400 ? a : b).Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.Mean(), whole.Mean(), 1e-9);
  EXPECT_NEAR(a.SampleVariance(), whole.SampleVariance(), 1e-9);
}

TEST(RunningMomentsTest, MergeWithEmpty) {
  RunningMoments a, b;
  a.Add(1.0);
  a.Add(3.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.Mean(), 2.0);
  b.Merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_EQ(b.Mean(), 2.0);
}

TEST(NormalTest, CdfKnownValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.959964), 0.975, 1e-5);
  EXPECT_NEAR(NormalCdf(-1.959964), 0.025, 1e-5);
}

TEST(NormalTest, QuantileKnownValues) {
  EXPECT_NEAR(*NormalQuantile(0.5), 0.0, 1e-9);
  EXPECT_NEAR(*NormalQuantile(0.975), 1.959964, 1e-5);
  EXPECT_NEAR(*NormalQuantile(0.995), 2.575829, 1e-5);
  EXPECT_NEAR(*NormalQuantile(0.84134474), 1.0, 1e-5);
}

TEST(NormalTest, QuantileInvertsCdf) {
  for (double p : {0.001, 0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99, 0.999}) {
    EXPECT_NEAR(NormalCdf(*NormalQuantile(p)), p, 1e-9) << "p=" << p;
  }
}

TEST(NormalTest, QuantileRejectsOutOfDomain) {
  EXPECT_FALSE(NormalQuantile(0.0).ok());
  EXPECT_FALSE(NormalQuantile(1.0).ok());
  EXPECT_FALSE(NormalQuantile(-0.1).ok());
}

TEST(NormalTest, ZScoreForConfidence) {
  EXPECT_NEAR(*ZScoreForConfidence(0.95), 1.959964, 1e-5);
  EXPECT_NEAR(*ZScoreForConfidence(0.99), 2.575829, 1e-5);
  EXPECT_NEAR(*ZScoreForConfidence(0.6827), 1.0, 1e-3);
  EXPECT_FALSE(ZScoreForConfidence(0.0).ok());
  EXPECT_FALSE(ZScoreForConfidence(1.0).ok());
}

TEST(ConfidenceIntervalTest, ContainsAndWidth) {
  ConfidenceInterval ci{2.0, 5.0};
  EXPECT_EQ(ci.Width(), 3.0);
  EXPECT_TRUE(ci.Contains(2.0));
  EXPECT_TRUE(ci.Contains(5.0));
  EXPECT_TRUE(ci.Contains(3.5));
  EXPECT_FALSE(ci.Contains(1.999));
  EXPECT_FALSE(ci.Contains(5.001));
}

TEST(RelativeErrorTest, Basic) {
  EXPECT_DOUBLE_EQ(*RelativeError(110.0, 100.0), 0.1);
  EXPECT_DOUBLE_EQ(*RelativeError(90.0, 100.0), 0.1);
  EXPECT_DOUBLE_EQ(*RelativeError(-90.0, -100.0), 0.1);
  EXPECT_FALSE(RelativeError(1.0, 0.0).ok());
}

TEST(VectorStatsTest, MeanAndVariance) {
  std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(*Mean(xs), 2.5);
  EXPECT_NEAR(*SampleVariance(xs), 5.0 / 3.0, 1e-12);
  EXPECT_FALSE(Mean({}).ok());
  EXPECT_FALSE(SampleVariance({1.0}).ok());
}

TEST(MedianTest, OddAndEven) {
  EXPECT_DOUBLE_EQ(*Median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(*Median({4.0, 1.0, 3.0, 2.0}), 2.5);
  EXPECT_DOUBLE_EQ(*Median({7.0}), 7.0);
  EXPECT_FALSE(Median({}).ok());
}

TEST(PercentileTest, KnownValues) {
  std::vector<double> xs{10.0, 20.0, 30.0, 40.0, 50.0};
  EXPECT_DOUBLE_EQ(*Percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(*Percentile(xs, 100.0), 50.0);
  EXPECT_DOUBLE_EQ(*Percentile(xs, 50.0), 30.0);
  EXPECT_DOUBLE_EQ(*Percentile(xs, 25.0), 20.0);
  EXPECT_DOUBLE_EQ(*Percentile(xs, 12.5), 15.0);  // Interpolated.
}

TEST(PercentileTest, ErrorsOnBadInput) {
  EXPECT_FALSE(Percentile({}, 50.0).ok());
  EXPECT_FALSE(Percentile({1.0}, -1.0).ok());
  EXPECT_FALSE(Percentile({1.0}, 101.0).ok());
  EXPECT_DOUBLE_EQ(*Percentile({5.0}, 99.0), 5.0);
}

TEST(PercentileTest, PairMatchesTwoSingleCalls) {
  std::vector<double> xs{41.0, 7.0, 23.0, 99.0, 3.0, 58.0, 12.0};
  PercentileEndpoints pair = *PercentilePair(xs, 2.5, 97.5);
  EXPECT_DOUBLE_EQ(pair.lo, *Percentile(xs, 2.5));
  EXPECT_DOUBLE_EQ(pair.hi, *Percentile(xs, 97.5));
}

TEST(PercentileTest, PairSortsUnsortedInput) {
  // The single internal sort must produce the same endpoints as on
  // pre-sorted data.
  std::vector<double> sorted{1.0, 2.0, 3.0, 4.0};
  std::vector<double> shuffled{3.0, 1.0, 4.0, 2.0};
  PercentileEndpoints a = *PercentilePair(sorted, 25.0, 75.0);
  PercentileEndpoints b = *PercentilePair(shuffled, 25.0, 75.0);
  EXPECT_DOUBLE_EQ(a.lo, b.lo);
  EXPECT_DOUBLE_EQ(a.hi, b.hi);
}

TEST(PercentileTest, PairErrors) {
  EXPECT_FALSE(PercentilePair({}, 2.5, 97.5).ok());
  EXPECT_FALSE(PercentilePair({1.0}, -1.0, 97.5).ok());
  EXPECT_FALSE(PercentilePair({1.0}, 2.5, 101.0).ok());
}

TEST(PercentileTest, OfSortedMatchesPercentile) {
  std::vector<double> sorted{10.0, 20.0, 30.0, 40.0, 50.0};
  for (double p : {0.0, 12.5, 25.0, 50.0, 100.0}) {
    EXPECT_DOUBLE_EQ(*PercentileOfSorted(sorted, p), *Percentile(sorted, p));
  }
  EXPECT_FALSE(PercentileOfSorted({}, 50.0).ok());
}

TEST(ChiSquaredTest, StatisticKnownValue) {
  // (60-50)²/50 + (40-50)²/50 = 2 + 2 = 4.
  EXPECT_DOUBLE_EQ(*ChiSquaredStatistic({60.0, 40.0}, {50.0, 50.0}), 4.0);
  EXPECT_DOUBLE_EQ(*ChiSquaredStatistic({50.0, 50.0}, {50.0, 50.0}), 0.0);
}

TEST(ChiSquaredTest, StatisticErrors) {
  EXPECT_FALSE(ChiSquaredStatistic({}, {}).ok());
  EXPECT_FALSE(ChiSquaredStatistic({1.0}, {1.0, 2.0}).ok());
  EXPECT_FALSE(ChiSquaredStatistic({1.0}, {0.0}).ok());
}

TEST(ChiSquaredTest, QuantileMatchesTables) {
  // Textbook 95th percentiles: df=10 -> 18.307, df=30 -> 43.773. The
  // Wilson–Hilferty cube is good to well under 1% here.
  EXPECT_NEAR(*ChiSquaredQuantile(10, 0.95), 18.307, 0.1);
  EXPECT_NEAR(*ChiSquaredQuantile(30, 0.95), 43.773, 0.1);
  EXPECT_NEAR(*ChiSquaredQuantile(100, 0.99), 135.807, 0.3);
  EXPECT_FALSE(ChiSquaredQuantile(0, 0.95).ok());
  EXPECT_FALSE(ChiSquaredQuantile(5, 1.0).ok());
}

TEST(KolmogorovSmirnovTest, UniformSamplesAgainstUniformCdf) {
  // Perfectly spaced uniform quantiles minimize the KS distance: with
  // x_i = (i + 0.5)/n the sup distance is exactly 0.5/n.
  std::vector<double> xs;
  const size_t n = 100;
  for (size_t i = 0; i < n; ++i) {
    xs.push_back((static_cast<double>(i) + 0.5) / static_cast<double>(n));
  }
  auto uniform_cdf = [](double x) { return x; };
  EXPECT_NEAR(*KolmogorovSmirnovStatistic(xs, uniform_cdf), 0.005, 1e-12);
}

TEST(KolmogorovSmirnovTest, DetectsWrongDistribution) {
  // Samples concentrated at 0.9 are far from Uniform(0,1): D ~ 0.9.
  std::vector<double> xs(50, 0.9);
  auto uniform_cdf = [](double x) { return x; };
  EXPECT_GT(*KolmogorovSmirnovStatistic(xs, uniform_cdf), 0.8);
  EXPECT_FALSE(KolmogorovSmirnovStatistic({}, uniform_cdf).ok());
}

}  // namespace
}  // namespace privateclean
