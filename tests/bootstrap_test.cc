#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "core/privateclean.h"
#include "datagen/synthetic.h"
#include "table/table_builder.h"

namespace privateclean {
namespace {

TEST(TableTakeTest, SelectsRowsInOrderWithRepeats) {
  Schema s = *Schema::Make({Field::Discrete("d"),
                            Field::Numerical("x", ValueType::kDouble)});
  TableBuilder b(s);
  b.Row({Value("a"), Value(1.0)})
      .Row({Value("b"), Value(2.0)})
      .Row({Value("c"), Value(3.0)});
  Table t = *b.Finish();
  Table taken = *t.Take({2, 0, 2, 2});
  ASSERT_EQ(taken.num_rows(), 4u);
  EXPECT_EQ(*taken.GetValue(0, "d"), Value("c"));
  EXPECT_EQ(*taken.GetValue(1, "d"), Value("a"));
  EXPECT_EQ(*taken.GetValue(3, "x"), Value(3.0));
}

TEST(TableTakeTest, EmptySelection) {
  Schema s = *Schema::Make({Field::Discrete("d")});
  TableBuilder b(s);
  b.Row({Value("a")});
  Table t = *b.Finish();
  EXPECT_EQ(t.Take({})->num_rows(), 0u);
}

TEST(TableTakeTest, RejectsOutOfRange) {
  Schema s = *Schema::Make({Field::Discrete("d")});
  TableBuilder b(s);
  b.Row({Value("a")});
  Table t = *b.Finish();
  auto r = t.Take({0, 1});
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsOutOfRange());
}

class BootstrapTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SyntheticOptions options;
    options.num_rows = 600;
    Rng data_rng(1);
    data_.emplace(*GenerateSynthetic(options, data_rng));
    Rng rng(2);
    pt_.emplace(*PrivateTable::Create(
        *data_, GrrParams::Uniform(0.1, 3.0), GrrOptions{}, rng));
  }

  std::optional<Table> data_;
  std::optional<PrivateTable> pt_;
};

TEST_F(BootstrapTest, PointEstimateMatchesExtendedAggregate) {
  AggregateQuery median{AggregateType::kMedian, "value", std::nullopt,
                        50.0};
  Rng rng(3);
  QueryResult boot = *pt_->BootstrapExtendedAggregate(median, rng, 100);
  EXPECT_DOUBLE_EQ(boot.estimate, *pt_->ExtendedAggregate(median));
}

TEST_F(BootstrapTest, IntervalContainsPointAndIsNontrivial) {
  AggregateQuery median{AggregateType::kMedian, "value", std::nullopt,
                        50.0};
  Rng rng(4);
  QueryResult boot = *pt_->BootstrapExtendedAggregate(median, rng, 200);
  EXPECT_GT(boot.ci.Width(), 0.0);
  // The percentile interval should bracket the point estimate (up to
  // bootstrap skew; allow a tiny tolerance).
  EXPECT_LE(boot.ci.lo, boot.estimate + 1.0);
  EXPECT_GE(boot.ci.hi, boot.estimate - 1.0);
}

TEST_F(BootstrapTest, MedianIntervalCoversTruthOnSymmetricData) {
  // The §10 pass-through argument (zero-median noise preserves the
  // median) holds when the data's distribution is roughly symmetric
  // around its median; on heavily skewed marginals the private median
  // shifts toward the heavy tail. Use symmetric data here.
  Schema s = *Schema::Make({Field::Discrete("d"),
                            Field::Numerical("x", ValueType::kDouble)});
  TableBuilder b(s);
  Rng data_rng(42);
  for (int i = 0; i < 600; ++i) {
    b.Row({Value("v" + std::to_string(i % 5)),
           Value(50.0 + data_rng.Gaussian(0.0, 8.0))});
  }
  Table symmetric = *b.Finish();
  AggregateQuery median{AggregateType::kMedian, "x", std::nullopt, 50.0};
  double truth = *ExecuteAggregate(symmetric, median);
  int covered = 0;
  const int trials = 15;
  for (int t = 0; t < trials; ++t) {
    Rng rng(100 + t);
    PrivateTable pt = *PrivateTable::Create(
        symmetric, GrrParams::Uniform(0.1, 3.0), GrrOptions{}, rng);
    Rng boot_rng(200 + t);
    QueryResult boot =
        *pt.BootstrapExtendedAggregate(median, boot_rng, 150);
    if (boot.ci.Contains(truth)) ++covered;
  }
  // The bootstrap interval reflects sampling noise around the *private*
  // median, which is a consistent but noisy estimate of the true median;
  // expect majority coverage rather than exact nominal coverage.
  EXPECT_GE(covered, trials / 2);
}

TEST_F(BootstrapTest, StdIntervalNearTruth) {
  AggregateQuery stddev{AggregateType::kStd, "value", std::nullopt, 50.0};
  double truth = *ExecuteAggregate(*data_, stddev);
  Rng rng(5);
  QueryResult boot = *pt_->BootstrapExtendedAggregate(stddev, rng, 150);
  // Noise-corrected std should be in the right ballpark and the interval
  // should have sane width.
  EXPECT_NEAR(boot.estimate, truth, 0.4 * truth);
  EXPECT_LT(boot.ci.Width(), truth);
}

TEST_F(BootstrapTest, RejectsBadArguments) {
  AggregateQuery median{AggregateType::kMedian, "value", std::nullopt,
                        50.0};
  Rng rng(6);
  EXPECT_FALSE(
      pt_->BootstrapExtendedAggregate(median, rng, 5).ok());
  EXPECT_FALSE(
      pt_->BootstrapExtendedAggregate(median, rng, 100, 0.0).ok());
  EXPECT_FALSE(
      pt_->BootstrapExtendedAggregate(median, rng, 100, 1.0).ok());
  AggregateQuery sum = AggregateQuery::Sum("value");
  EXPECT_FALSE(pt_->BootstrapExtendedAggregate(sum, rng, 100).ok());
}

TEST_F(BootstrapTest, DeterministicGivenSeed) {
  AggregateQuery median{AggregateType::kMedian, "value", std::nullopt,
                        50.0};
  Rng r1(7), r2(7);
  QueryResult a = *pt_->BootstrapExtendedAggregate(median, r1, 50);
  QueryResult b = *pt_->BootstrapExtendedAggregate(median, r2, 50);
  EXPECT_DOUBLE_EQ(a.ci.lo, b.ci.lo);
  EXPECT_DOUBLE_EQ(a.ci.hi, b.ci.hi);
}

TEST_F(BootstrapTest, ParallelMatchesSerial) {
  AggregateQuery median{AggregateType::kMedian, "value", std::nullopt,
                        50.0};
  Rng r1(8), r2(8);
  ExecutionOptions four_threads;
  four_threads.num_threads = 4;
  QueryResult serial =
      *pt_->BootstrapExtendedAggregate(median, r1, 50, 0.95, {});
  QueryResult parallel =
      *pt_->BootstrapExtendedAggregate(median, r2, 50, 0.95, four_threads);
  EXPECT_EQ(serial.estimate, parallel.estimate);
  EXPECT_EQ(serial.ci.lo, parallel.ci.lo);
  EXPECT_EQ(serial.ci.hi, parallel.ci.hi);
  EXPECT_EQ(serial.replicates_effective, parallel.replicates_effective);
}

TEST_F(BootstrapTest, RecordsReplicateCounts) {
  AggregateQuery median{AggregateType::kMedian, "value", std::nullopt,
                        50.0};
  Rng rng(9);
  QueryResult boot = *pt_->BootstrapExtendedAggregate(median, rng, 60);
  EXPECT_EQ(boot.replicates_requested, 60u);
  // No predicate, 600 rows: every resample is non-degenerate.
  EXPECT_EQ(boot.replicates_effective, 60u);
}

TEST_F(BootstrapTest, DegenerateReplicatesReduceEffectiveCount) {
  // A two-row rare category makes ≈ e^-2 of resamples match zero rows;
  // those replicates fail inside the aggregate and are dropped, and the
  // result must say so.
  Schema s = *Schema::Make({Field::Discrete("category"),
                            Field::Numerical("value", ValueType::kDouble)});
  TableBuilder b(s);
  Rng data_rng(44);
  for (int i = 0; i < 1000; ++i) {
    Value category = (i == 17 || i == 801) ? Value("rare") : Value("common");
    b.Row({category, Value(data_rng.UniformRealRange(0.0, 100.0))});
  }
  Table t = *b.Finish();
  PrivateRelationMetadata meta;
  meta.discrete.emplace(
      "category",
      DiscreteAttributeMeta{0.1, *Domain::FromColumn(t, "category")});
  meta.numeric.emplace("value", NumericAttributeMeta{2.0, 100.0});
  PrivateTable pt = *PrivateTable::FromPrivateRelation(t.Clone(), meta);
  AggregateQuery median{AggregateType::kMedian, "value",
                        Predicate::Equals("category", Value("rare")), 50.0};
  Rng rng(10);
  QueryResult boot = *pt.BootstrapExtendedAggregate(median, rng, 100);
  EXPECT_EQ(boot.replicates_requested, 100u);
  EXPECT_LT(boot.replicates_effective, boot.replicates_requested);
  // Guard: at least half (round-up for odd counts) must have succeeded
  // for the call to return OK at all.
  EXPECT_GE(2 * boot.replicates_effective, boot.replicates_requested);
}

TEST_F(BootstrapTest, FailsWhenMostReplicatesDegenerate) {
  // Var needs at least two matching rows per resample. With exactly one
  // matching source row, a resample succeeds only when it draws that row
  // twice or more — P ≈ 1 - 2e^-1 ≈ 26% — so well under half of the
  // replicates survive and the call must fail loudly.
  Schema s = *Schema::Make({Field::Discrete("category"),
                            Field::Numerical("value", ValueType::kDouble)});
  TableBuilder b(s);
  Rng data_rng(45);
  for (int i = 0; i < 200; ++i) {
    Value category = (i == 50) ? Value("rare") : Value("common");
    b.Row({category, Value(data_rng.UniformRealRange(0.0, 100.0))});
  }
  Table t = *b.Finish();
  PrivateRelationMetadata meta;
  meta.discrete.emplace(
      "category",
      DiscreteAttributeMeta{0.1, *Domain::FromColumn(t, "category")});
  meta.numeric.emplace("value", NumericAttributeMeta{2.0, 100.0});
  PrivateTable pt = *PrivateTable::FromPrivateRelation(t.Clone(), meta);
  AggregateQuery var{AggregateType::kVar, "value",
                     Predicate::Equals("category", Value("rare")), 50.0};
  Rng rng(11);
  auto r = pt.BootstrapExtendedAggregate(var, rng, 51);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsFailedPrecondition());
}

TEST_F(BootstrapTest, UnknownAttributeIsTypedError) {
  AggregateQuery median{AggregateType::kMedian, "no_such_column",
                        std::nullopt, 50.0};
  auto direct = pt_->ExtendedAggregate(median);
  ASSERT_FALSE(direct.ok());
  EXPECT_TRUE(direct.status().IsInvalidArgument());
  Rng rng(12);
  auto boot = pt_->BootstrapExtendedAggregate(median, rng, 50);
  ASSERT_FALSE(boot.ok());
  EXPECT_TRUE(boot.status().IsInvalidArgument());
}

TEST_F(BootstrapTest, UnNoisedNumericColumnUsesZeroNoiseScale) {
  // A numeric column covered by metadata with b = 0 is a documented
  // pass-through: the extended aggregate applies no correction but the
  // query still runs.
  Schema s = *Schema::Make({Field::Discrete("d"),
                            Field::Numerical("x", ValueType::kDouble)});
  TableBuilder b(s);
  Rng data_rng(46);
  for (int i = 0; i < 100; ++i) {
    b.Row({Value("v"), Value(data_rng.UniformRealRange(0.0, 10.0))});
  }
  Table t = *b.Finish();
  PrivateRelationMetadata meta;
  meta.discrete.emplace(
      "d", DiscreteAttributeMeta{0.2, *Domain::FromColumn(t, "d")});
  meta.numeric.emplace("x", NumericAttributeMeta{0.0, 10.0});
  PrivateTable pt = *PrivateTable::FromPrivateRelation(t.Clone(), meta);
  AggregateQuery var{AggregateType::kVar, "x", std::nullopt, 50.0};
  double corrected = *pt.ExtendedAggregate(var);
  double nominal = *ExecuteAggregate(t, var);
  // b = 0 ⇒ the 2b² variance correction vanishes.
  EXPECT_DOUBLE_EQ(corrected, nominal);
}

}  // namespace
}  // namespace privateclean
