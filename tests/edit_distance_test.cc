#include "common/edit_distance.h"

#include <gtest/gtest.h>

#include <string>

#include "common/random.h"

namespace privateclean {
namespace {

TEST(EditDistanceTest, IdenticalStrings) {
  EXPECT_EQ(EditDistance("hello", "hello"), 0u);
  EXPECT_EQ(EditDistance("", ""), 0u);
}

TEST(EditDistanceTest, EmptyAgainstNonEmpty) {
  EXPECT_EQ(EditDistance("", "abc"), 3u);
  EXPECT_EQ(EditDistance("abc", ""), 3u);
}

TEST(EditDistanceTest, KnownPairs) {
  EXPECT_EQ(EditDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(EditDistance("flaw", "lawn"), 2u);
  EXPECT_EQ(EditDistance("intention", "execution"), 5u);
  EXPECT_EQ(EditDistance("abc", "abd"), 1u);
  EXPECT_EQ(EditDistance("abc", "abcd"), 1u);
  EXPECT_EQ(EditDistance("abc", "bc"), 1u);
}

TEST(EditDistanceTest, Symmetric) {
  EXPECT_EQ(EditDistance("sunday", "saturday"),
            EditDistance("saturday", "sunday"));
}

TEST(EditDistanceTest, TriangleInequalityFuzz) {
  Rng rng(7);
  auto random_string = [&](size_t max_len) {
    std::string s;
    size_t len = rng.UniformInt(max_len + 1);
    for (size_t i = 0; i < len; ++i) {
      s.push_back(static_cast<char>('a' + rng.UniformInt(4)));
    }
    return s;
  };
  for (int trial = 0; trial < 200; ++trial) {
    std::string a = random_string(8), b = random_string(8),
                c = random_string(8);
    EXPECT_LE(EditDistance(a, c), EditDistance(a, b) + EditDistance(b, c));
  }
}

TEST(BoundedEditDistanceTest, AgreesWithinLimit) {
  EXPECT_EQ(BoundedEditDistance("kitten", "sitting", 5), 3u);
  EXPECT_EQ(BoundedEditDistance("abc", "abc", 0), 0u);
  EXPECT_EQ(BoundedEditDistance("abc", "abd", 1), 1u);
}

TEST(BoundedEditDistanceTest, ExceedsLimitReportsOverLimit) {
  EXPECT_GT(BoundedEditDistance("kitten", "sitting", 2), 2u);
  EXPECT_GT(BoundedEditDistance("", "abcdef", 3), 3u);
  EXPECT_GT(BoundedEditDistance("aaaa", "bbbb", 1), 1u);
}

TEST(BoundedEditDistanceTest, LengthGapShortCircuit) {
  // |len(a) - len(b)| > limit must exceed immediately.
  EXPECT_GT(BoundedEditDistance("a", "abcdefgh", 3), 3u);
}

TEST(BoundedEditDistanceTest, MatchesUnboundedFuzz) {
  Rng rng(13);
  auto random_string = [&](size_t max_len) {
    std::string s;
    size_t len = rng.UniformInt(max_len + 1);
    for (size_t i = 0; i < len; ++i) {
      s.push_back(static_cast<char>('a' + rng.UniformInt(3)));
    }
    return s;
  };
  for (int trial = 0; trial < 300; ++trial) {
    std::string a = random_string(10), b = random_string(10);
    size_t exact = EditDistance(a, b);
    for (size_t limit : {0u, 1u, 2u, 5u, 10u}) {
      size_t bounded = BoundedEditDistance(a, b, limit);
      if (exact <= limit) {
        EXPECT_EQ(bounded, exact) << a << " vs " << b;
      } else {
        EXPECT_GT(bounded, limit) << a << " vs " << b;
      }
    }
  }
}

TEST(EditSimilarityTest, Range) {
  EXPECT_DOUBLE_EQ(EditSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(EditSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(EditSimilarity("abc", "xyz"), 0.0);
  EXPECT_NEAR(EditSimilarity("abcd", "abce"), 0.75, 1e-12);
}

}  // namespace
}  // namespace privateclean
