#include "query/predicate.h"

#include <gtest/gtest.h>

#include "table/table_builder.h"

namespace privateclean {
namespace {

Table CountriesTable() {
  Schema s = *Schema::Make({Field::Discrete("country")});
  TableBuilder b(s);
  b.Row({Value("US")})
      .Row({Value("FR")})
      .Row({Value("DE")})
      .Row({Value("US")})
      .Row({Value::Null()})
      .Row({Value("JP")});
  return *b.Finish();
}

TEST(PredicateTest, Equals) {
  Predicate p = Predicate::Equals("country", "US");
  EXPECT_TRUE(p.Matches(Value("US")));
  EXPECT_FALSE(p.Matches(Value("FR")));
  EXPECT_FALSE(p.Matches(Value::Null()));
  EXPECT_EQ(*p.CountMatches(CountriesTable()), 2u);
}

TEST(PredicateTest, In) {
  Predicate p = Predicate::In("country", {Value("FR"), Value("DE")});
  EXPECT_EQ(*p.CountMatches(CountriesTable()), 2u);
  EXPECT_TRUE(p.Matches(Value("DE")));
  EXPECT_FALSE(p.Matches(Value("US")));
}

TEST(PredicateTest, IsNullAndIsNotNull) {
  EXPECT_EQ(*Predicate::IsNull("country").CountMatches(CountriesTable()),
            1u);
  EXPECT_EQ(
      *Predicate::IsNotNull("country").CountMatches(CountriesTable()), 5u);
}

TEST(PredicateTest, Udf) {
  Predicate p = Predicate::Udf("country", [](const Value& v) {
    return !v.is_null() && v.AsString().size() == 2 &&
           (v.AsString() == "FR" || v.AsString() == "DE");
  });
  EXPECT_EQ(*p.CountMatches(CountriesTable()), 2u);
}

TEST(PredicateTest, NegationInvolutes) {
  Predicate p = Predicate::Equals("country", "US");
  Predicate np = p.Negate();
  EXPECT_EQ(*np.CountMatches(CountriesTable()), 4u);
  Predicate nnp = np.Negate();
  EXPECT_EQ(*nnp.CountMatches(CountriesTable()), 2u);
  EXPECT_FALSE(p.negated());
  EXPECT_TRUE(np.negated());
}

TEST(PredicateTest, NegatedMatchesNull) {
  Predicate p = Predicate::Equals("country", "US").Negate();
  EXPECT_TRUE(p.Matches(Value::Null()));
}

TEST(PredicateTest, EvaluateProducesMask) {
  Predicate p = Predicate::Equals("country", "US");
  auto mask = *p.Evaluate(CountriesTable());
  EXPECT_EQ(mask, (std::vector<uint8_t>{1, 0, 0, 1, 0, 0}));
}

TEST(PredicateTest, EvaluateMissingAttributeFails) {
  Predicate p = Predicate::Equals("nope", "US");
  EXPECT_FALSE(p.Evaluate(CountriesTable()).ok());
}

TEST(PredicateTest, MatchingValues) {
  Table t = CountriesTable();
  Domain d = *Domain::FromColumn(t, "country");
  Predicate p = Predicate::In("country", {Value("US"), Value("JP"),
                                          Value("Absent")});
  auto matching = p.MatchingValues(d);
  EXPECT_EQ(matching.size(), 2u);  // "Absent" not in the domain.
}

TEST(PredicateTest, MatchingValuesOfNegation) {
  Table t = CountriesTable();
  Domain d = *Domain::FromColumn(t, "country");
  Predicate p = Predicate::IsNotNull("country");
  EXPECT_EQ(p.MatchingValues(d).size(), d.size() - 1);
}

TEST(PredicateTest, AttributeAccessor) {
  EXPECT_EQ(Predicate::Equals("country", "US").attribute(), "country");
}

TEST(PredicateTest, UdfEvaluatedPerDistinctValue) {
  // The UDF must be called once per distinct value, not once per row.
  int calls = 0;
  Predicate p = Predicate::Udf("country", [&calls](const Value& v) {
    ++calls;
    return !v.is_null();
  });
  (void)*p.Evaluate(CountriesTable());
  EXPECT_EQ(calls, 5);  // 5 distinct values (US, FR, DE, null, JP).
}

TEST(PredicateTest, IntegerDomainPredicate) {
  Schema s = *Schema::Make(
      {Field{"section", ValueType::kInt64, AttributeKind::kDiscrete}});
  TableBuilder b(s);
  b.Row({Value(1)}).Row({Value(2)}).Row({Value(1)}).Row({Value(3)});
  Table t = *b.Finish();
  EXPECT_EQ(*Predicate::Equals("section", Value(1)).CountMatches(t), 2u);
  EXPECT_EQ(*Predicate::In("section", {Value(2), Value(3)}).CountMatches(t),
            2u);
}

}  // namespace
}  // namespace privateclean
