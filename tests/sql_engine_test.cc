// Differential and statistical acceptance suite for the vectorized batch
// engine behind the SQL layer.
//
// sql_test.cc proves the grammar parses and routes; this file proves the
// engine underneath is *correct*:
//   - differential: CompiledPredicate's batched kernels (dictionary
//     gather, typed numeric loops, mask combination) must agree row for
//     row with a naive boxed reference that re-evaluates every Predicate
//     / SqlExpr per row — on a table large enough to cross shard and
//     batch boundaries, with NULLs in every column.
//   - determinism: masks, aggregates, and grouped SQL results must be
//     bit-identical at 1, 2 and 8 threads (the batch size is a constant,
//     never a function of the thread count).
//   - statistical: the new SQL forms (range predicates, boolean trees,
//     GROUP BY) must produce *bias-corrected* estimates — fixed-seed
//     runs land within the reported confidence interval of ground truth,
//     where the uncorrected Direct reading is far outside it.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/privateclean.h"

namespace privateclean {
namespace {

// ---------------------------------------------------------------------------
// Fixed-seed table: three columns (string with NULLs, int64, double with
// NULLs), 40000 rows — more than two kRowsPerShard shards, each spanning
// many kVectorBatchRows batches plus a ragged tail batch.
// ---------------------------------------------------------------------------

constexpr size_t kRows = 40000;

Table RandomTable() {
  Schema schema = *Schema::Make(
      {Field::Discrete("city"),
       Field::Numerical("age", ValueType::kInt64),
       Field::Numerical("score", ValueType::kDouble)});
  TableBuilder builder(schema);
  Rng rng(20260808);
  const std::vector<std::string> cities = {"Berkeley", "Boston", "Chicago",
                                           "Detroit",  "",       "Austin"};
  for (size_t r = 0; r < kRows; ++r) {
    Value city = rng.Bernoulli(0.05)
                     ? Value::Null()
                     : Value(cities[rng.UniformInt(cities.size())]);
    Value age(rng.UniformIntRange(18, 90));
    Value score = rng.Bernoulli(0.03)
                      ? Value::Null()
                      : Value(rng.UniformRealRange(0.0, 10.0));
    builder.Row({city, age, score});
  }
  return *builder.Finish();
}

const Table& SharedTable() {
  static const Table table = RandomTable();
  return table;
}

// Naive reference: one boxed Matches call per row, no batching, no
// dictionary gather, no typed kernels.
std::vector<uint8_t> ReferenceMask(const Table& table, const Predicate& pred) {
  const Column& col = **table.ColumnByName(pred.attribute());
  std::vector<uint8_t> mask(table.num_rows());
  for (size_t r = 0; r < table.num_rows(); ++r) {
    mask[r] = pred.Matches(col.ValueAt(r)) ? 1 : 0;
  }
  return mask;
}

bool ReferenceExprMatchesRow(const Table& table, const SqlExpr& expr,
                             size_t row) {
  switch (expr.kind) {
    case SqlExpr::Kind::kCondition: {
      const Column& col = **table.ColumnByName(expr.condition.attribute);
      return SqlConditionMatches(expr.condition, col.ValueAt(row));
    }
    case SqlExpr::Kind::kNot:
      return !ReferenceExprMatchesRow(table, expr.children[0], row);
    case SqlExpr::Kind::kAnd:
      for (const SqlExpr& child : expr.children) {
        if (!ReferenceExprMatchesRow(table, child, row)) return false;
      }
      return true;
    case SqlExpr::Kind::kOr:
      for (const SqlExpr& child : expr.children) {
        if (ReferenceExprMatchesRow(table, child, row)) return true;
      }
      return false;
  }
  return false;
}

std::vector<uint8_t> ReferenceMask(const Table& table, const SqlExpr& expr) {
  std::vector<uint8_t> mask(table.num_rows());
  for (size_t r = 0; r < table.num_rows(); ++r) {
    mask[r] = ReferenceExprMatchesRow(table, expr, r) ? 1 : 0;
  }
  return mask;
}

size_t CountMask(const std::vector<uint8_t>& mask) {
  size_t n = 0;
  for (uint8_t m : mask) n += m;
  return n;
}

// The predicate battery: every kernel the compiler can pick — string
// dictionary match tables (equals/in/null/udf/negate), typed int64 and
// double comparison loops for every operator, membership over numerics,
// and UDF fallback on a numeric column.
std::vector<Predicate> PredicateBattery() {
  std::vector<Predicate> battery;
  battery.push_back(Predicate::Equals("city", Value("Boston")));
  battery.push_back(Predicate::Equals("city", Value("")));
  battery.push_back(Predicate::Equals("city", Value::Null()));
  battery.push_back(Predicate::Equals("city", Value("Nowhere")));
  battery.push_back(
      Predicate::In("city", {Value("Austin"), Value("Chicago"), Value("")}));
  battery.push_back(Predicate::IsNull("city"));
  battery.push_back(Predicate::IsNotNull("score"));
  battery.push_back(
      Predicate::Equals("city", Value("Detroit")).Negate());
  battery.push_back(
      Predicate::Udf("city", [](const Value& v) {
        return !v.is_null() && !v.ToString().empty() &&
               v.ToString()[0] == 'B';
      }));
  for (CompareOp op : {CompareOp::kLt, CompareOp::kLe, CompareOp::kGt,
                       CompareOp::kGe, CompareOp::kEq, CompareOp::kNe}) {
    battery.push_back(Predicate::Compare("age", op, Value(int64_t{40})));
    battery.push_back(Predicate::Compare("score", op, Value(5.0)));
  }
  // int64 column against a double bound: promotion path.
  battery.push_back(Predicate::Compare("age", CompareOp::kLt, Value(40.5)));
  battery.push_back(
      Predicate::Compare("age", CompareOp::kGe, Value(40.5)).Negate());
  // String ordering: lexicographic comparison kernel.
  battery.push_back(
      Predicate::Compare("city", CompareOp::kGe, Value("Boston")));
  battery.push_back(
      Predicate::In("age", {Value(int64_t{20}), Value(int64_t{30}),
                            Value(int64_t{77})}));
  battery.push_back(Predicate::Udf("score", [](const Value& v) {
    return !v.is_null() && std::fmod(v.AsDouble(), 1.0) < 0.25;
  }));
  return battery;
}

// WHERE trees, parsed from SQL so the battery also covers the planner's
// retained-tree representation: multi-attribute AND/OR/NOT mask
// combination, ranges, IN, IS NULL.
std::vector<std::string> TreeBattery() {
  return {
      "age >= 30 AND age < 60",
      "city = 'Boston' OR city = 'Austin'",
      "NOT (age < 25 OR age > 80)",
      "city = 'Boston' AND score >= 5.0",
      "(age >= 30 AND age < 60) OR (city = 'Chicago' AND score < 2.5)",
      "NOT (city = 'Detroit' AND age >= 40)",
      "city IS NULL OR score IS NULL",
      "city IS NOT NULL AND city != ''",
      "age IN (20, 30, 40) AND score IS NOT NULL",
      "NOT city = 'Boston' AND NOT city = 'Austin' AND age <= 50",
      "score > 2.5 AND score <= 7.5 AND city >= 'B' AND city < 'D'",
  };
}

Result<SqlExpr> ParseWhere(const std::string& condition) {
  PCLEAN_ASSIGN_OR_RETURN(
      ParsedSql parsed,
      ParseSql("SELECT count(1) FROM t WHERE " + condition));
  return *parsed.where;
}

// ---------------------------------------------------------------------------
// Differential: vectorized vs boxed row loop
// ---------------------------------------------------------------------------

TEST(SqlEngineDifferentialTest, PredicateKernelsMatchBoxedRowLoop) {
  const Table& table = SharedTable();
  size_t index = 0;
  for (const Predicate& pred : PredicateBattery()) {
    SCOPED_TRACE("predicate #" + std::to_string(index++) + " on " +
                 pred.attribute());
    std::vector<uint8_t> expected = ReferenceMask(table, pred);
    auto compiled = CompiledPredicate::Compile(table, pred);
    ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
    std::vector<uint8_t> got = *compiled->EvaluateAll(table.num_rows());
    ASSERT_EQ(got.size(), expected.size());
    EXPECT_EQ(0, std::memcmp(got.data(), expected.data(), got.size()))
        << "mask mismatch (" << CountMask(got) << " vs "
        << CountMask(expected) << " matching rows)";
  }
}

TEST(SqlEngineDifferentialTest, WhereTreeMasksMatchRecursiveReference) {
  const Table& table = SharedTable();
  for (const std::string& condition : TreeBattery()) {
    SCOPED_TRACE("WHERE " + condition);
    auto expr = ParseWhere(condition);
    ASSERT_TRUE(expr.ok()) << expr.status().ToString();
    std::vector<uint8_t> expected = ReferenceMask(table, *expr);
    auto compiled = CompiledPredicate::Compile(table, *expr);
    ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
    std::vector<uint8_t> got = *compiled->EvaluateAll(table.num_rows());
    ASSERT_EQ(got.size(), expected.size());
    EXPECT_EQ(0, std::memcmp(got.data(), expected.data(), got.size()))
        << "mask mismatch (" << CountMask(got) << " vs "
        << CountMask(expected) << " matching rows)";
  }
}

TEST(SqlEngineDifferentialTest, AggregatesMatchBoxedRowLoop) {
  // COUNT and SUM re-derived from the reference mask and boxed getters;
  // the vectorized count must agree exactly, the sum to within FP merge
  // reassociation (per-shard partials vs one running total).
  const Table& table = SharedTable();
  const Column& score = **table.ColumnByName("score");
  for (const std::string& condition : TreeBattery()) {
    SCOPED_TRACE("WHERE " + condition);
    SqlExpr expr = *ParseWhere(condition);
    std::vector<uint8_t> mask = ReferenceMask(table, expr);
    double ref_count = static_cast<double>(CountMask(mask));
    double ref_sum = 0.0;
    for (size_t r = 0; r < table.num_rows(); ++r) {
      if (mask[r] && !score.IsNull(r)) ref_sum += score.DoubleAt(r);
    }
    CompiledPredicate compiled = *CompiledPredicate::Compile(table, expr);
    AggregateQuery count_query;
    count_query.agg = AggregateType::kCount;
    EXPECT_EQ(*ExecuteAggregate(table, count_query, compiled), ref_count);
    AggregateQuery sum_query;
    sum_query.agg = AggregateType::kSum;
    sum_query.numeric_attribute = "score";
    EXPECT_NEAR(*ExecuteAggregate(table, sum_query, compiled), ref_sum,
                1e-9 * (1.0 + std::abs(ref_sum)));
  }
}

// ---------------------------------------------------------------------------
// Determinism: bit-identical at 1, 2 and 8 threads
// ---------------------------------------------------------------------------

TEST(SqlEngineDeterminismTest, MasksAreBitIdenticalAcrossThreadCounts) {
  const Table& table = SharedTable();
  for (const std::string& condition : TreeBattery()) {
    SCOPED_TRACE("WHERE " + condition);
    CompiledPredicate compiled =
        *CompiledPredicate::Compile(table, *ParseWhere(condition));
    ExecutionOptions one;
    one.num_threads = 1;
    std::vector<uint8_t> baseline =
        *compiled.EvaluateAll(table.num_rows(), one);
    for (size_t threads : {2u, 8u}) {
      ExecutionOptions exec;
      exec.num_threads = threads;
      std::vector<uint8_t> mask =
          *compiled.EvaluateAll(table.num_rows(), exec);
      EXPECT_EQ(0,
                std::memcmp(mask.data(), baseline.data(), baseline.size()))
          << "thread count " << threads << " changed the mask";
    }
  }
}

TEST(SqlEngineDeterminismTest, AggregatesAreBitIdenticalAcrossThreadCounts) {
  // EXPECT_EQ on doubles, not EXPECT_NEAR: merging per-shard partials in
  // shard index order must make even the floating-point results exact
  // across thread counts (the shard layout depends only on the row count).
  const Table& table = SharedTable();
  CompiledPredicate compiled = *CompiledPredicate::Compile(
      table, *ParseWhere("age >= 30 AND age < 60"));
  for (AggregateType agg :
       {AggregateType::kCount, AggregateType::kSum, AggregateType::kAvg,
        AggregateType::kVar, AggregateType::kStd, AggregateType::kMedian,
        AggregateType::kMin, AggregateType::kMax}) {
    SCOPED_TRACE(AggregateTypeToString(agg));
    AggregateQuery query;
    query.agg = agg;
    query.numeric_attribute = "score";
    ExecutionOptions one;
    one.num_threads = 1;
    double baseline = *ExecuteAggregate(table, query, compiled, one);
    for (size_t threads : {2u, 8u}) {
      ExecutionOptions exec;
      exec.num_threads = threads;
      EXPECT_EQ(*ExecuteAggregate(table, query, compiled, exec), baseline)
          << "thread count " << threads << " changed the result";
    }
  }
}

TEST(SqlEngineDeterminismTest, GroupedSqlResultsAreBitIdentical) {
  // End to end through the private path: same seed, different thread
  // counts, identical grouped rows (keys, estimates, and CIs).
  Rng rng(77);
  Table table = RandomTable();
  PrivateTable pt = *PrivateTable::Create(
      table, GrrParams::Uniform(0.1, 1.0), GrrOptions{}, rng);
  const std::string sql =
      "SELECT count(1) FROM t GROUP BY city ORDER BY count(1) DESC LIMIT 4";
  QueryOptions one;
  one.exec.num_threads = 1;
  SqlResultSet baseline = *ExecuteSqlQuery(pt, sql, one);
  ASSERT_TRUE(baseline.grouped);
  ASSERT_EQ(baseline.rows.size(), 4u);
  for (size_t threads : {2u, 8u}) {
    QueryOptions options;
    options.exec.num_threads = threads;
    SqlResultSet got = *ExecuteSqlQuery(pt, sql, options);
    ASSERT_EQ(got.rows.size(), baseline.rows.size());
    for (size_t i = 0; i < got.rows.size(); ++i) {
      SCOPED_TRACE("row " + std::to_string(i) + " at " +
                   std::to_string(threads) + " threads");
      EXPECT_EQ(RenderSqlLiteral(*got.rows[i].group),
                RenderSqlLiteral(*baseline.rows[i].group));
      EXPECT_EQ(got.rows[i].result.estimate, baseline.rows[i].result.estimate);
      EXPECT_EQ(got.rows[i].result.ci.lo, baseline.rows[i].result.ci.lo);
      EXPECT_EQ(got.rows[i].result.ci.hi, baseline.rows[i].result.ci.hi);
    }
  }
}

// ---------------------------------------------------------------------------
// Statistical: new SQL forms produce bias-corrected estimates
// ---------------------------------------------------------------------------

// Skewed categories so the GRR bias is large enough to separate the
// corrected estimator from the uncorrected Direct reading.
Table SkewedCategoryTable() {
  const std::vector<size_t> counts = {6000, 4000, 2500, 1500, 800, 200};
  Schema schema = *Schema::Make({Field::Discrete("category")});
  TableBuilder builder(schema);
  for (size_t j = 0; j < counts.size(); ++j) {
    for (size_t k = 0; k < counts[j]; ++k) {
      builder.Row({Value("c" + std::to_string(j))});
    }
  }
  return *builder.Finish();
}

TEST(SqlEngineStatisticalTest, RangeCountIsBiasCorrected) {
  // SELECT count(1) WHERE category >= 'c4' selects the two rarest
  // categories (1000 of 15000 rows). Uniform redraws inflate the nominal
  // count towards S·|M_pred|/N; the corrected estimate must land inside
  // its own CI around ground truth while Direct stays far outside.
  Table table = SkewedCategoryTable();
  double truth = *ExecuteAggregate(
      table, AggregateQuery::Count(
                 Predicate::Compare("category", CompareOp::kGe, Value("c4"))));
  ASSERT_EQ(truth, 1000.0);

  Rng rng(42);
  PrivateTable pt = *PrivateTable::Create(
      table, GrrParams::Uniform(0.5, 1.0), GrrOptions{}, rng);
  const std::string sql =
      "SELECT count(1) FROM t WHERE category >= 'c4'";
  SqlResultSet result = *ExecuteSqlQuery(pt, sql);
  ASSERT_FALSE(result.grouped);
  const QueryResult& estimate = result.rows[0].result;
  EXPECT_LE(estimate.ci.lo, truth);
  EXPECT_GE(estimate.ci.hi, truth);
  EXPECT_NEAR(estimate.estimate, truth, 0.15 * truth);

  // Direct reads the inflated nominal count: p·S·l/N = 0.5·15000·2/6 =
  // 2500 expected redraw mass alone puts it far above 1000.
  double direct = ExecuteSqlDirect(pt, sql)->estimate;
  EXPECT_GT(direct, 1.8 * truth);
  // And the SQL route must agree exactly with the native Predicate route:
  // same estimator, same scan, same correction.
  EXPECT_EQ(estimate.estimate,
            pt.Count(Predicate::Compare("category", CompareOp::kGe,
                                        Value("c4")))
                ->estimate);
}

TEST(SqlEngineStatisticalTest, BooleanTreeCountIsBiasCorrected) {
  // A NOT(... OR ...) tree over one attribute collapses to a Udf
  // predicate; the correction still applies because the estimators only
  // need M_pred.
  Table table = SkewedCategoryTable();
  double truth = *ExecuteAggregate(
      table,
      AggregateQuery::Count(Predicate::In(
          "category", {Value("c0"), Value("c5")})));
  ASSERT_EQ(truth, 6200.0);

  Rng rng(7);
  PrivateTable pt = *PrivateTable::Create(
      table, GrrParams::Uniform(0.5, 1.0), GrrOptions{}, rng);
  SqlResultSet result = *ExecuteSqlQuery(
      pt,
      "SELECT count(1) FROM t WHERE NOT (category > 'c0' AND category < "
      "'c5')");
  const QueryResult& estimate = result.rows[0].result;
  EXPECT_LE(estimate.ci.lo, truth);
  EXPECT_GE(estimate.ci.hi, truth);
  EXPECT_NEAR(estimate.estimate, truth, 0.15 * truth);
}

TEST(SqlEngineStatisticalTest, GroupByCountsAreBiasCorrectedPerGroup) {
  // Every group's corrected estimate must be closer to its true count
  // than the uncorrected Direct group count, summed over groups.
  Table table = SkewedCategoryTable();
  auto truth = *GroupByCount(table, "category");

  Rng rng(11);
  PrivateTable pt = *PrivateTable::Create(
      table, GrrParams::Uniform(0.5, 1.0), GrrOptions{}, rng);
  const std::string sql = "SELECT count(1) FROM t GROUP BY category";
  SqlResultSet corrected = *ExecuteSqlQuery(pt, sql);
  SqlResultSet direct = *ExecuteSqlQueryDirect(pt, sql);
  ASSERT_EQ(corrected.rows.size(), truth.size());
  ASSERT_EQ(direct.rows.size(), truth.size());

  // The two paths may order groups differently; key by group value.
  std::map<Value, double> corrected_by_group, direct_by_group;
  for (const SqlRow& row : corrected.rows) {
    corrected_by_group[*row.group] = row.result.estimate;
  }
  for (const SqlRow& row : direct.rows) {
    direct_by_group[*row.group] = row.result.estimate;
  }

  double corrected_error = 0.0, direct_error = 0.0;
  for (const auto& [group, count] : truth) {
    SCOPED_TRACE("group " + RenderSqlLiteral(group));
    ASSERT_EQ(corrected_by_group.count(group), 1u);
    ASSERT_EQ(direct_by_group.count(group), 1u);
    double true_count = static_cast<double>(count);
    corrected_error += std::abs(corrected_by_group[group] - true_count);
    direct_error += std::abs(direct_by_group[group] - true_count);
  }
  EXPECT_LT(corrected_error, direct_error);
  EXPECT_LT(corrected_error, 0.10 * static_cast<double>(table.num_rows()));
}

}  // namespace
}  // namespace privateclean
