#include <gtest/gtest.h>

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "common/random.h"
#include "common/string_util.h"
#include "core/admission.h"
#include "core/release.h"
#include "datagen/synthetic.h"
#include "privacy/grr.h"
#include "privacy/ledger.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"

// Concurrency torture for `pclean serve` (ctest labels: server,
// failpoint). The claims under test:
//
//  - N threads × M sessions of mixed traffic — admissible queries,
//    overdrafts, malformed SQL — each get their own typed answer, and
//    sessions never bleed into each other;
//  - concurrent charges by one tenant never jointly overdraft and never
//    double-admit: with budget for exactly K queries, exactly K of many
//    racing attempts succeed;
//  - a RESULT on the wire implies the charge was durable first: after a
//    hard kill (SIGKILL) mid-traffic, the recovered ledger satisfies
//    acknowledged·cost <= spent <= attempted·cost;
//  - a framing fault (bit flip on a received payload) kills exactly the
//    session it hit, with a typed DataLoss, and nobody else;
//  - drain answers what is queued, says GOODBYE, and unlinks the socket;
//    idle sessions are timed out with a GOODBYE of their own.

namespace privateclean {
namespace {

using server::Client;
using server::Frame;
using server::FrameReader;
using server::FrameType;
using server::QueryRequest;
using server::Server;
using server::ServerOptions;

constexpr char kChargedSql[] =
    "SELECT count(1) FROM r WHERE category = 'c1'";
constexpr char kFreeSql[] = "SELECT count(1) FROM r";
constexpr char kMalformedSql[] = "SELECT nope(";
constexpr char kUnknownAttrSql[] =
    "SELECT count(1) FROM r WHERE ghost = 'x'";

class ServerTortureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const char* name =
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    base_ = ::testing::TempDir() + "/pclean_server_" + name;
    std::filesystem::remove_all(base_);
    std::filesystem::create_directories(base_);
    release_dir_ = base_ + "/release";
    ledger_dir_ = base_ + "/ledger";

    SyntheticOptions options;
    options.num_rows = 300;
    options.num_distinct = 10;
    Rng data_rng(11);
    Table dirty = *GenerateSynthetic(options, data_rng);
    GrrOptions grr_options;
    Rng grr_rng(22);
    GrrOutput grr =
        *ApplyGrr(dirty, GrrParams::Uniform(0.25, 4.0), grr_options, grr_rng);
    ASSERT_TRUE(WriteRelease(grr, release_dir_).ok());
  }

  void TearDown() override {
    failpoint::DeactivateAll();
    std::filesystem::remove_all(base_);
    for (const std::string& path : sockets_) {
      ::unlink(path.c_str());
      ::unlink((path + ".lock").c_str());
    }
  }

  /// Socket paths live directly under /tmp: sun_path caps at ~107 bytes
  /// and gtest temp dirs plus long test names can blow past it.
  std::string NewSocketPath() {
    std::string path = "/tmp/pcsrv_" + std::to_string(::getpid()) + "_" +
                       std::to_string(sockets_.size()) + ".sock";
    sockets_.push_back(path);
    ::unlink(path.c_str());
    return path;
  }

  ServerOptions BaseOptions(const std::string& socket_path,
                            bool with_ledger) {
    ServerOptions options;
    options.socket_path = socket_path;
    options.release_dirs = {release_dir_};
    if (with_ledger) options.ledger_dir = ledger_dir_;
    options.pool_threads = 4;
    return options;
  }

  void Grant(const std::string& tenant, double epsilon) {
    BudgetLedger ledger = *BudgetLedger::Open(ledger_dir_);
    ASSERT_TRUE(ledger.Grant(tenant, epsilon).ok());
  }

  /// The ε price of kChargedSql, measured by admitting it once for a
  /// throwaway tenant (the probe's charge stays in the ledger; every
  /// assertion below uses tenants of its own).
  double ChargedCost() {
    BudgetLedger ledger = *BudgetLedger::Open(ledger_dir_);
    EXPECT_TRUE(ledger.Grant("__cost_probe", 1000.0).ok());
    PrivateTable table = *OpenRelease(release_dir_);
    AdmissionTicket ticket =
        *AdmitSqlQuery(ledger, "__cost_probe", table, kChargedSql);
    EXPECT_GT(ticket.cost, 0.0);
    return ticket.cost;
  }

  double Spent(const std::string& tenant) {
    BudgetLedger ledger = *BudgetLedger::Open(ledger_dir_);
    return ledger.BudgetOrZero(tenant).spent;
  }

  /// Raw connection for protocol-level tests (malformed bytes,
  /// pipelining) where the polite Client would get in the way.
  int RawConnect(const std::string& socket_path) {
    sockaddr_un addr;
    std::memset(&addr, 0, sizeof addr);
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, socket_path.data(), socket_path.size());
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
              0)
        << std::strerror(errno);
    return fd;
  }

  void RawSend(int fd, const std::string& bytes) {
    size_t sent = 0;
    while (sent < bytes.size()) {
      ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                         MSG_NOSIGNAL);
      ASSERT_GT(n, 0) << std::strerror(errno);
      sent += static_cast<size_t>(n);
    }
  }

  void RawHello(int fd, FrameReader& reader, const std::string& tenant = "",
                const std::string& release = "") {
    server::HelloRequest hello;
    hello.tenant = tenant;
    hello.release = release;
    RawSend(fd, EncodeFrame(Frame{FrameType::kHello, RenderHello(hello)}));
    auto welcome = reader.Read(10000);
    ASSERT_TRUE(welcome.ok()) << welcome.status().ToString();
    ASSERT_TRUE(welcome->has_value());
    ASSERT_EQ((*welcome)->type, FrameType::kWelcome);
  }

  std::string base_, release_dir_, ledger_dir_;
  std::vector<std::string> sockets_;
};

TEST_F(ServerTortureTest, MixedTrafficAcrossManySessionsStaysTyped) {
  const double cost = ChargedCost();
  Grant("rich", 1e6);
  // Budget for exactly one charged query (plus margin against float
  // dust): of all the racing "poor" attempts below, exactly one may win.
  Grant("poor", 1.5 * cost);

  std::atomic<int> rich_charged{0};
  std::atomic<int> poor_admitted{0};
  std::atomic<int> poor_overdrafted{0};
  std::atomic<int> results_seen{0};
  std::atomic<int> failures{0};
  uint64_t served = 0;
  {
    Server srv = *Server::Start(BaseOptions(NewSocketPath(), true));
    auto rich_worker = [&] {
      for (int session = 0; session < 3; ++session) {
        auto client = Client::Connect(srv.socket_path(), "rich");
        if (!client.ok()) {
          ++failures;
          return;
        }
        // One session, five queries, four outcome types: the point is
        // that each reply is typed for ITS request, interleaved with
        // every other session's traffic.
        auto ok1 = client->Query(kChargedSql);
        if (ok1.ok() && ok1->find("charged epsilon") != std::string::npos) {
          ++rich_charged;
          ++results_seen;
        } else {
          ++failures;
        }
        auto bad = client->Query(kMalformedSql);
        if (!bad.ok() && bad.status().IsInvalidArgument()) {
        } else {
          ++failures;
        }
        auto ghost = client->Query(kUnknownAttrSql);
        if (!ghost.ok() && ghost.status().IsNotFound()) {
        } else {
          ++failures;
        }
        auto direct = client->Query(kFreeSql, /*direct=*/true);
        if (direct.ok() && direct->find("direct: ") != std::string::npos) {
          ++results_seen;
        } else {
          ++failures;
        }
        auto ok2 = client->Query(kChargedSql);
        if (ok2.ok()) {
          ++rich_charged;
          ++results_seen;
        } else {
          ++failures;
        }
        (void)client->Bye();
      }
    };
    auto poor_worker = [&] {
      for (int session = 0; session < 3; ++session) {
        auto client = Client::Connect(srv.socket_path(), "poor");
        if (!client.ok()) {
          ++failures;
          return;
        }
        for (int attempt = 0; attempt < 2; ++attempt) {
          auto reply = client->Query(kChargedSql);
          if (reply.ok()) {
            ++poor_admitted;
            ++results_seen;
          } else if (reply.status().IsResourceExhausted()) {
            ++poor_overdrafted;
          } else {
            ++failures;
          }
        }
        (void)client->Bye();
      }
    };
    std::vector<std::thread> threads;
    for (int i = 0; i < 4; ++i) threads.emplace_back(rich_worker);
    for (int i = 0; i < 2; ++i) threads.emplace_back(poor_worker);
    for (auto& t : threads) t.join();
    served = srv.queries_served();
    ASSERT_TRUE(srv.Drain().ok());
  }

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(rich_charged.load(), 4 * 3 * 2);
  // The no-double-admit claim, cross-session: one budget, one winner.
  EXPECT_EQ(poor_admitted.load(), 1);
  EXPECT_EQ(poor_overdrafted.load(), 2 * 3 * 2 - 1);
  EXPECT_EQ(served, static_cast<uint64_t>(results_seen.load()));
  EXPECT_NEAR(Spent("rich"), rich_charged.load() * cost, 1e-6);
  EXPECT_NEAR(Spent("poor"), cost, 1e-9);
}

TEST_F(ServerTortureTest, ConcurrentSameTenantChargesAdmitExactlyK) {
  const double cost = ChargedCost();
  constexpr int kAdmissible = 5;
  Grant("team", (kAdmissible + 0.5) * cost);

  std::atomic<int> admitted{0};
  std::atomic<int> rejected{0};
  std::atomic<int> failures{0};
  {
    Server srv = *Server::Start(BaseOptions(NewSocketPath(), true));
    std::vector<std::thread> threads;
    for (int i = 0; i < 8; ++i) {
      threads.emplace_back([&] {
        auto client = Client::Connect(srv.socket_path(), "team");
        if (!client.ok()) {
          ++failures;
          return;
        }
        for (int attempt = 0; attempt < 3; ++attempt) {
          auto reply = client->Query(kChargedSql);
          if (reply.ok()) {
            ++admitted;
          } else if (reply.status().IsResourceExhausted()) {
            ++rejected;
          } else {
            ++failures;
          }
        }
      });
    }
    for (auto& t : threads) t.join();
    ASSERT_TRUE(srv.Drain().ok());
  }
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(admitted.load(), kAdmissible);
  EXPECT_EQ(rejected.load(), 8 * 3 - kAdmissible);
  EXPECT_NEAR(Spent("team"), kAdmissible * cost, 1e-6);
}

#ifdef PCLEAN_BINARY
TEST_F(ServerTortureTest, HardKillMidTrafficKeepsLedgerInvariant) {
  const double cost = ChargedCost();
  Grant("t", 1e9);
  std::string socket_path = NewSocketPath();

  pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    int devnull = ::open("/dev/null", O_WRONLY);
    ::dup2(devnull, STDOUT_FILENO);
    ::dup2(devnull, STDERR_FILENO);
    ::execl(PCLEAN_BINARY, PCLEAN_BINARY, "serve", release_dir_.c_str(),
            "--socket", socket_path.c_str(), "--ledger", ledger_dir_.c_str(),
            "--serve-for-ms", "60000", "--pool-threads", "4",
            static_cast<char*>(nullptr));
    ::_exit(127);
  }
  // Wait for the socket to come up (the release + ledger open first).
  bool up = false;
  for (int i = 0; i < 300 && !up; ++i) {
    struct stat st;
    up = ::stat(socket_path.c_str(), &st) == 0;
    if (!up) std::this_thread::sleep_for(std::chrono::milliseconds(100));
    int wait_status;
    ASSERT_EQ(::waitpid(pid, &wait_status, WNOHANG), 0)
        << "server exited before coming up";
  }
  ASSERT_TRUE(up);

  std::atomic<bool> stop{false};
  std::atomic<int> attempted{0};     // QUERY frames we tried to send
  std::atomic<int> acknowledged{0};  // RESULT frames we received
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&] {
      while (!stop.load()) {
        auto client = Client::Connect(socket_path, "t");
        if (!client.ok()) {
          std::this_thread::sleep_for(std::chrono::milliseconds(20));
          continue;
        }
        while (!stop.load()) {
          ++attempted;
          auto reply = client->Query(kChargedSql);
          if (!reply.ok()) break;  // killed mid-flight, or conn torn
          ++acknowledged;
        }
      }
    });
  }
  // Let real traffic build, then kill without warning: no drain, no WAL
  // flush courtesy, mid-query very likely.
  for (int i = 0; i < 500 && acknowledged.load() < 5; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ::kill(pid, SIGKILL);
  int wait_status = 0;
  ::waitpid(pid, &wait_status, 0);
  ASSERT_TRUE(WIFSIGNALED(wait_status));
  stop.store(true);
  for (auto& t : threads) t.join();
  ::unlink(socket_path.c_str());

  ASSERT_GT(acknowledged.load(), 0) << "no traffic flowed before the kill";
  // Recovery invariant (the tentpole's ledger claim): every RESULT we
  // hold was charged durably BEFORE executing, and nothing beyond our
  // attempts can have been charged. spent ∈ [acked·cost, attempted·cost].
  const double spent = Spent("t");
  EXPECT_GE(spent, acknowledged.load() * cost - 1e-6)
      << "a query was answered without its charge surviving the crash";
  EXPECT_LE(spent, attempted.load() * cost + 1e-6)
      << "more charges survived than queries were ever sent";
}
#endif  // PCLEAN_BINARY

TEST_F(ServerTortureTest, FramingFaultKillsExactlyTheSessionItHit) {
  if (!failpoint::CompiledIn()) GTEST_SKIP() << "failpoints compiled out";
  Server srv = *Server::Start(BaseOptions(NewSocketPath(), false));
  Client a = *Client::Connect(srv.socket_path());
  Client b = *Client::Connect(srv.socket_path());
  ASSERT_TRUE(a.Query(kFreeSql).ok());
  ASSERT_TRUE(b.Query(kFreeSql).ok());

  // One bit flip on the next payload the server reads: that is A's
  // QUERY below (B is idle, so no other payload is in flight).
  failpoint::Fault fault =
      failpoint::DefaultFault("server.frame.read.bitflip");
  fault.remaining = 1;
  ASSERT_TRUE(failpoint::Activate("server.frame.read.bitflip", fault).ok());
  auto corrupted = a.Query(kFreeSql);
  ASSERT_FALSE(corrupted.ok());
  EXPECT_TRUE(corrupted.status().IsDataLoss())
      << corrupted.status().ToString();
  // The corrupted stream cannot be resynchronized: A's session is dead.
  EXPECT_FALSE(a.Query(kFreeSql).ok());
  // B never noticed.
  EXPECT_TRUE(b.Query(kFreeSql).ok()) << "sibling session was not isolated";
  failpoint::DeactivateAll();
  EXPECT_TRUE(b.Query(kFreeSql).ok());
  ASSERT_TRUE(srv.Drain().ok());
}

TEST_F(ServerTortureTest, ShortWriteFaultSurfacesAsTornFrameAtTheClient) {
  if (!failpoint::CompiledIn()) GTEST_SKIP() << "failpoints compiled out";
  Server srv = *Server::Start(BaseOptions(NewSocketPath(), false));
  // Raw socket on purpose: `server.frame.write.short` sits in the shared
  // WriteFrame, so a polite Client would trip the fault on its own QUERY
  // write before the server ever replies. Sending the request with raw
  // send() leaves the server's RESULT write as the only WriteFrame in
  // the process — the one the fault is meant to tear.
  int fd = RawConnect(srv.socket_path());
  FrameReader reader(fd);
  failpoint::Fault fault =
      failpoint::DefaultFault("server.frame.write.short");
  fault.remaining = 1;
  RawHello(fd, reader);
  ASSERT_TRUE(failpoint::Activate("server.frame.write.short", fault).ok());
  QueryRequest request;
  request.sql = kFreeSql;
  RawSend(fd, EncodeFrame(Frame{FrameType::kQuery,
                                server::RenderQueryRequest(request)}));
  // Half-close after the request: the strand answers the QUERY (torn by
  // the fault), then sees our EOF and closes. The client reader ends up
  // with a partial RESULT terminated by EOF — which the framing layer
  // must type as DataLoss, never hand back as a short answer.
  ASSERT_EQ(::shutdown(fd, SHUT_WR), 0);
  auto reply = reader.Read(20000);
  ASSERT_FALSE(reply.ok()) << "a torn RESULT was accepted: "
                           << (reply->has_value() ? (*reply)->payload
                                                  : "<eof>");
  EXPECT_TRUE(reply.status().IsDataLoss()) << reply.status().ToString();
  ::close(fd);
  failpoint::DeactivateAll();
  ASSERT_TRUE(srv.Drain().ok());
}

TEST_F(ServerTortureTest, TornClientFrameCannotWedgeTheServer) {
  if (!failpoint::CompiledIn()) GTEST_SKIP() << "failpoints compiled out";
  // The dual direction: a client whose QUERY loses its tail (the fault
  // fires on the Client's own WriteFrame) leaves the server waiting
  // mid-frame. The idle reaper must collect that half-dead session
  // instead of letting it pin the server forever.
  ServerOptions options = BaseOptions(NewSocketPath(), false);
  options.idle_timeout_ms = 300;
  Server srv = *Server::Start(options);
  Client client = *Client::Connect(srv.socket_path());
  ASSERT_TRUE(client.Query(kFreeSql).ok());
  failpoint::Fault fault =
      failpoint::DefaultFault("server.frame.write.short");
  fault.remaining = 1;
  ASSERT_TRUE(failpoint::Activate("server.frame.write.short", fault).ok());
  auto reply = client.Query(kFreeSql);
  failpoint::DeactivateAll();
  ASSERT_FALSE(reply.ok());
  // The server timed the stalled session out and said GOODBYE; the
  // client surfaces that as the session-closed FailedPrecondition.
  EXPECT_TRUE(reply.status().IsFailedPrecondition())
      << reply.status().ToString();
  EXPECT_NE(reply.status().ToString().find("idle timeout"),
            std::string::npos)
      << reply.status().ToString();
  ASSERT_TRUE(srv.Drain().ok());
}

TEST_F(ServerTortureTest, MalformedBytesGetTypedDataLossThenClose) {
  Server srv = *Server::Start(BaseOptions(NewSocketPath(), false));

  // Garbage instead of a header.
  {
    int fd = RawConnect(srv.socket_path());
    FrameReader reader(fd);
    RawSend(fd, "GET / HTTP/1.1\r\n\r\n");
    auto reply = reader.Read(10000);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    ASSERT_TRUE(reply->has_value());
    EXPECT_EQ((*reply)->type, FrameType::kError);
    Status status = server::ParseStatusPayload((*reply)->payload);
    EXPECT_TRUE(status.IsDataLoss()) << status.ToString();
    auto eof = reader.Read(10000);
    ASSERT_TRUE(eof.ok());
    EXPECT_FALSE(eof->has_value()) << "session not closed after bad framing";
    ::close(fd);
  }
  // An absurd length field: refused before any payload allocation.
  {
    int fd = RawConnect(srv.socket_path());
    FrameReader reader(fd);
    RawSend(fd, "%PCLN QUERY 9999999999 deadbeef\n");
    auto reply = reader.Read(10000);
    ASSERT_TRUE(reply.ok() && reply->has_value());
    EXPECT_EQ((*reply)->type, FrameType::kError);
    EXPECT_TRUE(server::ParseStatusPayload((*reply)->payload).IsDataLoss());
    ::close(fd);
  }
  // A well-formed header whose payload fails the checksum.
  {
    int fd = RawConnect(srv.socket_path());
    FrameReader reader(fd);
    RawSend(fd, "%PCLN HELLO 4 00000000\nabcd");
    auto reply = reader.Read(10000);
    ASSERT_TRUE(reply.ok() && reply->has_value());
    EXPECT_EQ((*reply)->type, FrameType::kError);
    EXPECT_TRUE(server::ParseStatusPayload((*reply)->payload).IsDataLoss());
    ::close(fd);
  }
  ASSERT_TRUE(srv.Drain().ok());
}

TEST_F(ServerTortureTest, PipelinedQueriesAnswerInOrder) {
  ServerOptions options = BaseOptions(NewSocketPath(), false);
  options.pool_threads = 2;
  options.queue_depth = 2;  // force the backpressure path
  Server srv = *Server::Start(options);
  int fd = RawConnect(srv.socket_path());
  FrameReader reader(fd);
  RawHello(fd, reader);
  // 12 queries at distinct confidence levels, written back-to-back
  // without reading a single reply: the strand must answer them in
  // order (each reply names its confidence) through a queue of depth 2.
  constexpr int kPipelined = 12;
  std::string burst;
  for (int i = 0; i < kPipelined; ++i) {
    QueryRequest request;
    request.sql = kChargedSql;  // no ledger: charged SQL is just SQL
    request.confidence = 0.80 + 0.01 * i;
    burst += EncodeFrame(
        Frame{FrameType::kQuery, server::RenderQueryRequest(request)});
  }
  RawSend(fd, burst);
  for (int i = 0; i < kPipelined; ++i) {
    auto reply = reader.Read(20000);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    ASSERT_TRUE(reply->has_value());
    ASSERT_EQ((*reply)->type, FrameType::kResult) << (*reply)->payload;
    std::string expected = FormatDouble((0.80 + 0.01 * i) * 100) + "% CI:";
    EXPECT_NE((*reply)->payload.find(expected), std::string::npos)
        << "reply " << i << " out of order: " << (*reply)->payload;
  }
  RawSend(fd, EncodeFrame(Frame{FrameType::kBye, ""}));
  auto goodbye = reader.Read(10000);
  ASSERT_TRUE(goodbye.ok() && goodbye->has_value());
  EXPECT_EQ((*goodbye)->type, FrameType::kGoodbye);
  ::close(fd);
  ASSERT_TRUE(srv.Drain().ok());
}

TEST_F(ServerTortureTest, SessionBindingRulesAreTyped) {
  std::string with_ledger_path = NewSocketPath();
  {
    BudgetLedger ledger = *BudgetLedger::Open(ledger_dir_);
    ASSERT_TRUE(ledger.Grant("alice", 100.0).ok());
  }
  Server with_ledger = *Server::Start(BaseOptions(with_ledger_path, true));
  // Ledger server: anonymous HELLO refused.
  auto anonymous = Client::Connect(with_ledger_path);
  ASSERT_FALSE(anonymous.ok());
  EXPECT_TRUE(anonymous.status().IsInvalidArgument());
  // Unknown release name: typed NotFound.
  auto wrong_release = Client::Connect(with_ledger_path, "alice", "nope");
  ASSERT_FALSE(wrong_release.ok());
  EXPECT_TRUE(wrong_release.status().IsNotFound());
  // Explicit bind name (the directory basename) works.
  auto named = Client::Connect(with_ledger_path, "alice", "release");
  ASSERT_TRUE(named.ok()) << named.status().ToString();
  EXPECT_EQ(named->welcome().rows, 300u);

  Server no_ledger = *Server::Start(BaseOptions(NewSocketPath(), false));
  // Ledger-less server: naming a tenant is refused (nobody would charge).
  auto tenant = Client::Connect(no_ledger.socket_path(), "alice");
  ASSERT_FALSE(tenant.ok());
  EXPECT_TRUE(tenant.status().IsInvalidArgument());

  // QUERY before HELLO is a query-level FailedPrecondition; the session
  // survives and a later HELLO still binds.
  int fd = RawConnect(no_ledger.socket_path());
  FrameReader reader(fd);
  QueryRequest premature;
  premature.sql = kFreeSql;
  RawSend(fd, EncodeFrame(Frame{FrameType::kQuery,
                                server::RenderQueryRequest(premature)}));
  auto refused = reader.Read(10000);
  ASSERT_TRUE(refused.ok() && refused->has_value());
  ASSERT_EQ((*refused)->type, FrameType::kError);
  EXPECT_TRUE(
      server::ParseStatusPayload((*refused)->payload).IsFailedPrecondition());
  RawHello(fd, reader);
  // Second HELLO on a bound session: FailedPrecondition too.
  server::HelloRequest again;
  RawSend(fd,
          EncodeFrame(Frame{FrameType::kHello, server::RenderHello(again)}));
  auto rebind = reader.Read(10000);
  ASSERT_TRUE(rebind.ok() && rebind->has_value());
  ASSERT_EQ((*rebind)->type, FrameType::kError);
  EXPECT_TRUE(
      server::ParseStatusPayload((*rebind)->payload).IsFailedPrecondition());
  ::close(fd);
  ASSERT_TRUE(with_ledger.Drain().ok());
  ASSERT_TRUE(no_ledger.Drain().ok());
}

TEST_F(ServerTortureTest, DrainSaysGoodbyeAndIdleSessionsTimeOut) {
  // Drain: an established idle session gets a GOODBYE, then EOF, and
  // the socket file is gone afterwards.
  std::string socket_path = NewSocketPath();
  {
    Server srv = *Server::Start(BaseOptions(socket_path, false));
    int fd = RawConnect(socket_path);
    FrameReader reader(fd);
    RawHello(fd, reader);
    ASSERT_TRUE(srv.Drain().ok());
    auto goodbye = reader.Read(10000);
    ASSERT_TRUE(goodbye.ok() && goodbye->has_value());
    EXPECT_EQ((*goodbye)->type, FrameType::kGoodbye);
    EXPECT_EQ((*goodbye)->payload, "server draining");
    auto eof = reader.Read(10000);
    ASSERT_TRUE(eof.ok());
    EXPECT_FALSE(eof->has_value());
    ::close(fd);
    struct stat st;
    EXPECT_NE(::stat(socket_path.c_str(), &st), 0)
        << "drain left the socket file behind";
  }

  // Idle timeout: a session that sends nothing for longer than the
  // limit is closed with a GOODBYE naming the reason.
  ServerOptions options = BaseOptions(NewSocketPath(), false);
  options.idle_timeout_ms = 300;
  Server srv = *Server::Start(options);
  int fd = RawConnect(srv.socket_path());
  FrameReader reader(fd);
  RawHello(fd, reader);
  auto timed_out = reader.Read(20000);
  ASSERT_TRUE(timed_out.ok()) << timed_out.status().ToString();
  ASSERT_TRUE(timed_out->has_value());
  EXPECT_EQ((*timed_out)->type, FrameType::kGoodbye);
  EXPECT_EQ((*timed_out)->payload, "idle timeout");
  ::close(fd);
  ASSERT_TRUE(srv.Drain().ok());
}

TEST_F(ServerTortureTest, DrainAnswersQueuedQueriesBeforeGoodbye) {
  // The drain contract (session.h): queries already queued when the
  // drain lands are still answered — each with a RESULT, never with a
  // bogus "QUERY before HELLO" error — and the GOODBYE follows the last
  // answer. A 1-thread pool and a depth-2 queue guarantee that after
  // the first RESULT arrives here, later queries of the burst are still
  // sitting in the session queue (the reader is parked in backpressure).
  ServerOptions options = BaseOptions(NewSocketPath(), false);
  options.pool_threads = 1;
  options.queue_depth = 2;
  Server srv = *Server::Start(options);
  int fd = RawConnect(srv.socket_path());
  FrameReader reader(fd);
  RawHello(fd, reader);
  constexpr int kBurst = 16;
  std::string burst;
  for (int i = 0; i < kBurst; ++i) {
    QueryRequest request;
    request.sql = kFreeSql;
    burst += EncodeFrame(
        Frame{FrameType::kQuery, server::RenderQueryRequest(request)});
  }
  RawSend(fd, burst);
  auto first = reader.Read(20000);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_TRUE(first->has_value());
  ASSERT_EQ((*first)->type, FrameType::kResult) << (*first)->payload;
  ASSERT_TRUE(srv.Drain().ok());
  // Everything between here and the GOODBYE must be a RESULT: queued
  // queries are answered, not rejected. (Frames the reader had not yet
  // consumed at drain time are dropped by contract, so the count is
  // free to fall short of kBurst.)
  int results = 1;
  for (;;) {
    auto reply = reader.Read(20000);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    ASSERT_TRUE(reply->has_value())
        << "EOF before GOODBYE, after " << results << " results";
    if ((*reply)->type == FrameType::kGoodbye) {
      EXPECT_EQ((*reply)->payload, "server draining");
      break;
    }
    ASSERT_EQ((*reply)->type, FrameType::kResult)
        << "queued query rejected during drain: " << (*reply)->payload;
    ++results;
  }
  EXPECT_GT(results, 1) << "drain landed after the whole burst; the "
                           "queued-query path was never exercised";
  auto eof = reader.Read(10000);
  ASSERT_TRUE(eof.ok());
  EXPECT_FALSE(eof->has_value());
  ::close(fd);
}

TEST_F(ServerTortureTest, OversizeFrameIsRefusedAtTheWriterWithATypedError) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  // One byte past the cap: typed ResourceExhausted, and NOTHING on the
  // wire — a partial oversize frame would reach the peer's reader as a
  // misleading "torn or corrupt frame" DataLoss.
  Frame big{FrameType::kResult,
            std::string(server::kMaxPayloadBytes + 1, 'x')};
  Status refused = server::WriteFrame(fds[0], big);
  ASSERT_FALSE(refused.ok());
  EXPECT_TRUE(refused.IsResourceExhausted()) << refused.ToString();
  struct pollfd pfd;
  pfd.fd = fds[1];
  pfd.events = POLLIN;
  EXPECT_EQ(::poll(&pfd, 1, 0), 0) << "bytes leaked before the size check";
  // At the cap exactly, the frame round-trips intact.
  Frame fits{FrameType::kResult, std::string(server::kMaxPayloadBytes, 'y')};
  std::thread writer([&] {
    EXPECT_TRUE(server::WriteFrame(fds[0], fits).ok());
    ::shutdown(fds[0], SHUT_WR);
  });
  FrameReader reader(fds[1]);
  auto frame = reader.Read(20000);
  writer.join();
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  ASSERT_TRUE(frame->has_value());
  EXPECT_EQ((*frame)->payload.size(), server::kMaxPayloadBytes);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST_F(ServerTortureTest, SocketOwnershipLiveRefusalAndStaleTakeover) {
  std::string socket_path = NewSocketPath();
  {
    Server srv = *Server::Start(BaseOptions(socket_path, false));
    // A live sibling is refused, and its socket survives the refusal.
    auto second = Server::Start(BaseOptions(socket_path, false));
    ASSERT_FALSE(second.ok());
    EXPECT_TRUE(second.status().IsFailedPrecondition())
        << second.status().ToString();
    EXPECT_TRUE(Client::Connect(socket_path).ok())
        << "the failed Start damaged the live server's socket";
    ASSERT_TRUE(srv.Drain().ok());
  }
  // A stale file left by a crashed server (bound, never unlinked, no
  // listener behind it) is replaced.
  {
    sockaddr_un addr;
    std::memset(&addr, 0, sizeof addr);
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, socket_path.data(), socket_path.size());
    int stale = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_EQ(
        ::bind(stale, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
    ::close(stale);  // fd gone, file left behind
  }
  auto takeover = Server::Start(BaseOptions(socket_path, false));
  ASSERT_TRUE(takeover.ok()) << takeover.status().ToString();
  EXPECT_TRUE(Client::Connect(socket_path).ok());
  ASSERT_TRUE(takeover->Drain().ok());
}

TEST_F(ServerTortureTest, ConcurrentTakeoverOfAStaleSocketElectsOneServer) {
  // Two servers racing to replace the same stale socket: without the
  // flock serializing probe/unlink/bind/listen, both can judge the path
  // dead and the second silently unlinks the first's fresh socket.
  // Exactly one may win; the other must see the live-sibling refusal.
  std::string socket_path = NewSocketPath();
  {
    sockaddr_un addr;
    std::memset(&addr, 0, sizeof addr);
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, socket_path.data(), socket_path.size());
    int stale = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_EQ(
        ::bind(stale, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
    ::close(stale);  // fd gone, file left behind
  }
  std::optional<Result<Server>> results[2];
  {
    std::vector<std::thread> starters;
    for (auto& slot : results) {
      starters.emplace_back([&slot, this, &socket_path] {
        slot.emplace(Server::Start(BaseOptions(socket_path, false)));
      });
    }
    for (auto& t : starters) t.join();
  }
  int winners = 0;
  for (auto& slot : results) {
    ASSERT_TRUE(slot.has_value());
    if (slot->ok()) {
      ++winners;
    } else {
      EXPECT_TRUE(slot->status().IsFailedPrecondition())
          << slot->status().ToString();
    }
  }
  ASSERT_EQ(winners, 1) << "stale takeover elected " << winners << " servers";
  EXPECT_TRUE(Client::Connect(socket_path).ok())
      << "the losing starter damaged the winner's socket";
  for (auto& slot : results) {
    if (slot->ok()) {
      ASSERT_TRUE((**slot).Drain().ok());
    }
  }
}

TEST_F(ServerTortureTest, DrainFailpointLeavesHardStopClean) {
  if (!failpoint::CompiledIn()) GTEST_SKIP() << "failpoints compiled out";
  Server srv = *Server::Start(BaseOptions(NewSocketPath(), false));
  Client client = *Client::Connect(srv.socket_path());
  ASSERT_TRUE(client.Query(kFreeSql).ok());
  failpoint::Fault fault = failpoint::DefaultFault("server.drain");
  fault.remaining = 1;
  ASSERT_TRUE(failpoint::Activate("server.drain", fault).ok());
  Status drain = srv.Drain();
  ASSERT_FALSE(drain.ok());
  EXPECT_TRUE(drain.IsIOError()) << drain.ToString();
  failpoint::DeactivateAll();
  // Second attempt succeeds; the destructor would also hard-stop fine.
  EXPECT_TRUE(srv.Drain().ok());
}

}  // namespace
}  // namespace privateclean
