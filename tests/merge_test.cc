#include "cleaning/merge.h"

#include <gtest/gtest.h>

#include "table/table_builder.h"

namespace privateclean {
namespace {

Schema TestSchema() {
  return *Schema::Make({Field::Discrete("major"),
                        Field::Numerical("score", ValueType::kDouble)});
}

Table TestTable() {
  TableBuilder b(TestSchema());
  b.Row({Value("Mech. Eng."), Value(4.0)})
      .Row({Value("Mechanical Engineering"), Value(3.0)})
      .Row({Value("Math"), Value(5.0)})
      .Row({Value("ERR_17"), Value(2.0)})
      .Row({Value::Null(), Value(1.0)});
  return *b.Finish();
}

TEST(FindReplaceTest, SingleRule) {
  Table t = TestTable();
  FindReplace fix = FindReplace::Single(
      "major", Value("Mechanical Engineering"), Value("Mech. Eng."));
  ASSERT_TRUE(fix.Apply(&t).ok());
  EXPECT_EQ(*t.GetValue(0, "major"), Value("Mech. Eng."));
  EXPECT_EQ(*t.GetValue(1, "major"), Value("Mech. Eng."));
  EXPECT_EQ(*t.GetValue(2, "major"), Value("Math"));
}

TEST(FindReplaceTest, MultipleRulesApplySimultaneously) {
  // a->b and b->a swap rather than chain.
  Schema s = *Schema::Make({Field::Discrete("d")});
  TableBuilder b(s);
  b.Row({Value("a")}).Row({Value("b")});
  Table t = *b.Finish();
  FindReplace swap("d", {{Value("a"), Value("b")}, {Value("b"), Value("a")}});
  ASSERT_TRUE(swap.Apply(&t).ok());
  EXPECT_EQ(*t.GetValue(0, "d"), Value("b"));
  EXPECT_EQ(*t.GetValue(1, "d"), Value("a"));
}

TEST(FindReplaceTest, CanReplaceNull) {
  Table t = TestTable();
  FindReplace fix = FindReplace::Single("major", Value::Null(),
                                        Value("Undeclared"));
  ASSERT_TRUE(fix.Apply(&t).ok());
  EXPECT_EQ(*t.GetValue(4, "major"), Value("Undeclared"));
}

TEST(FindReplaceTest, UntouchedValuesPassThrough) {
  Table t = TestTable();
  FindReplace fix = FindReplace::Single("major", Value("Absent"),
                                        Value("X"));
  ASSERT_TRUE(fix.Apply(&t).ok());
  EXPECT_EQ(*t.GetValue(2, "major"), Value("Math"));
}

TEST(FindReplaceTest, RejectsNumericalAttribute) {
  Table t = TestTable();
  FindReplace bad = FindReplace::Single("score", Value(1.0), Value(2.0));
  EXPECT_TRUE(bad.Apply(&t).IsInvalidArgument());
}

TEST(FindReplaceTest, KindIsMerge) {
  FindReplace fr = FindReplace::Single("major", Value("a"), Value("b"));
  EXPECT_EQ(fr.kind(), CleanerKind::kMerge);
  EXPECT_EQ(fr.num_replacements(), 1u);
}

TEST(DomainMergeTest, UdfSeesValueAndDomain) {
  Table t = TestTable();
  // Merge everything containing "Mech" to the most frequent such value.
  DomainMerge merge("major", [](const Value& v, const Domain& domain) {
    (void)domain;
    if (!v.is_null() && v.AsString().find("Mech") != std::string::npos) {
      return Value("Mechanical Engineering");
    }
    return v;
  });
  ASSERT_TRUE(merge.Apply(&t).ok());
  EXPECT_EQ(*t.GetValue(0, "major"), Value("Mechanical Engineering"));
  EXPECT_EQ(*t.GetValue(1, "major"), Value("Mechanical Engineering"));
  EXPECT_EQ(*t.GetValue(2, "major"), Value("Math"));
}

TEST(DomainMergeTest, SimultaneousSemantics) {
  // The domain passed to the UDF is the pre-merge domain for every
  // distinct value, so later evaluations don't observe earlier rewrites.
  Table t = TestTable();
  std::vector<size_t> seen_sizes;
  DomainMerge merge("major", [&seen_sizes](const Value& v,
                                           const Domain& domain) {
    seen_sizes.push_back(domain.size());
    return v;
  });
  ASSERT_TRUE(merge.Apply(&t).ok());
  for (size_t size : seen_sizes) EXPECT_EQ(size, 5u);
}

TEST(MergeToNullTest, SpuriousValuesBecomeNull) {
  Table t = TestTable();
  MergeToNull clean("major", [](const Value& v) {
    return !v.is_null() && v.AsString().rfind("ERR_", 0) == 0;
  });
  ASSERT_TRUE(clean.Apply(&t).ok());
  EXPECT_TRUE(t.GetValue(3, "major")->is_null());
  EXPECT_EQ(*t.GetValue(2, "major"), Value("Math"));
  EXPECT_TRUE(t.GetValue(4, "major")->is_null());  // Already null stays.
}

TEST(MergeToNullTest, NoopWhenNothingSpurious) {
  Table t = TestTable();
  MergeToNull clean("major", [](const Value&) { return false; });
  ASSERT_TRUE(clean.Apply(&t).ok());
  EXPECT_EQ((*t.ColumnByName("major"))->null_count(), 1u);
}

TEST(MergeToNullTest, RejectsNullTable) {
  MergeToNull clean("major", [](const Value&) { return false; });
  EXPECT_TRUE(clean.Apply(nullptr).IsInvalidArgument());
}

TEST(CleanerKindTest, Names) {
  EXPECT_STREQ(CleanerKindToString(CleanerKind::kExtract), "extract");
  EXPECT_STREQ(CleanerKindToString(CleanerKind::kTransform), "transform");
  EXPECT_STREQ(CleanerKindToString(CleanerKind::kMerge), "merge");
}

}  // namespace
}  // namespace privateclean
