// Robustness and cross-cutting coverage: CSV parser fuzzing (malformed
// input must produce Status errors, never crashes or invalid tables),
// the int64 numerical pipeline end to end (rounded Laplace noise), AVG
// confidence-interval coverage, and negated-predicate estimation.

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "common/statistics.h"
#include "core/privateclean.h"
#include "datagen/synthetic.h"
#include "table/csv.h"
#include "table/table_builder.h"

namespace privateclean {
namespace {

// --- CSV fuzzing ----------------------------------------------------------

TEST(CsvFuzzTest, RandomGarbageNeverCrashes) {
  Schema schema = *Schema::Make(
      {Field::Discrete("a"), Field::Numerical("b", ValueType::kDouble)});
  Rng rng(1);
  const char alphabet[] = "abc,\"\n\r0.5x\\N;\t ";
  for (int trial = 0; trial < 500; ++trial) {
    std::string text;
    size_t len = rng.UniformInt(200);
    for (size_t i = 0; i < len; ++i) {
      text.push_back(alphabet[rng.UniformInt(sizeof(alphabet) - 1)]);
    }
    auto result = CsvToTable(text, schema);
    if (result.ok()) {
      // Whatever parsed must be structurally sound.
      EXPECT_EQ(result->num_columns(), 2u);
      for (size_t c = 0; c < 2; ++c) {
        EXPECT_EQ(result->column(c).size(), result->num_rows());
      }
    }
  }
}

TEST(CsvFuzzTest, RoundTripRandomTables) {
  Schema schema = *Schema::Make(
      {Field::Discrete("s"), Field::Numerical("d", ValueType::kDouble),
       Field::Numerical("i", ValueType::kInt64)});
  Rng rng(2);
  const char tricky[] = ",\"\n'x\\N ~";
  for (int trial = 0; trial < 50; ++trial) {
    TableBuilder b(schema);
    size_t rows = 1 + rng.UniformInt(20);
    for (size_t r = 0; r < rows; ++r) {
      Value s;
      if (!rng.Bernoulli(0.15)) {
        std::string str;
        size_t len = rng.UniformInt(8);
        for (size_t i = 0; i < len; ++i) {
          str.push_back(tricky[rng.UniformInt(sizeof(tricky) - 1)]);
        }
        // Avoid the empty string (indistinguishable from NULL by design
        // with the default null literal).
        str.push_back('z');
        s = Value(str);
      }
      Value d = rng.Bernoulli(0.15)
                    ? Value::Null()
                    : Value(rng.UniformRealRange(-1e6, 1e6));
      Value i = rng.Bernoulli(0.15)
                    ? Value::Null()
                    : Value(rng.UniformIntRange(-1000000, 1000000));
      b.Row({s, d, i});
    }
    Table t = *b.Finish();
    auto parsed = CsvToTable(TableToCsv(t), schema);
    ASSERT_TRUE(parsed.ok()) << "trial " << trial;
    ASSERT_EQ(parsed->num_rows(), t.num_rows());
    for (size_t r = 0; r < t.num_rows(); ++r) {
      for (size_t c = 0; c < t.num_columns(); ++c) {
        EXPECT_EQ(parsed->column(c).ValueAt(r), t.column(c).ValueAt(r))
            << "trial " << trial << " row " << r << " col " << c;
      }
    }
  }
}

// --- Int64 numerical pipeline ----------------------------------------------

TEST(Int64PipelineTest, RoundedNoiseSumStaysUnbiased) {
  // Numerical attribute stored as int64 (e.g. a 1-5 rating): GRR rounds
  // the Laplace noise; sums must stay approximately unbiased.
  Schema schema = *Schema::Make(
      {Field::Discrete("major"),
       Field::Numerical("rating", ValueType::kInt64)});
  TableBuilder b(schema);
  Rng data_rng(3);
  for (int i = 0; i < 800; ++i) {
    b.Row({Value("m" + std::to_string(i % 8)),
           Value(static_cast<int64_t>(1 + data_rng.UniformInt(5)))});
  }
  Table data = *b.Finish();
  Predicate pred = Predicate::In("major", {Value("m0"), Value("m1")});
  double truth =
      *ExecuteAggregate(data, AggregateQuery::Sum("rating", pred));

  RunningMoments estimates;
  const int trials = 40;
  for (int t = 0; t < trials; ++t) {
    Rng rng(4000 + t);
    PrivateTable pt = *PrivateTable::Create(
        data, GrrParams::Uniform(0.2, 1.0), GrrOptions{}, rng);
    estimates.Add(pt.Sum("rating", pred)->estimate);
  }
  double se = std::sqrt(estimates.SampleVariance() / trials);
  EXPECT_NEAR(estimates.Mean(), truth, std::max(4.0 * se, 4.0));
}

// --- AVG CI coverage ---------------------------------------------------------

TEST(AvgCoverageTest, IntervalCoversTruthAtLeastNominally) {
  SyntheticOptions options;
  options.correlated = true;
  Rng data_rng(5);
  Table data = *GenerateSynthetic(options, data_rng);
  Predicate pred = Predicate::In(
      "category", {SyntheticCategory(0), SyntheticCategory(1),
                   SyntheticCategory(2)});
  double truth =
      *ExecuteAggregate(data, AggregateQuery::Avg("value", pred));

  int covered = 0, total = 0;
  for (int t = 0; t < 40; ++t) {
    Rng rng(5000 + t);
    PrivateTable pt = *PrivateTable::Create(
        data, GrrParams::Uniform(0.2, 5.0), GrrOptions{}, rng);
    auto r = pt.Avg("value", pred);
    if (!r.ok()) continue;
    ++total;
    if (r->ci.Contains(truth)) ++covered;
  }
  ASSERT_GT(total, 30);
  // The corner-ratio interval is conservative; expect >= ~nominal.
  EXPECT_GE(static_cast<double>(covered) / total, 0.85);
}

// --- Negated predicates -------------------------------------------------------

TEST(NegatedPredicateTest, ComplementEstimatesAreConsistent) {
  SyntheticOptions options;
  Rng data_rng(6);
  Table data = *GenerateSynthetic(options, data_rng);
  Predicate pred = Predicate::In(
      "category", {SyntheticCategory(0), SyntheticCategory(3)});
  Predicate negated = pred.Negate();

  Rng rng(6001);
  PrivateTable pt = *PrivateTable::Create(
      data, GrrParams::Uniform(0.2, 5.0), GrrOptions{}, rng);
  QueryResult c = *pt.Count(pred);
  QueryResult nc = *pt.Count(negated);
  // l values complement to N.
  EXPECT_DOUBLE_EQ(c.l + nc.l, c.n);
  // Estimates complement to S (both corrections are linear in the
  // nominal count and the nominal counts partition S).
  EXPECT_NEAR(c.estimate + nc.estimate, static_cast<double>(pt.size()),
              1e-6);
}

TEST(NegatedPredicateTest, UnbiasedOverInstances) {
  SyntheticOptions options;
  Rng data_rng(7);
  Table data = *GenerateSynthetic(options, data_rng);
  Predicate negated =
      Predicate::Equals("category", SyntheticCategory(0)).Negate();
  double truth =
      *ExecuteAggregate(data, AggregateQuery::Count(negated));
  RunningMoments estimates;
  const int trials = 30;
  for (int t = 0; t < trials; ++t) {
    Rng rng(7000 + t);
    PrivateTable pt = *PrivateTable::Create(
        data, GrrParams::Uniform(0.3, 5.0), GrrOptions{}, rng);
    estimates.Add(pt.Count(negated)->estimate);
  }
  double se = std::sqrt(estimates.SampleVariance() / trials);
  EXPECT_NEAR(estimates.Mean(), truth, std::max(4.0 * se, 2.0));
}

}  // namespace
}  // namespace privateclean
