#include "table/csv.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "common/random.h"
#include "table/table_builder.h"

namespace privateclean {
namespace {

Schema TestSchema() {
  return *Schema::Make({Field::Discrete("name"),
                        Field::Numerical("score", ValueType::kDouble),
                        Field::Numerical("count", ValueType::kInt64)});
}

Table TestTable() {
  TableBuilder b(TestSchema());
  b.Row({Value("alice"), Value(3.5), Value(10)})
      .Row({Value("bob,with comma"), Value(2.0), Value::Null()})
      .Row({Value("quote\"inside"), Value::Null(), Value(7)});
  return *b.Finish();
}

TEST(CsvTest, SerializeBasic) {
  std::string csv = TableToCsv(TestTable());
  EXPECT_NE(csv.find("name,score,count\n"), std::string::npos);
  EXPECT_NE(csv.find("alice,3.5,10\n"), std::string::npos);
}

TEST(CsvTest, QuotesDelimiterAndQuotes) {
  std::string csv = TableToCsv(TestTable());
  EXPECT_NE(csv.find("\"bob,with comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"quote\"\"inside\""), std::string::npos);
}

TEST(CsvTest, RoundTrip) {
  Table t = TestTable();
  std::string csv = TableToCsv(t);
  Table parsed = *CsvToTable(csv, TestSchema());
  ASSERT_EQ(parsed.num_rows(), t.num_rows());
  for (size_t r = 0; r < t.num_rows(); ++r) {
    for (size_t c = 0; c < t.num_columns(); ++c) {
      EXPECT_EQ(parsed.column(c).ValueAt(r), t.column(c).ValueAt(r))
          << "row " << r << " col " << c;
    }
  }
}

TEST(CsvTest, NullRoundTrip) {
  Table t = TestTable();
  Table parsed = *CsvToTable(TableToCsv(t), TestSchema());
  EXPECT_TRUE(parsed.column(2).IsNull(1));
  EXPECT_TRUE(parsed.column(1).IsNull(2));
}

TEST(CsvTest, CustomNullLiteral) {
  CsvOptions options;
  options.null_literal = "NA";
  Table t = TestTable();
  std::string csv = TableToCsv(t, options);
  EXPECT_NE(csv.find("NA"), std::string::npos);
  Table parsed = *CsvToTable(csv, TestSchema(), options);
  EXPECT_TRUE(parsed.column(2).IsNull(1));
}

TEST(CsvTest, CustomDelimiter) {
  CsvOptions options;
  options.delimiter = ';';
  Table t = TestTable();
  Table parsed = *CsvToTable(TableToCsv(t, options), TestSchema(), options);
  EXPECT_EQ(parsed.num_rows(), t.num_rows());
  EXPECT_EQ(parsed.column(0).StringAt(1), "bob,with comma");
}

TEST(CsvTest, HeaderMismatchRejected) {
  std::string csv = "wrong,score,count\nx,1,2\n";
  auto r = CsvToTable(csv, TestSchema());
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsIOError());
}

TEST(CsvTest, FieldCountMismatchRejected) {
  std::string csv = "name,score,count\nx,1\n";
  EXPECT_FALSE(CsvToTable(csv, TestSchema()).ok());
}

TEST(CsvTest, BadNumericRejected) {
  std::string csv = "name,score,count\nx,notanumber,2\n";
  EXPECT_FALSE(CsvToTable(csv, TestSchema()).ok());
}

TEST(CsvTest, UnterminatedQuoteRejected) {
  std::string csv = "name,score,count\n\"unterminated,1,2\n";
  EXPECT_FALSE(CsvToTable(csv, TestSchema()).ok());
}

TEST(CsvTest, CrLfLineEndings) {
  std::string csv = "name,score,count\r\nx,1.5,2\r\n";
  Table t = *CsvToTable(csv, TestSchema());
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.column(0).StringAt(0), "x");
  EXPECT_DOUBLE_EQ(t.column(1).DoubleAt(0), 1.5);
}

TEST(CsvTest, MissingFinalNewline) {
  std::string csv = "name,score,count\nx,1.5,2";
  Table t = *CsvToTable(csv, TestSchema());
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(CsvTest, EmbeddedNewlineInQuotedField) {
  std::string csv = "name,score,count\n\"line1\nline2\",1.0,2\n";
  Table t = *CsvToTable(csv, TestSchema());
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.column(0).StringAt(0), "line1\nline2");
}

TEST(CsvTest, WhitespaceTrimmedOutsideQuotes) {
  std::string csv = "name,score,count\n  padded  , 1.0 , 2 \n";
  Table t = *CsvToTable(csv, TestSchema());
  EXPECT_EQ(t.column(0).StringAt(0), "padded");
}

TEST(CsvTest, QuotedWhitespacePreserved) {
  std::string csv = "name,score,count\n\"  padded  \",1.0,2\n";
  Table t = *CsvToTable(csv, TestSchema());
  EXPECT_EQ(t.column(0).StringAt(0), "  padded  ");
}

TEST(CsvTest, QuotedFieldsAreNeverNull) {
  // The empty string and a literal null marker are real values when
  // quoted; unquoted they are NULL.
  Schema s = *Schema::Make({Field::Discrete("name")});
  TableBuilder b(s);
  b.Row({Value("")}).Row({Value::Null()}).Row({Value("NA")});
  Table t = *b.Finish();
  CsvOptions options;
  options.null_literal = "NA";
  Table parsed = *CsvToTable(TableToCsv(t, options), s, options);
  ASSERT_EQ(parsed.num_rows(), 3u);
  EXPECT_FALSE(parsed.column(0).IsNull(0));
  EXPECT_EQ(parsed.column(0).StringAt(0), "");
  EXPECT_TRUE(parsed.column(0).IsNull(1));
  EXPECT_FALSE(parsed.column(0).IsNull(2));
  EXPECT_EQ(parsed.column(0).StringAt(2), "NA");
}

TEST(CsvTest, SingleColumnNullRowsSurvive) {
  Schema s = *Schema::Make({Field::Discrete("only")});
  TableBuilder b(s);
  b.Row({Value("a")}).Row({Value::Null()}).Row({Value("b")});
  Table t = *b.Finish();
  Table parsed = *CsvToTable(TableToCsv(t), s);
  ASSERT_EQ(parsed.num_rows(), 3u);
  EXPECT_TRUE(parsed.column(0).IsNull(1));
  EXPECT_EQ(parsed.column(0).StringAt(2), "b");
}

TEST(CsvTest, BlankLinesSkippedForWideSchemas) {
  Schema s = *Schema::Make({Field::Discrete("a"), Field::Discrete("b")});
  std::string csv = "a,b\nx,y\n\nz,w\n\n";
  Table parsed = *CsvToTable(csv, s);
  ASSERT_EQ(parsed.num_rows(), 2u);
  EXPECT_EQ(parsed.column(0).StringAt(1), "z");
}

TEST(CsvTest, FileRoundTrip) {
  Table t = TestTable();
  std::string path = ::testing::TempDir() + "/pclean_csv_test.csv";
  ASSERT_TRUE(WriteCsvFile(t, path).ok());
  Table parsed = *ReadCsvFile(path, TestSchema());
  EXPECT_EQ(parsed.num_rows(), t.num_rows());
  std::remove(path.c_str());
}

TEST(CsvTest, ReadMissingFileFails) {
  auto r = ReadCsvFile("/nonexistent/path/file.csv", TestSchema());
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(CsvTest, ParseErrorsCarryLineNumbers) {
  // Line 1 is the header; the bad cell sits on line 3.
  std::string csv = "name,score,count\nok,1.0,1\nbad,oops,2\n";
  CsvOptions options;
  options.error_context = "input.csv";
  auto r = CsvToTable(csv, TestSchema(), options);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("input.csv:3"), std::string::npos)
      << r.status().ToString();
  EXPECT_NE(r.status().message().find("score"), std::string::npos);
}

TEST(CsvTest, FieldCountErrorsCarryLineNumbers) {
  std::string csv = "name,score,count\nok,1.0,1\nshort,2\n";
  CsvOptions options;
  options.error_context = "input.csv";
  auto r = CsvToTable(csv, TestSchema(), options);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("input.csv:3"), std::string::npos)
      << r.status().ToString();
}

TEST(CsvTest, MultilineQuotedFieldsReportTheRecordStartLine) {
  // The bad record begins on line 2 even though its quoted field spans
  // through line 3.
  std::string csv = "name,score,count\n\"a\nb\",oops,2\n";
  CsvOptions options;
  options.error_context = "input.csv";
  auto r = CsvToTable(csv, TestSchema(), options);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("input.csv:2"), std::string::npos)
      << r.status().ToString();
}

TEST(CsvTest, UnterminatedQuoteIsDataLoss) {
  std::string csv = "name,score,count\n\"unterminated,1,2\n";
  auto r = CsvToTable(csv, TestSchema());
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsDataLoss()) << r.status().ToString();
}

TEST(CsvTest, TrailingNewlineRequirementFlagsTruncation) {
  std::string truncated = "name,score,count\nx,1.5,2";
  CsvOptions options;
  options.require_trailing_newline = true;
  auto r = CsvToTable(truncated, TestSchema(), options);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsDataLoss()) << r.status().ToString();
  EXPECT_NE(r.status().message().find("truncated"), std::string::npos);
  // With the final newline present the same bytes parse cleanly.
  Table t = *CsvToTable(truncated + "\n", TestSchema(), options);
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(CsvInferTest, InfersTypes) {
  std::string csv = "a,b,c\nx,1,1.5\ny,2,2.5\n";
  Schema s = *InferCsvSchema(csv);
  ASSERT_EQ(s.num_fields(), 3u);
  EXPECT_EQ(s.field(0).type, ValueType::kString);
  EXPECT_EQ(s.field(0).kind, AttributeKind::kDiscrete);
  EXPECT_EQ(s.field(1).type, ValueType::kInt64);
  EXPECT_EQ(s.field(1).kind, AttributeKind::kNumerical);
  EXPECT_EQ(s.field(2).type, ValueType::kDouble);
}

TEST(CsvInferTest, MixedColumnFallsBackToString) {
  std::string csv = "a\n1\nx\n";
  Schema s = *InferCsvSchema(csv);
  EXPECT_EQ(s.field(0).type, ValueType::kString);
}

TEST(CsvInferTest, AllNullColumnIsString) {
  std::string csv = "a,b\n,1\n,2\n";
  Schema s = *InferCsvSchema(csv);
  EXPECT_EQ(s.field(0).type, ValueType::kString);
  EXPECT_EQ(s.field(1).type, ValueType::kInt64);
}

TEST(CsvInferTest, InferThenParseRoundTrip) {
  std::string csv = "name,score\nalice,3.5\nbob,\n";
  Schema s = *InferCsvSchema(csv);
  Table t = *CsvToTable(csv, s);
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_TRUE(t.column(1).IsNull(1));
}

// --- Parallel parser/serializer vs the serial reference ----------------

void ExpectSameTable(const Table& a, const Table& b) {
  ASSERT_TRUE(a.schema() == b.schema());
  ASSERT_EQ(a.num_rows(), b.num_rows());
  for (size_t c = 0; c < a.num_columns(); ++c) {
    for (size_t r = 0; r < a.num_rows(); ++r) {
      ASSERT_EQ(a.column(c).ValueAt(r), b.column(c).ValueAt(r))
          << "row " << r << " col " << c;
    }
  }
}

TEST(CsvParallelFuzzTest, ParallelParseMatchesSerialOnRandomTables) {
  // Random tables full of the hostile cases — delimiters, quotes,
  // newlines, padding whitespace, the null literal both as a real string
  // and as an actual NULL — serialized, then parsed serially and with 8
  // threads: same bytes in, same Table out.
  const char* string_pool[] = {"alpha",  "be,ta", "ga\"mma", "del\nta",
                               " lead",  "trail ", "\\N",    "",
                               "x\r\ny", "\"\""};
  Schema schema = *Schema::Make({Field::Discrete("name"),
                                 Field::Numerical("score", ValueType::kDouble),
                                 Field::Numerical("count", ValueType::kInt64)});
  for (int trial = 0; trial < 10; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));
    Rng rng(500 + trial);
    TableBuilder b(schema);
    size_t rows = 50 + rng.UniformInt(200);
    for (size_t r = 0; r < rows; ++r) {
      Value name = rng.Bernoulli(0.15)
                       ? Value::Null()
                       : Value(string_pool[rng.UniformInt(10)]);
      Value score = rng.Bernoulli(0.15)
                        ? Value::Null()
                        : Value(rng.UniformRealRange(-100.0, 100.0));
      Value count = rng.Bernoulli(0.15)
                        ? Value::Null()
                        : Value(rng.UniformIntRange(-1000, 1000));
      b.Row({name, score, count});
    }
    Table original = *b.Finish();

    CsvOptions serial;
    serial.null_literal = "\\N";
    CsvOptions parallel = serial;
    parallel.exec.num_threads = 8;

    // Same bytes out of both serializers.
    const std::string text = TableToCsv(original, serial);
    EXPECT_EQ(TableToCsv(original, parallel), text);

    // Same Table out of both parsers, equal to the original.
    Table from_serial = *CsvToTable(text, schema, serial);
    Table from_parallel = *CsvToTable(text, schema, parallel);
    ExpectSameTable(from_serial, from_parallel);
    ExpectSameTable(original, from_parallel);
  }
}

TEST(CsvParallelFuzzTest, ParallelParseMatchesSerialOnRawText) {
  // Raw text fuzz (not writer output): random fragments including
  // malformed records. Serial and parallel parses must agree exactly —
  // same Table on success, same Status (code and message) on failure.
  const char* fragment_pool[] = {
      "a,1.5,2\n",     "\\N,\\N,\\N\n", "\"\\N\",0,0\n", "\n",
      "\"q\"\"q\",3,4\n", " pad ,5,6\n", "a,b,c\n",       "short,1\n",
      "long,1,2,3\n",  "\"multi\nline\",7,8\n"};
  Schema schema = *Schema::Make({Field::Discrete("name"),
                                 Field::Numerical("score", ValueType::kDouble),
                                 Field::Numerical("count", ValueType::kInt64)});
  for (int trial = 0; trial < 20; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));
    Rng rng(900 + trial);
    std::string text = "name,score,count\n";
    size_t fragments = 20 + rng.UniformInt(100);
    for (size_t i = 0; i < fragments; ++i) {
      text += fragment_pool[rng.UniformInt(10)];
    }
    CsvOptions serial;
    serial.null_literal = "\\N";
    CsvOptions parallel = serial;
    parallel.exec.num_threads = 8;
    auto from_serial = CsvToTable(text, schema, serial);
    auto from_parallel = CsvToTable(text, schema, parallel);
    ASSERT_EQ(from_serial.ok(), from_parallel.ok());
    if (from_serial.ok()) {
      ExpectSameTable(*from_serial, *from_parallel);
    } else {
      EXPECT_EQ(from_serial.status().code(), from_parallel.status().code());
      EXPECT_EQ(from_serial.status().message(),
                from_parallel.status().message());
    }
  }
}

// --- Serial/speculative edge-case equivalence -------------------------------
//
// Deterministic corner inputs where the two record splitters could
// plausibly diverge: blank records, carriage returns at EOF, quotes
// opened on the very last byte. Each case is asserted field-for-field
// (and error-for-error) across both parsers at several chunk sizes.

/// Splits `text` under both modes (speculative at chunk sizes 1, 3, and
/// default) and asserts identical records/lines or identical statuses.
void ExpectSplitModesAgree(const std::string& text,
                           bool require_trailing_newline = false) {
  CsvOptions serial;
  serial.split = CsvSplitMode::kSerial;
  serial.require_trailing_newline = require_trailing_newline;
  auto want = SplitCsvRecords(text, serial);

  CsvOptions spec = serial;
  spec.split = CsvSplitMode::kSpeculative;
  spec.exec.num_threads = 4;
  for (size_t chunk_bytes : {size_t{1}, size_t{3}, size_t{0}}) {
    SCOPED_TRACE("chunk_bytes=" + std::to_string(chunk_bytes));
    spec.split_chunk_bytes = chunk_bytes;
    auto got = SplitCsvRecords(text, spec);
    ASSERT_EQ(want.ok(), got.ok());
    if (!want.ok()) {
      EXPECT_EQ(want.status().code(), got.status().code());
      EXPECT_EQ(want.status().message(), got.status().message());
      continue;
    }
    const auto& w = want.ValueOrDie();
    const auto& g = got.ValueOrDie();
    ASSERT_EQ(w.size(), g.size());
    for (size_t r = 0; r < w.size(); ++r) {
      EXPECT_EQ(w[r].line, g[r].line) << "record " << r;
      ASSERT_EQ(w[r].fields.size(), g[r].fields.size()) << "record " << r;
      for (size_t f = 0; f < w[r].fields.size(); ++f) {
        EXPECT_EQ(w[r].fields[f].text, g[r].fields[f].text)
            << "record " << r << " field " << f;
        EXPECT_EQ(w[r].fields[f].quoted, g[r].fields[f].quoted)
            << "record " << r << " field " << f;
      }
    }
  }
}

TEST(CsvSplitEdgeCaseTest, EmptyInput) {
  ExpectSplitModesAgree("");
  ExpectSplitModesAgree("", /*require_trailing_newline=*/true);
  EXPECT_TRUE(SplitCsvRecords("")->empty());
}

TEST(CsvSplitEdgeCaseTest, OnlyNewlines) {
  // Every newline is a blank record (one unquoted empty field) in both
  // parsers, with consecutive line numbers.
  for (const char* text : {"\n", "\n\n", "\n\n\n\n\n"}) {
    ExpectSplitModesAgree(text);
    ExpectSplitModesAgree(text, /*require_trailing_newline=*/true);
  }
  auto records = *SplitCsvRecords("\n\n\n");
  ASSERT_EQ(records.size(), 3u);
  for (size_t r = 0; r < records.size(); ++r) {
    EXPECT_EQ(records[r].line, r + 1);
    ASSERT_EQ(records[r].fields.size(), 1u);
    EXPECT_TRUE(records[r].fields[0].text.empty());
    EXPECT_FALSE(records[r].fields[0].quoted);
  }
}

TEST(CsvSplitEdgeCaseTest, LoneCarriageReturnAtEof) {
  // A bare '\r' tail is swallowed: no final record, and not truncation
  // even under require_trailing_newline — in both parsers.
  for (const char* text : {"\r", "\r\r", "a\n\r", "a\n\r\r"}) {
    ExpectSplitModesAgree(text);
    ExpectSplitModesAgree(text, /*require_trailing_newline=*/true);
  }
  EXPECT_TRUE(SplitCsvRecords("\r")->empty());
  CsvOptions strict;
  strict.require_trailing_newline = true;
  EXPECT_TRUE(SplitCsvRecords("a\n\r", strict).ok());
  EXPECT_EQ(SplitCsvRecords("a\n\r", strict)->size(), 1u);
}

TEST(CsvSplitEdgeCaseTest, CarriageReturnWithContentAtEof) {
  // '\r' plus real bytes *is* a final record ("a\r" parses as "a").
  ExpectSplitModesAgree("a\r");
  ExpectSplitModesAgree("a\r", /*require_trailing_newline=*/true);
  auto records = *SplitCsvRecords("a\r");
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].fields[0].text, "a");
}

TEST(CsvSplitEdgeCaseTest, QuoteOpenedAtLastByte) {
  // A quote opened on the final byte is an unterminated quoted field;
  // both parsers must report DataLoss at the same line.
  for (const char* text : {"\"", "abc\"", "a,b\n\"", "a\nb\nc,\""}) {
    ExpectSplitModesAgree(text);
    ExpectSplitModesAgree(text, /*require_trailing_newline=*/true);
  }
  auto result = SplitCsvRecords("a\nb\nc,\"");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsDataLoss());
  EXPECT_NE(result.status().message().find("<csv>:3:"), std::string::npos)
      << result.status().message();
}

TEST(CsvSplitEdgeCaseTest, BlankRecordsAndCrLfMixtures) {
  for (const char* text :
       {"\r\n", "\r\n\r\n", "a\r\n\r\nb\r\n", "a\n\nb\n", "\n\r\n\n",
        "a,b\r\n\r\nc,d"}) {
    ExpectSplitModesAgree(text);
    ExpectSplitModesAgree(text, /*require_trailing_newline=*/true);
  }
}

TEST(CsvSplitEdgeCaseTest, QuoteRunsAcrossChunkBoundaries) {
  // Runs of escaped quotes positioned so naive chunk boundaries would
  // split a `""` pair; the boundary adjustment must keep pairs
  // chunk-local under every chunk size.
  for (const char* text :
       {"\"\"\"\"\n", "a,\"\"\"\"\"\"\n", "\"\"\"x\"\"\"\n",
        "\"\"\n\"\"\"\"\n", "x\"\"\"\"y\n"}) {
    ExpectSplitModesAgree(text);
  }
}

TEST(CsvSplitEdgeCaseTest, AutoModeFallsBackToSerialForSmallInputs) {
  // kAuto with multiple threads but a tiny input takes the serial path;
  // with a forced-low threshold it takes the speculative path. The flip
  // must be observable only in timing, never in the records.
  const std::string text = "a,\"multi\nline\"\nb,c\n";
  CsvOptions auto_serial;
  auto_serial.exec.num_threads = 8;  // Input is far below split_min_bytes.
  CsvOptions auto_spec = auto_serial;
  auto_spec.split_min_bytes = 1;
  auto serial_records = *SplitCsvRecords(text, auto_serial);
  auto spec_records = *SplitCsvRecords(text, auto_spec);
  ASSERT_EQ(serial_records.size(), spec_records.size());
  for (size_t r = 0; r < serial_records.size(); ++r) {
    EXPECT_EQ(serial_records[r].line, spec_records[r].line);
    ASSERT_EQ(serial_records[r].fields.size(), spec_records[r].fields.size());
    for (size_t f = 0; f < serial_records[r].fields.size(); ++f) {
      EXPECT_EQ(serial_records[r].fields[f].text,
                spec_records[r].fields[f].text);
    }
  }
}

}  // namespace
}  // namespace privateclean
