#include "privacy/size_bound.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "privacy/randomized_response.h"
#include "table/domain.h"

namespace privateclean {
namespace {

TEST(DomainPreservationTest, LargeDatasetNearCertain) {
  EXPECT_GT(*DomainPreservationLowerBound(10, 0.1, 100000), 0.9999);
}

TEST(DomainPreservationTest, TinyDatasetUncertain) {
  EXPECT_LT(*DomainPreservationLowerBound(50, 0.5, 60), 0.5);
}

TEST(DomainPreservationTest, MonotoneInDatasetSize) {
  double prev = 0.0;
  for (size_t s : {100u, 500u, 1000u, 5000u, 20000u}) {
    double bound = *DomainPreservationLowerBound(25, 0.25, s);
    EXPECT_GE(bound, prev);
    prev = bound;
  }
}

TEST(DomainPreservationTest, ZeroPAlwaysPreserves) {
  EXPECT_DOUBLE_EQ(*DomainPreservationLowerBound(50, 0.0, 10), 1.0);
}

TEST(DomainPreservationTest, SingletonDomainAlwaysPreserved) {
  EXPECT_DOUBLE_EQ(*DomainPreservationLowerBound(1, 1.0, 5), 1.0);
}

TEST(DomainPreservationTest, RejectsBadInputs) {
  EXPECT_FALSE(DomainPreservationLowerBound(0, 0.1, 10).ok());
  EXPECT_FALSE(DomainPreservationLowerBound(10, -0.1, 10).ok());
  EXPECT_FALSE(DomainPreservationLowerBound(10, 1.1, 10).ok());
  EXPECT_FALSE(DomainPreservationLowerBound(10, 0.1, 0).ok());
}

TEST(MinSizeTest, Theorem2ClosedForm) {
  // S > (N/p) ln(pN/alpha); N=25, p=0.25, alpha=0.05:
  // (100)·ln(6.25/0.05) = 100·ln(125) ≈ 482.9 -> 483.
  EXPECT_EQ(*MinDatasetSizeForDomainPreservation(25, 0.25, 0.05),
            static_cast<size_t>(std::ceil(100.0 * std::log(125.0))));
}

TEST(MinSizeTest, TighterConfidenceNeedsMoreData) {
  size_t s95 = *MinDatasetSizeForDomainPreservation(25, 0.25, 0.05);
  size_t s99 = *MinDatasetSizeForDomainPreservation(25, 0.25, 0.01);
  EXPECT_GT(s99, s95);
  // The gap is (N/p)·ln(5) ≈ 161, matching the paper's Example 3 deltas.
  EXPECT_NEAR(static_cast<double>(s99 - s95), 100.0 * std::log(5.0), 2.0);
}

TEST(MinSizeTest, MorePrivacyNeedsMoreDataAtFixedLogTerm) {
  // Larger N (more distinct values) needs more data.
  EXPECT_GT(*MinDatasetSizeForDomainPreservation(100, 0.25, 0.05),
            *MinDatasetSizeForDomainPreservation(25, 0.25, 0.05));
}

TEST(MinSizeTest, TrivialWhenLogTermNonPositive) {
  // pN <= alpha: the domain is trivially safe.
  EXPECT_EQ(*MinDatasetSizeForDomainPreservation(1, 0.01, 0.5), 1u);
}

TEST(MinSizeTest, RejectsBadInputs) {
  EXPECT_FALSE(MinDatasetSizeForDomainPreservation(10, 0.0, 0.05).ok());
  EXPECT_FALSE(MinDatasetSizeForDomainPreservation(10, 0.1, 0.0).ok());
  EXPECT_FALSE(MinDatasetSizeForDomainPreservation(10, 0.1, 1.0).ok());
}

TEST(MinSizeExactTest, SatisfiesTheBoundItInverts) {
  for (size_t n : {5u, 25u, 100u}) {
    for (double p : {0.1, 0.25, 0.5}) {
      for (double alpha : {0.05, 0.01}) {
        size_t s = *MinDatasetSizeExact(n, p, alpha);
        double preserve = *DomainPreservationLowerBound(n, p, s);
        EXPECT_GE(preserve, 1.0 - alpha - 1e-9)
            << "n=" << n << " p=" << p << " alpha=" << alpha;
        // One fewer row should (approximately) not satisfy it.
        if (s > 2) {
          double before = *DomainPreservationLowerBound(n, p, s - 2);
          EXPECT_LT(before, 1.0 - alpha + 1e-9);
        }
      }
    }
  }
}

TEST(MinSizeExactTest, ClosedFormIsLooserOrEqual) {
  // The Theorem 2 closed form uses log(1-x) <= -x, so it requires at
  // least as much data as the exact inversion.
  for (size_t n : {10u, 25u, 50u}) {
    EXPECT_GE(*MinDatasetSizeForDomainPreservation(n, 0.25, 0.05),
              *MinDatasetSizeExact(n, 0.25, 0.05));
  }
}

TEST(MinSizeExactTest, SingletonDomain) {
  EXPECT_EQ(*MinDatasetSizeExact(1, 0.5, 0.05), 1u);
}

TEST(ExpectedRegenerationsTest, MatchesInverseBound) {
  double preserve = *DomainPreservationLowerBound(25, 0.25, 1000);
  EXPECT_NEAR(*ExpectedRegenerations(25, 0.25, 1000), 1.0 / preserve,
              1e-12);
}

TEST(ExpectedRegenerationsTest, ApproachesOneForLargeData) {
  EXPECT_NEAR(*ExpectedRegenerations(10, 0.1, 1000000), 1.0, 1e-6);
}

TEST(DomainPreservationTest, EmpiricalRateRespectsBound) {
  // Monte-Carlo: the analytic lower bound must underestimate the true
  // preservation rate.
  const size_t n = 10, s = 300;
  const double p = 0.5;
  std::vector<Value> values;
  for (size_t i = 0; i < s; ++i) {
    values.push_back(Value("v" + std::to_string(i % n)));
  }
  Domain domain = Domain::FromValues(values);
  Rng rng(77);
  int preserved = 0;
  const int trials = 300;
  for (int trial = 0; trial < trials; ++trial) {
    Column c = *Column::Make(ValueType::kString);
    for (const Value& v : values) {
      Status st = c.AppendValue(v);
      ASSERT_TRUE(st.ok());
    }
    ASSERT_TRUE(ApplyRandomizedResponse(&c, domain, p, rng).ok());
    std::vector<Value> out;
    for (size_t r = 0; r < c.size(); ++r) out.push_back(c.ValueAt(r));
    if (Domain::FromValues(out).size() == n) ++preserved;
  }
  double empirical = static_cast<double>(preserved) / trials;
  double bound = *DomainPreservationLowerBound(n, p, s);
  EXPECT_GE(empirical + 0.05, bound);  // 5% Monte-Carlo slack.
}

}  // namespace
}  // namespace privateclean
