#include "core/conjunctive.h"

#include <gtest/gtest.h>

#include <cmath>

#include "cleaning/merge.h"
#include "common/statistics.h"
#include "core/private_table.h"
#include "table/table_builder.h"

namespace privateclean {
namespace {

Schema TwoAttrSchema() {
  return *Schema::Make({Field::Discrete("dept"), Field::Discrete("campus"),
                        Field::Numerical("score", ValueType::kDouble)});
}

/// 900 rows over 6 departments x 3 campuses with a skewed joint
/// distribution.
Table TwoAttrTable(uint64_t seed = 7) {
  Rng rng(seed);
  const char* depts[] = {"EECS", "Math", "Bio", "Physics", "Chem", "Hist"};
  const char* campuses[] = {"North", "South", "West"};
  ZipfianSampler dept_z(6, 1.5);
  ZipfianSampler campus_z(3, 1.0);
  TableBuilder b(TwoAttrSchema());
  for (int i = 0; i < 900; ++i) {
    b.Row({Value(depts[dept_z.Sample(rng)]),
           Value(campuses[campus_z.Sample(rng)]),
           Value(rng.UniformRealRange(0.0, 5.0))});
  }
  return *b.Finish();
}

TEST(ConjunctiveScanTest, QuadrantsPartitionTheRelation) {
  Table t = TwoAttrTable();
  ConjunctiveScanStats stats =
      *ScanConjunctive(t, Predicate::Equals("dept", "EECS"),
                       Predicate::Equals("campus", "North"));
  EXPECT_EQ(stats.count_tt + stats.count_tf + stats.count_ft +
                stats.count_ff,
            stats.total_rows);
  EXPECT_EQ(stats.total_rows, 900u);
  // Marginals agree with single-predicate counts.
  size_t eecs =
      *Predicate::Equals("dept", "EECS").CountMatches(t);
  EXPECT_EQ(stats.count_tt + stats.count_tf, eecs);
}

TEST(ConjunctiveScanTest, RejectsSameAttribute) {
  Table t = TwoAttrTable();
  auto r = ScanConjunctive(t, Predicate::Equals("dept", "EECS"),
                           Predicate::Equals("dept", "Math"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST(ConjunctiveEstimatorTest, NoPrivacyIsNominal) {
  ConjunctiveScanStats stats;
  stats.total_rows = 1000;
  stats.count_tt = 120;
  stats.count_tf = 180;
  stats.count_ft = 200;
  stats.count_ff = 500;
  EstimationInputs a;
  a.p = 0.0;
  a.l = 2.0;
  a.n = 6.0;
  EstimationInputs b = a;
  QueryResult r = *EstimateConjunctiveCount(stats, a, b);
  EXPECT_DOUBLE_EQ(r.estimate, 120.0);
}

TEST(ConjunctiveEstimatorTest, ReducesToSingleWhenOtherIsWholeDomain) {
  // If predicate b selects the entire domain (l = N), b's randomization
  // never flips membership and the estimate must match the single-
  // predicate count estimator on a.
  ConjunctiveScanStats stats;
  stats.total_rows = 1000;
  stats.count_tt = 250;
  stats.count_tf = 0;
  stats.count_ft = 750;
  stats.count_ff = 0;
  EstimationInputs a;
  a.p = 0.3;
  a.l = 2.0;
  a.n = 10.0;
  EstimationInputs b;
  b.p = 0.3;
  b.l = 5.0;
  b.n = 5.0;  // l == N: predicate always true.
  QueryResult joint = *EstimateConjunctiveCount(stats, a, b);
  QueryScanStats single;
  single.total_rows = 1000;
  single.matching_rows = 250;
  QueryResult alone = *EstimateCount(single, a);
  EXPECT_NEAR(joint.estimate, alone.estimate, 1e-9);
}

TEST(ConjunctiveEstimatorTest, RejectsInvalidInputs) {
  ConjunctiveScanStats stats;
  stats.total_rows = 100;
  stats.count_tt = 10;
  stats.count_ff = 90;
  EstimationInputs good;
  good.p = 0.1;
  good.l = 1.0;
  good.n = 5.0;
  EstimationInputs bad = good;
  bad.p = 1.0;
  EXPECT_FALSE(EstimateConjunctiveCount(stats, bad, good).ok());
  EXPECT_FALSE(EstimateConjunctiveCount(stats, good, bad).ok());
  ConjunctiveScanStats empty;
  EXPECT_FALSE(EstimateConjunctiveCount(empty, good, good).ok());
}

TEST(ConjunctiveEstimatorTest, UnbiasedOverPrivateInstances) {
  Table data = TwoAttrTable();
  Predicate cond_a = Predicate::Equals("dept", "EECS");
  Predicate cond_b = Predicate::In("campus", {Value("North"),
                                              Value("South")});
  ConjunctiveScanStats truth_stats =
      *ScanConjunctive(data, cond_a, cond_b);
  double truth = static_cast<double>(truth_stats.count_tt);

  RunningMoments estimates;
  const int trials = 40;
  for (int t = 0; t < trials; ++t) {
    Rng rng(9100 + t);
    PrivateTable pt = *PrivateTable::Create(
        data, GrrParams::Uniform(0.25, 1.0), GrrOptions{}, rng);
    QueryResult r = *pt.CountConjunctive(cond_a, cond_b);
    estimates.Add(r.estimate);
  }
  double se = std::sqrt(estimates.SampleVariance() / trials);
  EXPECT_NEAR(estimates.Mean(), truth, std::max(4.0 * se, 2.0));
}

TEST(ConjunctiveEstimatorTest, BeatsDirectOnSkewedJoint) {
  Table data = TwoAttrTable();
  Predicate cond_a = Predicate::Equals("dept", "EECS");
  Predicate cond_b = Predicate::Equals("campus", "North");
  double truth = static_cast<double>(
      ScanConjunctive(data, cond_a, cond_b)->count_tt);
  double pc_err = 0.0, direct_err = 0.0;
  const int trials = 40;
  for (int t = 0; t < trials; ++t) {
    Rng rng(9200 + t);
    PrivateTable pt = *PrivateTable::Create(
        data, GrrParams::Uniform(0.35, 1.0), GrrOptions{}, rng);
    pc_err += std::abs(pt.CountConjunctive(cond_a, cond_b)->estimate -
                       truth);
    double nominal = static_cast<double>(
        ScanConjunctive(pt.relation(), cond_a, cond_b)->count_tt);
    direct_err += std::abs(nominal - truth);
  }
  EXPECT_LT(pc_err, direct_err);
}

TEST(ConjunctiveEstimatorTest, WorksAfterCleaning) {
  // Merge two departments; the conjunctive estimate must use the
  // provenance-adjusted l for the merged predicate.
  Table data = TwoAttrTable();
  Rng rng(9301);
  PrivateTable pt = *PrivateTable::Create(
      data, GrrParams::Uniform(0.2, 1.0), GrrOptions{}, rng);
  ASSERT_TRUE(
      pt.Clean(FindReplace::Single("dept", Value("Chem"), Value("Bio")))
          .ok());
  Predicate cond_a = Predicate::Equals("dept", "Bio");
  Predicate cond_b = Predicate::Equals("campus", "North");
  QueryResult r = *pt.CountConjunctive(cond_a, cond_b);
  EXPECT_DOUBLE_EQ(r.l, 2.0);  // Bio + Chem on the dirty side.
  EXPECT_DOUBLE_EQ(r.n, 6.0);
}

TEST(GroupByEstimateTest, CoversCleanDomainAndSumsToS) {
  Table data = TwoAttrTable();
  Rng rng(9400);
  PrivateTable pt = *PrivateTable::Create(
      data, GrrParams::Uniform(0.2, 1.0), GrrOptions{}, rng);
  auto groups = *pt.GroupByCountEstimate("dept");
  EXPECT_EQ(groups.size(), 6u);
  double total = 0.0;
  for (const auto& [value, result] : groups) {
    total += result.estimate;
    EXPECT_TRUE(result.ci.Contains(result.estimate));
  }
  // Each group's corrected count sums to ~S (the corrections cancel:
  // sum of nominal counts is S and sum of tau_n corrections is p*S).
  EXPECT_NEAR(total, 900.0, 1e-6);
}

TEST(GroupByEstimateTest, MoreAccurateThanNominalOnAverage) {
  Table data = TwoAttrTable();
  auto truth = *GroupByCount(data, "dept");
  double pc_err = 0.0, direct_err = 0.0;
  const int trials = 30;
  for (int t = 0; t < trials; ++t) {
    Rng rng(9500 + t);
    PrivateTable pt = *PrivateTable::Create(
        data, GrrParams::Uniform(0.3, 1.0), GrrOptions{}, rng);
    auto groups = *pt.GroupByCountEstimate("dept");
    auto nominal = *GroupByCount(pt.relation(), "dept");
    for (const auto& [value, result] : groups) {
      double tr = static_cast<double>(truth[value.ToString()]);
      pc_err += std::abs(result.estimate - tr);
      direct_err +=
          std::abs(static_cast<double>(nominal[value.ToString()]) - tr);
    }
  }
  EXPECT_LT(pc_err, direct_err);
}

TEST(GroupByEstimateTest, ReflectsCleaning) {
  Table data = TwoAttrTable();
  Rng rng(9600);
  PrivateTable pt = *PrivateTable::Create(
      data, GrrParams::Uniform(0.2, 1.0), GrrOptions{}, rng);
  ASSERT_TRUE(
      pt.Clean(FindReplace::Single("dept", Value("Hist"), Value("Bio")))
          .ok());
  auto groups = *pt.GroupByCountEstimate("dept");
  EXPECT_EQ(groups.size(), 5u);  // Hist merged away.
  for (const auto& [value, result] : groups) {
    if (value == Value("Bio")) {
      EXPECT_DOUBLE_EQ(result.l, 2.0);
    } else {
      EXPECT_DOUBLE_EQ(result.l, 1.0);
    }
  }
}

TEST(GroupByEstimateTest, RejectsNumericalAttribute) {
  Table data = TwoAttrTable();
  Rng rng(9700);
  PrivateTable pt = *PrivateTable::Create(
      data, GrrParams::Uniform(0.2, 1.0), GrrOptions{}, rng);
  EXPECT_FALSE(pt.GroupByCountEstimate("score").ok());
  EXPECT_FALSE(pt.GroupByCountEstimate("nope").ok());
}

}  // namespace
}  // namespace privateclean
