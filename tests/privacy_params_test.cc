#include "privacy/privacy_params.h"

#include <gtest/gtest.h>

#include <cmath>

namespace privateclean {
namespace {

TEST(RrEpsilonTest, Lemma1Formula) {
  // Lemma 1: eps = ln(3/p - 2).
  EXPECT_NEAR(*EpsilonForRandomizedResponse(0.25), std::log(10.0), 1e-12);
  EXPECT_NEAR(*EpsilonForRandomizedResponse(1.0), 0.0, 1e-12);
  EXPECT_NEAR(*EpsilonForRandomizedResponse(0.1), std::log(28.0), 1e-12);
}

TEST(RrEpsilonTest, MorePrivacyMeansSmallerEpsilon) {
  double prev = *EpsilonForRandomizedResponse(0.05);
  for (double p : {0.1, 0.2, 0.4, 0.8, 1.0}) {
    double eps = *EpsilonForRandomizedResponse(p);
    EXPECT_LT(eps, prev) << "p=" << p;
    prev = eps;
  }
}

TEST(RrEpsilonTest, RejectsOutOfRange) {
  EXPECT_FALSE(EpsilonForRandomizedResponse(0.0).ok());
  EXPECT_FALSE(EpsilonForRandomizedResponse(-0.1).ok());
  EXPECT_FALSE(EpsilonForRandomizedResponse(1.1).ok());
}

TEST(RrEpsilonTest, InverseRoundTrips) {
  for (double p : {0.05, 0.1, 0.25, 0.5, 0.9, 1.0}) {
    double eps = *EpsilonForRandomizedResponse(p);
    EXPECT_NEAR(*RandomizationForEpsilon(eps), p, 1e-12) << "p=" << p;
  }
}

TEST(RrEpsilonTest, InverseAtZeroEpsilonIsFullRandomization) {
  EXPECT_NEAR(*RandomizationForEpsilon(0.0), 1.0, 1e-12);
  EXPECT_FALSE(RandomizationForEpsilon(-1.0).ok());
}

TEST(LaplaceEpsilonTest, Proposition1Formula) {
  EXPECT_DOUBLE_EQ(*EpsilonForLaplace(100.0, 10.0), 10.0);
  EXPECT_DOUBLE_EQ(*EpsilonForLaplace(5.0, 5.0), 1.0);
  EXPECT_DOUBLE_EQ(*EpsilonForLaplace(0.0, 1.0), 0.0);
}

TEST(LaplaceEpsilonTest, RejectsBadInputs) {
  EXPECT_FALSE(EpsilonForLaplace(-1.0, 1.0).ok());
  EXPECT_FALSE(EpsilonForLaplace(1.0, 0.0).ok());
  EXPECT_FALSE(EpsilonForLaplace(1.0, -1.0).ok());
}

TEST(LaplaceEpsilonTest, ScaleInverseRoundTrips) {
  double b = *LaplaceScaleForEpsilon(100.0, 2.0);
  EXPECT_DOUBLE_EQ(b, 50.0);
  EXPECT_DOUBLE_EQ(*EpsilonForLaplace(100.0, b), 2.0);
  EXPECT_FALSE(LaplaceScaleForEpsilon(1.0, 0.0).ok());
  EXPECT_FALSE(LaplaceScaleForEpsilon(-1.0, 1.0).ok());
}

TEST(GrrParamsTest, UniformSetsDefaults) {
  GrrParams params = GrrParams::Uniform(0.1, 10.0);
  EXPECT_DOUBLE_EQ(params.default_p, 0.1);
  EXPECT_DOUBLE_EQ(params.default_b, 10.0);
  EXPECT_TRUE(params.discrete_p.empty());
  EXPECT_TRUE(params.numeric_b.empty());
}

TEST(GrrParamsTest, DefaultHasNoDefaults) {
  GrrParams params;
  EXPECT_LT(params.default_p, 0.0);
  EXPECT_LT(params.default_b, 0.0);
}

}  // namespace
}  // namespace privateclean
