// The experiment harness (bench/harness.*) is part of the reproduction
// deliverable, so it gets its own tests: the comparison runner must
// compute mean relative errors correctly, respect support filters, keep
// query sets fixed across sweep points, and fail loudly on bad specs.

#include "bench/harness.h"

#include <gtest/gtest.h>

#include "datagen/synthetic.h"

namespace privateclean {
namespace bench {
namespace {

Table MakeData(uint64_t seed = 1) {
  SyntheticOptions options;
  options.num_rows = 600;
  Rng rng(seed);
  return *GenerateSynthetic(options, rng);
}

TEST(RunComparisonTest, ProducesFiniteErrors) {
  Table data = MakeData();
  Predicate pred = Predicate::In(
      "category", {SyntheticCategory(0), SyntheticCategory(1)});
  ComparisonSpec spec;
  spec.data = &data;
  spec.params = GrrParams::Uniform(0.2, 5.0);
  spec.query = AggregateQuery::Count(pred);
  spec.truth = *ExecuteAggregate(data, spec.query);
  spec.trials = 10;
  ComparisonResult r = *RunComparison(spec);
  EXPECT_GE(r.privateclean_pct, 0.0);
  EXPECT_GE(r.direct_pct, 0.0);
  EXPECT_LT(r.privateclean_pct, 200.0);
  EXPECT_EQ(r.failed_trials, 0);
}

TEST(RunComparisonTest, CleaningHookRuns) {
  Table data = MakeData();
  int clean_calls = 0;
  ComparisonSpec spec;
  spec.data = &data;
  spec.params = GrrParams::Uniform(0.1, 5.0);
  spec.clean = [&clean_calls](PrivateTable& pt) {
    ++clean_calls;
    return pt.Clean(FindReplace::Single("category", SyntheticCategory(1),
                                        SyntheticCategory(0)));
  };
  spec.query = AggregateQuery::Count(
      Predicate::Equals("category", SyntheticCategory(0)));
  Table truth_table = data.Clone();
  (void)FindReplace::Single("category", SyntheticCategory(1),
                            SyntheticCategory(0))
      .Apply(&truth_table);
  spec.truth = *ExecuteAggregate(truth_table, spec.query);
  spec.trials = 5;
  ComparisonResult r = *RunComparison(spec);
  EXPECT_EQ(clean_calls, 5);
  EXPECT_LT(r.privateclean_pct, r.direct_pct + 100.0);
}

TEST(RunComparisonTest, UnweightedVariantOnlyWhenRequested) {
  Table data = MakeData();
  ComparisonSpec spec;
  spec.data = &data;
  spec.params = GrrParams::Uniform(0.1, 5.0);
  spec.query = AggregateQuery::Count(
      Predicate::Equals("category", SyntheticCategory(0)));
  spec.truth = *ExecuteAggregate(data, spec.query);
  spec.trials = 5;
  ComparisonResult without = *RunComparison(spec);
  EXPECT_DOUBLE_EQ(without.unweighted_pct, 0.0);
  spec.include_unweighted = true;
  ComparisonResult with = *RunComparison(spec);
  EXPECT_GT(with.unweighted_pct, 0.0);
}

TEST(RunComparisonTest, RejectsBadSpecs) {
  ComparisonSpec spec;
  EXPECT_FALSE(RunComparison(spec).ok());  // No data.
  Table data = MakeData();
  spec.data = &data;
  spec.truth = 0.0;  // Zero truth: relative error undefined.
  EXPECT_FALSE(RunComparison(spec).ok());
}

TEST(RandomQueryComparisonTest, SupportFilterRejectsRareQueries) {
  Table data = MakeData();
  RandomQuerySpec spec;
  spec.data = &data;
  spec.params = GrrParams::Uniform(0.1, 5.0);
  // Queries over single random categories; with z=2 most are rare.
  spec.make_query = [](Rng& rng) {
    return AggregateQuery::Count(Predicate::In(
        "category", PickPredicateCategories(50, 1, 2, rng)));
  };
  spec.num_queries = 5;
  spec.trials_per_query = 3;
  spec.min_predicate_rows = data.num_rows();  // Impossible support.
  auto r = RunRandomQueryComparison(spec);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsFailedPrecondition());
}

TEST(RandomQueryComparisonTest, FixedQuerySeedGivesIdenticalResults) {
  Table data = MakeData();
  auto run = [&](uint64_t query_seed) {
    RandomQuerySpec spec;
    spec.data = &data;
    spec.params = GrrParams::Uniform(0.1, 5.0);
    spec.make_query = [](Rng& rng) {
      return AggregateQuery::Count(Predicate::In(
          "category", PickPredicateCategories(50, 5, 2, rng)));
    };
    spec.num_queries = 4;
    spec.trials_per_query = 4;
    spec.query_seed = query_seed;
    spec.seed_base = 999;
    return *RunRandomQueryComparison(spec);
  };
  ComparisonResult a = run(123);
  ComparisonResult b = run(123);
  EXPECT_DOUBLE_EQ(a.privateclean_pct, b.privateclean_pct);
  EXPECT_DOUBLE_EQ(a.direct_pct, b.direct_pct);
  ComparisonResult c = run(456);
  EXPECT_NE(a.privateclean_pct, c.privateclean_pct);
}

TEST(PrintFigureTest, RendersAllSeries) {
  // Smoke: PrintFigure writes to stdout; just ensure it doesn't crash
  // with mismatched lengths or NaNs.
  Series s1{"A", {1.0, 2.0}};
  Series s2{"B", {3.0}};  // Shorter than xs: prints n/a.
  PrintFigure("test figure", "x", {0.1, 0.2}, {s1, s2});
}

}  // namespace
}  // namespace bench
}  // namespace privateclean
