// Statistical property tests for the privacy mechanisms themselves:
// empirical verification of the local-differential-privacy likelihood
// ratios (Lemma 1), the randomized-response transition matrix, the
// Laplace mechanism's epsilon, and the Theorem 2 domain-preservation
// frequency, swept over the parameter grid with TEST_P.

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "common/statistics.h"
#include "privacy/privacy_params.h"
#include "privacy/randomized_response.h"
#include "privacy/size_bound.h"
#include "table/domain.h"

namespace privateclean {
namespace {

class RrPrivacyTest : public ::testing::TestWithParam<double> {};

TEST_P(RrPrivacyTest, EmpiricalLikelihoodRatioRespectsLemma1) {
  // Lemma 1's worst case: domain of two values. Measure
  // P[obs = a | true = x] empirically for both inputs and check the
  // worst ratio against exp(eps) with Monte-Carlo slack.
  const double p = GetParam();
  Domain domain = Domain::FromValues({Value("a"), Value("b")});
  Rng rng(101);
  const int trials = 200000;
  int obs_a_given_a = 0, obs_a_given_b = 0;
  for (int t = 0; t < trials; ++t) {
    Column col = *Column::Make(ValueType::kString);
    col.AppendString("a");
    col.AppendString("b");
    ASSERT_TRUE(ApplyRandomizedResponse(&col, domain, p, rng).ok());
    if (col.StringAt(0) == "a") ++obs_a_given_a;
    if (col.StringAt(1) == "a") ++obs_a_given_b;
  }
  double p_a_a = static_cast<double>(obs_a_given_a) / trials;
  double p_a_b = static_cast<double>(obs_a_given_b) / trials;
  ASSERT_GT(p_a_b, 0.0);
  double ratio = p_a_a / p_a_b;
  // Analytic ratio for N=2: (1 - p + p/2) / (p/2) = 2/p - 1, which is
  // <= exp(eps) = 3/p - 2 for p <= 1.
  double analytic = 2.0 / p - 1.0;
  EXPECT_NEAR(ratio, analytic, 0.15 * analytic);
  double eps = *EpsilonForRandomizedResponse(p);
  EXPECT_LE(ratio, std::exp(eps) * 1.15);
}

INSTANTIATE_TEST_SUITE_P(Ps, RrPrivacyTest,
                         ::testing::Values(0.1, 0.25, 0.5, 0.75, 1.0),
                         [](const ::testing::TestParamInfo<double>& info) {
                           return "p" + std::to_string(static_cast<int>(
                                            info.param * 100));
                         });

struct TransitionCase {
  double p;
  size_t l;
  size_t n;
};

class TransitionMatrixTest
    : public ::testing::TestWithParam<TransitionCase> {};

TEST_P(TransitionMatrixTest, EmpiricalRatesMatchFormulas) {
  const TransitionCase& tc = GetParam();
  // Domain {v0..v_{n-1}}; predicate selects the first l values.
  std::vector<Value> values;
  for (size_t k = 0; k < tc.n; ++k) {
    values.push_back(Value("v" + std::to_string(k)));
  }
  Domain domain = Domain::FromValues(values);
  auto in_pred = [&](const Value& v) {
    for (size_t k = 0; k < tc.l; ++k) {
      if (v == values[k]) return true;
    }
    return false;
  };

  Rng rng(202);
  const int rows = 60000;
  // Half the rows start inside the predicate, half outside.
  Column col = *Column::Make(ValueType::kString);
  std::vector<uint8_t> truly_in(rows);
  for (int r = 0; r < rows; ++r) {
    bool inside = (r % 2 == 0);
    truly_in[static_cast<size_t>(r)] = inside;
    col.AppendString(inside
                         ? values[static_cast<size_t>(r / 2) % tc.l]
                               .AsString()
                         : values[tc.l + static_cast<size_t>(r / 2) %
                                             (tc.n - tc.l)]
                               .AsString());
  }
  ASSERT_TRUE(ApplyRandomizedResponse(&col, domain, tc.p, rng).ok());

  int tp = 0, fp = 0, in_count = 0, out_count = 0;
  for (int r = 0; r < rows; ++r) {
    bool now_in = in_pred(col.ValueAt(static_cast<size_t>(r)));
    if (truly_in[static_cast<size_t>(r)]) {
      ++in_count;
      tp += now_in ? 1 : 0;
    } else {
      ++out_count;
      fp += now_in ? 1 : 0;
    }
  }
  TransitionProbabilities t = *ComputeTransitionProbabilities(
      tc.p, static_cast<double>(tc.l), static_cast<double>(tc.n));
  EXPECT_NEAR(static_cast<double>(tp) / in_count, t.true_positive, 0.012);
  EXPECT_NEAR(static_cast<double>(fp) / out_count, t.false_positive, 0.012);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TransitionMatrixTest,
    ::testing::Values(TransitionCase{0.1, 5, 50}, TransitionCase{0.5, 5, 50},
                      TransitionCase{0.25, 1, 10}, TransitionCase{0.25, 9, 10},
                      TransitionCase{0.8, 20, 100}),
    [](const ::testing::TestParamInfo<TransitionCase>& info) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "p%02d_l%zu_N%zu",
                    static_cast<int>(info.param.p * 100), info.param.l,
                    info.param.n);
      return std::string(buf);
    });

class LaplacePrivacyTest : public ::testing::TestWithParam<double> {};

TEST_P(LaplacePrivacyTest, EmpiricalDensityRatioRespectsEpsilon) {
  // For two inputs x, x' with |x - x'| = delta and scale b, the density
  // ratio at any output is bounded by exp(delta/b). Check via binned
  // histograms.
  const double b = GetParam();
  const double delta = 2.0;
  Rng rng(303);
  const int trials = 300000;
  const double bin_width = 1.0;
  const int num_bins = 40;  // Centered on 0.
  std::vector<int> hist_x(num_bins, 0), hist_xp(num_bins, 0);
  auto bin_of = [&](double v) {
    int bin = static_cast<int>(std::floor(v / bin_width)) + num_bins / 2;
    return bin;
  };
  for (int t = 0; t < trials; ++t) {
    int bx = bin_of(rng.Laplace(0.0, b));
    if (bx >= 0 && bx < num_bins) ++hist_x[static_cast<size_t>(bx)];
    int bxp = bin_of(rng.Laplace(delta, b));
    if (bxp >= 0 && bxp < num_bins) ++hist_xp[static_cast<size_t>(bxp)];
  }
  double eps = delta / b;
  for (int bin = 0; bin < num_bins; ++bin) {
    // Only compare well-populated bins (Monte-Carlo noise elsewhere).
    if (hist_x[static_cast<size_t>(bin)] < 2000 ||
        hist_xp[static_cast<size_t>(bin)] < 2000) {
      continue;
    }
    double ratio = static_cast<double>(hist_x[static_cast<size_t>(bin)]) /
                   hist_xp[static_cast<size_t>(bin)];
    EXPECT_LE(ratio, std::exp(eps) * 1.2) << "bin " << bin;
    EXPECT_GE(ratio, std::exp(-eps) / 1.2) << "bin " << bin;
  }
}

INSTANTIATE_TEST_SUITE_P(Scales, LaplacePrivacyTest,
                         ::testing::Values(1.0, 2.0, 5.0),
                         [](const ::testing::TestParamInfo<double>& info) {
                           return "b" + std::to_string(static_cast<int>(
                                            info.param));
                         });

struct PreservationCase {
  size_t n;
  double p;
  size_t s;
};

class DomainPreservationSweep
    : public ::testing::TestWithParam<PreservationCase> {};

TEST_P(DomainPreservationSweep, EmpiricalRateAtLeastAnalyticBound) {
  const PreservationCase& pc = GetParam();
  std::vector<Value> values;
  for (size_t i = 0; i < pc.s; ++i) {
    values.push_back(Value("v" + std::to_string(i % pc.n)));
  }
  Domain domain = Domain::FromValues(values);
  ASSERT_EQ(domain.size(), pc.n);
  Rng rng(404);
  int preserved = 0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    Column col = *Column::Make(ValueType::kString);
    for (const Value& v : values) ASSERT_TRUE(col.AppendValue(v).ok());
    ASSERT_TRUE(ApplyRandomizedResponse(&col, domain, pc.p, rng).ok());
    std::vector<uint8_t> seen(pc.n, 0);
    size_t distinct = 0;
    for (size_t r = 0; r < col.size(); ++r) {
      size_t idx = *domain.IndexOf(col.ValueAt(r));
      if (!seen[idx]) {
        seen[idx] = 1;
        ++distinct;
      }
    }
    if (distinct == pc.n) ++preserved;
  }
  double empirical = static_cast<double>(preserved) / trials;
  double bound = *DomainPreservationLowerBound(pc.n, pc.p, pc.s);
  EXPECT_GE(empirical + 0.07, bound)
      << "n=" << pc.n << " p=" << pc.p << " s=" << pc.s;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DomainPreservationSweep,
    ::testing::Values(PreservationCase{10, 0.25, 200},
                      PreservationCase{25, 0.25, 500},
                      PreservationCase{25, 0.25, 483},  // Example 3 size.
                      PreservationCase{50, 0.5, 400},
                      PreservationCase{5, 0.9, 100}),
    [](const ::testing::TestParamInfo<PreservationCase>& info) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "N%zu_p%02d_S%zu", info.param.n,
                    static_cast<int>(info.param.p * 100), info.param.s);
      return std::string(buf);
    });

}  // namespace
}  // namespace privateclean
