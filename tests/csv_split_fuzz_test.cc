#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/random.h"
#include "parallel_harness.h"
#include "table/csv.h"

// Differential fuzzing of the two-phase speculative-split CSV record
// parser against the single-pass serial parser. The speculative parser's
// correctness argument is subtle (per-chunk quote-parity transfer
// functions, boundary adjustment around escaped quotes, newline prefix
// sums for line tracking), so the proof here is brute force: on
// thousands of randomized inputs — quoted fields, multiline quoted
// fields, escaped quotes, CRLF, \N nulls, blank lines, and torn
// (truncated-anywhere) variants — the two parsers must agree
// byte-for-byte on every record, every field's quoted flag, every
// record's line number, and on malformed input must return the same
// status code with the same file:line-prefixed message. Each comparison
// runs the speculative parser at 1, 2, and 8 threads with adversarially
// tiny chunk sizes so chunk boundaries land inside quoted fields,
// escaped-quote pairs, and CRLF sequences even on short inputs.

namespace privateclean {
namespace {

/// Serializes a split result — success or error — into comparable bytes.
/// Tag-prefixed so an error can never collide with a record list.
std::string SplitImage(const Result<std::vector<CsvRawRecord>>& result) {
  ByteSink sink;
  if (!result.ok()) {
    sink.AppendU64(0xE0E0E0E0);
    sink.AppendU64(static_cast<uint64_t>(result.status().code()));
    sink.AppendString(result.status().message());
    return std::move(sink).Finish();
  }
  const std::vector<CsvRawRecord>& records = result.ValueOrDie();
  sink.AppendU64(records.size());
  for (const CsvRawRecord& record : records) {
    sink.AppendU64(record.line);
    sink.AppendU64(record.fields.size());
    for (const CsvRawField& field : record.fields) {
      sink.AppendString(field.text);
      sink.AppendU64(field.quoted ? 1 : 0);
    }
  }
  return std::move(sink).Finish();
}

/// Asserts serial == speculative on `text` for every thread count and a
/// few chunk sizes. `require_trailing_newline` exercises the truncated-
/// final-record DataLoss path on torn inputs.
void ExpectParsersAgree(const std::string& text, Rng& rng,
                        bool require_trailing_newline) {
  CsvOptions serial;
  serial.split = CsvSplitMode::kSerial;
  serial.error_context = "fuzz.csv";
  serial.require_trailing_newline = require_trailing_newline;
  const std::string want = SplitImage(SplitCsvRecords(text, serial));

  CsvOptions spec = serial;
  spec.split = CsvSplitMode::kSpeculative;
  // Tiny chunks force record and quote state across chunk boundaries;
  // chunk size 1 makes *every* byte a boundary candidate.
  const size_t chunk_sizes[] = {1, 1 + rng.UniformInt(7),
                                8 + rng.UniformInt(24), 0};
  for (size_t chunk_bytes : chunk_sizes) {
    spec.split_chunk_bytes = chunk_bytes;
    for (size_t threads : {1u, 2u, 8u}) {
      SCOPED_TRACE("chunk_bytes=" + std::to_string(chunk_bytes) +
                   " threads=" + std::to_string(threads) + " text=[" + text +
                   "]");
      spec.exec.num_threads = threads;
      EXPECT_EQ(SplitImage(SplitCsvRecords(text, spec)), want);
    }
  }
}

/// One random CSV-ish fragment drawn from generators that cover the
/// grammar's hard corners. Deliberately includes malformed shapes
/// (unterminated quotes, bare quotes mid-field) — the parsers must agree
/// on errors too.
std::string RandomFragment(Rng& rng) {
  switch (rng.UniformInt(12)) {
    case 0:
      return "plain" + std::to_string(rng.UniformInt(1000));
    case 1:
      return "\"quoted,with delimiter\"";
    case 2:
      return "\"multi\nline\nfield\"";
    case 3:
      return "\"escaped \"\" quote\"";
    case 4: {
      // A run of quotes of random length — the adversarial case for the
      // chunk-boundary adjustment.
      std::string quotes(1 + rng.UniformInt(6), '"');
      return quotes;
    }
    case 5:
      return "\\N";
    case 6:
      return "";  // Empty field.
    case 7:
      return "  padded  ";
    case 8:
      return "\"\"";  // Quoted empty string (non-NULL).
    case 9:
      return "\"crlf\r\ninside\"";
    case 10:
      return std::to_string(rng.UniformReal());
    case 11:
      return "tail\rcarriage";
  }
  return "";
}

/// A random record: fragments joined by delimiters, randomly terminated
/// by '\n', "\r\n", or nothing (torn tail).
std::string RandomRecord(Rng& rng) {
  std::string record;
  const size_t fields = 1 + rng.UniformInt(4);
  for (size_t f = 0; f < fields; ++f) {
    if (f > 0) record.push_back(',');
    record += RandomFragment(rng);
  }
  switch (rng.UniformInt(8)) {
    case 0:
      record += "\r\n";
      break;
    case 1:
      break;  // Torn: no terminator.
    default:
      record.push_back('\n');
      break;
  }
  return record;
}

TEST(CsvSplitFuzzTest, RandomizedInputsAgreeByteForByte) {
  Rng rng(0xC5F5F17ULL);
  for (int trial = 0; trial < 400; ++trial) {
    std::string text;
    const size_t records = rng.UniformInt(8);
    for (size_t r = 0; r < records; ++r) text += RandomRecord(rng);
    ExpectParsersAgree(text, rng, rng.Bernoulli(0.5));
  }
}

TEST(CsvSplitFuzzTest, TornInputsAgreeIncludingErrors) {
  Rng rng(0xDEADBEEFCAFEULL);
  for (int trial = 0; trial < 200; ++trial) {
    std::string text;
    for (size_t r = 0; r < 4; ++r) text += RandomRecord(rng);
    // Tear the input at a random byte: quoted fields become unterminated
    // and final records lose their newline, so both error branches get
    // exercised with both require_trailing_newline settings.
    if (!text.empty()) text.resize(rng.UniformInt(text.size() + 1));
    ExpectParsersAgree(text, rng, false);
    ExpectParsersAgree(text, rng, true);
  }
}

TEST(CsvSplitFuzzTest, CellTypingPipelineAgreesOnTables) {
  // End-to-end CsvToTable comparison: render random tables, parse them
  // back under both split modes at 1/2/8 threads, and require the byte
  // image of the parsed table (and of any error) to match the serial
  // parse, proving the splitter composes with sharded cell typing.
  Rng rng(0x5EED5EED5EEDULL);
  Schema schema = *Schema::Make({Field::Discrete("name", ValueType::kString),
                                 Field::Numerical("score", ValueType::kDouble),
                                 Field::Numerical("count", ValueType::kInt64)});
  for (int trial = 0; trial < 40; ++trial) {
    std::string text = "name,score,count\n";
    const size_t rows = rng.UniformInt(60);
    for (size_t r = 0; r < rows; ++r) {
      text += RandomFragment(rng) + "," +
              std::to_string(rng.UniformRealRange(-10, 10)) + "," +
              std::to_string(rng.UniformIntRange(-5, 5)) + "\n";
    }
    CsvOptions serial;
    serial.split = CsvSplitMode::kSerial;
    serial.null_literal = "\\N";
    serial.error_context = "pipeline.csv";

    auto image = [&](const Result<Table>& result) {
      ByteSink sink;
      if (!result.ok()) {
        sink.AppendU64(0xE0E0E0E0);
        sink.AppendU64(static_cast<uint64_t>(result.status().code()));
        sink.AppendString(result.status().message());
      } else {
        sink.AppendTable(result.ValueOrDie());
      }
      return std::move(sink).Finish();
    };
    const std::string want = image(CsvToTable(text, schema, serial));

    CsvOptions spec = serial;
    spec.split = CsvSplitMode::kSpeculative;
    spec.split_chunk_bytes = 1 + rng.UniformInt(32);
    for (size_t threads : {1u, 2u, 8u}) {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      spec.exec.num_threads = threads;
      EXPECT_EQ(image(CsvToTable(text, schema, spec)), want);
    }
  }
}

TEST(CsvSplitFuzzTest, ErrorMessagesCarryIdenticalFileLineContext) {
  // Malformed inputs with the error several (possibly quoted) lines in:
  // the speculative parser must reproduce the serial parser's
  // "<context>:<line>: " prefix exactly, including lines advanced inside
  // quoted fields.
  const char* inputs[] = {
      "a,b\nc,d\n\"open",              // Unterminated quote on line 3.
      "\"x\ny\nz\"\nnext,\"",          // Quoted newlines, then line 4 opens.
      "one\ntwo\nthree",               // Truncated final record, line 3.
      "\"a\nb\"\r\n\"c",               // CRLF after a multiline field.
      "h1,h2\n\"v\n\n\n",              // Quote swallowing blank lines.
  };
  Rng rng(0xABCDEF);
  for (const char* input : inputs) {
    for (bool require_newline : {false, true}) {
      ExpectParsersAgree(input, rng, require_newline);
    }
  }
}

TEST(CsvSplitFuzzTest, AutoModeMatchesSerialAcrossThreadCounts) {
  // kAuto on a large input flips to the speculative path once more than
  // one thread is effective; the parallel-harness contract (identical
  // bytes at 1/2/8 threads) must hold across that flip.
  std::string text = "name,score\n";
  Rng rng(77);
  for (int r = 0; r < 4000; ++r) {
    text += RandomFragment(rng) + "," + std::to_string(rng.UniformReal()) +
            "\n";
  }
  CsvOptions options;
  options.split_min_bytes = 1024;  // Well under the text size.
  ExpectIdenticalAcrossThreadCounts([&](const ExecutionOptions& exec) {
    CsvOptions run = options;
    run.exec = exec;
    return SplitImage(SplitCsvRecords(text, run));
  });
}

}  // namespace
}  // namespace privateclean
