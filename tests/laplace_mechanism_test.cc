#include "privacy/laplace_mechanism.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/statistics.h"

namespace privateclean {
namespace {

TEST(LaplaceMechanismTest, ZeroScaleIsIdentity) {
  Rng rng(1);
  Column c = *Column::Make(ValueType::kDouble);
  c.AppendDouble(1.5);
  c.AppendDouble(-2.5);
  ASSERT_TRUE(ApplyLaplaceMechanism(&c, 0.0, rng).ok());
  EXPECT_DOUBLE_EQ(c.DoubleAt(0), 1.5);
  EXPECT_DOUBLE_EQ(c.DoubleAt(1), -2.5);
}

TEST(LaplaceMechanismTest, NoiseIsZeroMeanWithCorrectVariance) {
  Rng rng(2);
  const double b = 3.0;
  const int rows = 100000;
  Column c = *Column::Make(ValueType::kDouble);
  for (int i = 0; i < rows; ++i) c.AppendDouble(10.0);
  ASSERT_TRUE(ApplyLaplaceMechanism(&c, b, rng).ok());
  RunningMoments m;
  for (int i = 0; i < rows; ++i) m.Add(c.DoubleAt(i));
  EXPECT_NEAR(m.Mean(), 10.0, 0.1);
  EXPECT_NEAR(m.PopulationVariance(), 2.0 * b * b, 0.5);
}

TEST(LaplaceMechanismTest, NullsStayNull) {
  Rng rng(3);
  Column c = *Column::Make(ValueType::kDouble);
  c.AppendDouble(1.0);
  c.AppendNull();
  ASSERT_TRUE(ApplyLaplaceMechanism(&c, 5.0, rng).ok());
  EXPECT_FALSE(c.IsNull(0));
  EXPECT_TRUE(c.IsNull(1));
}

TEST(LaplaceMechanismTest, Int64ColumnsRoundNoise) {
  Rng rng(4);
  const int rows = 50000;
  Column c = *Column::Make(ValueType::kInt64);
  for (int i = 0; i < rows; ++i) c.AppendInt64(100);
  ASSERT_TRUE(ApplyLaplaceMechanism(&c, 4.0, rng).ok());
  RunningMoments m;
  bool changed = false;
  for (int i = 0; i < rows; ++i) {
    m.Add(static_cast<double>(c.Int64At(i)));
    changed |= c.Int64At(i) != 100;
  }
  EXPECT_TRUE(changed);
  // Rounded Laplace noise is still zero-mean by symmetry.
  EXPECT_NEAR(m.Mean(), 100.0, 0.2);
}

TEST(LaplaceMechanismTest, RejectsStringColumn) {
  Rng rng(5);
  Column c = *Column::Make(ValueType::kString);
  c.AppendString("x");
  EXPECT_TRUE(ApplyLaplaceMechanism(&c, 1.0, rng).IsInvalidArgument());
}

TEST(LaplaceMechanismTest, RejectsNegativeScaleAndNullColumn) {
  Rng rng(6);
  Column c = *Column::Make(ValueType::kDouble);
  c.AppendDouble(1.0);
  EXPECT_TRUE(ApplyLaplaceMechanism(&c, -1.0, rng).IsInvalidArgument());
  EXPECT_TRUE(ApplyLaplaceMechanism(nullptr, 1.0, rng).IsInvalidArgument());
}

TEST(ColumnSensitivityTest, MaxMinusMin) {
  Column c = *Column::Make(ValueType::kDouble);
  c.AppendDouble(3.0);
  c.AppendDouble(-2.0);
  c.AppendNull();
  c.AppendDouble(7.5);
  EXPECT_DOUBLE_EQ(*ColumnSensitivity(c), 9.5);
}

TEST(ColumnSensitivityTest, SingleValueIsZero) {
  Column c = *Column::Make(ValueType::kInt64);
  c.AppendInt64(5);
  EXPECT_DOUBLE_EQ(*ColumnSensitivity(c), 0.0);
}

TEST(ColumnSensitivityTest, AllNullFails) {
  Column c = *Column::Make(ValueType::kDouble);
  c.AppendNull();
  auto r = ColumnSensitivity(c);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsFailedPrecondition());
}

TEST(ColumnSensitivityTest, RejectsStringColumn) {
  Column c = *Column::Make(ValueType::kString);
  c.AppendString("x");
  EXPECT_FALSE(ColumnSensitivity(c).ok());
}

}  // namespace
}  // namespace privateclean
