#include "table/value.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace privateclean {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), ValueType::kNull);
  EXPECT_EQ(v, Value::Null());
}

TEST(ValueTest, TypedConstruction) {
  EXPECT_EQ(Value(int64_t{7}).type(), ValueType::kInt64);
  EXPECT_EQ(Value(7).type(), ValueType::kInt64);  // int promotes to int64.
  EXPECT_EQ(Value(3.5).type(), ValueType::kDouble);
  EXPECT_EQ(Value("abc").type(), ValueType::kString);
  EXPECT_EQ(Value(std::string("abc")).type(), ValueType::kString);
}

TEST(ValueTest, Accessors) {
  EXPECT_EQ(Value(42).AsInt64(), 42);
  EXPECT_DOUBLE_EQ(Value(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value("hi").AsString(), "hi");
}

TEST(ValueTest, ToNumeric) {
  EXPECT_DOUBLE_EQ(Value(3).ToNumeric().ValueOrDie(), 3.0);
  EXPECT_DOUBLE_EQ(Value(2.5).ToNumeric().ValueOrDie(), 2.5);
}

TEST(ValueTest, ToNumericRejectsStringAndNull) {
  // No silent 0.0 coercion: a string is a type error, NULL a state error.
  Result<double> s = Value("x").ToNumeric();
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.status().IsInvalidArgument());
  Result<double> n = Value::Null().ToNumeric();
  ASSERT_FALSE(n.ok());
  EXPECT_TRUE(n.status().IsFailedPrecondition());
}

TEST(ValueTest, EqualityIsTypeAware) {
  EXPECT_EQ(Value(1), Value(1));
  EXPECT_NE(Value(1), Value(2));
  EXPECT_NE(Value(1), Value(1.0));  // int64 != double.
  EXPECT_NE(Value(0), Value::Null());
  EXPECT_NE(Value(""), Value::Null());
  EXPECT_EQ(Value::Null(), Value::Null());
  EXPECT_EQ(Value("a"), Value("a"));
}

TEST(ValueTest, OrderingIsTotal) {
  // Order by type index, then payload.
  EXPECT_LT(Value::Null(), Value(0));
  EXPECT_LT(Value(5), Value(1.0));     // int64 before double.
  EXPECT_LT(Value(9.0), Value(""));    // double before string.
  EXPECT_LT(Value(1), Value(2));
  EXPECT_LT(Value("a"), Value("b"));
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value::Null().ToString(), "");
  EXPECT_EQ(Value(42).ToString(), "42");
  EXPECT_EQ(Value(2.5).ToString(), "2.5");
  EXPECT_EQ(Value(3.0).ToString(), "3");
  EXPECT_EQ(Value("text").ToString(), "text");
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value("abc").Hash(), Value("abc").Hash());
  EXPECT_EQ(Value(7).Hash(), Value(7).Hash());
  EXPECT_EQ(Value::Null().Hash(), Value::Null().Hash());
}

TEST(ValueTest, HashDistinguishesTypes) {
  // int64(0), double(0.0), "" and null should not all collide.
  std::unordered_set<size_t> hashes{Value(0).Hash(), Value(0.0).Hash(),
                                    Value("").Hash(), Value::Null().Hash()};
  EXPECT_GE(hashes.size(), 3u);
}

TEST(ValueTest, WorksAsUnorderedKey) {
  std::unordered_set<Value, ValueHash> set;
  set.insert(Value("a"));
  set.insert(Value("a"));
  set.insert(Value(1));
  set.insert(Value::Null());
  EXPECT_EQ(set.size(), 3u);
  EXPECT_TRUE(set.count(Value("a")));
  EXPECT_TRUE(set.count(Value::Null()));
  EXPECT_FALSE(set.count(Value("b")));
}

TEST(ValueTypeTest, Names) {
  EXPECT_STREQ(ValueTypeToString(ValueType::kNull), "null");
  EXPECT_STREQ(ValueTypeToString(ValueType::kInt64), "int64");
  EXPECT_STREQ(ValueTypeToString(ValueType::kDouble), "double");
  EXPECT_STREQ(ValueTypeToString(ValueType::kString), "string");
}

}  // namespace
}  // namespace privateclean
