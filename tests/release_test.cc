#include "core/release.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "cleaning/merge.h"
#include "common/random.h"
#include "datagen/synthetic.h"
#include "table/table_builder.h"

namespace privateclean {
namespace {

class ReleaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/pclean_release_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

GrrOutput MakeGrr(uint64_t seed = 3) {
  Schema s = *Schema::Make(
      {Field::Discrete("major"),
       Field{"section", ValueType::kInt64, AttributeKind::kDiscrete},
       Field::Numerical("score", ValueType::kDouble)});
  TableBuilder b(s);
  const char* majors[] = {"EECS", "Math, Applied", "Bio\"x\"", "Physics"};
  for (int i = 0; i < 200; ++i) {
    Value major = (i % 17 == 0) ? Value::Null() : Value(majors[i % 4]);
    b.Row({major, Value(i % 5), Value(static_cast<double>(i % 10))});
  }
  Table t = *b.Finish();
  Rng rng(seed);
  return *ApplyGrr(t, GrrParams::Uniform(0.2, 1.5), GrrOptions{}, rng);
}

TEST_F(ReleaseTest, RoundTripsRelationExactly) {
  GrrOutput grr = MakeGrr();
  ASSERT_TRUE(WriteRelease(grr, dir_).ok());
  LoadedRelease loaded = *ReadRelease(dir_);
  ASSERT_EQ(loaded.relation.num_rows(), grr.table.num_rows());
  ASSERT_TRUE(loaded.relation.schema() == grr.table.schema());
  for (size_t r = 0; r < grr.table.num_rows(); ++r) {
    for (size_t c = 0; c < grr.table.num_columns(); ++c) {
      EXPECT_EQ(loaded.relation.column(c).ValueAt(r),
                grr.table.column(c).ValueAt(r))
          << "row " << r << " col " << c;
    }
  }
}

TEST_F(ReleaseTest, RoundTripsMetadata) {
  GrrOutput grr = MakeGrr();
  ASSERT_TRUE(WriteRelease(grr, dir_).ok());
  LoadedRelease loaded = *ReadRelease(dir_);
  EXPECT_EQ(loaded.metadata.dataset_size, grr.metadata.dataset_size);
  ASSERT_EQ(loaded.metadata.discrete.size(), 2u);
  ASSERT_EQ(loaded.metadata.numeric.size(), 1u);
  for (const auto& [name, meta] : grr.metadata.discrete) {
    const auto& loaded_meta = loaded.metadata.discrete.at(name);
    EXPECT_DOUBLE_EQ(loaded_meta.p, meta.p);
    ASSERT_EQ(loaded_meta.domain.size(), meta.domain.size());
    for (size_t i = 0; i < meta.domain.size(); ++i) {
      EXPECT_EQ(loaded_meta.domain.value(i), meta.domain.value(i));
    }
  }
  EXPECT_DOUBLE_EQ(loaded.metadata.numeric.at("score").b,
                   grr.metadata.numeric.at("score").b);
  EXPECT_DOUBLE_EQ(loaded.metadata.numeric.at("score").sensitivity,
                   grr.metadata.numeric.at("score").sensitivity);
}

TEST_F(ReleaseTest, NullDomainValueSurvives) {
  GrrOutput grr = MakeGrr();
  ASSERT_TRUE(
      grr.metadata.discrete.at("major").domain.Contains(Value::Null()));
  ASSERT_TRUE(WriteRelease(grr, dir_).ok());
  LoadedRelease loaded = *ReadRelease(dir_);
  EXPECT_TRUE(
      loaded.metadata.discrete.at("major").domain.Contains(Value::Null()));
}

TEST_F(ReleaseTest, NullAndEmptyStringDistinctAfterRoundTrip) {
  // data.csv is written with an explicit null literal, so a NULL string
  // entry and the empty string stay distinct through a release round
  // trip — including a value that collides with the literal itself.
  Schema s = *Schema::Make({Field::Discrete("tag"),
                            Field::Numerical("x", ValueType::kDouble)});
  TableBuilder b(s);
  b.Row({Value::Null(), Value(1.0)});
  b.Row({Value(""), Value(2.0)});
  b.Row({Value("\\N"), Value(3.0)});  // The literal itself, as a value.
  b.Row({Value("plain"), Value(4.0)});
  Table t = *b.Finish();
  Rng rng(1);
  // p = 0, b = 0: the private relation equals the original, so
  // cell-level expectations are deterministic.
  GrrOutput grr = *ApplyGrr(t, GrrParams::Uniform(0.0, 0.0), GrrOptions{},
                            rng);
  ASSERT_TRUE(WriteRelease(grr, dir_).ok());
  LoadedRelease loaded = *ReadRelease(dir_);
  const Column& tag = loaded.relation.column(0);
  EXPECT_TRUE(tag.ValueAt(0).is_null());
  EXPECT_EQ(tag.ValueAt(1), Value(""));
  EXPECT_EQ(tag.ValueAt(2), Value("\\N"));
  EXPECT_EQ(tag.ValueAt(3), Value("plain"));
  EXPECT_EQ(tag.null_count(), 1u);
}

TEST_F(ReleaseTest, OpenReleaseProducesQueryablePrivateTable) {
  GrrOutput grr = MakeGrr();
  ASSERT_TRUE(WriteRelease(grr, dir_).ok());
  PrivateTable pt = *OpenRelease(dir_);
  EXPECT_EQ(pt.size(), 200u);
  Predicate pred = Predicate::Equals("major", "EECS");
  QueryResult r = *pt.Count(pred);
  EXPECT_DOUBLE_EQ(r.p, 0.2);
  EXPECT_DOUBLE_EQ(r.n, 5.0);  // 4 majors + null.
  // Estimates agree with a PrivateTable built in-process from the same
  // private relation and metadata.
  PrivateTable direct = *PrivateTable::FromPrivateRelation(
      grr.table.Clone(), grr.metadata);
  EXPECT_DOUBLE_EQ(r.estimate, direct.Count(pred)->estimate);
}

TEST_F(ReleaseTest, LoadedTableSupportsCleaning) {
  GrrOutput grr = MakeGrr();
  ASSERT_TRUE(WriteRelease(grr, dir_).ok());
  PrivateTable pt = *OpenRelease(dir_);
  ASSERT_TRUE(pt.Clean(FindReplace::Single("major", Value("Math, Applied"),
                                           Value("Math")))
                  .ok());
  QueryResult r = *pt.Count(Predicate::Equals("major", "Math"));
  EXPECT_DOUBLE_EQ(r.l, 1.0);  // Pure rename: one dirty parent.
  EXPECT_DOUBLE_EQ(r.n, 5.0);
}

TEST_F(ReleaseTest, EpsilonAccountingSurvivesRoundTrip) {
  GrrOutput grr = MakeGrr();
  double eps_before = AccountPrivacy(grr.metadata)->total_epsilon;
  ASSERT_TRUE(WriteRelease(grr, dir_).ok());
  PrivateTable pt = *OpenRelease(dir_);
  EXPECT_NEAR(pt.PrivacyAccounting()->total_epsilon, eps_before, 1e-9);
}

TEST_F(ReleaseTest, ReadMissingDirectoryFails) {
  auto r = ReadRelease(dir_ + "_nonexistent");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsIOError());
}

TEST_F(ReleaseTest, MissingDomainFileFails) {
  GrrOutput grr = MakeGrr();
  ASSERT_TRUE(WriteRelease(grr, dir_).ok());
  std::filesystem::remove(dir_ + "/domain_0.csv");
  EXPECT_FALSE(ReadRelease(dir_).ok());
}

TEST_F(ReleaseTest, WriteRejectsIncompleteMetadata) {
  GrrOutput grr = MakeGrr();
  grr.metadata.discrete.erase("major");
  Status st = WriteRelease(grr, dir_);
  EXPECT_TRUE(st.IsInvalidArgument());
}

TEST_F(ReleaseTest, FromPrivateRelationRejectsUncoveredAttribute) {
  GrrOutput grr = MakeGrr();
  PrivateRelationMetadata meta = grr.metadata;
  meta.numeric.erase("score");
  auto r = PrivateTable::FromPrivateRelation(grr.table.Clone(), meta);
  EXPECT_FALSE(r.ok());
}

TEST_F(ReleaseTest, EndToEndProviderAnalystSeparation) {
  // Provider process: generate, privatize, write, forget.
  SyntheticOptions options;
  options.num_rows = 600;
  Rng data_rng(9);
  Table original = *GenerateSynthetic(options, data_rng);
  Predicate pred = Predicate::In(
      "category", {SyntheticCategory(0), SyntheticCategory(1)});
  double truth = *ExecuteAggregate(original, AggregateQuery::Count(pred));
  {
    Rng rng(10);
    GrrOutput grr = *ApplyGrr(original, GrrParams::Uniform(0.15, 5.0),
                              GrrOptions{}, rng);
    ASSERT_TRUE(WriteRelease(grr, dir_).ok());
  }
  // Analyst process: open the release cold and query.
  PrivateTable pt = *OpenRelease(dir_);
  QueryResult r = *pt.Count(pred);
  EXPECT_NEAR(r.estimate, truth, 0.35 * truth);
  EXPECT_TRUE(r.ci.Contains(r.estimate));
}

}  // namespace
}  // namespace privateclean
