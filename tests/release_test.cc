#include "core/release.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <functional>
#include <optional>

#include "cleaning/merge.h"
#include "core/sql_execution.h"
#include "common/io_util.h"
#include "common/random.h"
#include "datagen/synthetic.h"
#include "table/table_builder.h"

namespace privateclean {
namespace {

class ReleaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/pclean_release_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

GrrOutput MakeGrr(uint64_t seed = 3) {
  Schema s = *Schema::Make(
      {Field::Discrete("major"),
       Field{"section", ValueType::kInt64, AttributeKind::kDiscrete},
       Field::Numerical("score", ValueType::kDouble)});
  TableBuilder b(s);
  const char* majors[] = {"EECS", "Math, Applied", "Bio\"x\"", "Physics"};
  for (int i = 0; i < 200; ++i) {
    Value major = (i % 17 == 0) ? Value::Null() : Value(majors[i % 4]);
    b.Row({major, Value(i % 5), Value(static_cast<double>(i % 10))});
  }
  Table t = *b.Finish();
  Rng rng(seed);
  return *ApplyGrr(t, GrrParams::Uniform(0.2, 1.5), GrrOptions{}, rng);
}

TEST_F(ReleaseTest, RoundTripsRelationExactly) {
  GrrOutput grr = MakeGrr();
  ASSERT_TRUE(WriteRelease(grr, dir_).ok());
  LoadedRelease loaded = *ReadRelease(dir_);
  ASSERT_EQ(loaded.relation.num_rows(), grr.table.num_rows());
  ASSERT_TRUE(loaded.relation.schema() == grr.table.schema());
  for (size_t r = 0; r < grr.table.num_rows(); ++r) {
    for (size_t c = 0; c < grr.table.num_columns(); ++c) {
      EXPECT_EQ(loaded.relation.column(c).ValueAt(r),
                grr.table.column(c).ValueAt(r))
          << "row " << r << " col " << c;
    }
  }
}

TEST_F(ReleaseTest, RoundTripsMetadata) {
  GrrOutput grr = MakeGrr();
  ASSERT_TRUE(WriteRelease(grr, dir_).ok());
  LoadedRelease loaded = *ReadRelease(dir_);
  EXPECT_EQ(loaded.metadata.dataset_size, grr.metadata.dataset_size);
  ASSERT_EQ(loaded.metadata.discrete.size(), 2u);
  ASSERT_EQ(loaded.metadata.numeric.size(), 1u);
  for (const auto& [name, meta] : grr.metadata.discrete) {
    const auto& loaded_meta = loaded.metadata.discrete.at(name);
    EXPECT_DOUBLE_EQ(loaded_meta.p, meta.p);
    ASSERT_EQ(loaded_meta.domain.size(), meta.domain.size());
    for (size_t i = 0; i < meta.domain.size(); ++i) {
      EXPECT_EQ(loaded_meta.domain.value(i), meta.domain.value(i));
    }
  }
  EXPECT_DOUBLE_EQ(loaded.metadata.numeric.at("score").b,
                   grr.metadata.numeric.at("score").b);
  EXPECT_DOUBLE_EQ(loaded.metadata.numeric.at("score").sensitivity,
                   grr.metadata.numeric.at("score").sensitivity);
}

TEST_F(ReleaseTest, NullDomainValueSurvives) {
  GrrOutput grr = MakeGrr();
  ASSERT_TRUE(
      grr.metadata.discrete.at("major").domain.Contains(Value::Null()));
  ASSERT_TRUE(WriteRelease(grr, dir_).ok());
  LoadedRelease loaded = *ReadRelease(dir_);
  EXPECT_TRUE(
      loaded.metadata.discrete.at("major").domain.Contains(Value::Null()));
}

TEST_F(ReleaseTest, NullAndEmptyStringDistinctAfterRoundTrip) {
  // data.csv is written with an explicit null literal, so a NULL string
  // entry and the empty string stay distinct through a release round
  // trip — including a value that collides with the literal itself.
  Schema s = *Schema::Make({Field::Discrete("tag"),
                            Field::Numerical("x", ValueType::kDouble)});
  TableBuilder b(s);
  b.Row({Value::Null(), Value(1.0)});
  b.Row({Value(""), Value(2.0)});
  b.Row({Value("\\N"), Value(3.0)});  // The literal itself, as a value.
  b.Row({Value("plain"), Value(4.0)});
  Table t = *b.Finish();
  Rng rng(1);
  // p = 0, b = 0: the private relation equals the original, so
  // cell-level expectations are deterministic.
  GrrOutput grr = *ApplyGrr(t, GrrParams::Uniform(0.0, 0.0), GrrOptions{},
                            rng);
  ASSERT_TRUE(WriteRelease(grr, dir_).ok());
  LoadedRelease loaded = *ReadRelease(dir_);
  const Column& tag = loaded.relation.column(0);
  EXPECT_TRUE(tag.ValueAt(0).is_null());
  EXPECT_EQ(tag.ValueAt(1), Value(""));
  EXPECT_EQ(tag.ValueAt(2), Value("\\N"));
  EXPECT_EQ(tag.ValueAt(3), Value("plain"));
  EXPECT_EQ(tag.null_count(), 1u);
}

TEST_F(ReleaseTest, OpenReleaseProducesQueryablePrivateTable) {
  GrrOutput grr = MakeGrr();
  ASSERT_TRUE(WriteRelease(grr, dir_).ok());
  PrivateTable pt = *OpenRelease(dir_);
  EXPECT_EQ(pt.size(), 200u);
  Predicate pred = Predicate::Equals("major", "EECS");
  QueryResult r = *pt.Count(pred);
  EXPECT_DOUBLE_EQ(r.p, 0.2);
  EXPECT_DOUBLE_EQ(r.n, 5.0);  // 4 majors + null.
  // Estimates agree with a PrivateTable built in-process from the same
  // private relation and metadata.
  PrivateTable direct = *PrivateTable::FromPrivateRelation(
      grr.table.Clone(), grr.metadata);
  EXPECT_DOUBLE_EQ(r.estimate, direct.Count(pred)->estimate);
}

TEST_F(ReleaseTest, LoadedTableSupportsCleaning) {
  GrrOutput grr = MakeGrr();
  ASSERT_TRUE(WriteRelease(grr, dir_).ok());
  PrivateTable pt = *OpenRelease(dir_);
  ASSERT_TRUE(pt.Clean(FindReplace::Single("major", Value("Math, Applied"),
                                           Value("Math")))
                  .ok());
  QueryResult r = *pt.Count(Predicate::Equals("major", "Math"));
  EXPECT_DOUBLE_EQ(r.l, 1.0);  // Pure rename: one dirty parent.
  EXPECT_DOUBLE_EQ(r.n, 5.0);
}

TEST_F(ReleaseTest, EpsilonAccountingSurvivesRoundTrip) {
  GrrOutput grr = MakeGrr();
  double eps_before = AccountPrivacy(grr.metadata)->total_epsilon;
  ASSERT_TRUE(WriteRelease(grr, dir_).ok());
  PrivateTable pt = *OpenRelease(dir_);
  EXPECT_NEAR(pt.PrivacyAccounting()->total_epsilon, eps_before, 1e-9);
}

TEST_F(ReleaseTest, ReadMissingDirectoryFails) {
  auto r = ReadRelease(dir_ + "_nonexistent");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST_F(ReleaseTest, MissingDomainFileFails) {
  GrrOutput grr = MakeGrr();
  ASSERT_TRUE(WriteRelease(grr, dir_).ok());
  std::filesystem::remove(dir_ + "/domain_0.csv");
  auto r = ReadRelease(dir_);
  ASSERT_FALSE(r.ok());
  // Listed in the MANIFEST but gone: unrecoverable, and the message
  // names the missing file.
  EXPECT_TRUE(r.status().IsDataLoss()) << r.status().ToString();
  EXPECT_NE(r.status().message().find("domain_0.csv"), std::string::npos);
}

TEST_F(ReleaseTest, ReadIsVerifiedV2ByDefault) {
  ASSERT_TRUE(WriteRelease(MakeGrr(), dir_).ok());
  EXPECT_TRUE(std::filesystem::exists(dir_ + "/MANIFEST"));
  LoadedRelease loaded = *ReadRelease(dir_);
  EXPECT_EQ(loaded.format_version, 2);
  EXPECT_TRUE(loaded.verified);
}

TEST_F(ReleaseTest, V1DirectoryLoadsUnverified) {
  // A v1 release is exactly a v2 one without the MANIFEST.
  GrrOutput grr = MakeGrr();
  ASSERT_TRUE(WriteRelease(grr, dir_).ok());
  std::filesystem::remove(dir_ + "/MANIFEST");
  auto loaded = ReadRelease(dir_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->format_version, 1);
  EXPECT_FALSE(loaded->verified);
  EXPECT_EQ(loaded->relation.num_rows(), grr.table.num_rows());
  // Strict verification refuses what it cannot check — otherwise
  // deleting the MANIFEST would silently downgrade a checksummed
  // release to an unchecked one.
  auto verification = VerifyRelease(dir_);
  ASSERT_FALSE(verification.ok());
  EXPECT_TRUE(verification.status().IsFailedPrecondition())
      << verification.status().ToString();
}

TEST_F(ReleaseTest, BitFlipInDataFileIsDataLossNamingTheFile) {
  ASSERT_TRUE(WriteRelease(MakeGrr(), dir_).ok());
  const std::string path = dir_ + "/data.csv";
  std::string bytes = *io::ReadFileToString(path);
  bytes[bytes.size() / 3] ^= 0x40;
  ASSERT_TRUE(io::WriteFileDurable(path, bytes).ok());
  // Re-writing data.csv alone desyncs it from the MANIFEST checksum.
  auto r = ReadRelease(dir_);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsDataLoss()) << r.status().ToString();
  EXPECT_NE(r.status().message().find("data.csv"), std::string::npos);
  EXPECT_NE(r.status().message().find("checksum mismatch"),
            std::string::npos);
}

TEST_F(ReleaseTest, TruncatedDataFileIsDataLossWithByteCounts) {
  ASSERT_TRUE(WriteRelease(MakeGrr(), dir_).ok());
  const std::string path = dir_ + "/data.csv";
  std::string bytes = *io::ReadFileToString(path);
  const size_t cut = bytes.size() / 2;
  ASSERT_TRUE(io::WriteFileDurable(path, bytes.substr(0, cut)).ok());
  auto r = ReadRelease(dir_);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsDataLoss()) << r.status().ToString();
  EXPECT_NE(r.status().message().find("data.csv"), std::string::npos);
  EXPECT_NE(r.status().message().find(std::to_string(cut)),
            std::string::npos);
}

TEST_F(ReleaseTest, CorruptManifestIsDataLoss) {
  ASSERT_TRUE(WriteRelease(MakeGrr(), dir_).ok());
  const std::string path = dir_ + "/MANIFEST";
  std::string bytes = *io::ReadFileToString(path);
  bytes[bytes.size() / 2] ^= 0x01;
  ASSERT_TRUE(io::WriteFileDurable(path, bytes).ok());
  auto r = ReadRelease(dir_);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsDataLoss()) << r.status().ToString();
  EXPECT_NE(r.status().message().find("MANIFEST"), std::string::npos);
}

TEST_F(ReleaseTest, OverwriteSwapsAtomicallyToTheNewRelease) {
  GrrOutput first = MakeGrr(3);
  GrrOutput second = MakeGrr(7);
  ASSERT_TRUE(WriteRelease(first, dir_).ok());
  ASSERT_TRUE(WriteRelease(second, dir_).ok());
  LoadedRelease loaded = *ReadRelease(dir_);
  EXPECT_TRUE(loaded.verified);
  ASSERT_EQ(loaded.relation.num_rows(), second.table.num_rows());
  bool any_diff = false;
  for (size_t r = 0; r < loaded.relation.num_rows() && !any_diff; ++r) {
    if (!(loaded.relation.column(0).ValueAt(r) ==
          first.table.column(0).ValueAt(r))) {
      any_diff = true;
    }
  }
  for (size_t r = 0; r < loaded.relation.num_rows(); ++r) {
    EXPECT_EQ(loaded.relation.column(0).ValueAt(r),
              second.table.column(0).ValueAt(r));
  }
  EXPECT_TRUE(any_diff) << "seeds 3 and 7 should randomize differently";
  // No staging or backup siblings of THIS release survive a successful
  // swap. Staging dirs are named "<release>.tmp.<suffix>" /
  // "<release>.old.<suffix>", so scope the scan to our own basename —
  // the temp root is shared with concurrently running tests whose
  // in-flight staging dirs are not our business.
  const std::string base = std::filesystem::path(dir_).filename().string();
  size_t entries = 0;
  for (auto it = std::filesystem::directory_iterator(
           std::filesystem::path(dir_).parent_path());
       it != std::filesystem::directory_iterator(); ++it) {
    std::string name = it->path().filename().string();
    if (name.rfind(base, 0) != 0) continue;
    EXPECT_EQ(name.find(".tmp."), std::string::npos) << name;
    EXPECT_EQ(name.find(".old."), std::string::npos) << name;
    ++entries;
  }
  EXPECT_GE(entries, 1u);
}

TEST_F(ReleaseTest, WriteRefusesNonReleaseDirectory) {
  std::filesystem::create_directories(dir_);
  ASSERT_TRUE(io::WriteFileDurable(dir_ + "/precious.txt", "keep me\n").ok());
  Status st = WriteRelease(MakeGrr(), dir_);
  ASSERT_TRUE(st.IsAlreadyExists()) << st.ToString();
  // The directory and its contents are untouched.
  auto kept = io::ReadFileToString(dir_ + "/precious.txt");
  ASSERT_TRUE(kept.ok());
  EXPECT_EQ(kept.ValueOrDie(), "keep me\n");
  EXPECT_FALSE(std::filesystem::exists(dir_ + "/MANIFEST"));
}

TEST_F(ReleaseTest, WriteRefusesPlainFileTarget) {
  ASSERT_TRUE(io::WriteFileDurable(dir_, "not a directory\n").ok());
  Status st = WriteRelease(MakeGrr(), dir_);
  EXPECT_TRUE(st.IsAlreadyExists()) << st.ToString();
  auto kept = io::ReadFileToString(dir_);
  ASSERT_TRUE(kept.ok());
  EXPECT_EQ(kept.ValueOrDie(), "not a directory\n");
}

TEST_F(ReleaseTest, WriteReplacesEmptyDirectory) {
  std::filesystem::create_directories(dir_);
  GrrOutput grr = MakeGrr();
  ASSERT_TRUE(WriteRelease(grr, dir_).ok());
  LoadedRelease loaded = *ReadRelease(dir_);
  EXPECT_EQ(loaded.relation.num_rows(), grr.table.num_rows());
}

TEST_F(ReleaseTest, V1ParseErrorsCarryFileAndLineNumber) {
  // Build a v1 release (no MANIFEST, so the CSV parse is the first line
  // of defense) and plant a non-numeric cell in the numeric column.
  ASSERT_TRUE(WriteRelease(MakeGrr(), dir_).ok());
  std::filesystem::remove(dir_ + "/MANIFEST");
  const std::string path = dir_ + "/data.csv";
  std::string bytes = *io::ReadFileToString(path);
  // Row 3 of the data (line 4: one header line + 3 data lines).
  size_t pos = 0;
  for (int newlines = 0; newlines < 3; ++newlines) {
    pos = bytes.find('\n', pos) + 1;
  }
  size_t eol = bytes.find('\n', pos);
  bytes.replace(pos, eol - pos, "EECS,1,not-a-number");
  ASSERT_TRUE(io::WriteFileDurable(path, bytes).ok());
  auto r = ReadRelease(dir_);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("data.csv:4"), std::string::npos)
      << r.status().ToString();
  EXPECT_NE(r.status().message().find("score"), std::string::npos);
}

TEST_F(ReleaseTest, V1TruncatedFinalRecordIsDataLoss) {
  ASSERT_TRUE(WriteRelease(MakeGrr(), dir_).ok());
  std::filesystem::remove(dir_ + "/MANIFEST");
  const std::string path = dir_ + "/data.csv";
  std::string bytes = *io::ReadFileToString(path);
  // Drop the final newline and half the last record — a classic torn
  // tail that still parses as a "complete" record without the
  // trailing-newline requirement.
  ASSERT_TRUE(
      io::WriteFileDurable(path, bytes.substr(0, bytes.size() - 4)).ok());
  auto r = ReadRelease(dir_);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsDataLoss()) << r.status().ToString();
  EXPECT_NE(r.status().message().find("truncated"), std::string::npos);
}

TEST_F(ReleaseTest, VerifyReleaseReportsPerFileResults) {
  ASSERT_TRUE(WriteRelease(MakeGrr(), dir_).ok());
  auto ok_verification = VerifyRelease(dir_);
  ASSERT_TRUE(ok_verification.ok()) << ok_verification.status().ToString();
  EXPECT_TRUE(ok_verification->status.ok());
  EXPECT_EQ(ok_verification->rows, 200u);
  ASSERT_GE(ok_verification->files.size(), 3u);  // data, meta, domains
  for (const ReleaseFileCheck& check : ok_verification->files) {
    EXPECT_TRUE(check.status.ok()) << check.file;
    EXPECT_GT(check.bytes, 0u) << check.file;
  }

  // Corrupt one domain file: its check fails, the others stay OK.
  const std::string path = dir_ + "/domain_0.csv";
  std::string bytes = *io::ReadFileToString(path);
  bytes[0] ^= 0x02;
  ASSERT_TRUE(io::WriteFileDurable(path, bytes).ok());
  auto verification = VerifyRelease(dir_);
  ASSERT_TRUE(verification.ok()) << verification.status().ToString();
  EXPECT_TRUE(verification->status.IsDataLoss());
  bool found = false;
  for (const ReleaseFileCheck& check : verification->files) {
    if (check.file == "domain_0.csv") {
      found = true;
      EXPECT_TRUE(check.status.IsDataLoss());
    } else {
      EXPECT_TRUE(check.status.ok()) << check.file;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(ReleaseTest, WriteRejectsIncompleteMetadata) {
  GrrOutput grr = MakeGrr();
  grr.metadata.discrete.erase("major");
  Status st = WriteRelease(grr, dir_);
  EXPECT_TRUE(st.IsInvalidArgument());
}

TEST_F(ReleaseTest, FromPrivateRelationRejectsUncoveredAttribute) {
  GrrOutput grr = MakeGrr();
  PrivateRelationMetadata meta = grr.metadata;
  meta.numeric.erase("score");
  auto r = PrivateTable::FromPrivateRelation(grr.table.Clone(), meta);
  EXPECT_FALSE(r.ok());
}

// --- Dictionary files -----------------------------------------------------

/// Rewrites one payload file and patches the MANIFEST (file line and
/// self-checksum) so the release stays checksum-consistent — simulating
/// a writer that produced `content` for `name`. Pass an empty optional
/// to delete the file and drop its manifest line entirely (simulating a
/// release written before dictionary files existed).
void RewriteReleaseFile(const std::string& dir, const std::string& name,
                        const std::optional<std::string>& content) {
  if (content.has_value()) {
    ASSERT_TRUE(io::WriteFileDurable(dir + "/" + name, *content).ok());
  } else {
    std::filesystem::remove(dir + "/" + name);
  }
  std::string manifest = *io::ReadFileToString(dir + "/MANIFEST");
  size_t trailer = manifest.rfind("\nmanifest_crc: ");
  ASSERT_NE(trailer, std::string::npos);
  std::string body = manifest.substr(0, trailer + 1);
  std::string out;
  size_t pos = 0;
  while (pos < body.size()) {
    size_t eol = body.find('\n', pos);
    ASSERT_NE(eol, std::string::npos);
    std::string line = body.substr(pos, eol - pos);
    pos = eol + 1;
    const bool is_target = line.rfind("file: ", 0) == 0 &&
                           line.size() > name.size() &&
                           line.compare(line.size() - name.size() - 1,
                                        name.size() + 1, " " + name) == 0;
    if (!is_target) {
      out += line + "\n";
    } else if (content.has_value()) {
      out += "file: " + io::Crc32cToHex(io::Crc32c(*content)) + " " +
             std::to_string(content->size()) + " " + name + "\n";
    }  // else: drop the line.
  }
  out += "manifest_crc: " + io::Crc32cToHex(io::Crc32c(out)) + "\n";
  ASSERT_TRUE(io::WriteFileDurable(dir + "/MANIFEST", out).ok());
}

TEST_F(ReleaseTest, DictionaryFilesAreWrittenAndManifestListed) {
  GrrOutput grr = MakeGrr();
  ASSERT_TRUE(WriteRelease(grr, dir_).ok());
  // "major" is the only string-typed discrete field → exactly dict_0.
  EXPECT_TRUE(std::filesystem::exists(dir_ + "/dict_0.csv"));
  EXPECT_FALSE(std::filesystem::exists(dir_ + "/dict_1.csv"));
  std::string manifest = *io::ReadFileToString(dir_ + "/MANIFEST");
  EXPECT_NE(manifest.find(" dict_0.csv\n"), std::string::npos);
}

TEST_F(ReleaseTest, RoundTripRestoresWriterDictionaryCodeOrder) {
  GrrOutput grr = MakeGrr();
  ASSERT_TRUE(WriteRelease(grr, dir_).ok());
  LoadedRelease loaded = *ReadRelease(dir_);
  const Column& written = grr.table.column(0);
  const Column& read = loaded.relation.column(0);
  // Not just value-equal: the dictionary (including interned-but-unused
  // entries) and every per-row code must match the writer's exactly.
  ASSERT_EQ(read.dictionary().size(), written.dictionary().size());
  for (uint32_t c = 0; c < written.dictionary().size(); ++c) {
    EXPECT_EQ(read.dictionary().At(c), written.dictionary().At(c))
        << "code " << c;
  }
  ASSERT_EQ(read.codes().size(), written.codes().size());
  for (size_t r = 0; r < written.codes().size(); ++r) {
    EXPECT_EQ(read.CodeAt(r), written.CodeAt(r)) << "row " << r;
  }
}

TEST_F(ReleaseTest, ReleaseWithoutDictionaryFilesStillLoads) {
  // A v2 release written before dictionary files existed: same layout,
  // no dict_<i>.csv entries. The reader keeps its parse-order
  // dictionary — values (not codes) are the compatibility contract.
  GrrOutput grr = MakeGrr();
  ASSERT_TRUE(WriteRelease(grr, dir_).ok());
  RewriteReleaseFile(dir_, "dict_0.csv", std::nullopt);
  auto loaded = ReadRelease(dir_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->verified);
  for (size_t r = 0; r < grr.table.num_rows(); ++r) {
    EXPECT_EQ(loaded->relation.column(0).ValueAt(r),
              grr.table.column(0).ValueAt(r))
        << "row " << r;
  }
}

TEST_F(ReleaseTest, DictionaryMissingUsedValueIsDataLoss) {
  GrrOutput grr = MakeGrr();
  ASSERT_TRUE(WriteRelease(grr, dir_).ok());
  // A consistent-looking dictionary that does not cover the column's
  // values: checksums pass, the semantic rebind must fail.
  RewriteReleaseFile(dir_, "dict_0.csv",
                     std::string("major\nnot_a_real_major\n"));
  auto r = ReadRelease(dir_);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsDataLoss()) << r.status().ToString();
  EXPECT_NE(r.status().message().find("dict_0.csv"), std::string::npos);
}

TEST_F(ReleaseTest, NullEntryInDictionaryFileIsDataLoss) {
  GrrOutput grr = MakeGrr();
  ASSERT_TRUE(WriteRelease(grr, dir_).ok());
  RewriteReleaseFile(dir_, "dict_0.csv", std::string("major\n\\N\n"));
  auto r = ReadRelease(dir_);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsDataLoss()) << r.status().ToString();
  EXPECT_NE(r.status().message().find("NULL"), std::string::npos);
}

TEST_F(ReleaseTest, BitFlipInDictionaryFileIsDataLossNamingTheFile) {
  ASSERT_TRUE(WriteRelease(MakeGrr(), dir_).ok());
  const std::string path = dir_ + "/dict_0.csv";
  std::string bytes = *io::ReadFileToString(path);
  bytes[bytes.size() / 2] ^= 0x20;
  ASSERT_TRUE(io::WriteFileDurable(path, bytes).ok());
  auto r = ReadRelease(dir_);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsDataLoss()) << r.status().ToString();
  EXPECT_NE(r.status().message().find("dict_0.csv"), std::string::npos);
}

TEST_F(ReleaseTest, NullLiteralRowsRoundTripThroughDictionary) {
  // MakeGrr's relation mixes NULL rows (written as \N) with quoted and
  // empty-adjacent strings; after the round trip NULL and "" must stay
  // distinct and the null count exact.
  GrrOutput grr = MakeGrr();
  ASSERT_TRUE(WriteRelease(grr, dir_).ok());
  LoadedRelease loaded = *ReadRelease(dir_);
  EXPECT_EQ(loaded.relation.column(0).null_count(),
            grr.table.column(0).null_count());
  for (size_t r = 0; r < grr.table.num_rows(); ++r) {
    EXPECT_EQ(loaded.relation.column(0).IsNull(r),
              grr.table.column(0).IsNull(r))
        << "row " << r;
  }
}

// --- Mechanism identity (MANIFEST `mechanism:` line) ----------------------

GrrOutput MakeWithMechanism(const MechanismSpec& mechanism, double param,
                            uint64_t seed = 3) {
  Schema s = *Schema::Make(
      {Field::Discrete("major"),
       Field{"section", ValueType::kInt64, AttributeKind::kDiscrete},
       Field::Numerical("score", ValueType::kDouble)});
  TableBuilder b(s);
  const char* majors[] = {"EECS", "Math, Applied", "Bio\"x\"", "Physics"};
  for (int i = 0; i < 200; ++i) {
    Value major = (i % 17 == 0) ? Value::Null() : Value(majors[i % 4]);
    b.Row({major, Value(i % 5), Value(static_cast<double>(i % 10))});
  }
  Table t = *b.Finish();
  Rng rng(seed);
  GrrOptions options;
  options.mechanism = mechanism;
  return *ApplyGrr(t, GrrParams::Uniform(param, 1.5), options, rng);
}

/// Replaces the MANIFEST's `mechanism:` line with `line` (or drops it
/// when nullopt, simulating a release written before the mechanism zoo)
/// and recomputes the self-checksum so only the mechanism entry is under
/// test, not the CRC machinery.
void PatchManifestMechanism(const std::string& dir,
                            const std::optional<std::string>& line) {
  std::string manifest = *io::ReadFileToString(dir + "/MANIFEST");
  size_t trailer = manifest.rfind("\nmanifest_crc: ");
  ASSERT_NE(trailer, std::string::npos);
  std::string body = manifest.substr(0, trailer + 1);
  std::string out;
  size_t pos = 0;
  bool replaced = false;
  while (pos < body.size()) {
    size_t eol = body.find('\n', pos);
    ASSERT_NE(eol, std::string::npos);
    std::string l = body.substr(pos, eol - pos);
    pos = eol + 1;
    if (l.rfind("mechanism: ", 0) == 0) {
      replaced = true;
      if (line.has_value()) out += *line + "\n";
    } else {
      out += l + "\n";
    }
  }
  ASSERT_TRUE(replaced) << "MANIFEST carries no mechanism line";
  out += "manifest_crc: " + io::Crc32cToHex(io::Crc32c(out)) + "\n";
  ASSERT_TRUE(io::WriteFileDurable(dir + "/MANIFEST", out).ok());
}

TEST_F(ReleaseTest, ManifestRecordsMechanismIdentity) {
  ASSERT_TRUE(WriteRelease(MakeGrr(), dir_).ok());
  std::string manifest = *io::ReadFileToString(dir_ + "/MANIFEST");
  EXPECT_NE(manifest.find("mechanism: grr\n"), std::string::npos);
  LoadedRelease loaded = *ReadRelease(dir_);
  EXPECT_EQ(loaded.metadata.mechanism_spec.name, "grr");
  EXPECT_TRUE(loaded.metadata.mechanism_spec.params.empty());
}

TEST_F(ReleaseTest, RoundTripsHlmMechanismIdentity) {
  GrrOutput grr = MakeWithMechanism(MechanismSpec{"hlm", {}}, 1.2);
  ASSERT_TRUE(WriteRelease(grr, dir_).ok());
  LoadedRelease loaded = *ReadRelease(dir_);
  EXPECT_EQ(loaded.metadata.mechanism_spec.name, "hlm");
  for (const auto& [name, meta] : loaded.metadata.discrete) {
    MechanismPtr m = *MechanismFor(meta);
    EXPECT_STREQ(m->name(), "hlm") << name;
    EXPECT_DOUBLE_EQ(m->param(), 1.2) << name;
  }
  // The loaded release accounts and estimates exactly like the writer's
  // in-process metadata — the wrong-estimator failure mode the MANIFEST
  // line exists to prevent.
  EXPECT_NEAR(AccountPrivacy(loaded.metadata)->total_epsilon,
              AccountPrivacy(grr.metadata)->total_epsilon, 1e-9);
  PrivateTable pt = *OpenRelease(dir_);
  PrivateTable direct = *PrivateTable::FromPrivateRelation(
      grr.table.Clone(), grr.metadata);
  Predicate pred = Predicate::Equals("major", "EECS");
  EXPECT_DOUBLE_EQ(pt.Count(pred)->estimate, direct.Count(pred)->estimate);
}

TEST_F(ReleaseTest, RoundTripsSamplingMechanismIdentityWithBeta) {
  GrrOutput grr = MakeWithMechanism(
      MechanismSpec{"sampling", {{"beta", 0.5}}}, 0.25);
  ASSERT_TRUE(WriteRelease(grr, dir_).ok());
  std::string manifest = *io::ReadFileToString(dir_ + "/MANIFEST");
  EXPECT_NE(manifest.find("mechanism: sampling beta=0.5\n"),
            std::string::npos);
  LoadedRelease loaded = *ReadRelease(dir_);
  EXPECT_EQ(loaded.metadata.mechanism_spec.name, "sampling");
  ASSERT_EQ(loaded.metadata.mechanism_spec.params.count("beta"), 1u);
  EXPECT_DOUBLE_EQ(loaded.metadata.mechanism_spec.params.at("beta"), 0.5);
  for (const auto& [name, meta] : loaded.metadata.discrete) {
    MechanismPtr m = *MechanismFor(meta);
    EXPECT_STREQ(m->name(), "sampling") << name;
    EXPECT_DOUBLE_EQ(m->param(), 0.25) << name;
  }
}

TEST_F(ReleaseTest, UnknownMechanismNameInManifestIsFailedPrecondition) {
  ASSERT_TRUE(WriteRelease(MakeGrr(), dir_).ok());
  PatchManifestMechanism(dir_, std::string("mechanism: staircase"));
  auto r = ReadRelease(dir_);
  ASSERT_FALSE(r.ok());
  // A release written by a newer build: the data is intact, this build
  // just cannot decode it — FailedPrecondition, not DataLoss.
  EXPECT_TRUE(r.status().IsFailedPrecondition()) << r.status().ToString();
  EXPECT_NE(r.status().message().find("staircase"), std::string::npos);
}

TEST_F(ReleaseTest, MissingMechanismLineLoadsAsLegacyGrr) {
  // A v2 release written before the mechanism zoo: no mechanism line at
  // all. The reader defaults to the paper's GRR explicitly.
  GrrOutput grr = MakeGrr();
  ASSERT_TRUE(WriteRelease(grr, dir_).ok());
  PatchManifestMechanism(dir_, std::nullopt);
  auto loaded = ReadRelease(dir_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->verified);
  EXPECT_EQ(loaded->metadata.mechanism_spec.name, "grr");
  for (const auto& [name, meta] : loaded->metadata.discrete) {
    EXPECT_STREQ((*MechanismFor(meta))->name(), "grr") << name;
  }
}

TEST_F(ReleaseTest, CorruptMechanismParameterBlockIsDataLoss) {
  ASSERT_TRUE(WriteRelease(MakeGrr(), dir_).ok());
  PatchManifestMechanism(dir_, std::string("mechanism: sampling beta=zebra"));
  auto r = ReadRelease(dir_);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsDataLoss()) << r.status().ToString();
  EXPECT_NE(r.status().message().find("MANIFEST"), std::string::npos)
      << r.status().ToString();
}

TEST_F(ReleaseTest, KnownMechanismWithInfeasibleParametersIsDataLoss) {
  ASSERT_TRUE(WriteRelease(MakeGrr(), dir_).ok());
  // Known family, parameter block this build can parse but not satisfy
  // (sampling without its required beta): the entry is damaged, not
  // from-the-future.
  PatchManifestMechanism(dir_, std::string("mechanism: sampling"));
  auto r = ReadRelease(dir_);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsDataLoss()) << r.status().ToString();
}

TEST_F(ReleaseTest, V1ReleaseLoadsWithLegacyGrrDefault) {
  GrrOutput grr = MakeGrr();
  ASSERT_TRUE(WriteRelease(grr, dir_).ok());
  std::filesystem::remove(dir_ + "/MANIFEST");
  auto loaded = ReadRelease(dir_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->format_version, 1);
  EXPECT_EQ(loaded->metadata.mechanism_spec.name, "grr");
}

TEST_F(ReleaseTest, EndToEndProviderAnalystSeparation) {
  // Provider process: generate, privatize, write, forget.
  SyntheticOptions options;
  options.num_rows = 600;
  Rng data_rng(9);
  Table original = *GenerateSynthetic(options, data_rng);
  Predicate pred = Predicate::In(
      "category", {SyntheticCategory(0), SyntheticCategory(1)});
  double truth = *ExecuteAggregate(original, AggregateQuery::Count(pred));
  {
    Rng rng(10);
    GrrOutput grr = *ApplyGrr(original, GrrParams::Uniform(0.15, 5.0),
                              GrrOptions{}, rng);
    ASSERT_TRUE(WriteRelease(grr, dir_).ok());
  }
  // Analyst process: open the release cold and query.
  PrivateTable pt = *OpenRelease(dir_);
  QueryResult r = *pt.Count(pred);
  EXPECT_NEAR(r.estimate, truth, 0.35 * truth);
  EXPECT_TRUE(r.ci.Contains(r.estimate));
}

/// Rewrites the MANIFEST body line-by-line through `edit` (return the
/// replacement line, or nullopt to drop it) and recomputes the
/// self-checksum, so schema-section tests tamper with one declaration
/// without tripping the CRC machinery.
void PatchManifestLines(
    const std::string& dir,
    const std::function<std::optional<std::string>(const std::string&)>&
        edit) {
  std::string manifest = *io::ReadFileToString(dir + "/MANIFEST");
  size_t trailer = manifest.rfind("\nmanifest_crc: ");
  ASSERT_NE(trailer, std::string::npos);
  std::string body = manifest.substr(0, trailer + 1);
  std::string out;
  size_t pos = 0;
  while (pos < body.size()) {
    size_t eol = body.find('\n', pos);
    ASSERT_NE(eol, std::string::npos);
    std::optional<std::string> line = edit(body.substr(pos, eol - pos));
    pos = eol + 1;
    if (line.has_value()) out += *line + "\n";
  }
  out += "manifest_crc: " + io::Crc32cToHex(io::Crc32c(out)) + "\n";
  ASSERT_TRUE(io::WriteFileDurable(dir + "/MANIFEST", out).ok());
}

TEST_F(ReleaseTest, ManifestCarriesRelationNameAndSchema) {
  GrrOutput grr = MakeGrr();
  ASSERT_TRUE(WriteRelease(grr, dir_).ok());
  std::string manifest = *io::ReadFileToString(dir_ + "/MANIFEST");
  EXPECT_NE(manifest.find("relation: r\n"), std::string::npos);
  EXPECT_NE(manifest.find("column: discrete string major\n"),
            std::string::npos);
  EXPECT_NE(manifest.find("column: discrete int64 section\n"),
            std::string::npos);
  EXPECT_NE(manifest.find("column: numeric double score\n"),
            std::string::npos);
  LoadedRelease loaded = *ReadRelease(dir_);
  EXPECT_EQ(loaded.metadata.relation_name, "r");
}

TEST_F(ReleaseTest, CustomRelationNameRoundTripsAndGatesSql) {
  GrrOutput grr = MakeGrr();
  grr.metadata.relation_name = "students";
  ASSERT_TRUE(WriteRelease(grr, dir_).ok());
  PrivateTable table = *OpenRelease(dir_);
  EXPECT_EQ(table.metadata().relation_name, "students");
  // FROM must name the released relation; anything else is a typed
  // NotFound naming both the asked-for and the actual relation.
  auto ok = ExecuteSqlQuery(table, "SELECT COUNT(*) FROM students");
  EXPECT_TRUE(ok.ok()) << ok.status().ToString();
  auto bad = ExecuteSqlQuery(table, "SELECT COUNT(*) FROM r");
  ASSERT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsNotFound()) << bad.status().ToString();
  EXPECT_NE(bad.status().message().find("unknown relation 'r'"),
            std::string::npos)
      << bad.status().message();
  EXPECT_NE(bad.status().message().find("'students'"), std::string::npos);
}

TEST_F(ReleaseTest, DefaultReleaseRejectsUnknownFromRelation) {
  GrrOutput grr = MakeGrr();
  ASSERT_TRUE(WriteRelease(grr, dir_).ok());
  PrivateTable table = *OpenRelease(dir_);
  auto bad = ExecuteSqlQuery(table, "SELECT COUNT(*) FROM nosuch");
  ASSERT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsNotFound()) << bad.status().ToString();
  EXPECT_NE(bad.status().message().find("unknown relation 'nosuch'"),
            std::string::npos);
  EXPECT_NE(bad.status().message().find("relation 'r'"), std::string::npos);
}

TEST_F(ReleaseTest, ManifestColumnTypeMismatchIsFailedPrecondition) {
  GrrOutput grr = MakeGrr();
  ASSERT_TRUE(WriteRelease(grr, dir_).ok());
  PatchManifestLines(dir_, [](const std::string& line) {
    if (line == "column: discrete string major") {
      return std::optional<std::string>("column: discrete int64 major");
    }
    return std::optional<std::string>(line);
  });
  auto read = ReadRelease(dir_);
  ASSERT_FALSE(read.ok());
  EXPECT_TRUE(read.status().IsFailedPrecondition())
      << read.status().ToString();
  EXPECT_NE(read.status().message().find("'major'"), std::string::npos)
      << read.status().message();
  EXPECT_NE(read.status().message().find("meta.csv"), std::string::npos);
}

TEST_F(ReleaseTest, ManifestColumnNameMismatchIsFailedPrecondition) {
  GrrOutput grr = MakeGrr();
  ASSERT_TRUE(WriteRelease(grr, dir_).ok());
  PatchManifestLines(dir_, [](const std::string& line) {
    if (line == "column: numeric double score") {
      return std::optional<std::string>("column: numeric double points");
    }
    return std::optional<std::string>(line);
  });
  auto read = ReadRelease(dir_);
  ASSERT_FALSE(read.ok());
  EXPECT_TRUE(read.status().IsFailedPrecondition());
  EXPECT_NE(read.status().message().find("'points'"), std::string::npos)
      << read.status().message();
}

TEST_F(ReleaseTest, ManifestColumnCountMismatchIsFailedPrecondition) {
  GrrOutput grr = MakeGrr();
  ASSERT_TRUE(WriteRelease(grr, dir_).ok());
  PatchManifestLines(dir_, [](const std::string& line) {
    if (line == "column: numeric double score") return std::optional<std::string>();
    return std::optional<std::string>(line);
  });
  auto read = ReadRelease(dir_);
  ASSERT_FALSE(read.ok());
  EXPECT_TRUE(read.status().IsFailedPrecondition());
  EXPECT_NE(read.status().message().find("declares 2 columns"),
            std::string::npos)
      << read.status().message();
}

TEST_F(ReleaseTest, LineBreakingColumnNamesAreEscapedInTheManifest) {
  // meta.csv CSV-quotes hostile names; the line-oriented MANIFEST
  // schema section must escape them instead of splitting the line.
  Schema s = *Schema::Make({Field::Discrete("new\nline"),
                            Field::Numerical("back\\slash",
                                             ValueType::kDouble)});
  TableBuilder b(s);
  for (int i = 0; i < 50; ++i) {
    b.Row({Value("v" + std::to_string(i % 3)),
           Value(static_cast<double>(i % 7))});
  }
  Table t = *b.Finish();
  Rng rng(5);
  GrrOutput grr = *ApplyGrr(t, GrrParams::Uniform(0.2, 1.5), GrrOptions{},
                            rng);
  ASSERT_TRUE(WriteRelease(grr, dir_).ok());
  std::string manifest = *io::ReadFileToString(dir_ + "/MANIFEST");
  EXPECT_NE(manifest.find("column: discrete string new\\nline\n"),
            std::string::npos)
      << manifest;
  EXPECT_NE(manifest.find("column: numeric double back\\\\slash\n"),
            std::string::npos);
  LoadedRelease loaded = *ReadRelease(dir_);
  EXPECT_EQ(loaded.relation.schema().field(0).name, "new\nline");
  EXPECT_EQ(loaded.relation.schema().field(1).name, "back\\slash");
}

TEST_F(ReleaseTest, ManifestWithoutSchemaSectionLoadsAsLegacy) {
  GrrOutput grr = MakeGrr();
  ASSERT_TRUE(WriteRelease(grr, dir_).ok());
  // A release written before the schema section: no relation/column
  // lines at all. It loads with the default relation name and no
  // schema cross-check.
  PatchManifestLines(dir_, [](const std::string& line) {
    if (line.rfind("relation: ", 0) == 0 ||
        line.rfind("column: ", 0) == 0) {
      return std::optional<std::string>();
    }
    return std::optional<std::string>(line);
  });
  auto read = ReadRelease(dir_);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read->metadata.relation_name, "r");
}

}  // namespace
}  // namespace privateclean
