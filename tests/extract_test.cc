#include "cleaning/extract.h"

#include <gtest/gtest.h>

#include "table/table_builder.h"

namespace privateclean {
namespace {

Schema TestSchema() {
  return *Schema::Make({Field::Discrete("major"),
                        Field::Discrete("campus"),
                        Field::Numerical("score", ValueType::kDouble)});
}

Table TestTable() {
  TableBuilder b(TestSchema());
  b.Row({Value("EECS"), Value("North"), Value(4.0)})
      .Row({Value("Math"), Value("South"), Value(3.0)})
      .Row({Value("EECS"), Value("South"), Value(2.0)});
  return *b.Finish();
}

TEST(ExtractTest, CreatesNewDiscreteAttribute) {
  Table t = TestTable();
  ExtractAttribute extract("dept_code", {"major"},
                           [](const std::vector<Value>& tuple) {
                             return Value(tuple[0].AsString().substr(0, 2));
                           });
  ASSERT_TRUE(extract.Apply(&t).ok());
  ASSERT_TRUE(t.schema().HasField("dept_code"));
  EXPECT_EQ(t.schema().FieldByName("dept_code")->kind,
            AttributeKind::kDiscrete);
  EXPECT_EQ(*t.GetValue(0, "dept_code"), Value("EE"));
  EXPECT_EQ(*t.GetValue(1, "dept_code"), Value("Ma"));
}

TEST(ExtractTest, MultiAttributeProjection) {
  Table t = TestTable();
  ExtractAttribute extract(
      "major_campus", {"major", "campus"},
      [](const std::vector<Value>& tuple) {
        return Value(tuple[0].AsString() + "/" + tuple[1].AsString());
      });
  ASSERT_TRUE(extract.Apply(&t).ok());
  EXPECT_EQ(*t.GetValue(2, "major_campus"), Value("EECS/South"));
}

TEST(ExtractTest, UdfCalledOncePerDistinctTuple) {
  Table t = TestTable();
  int calls = 0;
  ExtractAttribute extract("x", {"major"},
                           [&calls](const std::vector<Value>& tuple) {
                             ++calls;
                             return tuple[0];
                           });
  ASSERT_TRUE(extract.Apply(&t).ok());
  EXPECT_EQ(calls, 2);  // EECS, Math.
}

TEST(ExtractTest, Int64OutputType) {
  Table t = TestTable();
  ExtractAttribute extract(
      "name_len", {"major"},
      [](const std::vector<Value>& tuple) {
        return Value(static_cast<int64_t>(tuple[0].AsString().size()));
      },
      ValueType::kInt64);
  ASSERT_TRUE(extract.Apply(&t).ok());
  EXPECT_EQ(*t.GetValue(0, "name_len"), Value(4));
}

TEST(ExtractTest, DefaultAnchorIsFirstProjectionAttribute) {
  ExtractAttribute extract("x", {"campus", "major"},
                           [](const std::vector<Value>& tuple) {
                             return tuple[0];
                           });
  auto info = extract.extracted_attribute();
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->name, "x");
  EXPECT_EQ(info->provenance_anchor, "campus");
}

TEST(ExtractTest, ExplicitAnchor) {
  ExtractAttribute extract(
      "x", {"campus", "major"},
      [](const std::vector<Value>& tuple) { return tuple[0]; },
      ValueType::kString, "major");
  EXPECT_EQ(extract.extracted_attribute()->provenance_anchor, "major");
}

TEST(ExtractTest, RejectsExistingName) {
  Table t = TestTable();
  ExtractAttribute extract("major", {"campus"},
                           [](const std::vector<Value>& tuple) {
                             return tuple[0];
                           });
  EXPECT_TRUE(extract.Apply(&t).IsAlreadyExists());
}

TEST(ExtractTest, RejectsEmptyProjection) {
  Table t = TestTable();
  ExtractAttribute extract("x", {},
                           [](const std::vector<Value>& tuple) {
                             return tuple.empty() ? Value("e") : tuple[0];
                           });
  EXPECT_TRUE(extract.Apply(&t).IsInvalidArgument());
}

TEST(ExtractTest, RejectsNumericalProjection) {
  Table t = TestTable();
  ExtractAttribute extract("x", {"score"},
                           [](const std::vector<Value>& tuple) {
                             return tuple[0];
                           });
  EXPECT_TRUE(extract.Apply(&t).IsInvalidArgument());
}

TEST(ExtractTest, KindIsExtract) {
  ExtractAttribute extract("x", {"major"},
                           [](const std::vector<Value>& tuple) {
                             return tuple[0];
                           });
  EXPECT_EQ(extract.kind(), CleanerKind::kExtract);
  EXPECT_EQ(extract.name(), "extract(x)");
}

}  // namespace
}  // namespace privateclean
