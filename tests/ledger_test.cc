// BudgetLedger functional suite: WAL round-trips, overdraft rejection,
// torn-tail repair vs mid-log corruption, checkpoint compaction, and
// thread-count-independent concurrent charging.

#include "privacy/ledger.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/io_util.h"

namespace privateclean {
namespace {

namespace fs = std::filesystem;

class LedgerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = ::testing::TempDir() + "ledger_test_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name();
    fs::remove_all(base_);
    fs::create_directories(base_);
  }
  void TearDown() override { fs::remove_all(base_); }

  std::string Dir(const std::string& name) { return base_ + "/" + name; }

  std::string base_;
};

TEST_F(LedgerTest, GrantChargeSurviveReopen) {
  const std::string dir = Dir("roundtrip");
  {
    auto ledger = BudgetLedger::Open(dir);
    ASSERT_TRUE(ledger.ok()) << ledger.status().ToString();
    ASSERT_TRUE(ledger->Grant("alice", 2.5).ok());
    ASSERT_TRUE(ledger->Relax("alice", 0.5).ok());
    ASSERT_TRUE(ledger->Charge("alice", 0.75).ok());
    ASSERT_TRUE(ledger->Grant("bob budget", 1.0).ok());  // spaces survive
    EXPECT_EQ(ledger->last_seq(), 4u);
  }
  auto reopened = BudgetLedger::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  auto alice = reopened->Budget("alice");
  ASSERT_TRUE(alice.ok());
  EXPECT_EQ(alice->granted, 3.0);  // bit-exact: ε rides as IEEE-754 bits
  EXPECT_EQ(alice->spent, 0.75);
  auto bob = reopened->Budget("bob budget");
  ASSERT_TRUE(bob.ok());
  EXPECT_EQ(bob->granted, 1.0);
  EXPECT_EQ(reopened->last_seq(), 4u);
}

TEST_F(LedgerTest, OverdraftIsTypedResourceExhaustedAndChargesNothing) {
  const std::string dir = Dir("overdraft");
  auto ledger = BudgetLedger::Open(dir);
  ASSERT_TRUE(ledger.ok());
  ASSERT_TRUE(ledger->Grant("alice", 1.0).ok());
  ASSERT_TRUE(ledger->Charge("alice", 0.75).ok());
  Status st = ledger->Charge("alice", 0.5);
  ASSERT_TRUE(st.IsResourceExhausted()) << st.ToString();
  // Names the tenant, spent, and remaining.
  EXPECT_NE(st.message().find("alice"), std::string::npos) << st.message();
  EXPECT_NE(st.message().find("spent ε=0.75"), std::string::npos)
      << st.message();
  EXPECT_NE(st.message().find("remaining ε=0.25"), std::string::npos)
      << st.message();
  // The rejected charge left no trace, in memory or on disk.
  EXPECT_EQ(ledger->Budget("alice")->spent, 0.75);
  auto reopened = BudgetLedger::Open(dir);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened->Budget("alice")->spent, 0.75);
  // A never-granted tenant has zero allowance.
  EXPECT_TRUE(ledger->Charge("nobody", 0.1).IsResourceExhausted());
}

TEST_F(LedgerTest, RelaxTopsUpAnExhaustedTenant) {
  const std::string dir = Dir("relax");
  auto ledger = BudgetLedger::Open(dir);
  ASSERT_TRUE(ledger.ok());
  ASSERT_TRUE(ledger->Grant("t", 1.0).ok());
  ASSERT_TRUE(ledger->Charge("t", 1.0).ok());
  ASSERT_TRUE(ledger->Charge("t", 0.25).IsResourceExhausted());
  ASSERT_TRUE(ledger->Relax("t", 0.25).ok());  // gradual release
  EXPECT_TRUE(ledger->Charge("t", 0.25).ok());
  EXPECT_EQ(ledger->Budget("t")->remaining(), 0.0);
}

TEST_F(LedgerTest, ValidationRejectsBadTenantsAndEpsilons) {
  auto ledger = BudgetLedger::Open(Dir("validate"));
  ASSERT_TRUE(ledger.ok());
  EXPECT_TRUE(ledger->Grant("", 1.0).IsInvalidArgument());
  EXPECT_TRUE(ledger->Grant("a\nb", 1.0).IsInvalidArgument());
  EXPECT_TRUE(ledger->Grant("t", 0.0).IsInvalidArgument());
  EXPECT_TRUE(ledger->Grant("t", -1.0).IsInvalidArgument());
  EXPECT_TRUE(ledger->Charge("t", std::nan("")).IsInvalidArgument());
  EXPECT_TRUE(ledger->Budget("unknown").status().IsNotFound());
  EXPECT_EQ(ledger->last_seq(), 0u);  // nothing was admitted to the WAL
}

TEST_F(LedgerTest, TornTailIsTruncatedAndRepairIsIdempotent) {
  const std::string dir = Dir("torn");
  {
    auto ledger = BudgetLedger::Open(dir);
    ASSERT_TRUE(ledger.ok());
    ASSERT_TRUE(ledger->Grant("t", 4.0).ok());
    ASSERT_TRUE(ledger->Charge("t", 0.5).ok());
  }
  // Tear the WAL mid-frame, as a crash during an un-fsynced append
  // would: drop the last 3 bytes.
  const std::string wal = dir + "/ledger.wal";
  auto bytes = io::ReadFileToString(wal);
  ASSERT_TRUE(bytes.ok());
  ASSERT_TRUE(
      io::WriteFileDurable(wal, bytes->substr(0, bytes->size() - 3)).ok());

  auto recovered = BudgetLedger::Open(dir);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  auto budget = recovered->Budget("t");
  ASSERT_TRUE(budget.ok());
  EXPECT_EQ(budget->granted, 4.0);
  EXPECT_EQ(budget->spent, 0.0);  // the torn charge was never acknowledged
  // Repair happened on disk, so a second recovery sees the same state
  // and the same bytes.
  auto repaired = io::ReadFileToString(wal);
  ASSERT_TRUE(repaired.ok());
  auto again = BudgetLedger::Open(dir);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->Budget("t")->granted, 4.0);
  EXPECT_EQ(*io::ReadFileToString(wal), *repaired);
  // The repaired ledger accepts new records.
  EXPECT_TRUE(again->Charge("t", 0.25).ok());
}

TEST_F(LedgerTest, MidLogCorruptionIsDataLossNamingFileAndByte) {
  const std::string dir = Dir("bitflip");
  {
    auto ledger = BudgetLedger::Open(dir);
    ASSERT_TRUE(ledger.ok());
    ASSERT_TRUE(ledger->Grant("t", 4.0).ok());
    ASSERT_TRUE(ledger->Charge("t", 0.5).ok());
    ASSERT_TRUE(ledger->Charge("t", 0.25).ok());
  }
  const std::string wal = dir + "/ledger.wal";
  auto bytes = io::ReadFileToString(wal);
  ASSERT_TRUE(bytes.ok());
  std::string damaged = *bytes;
  damaged[damaged.size() / 2] ^= 0x01;  // flip one bit mid-log
  ASSERT_TRUE(io::WriteFileDurable(wal, damaged).ok());

  auto recovered = BudgetLedger::Open(dir);
  ASSERT_FALSE(recovered.ok());
  EXPECT_TRUE(recovered.status().IsDataLoss())
      << recovered.status().ToString();
  EXPECT_NE(recovered.status().message().find(wal), std::string::npos)
      << recovered.status().message();
  EXPECT_NE(recovered.status().message().find("at byte"), std::string::npos)
      << recovered.status().message();
  // Refusal means no repair: the damaged file is untouched.
  EXPECT_EQ(*io::ReadFileToString(wal), damaged);
}

TEST_F(LedgerTest, CheckpointCompactsAndPreservesState) {
  const std::string dir = Dir("ckpt");
  {
    BudgetLedger::Options options;
    options.checkpoint_every = 0;  // manual
    auto ledger = BudgetLedger::Open(dir, options);
    ASSERT_TRUE(ledger.ok());
    ASSERT_TRUE(ledger->Grant("a", 2.0).ok());
    ASSERT_TRUE(ledger->Charge("a", 0.5).ok());
    ASSERT_TRUE(ledger->Grant("b", 1.0).ok());
    EXPECT_EQ(ledger->records_since_checkpoint(), 3u);
    ASSERT_TRUE(ledger->Checkpoint().ok());
    EXPECT_EQ(ledger->records_since_checkpoint(), 0u);
    // The WAL is retired; the checkpoint holds the whole state.
    EXPECT_EQ(fs::file_size(dir + "/ledger.wal"), 0u);
    ASSERT_TRUE(ledger->Charge("b", 0.25).ok());  // lands in the fresh WAL
    EXPECT_EQ(ledger->records_since_checkpoint(), 1u);
  }
  auto reopened = BudgetLedger::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened->Budget("a")->granted, 2.0);
  EXPECT_EQ(reopened->Budget("a")->spent, 0.5);
  EXPECT_EQ(reopened->Budget("b")->granted, 1.0);
  EXPECT_EQ(reopened->Budget("b")->spent, 0.25);
  EXPECT_EQ(reopened->last_seq(), 4u);  // sequence survives compaction
}

TEST_F(LedgerTest, AutoCheckpointTriggersAtThreshold) {
  const std::string dir = Dir("autockpt");
  BudgetLedger::Options options;
  options.checkpoint_every = 4;
  auto ledger = BudgetLedger::Open(dir, options);
  ASSERT_TRUE(ledger.ok());
  ASSERT_TRUE(ledger->Grant("t", 100.0).ok());
  for (int i = 0; i < 7; ++i) {
    ASSERT_TRUE(ledger->Charge("t", 0.25).ok());
  }
  // 8 records total: compaction fired at the 4th; 8 % 4 == 0 fired again.
  EXPECT_EQ(ledger->records_since_checkpoint(), 0u);
  EXPECT_TRUE(fs::exists(dir + "/ledger.ckpt"));
  auto reopened = BudgetLedger::Open(dir);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened->Budget("t")->spent, 1.75);
}

TEST_F(LedgerTest, CorruptCheckpointIsDataLoss) {
  const std::string dir = Dir("badckpt");
  {
    auto ledger = BudgetLedger::Open(dir);
    ASSERT_TRUE(ledger.ok());
    ASSERT_TRUE(ledger->Grant("t", 1.0).ok());
    ASSERT_TRUE(ledger->Checkpoint().ok());
  }
  const std::string ckpt = dir + "/ledger.ckpt";
  auto bytes = io::ReadFileToString(ckpt);
  ASSERT_TRUE(bytes.ok());
  std::string damaged = *bytes;
  damaged[damaged.find("tenant: ")] ^= 0x01;
  ASSERT_TRUE(io::WriteFileDurable(ckpt, damaged).ok());
  auto recovered = BudgetLedger::Open(dir);
  ASSERT_FALSE(recovered.ok());
  EXPECT_TRUE(recovered.status().IsDataLoss())
      << recovered.status().ToString();
  EXPECT_NE(recovered.status().message().find(ckpt), std::string::npos);
}

/// Charges split across 1, 2, and 8 threads commit in sequence order and
/// sum to the identical spent ε at every thread count (dyadic values, so
/// floating-point addition cannot smear the comparison).
TEST_F(LedgerTest, ConcurrentChargesAreThreadCountIndependent) {
  constexpr int kCharges = 64;
  double reference_spent = -1.0;
  for (int threads : {1, 2, 8}) {
    const std::string dir = Dir("mt" + std::to_string(threads));
    auto opened = BudgetLedger::Open(dir);
    ASSERT_TRUE(opened.ok());
    BudgetLedger ledger = std::move(*opened);
    ASSERT_TRUE(ledger.Grant("t", 64.0).ok());
    std::vector<std::thread> workers;
    const int per_thread = kCharges / threads;
    for (int w = 0; w < threads; ++w) {
      workers.emplace_back([&ledger, per_thread] {
        for (int i = 0; i < per_thread; ++i) {
          ASSERT_TRUE(ledger.Charge("t", 0.25).ok());
        }
      });
    }
    for (auto& worker : workers) worker.join();
    auto budget = ledger.Budget("t");
    ASSERT_TRUE(budget.ok());
    EXPECT_EQ(budget->spent, 16.0) << threads << " threads";
    EXPECT_EQ(ledger.last_seq(), static_cast<uint64_t>(kCharges) + 1);
    if (reference_spent < 0) reference_spent = budget->spent;
    EXPECT_EQ(budget->spent, reference_spent) << threads << " threads";
    // Replay agrees with the live image at every thread count.
    auto reopened = BudgetLedger::Open(dir);
    ASSERT_TRUE(reopened.ok());
    EXPECT_EQ(reopened->Budget("t")->spent, reference_spent);
  }
}

/// Concurrent overdraft: 8 threads race 16 charges of 0.25 against a
/// budget of 2.0 — exactly 8 must be admitted, never 9, at any
/// interleaving, because check-and-spend is atomic.
TEST_F(LedgerTest, ConcurrentChargesNeverJointlyOverdraft) {
  const std::string dir = Dir("race");
  auto opened = BudgetLedger::Open(dir);
  ASSERT_TRUE(opened.ok());
  BudgetLedger ledger = std::move(*opened);
  ASSERT_TRUE(ledger.Grant("t", 2.0).ok());
  std::atomic<int> admitted{0};
  std::vector<std::thread> workers;
  for (int w = 0; w < 8; ++w) {
    workers.emplace_back([&ledger, &admitted] {
      for (int i = 0; i < 2; ++i) {
        Status st = ledger.Charge("t", 0.25);
        if (st.ok()) {
          admitted.fetch_add(1);
        } else {
          ASSERT_TRUE(st.IsResourceExhausted()) << st.ToString();
        }
      }
    });
  }
  for (auto& worker : workers) worker.join();
  EXPECT_EQ(admitted.load(), 8);
  EXPECT_EQ(ledger.Budget("t")->spent, 2.0);
  auto reopened = BudgetLedger::Open(dir);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened->Budget("t")->spent, 2.0);
}

TEST_F(LedgerTest, SerialFsyncModeMatchesGroupCommitState) {
  for (bool group : {true, false}) {
    const std::string dir = Dir(group ? "group" : "serial");
    BudgetLedger::Options options;
    options.group_commit = group;
    auto ledger = BudgetLedger::Open(dir, options);
    ASSERT_TRUE(ledger.ok());
    ASSERT_TRUE(ledger->Grant("t", 4.0).ok());
    for (int i = 0; i < 8; ++i) ASSERT_TRUE(ledger->Charge("t", 0.5).ok());
    EXPECT_TRUE(ledger->Charge("t", 0.5).IsResourceExhausted());
    auto reopened = BudgetLedger::Open(dir);
    ASSERT_TRUE(reopened.ok());
    EXPECT_EQ(reopened->Budget("t")->spent, 4.0);
  }
}

TEST_F(LedgerTest, SnapshotListsAllTenantsSorted) {
  auto ledger = BudgetLedger::Open(Dir("snapshot"));
  ASSERT_TRUE(ledger.ok());
  ASSERT_TRUE(ledger->Grant("zeta", 1.0).ok());
  ASSERT_TRUE(ledger->Grant("alpha", 2.0).ok());
  auto snapshot = ledger->Snapshot();
  ASSERT_TRUE(snapshot.ok());
  ASSERT_EQ(snapshot->size(), 2u);
  EXPECT_EQ(snapshot->begin()->first, "alpha");
}

}  // namespace
}  // namespace privateclean
