#include "common/thread_pool.h"

#include <atomic>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace privateclean {
namespace {

TEST(ExecutionOptionsTest, EffectiveThreads) {
  ExecutionOptions exec;
  EXPECT_EQ(exec.EffectiveThreads(), 1u);  // Default is single-threaded.
  exec.num_threads = 4;
  EXPECT_EQ(exec.EffectiveThreads(), 4u);
  exec.num_threads = 0;  // 0 = hardware concurrency, always >= 1.
  EXPECT_GE(exec.EffectiveThreads(), 1u);
}

TEST(ShardingTest, ShardCountForRows) {
  EXPECT_EQ(ShardCountForRows(0), 1u);  // Always a valid shard count.
  EXPECT_EQ(ShardCountForRows(1), 1u);
  EXPECT_EQ(ShardCountForRows(kRowsPerShard), 1u);
  EXPECT_EQ(ShardCountForRows(kRowsPerShard + 1), 2u);
  EXPECT_EQ(ShardCountForRows(10 * kRowsPerShard), 10u);
}

TEST(ShardingTest, ShardBoundsPartitionExactly) {
  // Shards must tile [0, n) in order, with balanced sizes.
  for (size_t n : {1u, 7u, 100u, 1000u}) {
    for (size_t shards : {1u, 2u, 3u, 7u}) {
      size_t expected_begin = 0;
      for (size_t s = 0; s < shards; ++s) {
        ShardRange range = ShardBounds(n, shards, s);
        EXPECT_EQ(range.begin, expected_begin);
        EXPECT_LE(range.end - range.begin, n / shards + 1);
        EXPECT_GE(range.end - range.begin, n / shards);
        expected_begin = range.end;
      }
      EXPECT_EQ(expected_begin, n);
    }
  }
}

TEST(ThreadPoolTest, RunsScheduledTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::atomic<int> counter{0};
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i) {
    pool.Schedule([&] {
      counter.fetch_add(1);
      done.fetch_add(1);
    });
  }
  while (done.load() < 100) {
  }
  EXPECT_EQ(counter.load(), 100);
}

TEST(ParallelForTest, ZeroItemsIsOk) {
  ExecutionOptions exec;
  bool called = false;
  Status st = ParallelFor(0, 4, exec, [&](size_t, size_t, size_t) -> Status {
    called = true;
    return Status::OK();
  });
  EXPECT_TRUE(st.ok());
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, CoversEveryItemExactlyOnce) {
  for (size_t threads : {1u, 2u, 8u}) {
    ExecutionOptions exec;
    exec.num_threads = threads;
    std::vector<std::atomic<int>> touched(1000);
    Status st = ParallelFor(
        1000, 16, exec, [&](size_t, size_t begin, size_t end) -> Status {
          for (size_t i = begin; i < end; ++i) touched[i].fetch_add(1);
          return Status::OK();
        });
    ASSERT_TRUE(st.ok());
    for (size_t i = 0; i < touched.size(); ++i) {
      EXPECT_EQ(touched[i].load(), 1) << "item " << i;
    }
  }
}

TEST(ParallelForTest, ShardArgumentMatchesBounds) {
  ExecutionOptions exec;
  exec.num_threads = 4;
  std::vector<std::atomic<int>> seen(8);
  Status st = ParallelFor(
      800, 8, exec, [&](size_t shard, size_t begin, size_t end) -> Status {
        ShardRange expected = ShardBounds(800, 8, shard);
        EXPECT_EQ(begin, expected.begin);
        EXPECT_EQ(end, expected.end);
        seen[shard].fetch_add(1);
        return Status::OK();
      });
  ASSERT_TRUE(st.ok());
  for (size_t s = 0; s < seen.size(); ++s) EXPECT_EQ(seen[s].load(), 1);
}

TEST(ParallelForTest, InlineErrorStopsAtFirstFailingShard) {
  ExecutionOptions exec;
  exec.num_threads = 1;
  std::vector<size_t> ran;
  Status st = ParallelFor(
      100, 10, exec, [&](size_t shard, size_t, size_t) -> Status {
        ran.push_back(shard);
        if (shard == 3) return Status::InvalidArgument("shard 3 broke");
        return Status::OK();
      });
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("shard 3 broke"), std::string::npos)
      << st.ToString();
  EXPECT_EQ(ran, (std::vector<size_t>{0, 1, 2, 3}));
}

TEST(ParallelForTest, ConcurrentErrorIsPropagated) {
  ExecutionOptions exec;
  exec.num_threads = 4;
  Status st = ParallelFor(
      100, 10, exec, [&](size_t shard, size_t, size_t) -> Status {
        if (shard % 3 == 0) {
          return Status::InvalidArgument("shard " + std::to_string(shard));
        }
        return Status::OK();
      });
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("shard "), std::string::npos)
      << st.ToString();
}

TEST(ParallelForTest, InlineExecutionRunsShardsInOrder) {
  // With one thread the shards must run sequentially in shard order —
  // this is what lets single-threaded callers observe deterministic
  // side-effect ordering.
  ExecutionOptions exec;
  exec.num_threads = 1;
  std::vector<size_t> order;
  Status st = ParallelFor(100, 10, exec,
                          [&](size_t shard, size_t, size_t) -> Status {
                            order.push_back(shard);
                            return Status::OK();
                          });
  ASSERT_TRUE(st.ok());
  std::vector<size_t> expected(10);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ParallelForTest, MoreShardsThanItemsClamps) {
  ExecutionOptions exec;
  exec.num_threads = 4;
  std::atomic<size_t> items{0};
  Status st = ParallelFor(3, 100, exec,
                          [&](size_t, size_t begin, size_t end) -> Status {
                            items.fetch_add(end - begin);
                            return Status::OK();
                          });
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(items.load(), 3u);
}

}  // namespace
}  // namespace privateclean
