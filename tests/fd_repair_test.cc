#include "cleaning/fd_repair.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "datagen/tpcds.h"
#include "table/table_builder.h"

namespace privateclean {
namespace {

Schema AddressSchema() {
  return *Schema::Make({Field::Discrete("city"), Field::Discrete("county"),
                        Field::Discrete("state")});
}

FunctionalDependency CityCountyToState() {
  return FunctionalDependency{{"city", "county"}, "state"};
}

TEST(FdRepairTest, MajorityWinsWithinGroup) {
  TableBuilder b(AddressSchema());
  b.Row({Value("Springfield"), Value("Clark"), Value("Ohio")})
      .Row({Value("Springfield"), Value("Clark"), Value("Ohio")})
      .Row({Value("Springfield"), Value("Clark"), Value("Texas")});
  Table t = *b.Finish();
  FdRepair repair(CityCountyToState());
  ASSERT_TRUE(repair.Apply(&t).ok());
  for (size_t r = 0; r < 3; ++r) {
    EXPECT_EQ(*t.GetValue(r, "state"), Value("Ohio"));
  }
  EXPECT_TRUE(*SatisfiesFd(t, CityCountyToState()));
}

TEST(FdRepairTest, ConsistentGroupsUntouched) {
  TableBuilder b(AddressSchema());
  b.Row({Value("Salem"), Value("Essex"), Value("Massachusetts")})
      .Row({Value("Salem"), Value("Essex"), Value("Massachusetts")});
  Table t = *b.Finish();
  FdRepair repair(CityCountyToState());
  ASSERT_TRUE(repair.Apply(&t).ok());
  EXPECT_EQ(*t.GetValue(0, "state"), Value("Massachusetts"));
}

TEST(FdRepairTest, IndependentGroupsRepairedIndependently) {
  TableBuilder b(AddressSchema());
  b.Row({Value("A"), Value("x"), Value("S1")})
      .Row({Value("A"), Value("x"), Value("S1")})
      .Row({Value("A"), Value("x"), Value("S2")})
      .Row({Value("B"), Value("y"), Value("T2")})
      .Row({Value("B"), Value("y"), Value("T2")})
      .Row({Value("B"), Value("y"), Value("T1")});
  Table t = *b.Finish();
  ASSERT_TRUE(FdRepair(CityCountyToState()).Apply(&t).ok());
  EXPECT_EQ(*t.GetValue(2, "state"), Value("S1"));
  EXPECT_EQ(*t.GetValue(5, "state"), Value("T2"));
}

TEST(FdRepairTest, TieBrokenDeterministically) {
  TableBuilder b(AddressSchema());
  b.Row({Value("A"), Value("x"), Value("S2")})
      .Row({Value("A"), Value("x"), Value("S1")});
  Table t1 = *b.Finish();
  Table t2 = t1.Clone();
  ASSERT_TRUE(FdRepair(CityCountyToState()).Apply(&t1).ok());
  ASSERT_TRUE(FdRepair(CityCountyToState()).Apply(&t2).ok());
  EXPECT_EQ(*t1.GetValue(0, "state"), *t2.GetValue(0, "state"));
  // std::map ordering makes the smallest value win ties.
  EXPECT_EQ(*t1.GetValue(0, "state"), Value("S1"));
}

TEST(FdRepairTest, HeuristicCanBeWrongWhenCorruptionOutvotes) {
  // The corrupted value has the majority: repair picks it — imperfect
  // cleaning, exactly the Figure 8a regime.
  TableBuilder b(AddressSchema());
  b.Row({Value("A"), Value("x"), Value("Corrupt")})
      .Row({Value("A"), Value("x"), Value("Corrupt")})
      .Row({Value("A"), Value("x"), Value("True")});
  Table t = *b.Finish();
  ASSERT_TRUE(FdRepair(CityCountyToState()).Apply(&t).ok());
  EXPECT_EQ(*t.GetValue(2, "state"), Value("Corrupt"));
}

TEST(FdRepairTest, RestoresGeneratedTpcdsData) {
  // Corrupt a constraint-satisfying table lightly; repair should fix most
  // cells back to ground truth.
  Rng rng(7);
  TpcdsOptions options;
  options.num_rows = 2000;
  Table truth = *GenerateCustomerAddress(options, rng);
  Table dirty = truth.Clone();
  ASSERT_TRUE(CorruptStates(&dirty, 100, rng).ok());
  ASSERT_TRUE(FdRepair(CustomerAddressFd()).Apply(&dirty).ok());
  size_t wrong = 0;
  const Column& repaired = **dirty.ColumnByName("ca_state");
  const Column& original = **truth.ColumnByName("ca_state");
  for (size_t r = 0; r < dirty.num_rows(); ++r) {
    if (repaired.ValueAt(r) != original.ValueAt(r)) ++wrong;
  }
  // 100 corruptions in 2000 rows; majority voting should repair most.
  EXPECT_LT(wrong, 30u);
}

TEST(FdRepairTest, RepairIsIdempotent) {
  TableBuilder b(AddressSchema());
  b.Row({Value("A"), Value("x"), Value("S1")})
      .Row({Value("A"), Value("x"), Value("S1")})
      .Row({Value("A"), Value("x"), Value("S2")});
  Table t = *b.Finish();
  ASSERT_TRUE(FdRepair(CityCountyToState()).Apply(&t).ok());
  Table once = t.Clone();
  ASSERT_TRUE(FdRepair(CityCountyToState()).Apply(&t).ok());
  for (size_t r = 0; r < t.num_rows(); ++r) {
    EXPECT_EQ(*t.GetValue(r, "state"), *once.GetValue(r, "state"));
  }
}

TEST(FdRepairTest, RejectsBadInputs) {
  FdRepair repair(CityCountyToState());
  EXPECT_TRUE(repair.Apply(nullptr).IsInvalidArgument());
  Schema s = *Schema::Make({Field::Discrete("other")});
  TableBuilder b(s);
  b.Row({Value("v")});
  Table t = *b.Finish();
  EXPECT_FALSE(repair.Apply(&t).ok());
}

TEST(FdRepairTest, KindIsTransform) {
  FdRepair repair(CityCountyToState());
  EXPECT_EQ(repair.kind(), CleanerKind::kTransform);
  EXPECT_NE(repair.name().find("fd_repair"), std::string::npos);
}

}  // namespace
}  // namespace privateclean
