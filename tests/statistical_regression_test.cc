// Statistical regression tests for the sharded randomization paths.
//
// Determinism tests (parallel_determinism_test.cc) prove thread count
// does not change the output; these tests prove the output is *right*:
// forking one RNG stream per shard must still produce the analytical GRR
// transition distribution and the analytical Laplace noise distribution.
// A broken fork (reused streams, correlated shards, wrong scale) passes
// determinism but fails here.
//
// Seeds are fixed, so every statistic below is deterministic; thresholds
// are the analytical critical values at α = 0.01, which these seeds pass
// with margin.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/statistics.h"
#include "privacy/grr.h"
#include "query/aggregate.h"
#include "table/table_builder.h"

namespace privateclean {
namespace {

// Skewed category counts: a uniform input would make the kept mass and
// the uniform-redraw mass indistinguishable per value.
const std::vector<size_t>& CategoryCounts() {
  static const std::vector<size_t> counts = {12000, 8000, 6000, 5000,
                                             4000,  3000, 1500, 500};
  return counts;
}

constexpr double kGrrP = 0.5;
constexpr double kLaplaceB = 2.0;

Table SkewedTable() {
  Schema schema = *Schema::Make({Field::Discrete("category"),
                                 Field::Numerical("value", ValueType::kDouble)});
  TableBuilder builder(schema);
  for (size_t j = 0; j < CategoryCounts().size(); ++j) {
    for (size_t k = 0; k < CategoryCounts()[j]; ++k) {
      builder.Row({Value("c" + std::to_string(j)),
                   Value(static_cast<double>(j) * 10.0)});
    }
  }
  return *builder.Finish();
}

GrrOutput RandomizeAtThreads(const Table& input, size_t num_threads) {
  GrrOptions options;
  options.exec.num_threads = num_threads;
  Rng rng(20260805);
  return *ApplyGrr(input, GrrParams::Uniform(kGrrP, kLaplaceB), options, rng);
}

TEST(StatisticalRegressionTest, ShardedGrrMatchesTransitionDistribution) {
  // GRR transition: P(out = j | in = i) = (1-p)·1[i=j] + p/N, so
  //   E[count_out(j)] = (1-p)·count_in(j) + p·S/N.
  // Pearson chi-squared of the observed output counts against that
  // expectation, at df = N-1.
  Table input = SkewedTable();
  const size_t n_values = CategoryCounts().size();
  double s = static_cast<double>(input.num_rows());
  std::vector<double> expected;
  for (size_t j = 0; j < n_values; ++j) {
    expected.push_back((1.0 - kGrrP) * static_cast<double>(CategoryCounts()[j]) +
                       kGrrP * s / static_cast<double>(n_values));
  }
  double threshold = *ChiSquaredQuantile(n_values - 1, 0.99);
  for (size_t threads : {1u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    GrrOutput out = RandomizeAtThreads(input, threads);
    EXPECT_EQ(out.total_regenerations, 0u);
    auto counts = *GroupByCount(out.table, "category");
    std::vector<double> observed;
    for (size_t j = 0; j < n_values; ++j) {
      observed.push_back(
          static_cast<double>(counts[Value("c" + std::to_string(j))]));
    }
    double chi2 = *ChiSquaredStatistic(observed, expected);
    EXPECT_LT(chi2, threshold) << "chi-squared " << chi2;
  }
}

TEST(StatisticalRegressionTest, ShardedLaplaceNoiseMatchesLaplaceCdf) {
  // The numeric path adds Laplace(b) noise per row; output minus input
  // is an i.i.d. Laplace sample even when each shard draws from its own
  // forked stream. One-sample KS against the Laplace CDF; the α = 0.01
  // asymptotic critical value is 1.628/√n.
  Table input = SkewedTable();
  const Column& in_col = **input.ColumnByName("value");
  auto laplace_cdf = [](double x) {
    return x < 0.0 ? 0.5 * std::exp(x / kLaplaceB)
                   : 1.0 - 0.5 * std::exp(-x / kLaplaceB);
  };
  double n = static_cast<double>(input.num_rows());
  double threshold = 1.628 / std::sqrt(n);
  for (size_t threads : {1u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    GrrOutput out = RandomizeAtThreads(input, threads);
    const Column& out_col = **out.table.ColumnByName("value");
    std::vector<double> noise;
    noise.reserve(input.num_rows());
    for (size_t r = 0; r < input.num_rows(); ++r) {
      noise.push_back(out_col.DoubleAt(r) - in_col.DoubleAt(r));
    }
    double d = *KolmogorovSmirnovStatistic(std::move(noise), laplace_cdf);
    EXPECT_LT(d, threshold) << "KS statistic " << d;
  }
}

TEST(StatisticalRegressionTest, ShardStreamsAreNotCorrelated) {
  // A defective fork that reuses the parent stream per shard would make
  // shard-initial noise draws identical. Check the first rows of the two
  // halves of a two-shard table differ (they are independent draws).
  Table input = SkewedTable();
  const Column& in_col = **input.ColumnByName("value");
  GrrOutput out = RandomizeAtThreads(input, 8);
  const Column& out_col = **out.table.ColumnByName("value");
  ASSERT_GT(input.num_rows(), kRowsPerShard);
  double noise_shard0 = out_col.DoubleAt(0) - in_col.DoubleAt(0);
  double noise_shard1 =
      out_col.DoubleAt(kRowsPerShard) - in_col.DoubleAt(kRowsPerShard);
  EXPECT_NE(noise_shard0, noise_shard1);
}

}  // namespace
}  // namespace privateclean
