#include "tools/pclean_cli.h"

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "common/random.h"
#include "datagen/synthetic.h"
#include "table/csv.h"

namespace privateclean {
namespace {

class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = ::testing::TempDir() + "/pclean_cli_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(base_);
    std::filesystem::create_directories(base_);
    csv_path_ = base_ + "/input.csv";
    release_dir_ = base_ + "/release";

    SyntheticOptions options;
    options.num_rows = 500;
    Rng rng(1);
    Table data = *GenerateSynthetic(options, rng);
    ASSERT_TRUE(WriteCsvFile(data, csv_path_).ok());
  }
  void TearDown() override { std::filesystem::remove_all(base_); }

  int Run(const std::vector<std::string>& args) {
    out_.str("");
    err_.str("");
    return RunPcleanCli(args, out_, err_);
  }

  std::string base_, csv_path_, release_dir_;
  std::ostringstream out_, err_;
};

TEST_F(CliTest, HelpAndUnknownCommand) {
  EXPECT_EQ(Run({"help"}), 0);
  EXPECT_NE(out_.str().find("privatize"), std::string::npos);
  EXPECT_EQ(Run({}), 1);
  EXPECT_EQ(Run({"frobnicate"}), 1);
  EXPECT_NE(err_.str().find("unknown command"), std::string::npos);
}

TEST_F(CliTest, PrivatizeWithEpsilonThenInfo) {
  ASSERT_EQ(Run({"privatize", "--input", csv_path_, "--output",
                 release_dir_, "--epsilon", "4.0", "--seed", "7"}),
            0)
      << err_.str();
  EXPECT_NE(out_.str().find("rows: 500"), std::string::npos);
  EXPECT_NE(out_.str().find("total epsilon: 4"), std::string::npos);

  ASSERT_EQ(Run({"info", "--release", release_dir_}), 0) << err_.str();
  EXPECT_NE(out_.str().find("category"), std::string::npos);
  EXPECT_NE(out_.str().find("value"), std::string::npos);
  EXPECT_NE(out_.str().find("total epsilon: 4"), std::string::npos);
}

TEST_F(CliTest, PrivatizeWithExplicitParams) {
  ASSERT_EQ(Run({"privatize", "--input", csv_path_, "--output",
                 release_dir_, "--p", "0.1", "--b", "5.0", "--seed", "7"}),
            0)
      << err_.str();
}

TEST_F(CliTest, PrivatizeWithCountErrorTarget) {
  ASSERT_EQ(Run({"privatize", "--input", csv_path_, "--output",
                 release_dir_, "--count-error", "0.1", "--seed", "7"}),
            0)
      << err_.str();
}

TEST_F(CliTest, PrivatizeRequiresAPrivacySpec) {
  EXPECT_EQ(Run({"privatize", "--input", csv_path_, "--output",
                 release_dir_}),
            1);
  EXPECT_NE(err_.str().find("--epsilon"), std::string::npos);
}

TEST_F(CliTest, PrivatizeMissingInputFileFails) {
  EXPECT_EQ(Run({"privatize", "--input", base_ + "/nope.csv", "--output",
                 release_dir_, "--epsilon", "2"}),
            1);
}

TEST_F(CliTest, QueryEndToEnd) {
  ASSERT_EQ(Run({"privatize", "--input", csv_path_, "--output",
                 release_dir_, "--p", "0.1", "--b", "5.0", "--seed", "7"}),
            0);
  ASSERT_EQ(Run({"query", "--release", release_dir_, "--sql",
                 "SELECT count(1) FROM r WHERE category = 'c0'"}),
            0)
      << err_.str();
  EXPECT_NE(out_.str().find("estimate:"), std::string::npos);
  EXPECT_NE(out_.str().find("CI:"), std::string::npos);
}

TEST_F(CliTest, QueryDirectBaseline) {
  ASSERT_EQ(Run({"privatize", "--input", csv_path_, "--output",
                 release_dir_, "--p", "0.1", "--b", "5.0", "--seed", "7"}),
            0);
  ASSERT_EQ(Run({"query", "--release", release_dir_, "--direct", "--sql",
                 "SELECT count(1) FROM r WHERE category = 'c0'"}),
            0)
      << err_.str();
  EXPECT_NE(out_.str().find("direct:"), std::string::npos);
}

TEST_F(CliTest, QueryWithReplaceRules) {
  ASSERT_EQ(Run({"privatize", "--input", csv_path_, "--output",
                 release_dir_, "--p", "0.1", "--b", "5.0", "--seed", "7"}),
            0);
  ASSERT_EQ(Run({"query", "--release", release_dir_, "--replace",
                 "category:c1=c0", "--replace", "category:c2=c0", "--sql",
                 "SELECT count(1) FROM r WHERE category = 'c0'"}),
            0)
      << err_.str();
  EXPECT_NE(out_.str().find("estimate:"), std::string::npos);
}

TEST_F(CliTest, QueryBadReplaceRuleFails) {
  ASSERT_EQ(Run({"privatize", "--input", csv_path_, "--output",
                 release_dir_, "--p", "0.1", "--b", "5.0", "--seed", "7"}),
            0);
  EXPECT_EQ(Run({"query", "--release", release_dir_, "--replace",
                 "malformed", "--sql", "SELECT count(1) FROM r"}),
            1);
  EXPECT_NE(err_.str().find("attr:from=to"), std::string::npos);
}

TEST_F(CliTest, QueryBadSqlFails) {
  ASSERT_EQ(Run({"privatize", "--input", csv_path_, "--output",
                 release_dir_, "--p", "0.1", "--b", "5.0", "--seed", "7"}),
            0);
  EXPECT_EQ(Run({"query", "--release", release_dir_, "--sql",
                 "SELECT nope(1) FROM r"}),
            1);
  EXPECT_NE(err_.str().find("SQL error"), std::string::npos);
}

TEST_F(CliTest, QueryBootstrapExtendedAggregate) {
  ASSERT_EQ(Run({"privatize", "--input", csv_path_, "--output",
                 release_dir_, "--p", "0.1", "--b", "5.0", "--seed", "7"}),
            0);
  ASSERT_EQ(Run({"query", "--release", release_dir_, "--bootstrap", "50",
                 "--seed", "13", "--sql", "SELECT median(value) FROM r"}),
            0)
      << err_.str();
  EXPECT_NE(out_.str().find("estimate:"), std::string::npos);
  EXPECT_NE(out_.str().find("bootstrap replicates: 50/50"),
            std::string::npos);
}

TEST_F(CliTest, QueryBootstrapRejectsTooFewReplicates) {
  ASSERT_EQ(Run({"privatize", "--input", csv_path_, "--output",
                 release_dir_, "--p", "0.1", "--b", "5.0", "--seed", "7"}),
            0);
  EXPECT_EQ(Run({"query", "--release", release_dir_, "--bootstrap", "5",
                 "--sql", "SELECT median(value) FROM r"}),
            1);
  EXPECT_NE(err_.str().find(">= 10"), std::string::npos);
}

TEST_F(CliTest, QueryBootstrapDeterministicGivenSeed) {
  ASSERT_EQ(Run({"privatize", "--input", csv_path_, "--output",
                 release_dir_, "--p", "0.1", "--b", "5.0", "--seed", "7"}),
            0);
  ASSERT_EQ(Run({"query", "--release", release_dir_, "--bootstrap", "40",
                 "--seed", "21", "--threads", "1", "--sql",
                 "SELECT percentile(value, 90) FROM r"}),
            0)
      << err_.str();
  std::string first = out_.str();
  ASSERT_EQ(Run({"query", "--release", release_dir_, "--bootstrap", "40",
                 "--seed", "21", "--threads", "4", "--sql",
                 "SELECT percentile(value, 90) FROM r"}),
            0)
      << err_.str();
  // Same bootstrap seed at a different thread count: identical output.
  EXPECT_EQ(first, out_.str());
}

TEST_F(CliTest, QueryMissingReleaseFails) {
  EXPECT_EQ(Run({"query", "--release", base_ + "/nope", "--sql",
                 "SELECT count(1) FROM r"}),
            1);
}

TEST_F(CliTest, FlagParsingErrors) {
  EXPECT_EQ(Run({"info", "positional"}), 1);
  EXPECT_NE(err_.str().find("--flag"), std::string::npos);
  EXPECT_EQ(Run({"info", "--release"}), 1);  // Missing value.
  EXPECT_EQ(Run({"info"}), 1);  // Missing required flag.
}

TEST_F(CliTest, FlagEqualsSyntax) {
  ASSERT_EQ(Run({"privatize", "--input=" + csv_path_,
                 "--output=" + release_dir_, "--epsilon=3.0",
                 "--seed=9"}),
            0)
      << err_.str();
  EXPECT_NE(out_.str().find("total epsilon: 3"), std::string::npos);
}

TEST_F(CliTest, VerifyReportsOkRelease) {
  ASSERT_EQ(Run({"privatize", "--input", csv_path_, "--output",
                 release_dir_, "--epsilon", "2.0", "--seed", "7"}),
            0);
  ASSERT_EQ(Run({"verify", release_dir_}), 0) << err_.str();
  EXPECT_NE(out_.str().find("format: v2"), std::string::npos);
  EXPECT_NE(out_.str().find("rows: 500"), std::string::npos);
  EXPECT_NE(out_.str().find("data.csv"), std::string::npos);
  EXPECT_NE(out_.str().find("verification: OK"), std::string::npos);
}

TEST_F(CliTest, VerifyAcceptsReleaseFlagForm) {
  ASSERT_EQ(Run({"privatize", "--input", csv_path_, "--output",
                 release_dir_, "--epsilon", "2.0", "--seed", "7"}),
            0);
  ASSERT_EQ(Run({"verify", "--release", release_dir_}), 0) << err_.str();
  EXPECT_NE(out_.str().find("verification: OK"), std::string::npos);
}

TEST_F(CliTest, VerifyDetectsCorruption) {
  ASSERT_EQ(Run({"privatize", "--input", csv_path_, "--output",
                 release_dir_, "--epsilon", "2.0", "--seed", "7"}),
            0);
  const std::string path = release_dir_ + "/data.csv";
  std::stringstream bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes << in.rdbuf();
  }
  std::string data = bytes.str();
  data[data.size() / 2] ^= 0x10;
  {
    std::ofstream fixed(path, std::ios::binary | std::ios::trunc);
    fixed << data;
  }
  EXPECT_EQ(Run({"verify", release_dir_}), 1);
  EXPECT_NE(err_.str().find("Data loss"), std::string::npos) << err_.str();
  EXPECT_NE(out_.str().find("data.csv"), std::string::npos);
}

TEST_F(CliTest, VerifyMissingReleaseFails) {
  EXPECT_EQ(Run({"verify", base_ + "/nope"}), 1);
  EXPECT_NE(err_.str().find("Not found"), std::string::npos) << err_.str();
}

TEST_F(CliTest, VerifyRefusesUncheckableV1Release) {
  ASSERT_EQ(Run({"privatize", "--input", csv_path_, "--output",
                 release_dir_, "--epsilon", "2.0", "--seed", "7"}),
            0);
  std::filesystem::remove(release_dir_ + "/MANIFEST");
  EXPECT_EQ(Run({"verify", release_dir_}), 1);
  EXPECT_NE(err_.str().find("Failed precondition"), std::string::npos)
      << err_.str();
  // The same v1 directory still queries fine — only strict verification
  // refuses it.
  EXPECT_EQ(Run({"query", "--release", release_dir_, "--sql",
                 "SELECT count(1) FROM r"}),
            0)
      << err_.str();
}

TEST_F(CliTest, VerifyRequiresADirectory) {
  EXPECT_EQ(Run({"verify"}), 1);
}

TEST_F(CliTest, UsageMentionsVerify) {
  Run({"help"});
  EXPECT_NE(out_.str().find("verify"), std::string::npos);
}

TEST_F(CliTest, CsvSplitModesProduceIdenticalReleases) {
  ASSERT_EQ(Run({"privatize", "--input", csv_path_, "--output",
                 release_dir_ + "_serial", "--p", "0.2", "--b", "5.0",
                 "--seed", "42", "--csv-split", "serial"}),
            0)
      << err_.str();
  ASSERT_EQ(Run({"privatize", "--input", csv_path_, "--output",
                 release_dir_ + "_spec", "--p", "0.2", "--b", "5.0",
                 "--seed", "42", "--csv-split", "speculative", "--threads",
                 "4"}),
            0)
      << err_.str();
  std::ifstream a(release_dir_ + "_serial/data.csv");
  std::ifstream b(release_dir_ + "_spec/data.csv");
  std::stringstream sa, sb;
  sa << a.rdbuf();
  sb << b.rdbuf();
  EXPECT_EQ(sa.str(), sb.str());
}

TEST_F(CliTest, CsvSplitRejectsUnknownMode) {
  EXPECT_EQ(Run({"privatize", "--input", csv_path_, "--output",
                 release_dir_, "--epsilon", "2.0", "--csv-split",
                 "sideways"}),
            1);
  EXPECT_NE(err_.str().find("--csv-split"), std::string::npos)
      << err_.str();
}

TEST_F(CliTest, BudgetGrantShowRelaxRoundTrip) {
  const std::string ledger = base_ + "/ledger";
  ASSERT_EQ(Run({"budget", "grant", "--ledger", ledger, "--tenant", "alice",
                 "--epsilon", "2.5"}),
            0)
      << err_.str();
  EXPECT_NE(out_.str().find("granted=2.5"), std::string::npos) << out_.str();
  ASSERT_EQ(Run({"budget", "relax", "--ledger", ledger, "--tenant", "alice",
                 "--epsilon", "0.5"}),
            0)
      << err_.str();
  EXPECT_NE(out_.str().find("granted=3"), std::string::npos) << out_.str();
  ASSERT_EQ(Run({"budget", "show", "--ledger", ledger}), 0) << err_.str();
  EXPECT_NE(out_.str().find("alice"), std::string::npos);
  EXPECT_NE(out_.str().find("remaining=3"), std::string::npos) << out_.str();
  // The ledger is durable: a fresh show (new process-equivalent open)
  // still sees the budget.
  ASSERT_EQ(Run({"budget", "show", "--ledger", ledger, "--tenant", "alice"}),
            0)
      << err_.str();
  EXPECT_NE(out_.str().find("granted=3"), std::string::npos);
}

TEST_F(CliTest, BudgetRejectsBadActionsAndUnknownTenants) {
  const std::string ledger = base_ + "/ledger";
  EXPECT_EQ(Run({"budget", "--ledger", ledger}), 1);
  EXPECT_NE(err_.str().find("grant, relax, or show"), std::string::npos)
      << err_.str();
  EXPECT_EQ(Run({"budget", "shrink", "--ledger", ledger}), 1);
  EXPECT_NE(err_.str().find("unknown budget action"), std::string::npos);
  EXPECT_EQ(Run({"budget", "show", "--ledger", ledger, "--tenant", "bob"}),
            1);
  EXPECT_NE(err_.str().find("Not found"), std::string::npos) << err_.str();
}

TEST_F(CliTest, QueryChargesTenantAndRejectsOverdraftBeforeExecution) {
  ASSERT_EQ(Run({"privatize", "--input", csv_path_, "--output",
                 release_dir_, "--epsilon", "4.0", "--seed", "7"}),
            0)
      << err_.str();
  const std::string ledger = base_ + "/ledger";
  // Per-attribute epsilon is ~2 of the total 4, so a grant of 3 admits
  // exactly one single-attribute query.
  ASSERT_EQ(Run({"budget", "grant", "--ledger", ledger, "--tenant", "alice",
                 "--epsilon", "3.0"}),
            0)
      << err_.str();
  const std::vector<std::string> query = {
      "query",    "--release", release_dir_,
      "--sql",    "SELECT COUNT(*) FROM r WHERE category = 'a'",
      "--ledger", ledger,      "--tenant",
      "alice"};
  ASSERT_EQ(Run(query), 0) << err_.str();
  EXPECT_NE(out_.str().find("charged epsilon"), std::string::npos)
      << out_.str();
  EXPECT_NE(out_.str().find("estimate:"), std::string::npos);

  // Second identical query overdrafts: typed rejection, no estimate —
  // the query never executed.
  EXPECT_EQ(Run(query), 1);
  EXPECT_NE(err_.str().find("Resource exhausted"), std::string::npos)
      << err_.str();
  EXPECT_NE(err_.str().find("alice"), std::string::npos);
  EXPECT_EQ(out_.str().find("estimate:"), std::string::npos) << out_.str();

  // A relax tops the tenant back up and the same query is admitted.
  ASSERT_EQ(Run({"budget", "relax", "--ledger", ledger, "--tenant", "alice",
                 "--epsilon", "2.0"}),
            0)
      << err_.str();
  EXPECT_EQ(Run(query), 0) << err_.str();
}

TEST_F(CliTest, QueryWithUnknownRelationIsRejectedWithoutCharge) {
  ASSERT_EQ(Run({"privatize", "--input", csv_path_, "--output",
                 release_dir_, "--epsilon", "4.0", "--seed", "7"}),
            0)
      << err_.str();
  const std::string ledger = base_ + "/ledger";
  ASSERT_EQ(Run({"budget", "grant", "--ledger", ledger, "--tenant", "alice",
                 "--epsilon", "3.0"}),
            0);
  EXPECT_EQ(Run({"query", "--release", release_dir_, "--sql",
                 "SELECT COUNT(*) FROM wrong WHERE category = 'a'",
                 "--ledger", ledger, "--tenant", "alice"}),
            1);
  EXPECT_NE(err_.str().find("unknown relation 'wrong'"), std::string::npos)
      << err_.str();
  EXPECT_NE(err_.str().find("relation 'r'"), std::string::npos);
  // Nothing was charged for the rejected query.
  ASSERT_EQ(Run({"budget", "show", "--ledger", ledger, "--tenant", "alice"}),
            0);
  EXPECT_NE(out_.str().find("spent=0"), std::string::npos) << out_.str();
}

TEST_F(CliTest, QueryLedgerAndTenantGoTogether) {
  ASSERT_EQ(Run({"privatize", "--input", csv_path_, "--output",
                 release_dir_, "--epsilon", "4.0", "--seed", "7"}),
            0);
  EXPECT_EQ(Run({"query", "--release", release_dir_, "--sql",
                 "SELECT COUNT(*) FROM r", "--tenant", "alice"}),
            1);
  EXPECT_NE(err_.str().find("--ledger and --tenant go together"),
            std::string::npos)
      << err_.str();
}

TEST_F(CliTest, QueryConnectRejectsServerOwnedFlags) {
  // With --connect the server owns the table, the ledger, and the
  // threading; every execution-owning flag must be refused up front, not
  // silently ignored.
  for (const char* banned : {"--ledger", "--replace", "--bootstrap",
                             "--seed", "--threads", "--csv-split"}) {
    EXPECT_EQ(Run({"query", "--connect", "/tmp/nowhere.sock", "--sql",
                   "SELECT count(1) FROM r", banned, "x"}),
              1)
        << banned;
    EXPECT_NE(err_.str().find("does not apply with --connect"),
              std::string::npos)
        << banned << ": " << err_.str();
  }
}

TEST_F(CliTest, QueryConnectToMissingServerIsTyped) {
  EXPECT_EQ(Run({"query", "--connect", "/tmp/pclean_no_such.sock", "--sql",
                 "SELECT count(1) FROM r"}),
            1);
  EXPECT_NE(err_.str().find("no server at"), std::string::npos)
      << err_.str();
}

TEST_F(CliTest, ServeArgumentValidation) {
  EXPECT_EQ(Run({"serve", "--socket", "/tmp/pclean_sv.sock"}), 1);
  EXPECT_NE(err_.str().find("at least one release directory"),
            std::string::npos)
      << err_.str();
  ASSERT_EQ(Run({"privatize", "--input", csv_path_, "--output",
                 release_dir_, "--epsilon", "4.0", "--seed", "7"}),
            0);
  EXPECT_EQ(Run({"serve", release_dir_, "--socket", "/tmp/pclean_sv.sock",
                 "--serve-for-ms", "0"}),
            1);
  EXPECT_NE(err_.str().find("--serve-for-ms must be > 0"),
            std::string::npos)
      << err_.str();
}

TEST_F(CliTest, ServeAndConnectRoundTripMatchesLocalBytes) {
  ASSERT_EQ(Run({"privatize", "--input", csv_path_, "--output",
                 release_dir_, "--epsilon", "4.0", "--seed", "7"}),
            0);
  // Socket directly under /tmp: sun_path caps at ~107 bytes and the
  // gtest temp path is long.
  const std::string socket_path =
      "/tmp/pcsrv_cli_" + std::to_string(::getpid()) + ".sock";
  ::unlink(socket_path.c_str());
  std::ostringstream serve_out, serve_err;
  int serve_rc = -1;
  std::thread server([&] {
    serve_rc = RunPcleanCli({"serve", release_dir_, "--socket", socket_path,
                             "--serve-for-ms", "30000"},
                            serve_out, serve_err);
  });
  struct stat st;
  for (int i = 0; i < 300 && ::stat(socket_path.c_str(), &st) != 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ASSERT_EQ(::stat(socket_path.c_str(), &st), 0) << serve_err.str();

  const std::string sql = "SELECT count(1) FROM r WHERE category = 'c0'";
  ASSERT_EQ(Run({"query", "--connect", socket_path, "--sql", sql,
                 "--confidence", "0.9"}),
            0)
      << err_.str();
  const std::string served = out_.str();
  ASSERT_EQ(Run({"query", "--release", release_dir_, "--sql", sql,
                 "--confidence", "0.9"}),
            0)
      << err_.str();
  EXPECT_EQ(served, out_.str())
      << "served bytes diverged from the local rendering";

  // The serve loop installed its signal handlers before the socket-file
  // wait above could finish; SIGTERM asks it to drain now rather than at
  // the --serve-for-ms bound.
  ::raise(SIGTERM);
  server.join();
  EXPECT_EQ(serve_rc, 0) << serve_err.str();
  EXPECT_NE(serve_out.str().find("drained: 1 sessions, 1 queries"),
            std::string::npos)
      << serve_out.str();
}

TEST_F(CliTest, UsageMentionsServe) {
  EXPECT_EQ(Run({"help"}), 0);
  EXPECT_NE(out_.str().find("pclean serve"), std::string::npos);
  EXPECT_NE(out_.str().find("--connect"), std::string::npos);
  EXPECT_NE(out_.str().find("--socket"), std::string::npos);
}

TEST_F(CliTest, UsageMentionsBudget) {
  EXPECT_EQ(Run({"help"}), 0);
  EXPECT_NE(out_.str().find("budget grant"), std::string::npos);
  EXPECT_NE(out_.str().find("--tenant"), std::string::npos);
}

TEST_F(CliTest, DeterministicGivenSeed) {
  ASSERT_EQ(Run({"privatize", "--input", csv_path_, "--output",
                 release_dir_ + "_a", "--p", "0.2", "--b", "5.0", "--seed",
                 "42"}),
            0);
  ASSERT_EQ(Run({"privatize", "--input", csv_path_, "--output",
                 release_dir_ + "_b", "--p", "0.2", "--b", "5.0", "--seed",
                 "42"}),
            0);
  std::ifstream a(release_dir_ + "_a/data.csv");
  std::ifstream b(release_dir_ + "_b/data.csv");
  std::stringstream sa, sb;
  sa << a.rdbuf();
  sb << b.rdbuf();
  EXPECT_EQ(sa.str(), sb.str());
}

}  // namespace
}  // namespace privateclean
