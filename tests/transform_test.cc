#include "cleaning/transform.h"

#include <gtest/gtest.h>

#include "table/domain.h"
#include "table/table_builder.h"

namespace privateclean {
namespace {

Schema TestSchema() {
  return *Schema::Make({Field::Discrete("major"),
                        Field::Discrete("campus"),
                        Field::Numerical("score", ValueType::kDouble)});
}

Table TestTable() {
  TableBuilder b(TestSchema());
  b.Row({Value("eecs"), Value("North"), Value(4.0)})
      .Row({Value("math"), Value("South"), Value(3.0)})
      .Row({Value("EECS"), Value("North"), Value(2.0)})
      .Row({Value::Null(), Value("South"), Value(1.0)});
  return *b.Finish();
}

TEST(ValueTransformTest, UppercasesValues) {
  Table t = TestTable();
  ValueTransform upper("major", [](const Value& v) {
    if (v.is_null()) return v;
    std::string s = v.AsString();
    for (char& c : s) c = static_cast<char>(std::toupper(c));
    return Value(s);
  });
  ASSERT_TRUE(upper.Apply(&t).ok());
  EXPECT_EQ(*t.GetValue(0, "major"), Value("EECS"));
  EXPECT_EQ(*t.GetValue(1, "major"), Value("MATH"));
  EXPECT_EQ(*t.GetValue(2, "major"), Value("EECS"));
  EXPECT_TRUE(t.GetValue(3, "major")->is_null());
}

TEST(ValueTransformTest, UdfCalledOncePerDistinctValue) {
  Table t = TestTable();
  int calls = 0;
  ValueTransform count("major", [&calls](const Value& v) {
    ++calls;
    return v;
  });
  ASSERT_TRUE(count.Apply(&t).ok());
  EXPECT_EQ(calls, 4);  // eecs, math, EECS, null.
}

TEST(ValueTransformTest, NullCanBeFilled) {
  Table t = TestTable();
  ValueTransform fill("major", [](const Value& v) {
    return v.is_null() ? Value("Undeclared") : v;
  });
  ASSERT_TRUE(fill.Apply(&t).ok());
  EXPECT_EQ(*t.GetValue(3, "major"), Value("Undeclared"));
}

TEST(ValueTransformTest, RejectsNumericalAttribute) {
  Table t = TestTable();
  ValueTransform bad("score", [](const Value& v) { return v; });
  Status st = bad.Apply(&t);
  EXPECT_TRUE(st.IsInvalidArgument());
}

TEST(ValueTransformTest, RejectsMissingAttribute) {
  Table t = TestTable();
  ValueTransform bad("nope", [](const Value& v) { return v; });
  EXPECT_FALSE(bad.Apply(&t).ok());
}

TEST(ValueTransformTest, RejectsNullTable) {
  ValueTransform vt("major", [](const Value& v) { return v; });
  EXPECT_TRUE(vt.Apply(nullptr).IsInvalidArgument());
}

TEST(ValueTransformTest, KindAndName) {
  ValueTransform vt("major", [](const Value& v) { return v; });
  EXPECT_EQ(vt.kind(), CleanerKind::kTransform);
  EXPECT_EQ(vt.name(), "transform(major)");
  EXPECT_FALSE(vt.extracted_attribute().has_value());
}

TEST(ProjectionTransformTest, RewritesTuples) {
  Table t = TestTable();
  // Normalize major to lowercase AND rename campus in one deterministic
  // per-tuple rewrite.
  ProjectionTransform pt(
      {"major", "campus"},
      [](const std::vector<Value>& tuple) {
        std::vector<Value> out = tuple;
        if (!out[0].is_null()) {
          std::string s = out[0].AsString();
          for (char& c : s) c = static_cast<char>(std::tolower(c));
          out[0] = Value(s);
        }
        if (out[1] == Value("North")) out[1] = Value("N");
        return out;
      });
  ASSERT_TRUE(pt.Apply(&t).ok());
  EXPECT_EQ(*t.GetValue(0, "major"), Value("eecs"));
  EXPECT_EQ(*t.GetValue(2, "major"), Value("eecs"));
  EXPECT_EQ(*t.GetValue(0, "campus"), Value("N"));
  EXPECT_EQ(*t.GetValue(1, "campus"), Value("South"));
}

TEST(ProjectionTransformTest, UdfCalledOncePerDistinctTuple) {
  Table t = TestTable();
  int calls = 0;
  ProjectionTransform pt({"major", "campus"},
                         [&calls](const std::vector<Value>& tuple) {
                           ++calls;
                           return tuple;
                         });
  ASSERT_TRUE(pt.Apply(&t).ok());
  EXPECT_EQ(calls, 4);  // All four tuples are distinct here.
}

TEST(ProjectionTransformTest, CachedTupleReuse) {
  Schema s = *Schema::Make({Field::Discrete("a"), Field::Discrete("b")});
  TableBuilder b(s);
  for (int i = 0; i < 10; ++i) b.Row({Value("x"), Value("y")});
  Table t = *b.Finish();
  int calls = 0;
  ProjectionTransform pt({"a", "b"},
                         [&calls](const std::vector<Value>& tuple) {
                           ++calls;
                           return tuple;
                         });
  ASSERT_TRUE(pt.Apply(&t).ok());
  EXPECT_EQ(calls, 1);
}

TEST(ProjectionTransformTest, RejectsArityChange) {
  Table t = TestTable();
  ProjectionTransform bad({"major", "campus"},
                          [](const std::vector<Value>& tuple) {
                            return std::vector<Value>{tuple[0]};
                          });
  EXPECT_TRUE(bad.Apply(&t).IsInvalidArgument());
}

TEST(ProjectionTransformTest, RejectsEmptyProjection) {
  Table t = TestTable();
  ProjectionTransform bad({}, [](const std::vector<Value>& tuple) {
    return tuple;
  });
  EXPECT_TRUE(bad.Apply(&t).IsInvalidArgument());
}

TEST(ProjectionTransformTest, RejectsNumericalInProjection) {
  Table t = TestTable();
  ProjectionTransform bad({"major", "score"},
                          [](const std::vector<Value>& tuple) {
                            return tuple;
                          });
  EXPECT_TRUE(bad.Apply(&t).IsInvalidArgument());
}

TEST(ProjectionTransformTest, Name) {
  ProjectionTransform pt({"a", "b"}, [](const std::vector<Value>& tuple) {
    return tuple;
  });
  EXPECT_EQ(pt.name(), "transform(a, b)");
}

}  // namespace
}  // namespace privateclean
