#include "privacy/randomized_response.h"

#include <gtest/gtest.h>

#include <unordered_map>

#include "common/random.h"

namespace privateclean {
namespace {

Column MakeColumn(const std::vector<Value>& values) {
  Column c = *Column::Make(ValueType::kString);
  for (const Value& v : values) {
    Status st = c.AppendValue(v);
    EXPECT_TRUE(st.ok());
  }
  return c;
}

TEST(RandomizedResponseTest, ZeroProbabilityIsIdentity) {
  Rng rng(1);
  Column c = MakeColumn({Value("a"), Value("b"), Value("a")});
  Domain d = Domain::FromValues({Value("a"), Value("b")});
  ASSERT_TRUE(ApplyRandomizedResponse(&c, d, 0.0, rng).ok());
  EXPECT_EQ(c.StringAt(0), "a");
  EXPECT_EQ(c.StringAt(1), "b");
  EXPECT_EQ(c.StringAt(2), "a");
}

TEST(RandomizedResponseTest, OutputStaysInDomain) {
  Rng rng(2);
  std::vector<Value> values;
  for (int i = 0; i < 500; ++i) {
    values.push_back(Value("v" + std::to_string(i % 7)));
  }
  Column c = MakeColumn(values);
  Domain d = Domain::FromValues(values);
  ASSERT_TRUE(ApplyRandomizedResponse(&c, d, 0.5, rng).ok());
  for (size_t r = 0; r < c.size(); ++r) {
    EXPECT_TRUE(d.Contains(c.ValueAt(r)));
  }
}

TEST(RandomizedResponseTest, RetentionRateMatchesTheory) {
  // A row keeps its value w.p. (1-p) + p/N.
  Rng rng(3);
  const double p = 0.4;
  const size_t n_domain = 10;
  const int rows = 50000;
  std::vector<Value> values;
  for (int i = 0; i < rows; ++i) {
    values.push_back(Value("v" + std::to_string(i % n_domain)));
  }
  Column c = MakeColumn(values);
  Domain d = Domain::FromValues(values);
  ASSERT_TRUE(ApplyRandomizedResponse(&c, d, p, rng).ok());
  int kept = 0;
  for (int r = 0; r < rows; ++r) {
    if (c.ValueAt(r) == values[static_cast<size_t>(r)]) ++kept;
  }
  double expected = (1.0 - p) + p / static_cast<double>(n_domain);
  EXPECT_NEAR(static_cast<double>(kept) / rows, expected, 0.01);
}

TEST(RandomizedResponseTest, FullRandomizationIsUniform) {
  Rng rng(5);
  const int rows = 30000;
  std::vector<Value> values(static_cast<size_t>(rows), Value("always_a"));
  values[0] = Value("b");
  values[1] = Value("c");
  Column c = MakeColumn(values);
  Domain d = Domain::FromValues(values);  // {always_a, b, c}
  ASSERT_TRUE(ApplyRandomizedResponse(&c, d, 1.0, rng).ok());
  std::unordered_map<std::string, int> counts;
  for (int r = 0; r < rows; ++r) counts[std::string(c.StringAt(r))]++;
  for (const auto& [value, count] : counts) {
    EXPECT_NEAR(static_cast<double>(count) / rows, 1.0 / 3.0, 0.02)
        << value;
  }
}

TEST(RandomizedResponseTest, NullIsAFirstClassDomainValue) {
  Rng rng(7);
  std::vector<Value> values;
  for (int i = 0; i < 2000; ++i) {
    values.push_back(i % 2 == 0 ? Value("a") : Value::Null());
  }
  Column c = MakeColumn(values);
  Domain d = Domain::FromValues(values);
  ASSERT_TRUE(ApplyRandomizedResponse(&c, d, 1.0, rng).ok());
  size_t nulls = c.null_count();
  EXPECT_GT(nulls, 800u);  // ~half the rows.
  EXPECT_LT(nulls, 1200u);
}

TEST(RandomizedResponseTest, RejectsBadInputs) {
  Rng rng(1);
  Column c = MakeColumn({Value("a")});
  Domain d = Domain::FromValues({Value("a")});
  EXPECT_TRUE(
      ApplyRandomizedResponse(nullptr, d, 0.1, rng).IsInvalidArgument());
  EXPECT_TRUE(ApplyRandomizedResponse(&c, d, -0.1, rng).IsInvalidArgument());
  EXPECT_TRUE(ApplyRandomizedResponse(&c, d, 1.1, rng).IsInvalidArgument());
  Domain empty = Domain::FromValues({});
  EXPECT_TRUE(
      ApplyRandomizedResponse(&c, empty, 0.1, rng).IsFailedPrecondition());
}

TEST(TransitionProbabilitiesTest, Formulas) {
  // p=0.25, l=10, N=25 (paper Example 4's setting).
  TransitionProbabilities t =
      *ComputeTransitionProbabilities(0.25, 10.0, 25.0);
  EXPECT_DOUBLE_EQ(t.true_positive, 0.75 + 0.25 * 10.0 / 25.0);
  EXPECT_DOUBLE_EQ(t.false_positive, 0.25 * 10.0 / 25.0);
  EXPECT_DOUBLE_EQ(t.true_negative, 0.75 + 0.25 * 15.0 / 25.0);
  EXPECT_DOUBLE_EQ(t.false_negative, 0.25 * 15.0 / 25.0);
}

TEST(TransitionProbabilitiesTest, RowsSumToOne) {
  for (double p : {0.0, 0.1, 0.5, 1.0}) {
    for (double l : {0.0, 1.0, 5.0, 10.0}) {
      TransitionProbabilities t =
          *ComputeTransitionProbabilities(p, l, 10.0);
      EXPECT_NEAR(t.true_positive + t.false_negative, 1.0, 1e-12);
      EXPECT_NEAR(t.true_negative + t.false_positive, 1.0, 1e-12);
    }
  }
}

TEST(TransitionProbabilitiesTest, TauGapIsOneMinusP) {
  for (double p : {0.0, 0.25, 0.7}) {
    TransitionProbabilities t = *ComputeTransitionProbabilities(p, 3.0, 8.0);
    EXPECT_NEAR(t.true_positive - t.false_positive, 1.0 - p, 1e-12);
  }
}

TEST(TransitionProbabilitiesTest, FractionalSelectivityAllowed) {
  // Weighted provenance cuts produce fractional l (§7.2).
  EXPECT_TRUE(ComputeTransitionProbabilities(0.1, 2.5, 10.0).ok());
}

TEST(TransitionProbabilitiesTest, RejectsBadInputs) {
  EXPECT_FALSE(ComputeTransitionProbabilities(-0.1, 1.0, 10.0).ok());
  EXPECT_FALSE(ComputeTransitionProbabilities(1.1, 1.0, 10.0).ok());
  EXPECT_FALSE(ComputeTransitionProbabilities(0.1, -1.0, 10.0).ok());
  EXPECT_FALSE(ComputeTransitionProbabilities(0.1, 11.0, 10.0).ok());
  EXPECT_FALSE(ComputeTransitionProbabilities(0.1, 1.0, 0.0).ok());
}

TEST(RandomizedResponseTest, DeterministicGivenSeed) {
  std::vector<Value> values;
  for (int i = 0; i < 100; ++i) {
    values.push_back(Value("v" + std::to_string(i % 5)));
  }
  Domain d = Domain::FromValues(values);
  Column c1 = MakeColumn(values), c2 = MakeColumn(values);
  Rng rng1(42), rng2(42);
  ASSERT_TRUE(ApplyRandomizedResponse(&c1, d, 0.3, rng1).ok());
  ASSERT_TRUE(ApplyRandomizedResponse(&c2, d, 0.3, rng2).ok());
  for (size_t r = 0; r < c1.size(); ++r) {
    EXPECT_EQ(c1.ValueAt(r), c2.ValueAt(r));
  }
}

}  // namespace
}  // namespace privateclean
