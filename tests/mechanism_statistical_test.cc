// Statistical acceptance suite for the mechanism zoo (`ctest -L
// statistical`): empirical confusion matrices against the analytic
// matrices (chi-squared), Monte-Carlo unbiasedness and variance of the
// count estimator under every family, the arXiv 2112.07397 utility-bound
// identities, and a Kolmogorov–Smirnov check of the Laplace numeric path
// through the interface.
//
// Every test draws from a fixed seed, so each run is deterministic: a
// threshold either always passes or always fails for a given build. The
// thresholds are still sized as if the seeds were redrawn, so a passing
// seed is overwhelmingly likely to stay passing across benign numeric
// changes:
//   - chi-squared acceptance at the 0.999 quantile  -> ~0.1% per statistic
//   - unbiasedness within 4 sigma of the trial mean -> ~0.006% per check
//   - empirical/analytic variance ratio in [0.6, 1.6] with 200 trials
//   - KS acceptance at alpha = 0.001 (1.949/sqrt(n))
// A fresh-seed run of the whole file has a false-positive rate well under
// 1%; with the checked-in seeds it has zero flake by construction.

#include <cmath>
#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/statistics.h"
#include "core/estimators.h"
#include "privacy/mechanism.h"
#include "privacy/privacy_params.h"
#include "query/aggregate.h"
#include "table/column.h"
#include "table/domain.h"

namespace privateclean {
namespace {

struct NamedMechanism {
  std::string label;
  MechanismPtr mechanism;
};

// One representative configuration per family, moderate privacy so both
// kept and replaced rows are plentiful.
std::vector<NamedMechanism> ZooConfigurations() {
  return {
      {"grr(p=0.4)", *MakeMechanism(MechanismSpec{}, 0.4)},
      {"hlm(eps=1.2)", *MakeMechanism(MechanismSpec{"hlm", {}}, 1.2)},
      {"sampling(p0=0.3,beta=0.6)",
       *MakeMechanism(MechanismSpec{"sampling", {{"beta", 0.6}}}, 0.3)},
  };
}

Domain IntDomain(size_t n) {
  std::vector<Value> values;
  for (size_t i = 0; i < n; ++i) {
    values.push_back(Value(static_cast<int64_t>(i)));
  }
  return Domain::FromValues(values);
}

// Perturbs a copy of `input` in one shard with a fresh Rng(seed).
Column Perturb(const Mechanism& mechanism, const Column& input,
               const Domain& domain, uint64_t seed) {
  Column column = input;
  Rng rng(seed);
  Status s = mechanism.PerturbShard(&column, domain, rng, 0, column.size(),
                                    nullptr, nullptr, nullptr);
  EXPECT_TRUE(s.ok()) << s.message();
  column.RecomputeNullCount();
  return column;
}

// For every family and a couple of true values, randomize many copies of
// that value and chi-squared-test the empirical output histogram against
// the analytic confusion-matrix row.
TEST(MechanismStatisticalTest, EmpiricalConfusionMatrixMatchesAnalytic) {
  const size_t n = 5;
  const size_t rows = 40000;
  const Domain domain = IntDomain(n);
  const double threshold = *ChiSquaredQuantile(n - 1, 0.999);

  uint64_t seed = 1001;
  for (const NamedMechanism& zoo : ZooConfigurations()) {
    ConfusionMatrix confusion = *zoo.mechanism->Confusion(n);
    for (size_t true_value : {size_t{0}, size_t{3}}) {
      Column input = *Column::Make(ValueType::kInt64);
      for (size_t r = 0; r < rows; ++r) {
        input.AppendInt64(static_cast<int64_t>(true_value));
      }
      Column output = Perturb(*zoo.mechanism, input, domain, seed++);

      std::vector<double> observed(n, 0.0);
      for (size_t r = 0; r < rows; ++r) {
        observed[static_cast<size_t>(output.ValueAt(r).AsInt64())] += 1.0;
      }
      std::vector<double> expected(n);
      for (size_t j = 0; j < n; ++j) {
        expected[j] =
            static_cast<double>(rows) * confusion.At(true_value, j);
      }
      double stat = *ChiSquaredStatistic(observed, expected);
      EXPECT_LT(stat, threshold)
          << zoo.label << " true value " << true_value;
    }
  }
}

// Monte Carlo over full randomize-then-estimate trials: the corrected
// COUNT estimate must be unbiased under every family (mean within 4
// sigma of the ground truth), and its empirical variance must track the
// analytic CLT variance
//   Var(c_hat) = [c tau_p(1-tau_p) + (S-c) tau_n(1-tau_n)] / (tau_p-tau_n)^2,
// whose 1/(tau_p - tau_n)^2 = 1/(d - q)^2 scale is the utility currency
// of arXiv 2112.07397.
TEST(MechanismStatisticalTest, CountEstimatorUnbiasedWithCltVariance) {
  const size_t n = 8;
  const size_t rows = 3000;
  const size_t trials = 200;
  const Domain domain = IntDomain(n);

  Column base = *Column::Make(ValueType::kInt64);
  for (size_t r = 0; r < rows; ++r) {
    base.AppendInt64(static_cast<int64_t>(r % n));
  }
  const double truth = static_cast<double>(rows / n);  // count of value 0

  uint64_t seed = 20001;
  for (const NamedMechanism& zoo : ZooConfigurations()) {
    EstimationInputs in;
    in.mechanism = zoo.mechanism;
    in.p = *zoo.mechanism->ReplacementProbability(n);
    in.l = 1.0;
    in.n = static_cast<double>(n);

    std::vector<double> estimates;
    estimates.reserve(trials);
    for (size_t t = 0; t < trials; ++t) {
      Column output = Perturb(*zoo.mechanism, base, domain, seed++);
      QueryScanStats stats;
      stats.total_rows = rows;
      for (size_t r = 0; r < rows; ++r) {
        if (output.ValueAt(r).AsInt64() == 0) ++stats.matching_rows;
      }
      estimates.push_back(EstimateCount(stats, in)->estimate);
    }

    const double mean = *Mean(estimates);
    const double variance = *SampleVariance(estimates);
    TransitionProbabilities tau = *zoo.mechanism->Transitions(1.0, n);
    const double tp = tau.true_positive;
    const double fp = tau.false_positive;
    const double analytic_variance =
        (truth * tp * (1.0 - tp) + (rows - truth) * fp * (1.0 - fp)) /
        ((tp - fp) * (tp - fp));

    // 4-sigma band around the Monte-Carlo mean.
    const double band =
        4.0 * std::sqrt(analytic_variance / static_cast<double>(trials));
    EXPECT_NEAR(mean, truth, band) << zoo.label;
    // Sample variance of 200 trials concentrates within ~±35%; the
    // [0.6, 1.6] ratio window is ~4 sigma wide for chi-squared_{199}.
    EXPECT_GT(variance, 0.6 * analytic_variance) << zoo.label;
    EXPECT_LT(variance, 1.6 * analytic_variance) << zoo.label;
  }
}

// arXiv 2112.07397: an eps-LDP mechanism on an N-value domain satisfies
// d - q <= (e^eps - 1)/(e^eps + N - 1), where d and q are the diagonal
// and off-diagonal retention probabilities. Every diagonal-constant
// mechanism attains the bound with equality at its *exact* epsilon
// ln(d/q) — an identity the whole zoo must satisfy.
TEST(MechanismStatisticalTest, UtilityBoundAttainedWithEqualityAtExactEps) {
  for (const NamedMechanism& zoo : ZooConfigurations()) {
    for (size_t n : {4u, 10u}) {
      ConfusionMatrix c = *zoo.mechanism->Confusion(n);
      const double exact_eps = *EpsilonFromConfusionMatrix(c.Dense());
      const double bound = std::expm1(exact_eps) /
                           (std::exp(exact_eps) + static_cast<double>(n) -
                            1.0);
      EXPECT_NEAR(c.diagonal - c.off_diagonal, bound, 1e-10)
          << zoo.label << " n=" << n;
    }
  }
}

// Calibration cross-check: hlm realizes its target epsilon exactly at
// every domain size, while grr's paper inversion p = 3/(e^eps + 2) only
// lands on the target at N == 3 — it over-spends (exact eps above
// target) for N > 3 and under-spends for N == 2. This quantifies why the
// hlm family exists.
TEST(MechanismStatisticalTest, HlmCalibratesExactlyGrrPaperInversionDoesNot) {
  const double target = 1.0;

  MechanismPtr hlm = *MakeMechanism(MechanismSpec{"hlm", {}}, target);
  for (size_t n : {2u, 3u, 8u, 32u}) {
    ConfusionMatrix c = *hlm->Confusion(n);
    EXPECT_NEAR(*EpsilonFromConfusionMatrix(c.Dense()), target, 1e-9)
        << "hlm n=" << n;
  }

  const double p = *RandomizationForEpsilon(target);
  MechanismPtr grr = *MakeMechanism(MechanismSpec{}, p);
  auto exact_eps = [&](size_t n) {
    return *EpsilonFromConfusionMatrix((*grr->Confusion(n)).Dense());
  };
  EXPECT_NEAR(exact_eps(3), target, 1e-9);
  EXPECT_GT(exact_eps(8), target + 0.1);
  EXPECT_GT(exact_eps(32), exact_eps(8));
  EXPECT_LT(exact_eps(2), target - 0.1);
}

// The sampling family's exact epsilon never exceeds the subsampling
// amplification bound ln(1 + beta(e^{eps0} - 1)) over a parameter grid,
// with equality when beta == 1 (no subsampling).
TEST(MechanismStatisticalTest, SamplingExactEpsilonWithinAmplificationBound) {
  for (double beta : {0.25, 0.5, 0.9, 1.0}) {
    for (double p0 : {0.1, 0.3, 0.7}) {
      for (size_t n : {4u, 16u}) {
        MechanismPtr m =
            *MakeMechanism(MechanismSpec{"sampling", {{"beta", beta}}}, p0);
        const double nd = static_cast<double>(n);
        const double inner_eps = std::log(nd / p0 - nd + 1.0);
        const double bound = *SamplingAmplifiedEpsilon(inner_eps, beta);
        const double exact = *m->Epsilon(n);
        EXPECT_LE(exact, bound + 1e-12)
            << "beta=" << beta << " p0=" << p0 << " n=" << n;
        if (beta == 1.0) {
          EXPECT_NEAR(exact, bound, 1e-12) << "p0=" << p0 << " n=" << n;
        }
      }
    }
  }
}

// The numeric path of the interface: noise from NoiseNumericShard must
// be Laplace(0, b) under every family (all three inherit the default
// Laplace kernel today; the KS test pins the contract, not the sharing).
TEST(MechanismStatisticalTest, NumericNoiseIsLaplaceUnderEveryFamily) {
  const size_t rows = 5000;
  const double b = 2.0;
  auto laplace_cdf = [b](double x) {
    return x < 0.0 ? 0.5 * std::exp(x / b) : 1.0 - 0.5 * std::exp(-x / b);
  };
  // Asymptotic KS critical value at alpha = 0.001.
  const double critical = 1.949 / std::sqrt(static_cast<double>(rows));

  uint64_t seed = 30001;
  for (const NamedMechanism& zoo : ZooConfigurations()) {
    Column column = *Column::Make(ValueType::kDouble);
    for (size_t r = 0; r < rows; ++r) column.AppendDouble(0.0);
    Rng rng(seed++);
    ASSERT_TRUE(zoo.mechanism
                    ->NoiseNumericShard(&column, b, rng, 0, column.size())
                    .ok())
        << zoo.label;
    std::vector<double> samples;
    samples.reserve(rows);
    for (size_t r = 0; r < rows; ++r) {
      samples.push_back(column.ValueAt(r).AsDouble());
    }
    double ks = *KolmogorovSmirnovStatistic(std::move(samples), laplace_cdf);
    EXPECT_LT(ks, critical) << zoo.label;
  }
}

}  // namespace
}  // namespace privateclean
