// Failpoint torture: every catalogued injection site is fired one at a
// time — and in randomized combinations — against the release write,
// overwrite, and read paths. The durability contract under ANY injected
// fault: each operation either succeeds or fails with a typed Status,
// and a successful read always returns the exact written relation.
// Crashes and silently-wrong data are the only failures.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <filesystem>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "common/random.h"
#include "core/release.h"
#include "privacy/ledger.h"
#include "query/predicate.h"
#include "server/client.h"
#include "server/server.h"
#include "table/table_builder.h"

namespace privateclean {
namespace {

/// The closed set of codes a release operation may fail with; anything
/// else (or a crash) breaks the durability contract.
bool IsTypedReleaseError(const Status& st) {
  return st.IsDataLoss() || st.IsNotFound() || st.IsIOError() ||
         st.IsFailedPrecondition() || st.IsAlreadyExists();
}

GrrOutput MakeGrr(uint64_t seed, size_t rows) {
  Schema s = *Schema::Make(
      {Field::Discrete("city"),
       Field{"grade", ValueType::kInt64, AttributeKind::kDiscrete},
       Field::Numerical("income", ValueType::kDouble)});
  TableBuilder b(s);
  const char* cities[] = {"Berkeley", "Chicago, IL", "Qui\"to", "Oslo"};
  for (size_t i = 0; i < rows; ++i) {
    Value city = (i % 13 == 0) ? Value::Null()
                               : Value(cities[i % 4]);
    b.Row({city, Value(static_cast<int64_t>(i % 6)),
           Value(static_cast<double>(i % 9))});
  }
  Table t = *b.Finish();
  Rng rng(seed);
  return *ApplyGrr(t, GrrParams::Uniform(0.25, 1.2), GrrOptions{}, rng);
}

bool TablesEqual(const Table& a, const Table& b) {
  if (!(a.schema() == b.schema()) || a.num_rows() != b.num_rows()) {
    return false;
  }
  for (size_t r = 0; r < a.num_rows(); ++r) {
    for (size_t c = 0; c < a.num_columns(); ++c) {
      if (!(a.column(c).ValueAt(r) == b.column(c).ValueAt(r))) return false;
    }
  }
  return true;
}

class FailpointTortureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(failpoint::CompiledIn())
        << "torture requires -DPCLEAN_FAILPOINTS=ON";
    failpoint::DeactivateAll();
    base_ = ::testing::TempDir() + "/pclean_torture_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(base_);
    std::filesystem::create_directories(base_);
  }
  void TearDown() override {
    failpoint::DeactivateAll();
    std::filesystem::remove_all(base_);
  }

  std::string base_;
};

TEST_F(FailpointTortureTest, EverySiteOneAtATimeOnFreshWrite) {
  GrrOutput grr = MakeGrr(11, 120);
  int site_index = 0;
  for (const std::string& site : failpoint::Sites()) {
    SCOPED_TRACE("site " + site);
    const std::string dir = base_ + "/w" + std::to_string(site_index++);
    ASSERT_TRUE(
        failpoint::Activate(site, failpoint::DefaultFault(site)).ok());
    Status write = WriteRelease(grr, dir);
    failpoint::DeactivateAll();
    if (!write.ok()) {
      EXPECT_TRUE(IsTypedReleaseError(write)) << write.ToString();
      // The failed write must not have published a half-written release:
      // a subsequent read is a typed error or a fully intact release
      // (e.g. the fault hit only the post-commit directory sync).
      auto read = ReadRelease(dir);
      if (read.ok()) {
        EXPECT_TRUE(TablesEqual(read->relation, grr.table));
      } else {
        EXPECT_TRUE(IsTypedReleaseError(read.status()))
            << read.status().ToString();
      }
    } else {
      // The write reported success. If the fault silently damaged the
      // bytes (short write), the checksummed read must catch it — an OK
      // read with wrong data is the one unacceptable outcome.
      auto read = ReadRelease(dir);
      if (read.ok()) {
        EXPECT_TRUE(TablesEqual(read->relation, grr.table));
        EXPECT_TRUE(read->verified);
      } else {
        EXPECT_TRUE(read.status().IsDataLoss()) << read.status().ToString();
      }
    }
  }
}

TEST_F(FailpointTortureTest, EverySiteOneAtATimeOnOverwrite) {
  // Old (150 rows) and new (200 rows) releases are distinguishable by
  // size; after a faulted overwrite the directory must hold exactly one
  // of them intact — or read as a typed error — never a blend.
  GrrOutput old_grr = MakeGrr(21, 150);
  GrrOutput new_grr = MakeGrr(22, 200);
  int site_index = 0;
  for (const std::string& site : failpoint::Sites()) {
    SCOPED_TRACE("site " + site);
    const std::string dir = base_ + "/o" + std::to_string(site_index++);
    ASSERT_TRUE(WriteRelease(old_grr, dir).ok());
    ASSERT_TRUE(
        failpoint::Activate(site, failpoint::DefaultFault(site)).ok());
    Status write = WriteRelease(new_grr, dir);
    failpoint::DeactivateAll();
    EXPECT_TRUE(write.ok() || IsTypedReleaseError(write))
        << write.ToString();
    auto read = ReadRelease(dir);
    if (read.ok()) {
      EXPECT_TRUE(TablesEqual(read->relation, old_grr.table) ||
                  TablesEqual(read->relation, new_grr.table))
          << "overwrite under '" << site
          << "' left a relation that matches neither the old nor the "
             "new release";
    } else {
      EXPECT_TRUE(IsTypedReleaseError(read.status()))
          << read.status().ToString();
    }
  }
}

TEST_F(FailpointTortureTest, EverySiteOneAtATimeOnRead) {
  GrrOutput grr = MakeGrr(31, 130);
  const std::string dir = base_ + "/r";
  ASSERT_TRUE(WriteRelease(grr, dir).ok());
  for (const std::string& site : failpoint::Sites()) {
    SCOPED_TRACE("site " + site);
    ASSERT_TRUE(
        failpoint::Activate(site, failpoint::DefaultFault(site)).ok());
    auto read = ReadRelease(dir);
    failpoint::DeactivateAll();
    if (read.ok()) {
      EXPECT_TRUE(TablesEqual(read->relation, grr.table));
    } else {
      EXPECT_TRUE(IsTypedReleaseError(read.status()))
          << read.status().ToString();
    }
    // The release on disk is untouched by read faults: a clean read
    // must still verify.
    auto clean = ReadRelease(dir);
    ASSERT_TRUE(clean.ok()) << clean.status().ToString();
    EXPECT_TRUE(clean->verified);
    EXPECT_TRUE(TablesEqual(clean->relation, grr.table));
  }
}

TEST_F(FailpointTortureTest, TransientReadFaultsAreRetriedToSuccess) {
  GrrOutput grr = MakeGrr(41, 90);
  const std::string dir = base_ + "/retry";
  ASSERT_TRUE(WriteRelease(grr, dir).ok());
  // Two failures per read attempt budget of four: every file read
  // inside ReadRelease must recover via the retry loop.
  failpoint::Fault fault;
  fault.remaining = 2;
  ASSERT_TRUE(failpoint::Activate("io.read.transient", fault).ok());
  auto read = ReadRelease(dir);
  failpoint::DeactivateAll();
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_TRUE(read->verified);
  EXPECT_TRUE(TablesEqual(read->relation, grr.table));
}

TEST_F(FailpointTortureTest, RandomizedFaultCombinations) {
  GrrOutput grr = MakeGrr(51, 110);
  Rng rng(0xF417);
  const auto& sites = failpoint::Sites();
  for (int trial = 0; trial < 40; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));
    const std::string dir = base_ + "/c" + std::to_string(trial);
    // 1-3 distinct sites, each firing a bounded number of times so some
    // trials fail early, some mid-commit, and some recover entirely.
    size_t picks = 1 + rng.UniformInt(3);
    for (size_t i = 0; i < picks; ++i) {
      const std::string& site = sites[rng.UniformInt(sites.size())];
      failpoint::Fault fault = failpoint::DefaultFault(site);
      fault.remaining = 1 + static_cast<int>(rng.UniformInt(3));
      ASSERT_TRUE(failpoint::Activate(site, fault).ok());
    }
    Status write = WriteRelease(grr, dir);
    EXPECT_TRUE(write.ok() || IsTypedReleaseError(write))
        << write.ToString();
    // Read with the surviving faults still active, then clean.
    auto faulted_read = ReadRelease(dir);
    if (faulted_read.ok()) {
      EXPECT_TRUE(TablesEqual(faulted_read->relation, grr.table));
    } else {
      EXPECT_TRUE(IsTypedReleaseError(faulted_read.status()))
          << faulted_read.status().ToString();
    }
    failpoint::DeactivateAll();
    auto read = ReadRelease(dir);
    if (read.ok()) {
      EXPECT_TRUE(TablesEqual(read->relation, grr.table));
    } else {
      EXPECT_TRUE(IsTypedReleaseError(read.status()))
          << read.status().ToString();
    }
  }
}

TEST_F(FailpointTortureTest, EverySiteOneAtATimeOnOpenAndQuery) {
  // The query/provenance read-path sites: open the release into a
  // PrivateTable and run a Count (which scans with a predicate and
  // lazily builds the provenance graph) under each catalogued fault.
  // Every outcome must be a typed error or a successful, sane estimate.
  GrrOutput grr = MakeGrr(71, 100);
  const std::string dir = base_ + "/q";
  ASSERT_TRUE(WriteRelease(grr, dir).ok());
  const Predicate pred = Predicate::In("city", {Value("Berkeley")});
  for (const std::string& site : failpoint::Sites()) {
    SCOPED_TRACE("site " + site);
    ASSERT_TRUE(
        failpoint::Activate(site, failpoint::DefaultFault(site)).ok());
    auto table = OpenRelease(dir);
    if (!table.ok()) {
      failpoint::DeactivateAll();
      EXPECT_TRUE(IsTypedReleaseError(table.status()))
          << table.status().ToString();
      continue;
    }
    auto count = table->Count(pred);
    failpoint::DeactivateAll();
    if (count.ok()) {
      EXPECT_TRUE(std::isfinite(count->estimate)) << count->estimate;
    } else {
      EXPECT_TRUE(IsTypedReleaseError(count.status()) ||
                  count.status().IsInvalidArgument())
          << count.status().ToString();
    }
    // Faults never corrupt in-process state: the same open + query with
    // the registry clean must succeed.
    auto clean_table = OpenRelease(dir);
    ASSERT_TRUE(clean_table.ok()) << clean_table.status().ToString();
    auto clean_count = clean_table->Count(pred);
    ASSERT_TRUE(clean_count.ok()) << clean_count.status().ToString();
    EXPECT_TRUE(std::isfinite(clean_count->estimate));
  }
}

TEST_F(FailpointTortureTest, EveryCataloguedSiteSitsOnAnExercisedPath) {
  // A site that never counts a hit during a full write + overwrite +
  // read + open + query + verify cycle is dead instrumentation — the
  // torture above would silently stop covering it.
  GrrOutput grr = MakeGrr(61, 80);
  const std::string dir = base_ + "/cov";
  failpoint::ResetHits();
  ASSERT_TRUE(WriteRelease(grr, dir).ok());
  ASSERT_TRUE(WriteRelease(grr, dir).ok());  // swap path
  ASSERT_TRUE(ReadRelease(dir).ok());
  // Open + Count covers the analyst read path: release.open.relation,
  // query.scan.begin, and the lazy provenance.graph.build.
  auto table = OpenRelease(dir);
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  ASSERT_TRUE(table->Count(Predicate::In("city", {Value("Berkeley")})).ok());
  ASSERT_TRUE(VerifyRelease(dir).ok());
  // Ledger cycle: open + mutate (WAL commit sites) + checkpoint +
  // reopen over an existing WAL (recovery sites).
  const std::string ledger_dir = base_ + "/cov_ledger";
  {
    auto ledger = BudgetLedger::Open(ledger_dir);
    ASSERT_TRUE(ledger.ok()) << ledger.status().ToString();
    ASSERT_TRUE(ledger->Grant("alice", 2.0).ok());
    ASSERT_TRUE(ledger->Charge("alice", 0.5).ok());
    ASSERT_TRUE(ledger->Checkpoint().ok());
    ASSERT_TRUE(ledger->Grant("bob", 1.0).ok());  // leave a live WAL frame
  }
  ASSERT_TRUE(BudgetLedger::Open(ledger_dir).ok());
  // Serve cycle: accept one session (server.accept), exchange
  // HELLO/WELCOME frames (the shared WriteFrame/FrameReader code hits
  // server.frame.write.short and both read sites on each end), then
  // drain (server.drain). The socket lives directly under /tmp — gtest
  // temp paths can exceed sun_path's ~107-byte cap.
  {
    server::ServerOptions options;
    options.socket_path =
        "/tmp/pcsrv_cov_" + std::to_string(::getpid()) + ".sock";
    options.release_dirs = {dir};
    auto srv = server::Server::Start(options);
    ASSERT_TRUE(srv.ok()) << srv.status().ToString();
    auto client = server::Client::Connect(options.socket_path);
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    ASSERT_TRUE(client->Bye().ok());
    ASSERT_TRUE(srv->Drain().ok());
  }
  for (const std::string& site : failpoint::Sites()) {
    EXPECT_GT(failpoint::Hits(site), 0u)
        << "site '" << site
        << "' was never reached by write/overwrite/read/open/query/verify"
           "/ledger/serve";
  }
}

}  // namespace
}  // namespace privateclean
