// Unit tests for the pluggable mechanism interface (privacy/mechanism.h):
// spec validation and its typed-error taxonomy, parameter feasibility,
// the MANIFEST rendering round-trip, the closed-form confusion-matrix /
// transition / epsilon math per family — and the differential tests that
// pin the interface to the legacy kernel: the "grr" mechanism must
// reproduce the pre-interface RNG draw sequence byte-for-byte, and the
// new families must stay bit-identical across thread counts.

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/thread_pool.h"
#include "datagen/synthetic.h"
#include "privacy/grr.h"
#include "privacy/mechanism.h"
#include "privacy/privacy_params.h"
#include "privacy/randomized_response.h"
#include "table/column.h"
#include "table/domain.h"

namespace privateclean {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

MechanismSpec Grr() { return MechanismSpec{}; }
MechanismSpec Hlm() { return MechanismSpec{"hlm", {}}; }
MechanismSpec Sampling(double beta) {
  return MechanismSpec{"sampling", {{"beta", beta}}};
}

Domain IntDomain(size_t n) {
  std::vector<Value> values;
  for (size_t i = 0; i < n; ++i) {
    values.push_back(Value(static_cast<int64_t>(i)));
  }
  return Domain::FromValues(values);
}

Column IntColumn(size_t rows, size_t n) {
  Column column = *Column::Make(ValueType::kInt64);
  for (size_t r = 0; r < rows; ++r) {
    column.AppendInt64(static_cast<int64_t>(r % n));
  }
  return column;
}

// Runs a mechanism's full-column perturbation the way ApplyGrr does:
// one shard covering every row, null bookkeeping recomputed after.
Column Perturb(const Mechanism& mechanism, const Column& input,
               const Domain& domain, uint64_t seed) {
  Column column = input;
  Rng rng(seed);
  Status s = mechanism.PerturbShard(&column, domain, rng, 0, column.size(),
                                    nullptr, nullptr, nullptr);
  EXPECT_TRUE(s.ok()) << s.message();
  column.RecomputeNullCount();
  return column;
}

// --- Registry and spec validation -----------------------------------------

TEST(MechanismSpecTest, RegistryListsAllThreeFamilies) {
  EXPECT_TRUE(IsKnownMechanism("grr"));
  EXPECT_TRUE(IsKnownMechanism("hlm"));
  EXPECT_TRUE(IsKnownMechanism("sampling"));
  EXPECT_FALSE(IsKnownMechanism("rappor"));
  EXPECT_FALSE(IsKnownMechanism(""));
  const std::vector<std::string>& known = KnownMechanisms();
  ASSERT_EQ(known.size(), 3u);
  EXPECT_EQ(known[0], "grr");
  EXPECT_EQ(known[1], "hlm");
  EXPECT_EQ(known[2], "sampling");
}

TEST(MechanismSpecTest, UnknownNameIsFailedPrecondition) {
  MechanismSpec spec;
  spec.name = "rappor";
  Status s = ValidateMechanismSpec(spec);
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsFailedPrecondition()) << s.message();
  // The reader-side contract: the message names the stranger and what
  // this build does support.
  EXPECT_NE(s.message().find("rappor"), std::string::npos) << s.message();
  EXPECT_NE(s.message().find("grr"), std::string::npos) << s.message();
}

TEST(MechanismSpecTest, SamplingRequiresBetaInUnitInterval) {
  MechanismSpec no_beta;
  no_beta.name = "sampling";
  Status missing = ValidateMechanismSpec(no_beta);
  ASSERT_FALSE(missing.ok());
  EXPECT_TRUE(missing.IsInvalidArgument()) << missing.message();

  for (double bad : {0.0, -0.5, 1.5, kInf}) {
    Status s = ValidateMechanismSpec(Sampling(bad));
    ASSERT_FALSE(s.ok()) << "beta=" << bad;
    EXPECT_TRUE(s.IsInvalidArgument()) << s.message();
  }
  EXPECT_TRUE(ValidateMechanismSpec(Sampling(1.0)).ok());
  EXPECT_TRUE(ValidateMechanismSpec(Sampling(0.5)).ok());
}

TEST(MechanismSpecTest, UnknownParameterKeysAreRejected) {
  MechanismSpec grr_with_beta = Grr();
  grr_with_beta.params["beta"] = 0.5;
  Status s = ValidateMechanismSpec(grr_with_beta);
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument()) << s.message();

  MechanismSpec hlm_with_gamma = Hlm();
  hlm_with_gamma.params["gamma"] = 1.0;
  EXPECT_TRUE(ValidateMechanismSpec(hlm_with_gamma).IsInvalidArgument());

  MechanismSpec sampling_extra = Sampling(0.5);
  sampling_extra.params["gamma"] = 1.0;
  EXPECT_TRUE(ValidateMechanismSpec(sampling_extra).IsInvalidArgument());
}

TEST(MechanismSpecTest, MakeMechanismChecksParameterFeasibility) {
  for (double bad_p : {-0.1, 1.1}) {
    auto r = MakeMechanism(Grr(), bad_p);
    ASSERT_FALSE(r.ok()) << "p=" << bad_p;
    EXPECT_TRUE(r.status().IsInvalidArgument()) << r.status().message();
  }
  EXPECT_TRUE(MakeMechanism(Grr(), 0.0).ok());
  EXPECT_TRUE(MakeMechanism(Grr(), 1.0).ok());

  EXPECT_TRUE(MakeMechanism(Hlm(), -1.0).status().IsInvalidArgument());
  EXPECT_TRUE(MakeMechanism(Hlm(), kInf).status().IsInvalidArgument());
  EXPECT_TRUE(MakeMechanism(Hlm(), std::nan("")).status().IsInvalidArgument());
  EXPECT_TRUE(MakeMechanism(Hlm(), 0.0).ok());

  EXPECT_TRUE(MakeMechanism(Sampling(0.5), -0.1).status().IsInvalidArgument());
  EXPECT_TRUE(MakeMechanism(Sampling(0.5), 1.1).status().IsInvalidArgument());
  EXPECT_TRUE(MakeMechanism(Sampling(0.0), 0.5).status().IsInvalidArgument());
  EXPECT_TRUE(MakeMechanism(Sampling(0.5), 0.5).ok());

  MechanismSpec unknown;
  unknown.name = "staircase";
  EXPECT_TRUE(MakeMechanism(unknown, 0.5).status().IsFailedPrecondition());
}

TEST(MechanismSpecTest, RenderParseRoundTrip) {
  EXPECT_EQ(RenderMechanismSpec(Grr()), "grr");
  EXPECT_EQ(RenderMechanismSpec(Hlm()), "hlm");

  for (const MechanismSpec& spec :
       {Grr(), Hlm(), Sampling(0.5), Sampling(0.125), Sampling(1.0)}) {
    auto parsed = ParseMechanismSpec(RenderMechanismSpec(spec));
    ASSERT_TRUE(parsed.ok()) << parsed.status().message();
    EXPECT_EQ(parsed.ValueOrDie().name, spec.name);
    ASSERT_EQ(parsed.ValueOrDie().params.size(), spec.params.size());
    for (const auto& [key, value] : spec.params) {
      auto it = parsed.ValueOrDie().params.find(key);
      ASSERT_NE(it, parsed.ValueOrDie().params.end()) << key;
      EXPECT_EQ(it->second, value) << key;
    }
  }
}

TEST(MechanismSpecTest, ParseRejectsMalformedRenderings) {
  for (const char* bad : {"", "   ", "sampling beta", "sampling beta=",
                          "sampling beta=zebra", "sampling =0.5"}) {
    auto parsed = ParseMechanismSpec(bad);
    ASSERT_FALSE(parsed.ok()) << "'" << bad << "'";
    EXPECT_TRUE(parsed.status().IsInvalidArgument())
        << parsed.status().message();
  }
}

// --- Closed-form math per family ------------------------------------------

TEST(MechanismMathTest, GrrReplacementProbabilityIsTheStoredP) {
  MechanismPtr grr = *MakeMechanism(Grr(), 0.3);
  for (size_t n : {1u, 2u, 10u, 1000u}) {
    EXPECT_EQ(*grr->ReplacementProbability(n), 0.3) << n;
  }
}

TEST(MechanismMathTest, HlmReplacementProbabilityMatchesOptimalMatrix) {
  for (double epsilon : {0.5, 1.0, 2.0}) {
    MechanismPtr hlm = *MakeMechanism(Hlm(), epsilon);
    for (size_t n : {2u, 10u, 64u}) {
      const double nd = static_cast<double>(n);
      EXPECT_DOUBLE_EQ(*hlm->ReplacementProbability(n),
                       nd / (std::exp(epsilon) + nd - 1.0))
          << "eps=" << epsilon << " n=" << n;
    }
  }
  // More budget -> less randomization, at every domain size.
  MechanismPtr tight = *MakeMechanism(Hlm(), 0.5);
  MechanismPtr loose = *MakeMechanism(Hlm(), 3.0);
  EXPECT_GT(*tight->ReplacementProbability(10),
            *loose->ReplacementProbability(10));
}

TEST(MechanismMathTest, SamplingReplacementProbabilityCombinesBetaAndP0) {
  MechanismPtr m = *MakeMechanism(Sampling(0.5), 0.25);
  // p_eff = 1 - beta(1 - p0): rows leave the pool with probability 1-beta
  // (always replaced) or stay and get replaced with probability p0.
  EXPECT_DOUBLE_EQ(*m->ReplacementProbability(10), 1.0 - 0.5 * 0.75);
  // beta == 1 degenerates to the inner RR.
  MechanismPtr inner = *MakeMechanism(Sampling(1.0), 0.25);
  EXPECT_DOUBLE_EQ(*inner->ReplacementProbability(10), 0.25);
}

TEST(MechanismMathTest, EmptyDomainIsInvalidForEveryFamily) {
  for (const auto& [spec, param] :
       std::vector<std::pair<MechanismSpec, double>>{
           {Grr(), 0.3}, {Hlm(), 1.0}, {Sampling(0.5), 0.25}}) {
    MechanismPtr m = *MakeMechanism(spec, param);
    EXPECT_TRUE(m->ReplacementProbability(0).status().IsInvalidArgument())
        << spec.name;
    EXPECT_TRUE(m->Confusion(0).status().IsInvalidArgument()) << spec.name;
    EXPECT_TRUE(m->Epsilon(0).status().IsInvalidArgument()) << spec.name;
  }
}

TEST(MechanismMathTest, ConfusionMatrixRowsAreStochastic) {
  for (const auto& [spec, param] :
       std::vector<std::pair<MechanismSpec, double>>{
           {Grr(), 0.3}, {Hlm(), 1.5}, {Sampling(0.5), 0.25}}) {
    MechanismPtr m = *MakeMechanism(spec, param);
    for (size_t n : {2u, 7u}) {
      ConfusionMatrix c = *m->Confusion(n);
      ASSERT_EQ(c.n, n) << spec.name;
      EXPECT_NEAR(c.diagonal + (n - 1) * c.off_diagonal, 1.0, 1e-12)
          << spec.name;
      for (size_t i = 0; i < n; ++i) {
        double row_sum = 0.0;
        for (double x : c.Row(i)) row_sum += x;
        EXPECT_NEAR(row_sum, 1.0, 1e-12) << spec.name << " row " << i;
      }
      std::vector<std::vector<double>> dense = c.Dense();
      ASSERT_EQ(dense.size(), n);
      for (size_t i = 0; i < n; ++i) {
        for (size_t j = 0; j < n; ++j) {
          EXPECT_EQ(dense[i][j], c.At(i, j)) << i << "," << j;
        }
      }
    }
  }
}

TEST(MechanismMathTest, GrrTransitionsBitEqualToLegacyComputation) {
  MechanismPtr grr = *MakeMechanism(Grr(), 0.25);
  for (double l : {1.0, 3.0, 7.5}) {
    TransitionProbabilities via_mechanism = *grr->Transitions(l, 10.0);
    TransitionProbabilities legacy =
        *ComputeTransitionProbabilities(0.25, l, 10.0);
    // Bit-for-bit: the estimators must see the exact same inputs they saw
    // before the interface existed.
    EXPECT_EQ(via_mechanism.true_positive, legacy.true_positive) << l;
    EXPECT_EQ(via_mechanism.false_positive, legacy.false_positive) << l;
    EXPECT_EQ(via_mechanism.true_negative, legacy.true_negative) << l;
    EXPECT_EQ(via_mechanism.false_negative, legacy.false_negative) << l;
  }
}

TEST(MechanismMathTest, GrrEpsilonUsesThePaperFormula) {
  MechanismPtr grr = *MakeMechanism(Grr(), 0.5);
  EXPECT_DOUBLE_EQ(*grr->Epsilon(10), std::log(3.0 / 0.5 - 2.0));
  EXPECT_EQ(*grr->Epsilon(10), *EpsilonForRandomizedResponse(0.5));
  // p == 0 keeps every value: no privacy.
  EXPECT_EQ(*(*MakeMechanism(Grr(), 0.0))->Epsilon(10), kInf);
}

TEST(MechanismMathTest, HlmEpsilonIsTheTargetItCalibratesTo) {
  MechanismPtr hlm = *MakeMechanism(Hlm(), 1.7);
  for (size_t n : {2u, 10u, 100u}) {
    EXPECT_DOUBLE_EQ(*hlm->Epsilon(n), 1.7) << n;
  }
  // A single-value domain carries no information to leak.
  EXPECT_EQ(*hlm->Epsilon(1), 0.0);
}

TEST(MechanismMathTest, SamplingEpsilonIsExactAndBoundedByAmplification) {
  const double beta = 0.5;
  const double p0 = 0.25;
  const size_t n = 10;
  MechanismPtr m = *MakeMechanism(Sampling(beta), p0);
  ConfusionMatrix c = *m->Confusion(n);
  EXPECT_NEAR(*m->Epsilon(n), std::log(c.diagonal / c.off_diagonal), 1e-12);
  // The subsampling amplification theorem bounds the exact epsilon: the
  // inner RR(p0) spends eps0 = ln(n/p0 - n + 1) and a beta-subsample of
  // it is ln(1 + beta(e^{eps0} - 1))-LDP.
  const double inner_eps =
      std::log(static_cast<double>(n) / p0 - static_cast<double>(n) + 1.0);
  double bound = *SamplingAmplifiedEpsilon(inner_eps, beta);
  EXPECT_LE(*m->Epsilon(n), bound + 1e-12);

  // beta == 1, p0 == 0: nothing is ever replaced.
  EXPECT_EQ(*(*MakeMechanism(Sampling(1.0), 0.0))->Epsilon(n), kInf);
}

TEST(MechanismMathTest, SamplingAmplifiedEpsilonValidatesInputs) {
  EXPECT_TRUE(SamplingAmplifiedEpsilon(-0.5, 0.5).status().IsInvalidArgument());
  EXPECT_TRUE(SamplingAmplifiedEpsilon(1.0, 0.0).status().IsInvalidArgument());
  EXPECT_TRUE(SamplingAmplifiedEpsilon(1.0, 1.5).status().IsInvalidArgument());
  // beta == 1 is the identity: no amplification.
  EXPECT_DOUBLE_EQ(*SamplingAmplifiedEpsilon(1.0, 1.0), 1.0);
  // Amplification strictly helps for beta < 1.
  EXPECT_LT(*SamplingAmplifiedEpsilon(1.0, 0.25), 1.0);
}

// --- Differential draw-sequence tests (the legacy-compatibility proof) ----

// The "grr" mechanism routed through the interface must consume the RNG
// identically to the pre-interface kernel: same Bernoulli, same uniform
// draw, same order, for every row. Byte-identical output from the same
// seed is the strongest form of "the refactor changed nothing".
TEST(MechanismDrawSequenceTest, GrrMatchesLegacyKernelByteForByte) {
  const size_t n = 10;
  const Domain domain = IntDomain(n);
  const Column input = IntColumn(5000, n);
  MechanismPtr grr = *MakeMechanism(Grr(), 0.7);

  Column via_mechanism = Perturb(*grr, input, domain, 123);

  Column via_legacy = input;
  Rng rng(123);
  ASSERT_TRUE(ApplyRandomizedResponseShard(&via_legacy, domain, 0.7, rng, 0,
                                           via_legacy.size(), nullptr,
                                           nullptr, nullptr)
                  .ok());
  via_legacy.RecomputeNullCount();

  ASSERT_EQ(via_mechanism.size(), via_legacy.size());
  for (size_t r = 0; r < via_mechanism.size(); ++r) {
    ASSERT_TRUE(via_mechanism.ValueAt(r) == via_legacy.ValueAt(r))
        << "row " << r;
  }
}

// Same proof on the string fast path: the dictionary-code kernel must be
// reached through the interface with the identical draw sequence.
TEST(MechanismDrawSequenceTest, GrrMatchesLegacyKernelOnStringColumns) {
  std::vector<Value> values = {"ann", "bob", "cid", "dee", "eve"};
  const Domain domain = Domain::FromValues(values);
  Column input = *Column::Make(ValueType::kString);
  for (size_t r = 0; r < 4000; ++r) {
    ASSERT_TRUE(input.AppendValue(values[r % values.size()]).ok());
  }
  MechanismPtr grr = *MakeMechanism(Grr(), 0.4);

  Column via_mechanism = input;
  {
    std::vector<uint32_t> codes =
        *PrepareDomainCodes(&via_mechanism, domain);
    Rng rng(99);
    ASSERT_TRUE(grr->PerturbShard(&via_mechanism, domain, rng, 0,
                                  via_mechanism.size(), nullptr, nullptr,
                                  codes.data())
                    .ok());
    via_mechanism.RecomputeNullCount();
  }

  Column via_legacy = input;
  {
    Rng rng(99);
    ASSERT_TRUE(
        ApplyRandomizedResponse(&via_legacy, domain, 0.4, rng).ok());
  }

  for (size_t r = 0; r < via_mechanism.size(); ++r) {
    ASSERT_TRUE(via_mechanism.ValueAt(r) == via_legacy.ValueAt(r))
        << "row " << r;
  }
}

// A manual replay of the documented draw sequence — one Bernoulli(p) per
// row, one UniformInt(n) only on replacement — predicts every grr output
// value exactly. This pins the *sequence*, not just the distribution.
TEST(MechanismDrawSequenceTest, ManualReplayPredictsGrrOutput) {
  const size_t n = 10;
  const double p = 0.7;
  const Domain domain = IntDomain(n);
  const Column input = IntColumn(2000, n);
  MechanismPtr grr = *MakeMechanism(Grr(), p);

  Column output = Perturb(*grr, input, domain, 777);

  Rng replay(777);
  for (size_t r = 0; r < input.size(); ++r) {
    Value expected = input.ValueAt(r);
    if (replay.Bernoulli(p)) {
      expected = domain.value(static_cast<size_t>(replay.UniformInt(n)));
    }
    ASSERT_TRUE(output.ValueAt(r) == expected) << "row " << r;
  }
}

// hlm shares the grr kernel at its calibrated effective probability: the
// replay uses p_eff = n/(e^eps + n - 1) and must predict every value.
TEST(MechanismDrawSequenceTest, ManualReplayPredictsHlmOutput) {
  const size_t n = 10;
  const double epsilon = 1.5;
  const Domain domain = IntDomain(n);
  const Column input = IntColumn(2000, n);
  MechanismPtr hlm = *MakeMechanism(Hlm(), epsilon);
  const double p_eff = *hlm->ReplacementProbability(n);

  Column output = Perturb(*hlm, input, domain, 31337);

  Rng replay(31337);
  for (size_t r = 0; r < input.size(); ++r) {
    Value expected = input.ValueAt(r);
    if (replay.Bernoulli(p_eff)) {
      expected = domain.value(static_cast<size_t>(replay.UniformInt(n)));
    }
    ASSERT_TRUE(output.ValueAt(r) == expected) << "row " << r;
  }
}

// sampling has its own documented sequence: Bernoulli(beta) pool
// decision first, then the inner RR draws only for pooled rows.
TEST(MechanismDrawSequenceTest, ManualReplayPredictsSamplingOutput) {
  const size_t n = 10;
  const double beta = 0.6;
  const double p0 = 0.3;
  const Domain domain = IntDomain(n);
  const Column input = IntColumn(2000, n);
  MechanismPtr m = *MakeMechanism(Sampling(beta), p0);

  Column output = Perturb(*m, input, domain, 4242);

  Rng replay(4242);
  for (size_t r = 0; r < input.size(); ++r) {
    Value expected = input.ValueAt(r);
    if (!replay.Bernoulli(beta)) {
      expected = domain.value(static_cast<size_t>(replay.UniformInt(n)));
    } else if (replay.Bernoulli(p0)) {
      expected = domain.value(static_cast<size_t>(replay.UniformInt(n)));
    }
    ASSERT_TRUE(output.ValueAt(r) == expected) << "row " << r;
  }
}

// The legacy p == 0 short-circuit consumes no RNG draws; the interface
// must preserve that too (it shifts every later stream otherwise).
TEST(MechanismDrawSequenceTest, GrrZeroPConsumesNoDraws) {
  const Domain domain = IntDomain(5);
  Column column = IntColumn(100, 5);
  MechanismPtr grr = *MakeMechanism(Grr(), 0.0);
  Rng rng(55);
  ASSERT_TRUE(grr->PerturbShard(&column, domain, rng, 0, column.size(),
                                nullptr, nullptr, nullptr)
                  .ok());
  Rng fresh(55);
  EXPECT_EQ(rng.Next(), fresh.Next());
}

// --- Thread-count determinism for the new families ------------------------

const Table& DeterminismTable() {
  static const Table* table = [] {
    SyntheticOptions options;
    options.num_rows = 2 * kRowsPerShard + 1234;
    options.num_distinct = 30;
    Rng rng(7);
    return new Table(*GenerateSynthetic(options, rng));
  }();
  return *table;
}

void ExpectSameTables(const Table& a, const Table& b) {
  ASSERT_EQ(a.num_rows(), b.num_rows());
  for (size_t c = 0; c < a.num_columns(); ++c) {
    ASSERT_EQ(a.column(c).null_count(), b.column(c).null_count());
    for (size_t r = 0; r < a.num_rows(); ++r) {
      ASSERT_TRUE(a.column(c).ValueAt(r) == b.column(c).ValueAt(r))
          << "column " << c << " row " << r;
    }
  }
}

GrrOutput RandomizeAtThreads(const MechanismSpec& mechanism, double param,
                             size_t num_threads) {
  GrrOptions options;
  options.mechanism = mechanism;
  options.exec.num_threads = num_threads;
  Rng rng(42);
  return *ApplyGrr(DeterminismTable(), GrrParams::Uniform(param, 5.0),
                   options, rng);
}

TEST(MechanismDeterminismTest, HlmIdenticalAcrossThreadCounts) {
  GrrOutput one = RandomizeAtThreads(Hlm(), 1.5, 1);
  GrrOutput two = RandomizeAtThreads(Hlm(), 1.5, 2);
  GrrOutput eight = RandomizeAtThreads(Hlm(), 1.5, 8);
  ExpectSameTables(one.table, two.table);
  ExpectSameTables(one.table, eight.table);
}

TEST(MechanismDeterminismTest, SamplingIdenticalAcrossThreadCounts) {
  GrrOutput one = RandomizeAtThreads(Sampling(0.5), 0.25, 1);
  GrrOutput two = RandomizeAtThreads(Sampling(0.5), 0.25, 2);
  GrrOutput eight = RandomizeAtThreads(Sampling(0.5), 0.25, 8);
  ExpectSameTables(one.table, two.table);
  ExpectSameTables(one.table, eight.table);
}

}  // namespace
}  // namespace privateclean
