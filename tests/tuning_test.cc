#include "privacy/tuning.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/statistics.h"
#include "table/table_builder.h"

namespace privateclean {
namespace {

Table TestTable(size_t rows = 1000) {
  Schema s = *Schema::Make({Field::Discrete("d"),
                            Field::Numerical("x", ValueType::kDouble)});
  TableBuilder b(s);
  for (size_t i = 0; i < rows; ++i) {
    b.Row({Value("v" + std::to_string(i % 20)),
           Value(static_cast<double>(i % 101))});  // Range [0, 100].
  }
  return *b.Finish();
}

TEST(CountErrorBoundTest, Equation4) {
  // error < z/(1-p) * sqrt(1/(4S)).
  double z = *ZScoreForConfidence(0.95);
  EXPECT_NEAR(*CountErrorBound(0.5, 1000), z / 0.5 * std::sqrt(1.0 / 4000.0),
              1e-12);
}

TEST(CountErrorBoundTest, GrowsWithPrivacy) {
  double prev = *CountErrorBound(0.0, 1000);
  for (double p : {0.2, 0.5, 0.8, 0.95}) {
    double bound = *CountErrorBound(p, 1000);
    EXPECT_GT(bound, prev);
    prev = bound;
  }
}

TEST(CountErrorBoundTest, ShrinksWithData) {
  EXPECT_LT(*CountErrorBound(0.1, 100000), *CountErrorBound(0.1, 100));
}

TEST(CountErrorBoundTest, RejectsBadInputs) {
  EXPECT_FALSE(CountErrorBound(1.0, 1000).ok());
  EXPECT_FALSE(CountErrorBound(-0.1, 1000).ok());
  EXPECT_FALSE(CountErrorBound(0.1, 0).ok());
}

TEST(SumErrorBoundTest, Equation6) {
  double z = *ZScoreForConfidence(0.95);
  double mean = 50.0, var = 100.0, b = 10.0;
  size_t s = 1000;
  double expected =
      z / (1.0 - 0.1) *
      std::sqrt(mean / s + 4.0 * (var + 2.0 * b * b) / s);
  EXPECT_NEAR(*SumErrorBound(0.1, b, mean, var, s), expected, 1e-12);
}

TEST(SumErrorBoundTest, GrowsWithNoise) {
  EXPECT_GT(*SumErrorBound(0.1, 50.0, 10.0, 100.0, 1000),
            *SumErrorBound(0.1, 1.0, 10.0, 100.0, 1000));
}

TEST(SumErrorBoundTest, RejectsBadInputs) {
  EXPECT_FALSE(SumErrorBound(1.0, 1.0, 0.0, 1.0, 10).ok());
  EXPECT_FALSE(SumErrorBound(0.1, -1.0, 0.0, 1.0, 10).ok());
  EXPECT_FALSE(SumErrorBound(0.1, 1.0, 0.0, -1.0, 10).ok());
  EXPECT_FALSE(SumErrorBound(0.1, 1.0, 0.0, 1.0, 0).ok());
}

TEST(TuningTest, AppendixEStep1) {
  Table t = TestTable(1000);
  TuningResult tuning = *TunePrivacyParameters(t, 0.1, 0.95);
  double z = *ZScoreForConfidence(0.95);
  double expected_p = 1.0 - z * std::sqrt(1.0 / (4.0 * 1000.0 * 0.01));
  EXPECT_NEAR(tuning.p, expected_p, 1e-12);
  EXPECT_GT(tuning.p, 0.0);
  EXPECT_LT(tuning.p, 1.0);
}

TEST(TuningTest, AchievedBoundMatchesTarget) {
  Table t = TestTable(1000);
  const double target = 0.1;
  TuningResult tuning = *TunePrivacyParameters(t, target, 0.95);
  // Plugging the tuned p back into Eq. 4 must reproduce the target.
  EXPECT_NEAR(*CountErrorBound(tuning.p, t.num_rows()), target, 1e-9);
}

TEST(TuningTest, NumericScalesEqualizeEpsilon) {
  Table t = TestTable(1000);
  TuningResult tuning = *TunePrivacyParameters(t, 0.1, 0.95);
  ASSERT_EQ(tuning.numeric_b.size(), 1u);
  double b = tuning.numeric_b.at("x");
  // epsilon_numeric = delta/b should equal epsilon_discrete = ln(3/p-2).
  double eps_discrete = std::log(3.0 / tuning.p - 2.0);
  EXPECT_NEAR(100.0 / b, eps_discrete, 1e-9);
  EXPECT_NEAR(tuning.per_attribute_epsilon, eps_discrete, 1e-12);
}

TEST(TuningTest, UnattainableTargetRejected) {
  Table t = TestTable(100);  // 1/(2*sqrt(100)) = 0.05 floor at z=1.96.
  auto r = TunePrivacyParameters(t, 0.01, 0.95);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST(TuningTest, LooserTargetGivesMorePrivacy) {
  Table t = TestTable(10000);
  double p_loose = TunePrivacyParameters(t, 0.2, 0.95)->p;
  double p_tight = TunePrivacyParameters(t, 0.05, 0.95)->p;
  EXPECT_GT(p_loose, p_tight);  // Larger p = more randomization.
}

TEST(TuningTest, RejectsBadInputs) {
  Table t = TestTable(100);
  EXPECT_FALSE(TunePrivacyParameters(t, 0.0, 0.95).ok());
  EXPECT_FALSE(TunePrivacyParameters(t, -0.1, 0.95).ok());
  Schema s = *Schema::Make({Field::Discrete("d")});
  Table empty = *Table::MakeEmpty(s);
  EXPECT_FALSE(TunePrivacyParameters(empty, 0.1, 0.95).ok());
}

TEST(TuningTest, ToGrrParamsWiring) {
  Table t = TestTable(1000);
  TuningResult tuning = *TunePrivacyParameters(t, 0.1, 0.95);
  GrrParams params = ToGrrParams(tuning);
  EXPECT_DOUBLE_EQ(params.default_p, tuning.p);
  EXPECT_EQ(params.numeric_b.size(), 1u);
  EXPECT_DOUBLE_EQ(params.numeric_b.at("x"), tuning.numeric_b.at("x"));
}

}  // namespace
}  // namespace privateclean
