#include "core/estimators.h"

#include <gtest/gtest.h>

#include <cmath>

namespace privateclean {
namespace {

EstimationInputs Inputs(double p, double l, double n,
                        double confidence = 0.95) {
  EstimationInputs in;
  in.p = p;
  in.l = l;
  in.n = n;
  in.confidence = confidence;
  return in;
}

QueryScanStats Stats(size_t total, size_t matching, double sum_match = 0.0,
                     double sum_comp = 0.0, double mean = 0.0,
                     double var = 0.0) {
  QueryScanStats stats;
  stats.total_rows = total;
  stats.matching_rows = matching;
  stats.matching_sum = sum_match;
  stats.complement_sum = sum_comp;
  stats.numeric_mean = mean;
  stats.numeric_variance = var;
  return stats;
}

TEST(CountEstimatorTest, PaperExample4) {
  // p=0.25, N=25, l=10, S=500, private count 300 -> 333.33.
  QueryResult r = *EstimateCount(Stats(500, 300), Inputs(0.25, 10.0, 25.0));
  EXPECT_NEAR(r.estimate, 333.3333, 0.001);
  EXPECT_DOUBLE_EQ(r.nominal, 300.0);
  EXPECT_EQ(r.estimator, EstimatorKind::kPrivateClean);
}

TEST(CountEstimatorTest, Equation3ClosedForm) {
  // c_hat = (c_p - S*tau_n) / (1-p), tau_n = p*l/N.
  double p = 0.1, l = 5.0, n = 50.0;
  size_t s = 1000, c_p = 120;
  QueryResult r = *EstimateCount(Stats(s, c_p), Inputs(p, l, n));
  double tau_n = p * l / n;
  double expected = (c_p - s * tau_n) / (1.0 - p);
  EXPECT_NEAR(r.estimate, expected, 1e-9);
}

TEST(CountEstimatorTest, NoPrivacyIsIdentity) {
  QueryResult r = *EstimateCount(Stats(1000, 200), Inputs(0.0, 5.0, 50.0));
  EXPECT_DOUBLE_EQ(r.estimate, 200.0);
}

TEST(CountEstimatorTest, ZeroSelectivityPredicate) {
  // l = 0: tau_n = 0, estimate = c_p/(1-p).
  QueryResult r = *EstimateCount(Stats(1000, 30), Inputs(0.25, 0.0, 50.0));
  EXPECT_NEAR(r.estimate, 40.0, 1e-9);
}

TEST(CountEstimatorTest, CiContainsEstimateAndScalesWithConfidence) {
  QueryResult r95 =
      *EstimateCount(Stats(1000, 200), Inputs(0.2, 5.0, 50.0, 0.95));
  QueryResult r99 =
      *EstimateCount(Stats(1000, 200), Inputs(0.2, 5.0, 50.0, 0.99));
  EXPECT_TRUE(r95.ci.Contains(r95.estimate));
  EXPECT_GT(r99.ci.Width(), r95.ci.Width());
}

TEST(CountEstimatorTest, CiWidensWithPrivacy) {
  QueryResult lo = *EstimateCount(Stats(1000, 200), Inputs(0.1, 5.0, 50.0));
  QueryResult hi = *EstimateCount(Stats(1000, 200), Inputs(0.6, 5.0, 50.0));
  EXPECT_GT(hi.ci.Width(), lo.ci.Width());
}

TEST(CountEstimatorTest, NonDegenerateCiAtExtremeSelectivity) {
  // Observed selectivity exactly 0 or 1 used to produce a zero-width
  // interval (the plug-in binomial variance vanishes); the half-width
  // now floors s_p at half an observation, so residual uncertainty
  // survives.
  QueryResult none = *EstimateCount(Stats(1000, 0), Inputs(0.2, 5.0, 50.0));
  EXPECT_GT(none.ci.Width(), 0.0);
  EXPECT_TRUE(none.ci.Contains(none.estimate));
  QueryResult all =
      *EstimateCount(Stats(1000, 1000), Inputs(0.2, 5.0, 50.0));
  EXPECT_GT(all.ci.Width(), 0.0);
  EXPECT_TRUE(all.ci.Contains(all.estimate));
  // The clamp only engages at the extremes: an interior selectivity has
  // strictly more binomial variance, hence a wider interval.
  QueryResult mid = *EstimateCount(Stats(1000, 500), Inputs(0.2, 5.0, 50.0));
  EXPECT_GT(mid.ci.Width(), all.ci.Width());
}

TEST(CountEstimatorTest, DiagnosticsFilled) {
  QueryResult r = *EstimateCount(Stats(500, 300), Inputs(0.25, 10.0, 25.0));
  EXPECT_DOUBLE_EQ(r.p, 0.25);
  EXPECT_DOUBLE_EQ(r.l, 10.0);
  EXPECT_DOUBLE_EQ(r.n, 25.0);
  EXPECT_EQ(r.s, 500u);
}

TEST(CountEstimatorTest, RejectsInvalidInputs) {
  QueryScanStats stats = Stats(100, 10);
  EXPECT_FALSE(EstimateCount(stats, Inputs(1.0, 5.0, 50.0)).ok());
  EXPECT_FALSE(EstimateCount(stats, Inputs(-0.1, 5.0, 50.0)).ok());
  EXPECT_FALSE(EstimateCount(stats, Inputs(0.1, 60.0, 50.0)).ok());
  EXPECT_FALSE(EstimateCount(stats, Inputs(0.1, -1.0, 50.0)).ok());
  EXPECT_FALSE(EstimateCount(stats, Inputs(0.1, 5.0, 0.5)).ok());
  EXPECT_FALSE(EstimateCount(Stats(0, 0), Inputs(0.1, 5.0, 50.0)).ok());
  EstimationInputs bad_conf = Inputs(0.1, 5.0, 50.0, 1.0);
  EXPECT_FALSE(EstimateCount(stats, bad_conf).ok());
}

TEST(SumEstimatorTest, AppendixCClosedForm) {
  // c_true*mu_true = ((N - l p) h_p - l p h_p^c) / ((1-p) N).
  double p = 0.2, l = 4.0, n = 20.0;
  double h_p = 900.0, h_pc = 2100.0;
  QueryResult r =
      *EstimateSum(Stats(1000, 150, h_p, h_pc, 3.0, 1.0), Inputs(p, l, n));
  double expected =
      ((n - l * p) * h_p - l * p * h_pc) / ((1.0 - p) * n);
  EXPECT_NEAR(r.estimate, expected, 1e-9);
}

TEST(SumEstimatorTest, MatchesEquation5Form) {
  // ((1 - tau_n) h_p - tau_n h_p^c) / (tau_p - tau_n) must agree with the
  // Appendix C form.
  double p = 0.3, l = 7.0, n = 35.0;
  double tau_n = p * l / n;
  double h_p = 500.0, h_pc = 700.0;
  QueryResult r =
      *EstimateSum(Stats(800, 120, h_p, h_pc, 1.5, 4.0), Inputs(p, l, n));
  double eq5 = ((1.0 - tau_n) * h_p - tau_n * h_pc) / (1.0 - p);
  EXPECT_NEAR(r.estimate, eq5, 1e-9);
}

TEST(SumEstimatorTest, NoPrivacyIsIdentity) {
  QueryResult r = *EstimateSum(Stats(100, 20, 444.0, 555.0, 10.0, 5.0),
                               Inputs(0.0, 5.0, 50.0));
  EXPECT_DOUBLE_EQ(r.estimate, 444.0);
}

TEST(SumEstimatorTest, CiContainsEstimate) {
  QueryResult r = *EstimateSum(Stats(1000, 150, 900.0, 2100.0, 3.0, 1.0),
                               Inputs(0.2, 4.0, 20.0));
  EXPECT_TRUE(r.ci.Contains(r.estimate));
  EXPECT_GT(r.ci.Width(), 0.0);
}

TEST(AvgEstimatorTest, RatioOfSumAndCount) {
  QueryScanStats stats = Stats(1000, 250, 1000.0, 2000.0, 3.0, 1.0);
  EstimationInputs in = Inputs(0.1, 5.0, 50.0);
  QueryResult avg = *EstimateAvg(stats, in);
  QueryResult sum = *EstimateSum(stats, in);
  QueryResult count = *EstimateCount(stats, in);
  EXPECT_NEAR(avg.estimate, sum.estimate / count.estimate, 1e-12);
}

TEST(AvgEstimatorTest, CornerRatioInterval) {
  QueryScanStats stats = Stats(1000, 250, 1000.0, 2000.0, 3.0, 1.0);
  EstimationInputs in = Inputs(0.1, 5.0, 50.0);
  QueryResult avg = *EstimateAvg(stats, in);
  QueryResult sum = *EstimateSum(stats, in);
  QueryResult count = *EstimateCount(stats, in);
  EXPECT_NEAR(avg.ci.hi,
              std::max({sum.ci.hi / count.ci.lo, sum.ci.lo / count.ci.lo,
                        sum.ci.hi / count.ci.hi, sum.ci.lo / count.ci.hi}),
              1e-9);
  EXPECT_TRUE(avg.ci.Contains(avg.estimate));
}

TEST(AvgEstimatorTest, FailsWhenCountIntervalStraddlesZero) {
  // Tiny matching count with high privacy: the count CI includes zero.
  QueryScanStats stats = Stats(100, 2, 10.0, 500.0, 5.0, 2.0);
  EstimationInputs in = Inputs(0.5, 1.0, 50.0);
  auto r = EstimateAvg(stats, in);
  if (!r.ok()) {
    EXPECT_TRUE(r.status().IsFailedPrecondition());
  } else {
    // If it succeeded the interval must be sane.
    EXPECT_TRUE(r->ci.Contains(r->estimate));
  }
}

TEST(DirectEstimatorsTest, NominalPassThrough) {
  QueryScanStats stats = Stats(100, 25, 75.0, 300.0, 3.75, 2.0);
  EXPECT_DOUBLE_EQ(DirectCount(stats).estimate, 25.0);
  EXPECT_DOUBLE_EQ(DirectSum(stats).estimate, 75.0);
  EXPECT_DOUBLE_EQ(DirectAvg(stats)->estimate, 3.0);
  EXPECT_EQ(DirectCount(stats).estimator, EstimatorKind::kDirect);
}

TEST(DirectEstimatorsTest, AvgWithNoMatchesFails) {
  QueryScanStats stats = Stats(100, 0, 0.0, 300.0, 3.0, 2.0);
  EXPECT_TRUE(DirectAvg(stats).status().IsFailedPrecondition());
}

TEST(EstimationInputsTest, ValidateChecksAllFields) {
  EXPECT_TRUE(Inputs(0.1, 5.0, 50.0).Validate().ok());
  EXPECT_TRUE(Inputs(0.0, 0.0, 1.0).Validate().ok());
  EstimationInputs bad_b = Inputs(0.1, 5.0, 50.0);
  bad_b.b = -1.0;
  EXPECT_FALSE(bad_b.Validate().ok());
}

}  // namespace
}  // namespace privateclean
