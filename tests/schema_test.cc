#include "table/schema.h"

#include <gtest/gtest.h>

namespace privateclean {
namespace {

Schema TwoFieldSchema() {
  return *Schema::Make({Field::Discrete("major"),
                        Field::Numerical("score", ValueType::kDouble)});
}

TEST(FieldTest, Factories) {
  Field n = Field::Numerical("score");
  EXPECT_EQ(n.kind, AttributeKind::kNumerical);
  EXPECT_EQ(n.type, ValueType::kDouble);
  Field d = Field::Discrete("major");
  EXPECT_EQ(d.kind, AttributeKind::kDiscrete);
  EXPECT_EQ(d.type, ValueType::kString);
  Field ni = Field::Numerical("count", ValueType::kInt64);
  EXPECT_EQ(ni.type, ValueType::kInt64);
}

TEST(SchemaTest, MakeValid) {
  Schema s = TwoFieldSchema();
  EXPECT_EQ(s.num_fields(), 2u);
  EXPECT_EQ(s.field(0).name, "major");
  EXPECT_EQ(s.field(1).name, "score");
}

TEST(SchemaTest, RejectsDuplicateNames) {
  auto r = Schema::Make({Field::Discrete("x"), Field::Discrete("x")});
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsAlreadyExists());
}

TEST(SchemaTest, RejectsEmptyName) {
  EXPECT_FALSE(Schema::Make({Field::Discrete("")}).ok());
}

TEST(SchemaTest, RejectsNullType) {
  Field f{"x", ValueType::kNull, AttributeKind::kDiscrete};
  EXPECT_FALSE(Schema::Make({f}).ok());
}

TEST(SchemaTest, RejectsStringNumericalField) {
  Field f{"x", ValueType::kString, AttributeKind::kNumerical};
  auto r = Schema::Make({f});
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST(SchemaTest, DiscreteAttributeMayBeNumericTyped) {
  // The paper allows discrete attributes of any data type (e.g. section
  // numbers); only numerical attributes are type-restricted.
  Field f{"section", ValueType::kInt64, AttributeKind::kDiscrete};
  EXPECT_TRUE(Schema::Make({f}).ok());
}

TEST(SchemaTest, FieldLookup) {
  Schema s = TwoFieldSchema();
  EXPECT_EQ(*s.FieldIndex("score"), 1u);
  EXPECT_EQ(s.FieldByName("major")->kind, AttributeKind::kDiscrete);
  EXPECT_TRUE(s.HasField("major"));
  EXPECT_FALSE(s.HasField("nope"));
  EXPECT_TRUE(s.FieldIndex("nope").status().IsNotFound());
}

TEST(SchemaTest, KindIndices) {
  Schema s = *Schema::Make({Field::Discrete("a"), Field::Numerical("b"),
                            Field::Discrete("c"), Field::Numerical("d")});
  EXPECT_EQ(s.DiscreteIndices(), (std::vector<size_t>{0, 2}));
  EXPECT_EQ(s.NumericalIndices(), (std::vector<size_t>{1, 3}));
}

TEST(SchemaTest, AddField) {
  Schema s = TwoFieldSchema();
  auto extended = s.AddField(Field::Discrete("new_attr"));
  ASSERT_TRUE(extended.ok());
  EXPECT_EQ(extended->num_fields(), 3u);
  EXPECT_TRUE(extended->HasField("new_attr"));
  EXPECT_EQ(s.num_fields(), 2u);  // Original untouched.
}

TEST(SchemaTest, AddFieldRejectsDuplicate) {
  Schema s = TwoFieldSchema();
  EXPECT_FALSE(s.AddField(Field::Discrete("major")).ok());
}

TEST(SchemaTest, Equality) {
  EXPECT_EQ(TwoFieldSchema(), TwoFieldSchema());
  Schema other = *Schema::Make({Field::Discrete("major")});
  EXPECT_FALSE(TwoFieldSchema() == other);
}

TEST(SchemaTest, EmptySchemaIsValid) {
  auto r = Schema::Make({});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_fields(), 0u);
}

TEST(AttributeKindTest, Names) {
  EXPECT_STREQ(AttributeKindToString(AttributeKind::kNumerical),
               "numerical");
  EXPECT_STREQ(AttributeKindToString(AttributeKind::kDiscrete), "discrete");
}

}  // namespace
}  // namespace privateclean
