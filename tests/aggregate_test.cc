#include "query/aggregate.h"

#include <gtest/gtest.h>

#include <cmath>

#include "table/table_builder.h"

namespace privateclean {
namespace {

Schema TestSchema() {
  return *Schema::Make({Field::Discrete("major"),
                        Field::Numerical("score", ValueType::kDouble)});
}

Table TestTable() {
  TableBuilder b(TestSchema());
  b.Row({Value("EECS"), Value(4.0)})
      .Row({Value("Math"), Value(2.0)})
      .Row({Value("EECS"), Value(5.0)})
      .Row({Value("Math"), Value(3.0)})
      .Row({Value("EECS"), Value::Null()})
      .Row({Value("Bio"), Value(1.0)});
  return *b.Finish();
}

Predicate Eecs() { return Predicate::Equals("major", "EECS"); }

TEST(AggregateTest, CountNoPredicate) {
  EXPECT_DOUBLE_EQ(*ExecuteAggregate(TestTable(), AggregateQuery::Count()),
                   6.0);
}

TEST(AggregateTest, CountWithPredicate) {
  EXPECT_DOUBLE_EQ(
      *ExecuteAggregate(TestTable(), AggregateQuery::Count(Eecs())), 3.0);
}

TEST(AggregateTest, SumSkipsNulls) {
  EXPECT_DOUBLE_EQ(
      *ExecuteAggregate(TestTable(), AggregateQuery::Sum("score", Eecs())),
      9.0);
  EXPECT_DOUBLE_EQ(
      *ExecuteAggregate(TestTable(), AggregateQuery::Sum("score")), 15.0);
}

TEST(AggregateTest, AvgOverNonNullMatches) {
  EXPECT_DOUBLE_EQ(
      *ExecuteAggregate(TestTable(), AggregateQuery::Avg("score", Eecs())),
      4.5);
}

TEST(AggregateTest, AvgNoMatchesFails) {
  auto r = ExecuteAggregate(
      TestTable(),
      AggregateQuery::Avg("score", Predicate::Equals("major", "Absent")));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsFailedPrecondition());
}

TEST(AggregateTest, AvgZeroSelectedRowsIsTypedStatusNotZeroOrNan) {
  // Regression: AVG over an empty selection must be a FailedPrecondition
  // Status, never a raw 0.0 or NaN — and identically so on an entirely
  // empty relation and at every thread count.
  Table empty = *Table::MakeEmpty(TestSchema());
  for (size_t threads : {1u, 2u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ExecutionOptions exec;
    exec.num_threads = threads;
    auto on_empty =
        ExecuteAggregate(empty, AggregateQuery::Avg("score"), exec);
    ASSERT_FALSE(on_empty.ok());
    EXPECT_TRUE(on_empty.status().IsFailedPrecondition());
    auto no_match = ExecuteAggregate(
        TestTable(),
        AggregateQuery::Avg("score", Predicate::Equals("major", "Absent")),
        exec);
    ASSERT_FALSE(no_match.ok());
    EXPECT_TRUE(no_match.status().IsFailedPrecondition());
  }
}

TEST(AggregateTest, AvgAllNullMatchesFails) {
  // Rows match the predicate but every matching numeric entry is NULL:
  // there is no well-defined mean, so this is the same typed error.
  TableBuilder b(TestSchema());
  b.Row({Value("EECS"), Value::Null()})
      .Row({Value("EECS"), Value::Null()})
      .Row({Value("Math"), Value(2.0)});
  Table table = *b.Finish();
  auto r = ExecuteAggregate(table, AggregateQuery::Avg("score", Eecs()));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsFailedPrecondition());
}

TEST(AggregateTest, SumOnStringAttributeRejected) {
  auto r = ExecuteAggregate(TestTable(), AggregateQuery::Sum("major"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST(AggregateTest, SumOnMissingAttributeRejected) {
  EXPECT_FALSE(ExecuteAggregate(TestTable(),
                                AggregateQuery::Sum("nope")).ok());
}

TEST(AggregateTest, VarAndStd) {
  AggregateQuery var{AggregateType::kVar, "score", std::nullopt, 50.0};
  // Non-null scores: 4,2,5,3,1 -> mean 3, sample var 2.5.
  EXPECT_NEAR(*ExecuteAggregate(TestTable(), var), 2.5, 1e-12);
  AggregateQuery stddev{AggregateType::kStd, "score", std::nullopt, 50.0};
  EXPECT_NEAR(*ExecuteAggregate(TestTable(), stddev), std::sqrt(2.5),
              1e-12);
}

TEST(AggregateTest, MedianAndPercentile) {
  AggregateQuery median{AggregateType::kMedian, "score", std::nullopt, 50.0};
  EXPECT_DOUBLE_EQ(*ExecuteAggregate(TestTable(), median), 3.0);
  AggregateQuery p100{AggregateType::kPercentile, "score", std::nullopt,
                      100.0};
  EXPECT_DOUBLE_EQ(*ExecuteAggregate(TestTable(), p100), 5.0);
}

TEST(AggregateTest, VarNeedsTwoRows) {
  AggregateQuery var{AggregateType::kVar, "score",
                     Predicate::Equals("major", "Bio"), 50.0};
  EXPECT_FALSE(ExecuteAggregate(TestTable(), var).ok());
}

TEST(ScanTest, BasicStats) {
  QueryScanStats stats = *ScanWithPredicate(TestTable(), Eecs(), "score");
  EXPECT_EQ(stats.total_rows, 6u);
  EXPECT_EQ(stats.matching_rows, 3u);
  EXPECT_DOUBLE_EQ(stats.matching_sum, 9.0);
  EXPECT_DOUBLE_EQ(stats.complement_sum, 6.0);
  // Moments over non-null scores: 4,2,5,3,1.
  EXPECT_DOUBLE_EQ(stats.numeric_mean, 3.0);
  EXPECT_DOUBLE_EQ(stats.numeric_variance, 2.0);  // Population variance.
}

TEST(ScanTest, CountOnlyScanHasZeroSums) {
  QueryScanStats stats = *ScanWithPredicate(TestTable(), Eecs(), "");
  EXPECT_EQ(stats.matching_rows, 3u);
  EXPECT_DOUBLE_EQ(stats.matching_sum, 0.0);
  EXPECT_DOUBLE_EQ(stats.complement_sum, 0.0);
}

TEST(ScanTest, SumPlusComplementEqualsTotal) {
  QueryScanStats stats = *ScanWithPredicate(TestTable(), Eecs(), "score");
  double total =
      *ExecuteAggregate(TestTable(), AggregateQuery::Sum("score"));
  EXPECT_DOUBLE_EQ(stats.matching_sum + stats.complement_sum, total);
}

TEST(GroupByTest, CountsPerGroup) {
  auto groups = *GroupByCount(TestTable(), "major");
  EXPECT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[Value("EECS")], 3u);
  EXPECT_EQ(groups[Value("Math")], 2u);
  EXPECT_EQ(groups[Value("Bio")], 1u);
}

TEST(GroupByTest, NullGroupDistinctFromEmptyStringGroup) {
  // Regression: keys used to be stringified, so a NULL group and a
  // genuine '' group collided into one bucket of 3.
  TableBuilder b(TestSchema());
  b.Row({Value::Null(), Value(1.0)})
      .Row({Value(""), Value(2.0)})
      .Row({Value(""), Value(3.0)})
      .Row({Value("X"), Value(4.0)});
  Table t = *b.Finish();
  auto groups = *GroupByCount(t, "major");
  EXPECT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[Value::Null()], 1u);
  EXPECT_EQ(groups[Value("")], 2u);
  EXPECT_EQ(groups[Value("X")], 1u);
}

TEST(GroupByTest, MissingAttributeFails) {
  EXPECT_FALSE(GroupByCount(TestTable(), "nope").ok());
}

TEST(AggregateTypeTest, Names) {
  EXPECT_STREQ(AggregateTypeToString(AggregateType::kCount), "count");
  EXPECT_STREQ(AggregateTypeToString(AggregateType::kSum), "sum");
  EXPECT_STREQ(AggregateTypeToString(AggregateType::kAvg), "avg");
  EXPECT_STREQ(AggregateTypeToString(AggregateType::kMedian), "median");
}

}  // namespace
}  // namespace privateclean
