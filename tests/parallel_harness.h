#ifndef PRIVATECLEAN_TESTS_PARALLEL_HARNESS_H_
#define PRIVATECLEAN_TESTS_PARALLEL_HARNESS_H_

// Reusable determinism harness for sharded operations.
//
// The engine's contract (common/thread_pool.h) is that thread count never
// affects results: shard layout is a function of the item count alone,
// per-shard randomness forks by shard index, and partials merge in shard
// index order. This header checks that contract end to end: run the same
// operation at 1, 2, and 8 threads and require the *serialized bytes* of
// the results to be identical.
//
// Serialization is bit-exact, not value-approximate: doubles are appended
// as their raw IEEE-754 bit patterns, so a merge-order change that flips
// the last ulp — or produces -0.0 instead of 0.0 — fails the test even
// though EXPECT_DOUBLE_EQ would pass.
//
// Usage:
//
//   ExpectIdenticalAcrossThreadCounts([&](const ExecutionOptions& exec) {
//     ByteSink sink;
//     sink.AppendTable(*SomeShardedOperation(input, exec));
//     return std::move(sink).Finish();
//   });

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <utility>

#include "common/thread_pool.h"
#include "table/table.h"
#include "table/value.h"

namespace privateclean {

/// Accumulates a bit-exact byte image of a result. Every append is
/// length- or tag-prefixed so distinct structures cannot collide.
class ByteSink {
 public:
  void AppendU64(uint64_t v) {
    char buf[sizeof v];
    std::memcpy(buf, &v, sizeof v);
    bytes_.append(buf, sizeof v);
  }

  /// Raw IEEE-754 bits: distinguishes -0.0 from 0.0 and NaN payloads.
  void AppendDoubleBits(double v) {
    uint64_t bits;
    static_assert(sizeof bits == sizeof v);
    std::memcpy(&bits, &v, sizeof bits);
    AppendU64(bits);
  }

  void AppendString(const std::string& s) {
    AppendU64(s.size());
    bytes_.append(s);
  }

  void AppendValue(const Value& v) {
    AppendU64(static_cast<uint64_t>(v.type()));
    switch (v.type()) {
      case ValueType::kNull:
        break;
      case ValueType::kInt64:
        AppendU64(static_cast<uint64_t>(v.AsInt64()));
        break;
      case ValueType::kDouble:
        AppendDoubleBits(v.AsDouble());
        break;
      case ValueType::kString:
        AppendString(v.AsString());
        break;
    }
  }

  /// Schema names/types plus every cell, row-major.
  void AppendTable(const Table& table) {
    AppendU64(table.num_rows());
    AppendU64(table.num_columns());
    for (size_t c = 0; c < table.num_columns(); ++c) {
      const Field& field = table.schema().field(c);
      AppendString(field.name);
      AppendU64(static_cast<uint64_t>(field.type));
      AppendU64(static_cast<uint64_t>(field.kind));
    }
    for (size_t r = 0; r < table.num_rows(); ++r) {
      for (size_t c = 0; c < table.num_columns(); ++c) {
        AppendValue(table.column(c).ValueAt(r));
      }
    }
  }

  std::string Finish() && { return std::move(bytes_); }

 private:
  std::string bytes_;
};

/// Runs `op` (an invocable taking `const ExecutionOptions&` and returning
/// the serialized byte image of its result) at 1, 2, and 8 threads and
/// asserts the bytes are identical to the single-threaded run.
template <typename Op>
void ExpectIdenticalAcrossThreadCounts(Op&& op) {
  ExecutionOptions exec;
  exec.num_threads = 1;
  const std::string base = op(static_cast<const ExecutionOptions&>(exec));
  for (size_t threads : {2u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    exec.num_threads = threads;
    const std::string run = op(static_cast<const ExecutionOptions&>(exec));
    // Compare sizes first for a readable failure; the content check is
    // EQ on the full byte strings (gtest prints a bounded diff).
    ASSERT_EQ(run.size(), base.size());
    EXPECT_TRUE(run == base)
        << "serialized result differs from the single-threaded run";
  }
}

}  // namespace privateclean

#endif  // PRIVATECLEAN_TESTS_PARALLEL_HARNESS_H_
