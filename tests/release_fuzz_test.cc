// Release serialization fuzz: random schemas (weird attribute names,
// mixed types, null-heavy columns) must survive the
// privatize → WriteRelease → OpenRelease round trip with identical
// relations, metadata, and query results.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/random.h"
#include "core/privateclean.h"
#include "table/table_builder.h"

namespace privateclean {
namespace {

/// Builds a random schema: 1-3 discrete attributes (string or int64) and
/// 0-2 numerical ones, with adversarial names.
Schema RandomSchema(Rng& rng) {
  const char* name_pool[] = {
      "plain",       "with space",   "comma,name",  "quote\"name",
      "newline\nname", "unicode_\xC3\xA9", "UPPER",  "_underscore",
      "123start",    "semi;colon"};
  std::vector<Field> fields;
  std::vector<size_t> name_indices(10);
  for (size_t i = 0; i < 10; ++i) name_indices[i] = i;
  rng.Shuffle(name_indices);
  size_t next_name = 0;
  size_t num_discrete = 1 + rng.UniformInt(3);
  for (size_t i = 0; i < num_discrete; ++i) {
    ValueType type =
        rng.Bernoulli(0.3) ? ValueType::kInt64 : ValueType::kString;
    fields.push_back(Field{name_pool[name_indices[next_name++]], type,
                           AttributeKind::kDiscrete});
  }
  size_t num_numeric = rng.UniformInt(3);
  for (size_t i = 0; i < num_numeric; ++i) {
    ValueType type =
        rng.Bernoulli(0.5) ? ValueType::kInt64 : ValueType::kDouble;
    fields.push_back(Field{name_pool[name_indices[next_name++]], type,
                           AttributeKind::kNumerical});
  }
  return *Schema::Make(std::move(fields));
}

Value RandomCell(const Field& field, Rng& rng) {
  if (rng.Bernoulli(0.1)) return Value::Null();
  switch (field.type) {
    case ValueType::kInt64:
      return Value(rng.UniformIntRange(-5, 5));
    case ValueType::kDouble:
      return Value(rng.UniformRealRange(-100.0, 100.0));
    default: {
      const char* values[] = {"alpha", "be,ta", "ga\"mma", "del\nta",
                              " lead", "trail ", "\\N", "x"};
      return Value(values[rng.UniformInt(8)]);
    }
  }
}

TEST(ReleaseFuzzTest, RandomSchemasRoundTrip) {
  std::string base = ::testing::TempDir() + "/pclean_release_fuzz";
  for (int trial = 0; trial < 20; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));
    Rng rng(1000 + trial);
    Schema schema = RandomSchema(rng);
    TableBuilder b(schema);
    size_t rows = 20 + rng.UniformInt(80);
    for (size_t r = 0; r < rows; ++r) {
      std::vector<Value> row;
      for (size_t c = 0; c < schema.num_fields(); ++c) {
        row.push_back(RandomCell(schema.field(c), rng));
      }
      b.Row(std::move(row));
    }
    auto table_result = b.Finish();
    ASSERT_TRUE(table_result.ok());
    Table original = std::move(table_result).ValueOrDie();

    // Numerical columns that are entirely null have no sensitivity; GRR
    // rejects them. Skip those rare draws.
    bool skip = false;
    for (size_t c = 0; c < schema.num_fields(); ++c) {
      if (schema.field(c).kind == AttributeKind::kNumerical &&
          original.column(c).null_count() == original.column(c).size()) {
        skip = true;
      }
    }
    if (skip) continue;

    GrrOptions options;
    options.ensure_domain_preserved = false;  // Tiny random tables.
    auto grr = ApplyGrr(original, GrrParams::Uniform(0.2, 1.0), options,
                        rng);
    ASSERT_TRUE(grr.ok()) << grr.status().ToString();

    std::string dir = base + "_" + std::to_string(trial);
    std::filesystem::remove_all(dir);
    ASSERT_TRUE(WriteRelease(*grr, dir).ok());
    auto loaded = ReadRelease(dir);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

    // Relation identical cell by cell.
    ASSERT_TRUE(loaded->relation.schema() == grr->table.schema());
    ASSERT_EQ(loaded->relation.num_rows(), grr->table.num_rows());
    for (size_t r = 0; r < grr->table.num_rows(); ++r) {
      for (size_t c = 0; c < grr->table.num_columns(); ++c) {
        ASSERT_EQ(loaded->relation.column(c).ValueAt(r),
                  grr->table.column(c).ValueAt(r))
            << "row " << r << " col " << c;
      }
    }
    // Domains identical, order included.
    for (const auto& [name, meta] : grr->metadata.discrete) {
      const auto& loaded_meta = loaded->metadata.discrete.at(name);
      ASSERT_EQ(loaded_meta.domain.size(), meta.domain.size()) << name;
      for (size_t i = 0; i < meta.domain.size(); ++i) {
        ASSERT_EQ(loaded_meta.domain.value(i), meta.domain.value(i))
            << name << " domain index " << i;
      }
    }
    // Query estimates identical through the loaded table.
    auto pt_orig = PrivateTable::FromPrivateRelation(grr->table.Clone(),
                                                     grr->metadata);
    auto pt_loaded = OpenRelease(dir);
    ASSERT_TRUE(pt_orig.ok());
    ASSERT_TRUE(pt_loaded.ok());
    const Field& first = schema.field(0);
    const Domain& domain =
        grr->metadata.discrete.at(first.name).domain;
    Predicate pred = Predicate::Equals(first.name, domain.value(0));
    auto r_orig = pt_orig->Count(pred);
    auto r_loaded = pt_loaded->Count(pred);
    ASSERT_TRUE(r_orig.ok());
    ASSERT_TRUE(r_loaded.ok());
    EXPECT_DOUBLE_EQ(r_orig->estimate, r_loaded->estimate);
    std::filesystem::remove_all(dir);
  }
}

TEST(ReleaseFuzzTest, ParallelReleaseRoundTripMatchesSerial) {
  // The sharded CSV writer/reader must put the same bytes on disk and
  // read back the same relation as the serial one — including the \N
  // null-literal rows the release format uses — for random adversarial
  // schemas and null-heavy columns.
  std::string base = ::testing::TempDir() + "/pclean_release_par";
  ExecutionOptions exec8;
  exec8.num_threads = 8;
  for (int trial = 0; trial < 10; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));
    Rng rng(3000 + trial);
    Schema schema = RandomSchema(rng);
    TableBuilder b(schema);
    size_t rows = 20 + rng.UniformInt(80);
    for (size_t r = 0; r < rows; ++r) {
      std::vector<Value> row;
      for (size_t c = 0; c < schema.num_fields(); ++c) {
        row.push_back(RandomCell(schema.field(c), rng));
      }
      b.Row(std::move(row));
    }
    Table original = *b.Finish();

    std::string dir_serial = base + "_s_" + std::to_string(trial);
    std::string dir_parallel = base + "_p_" + std::to_string(trial);
    std::filesystem::remove_all(dir_serial);
    std::filesystem::remove_all(dir_parallel);

    // Write the raw table as a release relation: fabricate metadata that
    // covers every attribute (the round trip only needs the schema).
    PrivateRelationMetadata metadata;
    metadata.dataset_size = original.num_rows();
    for (size_t c = 0; c < schema.num_fields(); ++c) {
      const Field& field = schema.field(c);
      if (field.kind == AttributeKind::kDiscrete) {
        Domain domain = *Domain::FromColumn(original, field.name,
                                            /*include_null=*/true);
        metadata.discrete.emplace(field.name,
                                  DiscreteAttributeMeta{0.2, domain});
      } else {
        metadata.numeric.emplace(field.name,
                                 NumericAttributeMeta{1.0, 10.0});
      }
    }
    ASSERT_TRUE(WriteRelease(original, metadata, dir_serial).ok());
    ASSERT_TRUE(WriteRelease(original, metadata, dir_parallel, exec8).ok());

    // Identical bytes on disk.
    auto slurp = [](const std::string& path) {
      std::ifstream f(path, std::ios::binary);
      std::ostringstream buffer;
      buffer << f.rdbuf();
      return buffer.str();
    };
    EXPECT_EQ(slurp(dir_parallel + "/data.csv"),
              slurp(dir_serial + "/data.csv"));

    // Identical relations back, in all four write/read combinations.
    auto serial_serial = ReadRelease(dir_serial);
    auto serial_parallel = ReadRelease(dir_serial, exec8);
    auto parallel_parallel = ReadRelease(dir_parallel, exec8);
    ASSERT_TRUE(serial_serial.ok()) << serial_serial.status().ToString();
    ASSERT_TRUE(serial_parallel.ok());
    ASSERT_TRUE(parallel_parallel.ok());
    for (const auto* loaded :
         {&*serial_serial, &*serial_parallel, &*parallel_parallel}) {
      ASSERT_TRUE(loaded->relation.schema() == original.schema());
      ASSERT_EQ(loaded->relation.num_rows(), original.num_rows());
      for (size_t r = 0; r < original.num_rows(); ++r) {
        for (size_t c = 0; c < original.num_columns(); ++c) {
          ASSERT_EQ(loaded->relation.column(c).ValueAt(r),
                    original.column(c).ValueAt(r))
              << "row " << r << " col " << c;
        }
      }
    }
    std::filesystem::remove_all(dir_serial);
    std::filesystem::remove_all(dir_parallel);
  }
}

TEST(ReleaseFuzzTest, ByteLevelCorruptionNeverPassesUnnoticed) {
  // Random byte-level damage — bit flips, truncations, byte-range
  // deletions, whole-file deletion — applied to a pristine release.
  // Every damaged copy must either fail typed (DataLoss / NotFound /
  // FailedPrecondition / IOError) or load the exact original relation;
  // an OK load with different data, or a crash, is a contract breach.
  // VerifyRelease must flag every damaged copy.
  std::string base = ::testing::TempDir() + "/pclean_release_corrupt";
  std::filesystem::remove_all(base);
  std::filesystem::create_directories(base);

  Rng setup_rng(7777);
  Schema schema = RandomSchema(setup_rng);
  TableBuilder b(schema);
  for (size_t r = 0; r < 60; ++r) {
    std::vector<Value> row;
    for (size_t c = 0; c < schema.num_fields(); ++c) {
      row.push_back(RandomCell(schema.field(c), setup_rng));
    }
    b.Row(std::move(row));
  }
  Table original = *b.Finish();
  PrivateRelationMetadata metadata;
  metadata.dataset_size = original.num_rows();
  for (size_t c = 0; c < schema.num_fields(); ++c) {
    const Field& field = schema.field(c);
    if (field.kind == AttributeKind::kDiscrete) {
      Domain domain = *Domain::FromColumn(original, field.name,
                                          /*include_null=*/true);
      metadata.discrete.emplace(field.name,
                                DiscreteAttributeMeta{0.2, domain});
    } else {
      metadata.numeric.emplace(field.name, NumericAttributeMeta{1.0, 10.0});
    }
  }
  const std::string pristine = base + "/pristine";
  ASSERT_TRUE(WriteRelease(original, metadata, pristine).ok());

  std::vector<std::string> files;
  for (const auto& entry : std::filesystem::directory_iterator(pristine)) {
    files.push_back(entry.path().filename().string());
  }
  ASSERT_GE(files.size(), 3u);

  auto slurp = [](const std::string& path) {
    std::ifstream f(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << f.rdbuf();
    return buffer.str();
  };
  auto spit = [](const std::string& path, const std::string& bytes) {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f << bytes;
  };

  auto relation_equals_original = [&](const Table& loaded) {
    if (!(loaded.schema() == original.schema()) ||
        loaded.num_rows() != original.num_rows()) {
      return false;
    }
    for (size_t r = 0; r < original.num_rows(); ++r) {
      for (size_t c = 0; c < original.num_columns(); ++c) {
        if (!(loaded.column(c).ValueAt(r) ==
              original.column(c).ValueAt(r))) {
          return false;
        }
      }
    }
    return true;
  };

  for (int trial = 0; trial < 60; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));
    Rng rng(4000 + trial);
    const std::string dir = base + "/t" + std::to_string(trial);
    std::filesystem::remove_all(dir);
    std::filesystem::copy(pristine, dir);

    const std::string& victim = files[rng.UniformInt(files.size())];
    const std::string victim_path = dir + "/" + victim;
    std::string bytes = slurp(victim_path);
    ASSERT_FALSE(bytes.empty()) << victim;
    const size_t mutation = rng.UniformInt(4);
    switch (mutation) {
      case 0: {  // single bit flip
        size_t offset = rng.UniformInt(bytes.size());
        bytes[offset] ^= static_cast<char>(1u << rng.UniformInt(8));
        spit(victim_path, bytes);
        break;
      }
      case 1: {  // truncation
        spit(victim_path, bytes.substr(0, rng.UniformInt(bytes.size())));
        break;
      }
      case 2: {  // byte-range deletion
        size_t from = rng.UniformInt(bytes.size());
        size_t len = 1 + rng.UniformInt(bytes.size() - from);
        spit(victim_path, bytes.erase(from, len));
        break;
      }
      default:  // whole-file deletion
        std::filesystem::remove(victim_path);
        break;
    }

    const bool manifest_gone =
        victim == "MANIFEST" && mutation == 3;
    auto read = ReadRelease(dir);
    if (read.ok()) {
      // Loading successfully is only acceptable if the data is exactly
      // the original — which (MANIFEST deletion aside) the checksums
      // make all but impossible for a damaged payload.
      EXPECT_TRUE(relation_equals_original(read->relation));
      if (manifest_gone) {
        EXPECT_EQ(read->format_version, 1);
        EXPECT_FALSE(read->verified);
      }
    } else {
      const Status& st = read.status();
      EXPECT_TRUE(st.IsDataLoss() || st.IsNotFound() || st.IsIOError() ||
                  st.IsFailedPrecondition())
          << st.ToString();
    }

    // Strict verification must reject every damaged copy.
    auto verification = VerifyRelease(dir);
    if (verification.ok()) {
      EXPECT_FALSE(verification->status.ok()) << victim;
    } else {
      const Status& st = verification.status();
      EXPECT_TRUE(st.IsDataLoss() || st.IsNotFound() ||
                  st.IsFailedPrecondition() || st.IsIOError())
          << st.ToString();
    }
    std::filesystem::remove_all(dir);
  }
  std::filesystem::remove_all(base);
}

}  // namespace
}  // namespace privateclean
