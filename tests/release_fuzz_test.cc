// Release serialization fuzz: random schemas (weird attribute names,
// mixed types, null-heavy columns) must survive the
// privatize → WriteRelease → OpenRelease round trip with identical
// relations, metadata, and query results.

#include <gtest/gtest.h>

#include <filesystem>

#include "common/random.h"
#include "core/privateclean.h"
#include "table/table_builder.h"

namespace privateclean {
namespace {

/// Builds a random schema: 1-3 discrete attributes (string or int64) and
/// 0-2 numerical ones, with adversarial names.
Schema RandomSchema(Rng& rng) {
  const char* name_pool[] = {
      "plain",       "with space",   "comma,name",  "quote\"name",
      "newline\nname", "unicode_\xC3\xA9", "UPPER",  "_underscore",
      "123start",    "semi;colon"};
  std::vector<Field> fields;
  std::vector<size_t> name_indices(10);
  for (size_t i = 0; i < 10; ++i) name_indices[i] = i;
  rng.Shuffle(name_indices);
  size_t next_name = 0;
  size_t num_discrete = 1 + rng.UniformInt(3);
  for (size_t i = 0; i < num_discrete; ++i) {
    ValueType type =
        rng.Bernoulli(0.3) ? ValueType::kInt64 : ValueType::kString;
    fields.push_back(Field{name_pool[name_indices[next_name++]], type,
                           AttributeKind::kDiscrete});
  }
  size_t num_numeric = rng.UniformInt(3);
  for (size_t i = 0; i < num_numeric; ++i) {
    ValueType type =
        rng.Bernoulli(0.5) ? ValueType::kInt64 : ValueType::kDouble;
    fields.push_back(Field{name_pool[name_indices[next_name++]], type,
                           AttributeKind::kNumerical});
  }
  return *Schema::Make(std::move(fields));
}

Value RandomCell(const Field& field, Rng& rng) {
  if (rng.Bernoulli(0.1)) return Value::Null();
  switch (field.type) {
    case ValueType::kInt64:
      return Value(rng.UniformIntRange(-5, 5));
    case ValueType::kDouble:
      return Value(rng.UniformRealRange(-100.0, 100.0));
    default: {
      const char* values[] = {"alpha", "be,ta", "ga\"mma", "del\nta",
                              " lead", "trail ", "\\N", "x"};
      return Value(values[rng.UniformInt(8)]);
    }
  }
}

TEST(ReleaseFuzzTest, RandomSchemasRoundTrip) {
  std::string base = ::testing::TempDir() + "/pclean_release_fuzz";
  for (int trial = 0; trial < 20; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));
    Rng rng(1000 + trial);
    Schema schema = RandomSchema(rng);
    TableBuilder b(schema);
    size_t rows = 20 + rng.UniformInt(80);
    for (size_t r = 0; r < rows; ++r) {
      std::vector<Value> row;
      for (size_t c = 0; c < schema.num_fields(); ++c) {
        row.push_back(RandomCell(schema.field(c), rng));
      }
      b.Row(std::move(row));
    }
    auto table_result = b.Finish();
    ASSERT_TRUE(table_result.ok());
    Table original = std::move(table_result).ValueOrDie();

    // Numerical columns that are entirely null have no sensitivity; GRR
    // rejects them. Skip those rare draws.
    bool skip = false;
    for (size_t c = 0; c < schema.num_fields(); ++c) {
      if (schema.field(c).kind == AttributeKind::kNumerical &&
          original.column(c).null_count() == original.column(c).size()) {
        skip = true;
      }
    }
    if (skip) continue;

    GrrOptions options;
    options.ensure_domain_preserved = false;  // Tiny random tables.
    auto grr = ApplyGrr(original, GrrParams::Uniform(0.2, 1.0), options,
                        rng);
    ASSERT_TRUE(grr.ok()) << grr.status().ToString();

    std::string dir = base + "_" + std::to_string(trial);
    std::filesystem::remove_all(dir);
    ASSERT_TRUE(WriteRelease(*grr, dir).ok());
    auto loaded = ReadRelease(dir);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

    // Relation identical cell by cell.
    ASSERT_TRUE(loaded->relation.schema() == grr->table.schema());
    ASSERT_EQ(loaded->relation.num_rows(), grr->table.num_rows());
    for (size_t r = 0; r < grr->table.num_rows(); ++r) {
      for (size_t c = 0; c < grr->table.num_columns(); ++c) {
        ASSERT_EQ(loaded->relation.column(c).ValueAt(r),
                  grr->table.column(c).ValueAt(r))
            << "row " << r << " col " << c;
      }
    }
    // Domains identical, order included.
    for (const auto& [name, meta] : grr->metadata.discrete) {
      const auto& loaded_meta = loaded->metadata.discrete.at(name);
      ASSERT_EQ(loaded_meta.domain.size(), meta.domain.size()) << name;
      for (size_t i = 0; i < meta.domain.size(); ++i) {
        ASSERT_EQ(loaded_meta.domain.value(i), meta.domain.value(i))
            << name << " domain index " << i;
      }
    }
    // Query estimates identical through the loaded table.
    auto pt_orig = PrivateTable::FromPrivateRelation(grr->table.Clone(),
                                                     grr->metadata);
    auto pt_loaded = OpenRelease(dir);
    ASSERT_TRUE(pt_orig.ok());
    ASSERT_TRUE(pt_loaded.ok());
    const Field& first = schema.field(0);
    const Domain& domain =
        grr->metadata.discrete.at(first.name).domain;
    Predicate pred = Predicate::Equals(first.name, domain.value(0));
    auto r_orig = pt_orig->Count(pred);
    auto r_loaded = pt_loaded->Count(pred);
    ASSERT_TRUE(r_orig.ok());
    ASSERT_TRUE(r_loaded.ok());
    EXPECT_DOUBLE_EQ(r_orig->estimate, r_loaded->estimate);
    std::filesystem::remove_all(dir);
  }
}

}  // namespace
}  // namespace privateclean
