// End-to-end miniatures of the paper's experiment pipelines. Each test
// runs the full provider->privatize->clean->query flow and asserts the
// qualitative claims of the evaluation section at small scale.

#include <gtest/gtest.h>

#include <cmath>

#include "core/privateclean.h"
#include "datagen/error_injection.h"
#include "datagen/intel_wireless.h"
#include "datagen/mcafe.h"
#include "datagen/synthetic.h"
#include "datagen/tpcds.h"

namespace privateclean {
namespace {

double MeanRelativeError(const std::vector<double>& estimates,
                         double truth) {
  double total = 0.0;
  for (double est : estimates) total += std::abs(est - truth);
  return total / (static_cast<double>(estimates.size()) * std::abs(truth));
}

TEST(IntegrationTest, SkewedCountPrivateCleanBeatsDirect) {
  // Figure 2a in miniature: skewed data, selective predicate, moderate
  // privacy — PrivateClean's corrected count must beat Direct on average.
  SyntheticOptions options;
  options.zipf_skew = 2.0;
  Rng data_rng(1);
  Table data = *GenerateSynthetic(options, data_rng);
  Predicate pred = Predicate::In(
      "category", {SyntheticCategory(0), SyntheticCategory(1),
                   SyntheticCategory(2), SyntheticCategory(3),
                   SyntheticCategory(4)});
  double truth = *ExecuteAggregate(data, AggregateQuery::Count(pred));

  std::vector<double> pc, direct;
  for (int t = 0; t < 25; ++t) {
    Rng rng(100 + t);
    PrivateTable pt = *PrivateTable::Create(
        data, GrrParams::Uniform(0.3, 10.0), GrrOptions{}, rng);
    pc.push_back(pt.Count(pred)->estimate);
    direct.push_back(
        pt.ExecuteDirect(AggregateQuery::Count(pred))->estimate);
  }
  EXPECT_LT(MeanRelativeError(pc, truth), MeanRelativeError(direct, truth));
}

TEST(IntegrationTest, ErrorRateFlatForPrivateClean) {
  // Figure 5 in miniature: with spelling errors + repair, PrivateClean's
  // error stays low while Direct's grows.
  SyntheticOptions options;
  Rng data_rng(2);
  Table base = *GenerateSynthetic(options, data_rng);
  Rng inject_rng(3);
  InjectionResult injected =
      *InjectSpellingErrors(base, "category", 0.4, 0.5, inject_rng);

  Predicate pred = Predicate::In(
      "category", {SyntheticCategory(0), SyntheticCategory(1),
                   SyntheticCategory(2), SyntheticCategory(3),
                   SyntheticCategory(4)});
  double truth =
      *ExecuteAggregate(injected.clean, AggregateQuery::Count(pred));

  std::vector<double> pc, direct;
  for (int t = 0; t < 25; ++t) {
    Rng rng(200 + t);
    PrivateTable pt = *PrivateTable::Create(
        injected.dirty, GrrParams::Uniform(0.2, 10.0), GrrOptions{}, rng);
    ASSERT_TRUE(
        pt.Clean(FindReplace("category", injected.repair_map)).ok());
    pc.push_back(pt.Count(pred)->estimate);
    direct.push_back(
        pt.ExecuteDirect(AggregateQuery::Count(pred))->estimate);
  }
  double pc_err = MeanRelativeError(pc, truth);
  EXPECT_LT(pc_err, MeanRelativeError(direct, truth));
  EXPECT_LT(pc_err, 0.15);  // "Less than 10%" in the paper; slack here.
}

TEST(IntegrationTest, TpcdsFdRepairPipeline) {
  // Figure 8a in miniature: corrupt states, FD-repair the private
  // relation, GROUP BY state counts.
  Rng rng(4);
  TpcdsOptions options;
  options.num_rows = 1500;
  Table truth_table = *GenerateCustomerAddress(options, rng);
  Table dirty = truth_table.Clone();
  ASSERT_TRUE(CorruptStates(&dirty, 150, rng).ok());

  // Ground truth: repair applied to the non-private dirty data.
  Table repaired_truth = dirty.Clone();
  ASSERT_TRUE(FdRepair(CustomerAddressFd()).Apply(&repaired_truth).ok());

  Rng grr_rng(5);
  PrivateTable pt = *PrivateTable::Create(
      dirty, GrrParams::Uniform(0.15, 1.0), GrrOptions{}, grr_rng);
  ASSERT_TRUE(pt.Clean(FdRepair(CustomerAddressFd())).ok());

  // Count the most common state, PrivateClean vs Direct.
  auto truth_groups = *GroupByCount(repaired_truth, "ca_state");
  std::string top_state;
  size_t top_count = 0;
  for (const auto& [state, count] : truth_groups) {
    if (count > top_count) {
      top_state = state.ToString();
      top_count = count;
    }
  }
  Predicate pred = Predicate::Equals("ca_state", Value(top_state));
  double pc = pt.Count(pred)->estimate;
  double direct = pt.ExecuteDirect(AggregateQuery::Count(pred))->estimate;
  double truth = static_cast<double>(top_count);
  EXPECT_LE(std::abs(pc - truth), std::abs(direct - truth) + 15.0);
  EXPECT_NEAR(pc, truth, 0.35 * truth);
}

TEST(IntegrationTest, TpcdsMdRepairPipeline) {
  // Figure 8b in miniature: corrupt countries, MD-repair, count a country.
  Rng rng(6);
  TpcdsOptions options;
  options.num_rows = 1500;
  Table clean = *GenerateCustomerAddress(options, rng);
  Table dirty = clean.Clone();
  ASSERT_TRUE(CorruptCountries(&dirty, 150, rng).ok());

  Table repaired_truth = dirty.Clone();
  ASSERT_TRUE(MdRepair(CustomerAddressMd()).Apply(&repaired_truth).ok());

  Rng grr_rng(7);
  PrivateTable pt = *PrivateTable::Create(
      dirty, GrrParams::Uniform(0.15, 1.0), GrrOptions{}, grr_rng);
  ASSERT_TRUE(pt.Clean(MdRepair(CustomerAddressMd())).ok());

  Predicate pred = Predicate::Equals("ca_country", "United States");
  double truth =
      *ExecuteAggregate(repaired_truth, AggregateQuery::Count(pred));
  double pc = pt.Count(pred)->estimate;
  EXPECT_NEAR(pc, truth, 0.25 * truth);
}

TEST(IntegrationTest, IntelWirelessPipeline) {
  // §8.4 in miniature: merge spurious ids to null, count and average
  // where sensor_id is not null.
  Rng rng(8);
  IntelWirelessOptions options;
  options.num_rows = 8000;
  IntelWirelessData data = *GenerateIntelWireless(options, rng);

  Predicate pred = Predicate::IsNotNull("sensor_id");
  double truth_count =
      *ExecuteAggregate(data.clean, AggregateQuery::Count(pred));
  double truth_avg =
      *ExecuteAggregate(data.clean, AggregateQuery::Avg("temp", pred));

  Rng grr_rng(9);
  GrrParams params = GrrParams::Uniform(0.2, 0.0);
  params.numeric_b.clear();
  // epsilon-matched noise for temp only; humidity/light get modest noise.
  params.default_b = 2.0;
  PrivateTable pt =
      *PrivateTable::Create(data.dirty, params, GrrOptions{}, grr_rng);
  ASSERT_TRUE(pt.Clean(MergeToNull("sensor_id", data.is_spurious)).ok());

  double pc_count = pt.Count(pred)->estimate;
  EXPECT_NEAR(pc_count, truth_count, 0.05 * truth_count);
  double pc_avg = pt.Avg("temp", pred)->estimate;
  EXPECT_NEAR(pc_avg, truth_avg, 0.25 * std::abs(truth_avg));
}

TEST(IntegrationTest, McafePipeline) {
  // §8.5 in miniature: isEurope() aggregation on the private relation.
  Rng rng(10);
  Table data = *GenerateMcafe(McafeOptions{}, rng);
  Predicate europe = Predicate::Udf("country", McafeIsEurope);
  double truth_count =
      *ExecuteAggregate(data, AggregateQuery::Count(europe));
  ASSERT_GT(truth_count, 0.0);

  std::vector<double> pc, direct;
  for (int t = 0; t < 30; ++t) {
    Rng grr_rng(300 + t);
    PrivateTable pt = *PrivateTable::Create(
        data, GrrParams::Uniform(0.1, 1.0), GrrOptions{}, grr_rng);
    pc.push_back(pt.Count(europe)->estimate);
    direct.push_back(
        pt.ExecuteDirect(AggregateQuery::Count(europe))->estimate);
  }
  // High distinct fraction is the hard regime: just require PrivateClean
  // to be competitive and in the right ballpark on average.
  double pc_err = MeanRelativeError(pc, truth_count);
  double direct_err = MeanRelativeError(direct, truth_count);
  EXPECT_LT(pc_err, direct_err + 0.10);
  EXPECT_LT(pc_err, 0.75);
}

TEST(IntegrationTest, CsvRoundTripThroughPrivatization) {
  // Provider writes a private CSV; analyst reads it back and queries.
  Rng rng(11);
  SyntheticOptions options;
  options.num_rows = 500;
  Table data = *GenerateSynthetic(options, rng);
  Rng grr_rng(12);
  GrrOutput grr = *ApplyGrr(data, GrrParams::Uniform(0.1, 5.0),
                            GrrOptions{}, grr_rng);
  std::string path = ::testing::TempDir() + "/private_view.csv";
  ASSERT_TRUE(WriteCsvFile(grr.table, path).ok());
  Table loaded = *ReadCsvFile(path, data.schema());
  EXPECT_EQ(loaded.num_rows(), 500u);
  double nominal_count = *ExecuteAggregate(
      loaded, AggregateQuery::Count(
                  Predicate::Equals("category", SyntheticCategory(0))));
  double direct_count = *ExecuteAggregate(
      grr.table, AggregateQuery::Count(
                     Predicate::Equals("category", SyntheticCategory(0))));
  EXPECT_DOUBLE_EQ(nominal_count, direct_count);
  std::remove(path.c_str());
}

TEST(IntegrationTest, PostProcessingPreservesEpsilon) {
  // Cleaning must not change the privacy accounting (Dwork Prop. 2.1).
  Rng rng(13);
  Table data = *GenerateSynthetic(SyntheticOptions{}, rng);
  Rng grr_rng(14);
  PrivateTable pt = *PrivateTable::Create(
      data, GrrParams::Uniform(0.2, 5.0), GrrOptions{}, grr_rng);
  double eps_before = pt.PrivacyAccounting()->total_epsilon;
  ASSERT_TRUE(pt.Clean(FindReplace::Single("category", SyntheticCategory(1),
                                           SyntheticCategory(0)))
                  .ok());
  double eps_after = pt.PrivacyAccounting()->total_epsilon;
  EXPECT_DOUBLE_EQ(eps_before, eps_after);
}

}  // namespace
}  // namespace privateclean
