#include "provenance/provenance_graph.h"

#include <gtest/gtest.h>

namespace privateclean {
namespace {

Column MakeColumn(const std::vector<Value>& values) {
  Column c = *Column::Make(ValueType::kString);
  for (const Value& v : values) {
    Status st = c.AppendValue(v);
    EXPECT_TRUE(st.ok());
  }
  return c;
}

TEST(ProvenanceGraphTest, IdentityGraph) {
  std::vector<Value> values{Value("a"), Value("b"), Value("a"), Value("c")};
  Column dirty = MakeColumn(values);
  Column clean = MakeColumn(values);
  Domain domain = Domain::FromValues(values);
  ProvenanceGraph g = *ProvenanceGraph::Build(dirty, clean, domain);
  EXPECT_EQ(g.num_dirty_values(), 3u);
  EXPECT_EQ(g.num_clean_values(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_TRUE(g.is_fork_free());
  EXPECT_DOUBLE_EQ(g.EdgeWeight(Value("a"), Value("a")), 1.0);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(Value("a"), Value("b")), 0.0);
}

TEST(ProvenanceGraphTest, MergeGraphExample5) {
  // Paper Example 5: Civil Eng., Mechanical Eng., M.E -> Engineering;
  // Math stays. Predicate on "Engineering" has L_pred of size 3.
  std::vector<Value> dirty_values{Value("Civil Engineering"),
                                  Value("Mechanical Engineering"),
                                  Value("M.E"), Value("Math")};
  std::vector<Value> clean_values{Value("Engineering"), Value("Engineering"),
                                  Value("Engineering"), Value("Math")};
  Column dirty = MakeColumn(dirty_values);
  Column clean = MakeColumn(clean_values);
  Domain domain = Domain::FromValues(dirty_values);
  ProvenanceGraph g = *ProvenanceGraph::Build(dirty, clean, domain);
  EXPECT_EQ(g.num_dirty_values(), 4u);
  EXPECT_EQ(g.num_clean_values(), 2u);
  EXPECT_TRUE(g.is_fork_free());
  std::vector<Value> m_pred{Value("Engineering")};
  EXPECT_DOUBLE_EQ(g.WeightedSelectivity(m_pred), 3.0);
  EXPECT_EQ(g.UnweightedSelectivity(m_pred), 3u);
  auto parents = g.ParentSet(m_pred);
  EXPECT_EQ(parents.size(), 3u);
}

TEST(ProvenanceGraphTest, ForkedGraphExample6) {
  // Paper Example 6: NULL maps half to "John Doe", half to "Jane Smith".
  std::vector<Value> dirty_values{Value("John Doe"), Value::Null(),
                                  Value::Null()};
  std::vector<Value> clean_values{Value("John Doe"), Value("John Doe"),
                                  Value("Jane Smith")};
  Column dirty = MakeColumn(dirty_values);
  Column clean = MakeColumn(clean_values);
  Domain domain = Domain::FromValues(dirty_values);
  ProvenanceGraph g = *ProvenanceGraph::Build(dirty, clean, domain);
  EXPECT_FALSE(g.is_fork_free());
  EXPECT_DOUBLE_EQ(g.EdgeWeight(Value::Null(), Value("John Doe")), 0.5);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(Value::Null(), Value("Jane Smith")), 0.5);
  // Weighted selectivity of {"John Doe"}: 1 (itself) + 0.5 (null's share).
  EXPECT_DOUBLE_EQ(g.WeightedSelectivity({Value("John Doe")}), 1.5);
  // Unweighted cut counts both parents fully.
  EXPECT_EQ(g.UnweightedSelectivity({Value("John Doe")}), 2u);
}

TEST(ProvenanceGraphTest, WeightsArePerDirtyRowFractions) {
  // Dirty value "x" has 4 rows: 3 to "a", 1 to "b".
  std::vector<Value> dirty_values{Value("x"), Value("x"), Value("x"),
                                  Value("x")};
  std::vector<Value> clean_values{Value("a"), Value("a"), Value("a"),
                                  Value("b")};
  ProvenanceGraph g = *ProvenanceGraph::Build(
      MakeColumn(dirty_values), MakeColumn(clean_values),
      Domain::FromValues(dirty_values));
  EXPECT_DOUBLE_EQ(g.EdgeWeight(Value("x"), Value("a")), 0.75);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(Value("x"), Value("b")), 0.25);
}

TEST(ProvenanceGraphTest, OutgoingWeightsSumToOne) {
  std::vector<Value> dirty_values, clean_values;
  const char* targets[] = {"t0", "t1", "t2"};
  for (int i = 0; i < 60; ++i) {
    dirty_values.push_back(Value("d" + std::to_string(i % 4)));
    clean_values.push_back(Value(targets[i % 3]));
  }
  Domain domain = Domain::FromValues(dirty_values);
  ProvenanceGraph g = *ProvenanceGraph::Build(
      MakeColumn(dirty_values), MakeColumn(clean_values), domain);
  for (size_t d = 0; d < domain.size(); ++d) {
    double total = 0.0;
    for (const char* t : targets) {
      total += g.EdgeWeight(domain.value(d), Value(t));
    }
    EXPECT_NEAR(total, 1.0, 1e-12);
  }
}

TEST(ProvenanceGraphTest, WeightedSelectivityOfFullCleanDomainIsN) {
  // Selecting every clean value must recover all N dirty values' mass.
  std::vector<Value> dirty_values, clean_values;
  for (int i = 0; i < 40; ++i) {
    dirty_values.push_back(Value("d" + std::to_string(i % 8)));
    clean_values.push_back(Value("c" + std::to_string(i % 3)));
  }
  Domain domain = Domain::FromValues(dirty_values);
  ProvenanceGraph g = *ProvenanceGraph::Build(
      MakeColumn(dirty_values), MakeColumn(clean_values), domain);
  std::vector<Value> all_clean = g.clean_domain().values();
  EXPECT_NEAR(g.WeightedSelectivity(all_clean), 8.0, 1e-12);
}

TEST(ProvenanceGraphTest, PredicateValueAbsentFromRelationIgnored) {
  std::vector<Value> values{Value("a"), Value("b")};
  ProvenanceGraph g = *ProvenanceGraph::Build(
      MakeColumn(values), MakeColumn(values), Domain::FromValues(values));
  EXPECT_DOUBLE_EQ(g.WeightedSelectivity({Value("zzz")}), 0.0);
  EXPECT_EQ(g.UnweightedSelectivity({Value("zzz")}), 0u);
  EXPECT_TRUE(g.ParentSet({Value("zzz")}).empty());
}

TEST(ProvenanceGraphTest, MergeRate) {
  // 4 dirty values, 3 merged into 1 clean value + 1 untouched.
  std::vector<Value> dirty_values{Value("a"), Value("b"), Value("c"),
                                  Value("d")};
  std::vector<Value> clean_values{Value("m"), Value("m"), Value("m"),
                                  Value("d")};
  ProvenanceGraph g = *ProvenanceGraph::Build(
      MakeColumn(dirty_values), MakeColumn(clean_values),
      Domain::FromValues(dirty_values));
  // l/N = 3/4, l'/N' = 1/2 -> merge rate 0.25.
  EXPECT_NEAR(g.MergeRate({Value("m")}), 0.25, 1e-12);
  // Untouched value: l/N = 1/4, l'/N' = 1/2 -> negative merge rate.
  EXPECT_NEAR(g.MergeRate({Value("d")}), -0.25, 1e-12);
}

TEST(ProvenanceGraphTest, IdentityMergeRateIsZero) {
  std::vector<Value> values{Value("a"), Value("b"), Value("c")};
  ProvenanceGraph g = *ProvenanceGraph::Build(
      MakeColumn(values), MakeColumn(values), Domain::FromValues(values));
  EXPECT_NEAR(g.MergeRate({Value("a")}), 0.0, 1e-12);
  EXPECT_NEAR(g.MergeRate({Value("a"), Value("b")}), 0.0, 1e-12);
}

TEST(ProvenanceGraphTest, RejectsLengthMismatch) {
  Column dirty = MakeColumn({Value("a"), Value("b")});
  Column clean = MakeColumn({Value("a")});
  EXPECT_FALSE(ProvenanceGraph::Build(
                   dirty, clean, Domain::FromValues({Value("a"), Value("b")}))
                   .ok());
}

TEST(ProvenanceGraphTest, RejectsSnapshotValueOutsideDomain) {
  Column dirty = MakeColumn({Value("a"), Value("rogue")});
  Column clean = MakeColumn({Value("a"), Value("a")});
  auto r =
      ProvenanceGraph::Build(dirty, clean, Domain::FromValues({Value("a")}));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST(ProvenanceGraphTest, RejectsEmptyDomain) {
  Column dirty = MakeColumn({});
  Column clean = MakeColumn({});
  EXPECT_FALSE(
      ProvenanceGraph::Build(dirty, clean, Domain::FromValues({})).ok());
}

TEST(ProvenanceGraphTest, DomainLargerThanRelation) {
  // A dirty domain value with zero surviving rows still counts toward N.
  std::vector<Value> domain_values{Value("a"), Value("b"), Value("ghost")};
  Column dirty = MakeColumn({Value("a"), Value("b")});
  Column clean = MakeColumn({Value("a"), Value("b")});
  ProvenanceGraph g = *ProvenanceGraph::Build(
      dirty, clean, Domain::FromValues(domain_values));
  EXPECT_EQ(g.num_dirty_values(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
}

}  // namespace
}  // namespace privateclean
