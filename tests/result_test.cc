#include "common/result.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

namespace privateclean {
namespace {

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.status().message(), "nope");
}

TEST(ResultTest, ImplicitValueConstruction) {
  auto make = []() -> Result<std::string> { return std::string("hello"); };
  Result<std::string> r = make();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "hello");
}

TEST(ResultTest, ImplicitStatusConstruction) {
  auto make = []() -> Result<std::string> {
    return Status::InvalidArgument("bad");
  };
  EXPECT_FALSE(make().ok());
}

TEST(ResultTest, DereferenceOperators) {
  Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
  EXPECT_EQ(r->size(), 3u);
  EXPECT_EQ((*r)[1], 2);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(*v, 7);
}

TEST(ResultTest, MutableAccess) {
  Result<std::vector<int>> r(std::vector<int>{1});
  r.ValueOrDie().push_back(2);
  EXPECT_EQ(r->size(), 2u);
}

TEST(ResultTest, AssignOrReturnMacroSuccess) {
  auto inner = []() -> Result<int> { return 10; };
  auto outer = [&]() -> Result<int> {
    PCLEAN_ASSIGN_OR_RETURN(int v, inner());
    return v * 2;
  };
  Result<int> r = outer();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 20);
}

TEST(ResultTest, AssignOrReturnMacroPropagatesError) {
  auto inner = []() -> Result<int> { return Status::OutOfRange("over"); };
  auto outer = [&]() -> Result<int> {
    PCLEAN_ASSIGN_OR_RETURN(int v, inner());
    return v * 2;
  };
  Result<int> r = outer();
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsOutOfRange());
}

TEST(ResultTest, AssignOrReturnIntoExistingVariable) {
  auto inner = []() -> Result<int> { return 5; };
  auto outer = [&]() -> Status {
    int v = 0;
    PCLEAN_ASSIGN_OR_RETURN(v, inner());
    return v == 5 ? Status::OK() : Status::Internal("wrong");
  };
  EXPECT_TRUE(outer().ok());
}

TEST(ResultTest, CopyableWhenValueCopyable) {
  Result<std::string> r(std::string("abc"));
  Result<std::string> copy = r;
  EXPECT_EQ(*copy, "abc");
  EXPECT_EQ(*r, "abc");
}

TEST(ResultDeathTest, ValueOfErrorAborts) {
  Result<int> r = Status::Internal("boom");
  EXPECT_DEATH((void)r.ValueOrDie(), "");
}

TEST(ResultDeathTest, OkStatusIntoResultAborts) {
  EXPECT_DEATH({ Result<int> r = Status::OK(); (void)r; }, "");
}

}  // namespace
}  // namespace privateclean
