#include "query/sql.h"

#include <gtest/gtest.h>

#include "core/sql_execution.h"
#include "datagen/synthetic.h"
#include "table/table_builder.h"

namespace privateclean {
namespace {

// --- Parsing: aggregates ---------------------------------------------------

TEST(SqlParseTest, CountForms) {
  for (const char* sql :
       {"SELECT count(1) FROM r", "SELECT COUNT(*) FROM r",
        "select Count( 1 ) from r"}) {
    ParsedSql p = *ParseSql(sql);
    EXPECT_EQ(p.query.agg, AggregateType::kCount) << sql;
    EXPECT_EQ(p.table_name, "r") << sql;
    EXPECT_FALSE(p.query.predicate.has_value()) << sql;
  }
}

TEST(SqlParseTest, NumericAggregates) {
  EXPECT_EQ(ParseSql("SELECT sum(score) FROM r")->query.agg,
            AggregateType::kSum);
  EXPECT_EQ(ParseSql("SELECT avg(score) FROM r")->query.agg,
            AggregateType::kAvg);
  EXPECT_EQ(ParseSql("SELECT median(score) FROM r")->query.agg,
            AggregateType::kMedian);
  EXPECT_EQ(ParseSql("SELECT var(score) FROM r")->query.agg,
            AggregateType::kVar);
  EXPECT_EQ(ParseSql("SELECT std(score) FROM r")->query.agg,
            AggregateType::kStd);
  EXPECT_EQ(ParseSql("SELECT sum(score) FROM r")->query.numeric_attribute,
            "score");
}

TEST(SqlParseTest, Percentile) {
  ParsedSql p = *ParseSql("SELECT percentile(score, 90) FROM r");
  EXPECT_EQ(p.query.agg, AggregateType::kPercentile);
  EXPECT_EQ(p.query.numeric_attribute, "score");
  EXPECT_DOUBLE_EQ(p.query.percentile, 90.0);
  EXPECT_DOUBLE_EQ(
      ParseSql("SELECT percentile(score, 12.5) FROM r")->query.percentile,
      12.5);
}

TEST(SqlParseTest, PercentileRejectsBadRank) {
  EXPECT_FALSE(ParseSql("SELECT percentile(score) FROM r").ok());
  EXPECT_FALSE(ParseSql("SELECT percentile(score, 101) FROM r").ok());
  EXPECT_FALSE(ParseSql("SELECT percentile(score, -1) FROM r").ok());
  EXPECT_FALSE(ParseSql("SELECT percentile(score, 'x') FROM r").ok());
}

TEST(SqlParseTest, RejectsBadAggregates) {
  EXPECT_FALSE(ParseSql("SELECT max(score) FROM r").ok());
  EXPECT_FALSE(ParseSql("SELECT min(score) FROM r").ok());
  EXPECT_FALSE(ParseSql("SELECT count(score) FROM r").ok());
  EXPECT_FALSE(ParseSql("SELECT sum() FROM r").ok());
  EXPECT_FALSE(ParseSql("SELECT sum(score FROM r").ok());
}

// --- Parsing: conditions -----------------------------------------------------

TEST(SqlParseTest, EqualsString) {
  ParsedSql p =
      *ParseSql("SELECT count(1) FROM r WHERE major = 'Mech. Eng.'");
  ASSERT_TRUE(p.query.predicate.has_value());
  EXPECT_EQ(p.query.predicate->attribute(), "major");
  EXPECT_TRUE(p.query.predicate->Matches(Value("Mech. Eng.")));
  EXPECT_FALSE(p.query.predicate->Matches(Value("Math")));
}

TEST(SqlParseTest, StringEscapes) {
  ParsedSql p =
      *ParseSql("SELECT count(1) FROM r WHERE name = 'O''Brien'");
  EXPECT_TRUE(p.query.predicate->Matches(Value("O'Brien")));
}

TEST(SqlParseTest, NumericLiterals) {
  ParsedSql p = *ParseSql("SELECT count(1) FROM r WHERE section = 3");
  EXPECT_TRUE(p.query.predicate->Matches(Value(3)));
  EXPECT_FALSE(p.query.predicate->Matches(Value(3.0)));  // Typed equality.
  ParsedSql q = *ParseSql("SELECT count(1) FROM r WHERE x = 2.5");
  EXPECT_TRUE(q.query.predicate->Matches(Value(2.5)));
  ParsedSql neg = *ParseSql("SELECT count(1) FROM r WHERE x = -7");
  EXPECT_TRUE(neg.query.predicate->Matches(Value(-7)));
}

TEST(SqlParseTest, NotEquals) {
  for (const char* sql :
       {"SELECT count(1) FROM r WHERE major != 'EECS'",
        "SELECT count(1) FROM r WHERE major <> 'EECS'"}) {
    ParsedSql p = *ParseSql(sql);
    EXPECT_FALSE(p.query.predicate->Matches(Value("EECS"))) << sql;
    EXPECT_TRUE(p.query.predicate->Matches(Value("Math"))) << sql;
    EXPECT_TRUE(p.query.predicate->Matches(Value::Null())) << sql;
  }
}

TEST(SqlParseTest, InList) {
  ParsedSql p = *ParseSql(
      "SELECT count(1) FROM r WHERE country IN ('FR', 'DE', 'IT')");
  EXPECT_TRUE(p.query.predicate->Matches(Value("DE")));
  EXPECT_FALSE(p.query.predicate->Matches(Value("US")));
}

TEST(SqlParseTest, InListWithNullAndNumbers) {
  ParsedSql p =
      *ParseSql("SELECT count(1) FROM r WHERE x IN (1, 2, NULL)");
  EXPECT_TRUE(p.query.predicate->Matches(Value(1)));
  EXPECT_TRUE(p.query.predicate->Matches(Value::Null()));
  EXPECT_FALSE(p.query.predicate->Matches(Value(3)));
}

TEST(SqlParseTest, IsNullForms) {
  ParsedSql is_null =
      *ParseSql("SELECT count(1) FROM r WHERE id IS NULL");
  EXPECT_TRUE(is_null.query.predicate->Matches(Value::Null()));
  EXPECT_FALSE(is_null.query.predicate->Matches(Value("x")));
  ParsedSql not_null =
      *ParseSql("SELECT count(1) FROM r WHERE id is not null");
  EXPECT_FALSE(not_null.query.predicate->Matches(Value::Null()));
  EXPECT_TRUE(not_null.query.predicate->Matches(Value("x")));
}

TEST(SqlParseTest, EqualsNullLiteral) {
  ParsedSql p = *ParseSql("SELECT count(1) FROM r WHERE id = NULL");
  EXPECT_TRUE(p.query.predicate->Matches(Value::Null()));
}

TEST(SqlParseTest, QuotedIdentifier) {
  ParsedSql p = *ParseSql(
      "SELECT count(1) FROM r WHERE \"country code\" = 'US'");
  EXPECT_EQ(p.query.predicate->attribute(), "country code");
}

// --- Parsing: conjunctions -----------------------------------------------------

TEST(SqlParseTest, CountWithAnd) {
  ParsedSql p = *ParseSql(
      "SELECT count(1) FROM r WHERE dept = 'EECS' AND campus = 'North'");
  ASSERT_TRUE(p.conjunct.has_value());
  EXPECT_EQ(p.query.predicate->attribute(), "dept");
  EXPECT_EQ(p.conjunct->attribute(), "campus");
}

TEST(SqlParseTest, AndRejectedForSum) {
  auto r = ParseSql(
      "SELECT sum(x) FROM r WHERE a = '1' AND b = '2'");
  EXPECT_FALSE(r.ok());
}

TEST(SqlParseTest, AndOnSameAttributeRejected) {
  auto r = ParseSql(
      "SELECT count(1) FROM r WHERE a = '1' AND a = '2'");
  EXPECT_FALSE(r.ok());
}

// --- Parsing: errors -----------------------------------------------------------

TEST(SqlParseTest, SyntaxErrors) {
  const char* bad[] = {
      "",
      "SELECT",
      "count(1) FROM r",
      "SELECT count(1)",
      "SELECT count(1) FROM",
      "SELECT count(1) FROM r WHERE",
      "SELECT count(1) FROM r WHERE major",
      "SELECT count(1) FROM r WHERE major = ",
      "SELECT count(1) FROM r WHERE major = 'unterminated",
      "SELECT count(1) FROM r WHERE major IN ()",
      "SELECT count(1) FROM r WHERE major IN ('a',)",
      "SELECT count(1) FROM r WHERE major IS",
      "SELECT count(1) FROM r trailing",
      "SELECT count(1) FROM r WHERE a = 'x' AND",
      "SELECT count(1) FROM r WHERE a = bareword",
  };
  for (const char* sql : bad) {
    EXPECT_FALSE(ParseSql(sql).ok()) << "should reject: " << sql;
  }
}

TEST(SqlParseTest, ErrorsCarryPosition) {
  auto r = ParseSql("SELECT count(1) FROM r WHERE major @@ 'x'");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("position"), std::string::npos);
}

// --- Parsing: literal regression suite ------------------------------------------

TEST(SqlParseTest, DoubledQuoteEscapesInsideInList) {
  ParsedSql p = *ParseSql(
      "SELECT count(1) FROM r WHERE name IN ('O''Brien', '', '''')");
  EXPECT_TRUE(p.query.predicate->Matches(Value("O'Brien")));
  EXPECT_TRUE(p.query.predicate->Matches(Value("")));   // Empty literal.
  EXPECT_TRUE(p.query.predicate->Matches(Value("'")));  // Just a quote.
  EXPECT_FALSE(p.query.predicate->Matches(Value("OBrien")));
  EXPECT_FALSE(p.query.predicate->Matches(Value::Null()));
}

TEST(SqlParseTest, SignedAndExponentNumericLiterals) {
  // Leading '+' is grammar-visible but must parse as the unsigned value
  // (std::from_chars would otherwise reject the token text).
  EXPECT_TRUE(ParseSql("SELECT count(1) FROM r WHERE x = +5")
                  ->query.predicate->Matches(Value(5)));
  EXPECT_TRUE(ParseSql("SELECT count(1) FROM r WHERE x = +2.5")
                  ->query.predicate->Matches(Value(2.5)));
  EXPECT_TRUE(ParseSql("SELECT count(1) FROM r WHERE x = -1e3")
                  ->query.predicate->Matches(Value(-1000.0)));
  EXPECT_TRUE(ParseSql("SELECT count(1) FROM r WHERE x = 2E-2")
                  ->query.predicate->Matches(Value(0.02)));
  EXPECT_TRUE(ParseSql("SELECT count(1) FROM r WHERE x = +1e+2")
                  ->query.predicate->Matches(Value(100.0)));
  ParsedSql in = *ParseSql(
      "SELECT count(1) FROM r WHERE x IN (-3, +4, 1.5e1)");
  EXPECT_TRUE(in.query.predicate->Matches(Value(-3)));
  EXPECT_TRUE(in.query.predicate->Matches(Value(4)));
  EXPECT_TRUE(in.query.predicate->Matches(Value(15.0)));
}

TEST(SqlParseTest, MalformedNumericLiteralsArePositionedErrors) {
  for (const char* sql : {
           "SELECT count(1) FROM r WHERE x = 1.2.3",
           "SELECT count(1) FROM r WHERE x = 1e",
           "SELECT count(1) FROM r WHERE x = 1e+",
           "SELECT count(1) FROM r WHERE x = 99999999999999999999",
           "SELECT percentile(score, 1.2.3) FROM r",
       }) {
    auto r = ParseSql(sql);
    ASSERT_FALSE(r.ok()) << "should reject: " << sql;
    EXPECT_NE(r.status().message().find("position"), std::string::npos)
        << sql << " -> " << r.status().message();
  }
}

TEST(SqlParseTest, NotEqualsSpellingsAreEquivalent) {
  ParsedSql bang = *ParseSql("SELECT count(1) FROM r WHERE x != 3");
  ParsedSql diamond = *ParseSql("SELECT count(1) FROM r WHERE x <> 3");
  for (const Value& v : {Value(3), Value(4), Value(3.0), Value::Null()}) {
    EXPECT_EQ(bang.query.predicate->Matches(v),
              diamond.query.predicate->Matches(v));
  }
  // A bare '<' or '!' is not an operator.
  EXPECT_FALSE(ParseSql("SELECT count(1) FROM r WHERE x < 3").ok());
  EXPECT_FALSE(ParseSql("SELECT count(1) FROM r WHERE x ! 3").ok());
}

// --- Execution ------------------------------------------------------------------

class SqlExecutionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Schema schema = *Schema::Make(
        {Field::Discrete("dept"), Field::Discrete("campus"),
         Field::Numerical("score", ValueType::kDouble)});
    TableBuilder b(schema);
    Rng data_rng(1);
    const char* depts[] = {"EECS", "Math", "Bio", "Physics"};
    const char* campuses[] = {"North", "South"};
    for (int i = 0; i < 400; ++i) {
      b.Row({Value(depts[i % 4]), Value(campuses[i % 2]),
             Value(static_cast<double>(i % 10))});
    }
    data_ = *b.Finish();
    Rng rng(2);
    pt_.emplace(*PrivateTable::Create(
        *data_, GrrParams::Uniform(0.1, 1.0), GrrOptions{}, rng));
  }

  std::optional<Table> data_;
  std::optional<PrivateTable> pt_;
};

TEST_F(SqlExecutionTest, CountMatchesProgrammaticApi) {
  QueryResult via_sql =
      *ExecuteSql(*pt_, "SELECT count(1) FROM r WHERE dept = 'EECS'");
  QueryResult via_api = *pt_->Count(Predicate::Equals("dept", "EECS"));
  EXPECT_DOUBLE_EQ(via_sql.estimate, via_api.estimate);
  EXPECT_DOUBLE_EQ(via_sql.ci.lo, via_api.ci.lo);
}

TEST_F(SqlExecutionTest, AvgMatchesProgrammaticApi) {
  QueryResult via_sql = *ExecuteSql(
      *pt_, "SELECT avg(score) FROM r WHERE dept IN ('EECS', 'Math')");
  QueryResult via_api = *pt_->Avg(
      "score", Predicate::In("dept", {Value("EECS"), Value("Math")}));
  EXPECT_DOUBLE_EQ(via_sql.estimate, via_api.estimate);
}

TEST_F(SqlExecutionTest, ConjunctiveCountDispatch) {
  QueryResult via_sql = *ExecuteSql(
      *pt_,
      "SELECT count(1) FROM r WHERE dept = 'EECS' AND campus = 'North'");
  QueryResult via_api = *pt_->CountConjunctive(
      Predicate::Equals("dept", "EECS"),
      Predicate::Equals("campus", "North"));
  EXPECT_DOUBLE_EQ(via_sql.estimate, via_api.estimate);
}

TEST_F(SqlExecutionTest, ExtensionAggregateDispatch) {
  QueryResult median = *ExecuteSql(*pt_, "SELECT median(score) FROM r");
  EXPECT_GE(median.estimate, -5.0);
  EXPECT_LE(median.estimate, 15.0);
  EXPECT_DOUBLE_EQ(median.ci.Width(), 0.0);  // Point estimate.
}

TEST_F(SqlExecutionTest, PercentileDispatch) {
  QueryResult p90 =
      *ExecuteSql(*pt_, "SELECT percentile(score, 90) FROM r");
  QueryResult p10 =
      *ExecuteSql(*pt_, "SELECT percentile(score, 10) FROM r");
  EXPECT_GT(p90.estimate, p10.estimate);
}

TEST_F(SqlExecutionTest, DirectBaseline) {
  QueryResult direct = *ExecuteSqlDirect(
      *pt_, "SELECT count(1) FROM r WHERE dept = 'EECS'");
  EXPECT_EQ(direct.estimator, EstimatorKind::kDirect);
  QueryResult api = *pt_->ExecuteDirect(
      AggregateQuery::Count(Predicate::Equals("dept", "EECS")));
  EXPECT_DOUBLE_EQ(direct.estimate, api.estimate);
}

TEST_F(SqlExecutionTest, DirectConjunctiveIsNominal) {
  QueryResult direct = *ExecuteSqlDirect(
      *pt_,
      "SELECT count(1) FROM r WHERE dept = 'EECS' AND campus = 'North'");
  ConjunctiveScanStats stats = *ScanConjunctive(
      pt_->relation(), Predicate::Equals("dept", "EECS"),
      Predicate::Equals("campus", "North"));
  EXPECT_DOUBLE_EQ(direct.estimate,
                   static_cast<double>(stats.count_tt));
}

TEST_F(SqlExecutionTest, ParseErrorsPropagate) {
  EXPECT_FALSE(ExecuteSql(*pt_, "SELECT nope(1) FROM r").ok());
  EXPECT_FALSE(ExecuteSqlDirect(*pt_, "garbage").ok());
}

TEST_F(SqlExecutionTest, UnknownAttributeFailsAtExecution) {
  auto r = ExecuteSql(*pt_, "SELECT count(1) FROM r WHERE nope = 'x'");
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace privateclean
