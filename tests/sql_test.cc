#include "query/sql.h"

#include <gtest/gtest.h>

#include "core/sql_execution.h"
#include "datagen/synthetic.h"
#include "table/table_builder.h"

namespace privateclean {
namespace {

// --- Parsing: aggregates ---------------------------------------------------

TEST(SqlParseTest, CountForms) {
  for (const char* sql :
       {"SELECT count(1) FROM r", "SELECT COUNT(*) FROM r",
        "select Count( 1 ) from r"}) {
    ParsedSql p = *ParseSql(sql);
    EXPECT_EQ(p.query.agg, AggregateType::kCount) << sql;
    EXPECT_EQ(p.table_name, "r") << sql;
    EXPECT_FALSE(p.query.predicate.has_value()) << sql;
  }
}

TEST(SqlParseTest, NumericAggregates) {
  EXPECT_EQ(ParseSql("SELECT sum(score) FROM r")->query.agg,
            AggregateType::kSum);
  EXPECT_EQ(ParseSql("SELECT avg(score) FROM r")->query.agg,
            AggregateType::kAvg);
  EXPECT_EQ(ParseSql("SELECT median(score) FROM r")->query.agg,
            AggregateType::kMedian);
  EXPECT_EQ(ParseSql("SELECT var(score) FROM r")->query.agg,
            AggregateType::kVar);
  EXPECT_EQ(ParseSql("SELECT std(score) FROM r")->query.agg,
            AggregateType::kStd);
  EXPECT_EQ(ParseSql("SELECT sum(score) FROM r")->query.numeric_attribute,
            "score");
}

TEST(SqlParseTest, Percentile) {
  ParsedSql p = *ParseSql("SELECT percentile(score, 90) FROM r");
  EXPECT_EQ(p.query.agg, AggregateType::kPercentile);
  EXPECT_EQ(p.query.numeric_attribute, "score");
  EXPECT_DOUBLE_EQ(p.query.percentile, 90.0);
  EXPECT_DOUBLE_EQ(
      ParseSql("SELECT percentile(score, 12.5) FROM r")->query.percentile,
      12.5);
}

TEST(SqlParseTest, PercentileRejectsBadRank) {
  EXPECT_FALSE(ParseSql("SELECT percentile(score) FROM r").ok());
  EXPECT_FALSE(ParseSql("SELECT percentile(score, 101) FROM r").ok());
  EXPECT_FALSE(ParseSql("SELECT percentile(score, -1) FROM r").ok());
  EXPECT_FALSE(ParseSql("SELECT percentile(score, 'x') FROM r").ok());
}

TEST(SqlParseTest, MinMaxParse) {
  EXPECT_EQ(ParseSql("SELECT max(score) FROM r")->query.agg,
            AggregateType::kMax);
  EXPECT_EQ(ParseSql("SELECT min(score) FROM r")->query.agg,
            AggregateType::kMin);
}

TEST(SqlParseTest, RejectsBadAggregates) {
  EXPECT_FALSE(ParseSql("SELECT nope(score) FROM r").ok());
  EXPECT_FALSE(ParseSql("SELECT count(score) FROM r").ok());
  EXPECT_FALSE(ParseSql("SELECT sum() FROM r").ok());
  EXPECT_FALSE(ParseSql("SELECT sum(score FROM r").ok());
}

TEST(SqlParseTest, CountArgumentComparesValueNotTokenText) {
  // Regression: the check used to be token-text-exact on "1", so
  // spellings of the value 1 failed with a misleading error.
  for (const char* sql :
       {"SELECT count(01) FROM r", "SELECT count(+1) FROM r",
        "SELECT count(1.0) FROM r"}) {
    EXPECT_EQ(ParseSql(sql)->query.agg, AggregateType::kCount) << sql;
  }
  auto r = ParseSql("SELECT count(2) FROM r");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("COUNT takes 1 or *"),
            std::string::npos);
  EXPECT_NE(r.status().message().find("position"), std::string::npos);
}

// --- Parsing: conditions -----------------------------------------------------

TEST(SqlParseTest, EqualsString) {
  ParsedSql p =
      *ParseSql("SELECT count(1) FROM r WHERE major = 'Mech. Eng.'");
  ASSERT_TRUE(p.query.predicate.has_value());
  EXPECT_EQ(p.query.predicate->attribute(), "major");
  EXPECT_TRUE(p.query.predicate->Matches(Value("Mech. Eng.")));
  EXPECT_FALSE(p.query.predicate->Matches(Value("Math")));
}

TEST(SqlParseTest, StringEscapes) {
  ParsedSql p =
      *ParseSql("SELECT count(1) FROM r WHERE name = 'O''Brien'");
  EXPECT_TRUE(p.query.predicate->Matches(Value("O'Brien")));
}

TEST(SqlParseTest, NumericLiterals) {
  ParsedSql p = *ParseSql("SELECT count(1) FROM r WHERE section = 3");
  EXPECT_TRUE(p.query.predicate->Matches(Value(3)));
  EXPECT_FALSE(p.query.predicate->Matches(Value(3.0)));  // Typed equality.
  ParsedSql q = *ParseSql("SELECT count(1) FROM r WHERE x = 2.5");
  EXPECT_TRUE(q.query.predicate->Matches(Value(2.5)));
  ParsedSql neg = *ParseSql("SELECT count(1) FROM r WHERE x = -7");
  EXPECT_TRUE(neg.query.predicate->Matches(Value(-7)));
}

TEST(SqlParseTest, NotEquals) {
  for (const char* sql :
       {"SELECT count(1) FROM r WHERE major != 'EECS'",
        "SELECT count(1) FROM r WHERE major <> 'EECS'"}) {
    ParsedSql p = *ParseSql(sql);
    EXPECT_FALSE(p.query.predicate->Matches(Value("EECS"))) << sql;
    EXPECT_TRUE(p.query.predicate->Matches(Value("Math"))) << sql;
    EXPECT_TRUE(p.query.predicate->Matches(Value::Null())) << sql;
  }
}

TEST(SqlParseTest, InList) {
  ParsedSql p = *ParseSql(
      "SELECT count(1) FROM r WHERE country IN ('FR', 'DE', 'IT')");
  EXPECT_TRUE(p.query.predicate->Matches(Value("DE")));
  EXPECT_FALSE(p.query.predicate->Matches(Value("US")));
}

TEST(SqlParseTest, InListWithNullAndNumbers) {
  ParsedSql p =
      *ParseSql("SELECT count(1) FROM r WHERE x IN (1, 2, NULL)");
  EXPECT_TRUE(p.query.predicate->Matches(Value(1)));
  EXPECT_TRUE(p.query.predicate->Matches(Value::Null()));
  EXPECT_FALSE(p.query.predicate->Matches(Value(3)));
}

TEST(SqlParseTest, IsNullForms) {
  ParsedSql is_null =
      *ParseSql("SELECT count(1) FROM r WHERE id IS NULL");
  EXPECT_TRUE(is_null.query.predicate->Matches(Value::Null()));
  EXPECT_FALSE(is_null.query.predicate->Matches(Value("x")));
  ParsedSql not_null =
      *ParseSql("SELECT count(1) FROM r WHERE id is not null");
  EXPECT_FALSE(not_null.query.predicate->Matches(Value::Null()));
  EXPECT_TRUE(not_null.query.predicate->Matches(Value("x")));
}

TEST(SqlParseTest, EqualsNullLiteral) {
  ParsedSql p = *ParseSql("SELECT count(1) FROM r WHERE id = NULL");
  EXPECT_TRUE(p.query.predicate->Matches(Value::Null()));
}

TEST(SqlParseTest, QuotedIdentifier) {
  ParsedSql p = *ParseSql(
      "SELECT count(1) FROM r WHERE \"country code\" = 'US'");
  EXPECT_EQ(p.query.predicate->attribute(), "country code");
}

// --- Parsing: conjunctions -----------------------------------------------------

TEST(SqlParseTest, CountWithAnd) {
  ParsedSql p = *ParseSql(
      "SELECT count(1) FROM r WHERE dept = 'EECS' AND campus = 'North'");
  ASSERT_TRUE(p.conjunct.has_value());
  EXPECT_EQ(p.query.predicate->attribute(), "dept");
  EXPECT_EQ(p.conjunct->attribute(), "campus");
}

TEST(SqlParseTest, AndForSumParsesButHasNoPlan) {
  // Pure syntax accepts the tree; PlanWhere rejects it (the conjunctive
  // estimator is derived for COUNT only) and execution surfaces that.
  ParsedSql p = *ParseSql("SELECT sum(x) FROM r WHERE a = '1' AND b = '2'");
  ASSERT_TRUE(p.where.has_value());
  EXPECT_FALSE(p.query.predicate.has_value());
  EXPECT_FALSE(p.conjunct.has_value());
  auto plan = PlanWhere(*p.where, p.query.agg);
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(plan.status().message().find("not privately answerable"),
            std::string::npos);
}

TEST(SqlParseTest, AndOnSameAttributeCollapsesToOnePredicate) {
  // Same-attribute conjunctions are single-attribute trees: they
  // collapse to one predicate (here unsatisfiable) instead of erroring.
  ParsedSql p = *ParseSql(
      "SELECT count(1) FROM r WHERE a = '1' AND a = '2'");
  ASSERT_TRUE(p.query.predicate.has_value());
  EXPECT_FALSE(p.conjunct.has_value());
  EXPECT_FALSE(p.query.predicate->Matches(Value("1")));
  EXPECT_FALSE(p.query.predicate->Matches(Value("2")));
  ParsedSql range = *ParseSql(
      "SELECT count(1) FROM r WHERE a >= 2 AND a < 5");
  ASSERT_TRUE(range.query.predicate.has_value());
  EXPECT_TRUE(range.query.predicate->Matches(Value(2)));
  EXPECT_TRUE(range.query.predicate->Matches(Value(4)));
  EXPECT_FALSE(range.query.predicate->Matches(Value(5)));
  EXPECT_FALSE(range.query.predicate->Matches(Value(1)));
  EXPECT_FALSE(range.query.predicate->Matches(Value::Null()));
}

// --- Parsing: errors -----------------------------------------------------------

TEST(SqlParseTest, SyntaxErrors) {
  const char* bad[] = {
      "",
      "SELECT",
      "count(1) FROM r",
      "SELECT count(1)",
      "SELECT count(1) FROM",
      "SELECT count(1) FROM r WHERE",
      "SELECT count(1) FROM r WHERE major",
      "SELECT count(1) FROM r WHERE major = ",
      "SELECT count(1) FROM r WHERE major = 'unterminated",
      "SELECT count(1) FROM r WHERE major IN ()",
      "SELECT count(1) FROM r WHERE major IN ('a',)",
      "SELECT count(1) FROM r WHERE major IS",
      "SELECT count(1) FROM r trailing",
      "SELECT count(1) FROM r WHERE a = 'x' AND",
      "SELECT count(1) FROM r WHERE a = bareword",
  };
  for (const char* sql : bad) {
    EXPECT_FALSE(ParseSql(sql).ok()) << "should reject: " << sql;
  }
}

TEST(SqlParseTest, ErrorsCarryPosition) {
  auto r = ParseSql("SELECT count(1) FROM r WHERE major @@ 'x'");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("position"), std::string::npos);
}

// --- Parsing: literal regression suite ------------------------------------------

TEST(SqlParseTest, DoubledQuoteEscapesInsideInList) {
  ParsedSql p = *ParseSql(
      "SELECT count(1) FROM r WHERE name IN ('O''Brien', '', '''')");
  EXPECT_TRUE(p.query.predicate->Matches(Value("O'Brien")));
  EXPECT_TRUE(p.query.predicate->Matches(Value("")));   // Empty literal.
  EXPECT_TRUE(p.query.predicate->Matches(Value("'")));  // Just a quote.
  EXPECT_FALSE(p.query.predicate->Matches(Value("OBrien")));
  EXPECT_FALSE(p.query.predicate->Matches(Value::Null()));
}

TEST(SqlParseTest, SignedAndExponentNumericLiterals) {
  // Leading '+' is grammar-visible but must parse as the unsigned value
  // (std::from_chars would otherwise reject the token text).
  EXPECT_TRUE(ParseSql("SELECT count(1) FROM r WHERE x = +5")
                  ->query.predicate->Matches(Value(5)));
  EXPECT_TRUE(ParseSql("SELECT count(1) FROM r WHERE x = +2.5")
                  ->query.predicate->Matches(Value(2.5)));
  EXPECT_TRUE(ParseSql("SELECT count(1) FROM r WHERE x = -1e3")
                  ->query.predicate->Matches(Value(-1000.0)));
  EXPECT_TRUE(ParseSql("SELECT count(1) FROM r WHERE x = 2E-2")
                  ->query.predicate->Matches(Value(0.02)));
  EXPECT_TRUE(ParseSql("SELECT count(1) FROM r WHERE x = +1e+2")
                  ->query.predicate->Matches(Value(100.0)));
  ParsedSql in = *ParseSql(
      "SELECT count(1) FROM r WHERE x IN (-3, +4, 1.5e1)");
  EXPECT_TRUE(in.query.predicate->Matches(Value(-3)));
  EXPECT_TRUE(in.query.predicate->Matches(Value(4)));
  EXPECT_TRUE(in.query.predicate->Matches(Value(15.0)));
}

TEST(SqlParseTest, MalformedNumericLiteralsArePositionedErrors) {
  for (const char* sql : {
           "SELECT count(1) FROM r WHERE x = 1.2.3",
           "SELECT count(1) FROM r WHERE x = 1e",
           "SELECT count(1) FROM r WHERE x = 1e+",
           "SELECT count(1) FROM r WHERE x = 99999999999999999999",
           "SELECT percentile(score, 1.2.3) FROM r",
       }) {
    auto r = ParseSql(sql);
    ASSERT_FALSE(r.ok()) << "should reject: " << sql;
    EXPECT_NE(r.status().message().find("position"), std::string::npos)
        << sql << " -> " << r.status().message();
  }
}

TEST(SqlParseTest, NotEqualsSpellingsAreEquivalent) {
  ParsedSql bang = *ParseSql("SELECT count(1) FROM r WHERE x != 3");
  ParsedSql diamond = *ParseSql("SELECT count(1) FROM r WHERE x <> 3");
  for (const Value& v : {Value(3), Value(4), Value(3.0), Value::Null()}) {
    EXPECT_EQ(bang.query.predicate->Matches(v),
              diamond.query.predicate->Matches(v));
  }
  // A bare '!' is not an operator ('<' now is — ordering comparison).
  EXPECT_TRUE(ParseSql("SELECT count(1) FROM r WHERE x < 3").ok());
  EXPECT_FALSE(ParseSql("SELECT count(1) FROM r WHERE x ! 3").ok());
}

// --- Parsing: comparison operators ------------------------------------------

TEST(SqlParseTest, OrderingComparisons) {
  ParsedSql le = *ParseSql("SELECT count(1) FROM r WHERE x <= 3");
  EXPECT_TRUE(le.query.predicate->Matches(Value(3)));
  EXPECT_TRUE(le.query.predicate->Matches(Value(2.5)));  // Promotion.
  EXPECT_FALSE(le.query.predicate->Matches(Value(4)));
  EXPECT_FALSE(le.query.predicate->Matches(Value::Null()));

  ParsedSql gt = *ParseSql("SELECT count(1) FROM r WHERE x > 3");
  EXPECT_FALSE(gt.query.predicate->Matches(Value(3)));
  EXPECT_TRUE(gt.query.predicate->Matches(Value(3.5)));
  EXPECT_FALSE(gt.query.predicate->Matches(Value("zzz")));  // Mixed types.

  ParsedSql ge = *ParseSql("SELECT count(1) FROM r WHERE s >= 'M'");
  EXPECT_TRUE(ge.query.predicate->Matches(Value("Math")));
  EXPECT_FALSE(ge.query.predicate->Matches(Value("EECS")));
}

TEST(SqlParseTest, BooleanTreesOnOneAttributeCollapse) {
  ParsedSql p = *ParseSql(
      "SELECT count(1) FROM r WHERE NOT (x < 2 OR x > 8)");
  ASSERT_TRUE(p.query.predicate.has_value());
  EXPECT_TRUE(p.query.predicate->Matches(Value(5)));
  EXPECT_TRUE(p.query.predicate->Matches(Value(2)));
  EXPECT_FALSE(p.query.predicate->Matches(Value(1)));
  EXPECT_FALSE(p.query.predicate->Matches(Value(9)));
  // NULL satisfies neither x < 2 nor x > 8, so NOT(...) matches it.
  EXPECT_TRUE(p.query.predicate->Matches(Value::Null()));
}

TEST(SqlParseTest, ParenthesizedConjunctionGroupsPlanConjunctive) {
  ParsedSql p = *ParseSql(
      "SELECT count(1) FROM r WHERE (a >= 2 AND a < 5) AND (b = 'x' OR "
      "b = 'y')");
  ASSERT_TRUE(p.query.predicate.has_value());
  ASSERT_TRUE(p.conjunct.has_value());
  EXPECT_EQ(p.query.predicate->attribute(), "a");
  EXPECT_EQ(p.conjunct->attribute(), "b");
  EXPECT_TRUE(p.query.predicate->Matches(Value(3)));
  EXPECT_FALSE(p.query.predicate->Matches(Value(5)));
  EXPECT_TRUE(p.conjunct->Matches(Value("y")));
  EXPECT_FALSE(p.conjunct->Matches(Value("z")));
}

// --- Parsing: quoted identifiers (satellite regressions) --------------------

TEST(SqlParseTest, QuotedNameIsNeverAKeywordOrLiteral) {
  // Regression: quoted tokens used to be indistinguishable from bare
  // ones, so "null" parsed as the NULL literal and "where" as WHERE.
  auto r = ParseSql("SELECT count(1) FROM r WHERE a = \"null\"");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("position 33"), std::string::npos)
      << r.status().message();
  EXPECT_NE(r.status().message().find("identifier, not a literal"),
            std::string::npos);

  ParsedSql kw = *ParseSql(
      "SELECT count(1) FROM r WHERE \"where\" = 'x'");
  EXPECT_EQ(kw.query.predicate->attribute(), "where");
  ParsedSql null_attr = *ParseSql(
      "SELECT count(1) FROM r WHERE \"null\" IS NULL");
  EXPECT_EQ(null_attr.query.predicate->attribute(), "null");
}

TEST(SqlParseTest, EmptyQuotedIdentifierRejected) {
  auto r = ParseSql("SELECT count(1) FROM r WHERE \"\" = 'x'");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("empty quoted identifier"),
            std::string::npos);
  EXPECT_NE(r.status().message().find("position"), std::string::npos);
}

TEST(SqlParseTest, QuotedAggregateNameRejected) {
  auto r = ParseSql("SELECT \"sum\"(x) FROM r");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("cannot name an aggregate"),
            std::string::npos);
}

TEST(SqlParseTest, QuotedTableAndGroupingNames) {
  ParsedSql p = *ParseSql(
      "SELECT count(1) FROM \"my table\" GROUP BY \"group\"");
  EXPECT_EQ(p.table_name, "my table");
  EXPECT_EQ(p.group_by, "group");
}

// --- Parsing: GROUP BY / ORDER BY / LIMIT / DISTINCT ------------------------

TEST(SqlParseTest, GroupByParses) {
  ParsedSql p = *ParseSql("SELECT count(1) FROM t GROUP BY dept");
  EXPECT_EQ(p.group_by, "dept");
  EXPECT_FALSE(p.order_by.has_value());
  EXPECT_FALSE(p.limit.has_value());
}

TEST(SqlParseTest, OrderByAndLimitForms) {
  ParsedSql by_key = *ParseSql(
      "SELECT count(1) FROM t GROUP BY dept ORDER BY dept ASC");
  ASSERT_TRUE(by_key.order_by.has_value());
  EXPECT_FALSE(by_key.order_by->by_estimate);
  EXPECT_FALSE(by_key.order_by->descending);

  ParsedSql by_count = *ParseSql(
      "SELECT count(1) FROM t GROUP BY dept ORDER BY count(*) DESC LIMIT 3");
  ASSERT_TRUE(by_count.order_by.has_value());
  EXPECT_TRUE(by_count.order_by->by_estimate);
  EXPECT_TRUE(by_count.order_by->descending);
  EXPECT_EQ(by_count.limit, 3u);

  ParsedSql distinct = *ParseSql(
      "SELECT DISTINCT dept FROM t ORDER BY dept LIMIT 2");
  EXPECT_TRUE(distinct.select_distinct);
  EXPECT_EQ(distinct.distinct_attribute, "dept");
  EXPECT_EQ(distinct.limit, 2u);
}

TEST(SqlParseTest, CountDistinctParses) {
  ParsedSql p = *ParseSql("SELECT COUNT(DISTINCT dept) FROM r");
  EXPECT_TRUE(p.count_distinct);
  EXPECT_EQ(p.distinct_attribute, "dept");
}

TEST(SqlParseTest, ResultShapingErrorsArePositioned) {
  struct Case {
    const char* sql;
    const char* needle;
  } cases[] = {
      {"SELECT count(1) FROM r ORDER BY g",
       "ORDER BY requires GROUP BY or SELECT DISTINCT"},
      {"SELECT count(1) FROM r LIMIT 5",
       "LIMIT requires GROUP BY or SELECT DISTINCT"},
      {"SELECT count(1) FROM t GROUP BY g ORDER BY other",
       "must be the grouping attribute"},
      {"SELECT count(1) FROM t GROUP BY g LIMIT -1",
       "LIMIT must be non-negative"},
      {"SELECT count(1) FROM t GROUP BY g LIMIT 1.5",
       "LIMIT expects an integer"},
      {"SELECT DISTINCT d FROM t GROUP BY g",
       "SELECT DISTINCT does not take GROUP BY"},
      {"SELECT DISTINCT d FROM t ORDER BY count(1)",
       "ORDER BY COUNT(1) requires GROUP BY"},
  };
  for (const Case& c : cases) {
    auto r = ParseSql(c.sql);
    ASSERT_FALSE(r.ok()) << c.sql;
    EXPECT_NE(r.status().message().find("position"), std::string::npos)
        << c.sql << " -> " << r.status().message();
    EXPECT_NE(r.status().message().find(c.needle), std::string::npos)
        << c.sql << " -> " << r.status().message();
  }
}

TEST(SqlParseTest, EveryRejectionCarriesAPosition) {
  const char* bad[] = {
      "",
      "SELECT count(2) FROM r",
      "SELECT count(1) FROM r WHERE a = \"null\"",
      "SELECT count(1) FROM r WHERE \"\" = 'x'",
      "SELECT \"sum\"(x) FROM r",
      "SELECT count(1) FROM r WHERE NOT",
      "SELECT count(1) FROM r WHERE (a = 1",
      "SELECT count(1) FROM r WHERE a = 1 OR",
      "SELECT count(1) FROM r WHERE a >",
      "SELECT count(1) FROM r WHERE a >= ",
      "SELECT count(1) FROM t GROUP BY",
      "SELECT count(1) FROM t GROUP BY g ORDER",
      "SELECT count(1) FROM t GROUP BY g ORDER BY",
      "SELECT count(1) FROM t GROUP BY g LIMIT",
      "SELECT COUNT(DISTINCT) FROM r",
      "SELECT DISTINCT FROM r",
  };
  for (const char* sql : bad) {
    auto r = ParseSql(sql);
    ASSERT_FALSE(r.ok()) << "should reject: " << sql;
    EXPECT_NE(r.status().message().find("position"), std::string::npos)
        << sql << " -> " << r.status().message();
  }
}

TEST(SqlParseTest, CountArgumentErrorIsPositionedAtTheArgument) {
  auto r = ParseSql("SELECT count(2) FROM r");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("position 13"), std::string::npos)
      << r.status().message();
}

// --- Rendering ---------------------------------------------------------------

TEST(SqlRenderTest, LiteralsAreUnambiguous) {
  EXPECT_EQ(RenderSqlLiteral(Value::Null()), "NULL");
  EXPECT_EQ(RenderSqlLiteral(Value("")), "''");
  EXPECT_EQ(RenderSqlLiteral(Value("O'Brien")), "'O''Brien'");
  EXPECT_EQ(RenderSqlLiteral(Value(3)), "3");
  EXPECT_EQ(RenderSqlLiteral(Value(3.0)), "3.0");  // Type round-trips.
  EXPECT_EQ(RenderSqlLiteral(Value(-2.5)), "-2.5");
}

// Every grammar production round-trips: parse -> render re-parses, and
// rendering is a fixed point (render(parse(render(q))) == render(parse(q))).
TEST(SqlRenderTest, RoundTripIsAFixedPointForEveryProduction) {
  const char* queries[] = {
      "SELECT count(1) FROM r",
      "SELECT COUNT(*) FROM r",
      "SELECT sum(score) FROM r WHERE dept = 'EECS'",
      "SELECT avg(score) FROM r WHERE score >= 2.5",
      "SELECT min(score) FROM r",
      "SELECT max(score) FROM r",
      "SELECT median(score) FROM r",
      "SELECT var(score) FROM r",
      "SELECT std(score) FROM r",
      "SELECT percentile(score, 90) FROM r",
      "SELECT percentile(score, 12.5) FROM r WHERE x != 3",
      "SELECT count(1) FROM r WHERE x < 3",
      "SELECT count(1) FROM r WHERE x <= 3",
      "SELECT count(1) FROM r WHERE x > 3",
      "SELECT count(1) FROM r WHERE x >= 3",
      "SELECT count(1) FROM r WHERE x <> 3",
      "SELECT count(1) FROM r WHERE x = -1.5e3",
      "SELECT count(1) FROM r WHERE x = +7",
      "SELECT count(1) FROM r WHERE name = 'O''Brien'",
      "SELECT count(1) FROM r WHERE x IN (1, 2.5, 'x', NULL)",
      "SELECT count(1) FROM r WHERE x IS NULL",
      "SELECT count(1) FROM r WHERE x IS NOT NULL",
      "SELECT count(1) FROM r WHERE NOT x = 3",
      "SELECT count(1) FROM r WHERE NOT (x < 2 OR x > 8)",
      "SELECT count(1) FROM r WHERE a = 1 AND b = 2 AND c = 3",
      "SELECT count(1) FROM r WHERE a = 1 OR b = 2",
      "SELECT count(1) FROM r WHERE (a = 1 OR b = 2) AND c = 3",
      "SELECT count(1) FROM r WHERE \"country code\" = 'US'",
      "SELECT count(1) FROM r WHERE \"where\" = 'x'",
      "SELECT count(1) FROM \"my table\"",
      "SELECT count(1) FROM t GROUP BY dept",
      "SELECT count(1) FROM t GROUP BY dept ORDER BY dept",
      "SELECT count(1) FROM t GROUP BY dept ORDER BY dept DESC",
      "SELECT count(1) FROM t GROUP BY dept ORDER BY count(1) DESC LIMIT 3",
      "SELECT count(1) FROM t GROUP BY \"count\" ORDER BY \"count\"",
      "SELECT DISTINCT dept FROM t",
      "SELECT DISTINCT dept FROM t ORDER BY dept LIMIT 2",
      "SELECT COUNT(DISTINCT dept) FROM r",
  };
  for (const char* sql : queries) {
    auto p1 = ParseSql(sql);
    ASSERT_TRUE(p1.ok()) << sql << " -> " << p1.status().message();
    std::string rendered = RenderSql(*p1);
    auto p2 = ParseSql(rendered);
    ASSERT_TRUE(p2.ok()) << sql << " rendered to unparseable: " << rendered
                         << " -> " << p2.status().message();
    EXPECT_EQ(RenderSql(*p2), rendered) << "not a fixed point for: " << sql;
  }
}

TEST(SqlRenderTest, CanonicalFormNormalizes) {
  EXPECT_EQ(RenderSql(*ParseSql("select Count( * ) from r")),
            "SELECT COUNT(1) FROM r");
  EXPECT_EQ(RenderSql(*ParseSql("SELECT count(1) FROM r WHERE x <> 3")),
            "SELECT COUNT(1) FROM r WHERE x != 3");
  EXPECT_EQ(
      RenderSql(*ParseSql(
          "SELECT count(1) FROM t GROUP BY g ORDER BY count(*) ASC")),
      "SELECT COUNT(1) FROM t GROUP BY g ORDER BY COUNT(1)");
}

// --- Execution ------------------------------------------------------------------

class SqlExecutionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Schema schema = *Schema::Make(
        {Field::Discrete("dept"), Field::Discrete("campus"),
         Field::Numerical("score", ValueType::kDouble)});
    TableBuilder b(schema);
    Rng data_rng(1);
    const char* depts[] = {"EECS", "Math", "Bio", "Physics"};
    const char* campuses[] = {"North", "South"};
    for (int i = 0; i < 400; ++i) {
      b.Row({Value(depts[i % 4]), Value(campuses[i % 2]),
             Value(static_cast<double>(i % 10))});
    }
    data_ = *b.Finish();
    Rng rng(2);
    pt_.emplace(*PrivateTable::Create(
        *data_, GrrParams::Uniform(0.1, 1.0), GrrOptions{}, rng));
  }

  std::optional<Table> data_;
  std::optional<PrivateTable> pt_;
};

TEST_F(SqlExecutionTest, CountMatchesProgrammaticApi) {
  QueryResult via_sql =
      *ExecuteSql(*pt_, "SELECT count(1) FROM r WHERE dept = 'EECS'");
  QueryResult via_api = *pt_->Count(Predicate::Equals("dept", "EECS"));
  EXPECT_DOUBLE_EQ(via_sql.estimate, via_api.estimate);
  EXPECT_DOUBLE_EQ(via_sql.ci.lo, via_api.ci.lo);
}

TEST_F(SqlExecutionTest, AvgMatchesProgrammaticApi) {
  QueryResult via_sql = *ExecuteSql(
      *pt_, "SELECT avg(score) FROM r WHERE dept IN ('EECS', 'Math')");
  QueryResult via_api = *pt_->Avg(
      "score", Predicate::In("dept", {Value("EECS"), Value("Math")}));
  EXPECT_DOUBLE_EQ(via_sql.estimate, via_api.estimate);
}

TEST_F(SqlExecutionTest, ConjunctiveCountDispatch) {
  QueryResult via_sql = *ExecuteSql(
      *pt_,
      "SELECT count(1) FROM r WHERE dept = 'EECS' AND campus = 'North'");
  QueryResult via_api = *pt_->CountConjunctive(
      Predicate::Equals("dept", "EECS"),
      Predicate::Equals("campus", "North"));
  EXPECT_DOUBLE_EQ(via_sql.estimate, via_api.estimate);
}

TEST_F(SqlExecutionTest, ExtensionAggregateDispatch) {
  QueryResult median = *ExecuteSql(*pt_, "SELECT median(score) FROM r");
  EXPECT_GE(median.estimate, -5.0);
  EXPECT_LE(median.estimate, 15.0);
  EXPECT_DOUBLE_EQ(median.ci.Width(), 0.0);  // Point estimate.
}

TEST_F(SqlExecutionTest, PercentileDispatch) {
  QueryResult p90 =
      *ExecuteSql(*pt_, "SELECT percentile(score, 90) FROM r");
  QueryResult p10 =
      *ExecuteSql(*pt_, "SELECT percentile(score, 10) FROM r");
  EXPECT_GT(p90.estimate, p10.estimate);
}

TEST_F(SqlExecutionTest, DirectBaseline) {
  QueryResult direct = *ExecuteSqlDirect(
      *pt_, "SELECT count(1) FROM r WHERE dept = 'EECS'");
  EXPECT_EQ(direct.estimator, EstimatorKind::kDirect);
  QueryResult api = *pt_->ExecuteDirect(
      AggregateQuery::Count(Predicate::Equals("dept", "EECS")));
  EXPECT_DOUBLE_EQ(direct.estimate, api.estimate);
}

TEST_F(SqlExecutionTest, DirectConjunctiveIsNominal) {
  QueryResult direct = *ExecuteSqlDirect(
      *pt_,
      "SELECT count(1) FROM r WHERE dept = 'EECS' AND campus = 'North'");
  ConjunctiveScanStats stats = *ScanConjunctive(
      pt_->relation(), Predicate::Equals("dept", "EECS"),
      Predicate::Equals("campus", "North"));
  EXPECT_DOUBLE_EQ(direct.estimate,
                   static_cast<double>(stats.count_tt));
}

TEST_F(SqlExecutionTest, ParseErrorsPropagate) {
  EXPECT_FALSE(ExecuteSql(*pt_, "SELECT nope(1) FROM r").ok());
  EXPECT_FALSE(ExecuteSqlDirect(*pt_, "garbage").ok());
}

TEST_F(SqlExecutionTest, UnknownAttributeFailsAtExecution) {
  auto r = ExecuteSql(*pt_, "SELECT count(1) FROM r WHERE nope = 'x'");
  EXPECT_FALSE(r.ok());
}

// --- Execution: new grammar forms ------------------------------------------

TEST_F(SqlExecutionTest, RangePredicateRoutesThroughCorrectedCount) {
  QueryResult via_sql =
      *ExecuteSql(*pt_, "SELECT count(1) FROM r WHERE dept >= 'M'");
  QueryResult via_api = *pt_->Count(
      Predicate::Compare("dept", CompareOp::kGe, Value("M")));
  EXPECT_DOUBLE_EQ(via_sql.estimate, via_api.estimate);
  EXPECT_DOUBLE_EQ(via_sql.ci.lo, via_api.ci.lo);
  EXPECT_EQ(via_sql.estimator, EstimatorKind::kPrivateClean);
}

TEST_F(SqlExecutionTest, SameAttributeOrTreeEqualsInPredicate) {
  // dept = 'EECS' OR dept = 'Math' collapses to the same M_pred as
  // dept IN ('EECS', 'Math'), so the corrected estimates are identical.
  QueryResult via_or = *ExecuteSql(
      *pt_, "SELECT count(1) FROM r WHERE dept = 'EECS' OR dept = 'Math'");
  QueryResult via_in = *ExecuteSql(
      *pt_, "SELECT count(1) FROM r WHERE dept IN ('EECS', 'Math')");
  EXPECT_DOUBLE_EQ(via_or.estimate, via_in.estimate);
  EXPECT_DOUBLE_EQ(via_or.ci.lo, via_in.ci.lo);
}

TEST_F(SqlExecutionTest, NotPrivatelyAnswerableFormsNameTheForm) {
  struct Case {
    const char* sql;
    const char* needle;
  } cases[] = {
      {"SELECT max(score) FROM r", "MAX(score)"},
      {"SELECT min(score) FROM r", "MIN(score)"},
      {"SELECT DISTINCT dept FROM r", "SELECT DISTINCT dept"},
      {"SELECT COUNT(DISTINCT dept) FROM r", "COUNT(DISTINCT dept)"},
      {"SELECT count(1) FROM r GROUP BY dept ORDER BY dept LIMIT 1",
       nullptr},  // Answerable; sanity-checked below.
  };
  for (const Case& c : cases) {
    if (c.needle == nullptr) continue;
    auto r = ExecuteSqlQuery(*pt_, c.sql);
    ASSERT_FALSE(r.ok()) << c.sql;
    EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition) << c.sql;
    EXPECT_NE(r.status().message().find("not privately answerable"),
              std::string::npos)
        << c.sql << " -> " << r.status().message();
    EXPECT_NE(r.status().message().find(c.needle), std::string::npos)
        << c.sql << " -> " << r.status().message();
  }
}

TEST_F(SqlExecutionTest, UnplannableWhereTreesFailTyped) {
  for (const char* sql :
       {"SELECT count(1) FROM r WHERE dept = 'EECS' OR campus = 'North'",
        "SELECT sum(score) FROM r WHERE dept = 'EECS' AND campus = 'North'",
        "SELECT count(1) FROM r WHERE dept = 'EECS' AND campus = 'North' "
        "AND score > 1"}) {
    auto r = ExecuteSql(*pt_, sql);
    ASSERT_FALSE(r.ok()) << sql;
    EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition) << sql;
    EXPECT_NE(r.status().message().find("not privately answerable"),
              std::string::npos)
        << sql << " -> " << r.status().message();
  }
}

TEST_F(SqlExecutionTest, NumericAttributePredicateFailsTypedNotNotFound) {
  // A WHERE tree on the Laplace-noised numeric attribute collapses to a
  // Predicate fine, but no transition matrix exists for it, so the
  // corrected estimators must reject it as "not privately answerable" —
  // not leak provenance_manager's NotFound ("no provenance snapshot").
  for (const char* sql :
       {"SELECT count(1) FROM r WHERE score >= 2.0",
        "SELECT count(1) FROM r WHERE score >= 2.0 AND score < 8.0",
        "SELECT sum(score) FROM r WHERE score > 5",
        "SELECT count(1) FROM r GROUP BY score"}) {
    auto r = ExecuteSqlQuery(*pt_, sql);
    ASSERT_FALSE(r.ok()) << sql;
    EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition) << sql;
    EXPECT_NE(r.status().message().find("not privately answerable"),
              std::string::npos)
        << sql << " -> " << r.status().message();
    EXPECT_NE(r.status().message().find("score"), std::string::npos)
        << sql << " -> " << r.status().message();
  }
  // The same queries are nominally answerable under the Direct baseline.
  EXPECT_TRUE(
      ExecuteSqlDirect(*pt_, "SELECT count(1) FROM r WHERE score >= 2.0")
          .ok());
}

TEST_F(SqlExecutionTest, GroupByRunsCorrectedPerGroupCounts) {
  SqlResultSet rs =
      *ExecuteSqlQuery(*pt_, "SELECT count(1) FROM r GROUP BY dept");
  EXPECT_TRUE(rs.grouped);
  ASSERT_EQ(rs.rows.size(), 4u);
  double total = 0.0;
  for (const SqlRow& row : rs.rows) {
    ASSERT_TRUE(row.group.has_value());
    total += row.result.estimate;
  }
  // Corrected group counts are consistent: they sum to ~S (each true
  // group is 100 of 400 rows).
  EXPECT_NEAR(total, 400.0, 40.0);
  auto grouped_via_api = *pt_->GroupByCountEstimate("dept");
  ASSERT_EQ(grouped_via_api.size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(rs.rows[i].group, grouped_via_api[i].first);
    EXPECT_DOUBLE_EQ(rs.rows[i].result.estimate,
                     grouped_via_api[i].second.estimate);
  }
}

TEST_F(SqlExecutionTest, OrderByAndLimitShapeGroupedRows) {
  SqlResultSet by_count = *ExecuteSqlQuery(
      *pt_,
      "SELECT count(1) FROM r GROUP BY dept ORDER BY count(1) DESC LIMIT 2");
  ASSERT_EQ(by_count.rows.size(), 2u);
  EXPECT_GE(by_count.rows[0].result.estimate,
            by_count.rows[1].result.estimate);

  SqlResultSet by_key = *ExecuteSqlQuery(
      *pt_, "SELECT count(1) FROM r GROUP BY dept ORDER BY dept");
  ASSERT_EQ(by_key.rows.size(), 4u);
  for (size_t i = 1; i < by_key.rows.size(); ++i) {
    EXPECT_TRUE(*by_key.rows[i - 1].group < *by_key.rows[i].group);
  }
}

TEST_F(SqlExecutionTest, ScalarWrapperRejectsGroupedResults) {
  auto r = ExecuteSql(*pt_, "SELECT count(1) FROM r GROUP BY dept");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("ExecuteSqlQuery"), std::string::npos);
}

// --- Execution: Direct baseline on the new forms ----------------------------

TEST_F(SqlExecutionTest, DirectAnswersMinMaxNominally) {
  QueryResult max = *ExecuteSqlDirect(*pt_, "SELECT max(score) FROM r");
  QueryResult min = *ExecuteSqlDirect(*pt_, "SELECT min(score) FROM r");
  EXPECT_EQ(max.estimator, EstimatorKind::kDirect);
  EXPECT_GT(max.estimate, min.estimate);
  AggregateQuery q;
  q.agg = AggregateType::kMax;
  q.numeric_attribute = "score";
  EXPECT_DOUBLE_EQ(max.estimate, *ExecuteAggregate(pt_->relation(), q));
}

TEST_F(SqlExecutionTest, DirectAnswersMultiAttributeTreesNominally) {
  QueryResult direct = *ExecuteSqlDirect(
      *pt_,
      "SELECT count(1) FROM r WHERE dept = 'EECS' OR campus = 'North'");
  // Independent reference: a straight row loop over the relation.
  const Table& rel = pt_->relation();
  const Column* dept = *rel.ColumnByName("dept");
  const Column* campus = *rel.ColumnByName("campus");
  size_t expected = 0;
  for (size_t r = 0; r < rel.num_rows(); ++r) {
    if (dept->ValueAt(r) == Value("EECS") ||
        campus->ValueAt(r) == Value("North")) {
      ++expected;
    }
  }
  EXPECT_DOUBLE_EQ(direct.estimate, static_cast<double>(expected));
}

TEST_F(SqlExecutionTest, DirectAnswersDistinctForms) {
  SqlResultSet distinct =
      *ExecuteSqlQueryDirect(*pt_, "SELECT DISTINCT dept FROM r");
  EXPECT_TRUE(distinct.grouped);
  QueryResult count = *ExecuteSqlDirect(
      *pt_, "SELECT COUNT(DISTINCT dept) FROM r");
  EXPECT_DOUBLE_EQ(count.estimate,
                   static_cast<double>(distinct.rows.size()));
  QueryResult grouped_limit = ExecuteSqlQueryDirect(
      *pt_,
      "SELECT count(1) FROM r WHERE campus = 'North' GROUP BY dept "
      "ORDER BY count(1) DESC LIMIT 1")->rows.front().result;
  EXPECT_GT(grouped_limit.estimate, 0.0);
}

}  // namespace
}  // namespace privateclean
