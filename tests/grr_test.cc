#include "privacy/grr.h"

#include <gtest/gtest.h>

#include "table/table_builder.h"

namespace privateclean {
namespace {

Schema TestSchema() {
  return *Schema::Make({Field::Discrete("major"),
                        Field::Numerical("score", ValueType::kDouble)});
}

Table TestTable(size_t rows = 200) {
  TableBuilder b(TestSchema());
  const char* majors[] = {"EECS", "Math", "Bio", "Physics"};
  for (size_t i = 0; i < rows; ++i) {
    b.Row({Value(majors[i % 4]), Value(static_cast<double>(i % 10))});
  }
  return *b.Finish();
}

TEST(GrrTest, ProducesSameSchemaAndSize) {
  Rng rng(1);
  Table t = TestTable();
  GrrOutput out = *ApplyGrr(t, GrrParams::Uniform(0.2, 1.0), GrrOptions{}, rng);
  EXPECT_EQ(out.table.num_rows(), t.num_rows());
  EXPECT_TRUE(out.table.schema() == t.schema());
  EXPECT_EQ(out.metadata.dataset_size, t.num_rows());
}

TEST(GrrTest, MetadataCoversAllAttributes) {
  Rng rng(2);
  GrrOutput out =
      *ApplyGrr(TestTable(), GrrParams::Uniform(0.2, 1.0), GrrOptions{}, rng);
  ASSERT_EQ(out.metadata.discrete.size(), 1u);
  ASSERT_EQ(out.metadata.numeric.size(), 1u);
  const auto& major = out.metadata.discrete.at("major");
  EXPECT_DOUBLE_EQ(major.p, 0.2);
  EXPECT_EQ(major.domain.size(), 4u);
  const auto& score = out.metadata.numeric.at("score");
  EXPECT_DOUBLE_EQ(score.b, 1.0);
  EXPECT_DOUBLE_EQ(score.sensitivity, 9.0);
}

TEST(GrrTest, DiscreteDomainPreservedByDefault) {
  Rng rng(3);
  GrrOutput out =
      *ApplyGrr(TestTable(), GrrParams::Uniform(0.5, 1.0), GrrOptions{}, rng);
  Domain after = *Domain::FromColumn(out.table, "major");
  EXPECT_EQ(after.size(), 4u);
}

TEST(GrrTest, NumericColumnActuallyNoised) {
  Rng rng(4);
  Table t = TestTable();
  GrrOutput out = *ApplyGrr(t, GrrParams::Uniform(0.0, 2.0), GrrOptions{}, rng);
  const Column& noised = *out.table.ColumnByName("score").ValueOrDie();
  const Column& original = *t.ColumnByName("score").ValueOrDie();
  int changed = 0;
  for (size_t r = 0; r < t.num_rows(); ++r) {
    if (noised.DoubleAt(r) != original.DoubleAt(r)) ++changed;
  }
  EXPECT_GT(changed, static_cast<int>(t.num_rows()) - 5);
}

TEST(GrrTest, PerAttributeParamsOverrideDefaults) {
  Rng rng(5);
  GrrParams params = GrrParams::Uniform(0.5, 1.0);
  params.discrete_p["major"] = 0.0;  // Explicitly no randomization.
  Table t = TestTable();
  GrrOutput out = *ApplyGrr(t, params, GrrOptions{}, rng);
  const Column& majors = *out.table.ColumnByName("major").ValueOrDie();
  const Column& original = *t.ColumnByName("major").ValueOrDie();
  for (size_t r = 0; r < t.num_rows(); ++r) {
    EXPECT_EQ(majors.ValueAt(r), original.ValueAt(r));
  }
  EXPECT_DOUBLE_EQ(out.metadata.discrete.at("major").p, 0.0);
}

TEST(GrrTest, MissingDiscreteParamRejected) {
  Rng rng(6);
  GrrParams params;  // No defaults, no per-attribute entries.
  params.default_b = 1.0;
  auto r = ApplyGrr(TestTable(), params, GrrOptions{}, rng);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST(GrrTest, MissingNumericParamRejected) {
  Rng rng(7);
  GrrParams params;
  params.default_p = 0.1;
  auto r = ApplyGrr(TestTable(), params, GrrOptions{}, rng);
  EXPECT_FALSE(r.ok());
}

TEST(GrrTest, InvalidPRejected) {
  Rng rng(8);
  auto r = ApplyGrr(TestTable(), GrrParams::Uniform(1.5, 1.0), GrrOptions{},
                    rng);
  EXPECT_FALSE(r.ok());
}

TEST(GrrTest, EmptyRelationRejected) {
  Rng rng(9);
  Table empty = *Table::MakeEmpty(TestSchema());
  EXPECT_FALSE(
      ApplyGrr(empty, GrrParams::Uniform(0.1, 1.0), GrrOptions{}, rng).ok());
}

TEST(GrrTest, RegenerationTriggersOnTinyData) {
  // 3 rows, 3 distinct values, p = 1: masking is likely, so regenerations
  // should occur (and eventually succeed) with domain preservation on.
  Rng rng(10);
  Schema s = *Schema::Make({Field::Discrete("d")});
  TableBuilder b(s);
  b.Row({Value("a")}).Row({Value("b")}).Row({Value("c")});
  Table t = *b.Finish();
  GrrParams params;
  params.default_p = 1.0;
  GrrOutput out = *ApplyGrr(t, params, GrrOptions{}, rng);
  Domain after = *Domain::FromColumn(out.table, "d");
  EXPECT_EQ(after.size(), 3u);
}

TEST(GrrTest, RegenerationCapFails) {
  // One row can never show all 3 domain values: with the cap at 2 the
  // mechanism must report failure rather than loop forever.
  Rng rng(11);
  Schema s = *Schema::Make({Field::Discrete("d")});
  TableBuilder b(s);
  b.Row({Value("a")}).Row({Value("b")}).Row({Value("c")});
  Table t = *b.Finish();
  // Shrink to one row by filtering.
  Table one = *t.Filter({1, 0, 0});
  // Manually extend the domain: use p=1 with a domain of one value — fine;
  // instead corrupt: single row, domain {a}, always preserved. So use the
  // 3-row table with p=1 and max_regenerations=0-ish to force failure.
  GrrParams params;
  params.default_p = 1.0;
  GrrOptions options;
  options.max_regenerations = 1;
  // With only 1 regeneration allowed, failure is likely but not certain;
  // try a seed known to fail.
  bool saw_failure = false;
  for (uint64_t seed = 0; seed < 50 && !saw_failure; ++seed) {
    Rng attempt(seed);
    auto r = ApplyGrr(t, params, options, attempt);
    if (!r.ok()) {
      EXPECT_TRUE(r.status().IsFailedPrecondition());
      saw_failure = true;
    }
  }
  EXPECT_TRUE(saw_failure);
  (void)one;
}

TEST(GrrTest, DomainPreservationCanBeDisabled) {
  Rng rng(12);
  Schema s = *Schema::Make({Field::Discrete("d")});
  TableBuilder b(s);
  b.Row({Value("a")}).Row({Value("b")});
  Table t = *b.Finish();
  GrrParams params;
  params.default_p = 1.0;
  GrrOptions options;
  options.ensure_domain_preserved = false;
  GrrOutput out = *ApplyGrr(t, params, options, rng);
  EXPECT_EQ(out.total_regenerations, 0u);
}

TEST(GrrTest, DeterministicGivenSeed) {
  Rng rng1(99), rng2(99);
  Table t = TestTable();
  GrrOutput a = *ApplyGrr(t, GrrParams::Uniform(0.3, 2.0), GrrOptions{}, rng1);
  GrrOutput b = *ApplyGrr(t, GrrParams::Uniform(0.3, 2.0), GrrOptions{}, rng2);
  for (size_t r = 0; r < t.num_rows(); ++r) {
    EXPECT_EQ(a.table.column(0).ValueAt(r), b.table.column(0).ValueAt(r));
    EXPECT_EQ(a.table.column(1).ValueAt(r), b.table.column(1).ValueAt(r));
  }
}

}  // namespace
}  // namespace privateclean
