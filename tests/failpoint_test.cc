// Unit tests for the failpoint registry (common/failpoint.h) and the
// durable I/O helpers it instruments (common/io_util.h): activation,
// env-spec parsing, counted faults, data faults, and the typed statuses
// each injection produces.

#include "common/failpoint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <vector>

#include "common/io_util.h"

namespace privateclean {
namespace {

class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(failpoint::CompiledIn())
        << "tests must build with -DPCLEAN_FAILPOINTS=ON";
    failpoint::DeactivateAll();
    failpoint::ResetHits();
    dir_ = ::testing::TempDir() + "/pclean_failpoint_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    failpoint::DeactivateAll();
    std::filesystem::remove_all(dir_);
  }

  std::string Path(const std::string& name) const { return dir_ + "/" + name; }

  std::string dir_;
};

TEST_F(FailpointTest, CatalogueIsStableAndNonEmpty) {
  const auto& sites = failpoint::Sites();
  ASSERT_FALSE(sites.empty());
  EXPECT_NE(std::find(sites.begin(), sites.end(), "io.read.open"),
            sites.end());
  EXPECT_NE(std::find(sites.begin(), sites.end(), "release.commit.rename"),
            sites.end());
}

TEST_F(FailpointTest, ActivateRejectsUnknownSite) {
  Status st = failpoint::Activate("io.read.nonsense", failpoint::Fault{});
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_NE(st.message().find("io.read.nonsense"), std::string::npos);
}

TEST_F(FailpointTest, ErrorFaultCarriesSiteDetailAndCode) {
  failpoint::Fault fault;
  fault.code = StatusCode::kNotFound;
  fault.message = "vanished";
  ASSERT_TRUE(failpoint::Activate("io.read.open", fault).ok());
  ASSERT_TRUE(io::WriteFileDurable(Path("f"), "payload\n").ok());
  auto read = io::ReadFileToString(Path("f"));
  ASSERT_FALSE(read.ok());
  EXPECT_TRUE(read.status().IsNotFound());
  EXPECT_NE(read.status().message().find("io.read.open"), std::string::npos);
  EXPECT_NE(read.status().message().find(Path("f")), std::string::npos);
  EXPECT_NE(read.status().message().find("vanished"), std::string::npos);

  failpoint::Deactivate("io.read.open");
  EXPECT_TRUE(io::ReadFileToString(Path("f")).ok());
}

TEST_F(FailpointTest, CountedFaultFiresThenExpires) {
  failpoint::Fault fault;
  fault.remaining = 2;
  ASSERT_TRUE(failpoint::Activate("io.read.transient", fault).ok());
  ASSERT_TRUE(io::WriteFileDurable(Path("f"), "data\n").ok());
  EXPECT_TRUE(io::ReadFileToString(Path("f")).status().IsIOError());
  EXPECT_TRUE(io::ReadFileToString(Path("f")).status().IsIOError());
  EXPECT_TRUE(io::ReadFileToString(Path("f")).ok());
}

TEST_F(FailpointTest, RetryOutlastsTransientFaults) {
  // Two injected transient failures, then success: the bounded retry
  // loop must deliver the file.
  failpoint::Fault fault;
  fault.remaining = 2;
  ASSERT_TRUE(failpoint::Activate("io.read.transient", fault).ok());
  ASSERT_TRUE(io::WriteFileDurable(Path("f"), "data\n").ok());
  auto read = io::ReadFileWithRetry(Path("f"));
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read.ValueOrDie(), "data\n");
}

TEST_F(FailpointTest, RetryGivesUpAfterMaxAttempts) {
  ASSERT_TRUE(failpoint::Activate("io.read.transient",
                                  failpoint::DefaultFault("io.read.transient"))
                  .ok());
  ASSERT_TRUE(io::WriteFileDurable(Path("f"), "data\n").ok());
  io::RetryOptions retry;
  retry.max_attempts = 3;
  retry.initial_backoff_ms = 0;
  auto read = io::ReadFileWithRetry(Path("f"), retry);
  ASSERT_TRUE(read.status().IsIOError());
  EXPECT_NE(read.status().message().find("after 3 attempts"),
            std::string::npos);
}

TEST_F(FailpointTest, RetryJitterSleepsStayUnderTheDoublingCaps) {
  // Persistent transient fault: every attempt fails, so the loop sleeps
  // max_attempts - 1 times. With full jitter each sleep is uniform in
  // [0, cap] where the cap doubles: 4, 8, 16 ms here.
  ASSERT_TRUE(failpoint::Activate("io.read.transient",
                                  failpoint::DefaultFault("io.read.transient"))
                  .ok());
  ASSERT_TRUE(io::WriteFileDurable(Path("f"), "data\n").ok());
  io::RetryOptions retry;
  retry.max_attempts = 4;
  retry.initial_backoff_ms = 4;
  retry.jitter_seed = 20260808;
  std::vector<int> sleeps;
  retry.sleep_fn = [&sleeps](int ms) { sleeps.push_back(ms); };
  auto read = io::ReadFileWithRetry(Path("f"), retry);
  ASSERT_TRUE(read.status().IsIOError());
  ASSERT_EQ(sleeps.size(), 3u);
  int cap = 4;
  int total = 0;
  for (int ms : sleeps) {
    EXPECT_GE(ms, 0);
    EXPECT_LE(ms, cap);
    cap *= 2;
    total += ms;
  }
  EXPECT_LE(total, retry.max_total_backoff_ms);
}

TEST_F(FailpointTest, RetryZeroJitterSeedSleepsTheFullCaps) {
  ASSERT_TRUE(failpoint::Activate("io.read.transient",
                                  failpoint::DefaultFault("io.read.transient"))
                  .ok());
  ASSERT_TRUE(io::WriteFileDurable(Path("f"), "data\n").ok());
  io::RetryOptions retry;
  retry.max_attempts = 4;
  retry.initial_backoff_ms = 4;
  retry.jitter_seed = 0;  // jitter off: deterministic worst-case backoff
  std::vector<int> sleeps;
  retry.sleep_fn = [&sleeps](int ms) { sleeps.push_back(ms); };
  EXPECT_TRUE(io::ReadFileWithRetry(Path("f"), retry).status().IsIOError());
  EXPECT_EQ(sleeps, (std::vector<int>{4, 8, 16}));
}

TEST_F(FailpointTest, RetryTotalBackoffBudgetEndsTheLoopEarly) {
  ASSERT_TRUE(failpoint::Activate("io.read.transient",
                                  failpoint::DefaultFault("io.read.transient"))
                  .ok());
  ASSERT_TRUE(io::WriteFileDurable(Path("f"), "data\n").ok());
  io::RetryOptions retry;
  retry.max_attempts = 10;
  retry.initial_backoff_ms = 4;
  retry.max_total_backoff_ms = 5;
  retry.jitter_seed = 0;
  std::vector<int> sleeps;
  retry.sleep_fn = [&sleeps](int ms) { sleeps.push_back(ms); };
  auto read = io::ReadFileWithRetry(Path("f"), retry);
  ASSERT_TRUE(read.status().IsIOError());
  // Caps would be 4, 8, 16, ... but the 5 ms budget clips the second
  // sleep to 1 ms and ends the loop before the third: 3 attempts, not
  // 10, and the summed sleep never exceeds the budget.
  EXPECT_EQ(sleeps, (std::vector<int>{4, 1}));
  EXPECT_NE(read.status().message().find("after 3 attempts"),
            std::string::npos)
      << read.status().message();
}

TEST_F(FailpointTest, RetryDoesNotRetryNotFound) {
  failpoint::ResetHits();
  auto read = io::ReadFileWithRetry(Path("missing"));
  EXPECT_TRUE(read.status().IsNotFound());
  // One open attempt only: NotFound is permanent, not transient.
  EXPECT_EQ(failpoint::Hits("io.read.open"), 1u);
}

TEST_F(FailpointTest, BitFlipFaultCorruptsReadBytes) {
  ASSERT_TRUE(io::WriteFileDurable(Path("f"), "abcdefgh\n").ok());
  ASSERT_TRUE(failpoint::Activate("io.read.bitflip",
                                  failpoint::DefaultFault("io.read.bitflip"))
                  .ok());
  auto read = io::ReadFileToString(Path("f"));
  ASSERT_TRUE(read.ok());  // The device "succeeds"; the bytes are wrong.
  EXPECT_NE(read.ValueOrDie(), "abcdefgh\n");
  EXPECT_EQ(read.ValueOrDie().size(), 9u);
}

TEST_F(FailpointTest, TruncateFaultDropsTail) {
  ASSERT_TRUE(io::WriteFileDurable(Path("f"), "abcdefgh\n").ok());
  ASSERT_TRUE(failpoint::Activate("io.read.truncate",
                                  failpoint::DefaultFault("io.read.truncate"))
                  .ok());
  auto read = io::ReadFileToString(Path("f"));
  ASSERT_TRUE(read.ok());
  EXPECT_LT(read.ValueOrDie().size(), 9u);
}

TEST_F(FailpointTest, ShortWriteLeavesTornFileBehind) {
  ASSERT_TRUE(failpoint::Activate("io.write.short",
                                  failpoint::DefaultFault("io.write.short"))
                  .ok());
  // The write "succeeds" — the device dropped the tail silently.
  ASSERT_TRUE(io::WriteFileDurable(Path("f"), "0123456789\n").ok());
  failpoint::DeactivateAll();
  auto read = io::ReadFileToString(Path("f"));
  ASSERT_TRUE(read.ok());
  EXPECT_LT(read.ValueOrDie().size(), 11u);
}

TEST_F(FailpointTest, EnospcFaultReportsErrorWithPartialFile) {
  ASSERT_TRUE(failpoint::Activate("io.write.enospc",
                                  failpoint::DefaultFault("io.write.enospc"))
                  .ok());
  Status st = io::WriteFileDurable(Path("f"), "0123456789\n");
  ASSERT_TRUE(st.IsIOError());
  EXPECT_NE(st.message().find("ENOSPC"), std::string::npos);
  failpoint::DeactivateAll();
  // A partial prefix was persisted — exactly the torn state a full disk
  // leaves behind.
  auto read = io::ReadFileToString(Path("f"));
  ASSERT_TRUE(read.ok());
  EXPECT_LT(read.ValueOrDie().size(), 11u);
}

TEST_F(FailpointTest, SpecParsesSiteActionAndCount) {
  ASSERT_TRUE(io::WriteFileDurable(Path("pre"), "x\n").ok());
  ASSERT_TRUE(
      failpoint::ActivateFromSpec("io.read.transient=notfound:1;io.write.fsync")
          .ok());

  // io.write.fsync active with the default error fault.
  failpoint::Deactivate("io.read.transient");
  Status st = io::WriteFileDurable(Path("f"), "x\n");
  EXPECT_TRUE(st.IsIOError());
  EXPECT_NE(st.message().find("io.write.fsync"), std::string::npos);
  failpoint::Deactivate("io.write.fsync");

  // Counted NotFound: fires once, then the site is spent.
  ASSERT_TRUE(failpoint::ActivateFromSpec("io.read.transient=notfound:1").ok());
  EXPECT_TRUE(io::ReadFileToString(Path("pre")).status().IsNotFound());
  EXPECT_TRUE(io::ReadFileToString(Path("pre")).ok());
}

TEST_F(FailpointTest, SpecRejectsUnknownSiteActionAndBadCount) {
  EXPECT_TRUE(failpoint::ActivateFromSpec("no.such.site").IsInvalidArgument());
  EXPECT_TRUE(failpoint::ActivateFromSpec("io.read.open=explode")
                  .IsInvalidArgument());
  EXPECT_TRUE(
      failpoint::ActivateFromSpec("io.read.open:zero").IsInvalidArgument());
}

TEST_F(FailpointTest, HitsCountEveryVisitEvenWhenInactive) {
  failpoint::ResetHits();
  ASSERT_TRUE(io::WriteFileDurable(Path("f"), "x\n").ok());
  ASSERT_TRUE(io::ReadFileToString(Path("f")).ok());
  EXPECT_EQ(failpoint::Hits("io.write.open"), 1u);
  EXPECT_EQ(failpoint::Hits("io.read.open"), 1u);
  EXPECT_EQ(failpoint::Hits("io.read.bitflip"), 1u);
  EXPECT_EQ(failpoint::Hits("release.commit.rename"), 0u);
}

TEST_F(FailpointTest, Crc32cMatchesKnownVectors) {
  // RFC 3720 test vectors for CRC32C (Castagnoli).
  EXPECT_EQ(io::Crc32c(""), 0x00000000u);
  EXPECT_EQ(io::Crc32c("123456789"), 0xE3069283u);
  std::string zeros(32, '\0');
  EXPECT_EQ(io::Crc32c(zeros), 0x8A9136AAu);
}

TEST_F(FailpointTest, Crc32cHexRoundTrips) {
  uint32_t crc = io::Crc32c("payload");
  std::string hex = io::Crc32cToHex(crc);
  EXPECT_EQ(hex.size(), 8u);
  auto back = io::Crc32cFromHex(hex);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.ValueOrDie(), crc);
  EXPECT_TRUE(io::Crc32cFromHex("xyz").status().IsInvalidArgument());
  EXPECT_TRUE(io::Crc32cFromHex("0123456g").status().IsInvalidArgument());
}

}  // namespace
}  // namespace privateclean
