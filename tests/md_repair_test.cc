#include "cleaning/md_repair.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "datagen/tpcds.h"
#include "table/domain.h"
#include "table/table_builder.h"

namespace privateclean {
namespace {

Schema CountrySchema() {
  return *Schema::Make({Field::Discrete("country")});
}

TEST(MdRepairTest, MergesOneCharCorruptions) {
  TableBuilder b(CountrySchema());
  for (int i = 0; i < 10; ++i) b.Row({Value("France")});
  b.Row({Value("Francez")}).Row({Value("Frence")});
  Table t = *b.Finish();
  ASSERT_TRUE(MdRepair(MatchingDependency{"country", 1}).Apply(&t).ok());
  Domain d = *Domain::FromColumn(t, "country");
  EXPECT_EQ(d.size(), 1u);
  EXPECT_EQ(d.value(0), Value("France"));
}

TEST(MdRepairTest, PreservesDistantValues) {
  TableBuilder b(CountrySchema());
  b.Row({Value("France")}).Row({Value("Japan")}).Row({Value("Brazil")});
  Table t = *b.Finish();
  ASSERT_TRUE(MdRepair(MatchingDependency{"country", 1}).Apply(&t).ok());
  EXPECT_EQ(Domain::FromColumn(t, "country")->size(), 3u);
}

TEST(MdRepairTest, ResolutionIsUnique) {
  // Unlike FD repair, MD repair has a unique answer given the relation —
  // repeated application is stable from the first pass.
  TableBuilder b(CountrySchema());
  for (int i = 0; i < 8; ++i) b.Row({Value("Germany")});
  b.Row({Value("Germanyx")}).Row({Value("Germanz")});
  Table t = *b.Finish();
  ASSERT_TRUE(MdRepair(MatchingDependency{"country", 1}).Apply(&t).ok());
  Table once = t.Clone();
  ASSERT_TRUE(MdRepair(MatchingDependency{"country", 1}).Apply(&t).ok());
  for (size_t r = 0; r < t.num_rows(); ++r) {
    EXPECT_EQ(*t.GetValue(r, "country"), *once.GetValue(r, "country"));
  }
}

TEST(MdRepairTest, RestoresCorruptedTpcdsCountries) {
  Rng rng(11);
  TpcdsOptions options;
  options.num_rows = 1500;
  Table truth = *GenerateCustomerAddress(options, rng);
  Table dirty = truth.Clone();
  ASSERT_TRUE(CorruptCountries(&dirty, 120, rng).ok());
  ASSERT_TRUE(MdRepair(CustomerAddressMd()).Apply(&dirty).ok());
  size_t wrong = 0;
  const Column& repaired = **dirty.ColumnByName("ca_country");
  const Column& original = **truth.ColumnByName("ca_country");
  for (size_t r = 0; r < dirty.num_rows(); ++r) {
    if (repaired.ValueAt(r) != original.ValueAt(r)) ++wrong;
  }
  // One-character appends are within the MD's edit-distance bound and the
  // corrupted spellings are rare, so nearly all cells are restored.
  EXPECT_LT(wrong, 10u);
}

TEST(MdRepairTest, NoopOnCleanData) {
  TableBuilder b(CountrySchema());
  b.Row({Value("United States")}).Row({Value("Canada")});
  Table t = *b.Finish();
  ASSERT_TRUE(MdRepair(MatchingDependency{"country", 1}).Apply(&t).ok());
  EXPECT_EQ(*t.GetValue(0, "country"), Value("United States"));
  EXPECT_EQ(*t.GetValue(1, "country"), Value("Canada"));
}

TEST(MdRepairTest, NullsUntouched) {
  TableBuilder b(CountrySchema());
  b.Row({Value("France")}).Row({Value::Null()});
  Table t = *b.Finish();
  ASSERT_TRUE(MdRepair(MatchingDependency{"country", 1}).Apply(&t).ok());
  EXPECT_TRUE(t.GetValue(1, "country")->is_null());
}

TEST(MdRepairTest, RejectsNullTable) {
  MdRepair repair(MatchingDependency{"country", 1});
  EXPECT_TRUE(repair.Apply(nullptr).IsInvalidArgument());
}

TEST(MdRepairTest, KindIsMerge) {
  MdRepair repair(MatchingDependency{"country", 1});
  EXPECT_EQ(repair.kind(), CleanerKind::kMerge);
  EXPECT_NE(repair.name().find("md_repair"), std::string::npos);
}

}  // namespace
}  // namespace privateclean
