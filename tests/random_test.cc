#include "common/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/statistics.h"

namespace privateclean {
namespace {

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.UniformInt(13), 13u);
  }
}

TEST(RngTest, UniformIntCoversAllValues) {
  Rng rng(7);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 5000; ++i) counts[rng.UniformInt(5)]++;
  for (int c : counts) {
    EXPECT_GT(c, 800);  // Each ~1000 expected; 800 is >6 sigma slack.
    EXPECT_LT(c, 1200);
  }
}

TEST(RngTest, UniformIntRangeInclusive) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformIntRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformRealInUnitInterval) {
  Rng rng(3);
  RunningMoments m;
  for (int i = 0; i < 20000; ++i) {
    double u = rng.UniformReal();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    m.Add(u);
  }
  EXPECT_NEAR(m.Mean(), 0.5, 0.01);
  EXPECT_NEAR(m.PopulationVariance(), 1.0 / 12.0, 0.005);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(5);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
    EXPECT_FALSE(rng.Bernoulli(-0.5));
    EXPECT_TRUE(rng.Bernoulli(1.5));
  }
}

TEST(RngTest, LaplaceMomentsMatch) {
  Rng rng(17);
  RunningMoments m;
  const double b = 4.0;
  for (int i = 0; i < 200000; ++i) m.Add(rng.Laplace(10.0, b));
  // Mean mu, variance 2b^2.
  EXPECT_NEAR(m.Mean(), 10.0, 0.1);
  EXPECT_NEAR(m.PopulationVariance(), 2.0 * b * b, 1.0);
}

TEST(RngTest, LaplaceZeroScaleReturnsLocation) {
  Rng rng(17);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.Laplace(3.5, 0.0), 3.5);
}

TEST(RngTest, LaplaceMedianIsLocation) {
  Rng rng(19);
  int below = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) below += rng.Laplace(2.0, 5.0) < 2.0 ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(below) / n, 0.5, 0.01);
}

TEST(RngTest, GaussianMomentsMatch) {
  Rng rng(23);
  RunningMoments m;
  for (int i = 0; i < 100000; ++i) m.Add(rng.Gaussian(-2.0, 3.0));
  EXPECT_NEAR(m.Mean(), -2.0, 0.05);
  EXPECT_NEAR(m.PopulationVariance(), 9.0, 0.3);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(29);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // Astronomically unlikely to be identity.
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, ShuffleEmptyAndSingleton) {
  Rng rng(29);
  std::vector<int> empty;
  rng.Shuffle(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{42};
  rng.Shuffle(one);
  EXPECT_EQ(one, std::vector<int>{42});
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(99);
  Rng forked = a.Fork();
  // The fork should not replay the parent's stream.
  Rng b(99);
  b.Next();  // Align with the Fork() consumption.
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (forked.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(ZipfianTest, UniformWhenSkewZero) {
  ZipfianSampler z(10, 0.0);
  for (size_t k = 0; k < 10; ++k) EXPECT_NEAR(z.Pmf(k), 0.1, 1e-12);
}

TEST(ZipfianTest, PmfSumsToOne) {
  ZipfianSampler z(50, 2.0);
  double total = 0.0;
  for (size_t k = 0; k < 50; ++k) total += z.Pmf(k);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfianTest, PmfDecreasesWithRank) {
  ZipfianSampler z(20, 1.5);
  for (size_t k = 1; k < 20; ++k) EXPECT_LT(z.Pmf(k), z.Pmf(k - 1));
}

TEST(ZipfianTest, PowerLawRatio) {
  ZipfianSampler z(10, 2.0);
  // P(0)/P(1) = 2^z = 4.
  EXPECT_NEAR(z.Pmf(0) / z.Pmf(1), 4.0, 1e-9);
}

TEST(ZipfianTest, EmpiricalMatchesAnalytic) {
  Rng rng(31);
  ZipfianSampler z(8, 1.0);
  std::vector<int> counts(8, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) counts[z.Sample(rng)]++;
  for (size_t k = 0; k < 8; ++k) {
    double empirical = static_cast<double>(counts[k]) / n;
    EXPECT_NEAR(empirical, z.Pmf(k), 0.01) << "rank " << k;
  }
}

TEST(ZipfianTest, SingletonDomain) {
  Rng rng(1);
  ZipfianSampler z(1, 3.0);
  EXPECT_EQ(z.Sample(rng), 0u);
  EXPECT_NEAR(z.Pmf(0), 1.0, 1e-12);
}

TEST(ZipfianTest, HighSkewConcentratesOnHead) {
  Rng rng(37);
  ZipfianSampler z(100, 3.0);
  int head = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) head += z.Sample(rng) == 0 ? 1 : 0;
  EXPECT_GT(static_cast<double>(head) / n, 0.75);
}

}  // namespace
}  // namespace privateclean
