// The determinism contract of the parallel execution engine
// (common/thread_pool.h): rows are sharded by row count alone and every
// shard forks its own RNG stream by shard index, so for a fixed seed the
// output of GRR and of the query scans is bit-identical at every thread
// count. These tests run the same operation at 1, 2, and 8 threads on a
// table spanning multiple shards and require exact equality.

#include <gtest/gtest.h>

#include "core/private_table.h"
#include "datagen/synthetic.h"
#include "privacy/grr.h"
#include "query/aggregate.h"

namespace privateclean {
namespace {

// > 2 shards of kRowsPerShard rows, so the sharded paths genuinely
// split the data.
constexpr size_t kRows = 2 * kRowsPerShard + 1234;

const Table& TestTable() {
  static const Table* table = [] {
    SyntheticOptions options;
    options.num_rows = kRows;
    options.num_distinct = 30;
    Rng rng(7);
    return new Table(*GenerateSynthetic(options, rng));
  }();
  return *table;
}

void ExpectTablesIdentical(const Table& a, const Table& b) {
  ASSERT_EQ(a.num_rows(), b.num_rows());
  ASSERT_TRUE(a.schema() == b.schema());
  for (size_t c = 0; c < a.num_columns(); ++c) {
    const Column& ca = a.column(c);
    const Column& cb = b.column(c);
    ASSERT_EQ(ca.null_count(), cb.null_count()) << "column " << c;
    for (size_t r = 0; r < a.num_rows(); ++r) {
      ASSERT_TRUE(ca.ValueAt(r) == cb.ValueAt(r))
          << "column " << c << " row " << r;
    }
  }
}

GrrOutput GrrAtThreads(size_t num_threads) {
  GrrOptions options;
  options.exec.num_threads = num_threads;
  Rng rng(42);
  return *ApplyGrr(TestTable(), GrrParams::Uniform(0.25, 5.0), options, rng);
}

TEST(ParallelDeterminismTest, GrrIdenticalAcrossThreadCounts) {
  GrrOutput base = GrrAtThreads(1);
  for (size_t threads : {2u, 8u}) {
    GrrOutput out = GrrAtThreads(threads);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ExpectTablesIdentical(base.table, out.table);
    EXPECT_EQ(base.total_regenerations, out.total_regenerations);
  }
}

TEST(ParallelDeterminismTest, ScanIdenticalAcrossThreadCounts) {
  Predicate pred = Predicate::In(
      "category", {SyntheticCategory(0), SyntheticCategory(3)});
  ExecutionOptions exec;
  exec.num_threads = 1;
  QueryScanStats base = *ScanWithPredicate(TestTable(), pred, "value", exec);
  for (size_t threads : {2u, 8u}) {
    exec.num_threads = threads;
    QueryScanStats stats =
        *ScanWithPredicate(TestTable(), pred, "value", exec);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    EXPECT_EQ(stats.total_rows, base.total_rows);
    EXPECT_EQ(stats.matching_rows, base.matching_rows);
    // Bitwise float equality: partials merge in shard order, and the
    // shard layout depends only on the row count.
    EXPECT_EQ(stats.matching_sum, base.matching_sum);
    EXPECT_EQ(stats.complement_sum, base.complement_sum);
    EXPECT_EQ(stats.numeric_mean, base.numeric_mean);
    EXPECT_EQ(stats.numeric_variance, base.numeric_variance);
  }
}

TEST(ParallelDeterminismTest, ConjunctiveScanIdenticalAcrossThreadCounts) {
  // Conjunctive scans need predicates on two different attributes; turn
  // the numeric column into a discrete predicate via a UDF.
  Predicate cond_a = Predicate::In(
      "category", {SyntheticCategory(0), SyntheticCategory(1)});
  Predicate cond_b = Predicate::Udf("value", [](const Value& v) {
    return !v.is_null() && v.AsDouble() < 50.0;
  });
  ExecutionOptions exec;
  exec.num_threads = 1;
  ConjunctiveScanStats base =
      *ScanConjunctive(TestTable(), cond_a, cond_b, exec);
  for (size_t threads : {2u, 8u}) {
    exec.num_threads = threads;
    ConjunctiveScanStats stats =
        *ScanConjunctive(TestTable(), cond_a, cond_b, exec);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    EXPECT_EQ(stats.count_tt, base.count_tt);
    EXPECT_EQ(stats.count_tf, base.count_tf);
    EXPECT_EQ(stats.count_ft, base.count_ft);
    EXPECT_EQ(stats.count_ff, base.count_ff);
  }
}

TEST(ParallelDeterminismTest, PrivateTableQueryIdenticalAcrossThreadCounts) {
  Rng rng(11);
  PrivateTable pt = *PrivateTable::Create(
      TestTable(), GrrParams::Uniform(0.2, 5.0), GrrOptions{}, rng);
  Predicate pred = Predicate::Equals("category", SyntheticCategory(0));
  QueryOptions options;
  options.exec.num_threads = 1;
  QueryResult base = *pt.Count(pred, options);
  for (size_t threads : {2u, 8u}) {
    options.exec.num_threads = threads;
    QueryResult r = *pt.Count(pred, options);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    EXPECT_EQ(r.estimate, base.estimate);
    EXPECT_EQ(r.ci.lo, base.ci.lo);
    EXPECT_EQ(r.ci.hi, base.ci.hi);
    EXPECT_EQ(r.nominal, base.nominal);
  }
}

TEST(ParallelDeterminismTest, SmallTableRegenerationStillWorks) {
  // Domain preservation via regeneration must survive the sharded
  // rewrite: a small table with aggressive randomization regenerates
  // until every dirty value is visible again, identically at every
  // thread count.
  SyntheticOptions options;
  options.num_rows = 400;
  options.num_distinct = 12;
  options.zipf_skew = 0.0;
  Rng data_rng(3);
  Table small = *GenerateSynthetic(options, data_rng);

  GrrOptions grr_options;
  grr_options.exec.num_threads = 1;
  Rng rng1(5);
  GrrOutput base =
      *ApplyGrr(small, GrrParams::Uniform(0.9, 1.0), grr_options, rng1);
  Domain after = *Domain::FromColumn(base.table, "category");
  Domain before = *Domain::FromColumn(small, "category");
  EXPECT_EQ(after.size(), before.size());

  grr_options.exec.num_threads = 8;
  Rng rng8(5);
  GrrOutput parallel =
      *ApplyGrr(small, GrrParams::Uniform(0.9, 1.0), grr_options, rng8);
  ExpectTablesIdentical(base.table, parallel.table);
  EXPECT_EQ(base.total_regenerations, parallel.total_regenerations);
}

}  // namespace
}  // namespace privateclean
