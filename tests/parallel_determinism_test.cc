// The determinism contract of the parallel execution engine
// (common/thread_pool.h): rows are sharded by row count alone and every
// shard forks its own RNG stream by shard index, so for a fixed seed the
// output of GRR and of the query scans is bit-identical at every thread
// count. These tests run the same operation at 1, 2, and 8 threads on a
// table spanning multiple shards and require exact equality.

#include <gtest/gtest.h>

#include "cleaning/merge.h"
#include "core/private_table.h"
#include "datagen/synthetic.h"
#include "parallel_harness.h"
#include "privacy/grr.h"
#include "privacy/laplace_mechanism.h"
#include "provenance/provenance_graph.h"
#include "query/aggregate.h"
#include "table/csv.h"
#include "table/table_builder.h"

namespace privateclean {
namespace {

// > 2 shards of kRowsPerShard rows, so the sharded paths genuinely
// split the data.
constexpr size_t kRows = 2 * kRowsPerShard + 1234;

const Table& TestTable() {
  static const Table* table = [] {
    SyntheticOptions options;
    options.num_rows = kRows;
    options.num_distinct = 30;
    Rng rng(7);
    return new Table(*GenerateSynthetic(options, rng));
  }();
  return *table;
}

void ExpectTablesIdentical(const Table& a, const Table& b) {
  ASSERT_EQ(a.num_rows(), b.num_rows());
  ASSERT_TRUE(a.schema() == b.schema());
  for (size_t c = 0; c < a.num_columns(); ++c) {
    const Column& ca = a.column(c);
    const Column& cb = b.column(c);
    ASSERT_EQ(ca.null_count(), cb.null_count()) << "column " << c;
    for (size_t r = 0; r < a.num_rows(); ++r) {
      ASSERT_TRUE(ca.ValueAt(r) == cb.ValueAt(r))
          << "column " << c << " row " << r;
    }
  }
}

GrrOutput GrrAtThreads(size_t num_threads) {
  GrrOptions options;
  options.exec.num_threads = num_threads;
  Rng rng(42);
  return *ApplyGrr(TestTable(), GrrParams::Uniform(0.25, 5.0), options, rng);
}

TEST(ParallelDeterminismTest, GrrIdenticalAcrossThreadCounts) {
  GrrOutput base = GrrAtThreads(1);
  for (size_t threads : {2u, 8u}) {
    GrrOutput out = GrrAtThreads(threads);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ExpectTablesIdentical(base.table, out.table);
    EXPECT_EQ(base.total_regenerations, out.total_regenerations);
  }
}

TEST(ParallelDeterminismTest, ScanIdenticalAcrossThreadCounts) {
  Predicate pred = Predicate::In(
      "category", {SyntheticCategory(0), SyntheticCategory(3)});
  ExecutionOptions exec;
  exec.num_threads = 1;
  QueryScanStats base = *ScanWithPredicate(TestTable(), pred, "value", exec);
  for (size_t threads : {2u, 8u}) {
    exec.num_threads = threads;
    QueryScanStats stats =
        *ScanWithPredicate(TestTable(), pred, "value", exec);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    EXPECT_EQ(stats.total_rows, base.total_rows);
    EXPECT_EQ(stats.matching_rows, base.matching_rows);
    // Bitwise float equality: partials merge in shard order, and the
    // shard layout depends only on the row count.
    EXPECT_EQ(stats.matching_sum, base.matching_sum);
    EXPECT_EQ(stats.complement_sum, base.complement_sum);
    EXPECT_EQ(stats.numeric_mean, base.numeric_mean);
    EXPECT_EQ(stats.numeric_variance, base.numeric_variance);
  }
}

TEST(ParallelDeterminismTest, ConjunctiveScanIdenticalAcrossThreadCounts) {
  // Conjunctive scans need predicates on two different attributes; turn
  // the numeric column into a discrete predicate via a UDF.
  Predicate cond_a = Predicate::In(
      "category", {SyntheticCategory(0), SyntheticCategory(1)});
  Predicate cond_b = Predicate::Udf("value", [](const Value& v) {
    return !v.is_null() && v.AsDouble() < 50.0;
  });
  ExecutionOptions exec;
  exec.num_threads = 1;
  ConjunctiveScanStats base =
      *ScanConjunctive(TestTable(), cond_a, cond_b, exec);
  for (size_t threads : {2u, 8u}) {
    exec.num_threads = threads;
    ConjunctiveScanStats stats =
        *ScanConjunctive(TestTable(), cond_a, cond_b, exec);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    EXPECT_EQ(stats.count_tt, base.count_tt);
    EXPECT_EQ(stats.count_tf, base.count_tf);
    EXPECT_EQ(stats.count_ft, base.count_ft);
    EXPECT_EQ(stats.count_ff, base.count_ff);
  }
}

TEST(ParallelDeterminismTest, PrivateTableQueryIdenticalAcrossThreadCounts) {
  Rng rng(11);
  PrivateTable pt = *PrivateTable::Create(
      TestTable(), GrrParams::Uniform(0.2, 5.0), GrrOptions{}, rng);
  Predicate pred = Predicate::Equals("category", SyntheticCategory(0));
  QueryOptions options;
  options.exec.num_threads = 1;
  QueryResult base = *pt.Count(pred, options);
  for (size_t threads : {2u, 8u}) {
    options.exec.num_threads = threads;
    QueryResult r = *pt.Count(pred, options);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    EXPECT_EQ(r.estimate, base.estimate);
    EXPECT_EQ(r.ci.lo, base.ci.lo);
    EXPECT_EQ(r.ci.hi, base.ci.hi);
    EXPECT_EQ(r.nominal, base.nominal);
  }
}

TEST(ParallelDeterminismTest, SmallTableRegenerationStillWorks) {
  // Domain preservation via regeneration must survive the sharded
  // rewrite: a small table with aggressive randomization regenerates
  // until every dirty value is visible again, identically at every
  // thread count.
  SyntheticOptions options;
  options.num_rows = 400;
  options.num_distinct = 12;
  options.zipf_skew = 0.0;
  Rng data_rng(3);
  Table small = *GenerateSynthetic(options, data_rng);

  GrrOptions grr_options;
  grr_options.exec.num_threads = 1;
  Rng rng1(5);
  GrrOutput base =
      *ApplyGrr(small, GrrParams::Uniform(0.9, 1.0), grr_options, rng1);
  Domain after = *Domain::FromColumn(base.table, "category");
  Domain before = *Domain::FromColumn(small, "category");
  EXPECT_EQ(after.size(), before.size());

  grr_options.exec.num_threads = 8;
  Rng rng8(5);
  GrrOutput parallel =
      *ApplyGrr(small, GrrParams::Uniform(0.9, 1.0), grr_options, rng8);
  ExpectTablesIdentical(base.table, parallel.table);
  EXPECT_EQ(base.total_regenerations, parallel.total_regenerations);
}

// --- The five sharded hot paths, via the byte-exact harness ------------

void AppendStatusOrDouble(ByteSink* sink, const Result<double>& r) {
  sink->AppendU64(r.ok() ? 1 : 0);
  if (r.ok()) {
    sink->AppendDoubleBits(*r);
  } else {
    sink->AppendU64(static_cast<uint64_t>(r.status().code()));
    sink->AppendString(r.status().message());
  }
}

void AppendQueryResult(ByteSink* sink, const QueryResult& r) {
  sink->AppendDoubleBits(r.estimate);
  sink->AppendDoubleBits(r.ci.lo);
  sink->AppendDoubleBits(r.ci.hi);
  sink->AppendDoubleBits(r.nominal);
  sink->AppendDoubleBits(r.p);
  sink->AppendDoubleBits(r.l);
  sink->AppendDoubleBits(r.n);
  sink->AppendU64(r.s);
}

void AppendProvenanceGraph(ByteSink* sink, const ProvenanceGraph& g) {
  sink->AppendU64(g.num_dirty_values());
  sink->AppendU64(g.num_clean_values());
  sink->AppendU64(g.num_edges());
  sink->AppendU64(g.is_fork_free() ? 1 : 0);
  for (size_t i = 0; i < g.clean_domain().size(); ++i) {
    sink->AppendValue(g.clean_domain().value(i));
    sink->AppendU64(g.clean_domain().frequency(i));
  }
  for (const Value& dirty : g.dirty_domain().values()) {
    for (const Value& clean : g.clean_domain().values()) {
      sink->AppendDoubleBits(g.EdgeWeight(dirty, clean));
    }
  }
}

TEST(ParallelDeterminismTest, GroupByCountIdenticalAcrossThreadCounts) {
  Rng rng(13);
  PrivateTable pt = *PrivateTable::Create(
      TestTable(), GrrParams::Uniform(0.2, 5.0), GrrOptions{}, rng);
  // Merge two categories so the estimate runs on a cleaned relation with
  // a non-trivial provenance graph.
  ASSERT_TRUE(pt.Clean(FindReplace::Single("category", SyntheticCategory(1),
                                           SyntheticCategory(0)))
                  .ok());
  ExpectIdenticalAcrossThreadCounts([&](const ExecutionOptions& exec) {
    QueryOptions options;
    options.exec = exec;
    auto groups = *pt.GroupByCountEstimate("category", options);
    ByteSink sink;
    sink.AppendU64(groups.size());
    for (const auto& [value, result] : groups) {
      sink.AppendValue(value);
      AppendQueryResult(&sink, result);
    }
    return std::move(sink).Finish();
  });
}

TEST(ParallelDeterminismTest, ExecuteAggregateIdenticalAcrossThreadCounts) {
  Predicate pred = Predicate::In(
      "category", {SyntheticCategory(0), SyntheticCategory(2)});
  std::vector<AggregateQuery> queries = {
      AggregateQuery::Count(pred),
      AggregateQuery::Sum("value", pred),
      AggregateQuery::Avg("value", pred),
      AggregateQuery{AggregateType::kVar, "value", pred, 50.0},
      AggregateQuery{AggregateType::kStd, "value", pred, 50.0},
      AggregateQuery{AggregateType::kMedian, "value", pred, 50.0},
      AggregateQuery{AggregateType::kPercentile, "value", pred, 90.0},
  };
  ExpectIdenticalAcrossThreadCounts([&](const ExecutionOptions& exec) {
    ByteSink sink;
    for (const AggregateQuery& query : queries) {
      AppendStatusOrDouble(&sink, ExecuteAggregate(TestTable(), query, exec));
    }
    return std::move(sink).Finish();
  });
}

TEST(ParallelDeterminismTest, ColumnSensitivityIdenticalAcrossThreadCounts) {
  const Column& value_col = **TestTable().ColumnByName("value");
  ExpectIdenticalAcrossThreadCounts([&](const ExecutionOptions& exec) {
    ByteSink sink;
    AppendStatusOrDouble(&sink, ColumnSensitivity(value_col, exec));
    return std::move(sink).Finish();
  });
}

TEST(ParallelDeterminismTest, CsvWriteAndReadIdenticalAcrossThreadCounts) {
  const Schema& schema = TestTable().schema();
  CsvOptions serial;
  const std::string serial_text = TableToCsv(TestTable(), serial);
  ExpectIdenticalAcrossThreadCounts([&](const ExecutionOptions& exec) {
    CsvOptions options;
    options.exec = exec;
    const std::string text = TableToCsv(TestTable(), options);
    Table parsed = *CsvToTable(text, schema, options);
    ByteSink sink;
    sink.AppendString(text);
    sink.AppendTable(parsed);
    return std::move(sink).Finish();
  });
  // And the sharded writer reproduces the serial byte stream.
  CsvOptions parallel;
  parallel.exec.num_threads = 8;
  EXPECT_EQ(TableToCsv(TestTable(), parallel), serial_text);
}

TEST(ParallelDeterminismTest, ProvenanceBuildIdenticalAcrossThreadCounts) {
  // Dirty column spanning several shards; the clean column merges c1
  // into c0 and forks c2 by row parity, so the graph has both a merged
  // and a forked dirty value.
  const Column& dirty = **TestTable().ColumnByName("category");
  Column clean = *Column::Make(ValueType::kString);
  for (size_t r = 0; r < dirty.size(); ++r) {
    Value v = dirty.ValueAt(r);
    if (v == SyntheticCategory(1)) {
      v = SyntheticCategory(0);
    } else if (v == SyntheticCategory(2)) {
      v = Value(r % 2 == 0 ? "c2-even" : "c2-odd");
    }
    ASSERT_TRUE(clean.AppendValue(v).ok());
  }
  Domain dirty_domain = *Domain::FromColumn(TestTable(), "category");
  ExpectIdenticalAcrossThreadCounts([&](const ExecutionOptions& exec) {
    ProvenanceGraph g =
        *ProvenanceGraph::Build(dirty, clean, dirty_domain, exec);
    ByteSink sink;
    AppendProvenanceGraph(&sink, g);
    return std::move(sink).Finish();
  });
}

// --- Shard-boundary and degenerate table sizes -------------------------

Table SizedTable(size_t rows) {
  Schema schema = *Schema::Make({Field::Discrete("category"),
                                 Field::Numerical("value", ValueType::kDouble)});
  TableBuilder builder(schema);
  for (size_t r = 0; r < rows; ++r) {
    // A small rotating category set with periodic nulls in both columns,
    // so every path sees nulls and repeated values.
    Value category = r % 7 == 3 ? Value::Null()
                                : Value("g" + std::to_string(r % 5));
    Value value = r % 11 == 5 ? Value::Null()
                              : Value(static_cast<double>(r % 97) / 7.0);
    builder.Row({category, value});
  }
  return *builder.Finish();
}

TEST(ParallelDeterminismTest, EdgeCaseSizesIdenticalAcrossThreadCounts) {
  // Empty, single-row, exactly one full shard, and one row over the
  // shard boundary: the layouts where shard arithmetic can go wrong.
  for (size_t rows : {size_t{0}, size_t{1}, kRowsPerShard,
                      kRowsPerShard + 1}) {
    SCOPED_TRACE("rows=" + std::to_string(rows));
    Table table = SizedTable(rows);
    Predicate pred = Predicate::Equals("category", Value("g2"));
    Domain dirty_domain = Domain::FromValues(
        {Value("g0"), Value("g1"), Value("g2"), Value("g3"), Value("g4"),
         Value::Null()});
    ExpectIdenticalAcrossThreadCounts([&](const ExecutionOptions& exec) {
      ByteSink sink;
      AppendStatusOrDouble(
          &sink, ExecuteAggregate(table, AggregateQuery::Count(pred), exec));
      AppendStatusOrDouble(
          &sink,
          ExecuteAggregate(table, AggregateQuery::Sum("value", pred), exec));
      AppendStatusOrDouble(
          &sink,
          ExecuteAggregate(table, AggregateQuery::Avg("value", pred), exec));
      AppendStatusOrDouble(&sink,
                           ColumnSensitivity(*table.ColumnByName("value")
                                                  .ValueOrDie(),
                                             exec));
      CsvOptions csv;
      csv.exec = exec;
      csv.null_literal = "\\N";
      const std::string text = TableToCsv(table, csv);
      sink.AppendString(text);
      sink.AppendTable(*CsvToTable(text, table.schema(), csv));
      ProvenanceGraph g = *ProvenanceGraph::Build(
          table.column(0), table.column(0), dirty_domain, exec);
      AppendProvenanceGraph(&sink, g);
      return std::move(sink).Finish();
    });
  }
}

// --- Bootstrap replicates ----------------------------------------------

void AppendBootstrapResult(ByteSink* sink, const QueryResult& r) {
  AppendQueryResult(sink, r);
  sink->AppendU64(r.replicates_requested);
  sink->AppendU64(r.replicates_effective);
}

TEST(ParallelDeterminismTest, BootstrapIdenticalAcrossThreadCounts) {
  // The replicate loop forks one RNG stream per replicate in replicate
  // index order and merges replicate values in replicate order, so the
  // whole interval is bit-identical at any thread count. 24 replicates
  // span 24 coarse shards (ShardCountForCoarseItems), exercising real
  // cross-thread scheduling at 2 and 8 threads.
  SyntheticOptions options;
  options.num_rows = 1500;
  options.num_distinct = 12;
  Rng data_rng(17);
  Table data = *GenerateSynthetic(options, data_rng);
  Rng grr_rng(18);
  PrivateTable pt = *PrivateTable::Create(
      data, GrrParams::Uniform(0.1, 3.0), GrrOptions{}, grr_rng);
  std::vector<AggregateQuery> queries = {
      AggregateQuery{AggregateType::kMedian, "value", std::nullopt, 50.0},
      AggregateQuery{AggregateType::kPercentile, "value", std::nullopt, 90.0},
      AggregateQuery{AggregateType::kVar, "value", std::nullopt, 50.0},
      AggregateQuery{AggregateType::kStd, "value", std::nullopt, 50.0},
  };
  ExpectIdenticalAcrossThreadCounts([&](const ExecutionOptions& exec) {
    ByteSink sink;
    for (const AggregateQuery& query : queries) {
      Rng boot_rng(23);
      QueryResult r =
          *pt.BootstrapExtendedAggregate(query, boot_rng, 24, 0.95, exec);
      AppendBootstrapResult(&sink, r);
    }
    return std::move(sink).Finish();
  });
}

TEST(ParallelDeterminismTest,
     BootstrapWithDegenerateReplicatesIdenticalAcrossThreadCounts) {
  // A predicate matching only two rows makes a resample degenerate
  // whenever it draws neither row (probability ≈ e^-2 per replicate), so
  // some replicates drop out. The dropped set — and therefore the
  // effective replicate count and the interval — must not depend on the
  // thread count: RNG streams are forked by replicate index before any
  // replicate is known to be degenerate.
  Schema schema = *Schema::Make(
      {Field::Discrete("category"),
       Field::Numerical("value", ValueType::kDouble)});
  TableBuilder builder(schema);
  Rng data_rng(29);
  const size_t rows = 1500;
  for (size_t r = 0; r < rows; ++r) {
    Value category = (r == 100 || r == 900) ? Value("rare") : Value("common");
    builder.Row({category, Value(data_rng.UniformRealRange(0.0, 100.0))});
  }
  Table data = *builder.Finish();
  PrivateRelationMetadata meta;
  meta.discrete.emplace(
      "category",
      DiscreteAttributeMeta{0.1, *Domain::FromColumn(data, "category")});
  meta.numeric.emplace("value", NumericAttributeMeta{3.0, 100.0});
  // FromPrivateRelation keeps the rows exactly as built, so the rare
  // category stays at exactly two occurrences.
  PrivateTable pt = *PrivateTable::FromPrivateRelation(data.Clone(), meta);
  AggregateQuery median{AggregateType::kMedian, "value",
                        Predicate::Equals("category", Value("rare")), 50.0};

  ExecutionOptions serial;
  Rng probe_rng(31);
  QueryResult probe =
      *pt.BootstrapExtendedAggregate(median, probe_rng, 20, 0.95, serial);
  // The fixed seed must actually produce degenerate replicates, or this
  // test exercises nothing.
  ASSERT_LT(probe.replicates_effective, probe.replicates_requested);
  ASSERT_GE(2 * probe.replicates_effective, probe.replicates_requested);

  ExpectIdenticalAcrossThreadCounts([&](const ExecutionOptions& exec) {
    Rng boot_rng(31);
    QueryResult r =
        *pt.BootstrapExtendedAggregate(median, boot_rng, 20, 0.95, exec);
    ByteSink sink;
    AppendBootstrapResult(&sink, r);
    return std::move(sink).Finish();
  });
}

}  // namespace
}  // namespace privateclean
