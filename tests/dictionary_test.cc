// StringDictionary + Arena unit coverage, plus the dictionary-vs-string
// differential suite: every consumer rewritten onto dense codes is
// checked against a naive boxed-Value reference implementation on the
// same inputs (and, for randomized response, the same RNG stream).

#include "table/dictionary.h"

#include <gtest/gtest.h>

#include <string>
#include <unordered_set>
#include <vector>

#include "cleaning/transform.h"
#include "common/arena.h"
#include "common/random.h"
#include "privacy/randomized_response.h"
#include "query/predicate.h"
#include "table/domain.h"
#include "table/table_builder.h"

namespace privateclean {
namespace {

// --- StringDictionary -----------------------------------------------------

TEST(StringDictionaryTest, InternAssignsDenseCodesInFirstSeenOrder) {
  StringDictionary d;
  EXPECT_EQ(d.Intern("b"), 0u);
  EXPECT_EQ(d.Intern("a"), 1u);
  EXPECT_EQ(d.Intern("b"), 0u);  // Idempotent.
  EXPECT_EQ(d.size(), 2u);
  EXPECT_EQ(d.At(0), "b");
  EXPECT_EQ(d.At(1), "a");
}

TEST(StringDictionaryTest, FindDoesNotIntern) {
  StringDictionary d;
  d.Intern("x");
  EXPECT_EQ(d.Find("x"), 0u);
  EXPECT_EQ(d.Find("missing"), kNullCode);
  EXPECT_EQ(d.size(), 1u);
}

TEST(StringDictionaryTest, ViewsAreStableAcrossGrowth) {
  StringDictionary d;
  std::string_view first = d.At(d.Intern("stable"));
  // Force many arena chunks; the first view must not move.
  for (int i = 0; i < 20000; ++i) {
    d.Intern("filler_" + std::to_string(i));
  }
  EXPECT_EQ(first, "stable");
  EXPECT_EQ(d.At(0), "stable");
  EXPECT_EQ(d.Find("stable"), 0u);
}

TEST(StringDictionaryTest, CopyPreservesCodesAndDetachesStorage) {
  StringDictionary d;
  d.Intern("a");
  d.Intern("b");
  StringDictionary copy(d);
  d.Intern("c");  // Must not appear in the copy.
  EXPECT_EQ(copy.size(), 2u);
  EXPECT_EQ(copy.At(0), "a");
  EXPECT_EQ(copy.At(1), "b");
  EXPECT_EQ(copy.Find("c"), kNullCode);
  EXPECT_EQ(copy.Find("b"), d.Find("b"));
}

TEST(StringDictionaryTest, EmptyStringIsAnOrdinaryEntry) {
  StringDictionary d;
  EXPECT_EQ(d.Intern(""), 0u);
  EXPECT_EQ(d.Find(""), 0u);
  EXPECT_EQ(d.At(0), "");
}

// --- Arena ----------------------------------------------------------------

TEST(ArenaTest, AllocationsAreAligned) {
  Arena a("test/align");
  for (size_t align : {1u, 2u, 4u, 8u, 16u, 64u}) {
    void* p = a.Allocate(3, align);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % align, 0u)
        << "align " << align;
  }
}

TEST(ArenaTest, CopyStringSurvivesChunkGrowth) {
  Arena a("test/growth");
  std::vector<std::string_view> views;
  std::vector<std::string> originals;
  for (int i = 0; i < 5000; ++i) {
    originals.push_back("value_" + std::to_string(i));
  }
  for (const std::string& s : originals) views.push_back(a.CopyString(s));
  for (size_t i = 0; i < originals.size(); ++i) {
    EXPECT_EQ(views[i], originals[i]);
    EXPECT_NE(views[i].data(), originals[i].data());  // A real copy.
  }
  EXPECT_GE(a.bytes_used(), views.size());
  EXPECT_GE(a.bytes_reserved(), a.bytes_used());
}

TEST(ArenaTest, ResetReleasesAccounting) {
  Arena a("test/reset");
  a.CopyString("something long enough to count");
  EXPECT_GT(a.bytes_used(), 0u);
  a.Reset();
  EXPECT_EQ(a.bytes_used(), 0u);
  EXPECT_EQ(a.bytes_reserved(), 0u);
  EXPECT_EQ(a.alloc_count(), 0u);
  // Still usable after Reset.
  EXPECT_EQ(a.CopyString("again"), "again");
}

TEST(ArenaTest, ZeroByteAllocationIsNonNull) {
  Arena a("test/zero");
  EXPECT_NE(a.Allocate(0), nullptr);
  EXPECT_EQ(a.CopyString(""), "");
}

TEST(ArenaProfilerTest, TracksPerSiteCountersAndPeak) {
  const char* site = "test/profiler_site";
  ArenaSiteStats before = ArenaProfiler::ForSite(site);
  {
    Arena a(site);
    a.CopyString("0123456789");  // 10 bytes.
    ArenaSiteStats live = ArenaProfiler::ForSite(site);
    EXPECT_EQ(live.alloc_calls, before.alloc_calls + 1);
    EXPECT_EQ(live.alloc_bytes, before.alloc_bytes + 10);
    EXPECT_EQ(live.live_bytes, before.live_bytes + 10);
    EXPECT_GE(live.peak_live_bytes, live.live_bytes);
  }
  // Destruction returns live bytes, never the cumulative counters.
  ArenaSiteStats after = ArenaProfiler::ForSite(site);
  EXPECT_EQ(after.alloc_calls, before.alloc_calls + 1);
  EXPECT_EQ(after.live_bytes, before.live_bytes);
  EXPECT_GE(after.peak_live_bytes, before.live_bytes + 10);
}

TEST(ArenaProfilerTest, SnapshotIsSortedAndIncludesKnownSites) {
  Arena a("test/snapshot_site");
  a.CopyString("x");
  std::vector<ArenaSiteStats> snapshot = ArenaProfiler::Snapshot();
  ASSERT_FALSE(snapshot.empty());
  bool found = false;
  for (size_t i = 0; i < snapshot.size(); ++i) {
    if (i > 0) EXPECT_LT(snapshot[i - 1].site, snapshot[i].site);
    if (snapshot[i].site == "test/snapshot_site") found = true;
  }
  EXPECT_TRUE(found);
  ArenaSiteStats totals = ArenaProfiler::Totals();
  uint64_t sum = 0;
  for (const ArenaSiteStats& s : snapshot) sum += s.alloc_bytes;
  EXPECT_EQ(totals.alloc_bytes, sum);
}

// --- Dictionary-vs-string differential suite ------------------------------

Table MakeStringTable(size_t rows, uint64_t seed) {
  Schema s = *Schema::Make({Field::Discrete("city")});
  TableBuilder b(s);
  Rng rng(seed);
  const char* cities[] = {"Berkeley", "Oakland", "", "San Jose, CA",
                          "Fre\"mont", "O'Brien"};
  for (size_t i = 0; i < rows; ++i) {
    if (rng.Bernoulli(0.1)) {
      b.Row({Value::Null()});
    } else {
      b.Row({Value(cities[rng.UniformInt(6)])});
    }
  }
  return *b.Finish();
}

TEST(DictionaryDifferentialTest, PredicateEvaluateMatchesRowWiseReference) {
  Table t = MakeStringTable(4000, 91);
  const Column& col = t.column(0);
  for (const Predicate& pred :
       {Predicate::Equals("city", "Oakland"),
        Predicate::Equals("city", ""),
        Predicate::Equals("city", "missing-from-table"),
        Predicate::In("city", {Value("Berkeley"), Value::Null()}),
        Predicate::IsNull("city"),
        Predicate::Equals("city", "Oakland").Negate()}) {
    std::vector<uint8_t> fast = *pred.Evaluate(t, ExecutionOptions{});
    ASSERT_EQ(fast.size(), t.num_rows());
    for (size_t r = 0; r < t.num_rows(); ++r) {
      EXPECT_EQ(fast[r] != 0, pred.Matches(col.ValueAt(r))) << "row " << r;
    }
  }
}

TEST(DictionaryDifferentialTest, DomainFromColumnMatchesFirstAppearance) {
  Table t = MakeStringTable(3000, 17);
  const Column& col = t.column(0);
  for (bool include_null : {true, false}) {
    Domain fast = *Domain::FromColumn(t, "city", include_null);
    // Naive reference: boxed values in row order, first appearance wins.
    std::vector<Value> order;
    std::unordered_set<Value, ValueHash> seen;
    for (size_t r = 0; r < col.size(); ++r) {
      Value v = col.ValueAt(r);
      if (v.is_null() && !include_null) continue;
      if (seen.insert(v).second) order.push_back(v);
    }
    ASSERT_EQ(fast.size(), order.size()) << include_null;
    for (size_t i = 0; i < order.size(); ++i) {
      EXPECT_EQ(fast.value(i), order[i]) << "slot " << i;
    }
  }
}

TEST(DictionaryDifferentialTest,
     RandomizedResponseMatchesBoxedReferenceStream) {
  Table t = MakeStringTable(2500, 5);
  Domain domain = *Domain::FromColumn(t, "city", /*include_null=*/true);

  Column fast = t.column(0).SelectRows([&] {
    std::vector<size_t> all(t.num_rows());
    for (size_t i = 0; i < all.size(); ++i) all[i] = i;
    return all;
  }());
  Rng rng_fast(1234);
  ASSERT_TRUE(ApplyRandomizedResponse(&fast, domain, 0.35, rng_fast).ok());

  // Reference: identical draw sequence (one Bernoulli per row, one
  // uniform draw only on replacement), applied through boxed SetValue.
  Column ref = t.column(0).SelectRows([&] {
    std::vector<size_t> all(t.num_rows());
    for (size_t i = 0; i < all.size(); ++i) all[i] = i;
    return all;
  }());
  Rng rng_ref(1234);
  for (size_t r = 0; r < ref.size(); ++r) {
    if (!rng_ref.Bernoulli(0.35)) continue;
    size_t j = static_cast<size_t>(rng_ref.UniformInt(domain.size()));
    ASSERT_TRUE(ref.SetValue(r, domain.value(j)).ok());
  }

  ASSERT_EQ(fast.size(), ref.size());
  EXPECT_EQ(fast.null_count(), ref.null_count());
  for (size_t r = 0; r < fast.size(); ++r) {
    EXPECT_EQ(fast.ValueAt(r), ref.ValueAt(r)) << "row " << r;
  }
}

TEST(DictionaryDifferentialTest, ValueTransformMatchesRowWiseReference) {
  Table fast_t = MakeStringTable(2000, 77);
  Table ref_t = fast_t.Clone();
  auto fn = [](const Value& v) -> Value {
    if (v.is_null()) return Value("was-null");
    if (v.AsString().empty()) return Value::Null();  // ""→NULL transition.
    return Value(v.AsString() + "!");
  };
  ValueTransform transform("city", fn);
  ASSERT_TRUE(transform.Apply(&fast_t).ok());
  // Reference: apply the UDF row by row through boxed SetValue.
  Column* ref_col = *ref_t.MutableColumnByName("city");
  for (size_t r = 0; r < ref_col->size(); ++r) {
    ASSERT_TRUE(ref_col->SetValue(r, fn(ref_col->ValueAt(r))).ok());
  }
  const Column& fast_col = fast_t.column(0);
  ASSERT_EQ(fast_col.size(), ref_col->size());
  EXPECT_EQ(fast_col.null_count(), ref_col->null_count());
  for (size_t r = 0; r < fast_col.size(); ++r) {
    EXPECT_EQ(fast_col.ValueAt(r), ref_col->ValueAt(r)) << "row " << r;
  }
}

}  // namespace
}  // namespace privateclean
