#include "common/status.h"

#include <gtest/gtest.h>

namespace privateclean {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_TRUE(st.message().empty());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, OkFactory) {
  EXPECT_TRUE(Status::OK().ok());
}

TEST(StatusTest, ErrorFactoriesCarryCodeAndMessage) {
  struct Case {
    Status status;
    StatusCode code;
  };
  Case cases[] = {
      {Status::InvalidArgument("a"), StatusCode::kInvalidArgument},
      {Status::NotFound("b"), StatusCode::kNotFound},
      {Status::OutOfRange("c"), StatusCode::kOutOfRange},
      {Status::FailedPrecondition("d"), StatusCode::kFailedPrecondition},
      {Status::AlreadyExists("e"), StatusCode::kAlreadyExists},
      {Status::IOError("f"), StatusCode::kIOError},
      {Status::Internal("g"), StatusCode::kInternal},
      {Status::DataLoss("h"), StatusCode::kDataLoss},
      {Status::ResourceExhausted("i"), StatusCode::kResourceExhausted},
  };
  for (const Case& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_FALSE(c.status.message().empty());
  }
}

TEST(StatusTest, PredicatesMatchCodes) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::DataLoss("x").IsDataLoss());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_FALSE(Status::NotFound("x").IsInvalidArgument());
  EXPECT_FALSE(Status::IOError("x").IsDataLoss());
  EXPECT_FALSE(Status::ResourceExhausted("x").IsFailedPrecondition());
}

TEST(StatusTest, ResourceExhaustedRendersItsName) {
  Status st = Status::ResourceExhausted("budget gone");
  EXPECT_EQ(st.ToString(), "Resource exhausted: budget gone");
}

TEST(StatusTest, WithCodeRebindsCodeKeepingMessage) {
  Status st = Status::WithCode(StatusCode::kDataLoss, "torn record");
  EXPECT_TRUE(st.IsDataLoss());
  EXPECT_EQ(st.message(), "torn record");
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  Status st = Status::InvalidArgument("p must be positive");
  EXPECT_EQ(st.ToString(), "Invalid argument: p must be positive");
}

TEST(StatusTest, CopyPreservesState) {
  Status st = Status::NotFound("missing");
  Status copy = st;
  EXPECT_TRUE(copy.IsNotFound());
  EXPECT_EQ(copy.message(), "missing");
  EXPECT_TRUE(st.IsNotFound());  // Source unchanged.
}

TEST(StatusTest, CopyAssignOverwrites) {
  Status st = Status::NotFound("missing");
  Status other;
  other = st;
  EXPECT_TRUE(other.IsNotFound());
  other = Status::OK();
  EXPECT_TRUE(other.ok());
}

TEST(StatusTest, MovePreservesState) {
  Status st = Status::IOError("disk");
  Status moved = std::move(st);
  EXPECT_TRUE(moved.IsIOError());
  EXPECT_EQ(moved.message(), "disk");
}

TEST(StatusTest, SelfAssignmentIsSafe) {
  Status st = Status::Internal("boom");
  Status& ref = st;
  st = ref;
  EXPECT_TRUE(st.IsInternal());
  EXPECT_EQ(st.message(), "boom");
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = []() -> Status {
    PCLEAN_RETURN_NOT_OK(Status::InvalidArgument("inner"));
    return Status::Internal("unreachable");
  };
  Status st = fails();
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_EQ(st.message(), "inner");
}

TEST(StatusTest, ReturnNotOkMacroPassesThroughOk) {
  auto succeeds = []() -> Status {
    PCLEAN_RETURN_NOT_OK(Status::OK());
    return Status::AlreadyExists("reached");
  };
  EXPECT_TRUE(succeeds().IsAlreadyExists());
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotFound), "Not found");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kIOError), "IO error");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kDataLoss), "Data loss");
}

}  // namespace
}  // namespace privateclean
