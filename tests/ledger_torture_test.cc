// Ledger crash-consistency torture: every ledger failpoint site is
// killed one at a time — and in randomized combinations — against the
// grant/charge/checkpoint/recover cycle. The monotonicity contract
// under any commit-path kill: after recovery, spent budget is never
// LESS than the sum of acknowledged charges, and exceeds it by at most
// the one commit that was in flight when the kill landed. Crashes,
// silent under-counting, and untyped errors are the only failures.

#include <gtest/gtest.h>

#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "common/io_util.h"
#include "common/random.h"
#include "privacy/ledger.h"

namespace privateclean {
namespace {

namespace fs = std::filesystem;

/// The closed set of codes a ledger operation may fail with.
bool IsTypedLedgerError(const Status& st) {
  return st.IsIOError() || st.IsDataLoss() || st.IsFailedPrecondition() ||
         st.IsNotFound() || st.IsResourceExhausted();
}

/// The commit-path sites: a kill here may lose the in-flight record but
/// never an acknowledged one, so the monotonicity bound applies.
const std::vector<std::string>& CommitPathSites() {
  static const std::vector<std::string> sites = {
      "ledger.wal.append", "ledger.wal.short",   "ledger.wal.fsync",
      "ledger.ckpt.write", "ledger.ckpt.rename", "ledger.recover.open",
  };
  return sites;
}

class LedgerTortureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    failpoint::DeactivateAll();
    base_ = ::testing::TempDir() + "ledger_torture_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name();
    fs::remove_all(base_);
    fs::create_directories(base_);
  }
  void TearDown() override {
    failpoint::DeactivateAll();
    fs::remove_all(base_);
  }

  std::string Dir(const std::string& name) { return base_ + "/" + name; }

  std::string base_;
};

/// Opens with every fault off; recovery of a healthy or torn-by-fault
/// ledger must always succeed.
BudgetLedger MustOpen(const std::string& dir) {
  auto opened = BudgetLedger::Open(dir);
  EXPECT_TRUE(opened.ok()) << opened.status().ToString();
  return std::move(*opened);
}

TEST_F(LedgerTortureTest, KillAtEveryCommitSiteKeepsSpentMonotonic) {
  for (const std::string& site : CommitPathSites()) {
    SCOPED_TRACE(site);
    const std::string dir = Dir(site);
    BudgetLedger::Options options;
    options.checkpoint_every = 0;
    {
      auto opened = BudgetLedger::Open(dir, options);
      ASSERT_TRUE(opened.ok()) << opened.status().ToString();
      BudgetLedger ledger = std::move(*opened);
      ASSERT_TRUE(ledger.Grant("t", 100.0).ok());

      double acknowledged = 0.0;  // charges that returned OK, fault-free
      double in_flight = 0.0;     // the at-most-one record a kill strands
      bool wounded = false;
      for (int i = 0; i < 6 && !wounded; ++i) {
        const bool arm = (i == 3);
        if (arm) {
          failpoint::Fault fault = failpoint::DefaultFault(site);
          fault.remaining = 1;
          ASSERT_TRUE(failpoint::Activate(site, fault).ok());
        }
        const uint64_t hits_before = failpoint::Hits(site);
        Status st = ledger.Charge("t", 0.25);
        const bool fired = failpoint::Hits(site) > hits_before && arm;
        if (st.ok()) {
          // An op during which the armed fault fired is treated as
          // in-flight even if it reported OK (a lying device may still
          // have persisted or dropped it — both are within the bound).
          if (fired) {
            in_flight += 0.25;
          } else {
            acknowledged += 0.25;
          }
        } else {
          ASSERT_TRUE(IsTypedLedgerError(st)) << st.ToString();
          in_flight += 0.25;
          wounded = ledger.wounded();
        }
        failpoint::Deactivate(site);
      }
      ASSERT_GT(in_flight + acknowledged, 0.0);

      // Checkpoint under fire must never lose state either; a failure
      // here is typed and leaves the ledger healthy (nothing new was
      // acknowledged on the compaction path).
      if (!wounded) {
        failpoint::Fault fault = failpoint::DefaultFault(site);
        fault.remaining = 1;
        ASSERT_TRUE(failpoint::Activate(site, fault).ok());
        Status ckpt = ledger.Checkpoint();
        failpoint::Deactivate(site);
        if (!ckpt.ok()) ASSERT_TRUE(IsTypedLedgerError(ckpt));
      }

      // Recovery: the kill may cost the in-flight record, never an
      // acknowledged one.
      auto recovered = BudgetLedger::Open(dir);
      ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
      auto budget = recovered->Budget("t");
      ASSERT_TRUE(budget.ok()) << budget.status().ToString();
      EXPECT_GE(budget->spent, acknowledged)
          << "recovery under-counted acknowledged spend";
      EXPECT_LE(budget->spent, acknowledged + in_flight + 1e-12)
          << "recovery over-counted beyond the in-flight record";
      EXPECT_EQ(budget->granted, 100.0);
      // The recovered ledger is fully serviceable.
      EXPECT_TRUE(recovered->Charge("t", 0.25).ok());
    }
  }
}

TEST_F(LedgerTortureTest, KillDuringRecoveryThenRecoveringAgainConverges) {
  const std::string dir = Dir("reentry");
  {
    BudgetLedger ledger = MustOpen(dir);
    ASSERT_TRUE(ledger.Grant("t", 8.0).ok());
    ASSERT_TRUE(ledger.Charge("t", 0.5).ok());
    // Tear the tail for real: a short append that the length
    // cross-check catches, wounding the ledger and leaving a torn
    // frame on disk.
    failpoint::Fault fault = failpoint::DefaultFault("ledger.wal.short");
    fault.remaining = 1;
    ASSERT_TRUE(failpoint::Activate("ledger.wal.short", fault).ok());
    Status st = ledger.Charge("t", 0.25);
    failpoint::Deactivate("ledger.wal.short");
    ASSERT_FALSE(st.ok());
    ASSERT_TRUE(ledger.wounded());
    // Wounded means fail-stop: every later op demands a reopen.
    ASSERT_TRUE(ledger.Charge("t", 0.25).IsFailedPrecondition());
    ASSERT_TRUE(ledger.Budget("t").status().IsFailedPrecondition());
  }

  // First recovery attempt dies at the recovery entry point — a crash
  // DURING recovery, before any repair.
  failpoint::Fault fault = failpoint::DefaultFault("ledger.recover.open");
  fault.remaining = 1;
  ASSERT_TRUE(failpoint::Activate("ledger.recover.open", fault).ok());
  auto crashed = BudgetLedger::Open(dir);
  failpoint::Deactivate("ledger.recover.open");
  ASSERT_FALSE(crashed.ok());
  ASSERT_TRUE(IsTypedLedgerError(crashed.status()));

  // Second recovery repairs the tear; third finds nothing to do. Both
  // land on the identical state AND identical WAL bytes.
  BudgetLedger second = MustOpen(dir);
  auto after_second = io::ReadFileToString(dir + "/ledger.wal");
  ASSERT_TRUE(after_second.ok());
  auto budget2 = second.Budget("t");
  ASSERT_TRUE(budget2.ok());
  EXPECT_EQ(budget2->granted, 8.0);
  EXPECT_EQ(budget2->spent, 0.5);  // the torn 0.25 was never acknowledged

  BudgetLedger third = MustOpen(dir);
  auto budget3 = third.Budget("t");
  ASSERT_TRUE(budget3.ok());
  EXPECT_EQ(budget3->granted, budget2->granted);
  EXPECT_EQ(budget3->spent, budget2->spent);
  EXPECT_EQ(*io::ReadFileToString(dir + "/ledger.wal"), *after_second);
}

TEST_F(LedgerTortureTest, SimulatedTornDiskRecoversIdempotently) {
  const std::string dir = Dir("torn_disk");
  {
    BudgetLedger ledger = MustOpen(dir);
    ASSERT_TRUE(ledger.Grant("t", 8.0).ok());
    for (int i = 0; i < 4; ++i) ASSERT_TRUE(ledger.Charge("t", 0.25).ok());
  }
  // The torn-recovery data fault serves recovery a half-length WAL
  // image, exactly what a disk that lost its tail would.
  failpoint::Fault fault = failpoint::DefaultFault("ledger.recover.torn");
  fault.remaining = 1;
  ASSERT_TRUE(failpoint::Activate("ledger.recover.torn", fault).ok());
  auto first = BudgetLedger::Open(dir);
  failpoint::Deactivate("ledger.recover.torn");
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  auto budget1 = first->Budget("t");
  ASSERT_TRUE(budget1.ok());

  // Repair materialized the tear on disk, so recovering again — with
  // the disk now healthy — converges on the same state instead of
  // resurrecting records the first recovery already dropped.
  auto second = BudgetLedger::Open(dir);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  auto budget2 = second->Budget("t");
  ASSERT_TRUE(budget2.ok());
  EXPECT_EQ(budget2->granted, budget1->granted);
  EXPECT_EQ(budget2->spent, budget1->spent);
}

TEST_F(LedgerTortureTest, SimulatedBitRotIsDataLossNotSilentTruncation) {
  const std::string dir = Dir("bitrot");
  double full_spent = 0.0;
  {
    BudgetLedger ledger = MustOpen(dir);
    ASSERT_TRUE(ledger.Grant("t", 8.0).ok());
    for (int i = 0; i < 4; ++i) ASSERT_TRUE(ledger.Charge("t", 0.25).ok());
    full_spent = ledger.Budget("t")->spent;
  }
  failpoint::Fault fault = failpoint::DefaultFault("ledger.recover.bitflip");
  fault.remaining = 1;
  ASSERT_TRUE(failpoint::Activate("ledger.recover.bitflip", fault).ok());
  auto flipped = BudgetLedger::Open(dir);
  failpoint::Deactivate("ledger.recover.bitflip");
  ASSERT_FALSE(flipped.ok());
  EXPECT_TRUE(flipped.status().IsDataLoss()) << flipped.status().ToString();
  EXPECT_NE(flipped.status().message().find("at byte"), std::string::npos)
      << flipped.status().message();
  // Refusing to repair means the intact file still recovers in full.
  BudgetLedger healthy = MustOpen(dir);
  EXPECT_EQ(healthy.Budget("t")->spent, full_spent);
}

/// Randomized multi-site fuzz over the commit-path sites: arbitrary
/// interleavings of grants, charges, checkpoints, reopens, and armed
/// kills must keep every op typed and the recovered spend inside the
/// [acknowledged, acknowledged + in-flight] band.
TEST_F(LedgerTortureTest, RandomizedMultiSiteFuzzKeepsMonotonicity) {
  Rng rng(20260808);
  const auto& sites = CommitPathSites();
  for (int round = 0; round < 24; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    const std::string dir = Dir("fuzz" + std::to_string(round));
    BudgetLedger::Options options;
    options.group_commit = rng.Bernoulli(0.5);
    options.checkpoint_every = rng.Bernoulli(0.5) ? 3 : 0;
    std::optional<BudgetLedger> ledger;
    {
      auto opened = BudgetLedger::Open(dir, options);
      ASSERT_TRUE(opened.ok());
      ledger.emplace(std::move(*opened));
      ASSERT_TRUE(ledger->Grant("t", 1000.0).ok());
    }
    double acknowledged = 0.0;
    double in_flight = 0.0;

    const int ops = 12 + static_cast<int>(rng.UniformInt(12));
    for (int i = 0; i < ops; ++i) {
      // Arm a random subset (usually one, sometimes two) of the sites.
      std::vector<std::string> armed;
      if (rng.Bernoulli(0.4)) {
        size_t pick = rng.UniformInt(sites.size());
        armed.push_back(sites[pick]);
        if (rng.Bernoulli(0.25)) {
          armed.push_back(sites[rng.UniformInt(sites.size())]);
        }
        for (const std::string& site : armed) {
          failpoint::Fault fault = failpoint::DefaultFault(site);
          fault.remaining = 1;
          ASSERT_TRUE(failpoint::Activate(site, fault).ok());
        }
      }
      const int action = static_cast<int>(rng.UniformInt(10));
      if (action < 6) {
        uint64_t hits = 0;
        for (const std::string& site : armed) hits += failpoint::Hits(site);
        Status st = ledger->Charge("t", 0.25);
        uint64_t hits_after = 0;
        for (const std::string& site : armed) {
          hits_after += failpoint::Hits(site);
        }
        const bool fired = hits_after > hits;
        if (st.ok() && !fired) {
          acknowledged += 0.25;
        } else if (st.ok()) {
          in_flight += 0.25;
        } else {
          ASSERT_TRUE(IsTypedLedgerError(st)) << st.ToString();
          if (!st.IsFailedPrecondition()) in_flight += 0.25;
        }
      } else if (action < 8) {
        Status st = ledger->Checkpoint();
        if (!st.ok()) ASSERT_TRUE(IsTypedLedgerError(st)) << st.ToString();
      } else {
        failpoint::DeactivateAll();
        auto reopened = BudgetLedger::Open(dir, options);
        ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
        ledger.emplace(std::move(*reopened));
      }
      failpoint::DeactivateAll();
      if (ledger->wounded()) {
        auto reopened = BudgetLedger::Open(dir, options);
        ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
        ledger.emplace(std::move(*reopened));
      }
    }

    failpoint::DeactivateAll();
    auto final_open = BudgetLedger::Open(dir, options);
    ASSERT_TRUE(final_open.ok()) << final_open.status().ToString();
    auto budget = final_open->Budget("t");
    ASSERT_TRUE(budget.ok());
    EXPECT_GE(budget->spent, acknowledged - 1e-12)
        << "fuzz round under-counted acknowledged spend";
    EXPECT_LE(budget->spent, acknowledged + in_flight + 1e-12)
        << "fuzz round over-counted beyond in-flight records";
  }
}

}  // namespace
}  // namespace privateclean
