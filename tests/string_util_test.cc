#include "common/string_util.h"

#include <gtest/gtest.h>

namespace privateclean {
namespace {

TEST(TrimTest, Basic) {
  EXPECT_EQ(TrimWhitespace("  abc  "), "abc");
  EXPECT_EQ(TrimWhitespace("abc"), "abc");
  EXPECT_EQ(TrimWhitespace("\t\n abc \r\n"), "abc");
  EXPECT_EQ(TrimWhitespace("   "), "");
  EXPECT_EQ(TrimWhitespace(""), "");
  EXPECT_EQ(TrimWhitespace("a b"), "a b");  // Inner space preserved.
}

TEST(ToLowerTest, Basic) {
  EXPECT_EQ(ToLowerAscii("HeLLo 123 WORLD"), "hello 123 world");
  EXPECT_EQ(ToLowerAscii(""), "");
}

TEST(SplitTest, KeepsEmptyFields) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(JoinTest, Basic) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(SplitJoinTest, RoundTrip) {
  std::string s = "x|y||z";
  EXPECT_EQ(Join(Split(s, '|'), "|"), s);
}

TEST(ParseInt64Test, Valid) {
  EXPECT_EQ(*ParseInt64("42"), 42);
  EXPECT_EQ(*ParseInt64("-7"), -7);
  EXPECT_EQ(*ParseInt64("  123  "), 123);
  EXPECT_EQ(*ParseInt64("0"), 0);
  EXPECT_EQ(*ParseInt64("9223372036854775807"), INT64_MAX);
  EXPECT_EQ(*ParseInt64("-9223372036854775808"), INT64_MIN);
}

TEST(ParseInt64Test, Invalid) {
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("abc").ok());
  EXPECT_FALSE(ParseInt64("12x").ok());
  EXPECT_FALSE(ParseInt64("1.5").ok());
  EXPECT_FALSE(ParseInt64("9223372036854775808").ok());  // Overflow.
}

TEST(ParseDoubleTest, Valid) {
  EXPECT_DOUBLE_EQ(*ParseDouble("3.14"), 3.14);
  EXPECT_DOUBLE_EQ(*ParseDouble("-2.5e3"), -2500.0);
  EXPECT_DOUBLE_EQ(*ParseDouble("42"), 42.0);
  EXPECT_DOUBLE_EQ(*ParseDouble(" 0.5 "), 0.5);
}

TEST(ParseDoubleTest, Invalid) {
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("pi").ok());
  EXPECT_FALSE(ParseDouble("1.5.2").ok());
  EXPECT_FALSE(ParseDouble("3.14abc").ok());
}

TEST(FormatDoubleTest, IntegralValuesCompact) {
  EXPECT_EQ(FormatDouble(42.0), "42");
  EXPECT_EQ(FormatDouble(-3.0), "-3");
  EXPECT_EQ(FormatDouble(0.0), "0");
}

TEST(FormatDoubleTest, RoundTrips) {
  for (double v : {3.14159, -0.001, 1e-10, 12345.6789, 2.0 / 3.0}) {
    EXPECT_DOUBLE_EQ(*ParseDouble(FormatDouble(v)), v) << v;
  }
}

TEST(StartsEndsWithTest, Basic) {
  EXPECT_TRUE(StartsWith("privateclean", "private"));
  EXPECT_FALSE(StartsWith("private", "privateclean"));
  EXPECT_TRUE(StartsWith("abc", ""));
  EXPECT_TRUE(EndsWith("file.csv", ".csv"));
  EXPECT_FALSE(EndsWith(".csv", "file.csv"));
  EXPECT_TRUE(EndsWith("abc", ""));
}

}  // namespace
}  // namespace privateclean
