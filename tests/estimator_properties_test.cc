// Property-based sweeps over the estimator parameter space: for every
// combination of (p, N, z, selectivity) the PrivateClean estimators must
// be (a) approximately unbiased across random private instances, and
// (b) deliver at least nominal confidence-interval coverage.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "common/statistics.h"
#include "core/privateclean.h"
#include "datagen/synthetic.h"

namespace privateclean {
namespace {

struct SweepParams {
  double p;
  size_t num_distinct;
  double zipf_skew;
  size_t predicate_values;  // l' (clean distinct values selected).
};

std::string ParamName(const ::testing::TestParamInfo<SweepParams>& info) {
  const SweepParams& sp = info.param;
  char buf[96];
  std::snprintf(buf, sizeof(buf), "p%02d_N%zu_z%02d_l%zu",
                static_cast<int>(sp.p * 100), sp.num_distinct,
                static_cast<int>(sp.zipf_skew * 10), sp.predicate_values);
  return buf;
}

class EstimatorSweepTest : public ::testing::TestWithParam<SweepParams> {};

TEST_P(EstimatorSweepTest, CountIsApproximatelyUnbiased) {
  const SweepParams& sp = GetParam();
  SyntheticOptions options;
  options.num_rows = 1200;
  options.num_distinct = sp.num_distinct;
  options.zipf_skew = sp.zipf_skew;
  Rng data_rng(1234);
  Table data = *GenerateSynthetic(options, data_rng);

  Rng query_rng(99);
  std::vector<Value> pred_values = PickPredicateCategories(
      sp.num_distinct, sp.predicate_values, /*mode=*/2, query_rng);
  Predicate pred = Predicate::In("category", pred_values);
  double truth = *ExecuteAggregate(data, AggregateQuery::Count(pred));

  const int trials = 30;
  RunningMoments estimates;
  int covered = 0;
  for (int t = 0; t < trials; ++t) {
    Rng rng(5000 + t);
    PrivateTable pt = *PrivateTable::Create(
        data, GrrParams::Uniform(sp.p, 5.0), GrrOptions{}, rng);
    QueryResult r = *pt.Count(pred);
    estimates.Add(r.estimate);
    if (r.ci.Contains(truth)) ++covered;
  }
  // Unbiasedness: the mean estimate is within 4 standard errors of truth.
  double se = std::sqrt(estimates.SampleVariance() / trials);
  EXPECT_NEAR(estimates.Mean(), truth, std::max(4.0 * se, 2.0))
      << "truth=" << truth;
  // Coverage: at least ~nominal (30 trials, allow Monte-Carlo slack).
  EXPECT_GE(covered, static_cast<int>(trials * 0.8));
}

TEST_P(EstimatorSweepTest, SumIsApproximatelyUnbiased) {
  const SweepParams& sp = GetParam();
  SyntheticOptions options;
  options.num_rows = 1200;
  options.num_distinct = sp.num_distinct;
  options.zipf_skew = sp.zipf_skew;
  options.correlated = true;  // The harder regime for sum (§5.5).
  Rng data_rng(4321);
  Table data = *GenerateSynthetic(options, data_rng);

  Rng query_rng(7);
  std::vector<Value> pred_values = PickPredicateCategories(
      sp.num_distinct, sp.predicate_values, /*mode=*/2, query_rng);
  Predicate pred = Predicate::In("category", pred_values);
  double truth = *ExecuteAggregate(data, AggregateQuery::Sum("value", pred));
  if (std::abs(truth) < 100.0) {
    GTEST_SKIP() << "degenerate query (truth too small for relative test)";
  }

  const int trials = 30;
  RunningMoments estimates;
  int covered = 0;
  for (int t = 0; t < trials; ++t) {
    Rng rng(6000 + t);
    PrivateTable pt = *PrivateTable::Create(
        data, GrrParams::Uniform(sp.p, 5.0), GrrOptions{}, rng);
    QueryResult r = *pt.Sum("value", pred);
    estimates.Add(r.estimate);
    if (r.ci.Contains(truth)) ++covered;
  }
  double se = std::sqrt(estimates.SampleVariance() / trials);
  EXPECT_NEAR(estimates.Mean(), truth,
              std::max(4.0 * se, 0.02 * std::abs(truth)));
  EXPECT_GE(covered, static_cast<int>(trials * 0.8));
}

INSTANTIATE_TEST_SUITE_P(
    ParameterGrid, EstimatorSweepTest,
    ::testing::Values(
        SweepParams{0.05, 50, 2.0, 5},   // Paper defaults, low privacy.
        SweepParams{0.10, 50, 2.0, 5},   // Paper defaults.
        SweepParams{0.30, 50, 2.0, 5},   // High privacy.
        SweepParams{0.50, 50, 2.0, 5},   // Very high privacy.
        SweepParams{0.10, 10, 2.0, 2},   // Small domain.
        SweepParams{0.10, 200, 2.0, 20}, // Large domain.
        SweepParams{0.10, 50, 0.0, 5},   // Uniform data (no skew).
        SweepParams{0.10, 50, 3.0, 5},   // Extreme skew.
        SweepParams{0.10, 50, 2.0, 1},   // Point predicate.
        SweepParams{0.10, 50, 2.0, 25},  // Half the domain.
        SweepParams{0.10, 50, 2.0, 45}), // Nearly everything.
    ParamName);

// After cleaning, the corrected estimator must still be unbiased: merge a
// fraction of the domain and compare against the cleaned ground truth.
class CleanedEstimatorSweepTest
    : public ::testing::TestWithParam<SweepParams> {};

TEST_P(CleanedEstimatorSweepTest, CountUnbiasedAfterMerging) {
  const SweepParams& sp = GetParam();
  SyntheticOptions options;
  options.num_rows = 1200;
  options.num_distinct = sp.num_distinct;
  options.zipf_skew = sp.zipf_skew;
  Rng data_rng(777);
  Table dirty = *GenerateSynthetic(options, data_rng);

  // Cleaning merges pairs (c1->c0, c3->c2, ...), covering 2*l' values.
  std::unordered_map<Value, Value, ValueHash> merges;
  for (size_t k = 0; k + 1 < 2 * sp.predicate_values &&
                     k + 1 < sp.num_distinct;
       k += 2) {
    merges.emplace(SyntheticCategory(k + 1), SyntheticCategory(k));
  }
  Table clean_truth = dirty.Clone();
  ASSERT_TRUE(FindReplace("category", merges).Apply(&clean_truth).ok());

  // Predicate over the merged canonical values.
  std::vector<Value> pred_values;
  for (size_t k = 0; k < 2 * sp.predicate_values && k < sp.num_distinct;
       k += 2) {
    pred_values.push_back(SyntheticCategory(k));
  }
  Predicate pred = Predicate::In("category", pred_values);
  double truth =
      *ExecuteAggregate(clean_truth, AggregateQuery::Count(pred));

  const int trials = 30;
  RunningMoments estimates;
  for (int t = 0; t < trials; ++t) {
    Rng rng(9000 + t);
    PrivateTable pt = *PrivateTable::Create(
        dirty, GrrParams::Uniform(sp.p, 5.0), GrrOptions{}, rng);
    ASSERT_TRUE(pt.Clean(FindReplace("category", merges)).ok());
    estimates.Add(pt.Count(pred)->estimate);
  }
  double se = std::sqrt(estimates.SampleVariance() / trials);
  EXPECT_NEAR(estimates.Mean(), truth, std::max(4.0 * se, 2.0));
}

INSTANTIATE_TEST_SUITE_P(
    MergeGrid, CleanedEstimatorSweepTest,
    ::testing::Values(SweepParams{0.10, 50, 2.0, 5},
                      SweepParams{0.30, 50, 2.0, 5},
                      SweepParams{0.10, 20, 1.0, 4},
                      SweepParams{0.20, 100, 2.0, 10}),
    ParamName);

}  // namespace
}  // namespace privateclean
