#include "core/private_table.h"

#include <gtest/gtest.h>

#include <cmath>

#include "cleaning/extract.h"
#include "cleaning/merge.h"
#include "core/privateclean.h"
#include "table/table_builder.h"

namespace privateclean {
namespace {

Schema TestSchema() {
  return *Schema::Make({Field::Discrete("major"),
                        Field::Numerical("score", ValueType::kDouble)});
}

/// 600 rows over 6 majors with known counts and scores.
Table TestTable() {
  TableBuilder b(TestSchema());
  const char* majors[] = {"EECS",    "Mech. Eng.", "Mechanical Engineering",
                          "Math",    "Physics",    "Bio"};
  const size_t counts[] = {200, 100, 100, 100, 50, 50};
  const double scores[] = {4.0, 3.0, 3.5, 2.0, 4.5, 1.0};
  for (int m = 0; m < 6; ++m) {
    for (size_t i = 0; i < counts[m]; ++i) {
      b.Row({Value(majors[m]), Value(scores[m])});
    }
  }
  return *b.Finish();
}

PrivateTable MakePrivate(double p = 0.1, double b = 0.5,
                         uint64_t seed = 42) {
  Rng rng(seed);
  return *PrivateTable::Create(TestTable(), GrrParams::Uniform(p, b),
                               GrrOptions{}, rng);
}

TEST(PrivateTableTest, CreateExposesMetadata) {
  PrivateTable pt = MakePrivate();
  EXPECT_EQ(pt.size(), 600u);
  EXPECT_EQ(pt.metadata().discrete.at("major").domain.size(), 6u);
  EXPECT_DOUBLE_EQ(pt.metadata().discrete.at("major").p, 0.1);
  EXPECT_DOUBLE_EQ(pt.metadata().numeric.at("score").b, 0.5);
}

TEST(PrivateTableTest, PrivacyAccountingMatchesTheorem1) {
  PrivateTable pt = MakePrivate(0.25, 1.0);
  PrivacyReport report = *pt.PrivacyAccounting();
  double eps_major = std::log(3.0 / 0.25 - 2.0);
  double eps_score = 3.5 / 1.0;  // Sensitivity (4.5 - 1.0) / b.
  EXPECT_NEAR(report.total_epsilon, eps_major + eps_score, 1e-9);
  EXPECT_TRUE(report.fully_private);
}

TEST(PrivateTableTest, CountCorrectsTowardTruth) {
  // Average over many private instances: corrected count should be close
  // to the true count (200), while Direct is biased upward for this
  // selective predicate... (rare values inflate under randomization).
  const double truth = 200.0;
  double pc_sum = 0.0, direct_sum = 0.0;
  const int trials = 40;
  for (int i = 0; i < trials; ++i) {
    PrivateTable pt = MakePrivate(0.4, 0.5, 1000 + i);
    Predicate pred = Predicate::Equals("major", "EECS");
    pc_sum += pt.Count(pred)->estimate;
    direct_sum += pt.ExecuteDirect(AggregateQuery::Count(pred))->estimate;
  }
  double pc_mean = pc_sum / trials;
  double direct_mean = direct_sum / trials;
  EXPECT_NEAR(pc_mean, truth, 12.0);
  // EECS is over-represented (200/600 > 1/6), so randomization shrinks it
  // and Direct underestimates.
  EXPECT_LT(direct_mean, truth - 15.0);
  EXPECT_LT(std::abs(pc_mean - truth), std::abs(direct_mean - truth));
}

TEST(PrivateTableTest, CleaningThenQueryUsesProvenance) {
  PrivateTable pt = MakePrivate(0.2, 0.5, 7);
  std::unordered_map<Value, Value, ValueHash> fixes{
      {Value("Mechanical Engineering"), Value("Mech. Eng.")}};
  ASSERT_TRUE(pt.Clean(FindReplace("major", std::move(fixes))).ok());
  Predicate pred = Predicate::Equals("major", "Mech. Eng.");
  EstimationInputs in = *pt.InputsForPredicate(pred, "", QueryOptions{});
  EXPECT_DOUBLE_EQ(in.l, 2.0);  // Two dirty spellings merged.
  EXPECT_DOUBLE_EQ(in.n, 6.0);
  QueryResult r = *pt.Count(pred);
  EXPECT_DOUBLE_EQ(r.l, 2.0);
}

TEST(PrivateTableTest, UnweightedCutOption) {
  PrivateTable pt = MakePrivate(0.2, 0.5, 8);
  // Force a forked graph with a projection-dependent rewrite: merge
  // Physics and Bio into "Science" but only for half the rows via a
  // second attribute — here we emulate by mapping Physics -> Science and
  // Bio -> Science, fork-free; weighted == unweighted in that case.
  std::unordered_map<Value, Value, ValueHash> fixes{
      {Value("Physics"), Value("Science")}, {Value("Bio"), Value("Science")}};
  ASSERT_TRUE(pt.Clean(FindReplace("major", std::move(fixes))).ok());
  Predicate pred = Predicate::Equals("major", "Science");
  QueryOptions weighted;
  QueryOptions unweighted;
  unweighted.weighted_cut = false;
  EstimationInputs wi = *pt.InputsForPredicate(pred, "", weighted);
  EstimationInputs ui = *pt.InputsForPredicate(pred, "", unweighted);
  EXPECT_DOUBLE_EQ(wi.l, 2.0);
  EXPECT_DOUBLE_EQ(ui.l, 2.0);
}

TEST(PrivateTableTest, ExtractThenPredicateOnDerivedAttribute) {
  PrivateTable pt = MakePrivate(0.15, 0.5, 9);
  ExtractAttribute extract(
      "is_eng", {"major"}, [](const std::vector<Value>& tuple) {
        const std::string& s = tuple[0].AsString();
        bool eng = s.find("Eng") != std::string::npos || s == "EECS";
        return Value(eng ? "yes" : "no");
      });
  ASSERT_TRUE(pt.Clean(extract).ok());
  Predicate pred = Predicate::Equals("is_eng", "yes");
  QueryResult r = *pt.Count(pred);
  EXPECT_DOUBLE_EQ(r.n, 6.0);  // Anchored to major's dirty domain.
  EXPECT_DOUBLE_EQ(r.l, 3.0);  // EECS + two Mech spellings.
}

TEST(PrivateTableTest, SumAndAvgRun) {
  PrivateTable pt = MakePrivate(0.1, 0.5, 10);
  Predicate pred = Predicate::Equals("major", "EECS");
  QueryResult sum = *pt.Sum("score", pred);
  QueryResult avg = *pt.Avg("score", pred);
  // Truth: sum 800, avg 4.0. Loose sanity bounds.
  EXPECT_NEAR(sum.estimate, 800.0, 250.0);
  EXPECT_NEAR(avg.estimate, 4.0, 1.0);
  EXPECT_TRUE(sum.ci.Contains(sum.estimate));
}

TEST(PrivateTableTest, ExecuteDispatch) {
  PrivateTable pt = MakePrivate(0.1, 0.5, 11);
  Predicate pred = Predicate::Equals("major", "Math");
  QueryResult via_execute = *pt.Execute(AggregateQuery::Count(pred));
  QueryResult via_count = *pt.Count(pred);
  EXPECT_DOUBLE_EQ(via_execute.estimate, via_count.estimate);
}

TEST(PrivateTableTest, ExecuteWithoutPredicateIsDirectUnbiased) {
  PrivateTable pt = MakePrivate(0.3, 0.5, 12);
  QueryResult count = *pt.Execute(AggregateQuery::Count());
  EXPECT_DOUBLE_EQ(count.estimate, 600.0);
  QueryResult sum = *pt.Execute(AggregateQuery::Sum("score"));
  // Truth 1900; Laplace noise is zero-mean, CI should be tight-ish.
  EXPECT_NEAR(sum.estimate, 1900.0, 150.0);
  EXPECT_GT(sum.ci.Width(), 0.0);
}

TEST(PrivateTableTest, PredicateOnNumericAttributeFails) {
  PrivateTable pt = MakePrivate();
  Predicate pred = Predicate::Equals("score", Value(4.0));
  auto r = pt.Count(pred);
  EXPECT_FALSE(r.ok());
}

TEST(PrivateTableTest, PredicateOnMissingAttributeFails) {
  PrivateTable pt = MakePrivate();
  EXPECT_FALSE(pt.Count(Predicate::Equals("nope", "x")).ok());
}

TEST(PrivateTableTest, ExecuteRejectsExtendedAggregates) {
  PrivateTable pt = MakePrivate();
  AggregateQuery q{AggregateType::kMedian, "score", std::nullopt, 50.0};
  EXPECT_FALSE(pt.Execute(q).ok());
}

TEST(PrivateTableTest, ExtendedAggregates) {
  PrivateTable pt = MakePrivate(0.1, 2.0, 13);
  AggregateQuery median{AggregateType::kMedian, "score", std::nullopt, 50.0};
  double med = *pt.ExtendedAggregate(median);
  EXPECT_NEAR(med, 3.5, 1.5);  // True median 3.5, noised.
  AggregateQuery var{AggregateType::kVar, "score", std::nullopt, 50.0};
  double corrected_var = *pt.ExtendedAggregate(var);
  // True variance ~1.27; nominal private var inflated by 2b^2 = 8, the
  // correction subtracts it back.
  EXPECT_NEAR(corrected_var, 1.27, 1.0);
  AggregateQuery bad{AggregateType::kSum, "score", std::nullopt, 50.0};
  EXPECT_FALSE(pt.ExtendedAggregate(bad).ok());
}

TEST(PrivateTableTest, CreateWithTuningProducesTargetBound) {
  Rng rng(21);
  PrivateTable pt = *PrivateTable::CreateWithTuning(TestTable(), 0.08,
                                                    0.95, rng);
  double p = pt.metadata().discrete.at("major").p;
  EXPECT_GT(p, 0.0);
  EXPECT_LT(p, 1.0);
  EXPECT_NEAR(*CountErrorBound(p, 600), 0.08, 1e-9);
}

TEST(PrivateTableTest, CleanPipeline) {
  PrivateTable pt = MakePrivate(0.2, 0.5, 22);
  CleaningPipeline pipeline;
  pipeline.Emplace<FindReplace>(FindReplace::Single(
      "major", Value("Mechanical Engineering"), Value("Mech. Eng.")));
  pipeline.Emplace<FindReplace>(FindReplace::Single(
      "major", Value("Physics"), Value("Science")));
  ASSERT_TRUE(pt.Clean(pipeline).ok());
  Domain d = *Domain::FromColumn(pt.relation(), "major");
  EXPECT_EQ(d.size(), 5u);
}

TEST(PrivateTableTest, GraphCacheInvalidatedByCleaning) {
  // Query before cleaning (populates the graph cache), clean, query
  // again: the cached graph must be refreshed, not reused.
  PrivateTable pt = MakePrivate(0.2, 0.5, 31);
  Predicate pred = Predicate::Equals("major", "Mech. Eng.");
  QueryResult before = *pt.Count(pred);
  EXPECT_DOUBLE_EQ(before.l, 1.0);
  ASSERT_TRUE(pt.Clean(FindReplace::Single(
                   "major", Value("Mechanical Engineering"),
                   Value("Mech. Eng.")))
                  .ok());
  QueryResult after = *pt.Count(pred);
  EXPECT_DOUBLE_EQ(after.l, 2.0);  // Stale cache would still say 1.
  // Repeated queries (cache hits) agree with the first post-clean one.
  EXPECT_DOUBLE_EQ(pt.Count(pred)->estimate, after.estimate);
}

TEST(PrivateTableTest, ProvenanceForExposesGraph) {
  PrivateTable pt = MakePrivate(0.2, 0.5, 23);
  ProvenanceGraph g = *pt.ProvenanceFor("major");
  EXPECT_EQ(g.num_dirty_values(), 6u);
  EXPECT_TRUE(g.is_fork_free());
  EXPECT_FALSE(pt.ProvenanceFor("score").ok());
}

}  // namespace
}  // namespace privateclean
