#include "cleaning/constraints.h"

#include <gtest/gtest.h>

#include "table/table_builder.h"

namespace privateclean {
namespace {

Schema AddressSchema() {
  return *Schema::Make({Field::Discrete("city"), Field::Discrete("county"),
                        Field::Discrete("state")});
}

TEST(FdViolationTest, CleanTableHasNone) {
  TableBuilder b(AddressSchema());
  b.Row({Value("Springfield"), Value("Clark"), Value("Ohio")})
      .Row({Value("Springfield"), Value("Clark"), Value("Ohio")})
      .Row({Value("Salem"), Value("Essex"), Value("Massachusetts")});
  Table t = *b.Finish();
  FunctionalDependency fd{{"city", "county"}, "state"};
  EXPECT_TRUE(*SatisfiesFd(t, fd));
  EXPECT_TRUE(FindFdViolations(t, fd)->empty());
}

TEST(FdViolationTest, DetectsViolatingGroup) {
  TableBuilder b(AddressSchema());
  b.Row({Value("Springfield"), Value("Clark"), Value("Ohio")})
      .Row({Value("Springfield"), Value("Clark"), Value("Texas")})
      .Row({Value("Springfield"), Value("Clark"), Value("Ohio")})
      .Row({Value("Salem"), Value("Essex"), Value("Massachusetts")});
  Table t = *b.Finish();
  FunctionalDependency fd{{"city", "county"}, "state"};
  EXPECT_FALSE(*SatisfiesFd(t, fd));
  auto violations = *FindFdViolations(t, fd);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].lhs_tuple,
            (std::vector<Value>{Value("Springfield"), Value("Clark")}));
  ASSERT_EQ(violations[0].rhs_values.size(), 2u);
}

TEST(FdViolationTest, SameCityDifferentCountyIsNotAViolation) {
  TableBuilder b(AddressSchema());
  b.Row({Value("Springfield"), Value("Clark"), Value("Ohio")})
      .Row({Value("Springfield"), Value("Greene"), Value("Missouri")});
  Table t = *b.Finish();
  FunctionalDependency fd{{"city", "county"}, "state"};
  EXPECT_TRUE(*SatisfiesFd(t, fd));
}

TEST(FdViolationTest, SingleAttributeLhs) {
  TableBuilder b(AddressSchema());
  b.Row({Value("A"), Value("x"), Value("S1")})
      .Row({Value("A"), Value("y"), Value("S2")});
  Table t = *b.Finish();
  FunctionalDependency fd{{"city"}, "state"};
  EXPECT_FALSE(*SatisfiesFd(t, fd));
}

TEST(FdViolationTest, NullsGroupTogether) {
  TableBuilder b(AddressSchema());
  b.Row({Value::Null(), Value("x"), Value("S1")})
      .Row({Value::Null(), Value("x"), Value("S2")});
  Table t = *b.Finish();
  FunctionalDependency fd{{"city", "county"}, "state"};
  auto violations = *FindFdViolations(t, fd);
  EXPECT_EQ(violations.size(), 1u);
}

TEST(FdViolationTest, RejectsBadFd) {
  TableBuilder b(AddressSchema());
  b.Row({Value("A"), Value("x"), Value("S1")});
  Table t = *b.Finish();
  EXPECT_FALSE(FindFdViolations(t, FunctionalDependency{{}, "state"}).ok());
  EXPECT_FALSE(
      FindFdViolations(t, FunctionalDependency{{"nope"}, "state"}).ok());
  EXPECT_FALSE(
      FindFdViolations(t, FunctionalDependency{{"city"}, "nope"}).ok());
}

TEST(FdTest, ToStringRendering) {
  FunctionalDependency fd{{"a", "b"}, "c"};
  EXPECT_EQ(fd.ToString(), "[a, b] -> [c]");
}

Schema CountrySchema() {
  return *Schema::Make({Field::Discrete("country")});
}

TEST(MdClusterTest, ClustersNearbySpellings) {
  TableBuilder b(CountrySchema());
  for (int i = 0; i < 10; ++i) b.Row({Value("France")});
  b.Row({Value("Francex")}).Row({Value("Franc")});
  for (int i = 0; i < 5; ++i) b.Row({Value("Germany")});
  Table t = *b.Finish();
  MatchingDependency md{"country", 1};
  auto clusters = *FindMdClusters(t, md);
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0].canonical, Value("France"));
  EXPECT_EQ(clusters[0].members.size(), 2u);
}

TEST(MdClusterTest, CanonicalIsMostFrequent) {
  TableBuilder b(CountrySchema());
  for (int i = 0; i < 3; ++i) b.Row({Value("Spain")});
  for (int i = 0; i < 7; ++i) b.Row({Value("Spainx")});
  Table t = *b.Finish();
  auto clusters = *FindMdClusters(t, MatchingDependency{"country", 1});
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0].canonical, Value("Spainx"));
}

TEST(MdClusterTest, DistantValuesStaySeparate) {
  TableBuilder b(CountrySchema());
  b.Row({Value("France")}).Row({Value("Germany")}).Row({Value("Japan")});
  Table t = *b.Finish();
  auto clusters = *FindMdClusters(t, MatchingDependency{"country", 1});
  EXPECT_TRUE(clusters.empty());  // Only unary clusters.
}

TEST(MdClusterTest, ThresholdControlsMerging) {
  TableBuilder b(CountrySchema());
  for (int i = 0; i < 5; ++i) b.Row({Value("abcd")});
  b.Row({Value("abxy")});  // Distance 2 from abcd.
  Table t = *b.Finish();
  EXPECT_TRUE(FindMdClusters(t, MatchingDependency{"country", 1})->empty());
  auto clusters = *FindMdClusters(t, MatchingDependency{"country", 2});
  ASSERT_EQ(clusters.size(), 1u);
}

TEST(MdClusterTest, NullIgnored) {
  TableBuilder b(CountrySchema());
  b.Row({Value("France")}).Row({Value::Null()}).Row({Value("Francee")});
  Table t = *b.Finish();
  auto clusters = *FindMdClusters(t, MatchingDependency{"country", 1});
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0].members.size(), 1u);
}

TEST(MdClusterTest, RejectsNonStringAttribute) {
  Schema s = *Schema::Make(
      {Field{"code", ValueType::kInt64, AttributeKind::kDiscrete}});
  TableBuilder b(s);
  b.Row({Value(1)});
  Table t = *b.Finish();
  EXPECT_FALSE(FindMdClusters(t, MatchingDependency{"code", 1}).ok());
}

TEST(MdTest, ToStringRendering) {
  MatchingDependency md{"country", 2};
  EXPECT_NE(md.ToString().find("country"), std::string::npos);
  EXPECT_NE(md.ToString().find("2"), std::string::npos);
}

}  // namespace
}  // namespace privateclean
