#include "table/domain.h"

#include <gtest/gtest.h>

#include "table/table_builder.h"

namespace privateclean {
namespace {

Table MajorsTable() {
  Schema s = *Schema::Make({Field::Discrete("major")});
  TableBuilder b(s);
  b.Row({Value("EECS")})
      .Row({Value("Math")})
      .Row({Value("EECS")})
      .Row({Value::Null()})
      .Row({Value("Math")})
      .Row({Value("EECS")});
  return *b.Finish();
}

TEST(DomainTest, FromColumnWithNull) {
  Domain d = *Domain::FromColumn(MajorsTable(), "major");
  EXPECT_EQ(d.size(), 3u);  // EECS, Math, null.
  EXPECT_EQ(d.total_count(), 6u);
  EXPECT_TRUE(d.Contains(Value::Null()));
}

TEST(DomainTest, FromColumnWithoutNull) {
  Domain d = *Domain::FromColumn(MajorsTable(), "major",
                                 /*include_null=*/false);
  EXPECT_EQ(d.size(), 2u);
  EXPECT_EQ(d.total_count(), 5u);
  EXPECT_FALSE(d.Contains(Value::Null()));
}

TEST(DomainTest, FirstAppearanceOrder) {
  Domain d = *Domain::FromColumn(MajorsTable(), "major");
  EXPECT_EQ(d.value(0), Value("EECS"));
  EXPECT_EQ(d.value(1), Value("Math"));
  EXPECT_EQ(d.value(2), Value::Null());
}

TEST(DomainTest, Frequencies) {
  Domain d = *Domain::FromColumn(MajorsTable(), "major");
  EXPECT_EQ(d.frequency(*d.IndexOf(Value("EECS"))), 3u);
  EXPECT_EQ(d.frequency(*d.IndexOf(Value("Math"))), 2u);
  EXPECT_EQ(d.frequency(*d.IndexOf(Value::Null())), 1u);
}

TEST(DomainTest, IndexOfMissingValue) {
  Domain d = *Domain::FromColumn(MajorsTable(), "major");
  EXPECT_TRUE(d.IndexOf(Value("Physics")).status().IsNotFound());
}

TEST(DomainTest, MissingColumnErrors) {
  EXPECT_FALSE(Domain::FromColumn(MajorsTable(), "nope").ok());
}

TEST(DomainTest, FromValues) {
  Domain d = Domain::FromValues({Value(1), Value(2), Value(1), Value(3)});
  EXPECT_EQ(d.size(), 3u);
  EXPECT_EQ(d.total_count(), 4u);
  EXPECT_EQ(d.frequency(*d.IndexOf(Value(1))), 2u);
}

TEST(DomainTest, EmptyDomain) {
  Domain d = Domain::FromValues({});
  EXPECT_TRUE(d.empty());
  EXPECT_EQ(d.size(), 0u);
  EXPECT_EQ(d.total_count(), 0u);
}

TEST(DomainTest, NumericColumnDomain) {
  Schema s = *Schema::Make(
      {Field{"section", ValueType::kInt64, AttributeKind::kDiscrete}});
  TableBuilder b(s);
  b.Row({Value(1)}).Row({Value(2)}).Row({Value(1)});
  Table t = *b.Finish();
  Domain d = *Domain::FromColumn(t, "section");
  EXPECT_EQ(d.size(), 2u);
  EXPECT_TRUE(d.Contains(Value(1)));
  EXPECT_TRUE(d.Contains(Value(2)));
}

}  // namespace
}  // namespace privateclean
