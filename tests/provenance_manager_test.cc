#include "provenance/provenance_manager.h"

#include <gtest/gtest.h>

#include "cleaning/extract.h"
#include "cleaning/merge.h"
#include "table/table_builder.h"

namespace privateclean {
namespace {

Schema TestSchema() {
  return *Schema::Make({Field::Discrete("major"),
                        Field::Numerical("score", ValueType::kDouble)});
}

Table TestTable() {
  TableBuilder b(TestSchema());
  b.Row({Value("Mech. Eng."), Value(4.0)})
      .Row({Value("Mechanical Engineering"), Value(3.0)})
      .Row({Value("Math"), Value(5.0)})
      .Row({Value("Mech. Eng."), Value(2.0)});
  return *b.Finish();
}

TEST(ProvenanceManagerTest, SnapshotsDiscreteAttributes) {
  Table t = TestTable();
  ProvenanceManager m = *ProvenanceManager::Create(t);
  EXPECT_TRUE(m.Tracks("major"));
  EXPECT_FALSE(m.Tracks("score"));  // Numerical: no provenance.
  EXPECT_FALSE(m.Tracks("nope"));
  EXPECT_EQ((*m.DirtyDomain("major"))->size(), 3u);
}

TEST(ProvenanceManagerTest, IdentityGraphBeforeCleaning) {
  Table t = TestTable();
  ProvenanceManager m = *ProvenanceManager::Create(t);
  ProvenanceGraph g = *m.GraphFor(t, "major");
  EXPECT_TRUE(g.is_fork_free());
  EXPECT_EQ(g.num_dirty_values(), g.num_clean_values());
}

TEST(ProvenanceManagerTest, GraphReflectsCleaning) {
  Table t = TestTable();
  ProvenanceManager m = *ProvenanceManager::Create(t);
  FindReplace fix = FindReplace::Single(
      "major", Value("Mechanical Engineering"), Value("Mech. Eng."));
  ASSERT_TRUE(fix.Apply(&t).ok());
  ProvenanceGraph g = *m.GraphFor(t, "major");
  EXPECT_EQ(g.num_dirty_values(), 3u);
  EXPECT_EQ(g.num_clean_values(), 2u);
  EXPECT_DOUBLE_EQ(g.WeightedSelectivity({Value("Mech. Eng.")}), 2.0);
}

TEST(ProvenanceManagerTest, ComposedCleanersCompose) {
  // a -> b then b -> c: the graph must map dirty a directly to clean c.
  Schema s = *Schema::Make({Field::Discrete("d")});
  TableBuilder b(s);
  b.Row({Value("a")}).Row({Value("b")}).Row({Value("z")});
  Table t = *b.Finish();
  ProvenanceManager m = *ProvenanceManager::Create(t);
  ASSERT_TRUE(
      FindReplace::Single("d", Value("a"), Value("b")).Apply(&t).ok());
  ASSERT_TRUE(
      FindReplace::Single("d", Value("b"), Value("c")).Apply(&t).ok());
  ProvenanceGraph g = *m.GraphFor(t, "d");
  EXPECT_DOUBLE_EQ(g.EdgeWeight(Value("a"), Value("c")), 1.0);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(Value("b"), Value("c")), 1.0);
  EXPECT_DOUBLE_EQ(g.WeightedSelectivity({Value("c")}), 2.0);
}

TEST(ProvenanceManagerTest, ExplicitDomainsOverrideSnapshots) {
  Table t = TestTable();
  // Pretend the randomization-time domain had an extra value.
  Domain domain = Domain::FromValues(
      {Value("Mech. Eng."), Value("Mechanical Engineering"), Value("Math"),
       Value("Ghost")});
  std::unordered_map<std::string, Domain> domains{{"major", domain}};
  ProvenanceManager m = *ProvenanceManager::Create(t, domains);
  ProvenanceGraph g = *m.GraphFor(t, "major");
  EXPECT_EQ(g.num_dirty_values(), 4u);
}

TEST(ProvenanceManagerTest, DerivedAttributeAnchorsToSource) {
  Table t = TestTable();
  ProvenanceManager m = *ProvenanceManager::Create(t);
  ExtractAttribute extract(
      "is_engineering", {"major"},
      [](const std::vector<Value>& tuple) {
        const Value& v = tuple[0];
        bool eng = !v.is_null() &&
                   v.AsString().find("Eng") != std::string::npos;
        return Value(eng ? "yes" : "no");
      });
  ASSERT_TRUE(extract.Apply(&t).ok());
  ASSERT_TRUE(m.RegisterDerivedAttribute("is_engineering", "major").ok());
  EXPECT_TRUE(m.Tracks("is_engineering"));
  EXPECT_EQ(*m.AnchorOf("is_engineering"), "major");
  ProvenanceGraph g = *m.GraphFor(t, "is_engineering");
  EXPECT_EQ(g.num_dirty_values(), 3u);  // Dirty side = major's domain.
  EXPECT_EQ(g.num_clean_values(), 2u);  // yes / no.
  EXPECT_DOUBLE_EQ(g.WeightedSelectivity({Value("yes")}), 2.0);
}

TEST(ProvenanceManagerTest, DerivedChainPathCompresses) {
  Table t = TestTable();
  ProvenanceManager m = *ProvenanceManager::Create(t);
  ASSERT_TRUE(m.RegisterDerivedAttribute("d1", "major").ok());
  ASSERT_TRUE(m.RegisterDerivedAttribute("d2", "d1").ok());
  EXPECT_EQ(*m.AnchorOf("d2"), "major");
}

TEST(ProvenanceManagerTest, RegisterDuplicateFails) {
  Table t = TestTable();
  ProvenanceManager m = *ProvenanceManager::Create(t);
  EXPECT_TRUE(m.RegisterDerivedAttribute("major", "major")
                  .IsAlreadyExists());
  ASSERT_TRUE(m.RegisterDerivedAttribute("x", "major").ok());
  EXPECT_TRUE(m.RegisterDerivedAttribute("x", "major").IsAlreadyExists());
}

TEST(ProvenanceManagerTest, RegisterUnknownSourceFails) {
  Table t = TestTable();
  ProvenanceManager m = *ProvenanceManager::Create(t);
  EXPECT_TRUE(m.RegisterDerivedAttribute("x", "nope").IsNotFound());
}

TEST(ProvenanceManagerTest, GraphForUntrackedAttributeFails) {
  Table t = TestTable();
  ProvenanceManager m = *ProvenanceManager::Create(t);
  EXPECT_FALSE(m.GraphFor(t, "score").ok());
  EXPECT_FALSE(m.GraphFor(t, "nope").ok());
}

TEST(ProvenanceManagerTest, AnchorOfOriginalIsItself) {
  Table t = TestTable();
  ProvenanceManager m = *ProvenanceManager::Create(t);
  EXPECT_EQ(*m.AnchorOf("major"), "major");
  EXPECT_TRUE(m.AnchorOf("nope").status().IsNotFound());
}

}  // namespace
}  // namespace privateclean
