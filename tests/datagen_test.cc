#include <gtest/gtest.h>

#include "cleaning/constraints.h"
#include "cleaning/merge.h"
#include "datagen/error_injection.h"
#include "datagen/intel_wireless.h"
#include "datagen/mcafe.h"
#include "datagen/names.h"
#include "datagen/synthetic.h"
#include "datagen/tpcds.h"
#include "query/predicate.h"
#include "table/domain.h"

namespace privateclean {
namespace {

// --- Synthetic ----------------------------------------------------------

TEST(SyntheticTest, DefaultsMatchPaperTable1) {
  SyntheticOptions options;
  EXPECT_EQ(options.num_rows, 1000u);
  EXPECT_EQ(options.num_distinct, 50u);
  EXPECT_DOUBLE_EQ(options.zipf_skew, 2.0);
}

TEST(SyntheticTest, SchemaAndRanges) {
  Rng rng(1);
  Table t = *GenerateSynthetic(SyntheticOptions{}, rng);
  EXPECT_EQ(t.num_rows(), 1000u);
  EXPECT_EQ(t.schema().field(0).name, "category");
  EXPECT_EQ(t.schema().field(0).kind, AttributeKind::kDiscrete);
  EXPECT_EQ(t.schema().field(1).name, "value");
  EXPECT_EQ(t.schema().field(1).kind, AttributeKind::kNumerical);
  const Column& values = t.column(1);
  for (size_t r = 0; r < t.num_rows(); ++r) {
    EXPECT_GE(values.DoubleAt(r), 0.0);
    EXPECT_LE(values.DoubleAt(r), 100.0);
  }
}

TEST(SyntheticTest, CategoriesFollowZipf) {
  SyntheticOptions options;
  options.num_rows = 20000;
  options.num_distinct = 10;
  options.zipf_skew = 1.0;
  Rng rng(2);
  Table t = *GenerateSynthetic(options, rng);
  Domain d = *Domain::FromColumn(t, "category");
  size_t c0 = d.frequency(*d.IndexOf(SyntheticCategory(0)));
  size_t c1 = d.frequency(*d.IndexOf(SyntheticCategory(1)));
  size_t c9 = d.frequency(*d.IndexOf(SyntheticCategory(9)));
  // Zipf(1): rank0/rank1 ~ 2, rank0/rank9 ~ 10.
  EXPECT_NEAR(static_cast<double>(c0) / c1, 2.0, 0.5);
  EXPECT_NEAR(static_cast<double>(c0) / c9, 10.0, 4.0);
}

TEST(SyntheticTest, UniformWhenSkewZero) {
  SyntheticOptions options;
  options.num_rows = 20000;
  options.num_distinct = 5;
  options.zipf_skew = 0.0;
  Rng rng(3);
  Table t = *GenerateSynthetic(options, rng);
  Domain d = *Domain::FromColumn(t, "category");
  for (size_t k = 0; k < 5; ++k) {
    EXPECT_NEAR(static_cast<double>(d.frequency(k)) / 20000.0, 0.2, 0.02);
  }
}

TEST(SyntheticTest, CorrelatedMode) {
  SyntheticOptions options;
  options.num_rows = 5000;
  options.num_distinct = 10;
  options.correlated = true;
  Rng rng(4);
  Table t = *GenerateSynthetic(options, rng);
  // Mean numeric for rank 0 (head) should be well above rank 9's.
  double sum0 = 0.0, sum9 = 0.0;
  size_t n0 = 0, n9 = 0;
  for (size_t r = 0; r < t.num_rows(); ++r) {
    const Value cat = t.column(0).ValueAt(r);
    if (cat == SyntheticCategory(0)) {
      sum0 += t.column(1).DoubleAt(r);
      ++n0;
    } else if (cat == SyntheticCategory(9)) {
      sum9 += t.column(1).DoubleAt(r);
      ++n9;
    }
  }
  ASSERT_GT(n0, 10u);
  ASSERT_GT(n9, 0u);
  EXPECT_GT(sum0 / n0, sum9 / n9);
}

TEST(SyntheticTest, RejectsBadOptions) {
  Rng rng(5);
  SyntheticOptions bad;
  bad.num_rows = 0;
  EXPECT_FALSE(GenerateSynthetic(bad, rng).ok());
  bad = SyntheticOptions{};
  bad.num_distinct = 0;
  EXPECT_FALSE(GenerateSynthetic(bad, rng).ok());
  bad = SyntheticOptions{};
  bad.zipf_skew = -1.0;
  EXPECT_FALSE(GenerateSynthetic(bad, rng).ok());
  bad = SyntheticOptions{};
  bad.numeric_hi = bad.numeric_lo;
  EXPECT_FALSE(GenerateSynthetic(bad, rng).ok());
}

TEST(SyntheticTest, PredicatePickerModes) {
  Rng rng(6);
  auto head = PickPredicateCategories(50, 5, 0, rng);
  EXPECT_EQ(head[0], SyntheticCategory(0));
  EXPECT_EQ(head[4], SyntheticCategory(4));
  auto tail = PickPredicateCategories(50, 5, 1, rng);
  EXPECT_EQ(tail[0], SyntheticCategory(49));
  auto random = PickPredicateCategories(50, 5, 2, rng);
  EXPECT_EQ(random.size(), 5u);
  auto capped = PickPredicateCategories(3, 10, 0, rng);
  EXPECT_EQ(capped.size(), 3u);
}

// --- Error injection -----------------------------------------------------

TEST(ErrorInjectionTest, SpellingErrorsGrowDomain) {
  SyntheticOptions options;
  options.num_distinct = 20;
  Rng rng(7);
  Table t = *GenerateSynthetic(options, rng);
  InjectionResult result =
      *InjectSpellingErrors(t, "category", 0.5, 0.5, rng);
  Domain dirty_domain = *Domain::FromColumn(result.dirty, "category");
  Domain clean_domain = *Domain::FromColumn(result.clean, "category");
  EXPECT_GT(dirty_domain.size(), clean_domain.size());
  EXPECT_EQ(result.repair_map.size(), 10u);  // 50% of 20 values.
  // Clean table is the original.
  EXPECT_EQ(clean_domain.size(), 20u);
}

TEST(ErrorInjectionTest, SpellingRepairMapRestoresCleanTable) {
  SyntheticOptions options;
  options.num_distinct = 20;
  Rng rng(8);
  Table t = *GenerateSynthetic(options, rng);
  InjectionResult result =
      *InjectSpellingErrors(t, "category", 0.4, 0.6, rng);
  Table repaired = result.dirty.Clone();
  ASSERT_TRUE(
      FindReplace("category", result.repair_map).Apply(&repaired).ok());
  for (size_t r = 0; r < repaired.num_rows(); ++r) {
    EXPECT_EQ(repaired.column(0).ValueAt(r),
              result.clean.column(0).ValueAt(r));
  }
}

TEST(ErrorInjectionTest, ZeroErrorRateIsIdentity) {
  Rng rng(9);
  Table t = *GenerateSynthetic(SyntheticOptions{}, rng);
  InjectionResult result =
      *InjectSpellingErrors(t, "category", 0.0, 0.5, rng);
  EXPECT_TRUE(result.repair_map.empty());
  for (size_t r = 0; r < t.num_rows(); ++r) {
    EXPECT_EQ(result.dirty.column(0).ValueAt(r),
              t.column(0).ValueAt(r));
  }
}

TEST(ErrorInjectionTest, MergeErrorsShrinkCleanDomain) {
  SyntheticOptions options;
  options.num_distinct = 20;
  Rng rng(10);
  Table t = *GenerateSynthetic(options, rng);
  InjectionResult result = *InjectMergeErrors(t, "category", 0.3, rng);
  Domain dirty_domain = *Domain::FromColumn(result.dirty, "category");
  Domain clean_domain = *Domain::FromColumn(result.clean, "category");
  EXPECT_EQ(dirty_domain.size(), 20u);  // Input is the dirty table.
  EXPECT_EQ(clean_domain.size(), 20u - result.repair_map.size());
  EXPECT_EQ(result.repair_map.size(), 6u);  // 30% of 20.
}

TEST(ErrorInjectionTest, MergeAliasesPointAtCanonicals) {
  SyntheticOptions options;
  options.num_distinct = 10;
  Rng rng(11);
  Table t = *GenerateSynthetic(options, rng);
  InjectionResult result = *InjectMergeErrors(t, "category", 0.5, rng);
  for (const auto& [alias, canonical] : result.repair_map) {
    // No chains: canonicals are never aliases themselves.
    EXPECT_EQ(result.repair_map.count(canonical), 0u) << alias.ToString();
  }
}

TEST(ErrorInjectionTest, MixedErrorsSplitByMergeFraction) {
  SyntheticOptions options;
  options.num_distinct = 20;
  Rng rng(13);
  Table t = *GenerateSynthetic(options, rng);
  InjectionResult result =
      *InjectMixedErrors(t, "category", 0.5, 0.4, rng);
  // 10 errors total: 4 merges (no dirty rewrite) + 6 renames ("~r").
  EXPECT_EQ(result.repair_map.size(), 10u);
  size_t renames = 0;
  for (const auto& [dirty, clean] : result.repair_map) {
    if (dirty.ToString().find("~r") != std::string::npos) ++renames;
    // No chains: repair targets are never themselves dirty keys.
    EXPECT_EQ(result.repair_map.count(clean), 0u);
  }
  EXPECT_EQ(renames, 6u);
}

TEST(ErrorInjectionTest, MixedRepairReachesCleanTable) {
  SyntheticOptions options;
  options.num_distinct = 25;
  Rng rng(14);
  Table t = *GenerateSynthetic(options, rng);
  InjectionResult result =
      *InjectMixedErrors(t, "category", 0.4, 0.5, rng);
  Table repaired = result.dirty.Clone();
  ASSERT_TRUE(
      FindReplace("category", result.repair_map).Apply(&repaired).ok());
  for (size_t r = 0; r < repaired.num_rows(); ++r) {
    EXPECT_EQ(repaired.column(0).ValueAt(r),
              result.clean.column(0).ValueAt(r));
  }
}

TEST(ErrorInjectionTest, MixedPureRenamesPreserveDomainSize) {
  SyntheticOptions options;
  options.num_distinct = 20;
  Rng rng(15);
  Table t = *GenerateSynthetic(options, rng);
  InjectionResult result =
      *InjectMixedErrors(t, "category", 0.5, 0.0, rng);
  // Renames replace spellings 1:1: dirty and clean domains are equal
  // sized.
  EXPECT_EQ(Domain::FromColumn(result.dirty, "category")->size(),
            Domain::FromColumn(result.clean, "category")->size());
}

TEST(ErrorInjectionTest, MixedPureMergesShrinkCleanDomain) {
  SyntheticOptions options;
  options.num_distinct = 20;
  Rng rng(16);
  Table t = *GenerateSynthetic(options, rng);
  InjectionResult result =
      *InjectMixedErrors(t, "category", 0.5, 1.0, rng);
  EXPECT_EQ(Domain::FromColumn(result.dirty, "category")->size(), 20u);
  EXPECT_EQ(Domain::FromColumn(result.clean, "category")->size(), 10u);
}

TEST(ErrorInjectionTest, RejectsBadRates) {
  Rng rng(12);
  Table t = *GenerateSynthetic(SyntheticOptions{}, rng);
  EXPECT_FALSE(InjectSpellingErrors(t, "category", -0.1, 0.5, rng).ok());
  EXPECT_FALSE(InjectSpellingErrors(t, "category", 0.1, 1.5, rng).ok());
  EXPECT_FALSE(InjectMergeErrors(t, "category", 1.0001, rng).ok());
}

// --- TPC-DS --------------------------------------------------------------

TEST(TpcdsTest, GeneratedTableSatisfiesConstraints) {
  Rng rng(13);
  Table t = *GenerateCustomerAddress(TpcdsOptions{}, rng);
  EXPECT_EQ(t.num_rows(), 2000u);
  EXPECT_TRUE(*SatisfiesFd(t, CustomerAddressFd()));
  // No near-duplicate countries in the clean data.
  auto clusters = *FindMdClusters(t, CustomerAddressMd());
  EXPECT_TRUE(clusters.empty());
}

TEST(TpcdsTest, CorruptStatesBreaksFd) {
  Rng rng(14);
  Table t = *GenerateCustomerAddress(TpcdsOptions{}, rng);
  ASSERT_TRUE(CorruptStates(&t, 50, rng).ok());
  EXPECT_FALSE(*SatisfiesFd(t, CustomerAddressFd()));
}

TEST(TpcdsTest, CorruptCountriesCreatesNearDuplicates) {
  Rng rng(15);
  Table t = *GenerateCustomerAddress(TpcdsOptions{}, rng);
  size_t before = Domain::FromColumn(t, "ca_country")->size();
  ASSERT_TRUE(CorruptCountries(&t, 50, rng).ok());
  size_t after = Domain::FromColumn(t, "ca_country")->size();
  EXPECT_GT(after, before);
  EXPECT_FALSE(FindMdClusters(t, CustomerAddressMd())->empty());
}

TEST(TpcdsTest, AllAttributesDiscrete) {
  Rng rng(16);
  Table t = *GenerateCustomerAddress(TpcdsOptions{}, rng);
  for (size_t i = 0; i < t.schema().num_fields(); ++i) {
    EXPECT_EQ(t.schema().field(i).kind, AttributeKind::kDiscrete);
  }
}

// --- IntelWireless --------------------------------------------------------

TEST(IntelWirelessTest, StructureMatchesPaper) {
  Rng rng(17);
  IntelWirelessOptions options;
  options.num_rows = 5000;
  IntelWirelessData data = *GenerateIntelWireless(options, rng);
  EXPECT_EQ(data.dirty.num_rows(), 5000u);
  EXPECT_TRUE(data.dirty.schema().HasField("sensor_id"));
  EXPECT_TRUE(data.dirty.schema().HasField("temp"));
  // Small N/S: at most 68 real ids + spurious tokens + null.
  Domain d = *Domain::FromColumn(data.dirty, "sensor_id");
  EXPECT_LE(d.size(), 68u + options.num_spurious_tokens + 1);
  EXPECT_GT(d.size(), 30u);
}

TEST(IntelWirelessTest, SpuriousRecognizerMatchesOnlyGarbage) {
  Rng rng(18);
  IntelWirelessOptions options;
  options.num_rows = 3000;
  IntelWirelessData data = *GenerateIntelWireless(options, rng);
  EXPECT_FALSE(data.is_spurious(Value("s1")));
  EXPECT_FALSE(data.is_spurious(Value::Null()));
  Domain d = *Domain::FromColumn(data.dirty, "sensor_id");
  size_t spurious_count = 0;
  for (size_t i = 0; i < d.size(); ++i) {
    if (data.is_spurious(d.value(i))) ++spurious_count;
  }
  EXPECT_GT(spurious_count, 0u);
  EXPECT_LE(spurious_count, options.num_spurious_tokens);
}

TEST(IntelWirelessTest, CleanTableHasNoSpuriousIds) {
  Rng rng(19);
  IntelWirelessOptions options;
  options.num_rows = 3000;
  IntelWirelessData data = *GenerateIntelWireless(options, rng);
  Domain d = *Domain::FromColumn(data.clean, "sensor_id");
  for (size_t i = 0; i < d.size(); ++i) {
    EXPECT_FALSE(data.is_spurious(d.value(i)));
  }
  // Nulls grew: spurious merged into null.
  EXPECT_GE((*data.clean.ColumnByName("sensor_id"))->null_count(),
            (*data.dirty.ColumnByName("sensor_id"))->null_count());
}

TEST(IntelWirelessTest, ZeroFailureRateIsAllClean) {
  Rng rng(20);
  IntelWirelessOptions options;
  options.num_rows = 1000;
  options.failure_rate = 0.0;
  IntelWirelessData data = *GenerateIntelWireless(options, rng);
  EXPECT_EQ((*data.dirty.ColumnByName("sensor_id"))->null_count(), 0u);
  Domain d = *Domain::FromColumn(data.dirty, "sensor_id");
  for (size_t i = 0; i < d.size(); ++i) {
    EXPECT_FALSE(data.is_spurious(d.value(i)));
  }
}

// --- MCAFE ----------------------------------------------------------------

TEST(McafeTest, StructureMatchesPaper) {
  Rng rng(21);
  Table t = *GenerateMcafe(McafeOptions{}, rng);
  EXPECT_EQ(t.num_rows(), 406u);
  // Distinct fraction around the paper's 21% (high-N/S regime). The Zipf
  // tail may not realize every code; just require it to be "hard".
  Domain d = *Domain::FromColumn(t, "country");
  double fraction = static_cast<double>(d.size()) / 406.0;
  EXPECT_GT(fraction, 0.10);
  EXPECT_LT(fraction, 0.30);
}

TEST(McafeTest, UsDominates) {
  Rng rng(22);
  Table t = *GenerateMcafe(McafeOptions{}, rng);
  Domain d = *Domain::FromColumn(t, "country");
  size_t us = d.frequency(*d.IndexOf(Value("US")));
  EXPECT_GT(us, 406u / 4);  // The head of the Zipf.
}

TEST(McafeTest, EnthusiasmInRange) {
  Rng rng(23);
  Table t = *GenerateMcafe(McafeOptions{}, rng);
  const Column& e = *t.ColumnByName("enthusiasm").ValueOrDie();
  for (size_t r = 0; r < t.num_rows(); ++r) {
    EXPECT_GE(e.DoubleAt(r), 1.0);
    EXPECT_LE(e.DoubleAt(r), 10.0);
  }
}

TEST(McafeTest, EuropeanCountriesPresent) {
  Rng rng(24);
  Table t = *GenerateMcafe(McafeOptions{}, rng);
  Predicate europe = Predicate::Udf("country", McafeIsEurope);
  EXPECT_GT(*europe.CountMatches(t), 5u);
}

TEST(McafeTest, IsEuropeUdf) {
  EXPECT_TRUE(McafeIsEurope(Value("FR")));
  EXPECT_TRUE(McafeIsEurope(Value("DE")));
  EXPECT_FALSE(McafeIsEurope(Value("US")));
  EXPECT_FALSE(McafeIsEurope(Value("JP")));
  EXPECT_FALSE(McafeIsEurope(Value::Null()));
  EXPECT_FALSE(McafeIsEurope(Value(42)));
}

// --- Names ----------------------------------------------------------------

TEST(NamesTest, ListsAreStableAndSized) {
  EXPECT_EQ(CityNames().size(), 100u);
  EXPECT_EQ(CountyNames().size(), 30u);
  EXPECT_EQ(StateNames().size(), 50u);
  EXPECT_EQ(CountryNames().size(), 24u);
  EXPECT_EQ(CountryCodes().size(), 40u);
  EXPECT_EQ(CountryCodes()[0], "US");
  EXPECT_EQ(CountryNames()[0], "United States");
}

TEST(NamesTest, EuropeanCodeSet) {
  EXPECT_TRUE(IsEuropeanCountryCode("FR"));
  EXPECT_TRUE(IsEuropeanCountryCode("FI"));
  EXPECT_FALSE(IsEuropeanCountryCode("US"));
  EXPECT_FALSE(IsEuropeanCountryCode("JP"));
  EXPECT_FALSE(IsEuropeanCountryCode(""));
}

}  // namespace
}  // namespace privateclean
