#include "table/column.h"

#include <gtest/gtest.h>

namespace privateclean {
namespace {

TEST(ColumnTest, MakeRejectsNullType) {
  EXPECT_FALSE(Column::Make(ValueType::kNull).ok());
}

TEST(ColumnTest, TypedAppendsAndGetters) {
  Column c = *Column::Make(ValueType::kInt64);
  c.AppendInt64(1);
  c.AppendInt64(-5);
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c.Int64At(0), 1);
  EXPECT_EQ(c.Int64At(1), -5);
  EXPECT_EQ(c.null_count(), 0u);
}

TEST(ColumnTest, NullHandling) {
  Column c = *Column::Make(ValueType::kDouble);
  c.AppendDouble(1.5);
  c.AppendNull();
  c.AppendDouble(2.5);
  EXPECT_EQ(c.size(), 3u);
  EXPECT_EQ(c.null_count(), 1u);
  EXPECT_FALSE(c.IsNull(0));
  EXPECT_TRUE(c.IsNull(1));
  EXPECT_EQ(c.ValueAt(1), Value::Null());
  EXPECT_EQ(c.ValueAt(2), Value(2.5));
}

TEST(ColumnTest, AppendValueTypeChecked) {
  Column c = *Column::Make(ValueType::kString);
  EXPECT_TRUE(c.AppendValue(Value("ok")).ok());
  EXPECT_TRUE(c.AppendValue(Value::Null()).ok());
  Status st = c.AppendValue(Value(1));
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_EQ(c.size(), 2u);  // Failed append added nothing.
}

TEST(ColumnTest, SetValueOverwrites) {
  Column c = *Column::Make(ValueType::kString);
  c.AppendString("a");
  c.AppendString("b");
  EXPECT_TRUE(c.SetValue(0, Value("z")).ok());
  EXPECT_EQ(c.StringAt(0), "z");
}

TEST(ColumnTest, SetValueNullTransitionsTrackNullCount) {
  Column c = *Column::Make(ValueType::kInt64);
  c.AppendInt64(1);
  c.AppendNull();
  EXPECT_EQ(c.null_count(), 1u);
  EXPECT_TRUE(c.SetValue(0, Value::Null()).ok());
  EXPECT_EQ(c.null_count(), 2u);
  EXPECT_TRUE(c.SetValue(1, Value(9)).ok());
  EXPECT_EQ(c.null_count(), 1u);
  EXPECT_TRUE(c.SetValue(1, Value(10)).ok());  // Non-null -> non-null.
  EXPECT_EQ(c.null_count(), 1u);
}

TEST(ColumnTest, SetValueRejectsWrongTypeAndRange) {
  Column c = *Column::Make(ValueType::kInt64);
  c.AppendInt64(1);
  EXPECT_TRUE(c.SetValue(0, Value("x")).IsInvalidArgument());
  EXPECT_TRUE(c.SetValue(5, Value(1)).IsOutOfRange());
}

TEST(ColumnTest, NumericAt) {
  Column ci = *Column::Make(ValueType::kInt64);
  ci.AppendInt64(4);
  ci.AppendNull();
  EXPECT_DOUBLE_EQ(ci.NumericAt(0), 4.0);
  EXPECT_DOUBLE_EQ(ci.NumericAt(1), 0.0);
  Column cd = *Column::Make(ValueType::kDouble);
  cd.AppendDouble(2.5);
  EXPECT_DOUBLE_EQ(cd.NumericAt(0), 2.5);
}

TEST(ColumnTest, RawAccess) {
  Column c = *Column::Make(ValueType::kDouble);
  c.AppendDouble(1.0);
  c.AppendDouble(2.0);
  EXPECT_EQ(c.doubles().size(), 2u);
  (*c.mutable_doubles())[0] = 10.0;
  EXPECT_DOUBLE_EQ(c.DoubleAt(0), 10.0);
}

TEST(ColumnTest, ReserveDoesNotChangeSize) {
  Column c = *Column::Make(ValueType::kString);
  c.Reserve(100);
  EXPECT_EQ(c.size(), 0u);
  EXPECT_TRUE(c.empty());
}

TEST(ColumnTest, NullPlaceholderKeepsVectorsAligned) {
  Column c = *Column::Make(ValueType::kString);
  c.AppendNull();
  c.AppendString("x");
  EXPECT_EQ(c.codes().size(), 2u);
  EXPECT_EQ(c.CodeAt(0), kNullCode);
  EXPECT_EQ(c.StringAt(1), "x");
}

TEST(ColumnTest, StringStorageIsDictionaryEncoded) {
  Column c = *Column::Make(ValueType::kString);
  c.AppendString("red");
  c.AppendString("blue");
  c.AppendString("red");
  c.AppendString("red");
  // Two distinct strings, four dense codes, repeats share a code.
  EXPECT_EQ(c.dictionary().size(), 2u);
  EXPECT_EQ(c.codes().size(), 4u);
  EXPECT_EQ(c.CodeAt(0), c.CodeAt(2));
  EXPECT_EQ(c.CodeAt(0), c.CodeAt(3));
  EXPECT_NE(c.CodeAt(0), c.CodeAt(1));
  EXPECT_EQ(c.dictionary().At(c.CodeAt(1)), "blue");
}

TEST(ColumnTest, SetValueReusesAndExtendsDictionary) {
  Column c = *Column::Make(ValueType::kString);
  c.AppendString("a");
  c.AppendString("b");
  ASSERT_TRUE(c.SetValue(0, Value("b")).ok());
  EXPECT_EQ(c.CodeAt(0), c.CodeAt(1));
  EXPECT_EQ(c.dictionary().size(), 2u);  // "a" stays interned.
  ASSERT_TRUE(c.SetValue(0, Value("z")).ok());
  EXPECT_EQ(c.dictionary().size(), 3u);
  EXPECT_EQ(c.StringAt(0), "z");
}

TEST(ColumnTest, SelectRowsPreservesDictionaryAndNulls) {
  Column c = *Column::Make(ValueType::kString);
  c.AppendString("a");
  c.AppendNull();
  c.AppendString("b");
  Column taken = c.SelectRows({2, 1, 2});
  ASSERT_EQ(taken.size(), 3u);
  EXPECT_EQ(taken.StringAt(0), "b");
  EXPECT_TRUE(taken.IsNull(1));
  EXPECT_EQ(taken.StringAt(2), "b");
  EXPECT_EQ(taken.null_count(), 1u);
  // The dictionary is carried over wholesale: "a" is still interned.
  EXPECT_EQ(taken.dictionary().size(), c.dictionary().size());
}

TEST(ColumnTest, RebindDictionaryRemapsCodes) {
  Column c = *Column::Make(ValueType::kString);
  c.AppendString("x");
  c.AppendString("y");
  c.AppendNull();
  ASSERT_TRUE(c.RebindDictionary({"y", "x", "unused"}).ok());
  EXPECT_EQ(c.StringAt(0), "x");
  EXPECT_EQ(c.StringAt(1), "y");
  EXPECT_TRUE(c.IsNull(2));
  EXPECT_EQ(c.CodeAt(0), 1u);
  EXPECT_EQ(c.CodeAt(1), 0u);
  EXPECT_EQ(c.dictionary().size(), 3u);
}

TEST(ColumnTest, RebindDictionaryRejectsMissingAndDuplicate) {
  Column c = *Column::Make(ValueType::kString);
  c.AppendString("x");
  EXPECT_TRUE(c.RebindDictionary({"y"}).IsInvalidArgument());
  EXPECT_TRUE(c.RebindDictionary({"x", "x"}).IsInvalidArgument());
  Column n = *Column::Make(ValueType::kInt64);
  EXPECT_TRUE(n.RebindDictionary({}).IsInvalidArgument());
}

}  // namespace
}  // namespace privateclean
