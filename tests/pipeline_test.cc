#include "cleaning/pipeline.h"

#include <gtest/gtest.h>

#include "cleaning/merge.h"
#include "cleaning/transform.h"
#include "table/table_builder.h"

namespace privateclean {
namespace {

Schema TestSchema() {
  return *Schema::Make({Field::Discrete("d")});
}

Table TestTable() {
  TableBuilder b(TestSchema());
  b.Row({Value("a")}).Row({Value("b")}).Row({Value("c")});
  return *b.Finish();
}

TEST(PipelineTest, AppliesInOrder) {
  Table t = TestTable();
  CleaningPipeline pipeline;
  pipeline.Emplace<FindReplace>(
      FindReplace::Single("d", Value("a"), Value("b")));
  pipeline.Emplace<FindReplace>(
      FindReplace::Single("d", Value("b"), Value("c")));
  ASSERT_TRUE(pipeline.Apply(&t).ok());
  // a -> b (stage 1), then b -> c (stage 2): everything lands on c.
  for (size_t r = 0; r < 3; ++r) {
    EXPECT_EQ(*t.GetValue(r, "d"), Value("c"));
  }
}

TEST(PipelineTest, OrderMatters) {
  Table t = TestTable();
  CleaningPipeline pipeline;
  // Reverse order: b -> c first, then a -> b leaves "b" rows behind.
  pipeline.Emplace<FindReplace>(
      FindReplace::Single("d", Value("b"), Value("c")));
  pipeline.Emplace<FindReplace>(
      FindReplace::Single("d", Value("a"), Value("b")));
  ASSERT_TRUE(pipeline.Apply(&t).ok());
  EXPECT_EQ(*t.GetValue(0, "d"), Value("b"));
  EXPECT_EQ(*t.GetValue(1, "d"), Value("c"));
}

TEST(PipelineTest, EmptyPipelineIsNoop) {
  Table t = TestTable();
  CleaningPipeline pipeline;
  ASSERT_TRUE(pipeline.Apply(&t).ok());
  EXPECT_EQ(*t.GetValue(0, "d"), Value("a"));
}

TEST(PipelineTest, FailureIdentifiesStage) {
  Table t = TestTable();
  CleaningPipeline pipeline;
  pipeline.Emplace<FindReplace>(
      FindReplace::Single("d", Value("a"), Value("b")));
  pipeline.Emplace<ValueTransform>("missing_attr",
                                   [](const Value& v) { return v; });
  Status st = pipeline.Apply(&t);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("stage 1"), std::string::npos);
  EXPECT_NE(st.message().find("transform(missing_attr)"),
            std::string::npos);
}

TEST(PipelineTest, StopsAtFirstFailure) {
  Table t = TestTable();
  CleaningPipeline pipeline;
  pipeline.Emplace<ValueTransform>("missing_attr",
                                   [](const Value& v) { return v; });
  pipeline.Emplace<FindReplace>(
      FindReplace::Single("d", Value("a"), Value("never")));
  EXPECT_FALSE(pipeline.Apply(&t).ok());
  EXPECT_EQ(*t.GetValue(0, "d"), Value("a"));  // Stage 2 never ran.
}

TEST(PipelineTest, SizeAndStageNames) {
  CleaningPipeline pipeline;
  pipeline.Emplace<FindReplace>(
      FindReplace::Single("d", Value("a"), Value("b")));
  pipeline.Emplace<ValueTransform>("d", [](const Value& v) { return v; });
  EXPECT_EQ(pipeline.size(), 2u);
  auto names = pipeline.StageNames();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_NE(names[0].find("find_replace"), std::string::npos);
  EXPECT_EQ(names[1], "transform(d)");
}

}  // namespace
}  // namespace privateclean
