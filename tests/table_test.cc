#include "table/table.h"

#include <gtest/gtest.h>

#include "table/table_builder.h"

namespace privateclean {
namespace {

Schema TestSchema() {
  return *Schema::Make({Field::Discrete("major"),
                        Field::Numerical("score", ValueType::kDouble)});
}

Table TestTable() {
  TableBuilder b(TestSchema());
  b.Row({Value("EECS"), Value(4.0)})
      .Row({Value("Math"), Value(3.0)})
      .Row({Value("EECS"), Value(5.0)});
  return *b.Finish();
}

TEST(TableTest, MakeEmpty) {
  Table t = *Table::MakeEmpty(TestSchema());
  EXPECT_EQ(t.num_rows(), 0u);
  EXPECT_EQ(t.num_columns(), 2u);
}

TEST(TableTest, MakeValidatesColumnCount) {
  Column c = *Column::Make(ValueType::kString);
  auto r = Table::Make(TestSchema(), {std::move(c)});
  EXPECT_FALSE(r.ok());
}

TEST(TableTest, MakeValidatesColumnTypes) {
  Column a = *Column::Make(ValueType::kString);
  Column b = *Column::Make(ValueType::kInt64);  // Schema wants double.
  EXPECT_FALSE(Table::Make(TestSchema(), {std::move(a), std::move(b)}).ok());
}

TEST(TableTest, MakeValidatesEqualLengths) {
  Column a = *Column::Make(ValueType::kString);
  a.AppendString("x");
  Column b = *Column::Make(ValueType::kDouble);
  EXPECT_FALSE(Table::Make(TestSchema(), {std::move(a), std::move(b)}).ok());
}

TEST(TableTest, AppendRowAndAccess) {
  Table t = TestTable();
  EXPECT_EQ(t.num_rows(), 3u);
  EXPECT_EQ(*t.GetValue(0, "major"), Value("EECS"));
  EXPECT_EQ(*t.GetValue(1, "score"), Value(3.0));
}

TEST(TableTest, AppendRowRejectsWrongArity) {
  Table t = TestTable();
  EXPECT_FALSE(t.AppendRow({Value("x")}).ok());
  EXPECT_EQ(t.num_rows(), 3u);
}

TEST(TableTest, AppendRowAtomicOnTypeError) {
  Table t = TestTable();
  // Second cell has the wrong type; no column may be modified.
  EXPECT_FALSE(t.AppendRow({Value("x"), Value("not a number")}).ok());
  EXPECT_EQ(t.column(0).size(), 3u);
  EXPECT_EQ(t.column(1).size(), 3u);
}

TEST(TableTest, AppendRowAcceptsNulls) {
  Table t = TestTable();
  EXPECT_TRUE(t.AppendRow({Value::Null(), Value::Null()}).ok());
  EXPECT_TRUE(t.column(0).IsNull(3));
}

TEST(TableTest, SetValue) {
  Table t = TestTable();
  EXPECT_TRUE(t.SetValue(0, "major", Value("Physics")).ok());
  EXPECT_EQ(*t.GetValue(0, "major"), Value("Physics"));
  EXPECT_FALSE(t.SetValue(0, "nope", Value(1)).ok());
  EXPECT_FALSE(t.SetValue(99, "major", Value("x")).ok());
}

TEST(TableTest, ColumnByName) {
  Table t = TestTable();
  EXPECT_EQ((*t.ColumnByName("score"))->size(), 3u);
  EXPECT_TRUE(t.ColumnByName("nope").status().IsNotFound());
}

TEST(TableTest, AddColumn) {
  Table t = TestTable();
  Column c = *Column::Make(ValueType::kString);
  c.AppendString("a");
  c.AppendString("b");
  c.AppendString("c");
  EXPECT_TRUE(t.AddColumn(Field::Discrete("extra"), std::move(c)).ok());
  EXPECT_EQ(t.num_columns(), 3u);
  EXPECT_EQ(*t.GetValue(2, "extra"), Value("c"));
}

TEST(TableTest, AddColumnRejectsLengthMismatch) {
  Table t = TestTable();
  Column c = *Column::Make(ValueType::kString);
  c.AppendString("only one");
  EXPECT_FALSE(t.AddColumn(Field::Discrete("extra"), std::move(c)).ok());
}

TEST(TableTest, AddColumnRejectsDuplicateName) {
  Table t = TestTable();
  Column c = *Column::Make(ValueType::kString);
  for (int i = 0; i < 3; ++i) c.AppendString("x");
  EXPECT_FALSE(t.AddColumn(Field::Discrete("major"), std::move(c)).ok());
}

TEST(TableTest, CloneIsDeep) {
  Table t = TestTable();
  Table copy = t.Clone();
  EXPECT_TRUE(copy.SetValue(0, "major", Value("Changed")).ok());
  EXPECT_EQ(*t.GetValue(0, "major"), Value("EECS"));
  EXPECT_EQ(*copy.GetValue(0, "major"), Value("Changed"));
}

TEST(TableTest, Filter) {
  Table t = TestTable();
  Table kept = *t.Filter({1, 0, 1});
  EXPECT_EQ(kept.num_rows(), 2u);
  EXPECT_EQ(*kept.GetValue(0, "major"), Value("EECS"));
  EXPECT_EQ(*kept.GetValue(1, "score"), Value(5.0));
}

TEST(TableTest, FilterRejectsBadMask) {
  Table t = TestTable();
  EXPECT_FALSE(t.Filter({1, 0}).ok());
}

TEST(TableTest, ToStringRendersHeaderAndRows) {
  Table t = TestTable();
  std::string s = t.ToString();
  EXPECT_NE(s.find("major"), std::string::npos);
  EXPECT_NE(s.find("EECS"), std::string::npos);
  EXPECT_NE(s.find("3"), std::string::npos);
}

TEST(TableTest, ToStringTruncates) {
  Table t = TestTable();
  std::string s = t.ToString(1);
  EXPECT_NE(s.find("more rows"), std::string::npos);
}

TEST(TableBuilderTest, DefersErrorsToFinish) {
  TableBuilder b(TestSchema());
  b.Row({Value("ok"), Value(1.0)});
  b.Row({Value("bad"), Value("wrong type")});
  b.Row({Value("after"), Value(2.0)});
  auto r = b.Finish();
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST(TableBuilderTest, ReserveAndCount) {
  TableBuilder b(TestSchema());
  b.Reserve(10);
  b.Row({Value("a"), Value(1.0)});
  EXPECT_EQ(b.num_rows(), 1u);
  EXPECT_EQ(b.Finish()->num_rows(), 1u);
}

}  // namespace
}  // namespace privateclean
