// Performance microbenchmarks (google-benchmark) for the PrivateClean
// building blocks: mechanism throughput, provenance graph construction
// and cuts, estimator latency, aggregate scans, and CSV I/O. These back
// the complexity claims of §6.4/§7.3 (linear-space graphs, O(l') cuts)
// and the typed-column design decision in DESIGN.md.

#include <benchmark/benchmark.h>

#include <filesystem>
#include <thread>

#include "bench/harness.h"
#include "cleaning/merge.h"
#include "common/arena.h"
#include "common/edit_distance.h"
#include "datagen/synthetic.h"
#include "privacy/laplace_mechanism.h"
#include "privacy/ledger.h"
#include "privacy/randomized_response.h"
#include "provenance/provenance_graph.h"
#include "table/csv.h"

namespace privateclean {
namespace {

Table MakeData(size_t rows, size_t distinct) {
  SyntheticOptions options;
  options.num_rows = rows;
  options.num_distinct = distinct;
  Rng rng(1);
  return *GenerateSynthetic(options, rng);
}

void BM_RandomizedResponse(benchmark::State& state) {
  size_t rows = static_cast<size_t>(state.range(0));
  Table data = MakeData(rows, 50);
  Domain domain = *Domain::FromColumn(data, "category");
  Rng rng(2);
  for (auto _ : state) {
    state.PauseTiming();
    Column col = *data.ColumnByName("category").ValueOrDie();
    state.ResumeTiming();
    benchmark::DoNotOptimize(
        ApplyRandomizedResponse(&col, domain, 0.1, rng).ok());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(rows));
}
BENCHMARK(BM_RandomizedResponse)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_LaplaceMechanism(benchmark::State& state) {
  size_t rows = static_cast<size_t>(state.range(0));
  Table data = MakeData(rows, 50);
  Rng rng(3);
  for (auto _ : state) {
    state.PauseTiming();
    Column col = *data.ColumnByName("value").ValueOrDie();
    state.ResumeTiming();
    benchmark::DoNotOptimize(ApplyLaplaceMechanism(&col, 10.0, rng).ok());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(rows));
}
BENCHMARK(BM_LaplaceMechanism)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_GrrEndToEnd(benchmark::State& state) {
  size_t rows = static_cast<size_t>(state.range(0));
  Table data = MakeData(rows, 50);
  Rng rng(4);
  for (auto _ : state) {
    auto out = ApplyGrr(data, GrrParams::Uniform(0.1, 10.0), GrrOptions{},
                        rng);
    benchmark::DoNotOptimize(out.ok());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(rows));
}
BENCHMARK(BM_GrrEndToEnd)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_ProvenanceGraphBuild(benchmark::State& state) {
  size_t rows = static_cast<size_t>(state.range(0));
  Table data = MakeData(rows, 200);
  Table cleaned = data.Clone();
  // Merge half the domain pairwise so the graph has real structure.
  std::unordered_map<Value, Value, ValueHash> merges;
  for (size_t k = 0; k + 1 < 200; k += 2) {
    merges.emplace(SyntheticCategory(k + 1), SyntheticCategory(k));
  }
  (void)FindReplace("category", merges).Apply(&cleaned);
  const Column& dirty = *data.ColumnByName("category").ValueOrDie();
  const Column& clean = *cleaned.ColumnByName("category").ValueOrDie();
  Domain domain = *Domain::FromColumn(data, "category");
  for (auto _ : state) {
    auto graph = ProvenanceGraph::Build(dirty, clean, domain);
    benchmark::DoNotOptimize(graph.ok());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(rows));
}
BENCHMARK(BM_ProvenanceGraphBuild)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_ProvenanceCut(benchmark::State& state) {
  // O(l') cut claim: vary the number of predicate values on a fixed
  // graph.
  size_t pred_size = static_cast<size_t>(state.range(0));
  Table data = MakeData(20000, 500);
  const Column& col = *data.ColumnByName("category").ValueOrDie();
  Domain domain = *Domain::FromColumn(data, "category");
  ProvenanceGraph graph = *ProvenanceGraph::Build(col, col, domain);
  std::vector<Value> pred_values;
  for (size_t k = 0; k < pred_size && k < domain.size(); ++k) {
    pred_values.push_back(domain.value(k));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph.WeightedSelectivity(pred_values));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(pred_size));
}
BENCHMARK(BM_ProvenanceCut)->Arg(1)->Arg(10)->Arg(100)->Arg(400);

void BM_AggregateScan(benchmark::State& state) {
  size_t rows = static_cast<size_t>(state.range(0));
  Table data = MakeData(rows, 50);
  Predicate pred = Predicate::In(
      "category", {SyntheticCategory(0), SyntheticCategory(1),
                   SyntheticCategory(2)});
  for (auto _ : state) {
    auto stats = ScanWithPredicate(data, pred, "value");
    benchmark::DoNotOptimize(stats.ok());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(rows));
}
BENCHMARK(BM_AggregateScan)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_EndToEndQuery(benchmark::State& state) {
  // Full PrivateClean query: provenance rebuild + scan + estimate.
  Table data = MakeData(static_cast<size_t>(state.range(0)), 50);
  Rng rng(5);
  PrivateTable pt = *PrivateTable::Create(
      data, GrrParams::Uniform(0.1, 10.0), GrrOptions{}, rng);
  Predicate pred = Predicate::In(
      "category", {SyntheticCategory(0), SyntheticCategory(1)});
  for (auto _ : state) {
    auto r = pt.Count(pred);
    benchmark::DoNotOptimize(r.ok());
  }
}
BENCHMARK(BM_EndToEndQuery)->Arg(1000)->Arg(10000)->Arg(100000);

// --- Parallel scaling (1 vs N threads) --------------------------------
//
// Same 1M-row table at every thread count; the deterministic sharding
// contract (common/thread_pool.h) guarantees identical output, so these
// benchmarks measure pure execution scaling. Build once and share: the
// table dominates setup time.

const Table& ScalingTable() {
  static const Table* table = new Table(MakeData(1000000, 50));
  return *table;
}

/// Attach the dictionary/arena accounting that QueryResult::memory
/// surfaces, so BENCH_*.json records the columnar footprint next to the
/// wall times.
void RecordMemoryCounters(benchmark::State& state, const Table& data) {
  ColumnMemory mem = data.MemoryUsage();
  state.counters["payload_bytes"] = static_cast<double>(mem.payload_bytes);
  state.counters["dict_bytes"] = static_cast<double>(mem.dictionary_bytes);
  state.counters["dict_entries"] =
      static_cast<double>(mem.dictionary_entries);
  state.counters["arena_peak_bytes"] =
      static_cast<double>(ArenaProfiler::Totals().peak_live_bytes);
}

void BM_GrrParallelScaling(benchmark::State& state) {
  const Table& data = ScalingTable();
  GrrOptions options;
  options.exec.num_threads = static_cast<size_t>(state.range(0));
  Rng rng(6);
  for (auto _ : state) {
    auto out = ApplyGrr(data, GrrParams::Uniform(0.1, 10.0), options, rng);
    benchmark::DoNotOptimize(out.ok());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(data.num_rows()));
}
BENCHMARK(BM_GrrParallelScaling)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

// The alternative mechanism families through the same sharded path, at
// a comparable effective randomization rate, so BENCH_pr7.json exposes
// any per-row cost the draw sequence adds (hlm shares the grr kernel;
// sampling draws an extra Bernoulli per pooled row).
void BM_HlmParallelScaling(benchmark::State& state) {
  const Table& data = ScalingTable();
  GrrOptions options;
  options.mechanism.name = "hlm";
  options.exec.num_threads = static_cast<size_t>(state.range(0));
  Rng rng(6);
  for (auto _ : state) {
    // Per-attribute target ε = 6: p_eff ≈ 0.11 on the ~50-value domain,
    // matching BM_GrrParallelScaling's replacement rate.
    auto out = ApplyGrr(data, GrrParams::Uniform(6.0, 10.0), options, rng);
    benchmark::DoNotOptimize(out.ok());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(data.num_rows()));
}
BENCHMARK(BM_HlmParallelScaling)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_SamplingParallelScaling(benchmark::State& state) {
  const Table& data = ScalingTable();
  GrrOptions options;
  options.mechanism.name = "sampling";
  options.mechanism.params["beta"] = 0.9;
  options.exec.num_threads = static_cast<size_t>(state.range(0));
  Rng rng(6);
  for (auto _ : state) {
    // p_eff = 1 - β(1 - p0) = 0.1 with β = 0.9, p0 = 0.
    auto out = ApplyGrr(data, GrrParams::Uniform(0.0, 10.0), options, rng);
    benchmark::DoNotOptimize(out.ok());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(data.num_rows()));
}
BENCHMARK(BM_SamplingParallelScaling)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_ScanParallelScaling(benchmark::State& state) {
  const Table& data = ScalingTable();
  ExecutionOptions exec;
  exec.num_threads = static_cast<size_t>(state.range(0));
  Predicate pred = Predicate::In(
      "category", {SyntheticCategory(0), SyntheticCategory(1),
                   SyntheticCategory(2)});
  for (auto _ : state) {
    auto stats = ScanWithPredicate(data, pred, "value", exec);
    benchmark::DoNotOptimize(stats.ok());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(data.num_rows()));
  RecordMemoryCounters(state, data);
}
BENCHMARK(BM_ScanParallelScaling)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_ProvenanceParallelScaling(benchmark::State& state) {
  // Both ProvenanceGraph::Build passes (local value-count runs, then
  // per-dirty totals + pair counts) shard over the 1M-row table; half
  // the 50-value domain is merged pairwise so the graph has real edges.
  const Table& data = ScalingTable();
  static const Table* cleaned = [] {
    auto* t = new Table(ScalingTable().Clone());
    std::unordered_map<Value, Value, ValueHash> merges;
    for (size_t k = 0; k + 1 < 50; k += 2) {
      merges.emplace(SyntheticCategory(k + 1), SyntheticCategory(k));
    }
    (void)FindReplace("category", merges).Apply(t);
    return t;
  }();
  const Column& dirty = *data.ColumnByName("category").ValueOrDie();
  const Column& clean = *cleaned->ColumnByName("category").ValueOrDie();
  Domain domain = *Domain::FromColumn(data, "category");
  ExecutionOptions exec;
  exec.num_threads = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto graph = ProvenanceGraph::Build(dirty, clean, domain, exec);
    benchmark::DoNotOptimize(graph.ok());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(data.num_rows()));
  RecordMemoryCounters(state, data);
}
BENCHMARK(BM_ProvenanceParallelScaling)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_GroupByParallelScaling(benchmark::State& state) {
  const Table& data = ScalingTable();
  Rng rng(7);
  PrivateTable pt = *PrivateTable::Create(
      data, GrrParams::Uniform(0.1, 10.0), GrrOptions{}, rng);
  QueryOptions options;
  options.exec.num_threads = static_cast<size_t>(state.range(0));
  // Warm the provenance-graph cache so the loop times the sharded
  // counting pass, not the one-off graph build.
  benchmark::DoNotOptimize(pt.GroupByCountEstimate("category").ok());
  for (auto _ : state) {
    auto groups = pt.GroupByCountEstimate("category", options);
    benchmark::DoNotOptimize(groups.ok());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(data.num_rows()));
}
BENCHMARK(BM_GroupByParallelScaling)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_AggregateParallelScaling(benchmark::State& state) {
  const Table& data = ScalingTable();
  ExecutionOptions exec;
  exec.num_threads = static_cast<size_t>(state.range(0));
  AggregateQuery query = AggregateQuery::Avg(
      "value", Predicate::In("category", {SyntheticCategory(0),
                                          SyntheticCategory(1),
                                          SyntheticCategory(2)}));
  for (auto _ : state) {
    auto r = ExecuteAggregate(data, query, exec);
    benchmark::DoNotOptimize(r.ok());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(data.num_rows()));
}
BENCHMARK(BM_AggregateParallelScaling)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_BootstrapParallelScaling(benchmark::State& state) {
  // Replicate-axis scaling: each of the 64 replicates resamples all rows
  // and runs the extension aggregate, so the work is
  // O(replicates × rows) and shards at replicate granularity
  // (ShardCountForCoarseItems). A smaller table than ScalingTable keeps
  // one iteration tractable at every thread count.
  static const Table* data = new Table(MakeData(50000, 50));
  static const PrivateTable* pt = [] {
    Rng rng(8);
    return new PrivateTable(*PrivateTable::Create(
        *data, GrrParams::Uniform(0.1, 10.0), GrrOptions{}, rng));
  }();
  ExecutionOptions exec;
  exec.num_threads = static_cast<size_t>(state.range(0));
  AggregateQuery median{AggregateType::kMedian, "value", std::nullopt, 50.0};
  for (auto _ : state) {
    Rng rng(9);
    auto r = pt->BootstrapExtendedAggregate(median, rng, 64, 0.95, exec);
    benchmark::DoNotOptimize(r.ok());
  }
  state.SetItemsProcessed(state.iterations() * 64 *
                          static_cast<int64_t>(data->num_rows()));
}
BENCHMARK(BM_BootstrapParallelScaling)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_CsvParseParallelScaling(benchmark::State& state) {
  const Table& data = ScalingTable();
  CsvOptions options;
  options.exec.num_threads = static_cast<size_t>(state.range(0));
  const std::string text = TableToCsv(data, options);
  for (auto _ : state) {
    auto parsed = CsvToTable(text, data.schema(), options);
    benchmark::DoNotOptimize(parsed.ok());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(data.num_rows()));
}
BENCHMARK(BM_CsvParseParallelScaling)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_CsvSplitParallelScaling(benchmark::State& state) {
  // Record splitting alone (the stage CSV parse scaling was previously
  // bottlenecked on), over ~1M rows of text heavy in quoted fields —
  // multiline, escaped quotes, CRLF — so the speculative splitter's
  // parity machinery is what's measured, not a plain memchr loop. Forced
  // speculative even at 1 thread, so Arg(1) reports the splitter's
  // overhead against BM_CsvParseParallelScaling's serial baseline.
  static const std::string* text = [] {
    auto* s = new std::string("name,score,count\n");
    s->reserve(45u << 20);
    for (size_t i = 0; i < 1000000; ++i) {
      switch (i % 5) {
        case 0:
          *s += "plain_" + std::to_string(i);
          break;
        case 1:
          *s += "\"comma, inside\"";
          break;
        case 2:
          *s += "\"multi\r\nline\"";
          break;
        case 3:
          *s += "\"esc\"\"aped\"";
          break;
        case 4:
          *s += "\\N";
          break;
      }
      *s += "," + std::to_string(static_cast<double>(i % 997) * 0.5) + "," +
            std::to_string(i % 101) + "\n";
    }
    return s;
  }();
  CsvOptions options;
  options.null_literal = "\\N";
  options.split = CsvSplitMode::kSpeculative;
  options.exec.num_threads = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto records = SplitCsvRecords(*text, options);
    benchmark::DoNotOptimize(records.ok());
  }
  state.SetItemsProcessed(state.iterations() * 1000000);
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(text->size()));
}
BENCHMARK(BM_CsvSplitParallelScaling)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

// --- Vectorized batch engine vs boxed row loop ------------------------
//
// BM_RowLoopScanScaling preserves the engine's old execution strategy as
// a baseline: one boxed ValueAt + Predicate::Matches call per row, sum
// accumulated in a scalar loop. BM_VectorizedScanScaling is the shipping
// engine: the same predicate compiled once into a dictionary match
// table, evaluated in kVectorBatchRows batches into stack masks with the
// sum accumulated per batch. scripts/bench.sh condenses the two side by
// side into BENCH_pr8.json; vectorized must never be slower.

void BM_RowLoopScanScaling(benchmark::State& state) {
  const Table& data = ScalingTable();
  Predicate pred = Predicate::In(
      "category", {SyntheticCategory(0), SyntheticCategory(1),
                   SyntheticCategory(2)});
  const Column& cat = *data.ColumnByName("category").ValueOrDie();
  const Column& val = *data.ColumnByName("value").ValueOrDie();
  for (auto _ : state) {
    double sum = 0.0;
    for (size_t r = 0; r < data.num_rows(); ++r) {
      if (!pred.Matches(cat.ValueAt(r))) continue;
      if (!val.IsNull(r)) sum += val.DoubleAt(r);
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(data.num_rows()));
}
BENCHMARK(BM_RowLoopScanScaling)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_VectorizedScanScaling(benchmark::State& state) {
  const Table& data = ScalingTable();
  ExecutionOptions exec;
  exec.num_threads = static_cast<size_t>(state.range(0));
  Predicate pred = Predicate::In(
      "category", {SyntheticCategory(0), SyntheticCategory(1),
                   SyntheticCategory(2)});
  CompiledPredicate compiled = *CompiledPredicate::Compile(data, pred);
  AggregateQuery query;
  query.agg = AggregateType::kSum;
  query.numeric_attribute = "value";
  for (auto _ : state) {
    auto r = ExecuteAggregate(data, query, compiled, exec);
    benchmark::DoNotOptimize(r.ok());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(data.num_rows()));
}
BENCHMARK(BM_VectorizedScanScaling)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

// Ledger commit throughput: N threads charging one tenant concurrently,
// each charge a durable WAL record. BM_LedgerSerialCommitScaling fsyncs
// once per record (group commit off); BM_LedgerGroupCommitScaling lets
// the commit leader batch every queued record behind one fsync.
// scripts/bench.sh condenses the pair into BENCH_pr9.json; group commit
// must never be slower at >1 thread.
void LedgerCommitBench(benchmark::State& state, bool group_commit) {
  const size_t threads = static_cast<size_t>(state.range(0));
  constexpr size_t kChargesPerThread = 32;
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("pclean_bench_ledger_" + std::to_string(group_commit ? 1 : 0) + "_" +
        std::to_string(threads)))
          .string();
  for (auto _ : state) {
    state.PauseTiming();
    std::filesystem::remove_all(dir);
    BudgetLedger::Options options;
    options.group_commit = group_commit;
    options.checkpoint_every = 0;  // isolate the commit path
    auto opened = BudgetLedger::Open(dir, options);
    if (!opened.ok()) {
      state.SkipWithError(opened.status().ToString().c_str());
      break;
    }
    BudgetLedger ledger = std::move(*opened);
    if (!ledger.Grant("t", 1e9).ok()) {
      state.SkipWithError("grant failed");
      break;
    }
    state.ResumeTiming();
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (size_t w = 0; w < threads; ++w) {
      workers.emplace_back([&ledger] {
        for (size_t i = 0; i < kChargesPerThread; ++i) {
          benchmark::DoNotOptimize(ledger.Charge("t", 0.001).ok());
        }
      });
    }
    for (auto& worker : workers) worker.join();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(threads * kChargesPerThread));
  std::filesystem::remove_all(dir);
}

void BM_LedgerSerialCommitScaling(benchmark::State& state) {
  LedgerCommitBench(state, false);
}
BENCHMARK(BM_LedgerSerialCommitScaling)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_LedgerGroupCommitScaling(benchmark::State& state) {
  LedgerCommitBench(state, true);
}
BENCHMARK(BM_LedgerGroupCommitScaling)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_CsvWriteRead(benchmark::State& state) {
  Table data = MakeData(static_cast<size_t>(state.range(0)), 50);
  for (auto _ : state) {
    std::string csv = TableToCsv(data);
    auto parsed = CsvToTable(csv, data.schema());
    benchmark::DoNotOptimize(parsed.ok());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CsvWriteRead)->Arg(1000)->Arg(10000);

void BM_EditDistance(benchmark::State& state) {
  std::string a(static_cast<size_t>(state.range(0)), 'a');
  std::string b = a;
  b[b.size() / 2] = 'x';
  b.push_back('y');
  for (auto _ : state) {
    benchmark::DoNotOptimize(EditDistance(a, b));
  }
}
BENCHMARK(BM_EditDistance)->Arg(8)->Arg(32)->Arg(128);

}  // namespace
}  // namespace privateclean

/// Custom main: default to short measurement windows so the full bench
/// sweep stays fast; pass --benchmark_min_time explicitly to override.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_min_time = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_min_time", 0) == 0) {
      has_min_time = true;
    }
  }
  static char min_time_flag[] = "--benchmark_min_time=0.05";
  if (!has_min_time) args.push_back(min_time_flag);
  int adjusted_argc = static_cast<int>(args.size());
  benchmark::Initialize(&adjusted_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(adjusted_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
