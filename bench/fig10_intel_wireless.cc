// Figure 10: the IntelWireless workload (paper §8.4, simulated per
// DESIGN.md). Spurious sensor ids are merged to NULL on the private
// relation, then:
//   SELECT count(1)   FROM R WHERE sensor_id != NULL
//   SELECT avg(temp)  FROM R WHERE sensor_id != NULL
// Sweeps privacy with the numerical scale b chosen so both attributes
// have the same per-attribute epsilon, as in the paper. The gray
// reference series is the error of querying the *dirty original* data
// with no privacy and no cleaning — past some privacy level the cleaned
// private relation is still more accurate than the dirty raw data.

#include <cmath>
#include <cstdio>

#include "bench/harness.h"
#include "cleaning/merge.h"
#include "datagen/intel_wireless.h"
#include "privacy/laplace_mechanism.h"

using namespace privateclean;
using namespace privateclean::bench;

int main() {
  Rng data_rng(2024);
  IntelWirelessOptions options;
  options.num_rows = 20000;
  IntelWirelessData data = *GenerateIntelWireless(options, data_rng);
  auto is_spurious = data.is_spurious;

  Predicate pred = Predicate::IsNotNull("sensor_id");
  double truth_count =
      *ExecuteAggregate(data.clean, AggregateQuery::Count(pred));
  double truth_avg =
      *ExecuteAggregate(data.clean, AggregateQuery::Avg("temp", pred));

  // Reference: query the dirty original (no cleaning, no privacy).
  double dirty_count =
      *ExecuteAggregate(data.dirty, AggregateQuery::Count(pred));
  double dirty_avg =
      *ExecuteAggregate(data.dirty, AggregateQuery::Avg("temp", pred));
  double ref_count_pct =
      100.0 * std::abs(dirty_count - truth_count) / truth_count;
  double ref_avg_pct =
      100.0 * std::abs(dirty_avg - truth_avg) / std::abs(truth_avg);

  const std::vector<double> p_values{0.05, 0.1, 0.15, 0.2, 0.3, 0.4, 0.5};
  Series count_pc{"PC count", {}}, count_direct{"Direct count", {}};
  Series avg_pc{"PC avg", {}}, avg_direct{"Direct avg", {}};
  Series count_ref{"dirty/no-priv count", {}}, avg_ref{"dirty/no-priv avg",
                                                       {}};

  for (double p : p_values) {
    // epsilon-matched numerical noise: b = delta / ln(3/p - 2), so the
    // temp attribute carries the same epsilon as the id attribute.
    double eps = std::log(3.0 / p - 2.0);
    GrrParams params;
    params.default_p = p;
    params.default_b = 0.0;  // Placeholder; set real scales below.
    const Schema& schema = data.dirty.schema();
    for (size_t i = 0; i < schema.num_fields(); ++i) {
      const Field& f = schema.field(i);
      if (f.kind != AttributeKind::kNumerical) continue;
      double delta = *ColumnSensitivity(data.dirty.column(i));
      params.numeric_b[f.name] = eps > 0.0 ? delta / eps : 0.0;
    }

    auto run = [&](const AggregateQuery& query, double truth, Series* pc,
                   Series* direct) {
      ComparisonSpec spec;
      spec.data = &data.dirty;
      spec.params = params;
      spec.clean = [is_spurious](PrivateTable& pt) {
        return pt.Clean(MergeToNull("sensor_id", is_spurious));
      };
      spec.query = query;
      spec.truth = truth;
      spec.trials = 15;  // 20k rows: fewer trials keep runtime sane.
      spec.seed_base = 61000 + static_cast<uint64_t>(p * 1000);
      auto r = RunComparison(spec);
      pc->values.push_back(r.ok() ? r->privateclean_pct : -1);
      direct->values.push_back(r.ok() ? r->direct_pct : -1);
    };
    run(AggregateQuery::Count(pred), truth_count, &count_pc,
        &count_direct);
    run(AggregateQuery::Avg("temp", pred), truth_avg, &avg_pc,
        &avg_direct);
    count_ref.values.push_back(ref_count_pct);
    avg_ref.values.push_back(ref_avg_pct);
  }

  PrintFigure(
      "Figure 10 (count): IntelWireless count error %% vs privacy p "
      "(epsilon-matched b)",
      "p", p_values, {count_pc, count_direct, count_ref});
  PrintFigure(
      "Figure 10 (avg): IntelWireless avg(temp) error %% vs privacy p "
      "(epsilon-matched b)",
      "p", p_values, {avg_pc, avg_direct, avg_ref});
  return 0;
}
