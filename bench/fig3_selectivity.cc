// Figure 3: error as a function of query selectivity (fraction of
// distinct values selected by the predicate), paper §8.3.1. PrivateClean
// is most valuable at low selectivities, where skew effects do not
// average out.

#include <cstdio>

#include "bench/harness.h"
#include "datagen/synthetic.h"

using namespace privateclean;
using namespace privateclean::bench;

int main() {
  const std::vector<double> selectivities{0.02, 0.05, 0.1, 0.2, 0.3,
                                          0.5,  0.7,  0.9};

  auto run_panel = [&](bool sum_query) {
    SyntheticOptions options;  // S=1000, N=50, z=2.
    options.correlated = sum_query;  // See §5.5 / fig2 note.
    Rng data_rng(42);
    Table data = *GenerateSynthetic(options, data_rng);
    Series pc{"PrivateClean", {}};
    Series direct{"Direct", {}};
    for (double sel : selectivities) {
      size_t l = std::max<size_t>(1, static_cast<size_t>(sel * 50));
      RandomQuerySpec spec;
      spec.data = &data;
      spec.params = GrrParams::Uniform(0.1, 10.0);
      spec.make_query = [l, sum_query](Rng& rng) {
        Predicate pred = Predicate::In(
            "category", PickPredicateCategories(50, l, 2, rng));
        return sum_query ? AggregateQuery::Sum("value", pred)
                         : AggregateQuery::Count(pred);
      };
      spec.num_queries = 10;
      spec.trials_per_query = 10;
      spec.query_seed = 4243 + l;
      spec.min_predicate_rows = 30;
      spec.seed_base = 17000 + l;
      auto r = RunRandomQueryComparison(spec);
      pc.values.push_back(r.ok() ? r->privateclean_pct : -1);
      direct.values.push_back(r.ok() ? r->direct_pct : -1);
    }
    return std::vector<Series>{pc, direct};
  };

  PrintFigure("Figure 3a: sum error %% vs selectivity (p=0.1, b=10)",
              "selectivity", selectivities, run_panel(true));
  PrintFigure("Figure 3b: count error %% vs selectivity (p=0.1, b=10)",
              "selectivity", selectivities, run_panel(false));
  return 0;
}
