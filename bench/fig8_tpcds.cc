// Figure 8: constraint-based cleaning on the TPC-DS-like
// customer_address table (paper §8.3.4).
//   8a  FD repair of corrupted ca_state via (ca_city, ca_county) ->
//       ca_state; heuristic repair is imperfect, so PrivateClean's error
//       grows with the corruption count (unlike Figure 5).
//   8b  MD repair of one-character ca_country corruptions via edit
//       distance; resolution is unique and merges domain values, so the
//       PrivateClean-vs-Direct gap is larger than in 8a.
// Queries are the paper's GROUP BY counts, evaluated per group.

#include <cstdio>

#include "bench/harness.h"
#include "cleaning/fd_repair.h"
#include "cleaning/md_repair.h"
#include "datagen/tpcds.h"

using namespace privateclean;
using namespace privateclean::bench;

namespace {

constexpr size_t kRows = 2000;

/// Draws a random group value of `attribute` from the truth table,
/// weighted toward populated groups (row-uniform).
AggregateQuery RandomGroupCount(const Table& truth_table,
                                const std::string& attribute, Rng& rng) {
  const Column& col = **truth_table.ColumnByName(attribute);
  size_t row = static_cast<size_t>(rng.UniformInt(col.size()));
  return AggregateQuery::Count(
      Predicate::Equals(attribute, col.ValueAt(row)));
}

}  // namespace

int main() {
  const std::vector<double> corruption_counts{0, 50, 100, 200, 300, 400};

  // --- 8a: FD repair on ca_state ---------------------------------------
  {
    Series pc{"PrivateClean", {}};
    Series direct{"Direct", {}};
    for (double corruptions : corruption_counts) {
      Rng rng(900 + static_cast<uint64_t>(corruptions));
      TpcdsOptions options;
      options.num_rows = kRows;
      Table dirty = *GenerateCustomerAddress(options, rng);
      if (!CorruptStates(&dirty, static_cast<size_t>(corruptions), rng)
               .ok()) {
        return 1;
      }
      Table truth_table = dirty.Clone();
      if (!FdRepair(CustomerAddressFd()).Apply(&truth_table).ok()) return 1;

      RandomQuerySpec spec;
      spec.data = &dirty;
      spec.truth_table = &truth_table;
      spec.params = GrrParams::Uniform(0.1, 1.0);
      spec.clean = [](PrivateTable& pt) {
        return pt.Clean(FdRepair(CustomerAddressFd()));
      };
      const Table* truth_ptr = &truth_table;
      spec.make_query = [truth_ptr](Rng& qrng) {
        return RandomGroupCount(*truth_ptr, "ca_state", qrng);
      };
      spec.num_queries = 8;
      spec.trials_per_query = 8;
      spec.query_seed = 4248;
      spec.min_predicate_rows = 40;
      spec.seed_base = 47000 + static_cast<uint64_t>(corruptions);
      auto r = RunRandomQueryComparison(spec);
      pc.values.push_back(r.ok() ? r->privateclean_pct : -1);
      direct.values.push_back(r.ok() ? r->direct_pct : -1);
    }
    PrintFigure(
        "Figure 8a: GROUP BY ca_state count error %% vs #state "
        "corruptions (FD repair, p=0.1)",
        "corruptions", corruption_counts, {pc, direct});
  }

  // --- 8b: MD repair on ca_country --------------------------------------
  {
    Series pc{"PrivateClean", {}};
    Series direct{"Direct", {}};
    for (double corruptions : corruption_counts) {
      Rng rng(1900 + static_cast<uint64_t>(corruptions));
      TpcdsOptions options;
      options.num_rows = kRows;
      Table dirty = *GenerateCustomerAddress(options, rng);
      if (!CorruptCountries(&dirty, static_cast<size_t>(corruptions), rng)
               .ok()) {
        return 1;
      }
      Table truth_table = dirty.Clone();
      if (!MdRepair(CustomerAddressMd()).Apply(&truth_table).ok()) return 1;

      RandomQuerySpec spec;
      spec.data = &dirty;
      spec.truth_table = &truth_table;
      spec.params = GrrParams::Uniform(0.1, 1.0);
      spec.clean = [](PrivateTable& pt) {
        return pt.Clean(MdRepair(CustomerAddressMd()));
      };
      const Table* truth_ptr = &truth_table;
      spec.make_query = [truth_ptr](Rng& qrng) {
        return RandomGroupCount(*truth_ptr, "ca_country", qrng);
      };
      spec.num_queries = 8;
      spec.trials_per_query = 8;
      spec.query_seed = 4249;
      spec.min_predicate_rows = 40;
      spec.seed_base = 53000 + static_cast<uint64_t>(corruptions);
      auto r = RunRandomQueryComparison(spec);
      pc.values.push_back(r.ok() ? r->privateclean_pct : -1);
      direct.values.push_back(r.ok() ? r->direct_pct : -1);
    }
    PrintFigure(
        "Figure 8b: GROUP BY ca_country count error %% vs #country "
        "corruptions (MD repair, p=0.1)",
        "corruptions", corruption_counts, {pc, direct});
  }
  return 0;
}
