// Ablation / validation for the Appendix E tuning algorithm: for a
// sweep of target count-error levels, tune (p, b), privatize, and
// measure the worst observed count error over many random queries and
// private instances. The Eq. 4 bound is a 95%-confidence bound on the
// *selectivity-scale* error of any count query, so the empirical 95th
// percentile must sit at or below the target.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/harness.h"
#include "datagen/synthetic.h"

using namespace privateclean;
using namespace privateclean::bench;

int main() {
  SyntheticOptions options;
  options.num_rows = 2000;
  Rng data_rng(11);
  Table data = *GenerateSynthetic(options, data_rng);
  double s = static_cast<double>(data.num_rows());

  const std::vector<double> targets{0.05, 0.08, 0.12, 0.2};
  std::printf("\n=== Appendix E tuning validation (S=%zu, N=%zu) ===\n",
              data.num_rows(), options.num_distinct);
  std::printf("%-10s %-8s %-10s %-16s %-16s\n", "target", "p",
              "eps/attr", "95th pct error", "bound holds");

  for (double target : targets) {
    auto tuning = TunePrivacyParameters(data, target, 0.95);
    if (!tuning.ok()) {
      std::printf("%-10.3f (unattainable: %s)\n", target,
                  tuning.status().message().c_str());
      continue;
    }
    // Collect selectivity-scale count errors over random queries and
    // instances.
    std::vector<double> errors;
    Rng query_rng(21);
    for (int q = 0; q < 20; ++q) {
      size_t l = 1 + query_rng.UniformInt(25);
      Predicate pred = Predicate::In(
          "category",
          PickPredicateCategories(options.num_distinct, l, 2, query_rng));
      double truth = *ExecuteAggregate(data, AggregateQuery::Count(pred));
      for (int t = 0; t < 10; ++t) {
        Rng rng(31000 + 100 * q + t);
        auto pt = PrivateTable::Create(data, ToGrrParams(*tuning),
                                       GrrOptions{}, rng);
        if (!pt.ok()) continue;
        auto r = pt->Count(pred);
        if (!r.ok()) continue;
        errors.push_back(std::abs(r->estimate - truth) / s);
      }
    }
    std::sort(errors.begin(), errors.end());
    double p95 = errors.empty()
                     ? 0.0
                     : errors[static_cast<size_t>(0.95 * errors.size())];
    std::printf("%-10.3f %-8.3f %-10.3f %-16.4f %-16s\n", target,
                tuning->p, tuning->per_attribute_epsilon, p95,
                p95 <= target ? "yes" : "NO");
  }
  std::printf("\n(errors are in selectivity units, |est-truth|/S, as in "
              "Eq. 4)\n");
  return 0;
}
