// Mechanism shootout: count-query utility versus the per-attribute
// privacy budget ε for every registered mechanism family, on the paper's
// synthetic defaults (S=1000, N=50, z=2). Each family is calibrated to
// spend the same per-attribute ε — grr via the paper inversion
// p = 3/(e^ε + 2), hlm by construction, sampling (β = 0.5) through the
// inverse amplification bound — so the columns compare utility at equal
// *nominal* budget under each family's own accounting. Caveat for
// reading the figure: grr's paper accounting understates its exact ε
// for N > 3 (here N = 50), so its lower error comes from silently
// spending more real privacy; hlm is the honest curve (exact ε equals
// the target), and sampling adds the slack of the amplification bound
// on top. The statistical suite pins these calibration facts exactly.

#include <cmath>
#include <cstdio>

#include "bench/harness.h"
#include "datagen/synthetic.h"

using namespace privateclean;
using namespace privateclean::bench;

namespace {

constexpr size_t kNumDistinct = 50;
constexpr size_t kPredicateValues = 5;  // 10% distinct selectivity.
constexpr double kBeta = 0.5;

AggregateQuery MakeCountQuery(Rng& rng) {
  return AggregateQuery::Count(Predicate::In(
      "category",
      PickPredicateCategories(kNumDistinct, kPredicateValues, 2, rng)));
}

/// The per-attribute parameter that spends `epsilon` under `family`
/// (mirrors AllocateEpsilonBudget's per-family conversion).
double ParamForEpsilon(const std::string& family, double epsilon) {
  if (family == "hlm") return epsilon;
  if (family == "sampling") {
    return *RandomizationForEpsilon(
        std::log1p(std::expm1(epsilon) / kBeta));
  }
  return *RandomizationForEpsilon(epsilon);
}

MechanismSpec SpecFor(const std::string& family) {
  MechanismSpec spec;
  spec.name = family;
  if (family == "sampling") spec.params["beta"] = kBeta;
  return spec;
}

}  // namespace

int main() {
  SyntheticOptions options;
  Rng data_rng(42);
  Table data = *GenerateSynthetic(options, data_rng);

  const std::vector<double> eps_values{0.5, 1.0, 2.0, 3.0, 5.0};

  std::vector<Series> series;
  for (const std::string& family : KnownMechanisms()) {
    Series s{family, {}};
    for (double eps : eps_values) {
      RandomQuerySpec spec;
      spec.data = &data;
      spec.params = GrrParams::Uniform(ParamForEpsilon(family, eps), 10.0);
      spec.grr_options.mechanism = SpecFor(family);
      spec.make_query = MakeCountQuery;
      spec.num_queries = 10;
      spec.trials_per_query = 10;
      spec.query_seed = 4242;  // Same query set for every family.
      spec.min_predicate_rows = 50;
      spec.seed_base = 17000 + static_cast<uint64_t>(eps * 1000);
      auto r = RunRandomQueryComparison(spec);
      if (!r.ok()) {
        std::fprintf(stderr, "%s at eps=%g failed: %s\n", family.c_str(),
                     eps, r.status().ToString().c_str());
        s.values.push_back(-1);
        continue;
      }
      s.values.push_back(r->privateclean_pct);
    }
    series.push_back(std::move(s));
  }

  PrintFigure(
      "Mechanism shootout: count error %% vs per-attribute epsilon "
      "(equal nominal budget; sampling beta=0.5)",
      "eps", eps_values, series);
  return 0;
}
