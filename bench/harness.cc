#include "bench/harness.h"

#include <cmath>
#include <cstdio>

namespace privateclean {
namespace bench {

void PrintFigure(const std::string& title, const std::string& x_label,
                 const std::vector<double>& xs,
                 const std::vector<Series>& series) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("%-14s", x_label.c_str());
  for (const Series& s : series) {
    std::printf("  %-18s", s.name.c_str());
  }
  std::printf("\n");
  size_t width = 14 + series.size() * 20;
  for (size_t i = 0; i < width; ++i) std::printf("-");
  std::printf("\n");
  for (size_t i = 0; i < xs.size(); ++i) {
    std::printf("%-14.4g", xs[i]);
    for (const Series& s : series) {
      if (i < s.values.size() && std::isfinite(s.values[i])) {
        std::printf("  %-18.3f", s.values[i]);
      } else {
        std::printf("  %-18s", "n/a");
      }
    }
    std::printf("\n");
  }
}

Result<ComparisonResult> RunComparison(const ComparisonSpec& spec) {
  if (spec.data == nullptr) {
    return Status::InvalidArgument("spec.data must be set");
  }
  if (spec.truth == 0.0) {
    return Status::InvalidArgument(
        "spec.truth must be non-zero for relative error");
  }
  ComparisonResult result;
  double pc_total = 0.0, direct_total = 0.0, pcu_total = 0.0;
  int ok_trials = 0;
  for (int t = 0; t < spec.trials; ++t) {
    Rng rng(spec.seed_base + static_cast<uint64_t>(t));
    auto pt_result = PrivateTable::Create(*spec.data, spec.params,
                                          spec.grr_options, rng);
    if (!pt_result.ok()) return pt_result.status();
    PrivateTable pt = std::move(pt_result).ValueOrDie();
    if (spec.clean) {
      Status st = spec.clean(pt);
      if (!st.ok()) return st;
    }
    auto pc = pt.Execute(spec.query);
    auto direct = pt.ExecuteDirect(spec.query);
    if (!pc.ok() || !direct.ok()) {
      ++result.failed_trials;
      continue;
    }
    double pcu_err = 0.0;
    if (spec.include_unweighted) {
      QueryOptions unweighted;
      unweighted.weighted_cut = false;
      auto pcu = pt.Execute(spec.query, unweighted);
      if (!pcu.ok()) {
        // Count the whole trial as failed so all three means share the
        // same denominator.
        ++result.failed_trials;
        continue;
      }
      pcu_err = std::abs(pcu->estimate - spec.truth);
    }
    pc_total += std::abs(pc->estimate - spec.truth);
    direct_total += std::abs(direct->estimate - spec.truth);
    pcu_total += pcu_err;
    ++ok_trials;
  }
  if (ok_trials == 0) {
    return Status::FailedPrecondition("all trials failed");
  }
  double denom = std::abs(spec.truth) * ok_trials;
  result.privateclean_pct = 100.0 * pc_total / denom;
  result.direct_pct = 100.0 * direct_total / denom;
  result.unweighted_pct = 100.0 * pcu_total / denom;
  return result;
}

Result<ComparisonResult> RunRandomQueryComparison(
    const RandomQuerySpec& spec) {
  if (spec.data == nullptr || !spec.make_query) {
    return Status::InvalidArgument("data and make_query must be set");
  }
  const Table* truth_table =
      spec.truth_table != nullptr ? spec.truth_table : spec.data;
  ComparisonResult total;
  int used_queries = 0;
  int attempts = 0;
  const int max_attempts = spec.num_queries * 10;
  for (int q = 0; used_queries < spec.num_queries &&
                  attempts < max_attempts;
       ++q, ++attempts) {
    Rng query_rng(spec.query_seed + 131 * static_cast<uint64_t>(q));
    AggregateQuery query = spec.make_query(query_rng);
    auto truth = ExecuteAggregate(*truth_table, query);
    if (!truth.ok() || std::abs(*truth) < 1e-9) continue;  // Degenerate.
    if (spec.min_predicate_rows > 0 && query.predicate.has_value()) {
      auto support = query.predicate->CountMatches(*truth_table);
      if (!support.ok() || *support < spec.min_predicate_rows) continue;
    }
    ComparisonSpec cspec;
    cspec.data = spec.data;
    cspec.params = spec.params;
    cspec.grr_options = spec.grr_options;
    cspec.clean = spec.clean;
    cspec.query = query;
    cspec.truth = *truth;
    cspec.trials = spec.trials_per_query;
    cspec.seed_base = spec.seed_base + 10007 * static_cast<uint64_t>(q);
    cspec.include_unweighted = spec.include_unweighted;
    auto r = RunComparison(cspec);
    if (!r.ok()) continue;
    total.privateclean_pct += r->privateclean_pct;
    total.direct_pct += r->direct_pct;
    total.unweighted_pct += r->unweighted_pct;
    total.failed_trials += r->failed_trials;
    ++used_queries;
  }
  if (used_queries == 0) {
    return Status::FailedPrecondition("all random queries degenerate");
  }
  total.privateclean_pct /= used_queries;
  total.direct_pct /= used_queries;
  total.unweighted_pct /= used_queries;
  return total;
}

}  // namespace bench
}  // namespace privateclean
