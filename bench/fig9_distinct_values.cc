// Figure 9: sensitivity to the distinct fraction N/S (paper §8.3.3).
// With a 5% spelling-error rate and all other parameters at their
// defaults, accuracy degrades as the number of distinct values grows;
// past ~50% Direct becomes the better estimator in relative terms.

#include <cstdio>

#include "bench/harness.h"
#include "cleaning/merge.h"
#include "datagen/error_injection.h"
#include "datagen/synthetic.h"

using namespace privateclean;
using namespace privateclean::bench;

int main() {
  const size_t kRows = 1000;
  const std::vector<double> distinct_fractions{0.01, 0.05, 0.1, 0.2,
                                               0.35, 0.5,  0.7, 0.9};

  auto run_panel = [&](bool sum_query) {
    Series pc{"PrivateClean", {}};
    Series direct{"Direct", {}};
    for (double fraction : distinct_fractions) {
      size_t num_distinct = std::max<size_t>(
          2, static_cast<size_t>(fraction * kRows));
      SyntheticOptions options;
      options.num_rows = kRows;
      options.num_distinct = num_distinct;
      options.correlated = sum_query;  // See §5.5 / fig2 note.
      Rng data_rng(70 + num_distinct);
      Table base = *GenerateSynthetic(options, data_rng);
      Rng inject_rng(71 + num_distinct);
      InjectionResult injected = *InjectSpellingErrors(
          base, "category", /*error_rate=*/0.05,
          /*row_corruption_prob=*/0.5, inject_rng);
      auto repair_map = injected.repair_map;
      size_t l = std::max<size_t>(1, num_distinct / 10);

      RandomQuerySpec spec;
      spec.data = &injected.dirty;
      spec.truth_table = &injected.clean;
      // Loosen domain preservation: at high N/S the Theorem 2 bound is
      // violated by construction — exactly the regime this figure probes.
      spec.grr_options.ensure_domain_preserved = false;
      spec.params = GrrParams::Uniform(0.1, 10.0);
      spec.clean = [repair_map](PrivateTable& pt) {
        return pt.Clean(FindReplace("category", repair_map));
      };
      spec.make_query = [num_distinct, l, sum_query](Rng& rng) {
        Predicate pred = Predicate::In(
            "category",
            PickPredicateCategories(num_distinct, l, 2, rng));
        return sum_query ? AggregateQuery::Sum("value", pred)
                         : AggregateQuery::Count(pred);
      };
      spec.num_queries = 10;
      spec.trials_per_query = 10;
      spec.query_seed = 4250 + num_distinct;
      spec.min_predicate_rows = 15;
      spec.seed_base = 59000 + num_distinct;
      auto r = RunRandomQueryComparison(spec);
      pc.values.push_back(r.ok() ? r->privateclean_pct : -1);
      direct.values.push_back(r.ok() ? r->direct_pct : -1);
    }
    return std::vector<Series>{pc, direct};
  };

  PrintFigure(
      "Figure 9a: sum error %% vs distinct fraction N/S "
      "(5%% error rate, p=0.1, b=10)",
      "N/S", distinct_fractions, run_panel(true));
  PrintFigure(
      "Figure 9b: count error %% vs distinct fraction N/S "
      "(5%% error rate, p=0.1, b=10)",
      "N/S", distinct_fractions, run_panel(false));
  return 0;
}
