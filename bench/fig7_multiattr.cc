// Figure 7: multi-attribute cleaning. The cleaner uses a second
// attribute (section) to resolve missing instructor names — exactly the
// paper's Example 6: the projection transform maps
// (section, NULL) -> (section, instructor_of(section)), so the dirty
// value NULL forks across several clean instructors and the provenance
// graph needs weighted edges (§7). Compares the weighted cut (PC-W,
// §7.2), the unweighted cut (PC-U, the §6.3 vertex count applied
// naively), and Direct, sweeping the fraction of rows with a missing
// instructor.

#include <cstdio>

#include "bench/harness.h"
#include "cleaning/transform.h"
#include "table/table_builder.h"

using namespace privateclean;
using namespace privateclean::bench;

namespace {

constexpr size_t kSections = 30;
constexpr size_t kInstructors = 8;
constexpr size_t kRows = 1000;

const std::string& InstructorForSection(size_t section) {
  static const std::vector<std::string>* kNames =
      new std::vector<std::string>{"Garcia", "Chen",  "Patel", "Kim",
                                   "Okafor", "Silva", "Novak", "Haddad"};
  return (*kNames)[(section * 2654435761u) % kInstructors];
}

/// Builds the dirty relation: rows Zipf-distributed over sections, the
/// instructor implied by the section but NULL with probability
/// `null_rate` (failed data entry).
Table MakeDirty(double null_rate, Rng& rng) {
  Schema schema = *Schema::Make(
      {Field{"section", ValueType::kInt64, AttributeKind::kDiscrete},
       Field::Discrete("instructor"),
       Field::Numerical("score", ValueType::kDouble)});
  ZipfianSampler section_sampler(kSections, 1.5);
  TableBuilder b(schema);
  for (size_t r = 0; r < kRows; ++r) {
    size_t section = section_sampler.Sample(rng);
    Value instructor = rng.Bernoulli(null_rate)
                           ? Value::Null()
                           : Value(InstructorForSection(section));
    b.Row({Value(static_cast<int64_t>(section)), instructor,
           Value(rng.UniformRealRange(0.0, 5.0))});
  }
  return *b.Finish();
}

/// The Example 6 cleaner: impute a missing instructor from the section
/// (a deterministic per-tuple rewrite over the projection
/// (section, instructor)).
ProjectionTransform MakeImputer() {
  return ProjectionTransform(
      {"section", "instructor"},
      [](const std::vector<Value>& tuple) {
        std::vector<Value> out = tuple;
        if (out[1].is_null() && !out[0].is_null()) {
          out[1] = Value(InstructorForSection(
              static_cast<size_t>(out[0].AsInt64())));
        }
        return out;
      });
}

}  // namespace

int main() {
  const std::vector<double> null_rates{0.05, 0.1, 0.2, 0.3, 0.4};

  Series pcw{"PC-W (weighted)", {}};
  Series pcu{"PC-U (unweighted)", {}};
  Series direct{"Direct", {}};
  for (double rate : null_rates) {
    Rng data_rng(800 + static_cast<uint64_t>(rate * 100));
    Table dirty = MakeDirty(rate, data_rng);
    // Ground truth: the same deterministic imputation on the non-private
    // dirty data.
    Table truth_table = dirty.Clone();
    if (!MakeImputer().Apply(&truth_table).ok()) return 1;

    RandomQuerySpec spec;
    spec.data = &dirty;
    spec.truth_table = &truth_table;
    spec.params = GrrParams::Uniform(0.15, 1.0);
    spec.clean = [](PrivateTable& pt) { return pt.Clean(MakeImputer()); };
    spec.make_query = [](Rng& rng) {
      return AggregateQuery::Count(Predicate::Equals(
          "instructor",
          Value(InstructorForSection(rng.UniformInt(kSections)))));
    };
    spec.num_queries = 8;
    spec.trials_per_query = 12;
    spec.query_seed = 4247;
    spec.min_predicate_rows = 30;
    spec.seed_base = 41000 + static_cast<uint64_t>(rate * 1000);
    spec.include_unweighted = true;
    auto r = RunRandomQueryComparison(spec);
    pcw.values.push_back(r.ok() ? r->privateclean_pct : -1);
    pcu.values.push_back(r.ok() ? r->unweighted_pct : -1);
    direct.values.push_back(r.ok() ? r->direct_pct : -1);
  }
  PrintFigure(
      "Figure 7: multi-attribute cleaning (Example 6 imputation), count "
      "error %% vs missing-instructor rate (p=0.15)",
      "null rate", null_rates, {pcw, pcu, direct});
  return 0;
}
