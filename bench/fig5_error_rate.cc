// Figure 5: error as a function of the data-error rate (fraction of
// distinct values that are erroneous), paper §8.3.2. Errors follow the
// §8.3.2 protocol — half of the erroneous values are renames ("mapped to
// new random distinct values"), half are aliases of other existing
// values ("and other distinct values"). The analyst repairs both kinds
// on the private relation. Direct degrades as the error rate grows
// because the repairs change the predicate's dirty-domain selectivity;
// PrivateClean stays roughly flat thanks to the provenance graph.

#include <cstdio>

#include "bench/harness.h"
#include "cleaning/merge.h"
#include "datagen/error_injection.h"
#include "datagen/synthetic.h"

using namespace privateclean;
using namespace privateclean::bench;

int main() {
  SyntheticOptions options;  // S=1000, N=50, z=2.
  Rng data_rng(42);
  Table count_base = *GenerateSynthetic(options, data_rng);
  SyntheticOptions sum_options = options;
  sum_options.correlated = true;  // See §5.5 / fig2 note.
  Rng sum_rng(43);
  Table sum_base = *GenerateSynthetic(sum_options, sum_rng);

  const std::vector<double> error_rates{0.0, 0.1, 0.2, 0.3, 0.4, 0.5};

  auto run_panel = [&](bool sum_query) {
    Series pc{"PrivateClean", {}};
    Series direct{"Direct", {}};
    for (double rate : error_rates) {
      Rng inject_rng(5000 + static_cast<uint64_t>(rate * 100));
      const Table& base = sum_query ? sum_base : count_base;
      InjectionResult injected = *InjectMixedErrors(
          base, "category", rate, /*merge_fraction=*/0.5, inject_rng);
      auto repair_map = injected.repair_map;
      RandomQuerySpec spec;
      spec.data = &injected.dirty;
      spec.truth_table = &injected.clean;
      spec.params = GrrParams::Uniform(0.1, 10.0);
      spec.clean = [repair_map](PrivateTable& pt) {
        return pt.Clean(FindReplace("category", repair_map));
      };
      const Table* clean_table = &injected.clean;
      spec.make_query = [sum_query, clean_table](Rng& rng) {
        // Queries are phrased over the cleaned domain.
        Domain clean_domain =
            *Domain::FromColumn(*clean_table, "category");
        std::vector<size_t> idx(clean_domain.size());
        for (size_t i = 0; i < idx.size(); ++i) idx[i] = i;
        rng.Shuffle(idx);
        std::vector<Value> values;
        for (size_t i = 0; i < std::min<size_t>(5, idx.size()); ++i) {
          values.push_back(clean_domain.value(idx[i]));
        }
        Predicate pred = Predicate::In("category", values);
        return sum_query ? AggregateQuery::Sum("value", pred)
                         : AggregateQuery::Count(pred);
      };
      spec.num_queries = 15;
      spec.trials_per_query = 12;
      spec.query_seed = 4245;
      spec.min_predicate_rows = 50;
      spec.seed_base = 31000 + static_cast<uint64_t>(rate * 1000);
      auto r = RunRandomQueryComparison(spec);
      pc.values.push_back(r.ok() ? r->privateclean_pct : -1);
      direct.values.push_back(r.ok() ? r->direct_pct : -1);
    }
    return std::vector<Series>{pc, direct};
  };

  PrintFigure(
      "Figure 5a: count error %% vs data error rate (p=0.1, b=10)",
      "error rate", error_rates, run_panel(false));
  PrintFigure(
      "Figure 5b: sum error %% vs data error rate (p=0.1, b=10)",
      "error rate", error_rates, run_panel(true));
  return 0;
}
