// Figure 2: relative query result error as a function of the privacy
// parameters (p, b) on the synthetic dataset (paper §8.3.1, defaults
// from Appendix D). Four panels:
//   2a  count error vs discrete privacy p
//   2b  sum   error vs discrete privacy p
//   2c  count error vs numerical privacy b (flat: count ignores b)
//   2d  sum   error vs numerical privacy b (re-weighting gains shrink as
//       the Laplace variance dominates)

#include <cstdio>

#include "bench/harness.h"
#include "datagen/synthetic.h"

using namespace privateclean;
using namespace privateclean::bench;

namespace {

constexpr size_t kNumDistinct = 50;
constexpr size_t kPredicateValues = 5;  // 10% distinct selectivity.

AggregateQuery MakeCountQuery(Rng& rng) {
  return AggregateQuery::Count(Predicate::In(
      "category",
      PickPredicateCategories(kNumDistinct, kPredicateValues, 2, rng)));
}

AggregateQuery MakeSumQuery(Rng& rng) {
  return AggregateQuery::Sum(
      "value", Predicate::In("category", PickPredicateCategories(
                                 kNumDistinct, kPredicateValues, 2, rng)));
}

}  // namespace

int main() {
  SyntheticOptions options;  // Paper defaults: S=1000, N=50, z=2.
  Rng data_rng(42);
  Table data = *GenerateSynthetic(options, data_rng);
  // Sum panels use the correlated variant: the sum-estimation challenge
  // is correlation between the numeric and discrete attributes (§5.5);
  // without it the Direct sum bias vanishes and there is nothing to
  // correct.
  SyntheticOptions sum_options = options;
  sum_options.correlated = true;
  Rng sum_rng(43);
  Table sum_data = *GenerateSynthetic(sum_options, sum_rng);

  const std::vector<double> p_values{0.05, 0.1, 0.15, 0.2, 0.25,
                                     0.3,  0.35, 0.4, 0.45, 0.5};
  const std::vector<double> b_values{0.0, 5.0, 10.0, 15.0, 20.0,
                                     25.0, 30.0, 40.0, 50.0};

  auto run_panel = [&](bool sweep_p, bool sum_query,
                       const std::vector<double>& xs) {
    Series pc{"PrivateClean", {}};
    Series direct{"Direct", {}};
    for (double x : xs) {
      RandomQuerySpec spec;
      spec.data = sum_query ? &sum_data : &data;
      spec.params = sweep_p ? GrrParams::Uniform(x, 10.0)
                            : GrrParams::Uniform(0.1, x);
      spec.make_query = sum_query ? MakeSumQuery : MakeCountQuery;
      spec.num_queries = 10;
      spec.trials_per_query = 10;  // 100 instances per point (App. D).
      spec.query_seed = 4242;
      spec.min_predicate_rows = 50;
      spec.seed_base = 9000 + static_cast<uint64_t>(x * 1000);
      auto r = RunRandomQueryComparison(spec);
      if (!r.ok()) {
        std::fprintf(stderr, "point failed: %s\n",
                     r.status().ToString().c_str());
        pc.values.push_back(-1);
        direct.values.push_back(-1);
        continue;
      }
      pc.values.push_back(r->privateclean_pct);
      direct.values.push_back(r->direct_pct);
    }
    return std::vector<Series>{pc, direct};
  };

  PrintFigure("Figure 2a: count error %% vs discrete privacy p (b=10)",
              "p", p_values, run_panel(true, false, p_values));
  PrintFigure("Figure 2b: sum error %% vs discrete privacy p (b=10)",
              "p", p_values, run_panel(true, true, p_values));
  PrintFigure("Figure 2c: count error %% vs numerical privacy b (p=0.1)",
              "b", b_values, run_panel(false, false, b_values));
  PrintFigure("Figure 2d: sum error %% vs numerical privacy b (p=0.1)",
              "b", b_values, run_panel(false, true, b_values));
  return 0;
}
