// Figure 4: error as a function of data skew (Zipfian parameter z),
// paper §8.3.1. PrivateClean's advantage over Direct grows with skew;
// at z ~ 0 (uniform) re-weighting buys nothing for count queries.

#include <cstdio>

#include "bench/harness.h"
#include "datagen/synthetic.h"

using namespace privateclean;
using namespace privateclean::bench;

int main() {
  const std::vector<double> skews{0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0};

  auto run_panel = [&](bool sum_query) {
    Series pc{"PrivateClean", {}};
    Series direct{"Direct", {}};
    for (double z : skews) {
      SyntheticOptions options;
      options.zipf_skew = z;
      options.correlated = sum_query;  // See §5.5 / fig2 note.
      Rng data_rng(42 + static_cast<uint64_t>(z * 10));
      Table data = *GenerateSynthetic(options, data_rng);
      RandomQuerySpec spec;
      spec.data = &data;
      spec.params = GrrParams::Uniform(0.1, 10.0);
      spec.make_query = [sum_query](Rng& rng) {
        Predicate pred = Predicate::In(
            "category", PickPredicateCategories(50, 5, 2, rng));
        return sum_query ? AggregateQuery::Sum("value", pred)
                         : AggregateQuery::Count(pred);
      };
      spec.num_queries = 10;
      spec.trials_per_query = 10;
      spec.query_seed = 4244;
      spec.min_predicate_rows = 50;
      spec.seed_base = 23000 + static_cast<uint64_t>(z * 100);
      auto r = RunRandomQueryComparison(spec);
      pc.values.push_back(r.ok() ? r->privateclean_pct : -1);
      direct.values.push_back(r.ok() ? r->direct_pct : -1);
    }
    return std::vector<Series>{pc, direct};
  };

  PrintFigure("Figure 4a: count error %% vs Zipfian skew z (p=0.1, b=10)",
              "z", skews, run_panel(false));
  PrintFigure("Figure 4b: sum error %% vs Zipfian skew z (p=0.1, b=10)",
              "z", skews, run_panel(true));
  return 0;
}
