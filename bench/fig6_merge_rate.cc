// Figure 6: error as a function of the merge rate — the fraction of the
// erroneous values whose repair merges them into *other existing*
// distinct values rather than renaming them back (paper §8.3.2).
// Provenance is most valuable when cleaned values are merged together:
// merges change the predicate's distinct-value selectivity, which Direct
// has no way to see, so its error grows with the merge rate while
// PrivateClean stays flat.

#include <cstdio>

#include "bench/harness.h"
#include "cleaning/merge.h"
#include "datagen/error_injection.h"
#include "datagen/synthetic.h"

using namespace privateclean;
using namespace privateclean::bench;

int main() {
  SyntheticOptions options;  // S=1000, N=50, z=2.
  Rng data_rng(42);
  Table count_base = *GenerateSynthetic(options, data_rng);
  SyntheticOptions sum_options = options;
  sum_options.correlated = true;  // See §5.5 / fig2 note.
  Rng sum_rng(43);
  Table sum_base = *GenerateSynthetic(sum_options, sum_rng);

  constexpr double kErrorRate = 0.5;  // Fixed total fraction of errors.
  const std::vector<double> merge_fractions{0.0, 0.2, 0.4, 0.6, 0.8, 1.0};

  auto run_panel = [&](bool sum_query) {
    Series pc{"PrivateClean", {}};
    Series direct{"Direct", {}};
    for (double merge_fraction : merge_fractions) {
      Rng inject_rng(6000 + static_cast<uint64_t>(merge_fraction * 100));
      const Table& base = sum_query ? sum_base : count_base;
      InjectionResult injected = *InjectMixedErrors(
          base, "category", kErrorRate, merge_fraction, inject_rng);
      auto repair_map = injected.repair_map;
      RandomQuerySpec spec;
      spec.data = &injected.dirty;
      spec.truth_table = &injected.clean;
      spec.params = GrrParams::Uniform(0.1, 10.0);
      spec.clean = [repair_map](PrivateTable& pt) {
        return pt.Clean(FindReplace("category", repair_map));
      };
      const Table* clean_table = &injected.clean;
      spec.make_query = [sum_query, clean_table](Rng& rng) {
        Domain clean_domain =
            *Domain::FromColumn(*clean_table, "category");
        std::vector<size_t> idx(clean_domain.size());
        for (size_t i = 0; i < idx.size(); ++i) idx[i] = i;
        rng.Shuffle(idx);
        std::vector<Value> values;
        for (size_t i = 0; i < std::min<size_t>(5, idx.size()); ++i) {
          values.push_back(clean_domain.value(idx[i]));
        }
        Predicate pred = Predicate::In("category", values);
        return sum_query ? AggregateQuery::Sum("value", pred)
                         : AggregateQuery::Count(pred);
      };
      spec.num_queries = 15;
      spec.trials_per_query = 12;
      spec.query_seed = 4246;
      spec.min_predicate_rows = 50;
      spec.seed_base = 37000 + static_cast<uint64_t>(merge_fraction * 1000);
      auto r = RunRandomQueryComparison(spec);
      pc.values.push_back(r.ok() ? r->privateclean_pct : -1);
      direct.values.push_back(r.ok() ? r->direct_pct : -1);
    }
    return std::vector<Series>{pc, direct};
  };

  PrintFigure(
      "Figure 6a: count error %% vs merge rate (error rate 0.5, p=0.1)",
      "merge rate", merge_fractions, run_panel(false));
  PrintFigure(
      "Figure 6b: sum error %% vs merge rate (error rate 0.5, p=0.1)",
      "merge rate", merge_fractions, run_panel(true));
  return 0;
}
