#ifndef PRIVATECLEAN_BENCH_HARNESS_H_
#define PRIVATECLEAN_BENCH_HARNESS_H_

#include <functional>
#include <string>
#include <vector>

#include "core/privateclean.h"

namespace privateclean {
namespace bench {

/// One line series of a figure: relative error % per swept x value.
struct Series {
  std::string name;
  std::vector<double> values;
};

/// Prints a paper-style figure as an aligned ASCII table: one row per x
/// value, one column per series (mean relative error %).
void PrintFigure(const std::string& title, const std::string& x_label,
                 const std::vector<double>& xs,
                 const std::vector<Series>& series);

/// Specification of one experiment point: privatize `data` with `params`,
/// optionally clean, run `query` against the PrivateClean and Direct
/// estimators, and compare with `truth` (the query on the hypothetically
/// cleaned non-private relation). The paper averages over 100 random
/// private instances (Appendix D); `trials` controls that.
struct ComparisonSpec {
  const Table* data = nullptr;
  GrrParams params;
  GrrOptions grr_options;
  /// Applied to each fresh private table; may be empty.
  std::function<Status(PrivateTable&)> clean;
  AggregateQuery query;
  double truth = 0.0;
  int trials = 100;
  uint64_t seed_base = 10000;
  /// Also evaluate the unweighted-cut variant (PC-U, Figure 7).
  bool include_unweighted = false;
};

/// Mean relative error % per estimator over the trials.
struct ComparisonResult {
  double privateclean_pct = 0.0;
  double direct_pct = 0.0;
  double unweighted_pct = 0.0;  ///< Only when include_unweighted.
  int failed_trials = 0;        ///< Trials skipped due to errors.
};

/// Runs the comparison. Trials whose queries error out (e.g. degenerate
/// counts) are skipped and counted in failed_trials.
Result<ComparisonResult> RunComparison(const ComparisonSpec& spec);

/// Appendix D protocol: "for each instance we run a randomly selected
/// query". Draws `num_queries` random queries, computes each query's
/// ground truth on `truth_table` (the hypothetically cleaned non-private
/// relation; defaults to `data`), runs `trials_per_query` private
/// instances per query, and averages the relative errors.
struct RandomQuerySpec {
  const Table* data = nullptr;
  const Table* truth_table = nullptr;  ///< Defaults to data.
  GrrParams params;
  GrrOptions grr_options;
  std::function<Status(PrivateTable&)> clean;
  /// Draws one query (deterministic given the Rng).
  std::function<AggregateQuery(Rng&)> make_query;
  int num_queries = 10;
  int trials_per_query = 10;
  /// Seed for *query drawing* — keep it constant across the points of a
  /// sweep so every x value is evaluated on the same query set and the
  /// curves are comparable.
  uint64_t query_seed = 777;
  /// Seed base for the private-instance randomness.
  uint64_t seed_base = 10000;
  bool include_unweighted = false;
  /// Queries whose predicate matches fewer than this many rows of the
  /// truth table are redrawn (the paper's queries have ~10% selectivity;
  /// unsupported predicates make relative error meaningless).
  size_t min_predicate_rows = 0;
};

Result<ComparisonResult> RunRandomQueryComparison(
    const RandomQuerySpec& spec);

}  // namespace bench
}  // namespace privateclean

#endif  // PRIVATECLEAN_BENCH_HARNESS_H_
