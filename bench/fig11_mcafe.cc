// Figure 11: the MCAFE workload (paper §8.5, simulated per DESIGN.md).
// The analyst aggregates European countries on the private relation —
// a semantic transformation only possible because GRR keeps values
// human-readable:
//   SELECT count(1)          FROM R WHERE isEurope(country)
//   SELECT avg(enthusiasm)   FROM R WHERE isEurope(country)
// The distinct fraction is high (~21%), the paper's hard regime.

#include <cmath>
#include <cstdio>

#include "bench/harness.h"
#include "datagen/mcafe.h"
#include "privacy/laplace_mechanism.h"

using namespace privateclean;
using namespace privateclean::bench;

int main() {
  Rng data_rng(406);
  Table data = *GenerateMcafe(McafeOptions{}, data_rng);

  Predicate europe = Predicate::Udf("country", McafeIsEurope);
  double truth_count =
      *ExecuteAggregate(data, AggregateQuery::Count(europe));
  double truth_avg =
      *ExecuteAggregate(data, AggregateQuery::Avg("enthusiasm", europe));
  std::printf("MCAFE: %zu rows, truth count(isEurope)=%.0f, "
              "avg(enthusiasm|Europe)=%.3f\n",
              data.num_rows(), truth_count, truth_avg);

  const std::vector<double> p_values{0.05, 0.1, 0.15, 0.2, 0.3, 0.4};
  Series count_pc{"PC count", {}}, count_direct{"Direct count", {}};
  Series avg_pc{"PC avg", {}}, avg_direct{"Direct avg", {}};

  double delta = *ColumnSensitivity(**data.ColumnByName("enthusiasm"));
  for (double p : p_values) {
    double eps = std::log(3.0 / p - 2.0);
    GrrParams params;
    params.default_p = p;
    params.numeric_b["enthusiasm"] = eps > 0.0 ? delta / eps : 0.0;

    auto run = [&](const AggregateQuery& query, double truth, Series* pc,
                   Series* direct) {
      ComparisonSpec spec;
      spec.data = &data;
      spec.params = params;
      // High distinct fraction violates the Theorem 2 bound; like the
      // paper, run anyway (the regime is the point of the experiment).
      spec.grr_options.ensure_domain_preserved = false;
      spec.query = query;
      spec.truth = truth;
      spec.trials = 100;
      spec.seed_base = 67000 + static_cast<uint64_t>(p * 1000);
      auto r = RunComparison(spec);
      pc->values.push_back(r.ok() ? r->privateclean_pct : -1);
      direct->values.push_back(r.ok() ? r->direct_pct : -1);
    };
    run(AggregateQuery::Count(europe), truth_count, &count_pc,
        &count_direct);
    run(AggregateQuery::Avg("enthusiasm", europe), truth_avg, &avg_pc,
        &avg_direct);
  }

  PrintFigure(
      "Figure 11 (count): MCAFE count(isEurope) error %% vs privacy p",
      "p", p_values, {count_pc, count_direct});
  PrintFigure(
      "Figure 11 (avg): MCAFE avg(enthusiasm) error %% vs privacy p",
      "p", p_values, {avg_pc, avg_direct});
  return 0;
}
