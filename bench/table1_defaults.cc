// Table 1 / worked examples: prints the synthetic-experiment default
// parameters (Appendix D) and validates the paper's worked numeric
// examples — Theorem 2's dataset-size bound (Example 3) and the COUNT
// estimator (Example 4).

#include <cmath>
#include <cstdio>

#include "bench/harness.h"
#include "privacy/size_bound.h"

using namespace privateclean;

int main() {
  std::printf("=== Table 1: default parameters in the synthetic "
              "experiment (Appendix D) ===\n");
  std::printf("%-8s %-14s %s\n", "Symbol", "Default", "Meaning");
  std::printf("%-8s %-14s %s\n", "p", "0.1",
              "Discrete privacy parameter");
  std::printf("%-8s %-14s %s\n", "b", "10",
              "Numerical privacy parameter");
  std::printf("%-8s %-14s %s\n", "N", "50", "Number of distinct values");
  std::printf("%-8s %-14s %s\n", "S", "1000", "Number of total records");
  std::printf("%-8s %-14s %s\n", "l", "5",
              "Distinct values selected by predicate");
  std::printf("%-8s %-14s %s\n", "z", "2", "Zipfian skew");
  std::printf("(100 random private instances per plotted point)\n");

  std::printf("\n=== Example 3: Theorem 2 dataset-size bound "
              "(N=25, p=0.25) ===\n");
  size_t s95 = *MinDatasetSizeForDomainPreservation(25, 0.25, 0.05);
  size_t s99 = *MinDatasetSizeForDomainPreservation(25, 0.25, 0.01);
  std::printf("  closed form  S(95%%) = %zu, S(99%%) = %zu\n", s95, s99);
  size_t e95 = *MinDatasetSizeExact(25, 0.25, 0.05);
  size_t e99 = *MinDatasetSizeExact(25, 0.25, 0.01);
  std::printf("  exact union-bound inversion  S(95%%) = %zu, "
              "S(99%%) = %zu\n", e95, e99);
  std::printf("  paper reports 391 / 552; those equal (N/p)*ln(pN/alpha)\n"
              "  evaluated with pN = 2.5 (i.e. p = 0.1, the Appendix D\n"
              "  default) rather than p = 0.25 - the formula itself\n"
              "  matches: (100)*ln(50) = %.1f, (100)*ln(250) = %.1f\n",
              100.0 * std::log(50.0), 100.0 * std::log(250.0));
  std::printf("  domain-preservation probability at S=391: >= %.4f\n",
              *DomainPreservationLowerBound(25, 0.25, 391));
  std::printf("  expected regenerations at S=391: %.3f\n",
              *ExpectedRegenerations(25, 0.25, 391));

  std::printf("\n=== Example 4: COUNT estimator "
              "(p=0.25, N=25, l=10, S=500, c_private=300) ===\n");
  QueryScanStats stats;
  stats.total_rows = 500;
  stats.matching_rows = 300;
  EstimationInputs in;
  in.p = 0.25;
  in.l = 10.0;
  in.n = 25.0;
  QueryResult r = *EstimateCount(stats, in);
  std::printf("  estimate = %.1f (paper: 333.3)\n", r.estimate);
  std::printf("  95%% CI [%.1f, %.1f]\n", r.ci.lo, r.ci.hi);
  return 0;
}
