# Empty compiler generated dependencies file for privateclean_provenance.
# This may be replaced when dependencies are built.
