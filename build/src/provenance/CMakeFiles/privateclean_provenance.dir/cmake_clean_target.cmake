file(REMOVE_RECURSE
  "libprivateclean_provenance.a"
)
