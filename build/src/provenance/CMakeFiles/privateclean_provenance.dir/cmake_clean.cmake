file(REMOVE_RECURSE
  "CMakeFiles/privateclean_provenance.dir/provenance_graph.cc.o"
  "CMakeFiles/privateclean_provenance.dir/provenance_graph.cc.o.d"
  "CMakeFiles/privateclean_provenance.dir/provenance_manager.cc.o"
  "CMakeFiles/privateclean_provenance.dir/provenance_manager.cc.o.d"
  "libprivateclean_provenance.a"
  "libprivateclean_provenance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/privateclean_provenance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
