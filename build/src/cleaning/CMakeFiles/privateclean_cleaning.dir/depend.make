# Empty dependencies file for privateclean_cleaning.
# This may be replaced when dependencies are built.
