file(REMOVE_RECURSE
  "CMakeFiles/privateclean_cleaning.dir/cleaner.cc.o"
  "CMakeFiles/privateclean_cleaning.dir/cleaner.cc.o.d"
  "CMakeFiles/privateclean_cleaning.dir/constraints.cc.o"
  "CMakeFiles/privateclean_cleaning.dir/constraints.cc.o.d"
  "CMakeFiles/privateclean_cleaning.dir/extract.cc.o"
  "CMakeFiles/privateclean_cleaning.dir/extract.cc.o.d"
  "CMakeFiles/privateclean_cleaning.dir/fd_repair.cc.o"
  "CMakeFiles/privateclean_cleaning.dir/fd_repair.cc.o.d"
  "CMakeFiles/privateclean_cleaning.dir/md_repair.cc.o"
  "CMakeFiles/privateclean_cleaning.dir/md_repair.cc.o.d"
  "CMakeFiles/privateclean_cleaning.dir/merge.cc.o"
  "CMakeFiles/privateclean_cleaning.dir/merge.cc.o.d"
  "CMakeFiles/privateclean_cleaning.dir/pipeline.cc.o"
  "CMakeFiles/privateclean_cleaning.dir/pipeline.cc.o.d"
  "CMakeFiles/privateclean_cleaning.dir/transform.cc.o"
  "CMakeFiles/privateclean_cleaning.dir/transform.cc.o.d"
  "libprivateclean_cleaning.a"
  "libprivateclean_cleaning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/privateclean_cleaning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
