file(REMOVE_RECURSE
  "libprivateclean_cleaning.a"
)
