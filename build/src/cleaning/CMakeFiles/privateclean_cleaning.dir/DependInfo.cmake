
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cleaning/cleaner.cc" "src/cleaning/CMakeFiles/privateclean_cleaning.dir/cleaner.cc.o" "gcc" "src/cleaning/CMakeFiles/privateclean_cleaning.dir/cleaner.cc.o.d"
  "/root/repo/src/cleaning/constraints.cc" "src/cleaning/CMakeFiles/privateclean_cleaning.dir/constraints.cc.o" "gcc" "src/cleaning/CMakeFiles/privateclean_cleaning.dir/constraints.cc.o.d"
  "/root/repo/src/cleaning/extract.cc" "src/cleaning/CMakeFiles/privateclean_cleaning.dir/extract.cc.o" "gcc" "src/cleaning/CMakeFiles/privateclean_cleaning.dir/extract.cc.o.d"
  "/root/repo/src/cleaning/fd_repair.cc" "src/cleaning/CMakeFiles/privateclean_cleaning.dir/fd_repair.cc.o" "gcc" "src/cleaning/CMakeFiles/privateclean_cleaning.dir/fd_repair.cc.o.d"
  "/root/repo/src/cleaning/md_repair.cc" "src/cleaning/CMakeFiles/privateclean_cleaning.dir/md_repair.cc.o" "gcc" "src/cleaning/CMakeFiles/privateclean_cleaning.dir/md_repair.cc.o.d"
  "/root/repo/src/cleaning/merge.cc" "src/cleaning/CMakeFiles/privateclean_cleaning.dir/merge.cc.o" "gcc" "src/cleaning/CMakeFiles/privateclean_cleaning.dir/merge.cc.o.d"
  "/root/repo/src/cleaning/pipeline.cc" "src/cleaning/CMakeFiles/privateclean_cleaning.dir/pipeline.cc.o" "gcc" "src/cleaning/CMakeFiles/privateclean_cleaning.dir/pipeline.cc.o.d"
  "/root/repo/src/cleaning/transform.cc" "src/cleaning/CMakeFiles/privateclean_cleaning.dir/transform.cc.o" "gcc" "src/cleaning/CMakeFiles/privateclean_cleaning.dir/transform.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/table/CMakeFiles/privateclean_table.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/privateclean_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
