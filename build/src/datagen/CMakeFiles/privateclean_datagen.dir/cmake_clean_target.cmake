file(REMOVE_RECURSE
  "libprivateclean_datagen.a"
)
