
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datagen/error_injection.cc" "src/datagen/CMakeFiles/privateclean_datagen.dir/error_injection.cc.o" "gcc" "src/datagen/CMakeFiles/privateclean_datagen.dir/error_injection.cc.o.d"
  "/root/repo/src/datagen/intel_wireless.cc" "src/datagen/CMakeFiles/privateclean_datagen.dir/intel_wireless.cc.o" "gcc" "src/datagen/CMakeFiles/privateclean_datagen.dir/intel_wireless.cc.o.d"
  "/root/repo/src/datagen/mcafe.cc" "src/datagen/CMakeFiles/privateclean_datagen.dir/mcafe.cc.o" "gcc" "src/datagen/CMakeFiles/privateclean_datagen.dir/mcafe.cc.o.d"
  "/root/repo/src/datagen/names.cc" "src/datagen/CMakeFiles/privateclean_datagen.dir/names.cc.o" "gcc" "src/datagen/CMakeFiles/privateclean_datagen.dir/names.cc.o.d"
  "/root/repo/src/datagen/synthetic.cc" "src/datagen/CMakeFiles/privateclean_datagen.dir/synthetic.cc.o" "gcc" "src/datagen/CMakeFiles/privateclean_datagen.dir/synthetic.cc.o.d"
  "/root/repo/src/datagen/tpcds.cc" "src/datagen/CMakeFiles/privateclean_datagen.dir/tpcds.cc.o" "gcc" "src/datagen/CMakeFiles/privateclean_datagen.dir/tpcds.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/table/CMakeFiles/privateclean_table.dir/DependInfo.cmake"
  "/root/repo/build/src/cleaning/CMakeFiles/privateclean_cleaning.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/privateclean_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
