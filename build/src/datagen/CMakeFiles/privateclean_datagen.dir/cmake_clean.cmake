file(REMOVE_RECURSE
  "CMakeFiles/privateclean_datagen.dir/error_injection.cc.o"
  "CMakeFiles/privateclean_datagen.dir/error_injection.cc.o.d"
  "CMakeFiles/privateclean_datagen.dir/intel_wireless.cc.o"
  "CMakeFiles/privateclean_datagen.dir/intel_wireless.cc.o.d"
  "CMakeFiles/privateclean_datagen.dir/mcafe.cc.o"
  "CMakeFiles/privateclean_datagen.dir/mcafe.cc.o.d"
  "CMakeFiles/privateclean_datagen.dir/names.cc.o"
  "CMakeFiles/privateclean_datagen.dir/names.cc.o.d"
  "CMakeFiles/privateclean_datagen.dir/synthetic.cc.o"
  "CMakeFiles/privateclean_datagen.dir/synthetic.cc.o.d"
  "CMakeFiles/privateclean_datagen.dir/tpcds.cc.o"
  "CMakeFiles/privateclean_datagen.dir/tpcds.cc.o.d"
  "libprivateclean_datagen.a"
  "libprivateclean_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/privateclean_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
