# Empty dependencies file for privateclean_datagen.
# This may be replaced when dependencies are built.
