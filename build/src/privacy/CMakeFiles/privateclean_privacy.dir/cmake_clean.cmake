file(REMOVE_RECURSE
  "CMakeFiles/privateclean_privacy.dir/accountant.cc.o"
  "CMakeFiles/privateclean_privacy.dir/accountant.cc.o.d"
  "CMakeFiles/privateclean_privacy.dir/allocation.cc.o"
  "CMakeFiles/privateclean_privacy.dir/allocation.cc.o.d"
  "CMakeFiles/privateclean_privacy.dir/grr.cc.o"
  "CMakeFiles/privateclean_privacy.dir/grr.cc.o.d"
  "CMakeFiles/privateclean_privacy.dir/laplace_mechanism.cc.o"
  "CMakeFiles/privateclean_privacy.dir/laplace_mechanism.cc.o.d"
  "CMakeFiles/privateclean_privacy.dir/privacy_params.cc.o"
  "CMakeFiles/privateclean_privacy.dir/privacy_params.cc.o.d"
  "CMakeFiles/privateclean_privacy.dir/randomized_response.cc.o"
  "CMakeFiles/privateclean_privacy.dir/randomized_response.cc.o.d"
  "CMakeFiles/privateclean_privacy.dir/size_bound.cc.o"
  "CMakeFiles/privateclean_privacy.dir/size_bound.cc.o.d"
  "CMakeFiles/privateclean_privacy.dir/tuning.cc.o"
  "CMakeFiles/privateclean_privacy.dir/tuning.cc.o.d"
  "libprivateclean_privacy.a"
  "libprivateclean_privacy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/privateclean_privacy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
