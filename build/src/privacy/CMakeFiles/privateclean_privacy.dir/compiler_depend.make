# Empty compiler generated dependencies file for privateclean_privacy.
# This may be replaced when dependencies are built.
