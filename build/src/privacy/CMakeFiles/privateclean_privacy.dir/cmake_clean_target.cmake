file(REMOVE_RECURSE
  "libprivateclean_privacy.a"
)
