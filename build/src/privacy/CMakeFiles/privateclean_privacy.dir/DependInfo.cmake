
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/privacy/accountant.cc" "src/privacy/CMakeFiles/privateclean_privacy.dir/accountant.cc.o" "gcc" "src/privacy/CMakeFiles/privateclean_privacy.dir/accountant.cc.o.d"
  "/root/repo/src/privacy/allocation.cc" "src/privacy/CMakeFiles/privateclean_privacy.dir/allocation.cc.o" "gcc" "src/privacy/CMakeFiles/privateclean_privacy.dir/allocation.cc.o.d"
  "/root/repo/src/privacy/grr.cc" "src/privacy/CMakeFiles/privateclean_privacy.dir/grr.cc.o" "gcc" "src/privacy/CMakeFiles/privateclean_privacy.dir/grr.cc.o.d"
  "/root/repo/src/privacy/laplace_mechanism.cc" "src/privacy/CMakeFiles/privateclean_privacy.dir/laplace_mechanism.cc.o" "gcc" "src/privacy/CMakeFiles/privateclean_privacy.dir/laplace_mechanism.cc.o.d"
  "/root/repo/src/privacy/privacy_params.cc" "src/privacy/CMakeFiles/privateclean_privacy.dir/privacy_params.cc.o" "gcc" "src/privacy/CMakeFiles/privateclean_privacy.dir/privacy_params.cc.o.d"
  "/root/repo/src/privacy/randomized_response.cc" "src/privacy/CMakeFiles/privateclean_privacy.dir/randomized_response.cc.o" "gcc" "src/privacy/CMakeFiles/privateclean_privacy.dir/randomized_response.cc.o.d"
  "/root/repo/src/privacy/size_bound.cc" "src/privacy/CMakeFiles/privateclean_privacy.dir/size_bound.cc.o" "gcc" "src/privacy/CMakeFiles/privateclean_privacy.dir/size_bound.cc.o.d"
  "/root/repo/src/privacy/tuning.cc" "src/privacy/CMakeFiles/privateclean_privacy.dir/tuning.cc.o" "gcc" "src/privacy/CMakeFiles/privateclean_privacy.dir/tuning.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/table/CMakeFiles/privateclean_table.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/privateclean_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
