file(REMOVE_RECURSE
  "CMakeFiles/privateclean_table.dir/column.cc.o"
  "CMakeFiles/privateclean_table.dir/column.cc.o.d"
  "CMakeFiles/privateclean_table.dir/csv.cc.o"
  "CMakeFiles/privateclean_table.dir/csv.cc.o.d"
  "CMakeFiles/privateclean_table.dir/domain.cc.o"
  "CMakeFiles/privateclean_table.dir/domain.cc.o.d"
  "CMakeFiles/privateclean_table.dir/schema.cc.o"
  "CMakeFiles/privateclean_table.dir/schema.cc.o.d"
  "CMakeFiles/privateclean_table.dir/table.cc.o"
  "CMakeFiles/privateclean_table.dir/table.cc.o.d"
  "CMakeFiles/privateclean_table.dir/table_builder.cc.o"
  "CMakeFiles/privateclean_table.dir/table_builder.cc.o.d"
  "CMakeFiles/privateclean_table.dir/value.cc.o"
  "CMakeFiles/privateclean_table.dir/value.cc.o.d"
  "libprivateclean_table.a"
  "libprivateclean_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/privateclean_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
