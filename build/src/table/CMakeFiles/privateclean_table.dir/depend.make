# Empty dependencies file for privateclean_table.
# This may be replaced when dependencies are built.
