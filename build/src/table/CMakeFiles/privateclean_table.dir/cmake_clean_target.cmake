file(REMOVE_RECURSE
  "libprivateclean_table.a"
)
