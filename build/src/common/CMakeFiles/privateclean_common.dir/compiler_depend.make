# Empty compiler generated dependencies file for privateclean_common.
# This may be replaced when dependencies are built.
