file(REMOVE_RECURSE
  "libprivateclean_common.a"
)
