file(REMOVE_RECURSE
  "CMakeFiles/privateclean_common.dir/edit_distance.cc.o"
  "CMakeFiles/privateclean_common.dir/edit_distance.cc.o.d"
  "CMakeFiles/privateclean_common.dir/random.cc.o"
  "CMakeFiles/privateclean_common.dir/random.cc.o.d"
  "CMakeFiles/privateclean_common.dir/statistics.cc.o"
  "CMakeFiles/privateclean_common.dir/statistics.cc.o.d"
  "CMakeFiles/privateclean_common.dir/status.cc.o"
  "CMakeFiles/privateclean_common.dir/status.cc.o.d"
  "CMakeFiles/privateclean_common.dir/string_util.cc.o"
  "CMakeFiles/privateclean_common.dir/string_util.cc.o.d"
  "libprivateclean_common.a"
  "libprivateclean_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/privateclean_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
