# Empty dependencies file for privateclean_query.
# This may be replaced when dependencies are built.
