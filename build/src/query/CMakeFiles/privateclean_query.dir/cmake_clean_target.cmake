file(REMOVE_RECURSE
  "libprivateclean_query.a"
)
