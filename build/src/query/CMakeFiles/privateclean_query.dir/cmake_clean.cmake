file(REMOVE_RECURSE
  "CMakeFiles/privateclean_query.dir/aggregate.cc.o"
  "CMakeFiles/privateclean_query.dir/aggregate.cc.o.d"
  "CMakeFiles/privateclean_query.dir/predicate.cc.o"
  "CMakeFiles/privateclean_query.dir/predicate.cc.o.d"
  "CMakeFiles/privateclean_query.dir/sql.cc.o"
  "CMakeFiles/privateclean_query.dir/sql.cc.o.d"
  "libprivateclean_query.a"
  "libprivateclean_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/privateclean_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
