file(REMOVE_RECURSE
  "CMakeFiles/privateclean_core.dir/conjunctive.cc.o"
  "CMakeFiles/privateclean_core.dir/conjunctive.cc.o.d"
  "CMakeFiles/privateclean_core.dir/estimators.cc.o"
  "CMakeFiles/privateclean_core.dir/estimators.cc.o.d"
  "CMakeFiles/privateclean_core.dir/private_table.cc.o"
  "CMakeFiles/privateclean_core.dir/private_table.cc.o.d"
  "CMakeFiles/privateclean_core.dir/release.cc.o"
  "CMakeFiles/privateclean_core.dir/release.cc.o.d"
  "CMakeFiles/privateclean_core.dir/sql_execution.cc.o"
  "CMakeFiles/privateclean_core.dir/sql_execution.cc.o.d"
  "libprivateclean_core.a"
  "libprivateclean_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/privateclean_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
