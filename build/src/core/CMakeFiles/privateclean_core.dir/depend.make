# Empty dependencies file for privateclean_core.
# This may be replaced when dependencies are built.
