file(REMOVE_RECURSE
  "libprivateclean_core.a"
)
