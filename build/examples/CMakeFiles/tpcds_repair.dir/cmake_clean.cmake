file(REMOVE_RECURSE
  "CMakeFiles/tpcds_repair.dir/tpcds_repair.cpp.o"
  "CMakeFiles/tpcds_repair.dir/tpcds_repair.cpp.o.d"
  "tpcds_repair"
  "tpcds_repair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpcds_repair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
