# Empty dependencies file for tpcds_repair.
# This may be replaced when dependencies are built.
