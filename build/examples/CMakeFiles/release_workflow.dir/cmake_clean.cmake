file(REMOVE_RECURSE
  "CMakeFiles/release_workflow.dir/release_workflow.cpp.o"
  "CMakeFiles/release_workflow.dir/release_workflow.cpp.o.d"
  "release_workflow"
  "release_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/release_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
