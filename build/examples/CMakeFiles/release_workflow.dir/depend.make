# Empty dependencies file for release_workflow.
# This may be replaced when dependencies are built.
