# Empty dependencies file for course_evaluations.
# This may be replaced when dependencies are built.
