file(REMOVE_RECURSE
  "CMakeFiles/course_evaluations.dir/course_evaluations.cpp.o"
  "CMakeFiles/course_evaluations.dir/course_evaluations.cpp.o.d"
  "course_evaluations"
  "course_evaluations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/course_evaluations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
