file(REMOVE_RECURSE
  "CMakeFiles/column_test.dir/column_test.cc.o"
  "CMakeFiles/column_test.dir/column_test.cc.o.d"
  "column_test"
  "column_test.pdb"
  "column_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/column_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
