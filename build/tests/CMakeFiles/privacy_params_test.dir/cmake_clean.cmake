file(REMOVE_RECURSE
  "CMakeFiles/privacy_params_test.dir/privacy_params_test.cc.o"
  "CMakeFiles/privacy_params_test.dir/privacy_params_test.cc.o.d"
  "privacy_params_test"
  "privacy_params_test.pdb"
  "privacy_params_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/privacy_params_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
