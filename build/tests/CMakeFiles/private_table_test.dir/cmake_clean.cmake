file(REMOVE_RECURSE
  "CMakeFiles/private_table_test.dir/private_table_test.cc.o"
  "CMakeFiles/private_table_test.dir/private_table_test.cc.o.d"
  "private_table_test"
  "private_table_test.pdb"
  "private_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/private_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
