# Empty compiler generated dependencies file for private_table_test.
# This may be replaced when dependencies are built.
