file(REMOVE_RECURSE
  "CMakeFiles/grr_test.dir/grr_test.cc.o"
  "CMakeFiles/grr_test.dir/grr_test.cc.o.d"
  "grr_test"
  "grr_test.pdb"
  "grr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
