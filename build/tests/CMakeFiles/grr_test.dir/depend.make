# Empty dependencies file for grr_test.
# This may be replaced when dependencies are built.
