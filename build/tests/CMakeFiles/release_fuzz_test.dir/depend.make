# Empty dependencies file for release_fuzz_test.
# This may be replaced when dependencies are built.
