file(REMOVE_RECURSE
  "CMakeFiles/release_fuzz_test.dir/release_fuzz_test.cc.o"
  "CMakeFiles/release_fuzz_test.dir/release_fuzz_test.cc.o.d"
  "release_fuzz_test"
  "release_fuzz_test.pdb"
  "release_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/release_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
