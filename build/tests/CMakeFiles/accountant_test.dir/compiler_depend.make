# Empty compiler generated dependencies file for accountant_test.
# This may be replaced when dependencies are built.
