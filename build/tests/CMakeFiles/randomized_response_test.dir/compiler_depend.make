# Empty compiler generated dependencies file for randomized_response_test.
# This may be replaced when dependencies are built.
