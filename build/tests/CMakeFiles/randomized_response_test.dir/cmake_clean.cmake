file(REMOVE_RECURSE
  "CMakeFiles/randomized_response_test.dir/randomized_response_test.cc.o"
  "CMakeFiles/randomized_response_test.dir/randomized_response_test.cc.o.d"
  "randomized_response_test"
  "randomized_response_test.pdb"
  "randomized_response_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/randomized_response_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
