file(REMOVE_RECURSE
  "CMakeFiles/conjunctive_test.dir/conjunctive_test.cc.o"
  "CMakeFiles/conjunctive_test.dir/conjunctive_test.cc.o.d"
  "conjunctive_test"
  "conjunctive_test.pdb"
  "conjunctive_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conjunctive_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
