file(REMOVE_RECURSE
  "CMakeFiles/size_bound_test.dir/size_bound_test.cc.o"
  "CMakeFiles/size_bound_test.dir/size_bound_test.cc.o.d"
  "size_bound_test"
  "size_bound_test.pdb"
  "size_bound_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/size_bound_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
