# Empty dependencies file for size_bound_test.
# This may be replaced when dependencies are built.
