# Empty dependencies file for laplace_mechanism_test.
# This may be replaced when dependencies are built.
