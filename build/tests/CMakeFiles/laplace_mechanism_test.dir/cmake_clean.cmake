file(REMOVE_RECURSE
  "CMakeFiles/laplace_mechanism_test.dir/laplace_mechanism_test.cc.o"
  "CMakeFiles/laplace_mechanism_test.dir/laplace_mechanism_test.cc.o.d"
  "laplace_mechanism_test"
  "laplace_mechanism_test.pdb"
  "laplace_mechanism_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/laplace_mechanism_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
