file(REMOVE_RECURSE
  "CMakeFiles/fd_repair_test.dir/fd_repair_test.cc.o"
  "CMakeFiles/fd_repair_test.dir/fd_repair_test.cc.o.d"
  "fd_repair_test"
  "fd_repair_test.pdb"
  "fd_repair_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fd_repair_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
