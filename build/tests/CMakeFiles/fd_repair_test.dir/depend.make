# Empty dependencies file for fd_repair_test.
# This may be replaced when dependencies are built.
