file(REMOVE_RECURSE
  "CMakeFiles/provenance_manager_test.dir/provenance_manager_test.cc.o"
  "CMakeFiles/provenance_manager_test.dir/provenance_manager_test.cc.o.d"
  "provenance_manager_test"
  "provenance_manager_test.pdb"
  "provenance_manager_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/provenance_manager_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
