# Empty dependencies file for provenance_manager_test.
# This may be replaced when dependencies are built.
