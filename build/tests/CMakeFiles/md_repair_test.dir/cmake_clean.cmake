file(REMOVE_RECURSE
  "CMakeFiles/md_repair_test.dir/md_repair_test.cc.o"
  "CMakeFiles/md_repair_test.dir/md_repair_test.cc.o.d"
  "md_repair_test"
  "md_repair_test.pdb"
  "md_repair_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/md_repair_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
