add_test([=[ReleaseFuzzTest.RandomSchemasRoundTrip]=]  /root/repo/build/tests/release_fuzz_test [==[--gtest_filter=ReleaseFuzzTest.RandomSchemasRoundTrip]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[ReleaseFuzzTest.RandomSchemasRoundTrip]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  release_fuzz_test_TESTS ReleaseFuzzTest.RandomSchemasRoundTrip)
