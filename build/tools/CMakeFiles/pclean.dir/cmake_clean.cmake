file(REMOVE_RECURSE
  "CMakeFiles/pclean.dir/pclean_main.cc.o"
  "CMakeFiles/pclean.dir/pclean_main.cc.o.d"
  "pclean"
  "pclean.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pclean.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
