# Empty dependencies file for pclean.
# This may be replaced when dependencies are built.
