file(REMOVE_RECURSE
  "CMakeFiles/pclean_cli_lib.dir/pclean_cli.cc.o"
  "CMakeFiles/pclean_cli_lib.dir/pclean_cli.cc.o.d"
  "libpclean_cli_lib.a"
  "libpclean_cli_lib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pclean_cli_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
