
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/pclean_cli.cc" "tools/CMakeFiles/pclean_cli_lib.dir/pclean_cli.cc.o" "gcc" "tools/CMakeFiles/pclean_cli_lib.dir/pclean_cli.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/privateclean_core.dir/DependInfo.cmake"
  "/root/repo/build/src/privacy/CMakeFiles/privateclean_privacy.dir/DependInfo.cmake"
  "/root/repo/build/src/provenance/CMakeFiles/privateclean_provenance.dir/DependInfo.cmake"
  "/root/repo/build/src/cleaning/CMakeFiles/privateclean_cleaning.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/privateclean_query.dir/DependInfo.cmake"
  "/root/repo/build/src/table/CMakeFiles/privateclean_table.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/privateclean_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
