file(REMOVE_RECURSE
  "libpclean_cli_lib.a"
)
