# Empty compiler generated dependencies file for pclean_cli_lib.
# This may be replaced when dependencies are built.
