# Empty compiler generated dependencies file for fig11_mcafe.
# This may be replaced when dependencies are built.
