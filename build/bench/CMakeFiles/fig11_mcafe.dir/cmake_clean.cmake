file(REMOVE_RECURSE
  "CMakeFiles/fig11_mcafe.dir/fig11_mcafe.cc.o"
  "CMakeFiles/fig11_mcafe.dir/fig11_mcafe.cc.o.d"
  "fig11_mcafe"
  "fig11_mcafe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_mcafe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
