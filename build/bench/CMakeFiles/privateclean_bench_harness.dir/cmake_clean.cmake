file(REMOVE_RECURSE
  "CMakeFiles/privateclean_bench_harness.dir/harness.cc.o"
  "CMakeFiles/privateclean_bench_harness.dir/harness.cc.o.d"
  "libprivateclean_bench_harness.a"
  "libprivateclean_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/privateclean_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
