file(REMOVE_RECURSE
  "libprivateclean_bench_harness.a"
)
