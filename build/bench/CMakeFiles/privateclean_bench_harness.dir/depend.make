# Empty dependencies file for privateclean_bench_harness.
# This may be replaced when dependencies are built.
