file(REMOVE_RECURSE
  "CMakeFiles/fig10_intel_wireless.dir/fig10_intel_wireless.cc.o"
  "CMakeFiles/fig10_intel_wireless.dir/fig10_intel_wireless.cc.o.d"
  "fig10_intel_wireless"
  "fig10_intel_wireless.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_intel_wireless.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
