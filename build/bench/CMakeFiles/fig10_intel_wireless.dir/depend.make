# Empty dependencies file for fig10_intel_wireless.
# This may be replaced when dependencies are built.
