file(REMOVE_RECURSE
  "CMakeFiles/fig8_tpcds.dir/fig8_tpcds.cc.o"
  "CMakeFiles/fig8_tpcds.dir/fig8_tpcds.cc.o.d"
  "fig8_tpcds"
  "fig8_tpcds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_tpcds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
