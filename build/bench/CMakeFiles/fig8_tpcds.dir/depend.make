# Empty dependencies file for fig8_tpcds.
# This may be replaced when dependencies are built.
