# Empty compiler generated dependencies file for fig3_selectivity.
# This may be replaced when dependencies are built.
