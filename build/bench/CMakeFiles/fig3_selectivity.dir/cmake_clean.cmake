file(REMOVE_RECURSE
  "CMakeFiles/fig3_selectivity.dir/fig3_selectivity.cc.o"
  "CMakeFiles/fig3_selectivity.dir/fig3_selectivity.cc.o.d"
  "fig3_selectivity"
  "fig3_selectivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_selectivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
