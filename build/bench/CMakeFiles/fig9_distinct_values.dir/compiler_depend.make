# Empty compiler generated dependencies file for fig9_distinct_values.
# This may be replaced when dependencies are built.
