file(REMOVE_RECURSE
  "CMakeFiles/fig9_distinct_values.dir/fig9_distinct_values.cc.o"
  "CMakeFiles/fig9_distinct_values.dir/fig9_distinct_values.cc.o.d"
  "fig9_distinct_values"
  "fig9_distinct_values.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_distinct_values.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
