file(REMOVE_RECURSE
  "CMakeFiles/fig6_merge_rate.dir/fig6_merge_rate.cc.o"
  "CMakeFiles/fig6_merge_rate.dir/fig6_merge_rate.cc.o.d"
  "fig6_merge_rate"
  "fig6_merge_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_merge_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
