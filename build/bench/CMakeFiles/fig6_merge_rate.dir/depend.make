# Empty dependencies file for fig6_merge_rate.
# This may be replaced when dependencies are built.
