# Empty compiler generated dependencies file for fig2_privacy.
# This may be replaced when dependencies are built.
