file(REMOVE_RECURSE
  "CMakeFiles/fig2_privacy.dir/fig2_privacy.cc.o"
  "CMakeFiles/fig2_privacy.dir/fig2_privacy.cc.o.d"
  "fig2_privacy"
  "fig2_privacy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_privacy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
