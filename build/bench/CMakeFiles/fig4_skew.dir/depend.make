# Empty dependencies file for fig4_skew.
# This may be replaced when dependencies are built.
