file(REMOVE_RECURSE
  "CMakeFiles/fig4_skew.dir/fig4_skew.cc.o"
  "CMakeFiles/fig4_skew.dir/fig4_skew.cc.o.d"
  "fig4_skew"
  "fig4_skew.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_skew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
