file(REMOVE_RECURSE
  "CMakeFiles/fig7_multiattr.dir/fig7_multiattr.cc.o"
  "CMakeFiles/fig7_multiattr.dir/fig7_multiattr.cc.o.d"
  "fig7_multiattr"
  "fig7_multiattr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_multiattr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
