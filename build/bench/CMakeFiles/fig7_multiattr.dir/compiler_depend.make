# Empty compiler generated dependencies file for fig7_multiattr.
# This may be replaced when dependencies are built.
