# Empty dependencies file for fig5_error_rate.
# This may be replaced when dependencies are built.
