#!/usr/bin/env bash
# Thread-scaling benchmark run:
#   1. build the release benchmark binary;
#   2. run the *ParallelScaling microbenchmarks (GRR, CSV parse,
#      bootstrap replicates, CSV record splitting) at their 1..8-thread
#      arguments;
#   3. condense the google-benchmark JSON into BENCH_pr3.json (the
#      original scaling set) and BENCH_pr5.json (the speculative-split
#      CSV record parser next to the full CSV parse for comparison),
#      mapping each benchmark to its 1-thread and max-thread wall time
#      in ms.
#
# On a single-core machine the scaling numbers are flat; the run still
# verifies that every scaling path executes and stays deterministic.
#
# Usage: scripts/bench.sh [build-dir] [output-json] [split-output-json]
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
OUT_JSON="${2:-BENCH_pr3.json}"
SPLIT_JSON="${3:-BENCH_pr5.json}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"
RAW_JSON="${BUILD_DIR}/bench_scaling_raw.json"

echo "== build (${BUILD_DIR}) =="
cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "${BUILD_DIR}" -j "${JOBS}" --target perf_microbench

echo "== run *ParallelScaling benchmarks =="
"${BUILD_DIR}/bench/perf_microbench" \
  --benchmark_filter='ParallelScaling' \
  --benchmark_format=json \
  --benchmark_out="${RAW_JSON}" \
  --benchmark_out_format=json

echo "== condense into ${OUT_JSON} + ${SPLIT_JSON} =="
python3 - "${RAW_JSON}" "${OUT_JSON}" "${SPLIT_JSON}" <<'PY'
import json
import sys

raw_path, out_path, split_path = sys.argv[1], sys.argv[2], sys.argv[3]
with open(raw_path) as f:
    raw = json.load(f)

TO_MS = {"ns": 1e-6, "us": 1e-3, "ms": 1.0, "s": 1e3}

# One entry per benchmark family: real time in ms at 1 thread and at the
# largest thread argument that ran.
runs = {}
for b in raw.get("benchmarks", []):
    if b.get("run_type") == "aggregate":
        continue
    name, _, arg = b["name"].rpartition("/")
    if not name or not arg.isdigit():
        continue
    ms = b["real_time"] * TO_MS[b.get("time_unit", "ns")]
    runs.setdefault(name, {})[int(arg)] = ms

def condense(names):
    summary = {}
    for name in sorted(names):
        by_threads = runs[name]
        max_threads = max(by_threads)
        summary[name] = {
            "threads_1_ms": round(by_threads.get(1, float("nan")), 4),
            "threads_max": max_threads,
            "threads_max_ms": round(by_threads[max_threads], 4),
        }
    return summary

def write(path, summary):
    with open(path, "w") as f:
        json.dump(summary, f, indent=2, sort_keys=True)
        f.write("\n")
    print(path)
    print(json.dumps(summary, indent=2, sort_keys=True))

# BENCH_pr3.json keeps the original scaling set; BENCH_pr5.json holds
# the speculative-split record parser next to the full CSV parse so the
# split stage's share of parse time is directly comparable.
SPLIT = "BM_CsvSplitParallelScaling"
write(out_path, condense(n for n in runs if n != SPLIT))
write(split_path, condense(
    n for n in runs if n == SPLIT or n == "BM_CsvParseParallelScaling"))
PY

echo "bench: wrote ${OUT_JSON} and ${SPLIT_JSON}"
