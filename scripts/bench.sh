#!/usr/bin/env bash
# Thread-scaling benchmark run:
#   1. build the release benchmark binary;
#   2. run the *ParallelScaling microbenchmarks (GRR, scans, provenance
#      build, CSV parse, bootstrap replicates, CSV record splitting) at
#      their 1..8-thread arguments;
#   3. condense the google-benchmark JSON into BENCH_pr3.json (the
#      original scaling set), BENCH_pr5.json (the speculative-split CSV
#      record parser next to the full CSV parse), BENCH_pr6.json
#      (dictionary-encoded predicate scan + provenance build, with the
#      dictionary/arena memory counters), and BENCH_pr7.json (the
#      mechanism zoo: grr/hlm/sampling randomization at matched
#      replacement rates), BENCH_pr8.json (the vectorized batch scan
#      next to the boxed row-loop baseline it replaced), and
#      BENCH_pr9.json (epsilon-ledger commit throughput: one fsync per
#      record vs group commit), mapping each benchmark to its 1-thread
#      and max-thread wall time in ms.
#
# Every output carries a `_host` record (nproc, CPU model) so numbers
# from different machines are never compared blind, and each benchmark
# is flagged `flat_scaling` when the max-thread run is within 10% of
# the 1-thread run — expected on a single-core machine, a red flag on a
# multi-core one.
#
# Usage: scripts/bench.sh [build-dir] [output-json] [split-output-json]
#                         [dict-output-json] [mechanism-output-json]
#                         [vectorized-output-json] [ledger-output-json]
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
OUT_JSON="${2:-BENCH_pr3.json}"
SPLIT_JSON="${3:-BENCH_pr5.json}"
DICT_JSON="${4:-BENCH_pr6.json}"
MECH_JSON="${5:-BENCH_pr7.json}"
VEC_JSON="${6:-BENCH_pr8.json}"
LEDGER_JSON="${7:-BENCH_pr9.json}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"
RAW_JSON="${BUILD_DIR}/bench_scaling_raw.json"

echo "== build (${BUILD_DIR}) =="
cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "${BUILD_DIR}" -j "${JOBS}" --target perf_microbench

echo "== run *ParallelScaling benchmarks =="
"${BUILD_DIR}/bench/perf_microbench" \
  --benchmark_filter='ParallelScaling|ScanScaling|CommitScaling' \
  --benchmark_format=json \
  --benchmark_out="${RAW_JSON}" \
  --benchmark_out_format=json

echo "== condense into ${OUT_JSON} + ${SPLIT_JSON} + ${DICT_JSON} + ${MECH_JSON} + ${VEC_JSON} + ${LEDGER_JSON} =="
python3 - "${RAW_JSON}" "${OUT_JSON}" "${SPLIT_JSON}" "${DICT_JSON}" "${MECH_JSON}" "${VEC_JSON}" "${LEDGER_JSON}" <<'PY'
import json
import re
import sys

(raw_path, out_path, split_path, dict_path, mech_path, vec_path,
 ledger_path) = sys.argv[1:8]
with open(raw_path) as f:
    raw = json.load(f)

TO_MS = {"ns": 1e-6, "us": 1e-3, "ms": 1.0, "s": 1e3}

def cpu_model():
    try:
        with open("/proc/cpuinfo") as f:
            for line in f:
                if line.startswith("model name"):
                    return line.split(":", 1)[1].strip()
    except OSError:
        pass
    return "unknown"

def host_record():
    ctx = raw.get("context", {})
    return {
        "nproc": ctx.get("num_cpus"),
        "cpu_model": cpu_model(),
        "cpu_mhz": ctx.get("mhz_per_cpu"),
        "date": ctx.get("date"),
    }

# One entry per benchmark family: real time in ms at 1 thread and at the
# largest thread argument that ran, plus any user counters (the
# dictionary/arena accounting) from the 1-thread run.
COUNTER_KEYS = ("payload_bytes", "dict_bytes", "dict_entries",
                "arena_peak_bytes")
runs = {}
counters = {}
for b in raw.get("benchmarks", []):
    if b.get("run_type") == "aggregate":
        continue
    # UseRealTime benchmarks (the ledger commit pair) report as
    # "BM_Name/threads/real_time"; strip the suffix before splitting.
    bench_name = b["name"]
    if bench_name.endswith("/real_time"):
        bench_name = bench_name[: -len("/real_time")]
    name, _, arg = bench_name.rpartition("/")
    if not name or not arg.isdigit():
        continue
    ms = b["real_time"] * TO_MS[b.get("time_unit", "ns")]
    runs.setdefault(name, {})[int(arg)] = ms
    if int(arg) == 1:
        found = {k: int(b[k]) for k in COUNTER_KEYS if k in b}
        if found:
            counters[name] = found

def condense(names):
    summary = {"_host": host_record()}
    for name in sorted(names):
        by_threads = runs[name]
        max_threads = max(by_threads)
        t1 = by_threads.get(1, float("nan"))
        tmax = by_threads[max_threads]
        entry = {
            "threads_1_ms": round(t1, 4),
            "threads_max": max_threads,
            "threads_max_ms": round(tmax, 4),
            # Within 10% of the 1-thread time at max threads: no real
            # speedup. Expected when _host.nproc == 1.
            "flat_scaling": bool(tmax == tmax and tmax > 0.9 * t1),
        }
        if name in counters:
            entry["memory"] = counters[name]
        summary[name] = entry
    return summary

def write(path, summary):
    with open(path, "w") as f:
        json.dump(summary, f, indent=2, sort_keys=True)
        f.write("\n")
    print(path)
    print(json.dumps(summary, indent=2, sort_keys=True))

# BENCH_pr3.json keeps the original scaling set; BENCH_pr5.json holds
# the speculative-split record parser next to the full CSV parse so the
# split stage's share of parse time is directly comparable;
# BENCH_pr6.json isolates the two paths the dictionary-encoded columnar
# core targets (predicate scan, provenance build) with their memory
# counters; BENCH_pr7.json compares the mechanism families' perturbation
# kernels at matched effective replacement rates (grr is repeated there
# as the baseline, and stays in the pr3 set it has always anchored).
SPLIT = "BM_CsvSplitParallelScaling"
DICT = ("BM_ScanParallelScaling", "BM_ProvenanceParallelScaling")
MECH = ("BM_GrrParallelScaling", "BM_HlmParallelScaling",
        "BM_SamplingParallelScaling")
# BENCH_pr8.json: the vectorized batch engine against the boxed row-loop
# baseline it replaced — same 1M-row table, same predicate + SUM.
VEC = ("BM_VectorizedScanScaling", "BM_RowLoopScanScaling")
# BENCH_pr9.json: durable epsilon-ledger commits — one fsync per charge
# (serial) against leader-batched group commit at the same thread counts.
LEDGER = ("BM_LedgerSerialCommitScaling", "BM_LedgerGroupCommitScaling")
write(out_path, condense(
    n for n in runs
    if n != SPLIT and n not in ("BM_ProvenanceParallelScaling",)
    and n not in VEC and n not in LEDGER
    and (n not in MECH or n == "BM_GrrParallelScaling")))
write(split_path, condense(
    n for n in runs if n == SPLIT or n == "BM_CsvParseParallelScaling"))
write(dict_path, condense(n for n in runs if n in DICT))
write(mech_path, condense(n for n in runs if n in MECH))
write(vec_path, condense(n for n in runs if n in VEC))
write(ledger_path, condense(n for n in runs if n in LEDGER))
PY

echo "bench: wrote ${OUT_JSON}, ${SPLIT_JSON}, ${DICT_JSON}, ${MECH_JSON}, ${VEC_JSON} and ${LEDGER_JSON}"

# The serve soak (BENCH_pr10.json: sessions/sec, serial vs pooled strand
# pump) runs whole processes for ~60s, so it is opt-in:
#   PCLEAN_SOAK=1 scripts/bench.sh
if [ "${PCLEAN_SOAK:-0}" = "1" ]; then
  echo "== serve soak (PCLEAN_SOAK=1) =="
  scripts/soak.sh "${BUILD_DIR}" BENCH_pr10.json
fi
