#!/usr/bin/env bash
# Bounded soak of `pclean serve` (~60 s total):
#
#   1. build the release `pclean` binary;
#   2. privatize a synthetic relation and grant budgets to 7 tenants
#      (an 8th client runs with an unfunded tenant, so the overdraft
#      path stays under load the whole run);
#   3. twice — once with --pool-threads 1 (serial strand pump) and once
#      with --pool-threads 4 (pooled) — run 8 client processes for
#      PCLEAN_SOAK_SECONDS each, every iteration a full session:
#      connect, HELLO, one charged query, BYE;
#   4. emit BENCH_pr10.json with sessions/sec for both modes, a `_host`
#      record (nproc, CPU model, date), and a `flat_scaling` flag when
#      pooled is within 10% of serial — expected on a single-core
#      machine, a red flag on a multi-core one.
#
# The server is asked to stop with SIGTERM (drain: queued queries are
# answered, sessions get a GOODBYE, the socket is unlinked); a non-zero
# server exit fails the soak. --serve-for-ms bounds the run even if the
# signal is lost, so the soak can never hang a CI job.
#
# Usage: scripts/soak.sh [build-dir] [output-json]
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
OUT_JSON="${2:-BENCH_pr10.json}"
DURATION_S="${PCLEAN_SOAK_SECONDS:-25}"
CLIENTS=8
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

echo "== build (${BUILD_DIR}) =="
cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "${BUILD_DIR}" -j "${JOBS}" --target pclean >/dev/null
PCLEAN="${BUILD_DIR}/tools/pclean"

# Workspace under /tmp (NOT the repo): Unix socket paths cap at ~107
# bytes, and mktemp -d keeps them short.
WORK="$(mktemp -d /tmp/pclean_soak.XXXXXX)"
trap 'rm -rf "${WORK}"' EXIT

echo "== data: synthetic relation + ledger =="
python3 - "${WORK}/input.csv" <<'PY'
import random
import sys

random.seed(10)
with open(sys.argv[1], "w") as f:
    f.write("category,value\n")
    for _ in range(5000):
        # Zipf-flavoured skew over 20 categories, like the paper's
        # synthetic generator.
        rank = min(int(random.paretovariate(1.5)) - 1, 19)
        f.write("c%d,%.6f\n" % (rank, random.uniform(0.0, 100.0)))
PY
"${PCLEAN}" privatize --input "${WORK}/input.csv" --output "${WORK}/release" \
  --epsilon 4.0 --seed 7 >/dev/null
for i in $(seq 0 $((CLIENTS - 2))); do
  "${PCLEAN}" budget grant --ledger "${WORK}/ledger" --tenant "t${i}" \
    --epsilon 1000000 >/dev/null
done

SQL="SELECT count(1) FROM r WHERE category = 'c1'"

# run_mode <pool-threads> <counts-subdir>: serve + 8 client processes
# for DURATION_S seconds; prints total completed sessions.
run_mode() {
  local pool="$1" tag="$2"
  local sock="${WORK}/${tag}.sock"
  local counts="${WORK}/${tag}_counts"
  mkdir -p "${counts}"
  "${PCLEAN}" serve "${WORK}/release" --socket "${sock}" \
    --ledger "${WORK}/ledger" --pool-threads "${pool}" \
    --serve-for-ms $(((DURATION_S + 30) * 1000)) \
    > "${WORK}/${tag}_server.log" 2>&1 &
  local server_pid=$!
  for _ in $(seq 1 100); do
    [ -S "${sock}" ] && break
    kill -0 "${server_pid}" 2>/dev/null || {
      echo "server died during startup:" >&2
      cat "${WORK}/${tag}_server.log" >&2
      exit 1
    }
    sleep 0.1
  done
  [ -S "${sock}" ] || { echo "server socket never appeared" >&2; exit 1; }

  local client_pids=()
  for i in $(seq 0 $((CLIENTS - 1))); do
    (
      # Client 7's tenant holds no budget: every one of its sessions
      # exercises the overdraft path and still counts as a completed
      # session (typed refusal, clean BYE).
      tenant="t${i}"
      [ "${i}" -eq $((CLIENTS - 1)) ] && tenant="unfunded"
      sessions=0
      end=$((SECONDS + DURATION_S))
      while [ "${SECONDS}" -lt "${end}" ]; do
        if "${PCLEAN}" query --connect "${sock}" --tenant "${tenant}" \
             --sql "${SQL}" >/dev/null 2>&1; then
          sessions=$((sessions + 1))
        elif [ "${tenant}" = "unfunded" ]; then
          sessions=$((sessions + 1))
        fi
      done
      echo "${sessions}" > "${counts}/c${i}"
    ) &
    client_pids+=("$!")
  done
  wait "${client_pids[@]}"
  kill -TERM "${server_pid}" 2>/dev/null || true
  if ! wait "${server_pid}"; then
    echo "server exited non-zero:" >&2
    cat "${WORK}/${tag}_server.log" >&2
    exit 1
  fi
  grep -q "drained:" "${WORK}/${tag}_server.log" || {
    echo "server never drained:" >&2
    cat "${WORK}/${tag}_server.log" >&2
    exit 1
  }
  cat "${counts}"/c* | awk '{s += $1} END {print s}'
}

echo "== soak: serial (--pool-threads 1), ${DURATION_S}s x ${CLIENTS} clients =="
SERIAL_SESSIONS="$(run_mode 1 serial)"
echo "   ${SERIAL_SESSIONS} sessions"
echo "== soak: pooled (--pool-threads 4), ${DURATION_S}s x ${CLIENTS} clients =="
POOLED_SESSIONS="$(run_mode 4 pooled)"
echo "   ${POOLED_SESSIONS} sessions"

[ "${SERIAL_SESSIONS}" -gt 0 ] || { echo "no serial sessions completed" >&2; exit 1; }
[ "${POOLED_SESSIONS}" -gt 0 ] || { echo "no pooled sessions completed" >&2; exit 1; }

echo "== write ${OUT_JSON} =="
python3 - "${OUT_JSON}" "${DURATION_S}" "${CLIENTS}" \
  "${SERIAL_SESSIONS}" "${POOLED_SESSIONS}" <<'PY'
import datetime
import json
import os
import sys

out_path, duration_s, clients, serial, pooled = sys.argv[1:6]
duration_s, clients = int(duration_s), int(clients)
serial, pooled = int(serial), int(pooled)

def cpu_model():
    try:
        with open("/proc/cpuinfo") as f:
            for line in f:
                if line.startswith("model name"):
                    return line.split(":", 1)[1].strip()
    except OSError:
        pass
    return "unknown"

serial_rate = serial / duration_s
pooled_rate = pooled / duration_s
report = {
    "serve_soak": {
        "clients": clients,
        "duration_s": duration_s,
        "serial_sessions": serial,
        "serial_sessions_per_sec": round(serial_rate, 2),
        "pooled_sessions": pooled,
        "pooled_sessions_per_sec": round(pooled_rate, 2),
        "flat_scaling": pooled_rate < serial_rate * 1.1,
    },
    "_host": {
        "nproc": os.cpu_count(),
        "cpu_model": cpu_model(),
        "date": datetime.datetime.now(datetime.timezone.utc)
            .astimezone().isoformat(timespec="seconds"),
    },
}
with open(out_path, "w") as f:
    json.dump(report, f, indent=2, sort_keys=True)
    f.write("\n")
print(json.dumps(report["serve_soak"], indent=2, sort_keys=True))
PY
echo "== done =="
