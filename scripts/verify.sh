#!/usr/bin/env bash
# Full verification flow:
#   1. tier-1: configure, build, run the whole test suite;
#   2. statistical acceptance: ctest -L statistical in the tier-1 build —
#      the fixed-seed mechanism acceptance suite (empirical confusion
#      matrices, Monte-Carlo estimator unbiasedness, utility-bound
#      identities) plus the statistical regression suite. Seeds are
#      checked in, so this pass is deterministic; the thresholds are
#      sized for a <1% false-positive rate if the seeds were redrawn
#      (see tests/mechanism_statistical_test.cc);
#   3. SQL suite: ctest -L sql in the tier-1 build — the grammar
#      differential/round-trip properties (sql_test) plus the vectorized
#      batch engine's differential, determinism, and bias-correction
#      acceptance (sql_engine_test), called out separately so a SQL-layer
#      regression is visible at a glance;
#   4. thread-sanitizer pass: rebuild with PCLEAN_SANITIZE=thread and run
#      the `determinism`- and `server`-labeled suites (the 1/2/8-thread
#      bit-identity and statistical tests, plus the `pclean serve`
#      concurrency torture — sessions, strand pump, drain, reaper), so
#      data races in the sharded and multiplexed paths are caught even
#      when plain ctest happens to schedule them benignly;
#   5. address+UB-sanitizer pass: rebuild with
#      PCLEAN_SANITIZE=address,undefined and run the `ledger`,
#      `failpoint`, `fuzz`, and `server` suites — the epsilon-ledger
#      crash torture, fault-injection torture, byte-corruption fuzzers,
#      and the server torture (torn frames, hard kills, session
#      teardown), where torn files and mid-error cleanup paths are most
#      likely to hide memory bugs.
#
# Usage: scripts/verify.sh [build-dir] [tsan-build-dir] [asan-build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
TSAN_DIR="${2:-build-tsan}"
ASAN_DIR="${3:-build-asan}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

echo "== tier-1: build + full ctest (${BUILD_DIR}) =="
cmake -B "${BUILD_DIR}" -S .
cmake --build "${BUILD_DIR}" -j "${JOBS}"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}"

echo "== statistical acceptance: ctest -L statistical (${BUILD_DIR}) =="
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}" -L statistical

echo "== SQL suite: ctest -L sql (${BUILD_DIR}) =="
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}" -L sql

echo "== TSan: build + ctest -L 'determinism|server' (${TSAN_DIR}) =="
cmake -B "${TSAN_DIR}" -S . -DPCLEAN_SANITIZE=thread
cmake --build "${TSAN_DIR}" -j "${JOBS}"
ctest --test-dir "${TSAN_DIR}" --output-on-failure -j "${JOBS}" -L 'determinism|server'

echo "== ASan+UBSan: build + ctest -L 'ledger|failpoint|fuzz|server' (${ASAN_DIR}) =="
cmake -B "${ASAN_DIR}" -S . -DPCLEAN_SANITIZE=address,undefined
cmake --build "${ASAN_DIR}" -j "${JOBS}"
ctest --test-dir "${ASAN_DIR}" --output-on-failure -j "${JOBS}" -L 'ledger|failpoint|fuzz|server'

echo "verify: OK"
echo "optional: scripts/bench.sh runs the *ParallelScaling benchmarks"
echo "and writes BENCH_pr3.json (1-thread vs N-thread wall times)."
