#ifndef PRIVATECLEAN_CORE_SQL_EXECUTION_H_
#define PRIVATECLEAN_CORE_SQL_EXECUTION_H_

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "core/private_table.h"
#include "query/sql.h"

namespace privateclean {

/// One output row of a SQL query. Scalar queries produce a single row
/// with no group key; grouped queries (GROUP BY / SELECT DISTINCT) one
/// row per group with the boxed key (a NULL group is Value::Null(),
/// distinct from the empty string — render with RenderSqlLiteral).
struct SqlRow {
  std::optional<Value> group;
  QueryResult result;
};

/// The full result of a SQL query after ORDER BY / LIMIT shaping.
struct SqlResultSet {
  bool grouped = false;
  std::vector<SqlRow> rows;
};

/// Parses and runs a SQL query against a private table with the
/// PrivateClean estimators:
///
///   ExecuteSqlQuery(pt, "SELECT count(1) FROM r WHERE score >= 3")
///
/// Dispatch:
///  - any single-attribute WHERE tree (comparisons, ranges, AND/OR/NOT,
///    IN, IS NULL) collapses to one predicate and routes through the
///    bias-corrected SUM/COUNT/AVG estimators;
///  - COUNT under an AND of two single-attribute condition groups uses
///    the §10 conjunctive estimator;
///  - MEDIAN/VAR/STD/PERCENTILE use the §10 extension aggregates — point
///    estimates, or bootstrap percentile intervals when
///    `options.bootstrap_replicates > 0`;
///  - GROUP BY <attr> on a bare COUNT runs GroupByCountEstimate: one
///    corrected estimate per clean-domain group, then ORDER BY / LIMIT
///    shape the rows (stable sort, so ties keep first-appearance order).
///
/// Forms with no bias-corrected estimator fail with a typed
/// FailedPrecondition("not privately answerable: ...") naming the form:
/// MIN/MAX, SELECT DISTINCT, COUNT(DISTINCT), GROUP BY combined with
/// WHERE or a non-COUNT aggregate, and WHERE trees spanning more than
/// two attributes (or two attributes outside a pure COUNT conjunction).
/// The FROM name is validated against the relation the table was opened
/// as: a release answers only to its MANIFEST `relation:` name (default
/// "r", the paper's private view R), and an unknown name is a typed
/// NotFound naming both. Unnamed in-process tables accept any spelling.
Result<SqlResultSet> ExecuteSqlQuery(const PrivateTable& table,
                                     const std::string& sql,
                                     const QueryOptions& options = QueryOptions());

/// The Direct-baseline counterpart: nominal values off the private
/// relation, no re-weighting, degenerate intervals. Because nothing is
/// corrected, Direct answers every parseable form — MIN/MAX, GROUP BY
/// with WHERE and any aggregate, SELECT DISTINCT (group rows whose
/// results carry the nominal group counts), and arbitrary
/// multi-attribute WHERE trees (compiled to a vectorized mask).
/// COUNT(DISTINCT attr) returns the nominal distinct-value count.
Result<SqlResultSet> ExecuteSqlQueryDirect(const PrivateTable& table,
                                           const std::string& sql,
                                           const ExecutionOptions& exec = {});

/// Renders a result set exactly as `pclean query` prints it. The CLI
/// and the server's RESULT payload both call this one function — that
/// shared body, not a pair of look-alike loops, is what makes a served
/// answer byte-identical to a local one. `direct` selects the
/// Direct-baseline rendering (no intervals); `confidence` is the level
/// the scalar CI line names.
void RenderSqlResultText(const SqlResultSet& rs, bool direct,
                         double confidence, std::ostream& out);

/// Scalar convenience wrappers: the single QueryResult of a non-grouped
/// query. Grouped queries (GROUP BY / SELECT DISTINCT) return
/// InvalidArgument directing callers to the SqlResultSet entry points.
Result<QueryResult> ExecuteSql(const PrivateTable& table,
                               const std::string& sql,
                               const QueryOptions& options = QueryOptions());
Result<QueryResult> ExecuteSqlDirect(const PrivateTable& table,
                                     const std::string& sql,
                                     const ExecutionOptions& exec = {});

}  // namespace privateclean

#endif  // PRIVATECLEAN_CORE_SQL_EXECUTION_H_
