#ifndef PRIVATECLEAN_CORE_SQL_EXECUTION_H_
#define PRIVATECLEAN_CORE_SQL_EXECUTION_H_

#include <string>

#include "core/private_table.h"
#include "query/sql.h"

namespace privateclean {

/// Parses and runs a SQL query against a private table with the
/// PrivateClean estimators:
///
///   ExecuteSql(pt, "SELECT avg(score) FROM r WHERE major = 'EECS'")
///
/// Dispatch: COUNT with two AND-conditions uses the conjunctive
/// estimator; plain SUM/COUNT/AVG use the corrected estimators;
/// MEDIAN/VAR/STD/PERCENTILE use the §10 extension aggregates — point
/// estimates with degenerate intervals by default, or bootstrap
/// percentile intervals when `options.bootstrap_replicates > 0` (the
/// replicate loop threads per `options.exec`). The FROM table name is
/// not checked (a PrivateTable is a single relation).
Result<QueryResult> ExecuteSql(const PrivateTable& table,
                               const std::string& sql,
                               const QueryOptions& options = QueryOptions());

/// The Direct-baseline counterpart (nominal values, no re-weighting).
/// Row passes thread per `exec`; results are identical at every thread
/// count.
Result<QueryResult> ExecuteSqlDirect(const PrivateTable& table,
                                     const std::string& sql,
                                     const ExecutionOptions& exec = {});

}  // namespace privateclean

#endif  // PRIVATECLEAN_CORE_SQL_EXECUTION_H_
