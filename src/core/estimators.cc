#include "core/estimators.h"

#include <algorithm>
#include <cmath>

#include "privacy/mechanism.h"
#include "privacy/randomized_response.h"

namespace privateclean {

Result<TransitionProbabilities> TransitionsForInputs(
    const EstimationInputs& in) {
  if (in.mechanism != nullptr) return in.mechanism->Transitions(in.l, in.n);
  return ComputeTransitionProbabilities(in.p, in.l, in.n);
}

Status EstimationInputs::Validate() const {
  if (!(p >= 0.0 && p < 1.0)) {
    return Status::InvalidArgument(
        "estimation requires p in [0, 1); p == 1 destroys all signal");
  }
  if (!(n >= 1.0)) return Status::InvalidArgument("N must be >= 1");
  if (!(l >= 0.0 && l <= n)) {
    return Status::InvalidArgument("l must be in [0, N]");
  }
  if (b < 0.0) return Status::InvalidArgument("b must be >= 0");
  if (!(confidence > 0.0 && confidence < 1.0)) {
    return Status::InvalidArgument("confidence must be in (0, 1)");
  }
  return Status::OK();
}

namespace {

/// Fills the shared diagnostic fields.
void FillDiagnostics(QueryResult* r, const QueryScanStats& stats,
                     const EstimationInputs& in, double nominal) {
  r->confidence = in.confidence;
  r->nominal = nominal;
  r->p = in.p;
  r->l = in.l;
  r->n = in.n;
  r->s = stats.total_rows;
}

}  // namespace

Result<QueryResult> EstimateCount(const QueryScanStats& stats,
                                  const EstimationInputs& in) {
  PCLEAN_RETURN_NOT_OK(in.Validate());
  if (stats.total_rows == 0) {
    return Status::InvalidArgument("cannot estimate over an empty relation");
  }
  PCLEAN_ASSIGN_OR_RETURN(TransitionProbabilities t, TransitionsForInputs(in));
  double s = static_cast<double>(stats.total_rows);
  double c_private = static_cast<double>(stats.matching_rows);

  // Eq. 3. Note τ_p − τ_n = 1 − p exactly.
  double denom = t.true_positive - t.false_positive;
  double estimate = (c_private - s * t.false_positive) / denom;

  // CLT interval (§5.4): s_p is Binomial(S, ·)/S, so
  // sd(ĉ) = sqrt(S·s_p(1−s_p)) / (1−p). (The paper states the interval
  // in selectivity units; multiplying by S gives count units.)
  //
  // At observed selectivity exactly 0 or 1 the plug-in variance
  // vanishes and the interval degenerates to a point, which overstates
  // certainty: a relation where no private row matched still only
  // bounds the true selectivity to O(1/S). Clamp s_p to
  // [1/(2S), 1 − 1/(2S)] — half an observation — for the width
  // computation only, so the interval always reflects at least that
  // residual binomial uncertainty.
  double s_p = c_private / s;
  double s_p_floor = 0.5 / s;
  double s_p_ci = std::clamp(s_p, s_p_floor, 1.0 - s_p_floor);
  PCLEAN_ASSIGN_OR_RETURN(double z, ZScoreForConfidence(in.confidence));
  double half = z / denom * std::sqrt(s * s_p_ci * (1.0 - s_p_ci));

  QueryResult result;
  result.estimator = EstimatorKind::kPrivateClean;
  result.estimate = estimate;
  result.ci = ConfidenceInterval{estimate - half, estimate + half};
  FillDiagnostics(&result, stats, in, c_private);
  return result;
}

Result<QueryResult> EstimateSum(const QueryScanStats& stats,
                                const EstimationInputs& in) {
  PCLEAN_RETURN_NOT_OK(in.Validate());
  if (stats.total_rows == 0) {
    return Status::InvalidArgument("cannot estimate over an empty relation");
  }
  PCLEAN_ASSIGN_OR_RETURN(TransitionProbabilities t, TransitionsForInputs(in));
  double denom = t.true_positive - t.false_positive;  // == 1 − p.

  // Eq. 5 / Appendix C closed form.
  double estimate = ((1.0 - t.false_positive) * stats.matching_sum -
                     t.false_positive * stats.complement_sum) /
                    denom;

  // Interval (§5.5): bound via the moments of the private numeric
  // attribute. sd(h_p) <= sqrt(S·(s_p(1−s_p)·μ_p² + σ_p²)); the paper
  // applies the factor 2 to cover h_p + h_p^c, and the weights sum to
  // 1/(1−p).
  double s = static_cast<double>(stats.total_rows);
  double s_p = static_cast<double>(stats.matching_rows) / s;
  double mu_p = stats.numeric_mean;
  double var_p = stats.numeric_variance;
  PCLEAN_ASSIGN_OR_RETURN(double z, ZScoreForConfidence(in.confidence));
  double half = 2.0 * z / denom *
                std::sqrt(s * (s_p * (1.0 - s_p) * mu_p * mu_p + var_p));

  QueryResult result;
  result.estimator = EstimatorKind::kPrivateClean;
  result.estimate = estimate;
  result.ci = ConfidenceInterval{estimate - half, estimate + half};
  FillDiagnostics(&result, stats, in, stats.matching_sum);
  return result;
}

Result<QueryResult> EstimateAvg(const QueryScanStats& stats,
                                const EstimationInputs& in) {
  PCLEAN_ASSIGN_OR_RETURN(QueryResult sum, EstimateSum(stats, in));
  PCLEAN_ASSIGN_OR_RETURN(QueryResult count, EstimateCount(stats, in));
  if (count.estimate == 0.0) {
    return Status::FailedPrecondition("avg undefined: estimated count is 0");
  }
  QueryResult result;
  result.estimator = EstimatorKind::kPrivateClean;
  result.estimate = sum.estimate / count.estimate;

  // Conservative corner-ratio interval (§5.6): upper CI of ĥ over lower
  // CI of ĉ, and vice versa. Only well defined when the count interval
  // does not straddle zero.
  double c_lo = count.ci.lo;
  double c_hi = count.ci.hi;
  if (c_lo <= 0.0 && c_hi >= 0.0) {
    return Status::FailedPrecondition(
        "avg interval undefined: count interval straddles zero "
        "(relation too small or privacy too high for this predicate)");
  }
  double corners[4] = {sum.ci.lo / c_lo, sum.ci.lo / c_hi,
                       sum.ci.hi / c_lo, sum.ci.hi / c_hi};
  result.ci = ConfidenceInterval{*std::min_element(corners, corners + 4),
                                 *std::max_element(corners, corners + 4)};
  double nominal_count = static_cast<double>(stats.matching_rows);
  FillDiagnostics(&result, stats, in,
                  nominal_count > 0.0 ? stats.matching_sum / nominal_count
                                      : 0.0);
  return result;
}

QueryResult DirectCount(const QueryScanStats& stats) {
  QueryResult r;
  r.estimator = EstimatorKind::kDirect;
  r.estimate = static_cast<double>(stats.matching_rows);
  r.nominal = r.estimate;
  r.ci = ConfidenceInterval{r.estimate, r.estimate};
  r.s = stats.total_rows;
  return r;
}

QueryResult DirectSum(const QueryScanStats& stats) {
  QueryResult r;
  r.estimator = EstimatorKind::kDirect;
  r.estimate = stats.matching_sum;
  r.nominal = r.estimate;
  r.ci = ConfidenceInterval{r.estimate, r.estimate};
  r.s = stats.total_rows;
  return r;
}

Result<QueryResult> DirectAvg(const QueryScanStats& stats) {
  if (stats.matching_rows == 0) {
    return Status::FailedPrecondition(
        "avg undefined: no rows match the predicate");
  }
  QueryResult r;
  r.estimator = EstimatorKind::kDirect;
  r.estimate =
      stats.matching_sum / static_cast<double>(stats.matching_rows);
  r.nominal = r.estimate;
  r.ci = ConfidenceInterval{r.estimate, r.estimate};
  r.s = stats.total_rows;
  return r;
}

}  // namespace privateclean
