#include "core/release.h"

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <map>
#include <tuple>
#include <utility>

#include "common/failpoint.h"
#include "common/io_util.h"
#include "common/string_util.h"
#include "table/csv.h"
#include "table/dictionary.h"
#include "table/table_builder.h"

namespace privateclean {

namespace {

namespace fs = std::filesystem;

constexpr char kManifestFile[] = "MANIFEST";
constexpr char kDataFile[] = "data.csv";
constexpr char kMetaFile[] = "meta.csv";
/// First line of every MANIFEST; anything else is not a release manifest.
constexpr char kManifestMagic[] = "%PCLEAN-RELEASE";
constexpr int kFormatVersion = 2;
/// All release files encode NULL distinctly from the empty string.
/// data.csv historically used the writer's default (empty unquoted
/// field), which conflated a NULL string entry with "" on read; both
/// sides now pass the same literal. Reads stay backward compatible:
/// unquoted empty fields still parse as NULL under any null literal.
constexpr char kNullLiteral[] = "\\N";

CsvOptions ReleaseCsvOptions(const ExecutionOptions& exec = {}) {
  CsvOptions options;
  options.null_literal = kNullLiteral;
  options.exec = exec;
  return options;
}

/// Read-side options: pin parse errors to the file inside the release
/// and treat a missing final newline as truncation (every release file
/// ends with '\n' as written, so a torn tail is always detectable even
/// without the MANIFEST).
CsvOptions ReleaseReadOptions(CsvOptions base, const std::string& dir,
                              const std::string& name) {
  base.error_context = dir + "/" + name;
  base.require_trailing_newline = true;
  return base;
}

/// Fault-injection hook that leaves cleanup to the caller (the
/// PCLEAN_FAILPOINT macro returns directly, which would skip rollback).
Status HitSite(const char* site, const std::string& detail) {
#if defined(PCLEAN_FAILPOINTS_ENABLED)
  return failpoint::Hit(site, detail);
#else
  (void)site;
  (void)detail;
  return Status::OK();
#endif
}

Result<Schema> MetaSchema() {
  return Schema::Make(
      {Field::Discrete("attribute"), Field::Discrete("kind"),
       Field::Discrete("type"),
       Field::Numerical("param", ValueType::kDouble),
       Field::Numerical("sensitivity", ValueType::kDouble),
       Field::Numerical("domain_size", ValueType::kInt64)});
}

std::string DomainFileName(size_t index) {
  return "domain_" + std::to_string(index) + ".csv";
}

/// Dictionary file for the i-th discrete attribute (same counter as
/// DomainFileName): the writer's interned string values in code order.
/// Additive to format v2 — releases written before dictionary files
/// simply lack the entries, and readers skip the rebind.
std::string DictFileName(size_t index) {
  return "dict_" + std::to_string(index) + ".csv";
}

std::string TypeName(ValueType type) { return ValueTypeToString(type); }

Result<ValueType> TypeFromName(const std::string& name) {
  if (name == "int64") return ValueType::kInt64;
  if (name == "double") return ValueType::kDouble;
  if (name == "string") return ValueType::kString;
  return Status::IOError("unknown type '" + name + "' in release metadata");
}

/// An ordered list of (file name, rendered bytes) — the entire release
/// payload held in memory, so validation failures never touch disk and
/// the MANIFEST can checksum exactly what will be written.
using RenderedFiles = std::vector<std::pair<std::string, std::string>>;

/// Renders every payload file of the release (everything except the
/// MANIFEST itself). Pure validation + serialization; no I/O.
Result<RenderedFiles> RenderReleaseFiles(
    const Table& private_relation, const PrivateRelationMetadata& metadata,
    const ExecutionOptions& exec) {
  RenderedFiles files;
  files.emplace_back(kDataFile,
                     TableToCsv(private_relation, ReleaseCsvOptions(exec)));

  // meta.csv: one row per attribute, in schema order so the analyst can
  // reconstruct the schema exactly.
  PCLEAN_ASSIGN_OR_RETURN(Schema meta_schema, MetaSchema());
  TableBuilder meta(meta_schema);
  const Schema& schema = private_relation.schema();
  size_t domain_index = 0;
  for (size_t i = 0; i < schema.num_fields(); ++i) {
    const Field& field = schema.field(i);
    if (field.kind == AttributeKind::kDiscrete) {
      auto it = metadata.discrete.find(field.name);
      if (it == metadata.discrete.end()) {
        return Status::InvalidArgument(
            "metadata missing discrete attribute '" + field.name + "'");
      }
      meta.Row({Value(field.name), Value("discrete"),
                Value(TypeName(field.type)), Value(it->second.p),
                Value::Null(),
                Value(static_cast<int64_t>(it->second.domain.size()))});
      // Domain file: one typed column with the attribute's name.
      PCLEAN_ASSIGN_OR_RETURN(
          Schema domain_schema,
          Schema::Make({Field::Discrete(field.name, field.type)}));
      TableBuilder domain_table(domain_schema);
      for (const Value& v : it->second.domain.values()) {
        domain_table.Row({v});
      }
      PCLEAN_ASSIGN_OR_RETURN(Table dt, domain_table.Finish());
      files.emplace_back(DomainFileName(domain_index),
                         TableToCsv(dt, ReleaseCsvOptions()));
      // Dictionary file: the column's interned values in code order, so
      // a reader reconstructs the writer's exact code assignment (and
      // with it, byte-identical downstream query behavior).
      if (field.type == ValueType::kString) {
        const StringDictionary& dict = private_relation.column(i).dictionary();
        PCLEAN_ASSIGN_OR_RETURN(
            Schema dict_schema,
            Schema::Make({Field::Discrete(field.name, ValueType::kString)}));
        TableBuilder dict_table(dict_schema);
        for (uint32_t code = 0; code < dict.size(); ++code) {
          dict_table.Row({Value(std::string(dict.At(code)))});
        }
        PCLEAN_ASSIGN_OR_RETURN(Table dict_t, dict_table.Finish());
        files.emplace_back(DictFileName(domain_index),
                           TableToCsv(dict_t, ReleaseCsvOptions()));
      }
      ++domain_index;
    } else {
      auto it = metadata.numeric.find(field.name);
      if (it == metadata.numeric.end()) {
        return Status::InvalidArgument(
            "metadata missing numerical attribute '" + field.name + "'");
      }
      meta.Row({Value(field.name), Value("numeric"),
                Value(TypeName(field.type)), Value(it->second.b),
                Value(it->second.sensitivity), Value::Null()});
    }
  }
  PCLEAN_ASSIGN_OR_RETURN(Table meta_table, meta.Finish());
  // meta.csv keeps the default CSV options for byte compatibility with
  // v1 releases (its nulls render as empty fields).
  files.emplace_back(kMetaFile, TableToCsv(meta_table, CsvOptions{}));
  return files;
}

/// Names in the MANIFEST's relation/column lines are free text in a
/// line-oriented format, so line-breaking bytes are backslash-escaped
/// ("\n", "\r", "\\"); everything else (spaces, commas, quotes) passes
/// through untouched.
std::string EscapeManifestName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    switch (c) {
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        out += c;
    }
  }
  return out;
}

Result<std::string> UnescapeManifestName(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (size_t i = 0; i < text.size(); ++i) {
    if (text[i] != '\\') {
      out += text[i];
      continue;
    }
    if (i + 1 >= text.size()) {
      return Status::DataLoss("dangling escape in manifest name '" + text +
                              "'");
    }
    switch (text[++i]) {
      case 'n':
        out += '\n';
        break;
      case 'r':
        out += '\r';
        break;
      case '\\':
        out += '\\';
        break;
      default:
        return Status::DataLoss("unknown escape '\\" +
                                std::string(1, text[i]) +
                                "' in manifest name '" + text + "'");
    }
  }
  return out;
}

/// Renders the MANIFEST: magic, version, relation size, the mechanism
/// the relation was randomized under, the SQL relation name, the schema
/// ("column: <kind> <type> <name>" in schema order), one line per
/// payload file ("file: <crc32c> <bytes> <name>"), and a trailing
/// self-checksum over everything above it.
std::string RenderManifest(uint64_t rows, const MechanismSpec& mechanism,
                           const std::string& relation_name,
                           const Schema& schema, const RenderedFiles& files) {
  std::string out = kManifestMagic;
  out += "\nversion: ";
  out += std::to_string(kFormatVersion);
  out += "\nrows: ";
  out += std::to_string(rows);
  out += "\nmechanism: ";
  out += RenderMechanismSpec(mechanism);
  out += "\nrelation: ";
  out += EscapeManifestName(relation_name);
  out += '\n';
  for (size_t i = 0; i < schema.num_fields(); ++i) {
    const Field& field = schema.field(i);
    out += "column: ";
    out += field.kind == AttributeKind::kDiscrete ? "discrete" : "numeric";
    out += ' ';
    out += TypeName(field.type);
    out += ' ';
    out += EscapeManifestName(field.name);  // last: names may have spaces
    out += '\n';
  }
  for (const auto& [name, content] : files) {
    out += "file: ";
    out += io::Crc32cToHex(io::Crc32c(content));
    out += ' ';
    out += std::to_string(content.size());
    out += ' ';
    out += name;
    out += '\n';
  }
  // Self-checksum covers every byte above the trailer line.
  const uint32_t self_crc = io::Crc32c(out);
  out += "manifest_crc: ";
  out += io::Crc32cToHex(self_crc);
  out += '\n';
  return out;
}

struct ManifestEntry {
  std::string name;
  uint64_t bytes = 0;
  uint32_t crc = 0;
};

/// One `column:` schema line: the writer's view of a data.csv column,
/// cross-checked against meta.csv before the data parse.
struct ManifestColumn {
  std::string kind;  ///< "discrete" | "numeric"
  std::string type;  ///< TypeName() spelling
  std::string name;
};

struct Manifest {
  uint64_t rows = 0;
  /// Defaults to the paper's GRR: a v2 manifest written before the
  /// mechanism zoo has no `mechanism:` line, and every such release was
  /// randomized by the only mechanism that existed then.
  MechanismSpec mechanism;
  /// The SQL name this release answers to in FROM clauses. Manifests
  /// written before the `relation:` line default to "r", the paper's
  /// private view R — the name every such release was queried under.
  std::string relation_name = "r";
  /// Schema carried by `column:` lines; empty for manifests written
  /// before the section existed (the legacy path skips the check).
  std::vector<ManifestColumn> columns;
  std::vector<ManifestEntry> files;
};

/// Parses and self-verifies a MANIFEST. Any structural damage —
/// including a failed self-checksum — is DataLoss naming `path`; a
/// version this reader does not know is FailedPrecondition.
Result<Manifest> ParseManifest(const std::string& text,
                               const std::string& path) {
  const std::string magic_line = std::string(kManifestMagic) + "\n";
  if (text.compare(0, magic_line.size(), magic_line) != 0) {
    return Status::DataLoss("'" + path +
                            "' is not a release manifest (bad magic)");
  }
  // The self-checksum line must be the LAST line, so nothing after it
  // escapes coverage.
  const std::string trailer_key = "manifest_crc: ";
  size_t trailer = text.rfind("\n" + trailer_key);
  if (trailer == std::string::npos) {
    return Status::DataLoss("'" + path +
                            "': missing manifest_crc trailer line");
  }
  trailer += 1;  // start of the trailer line
  const size_t hex_begin = trailer + trailer_key.size();
  const size_t hex_end = text.find('\n', hex_begin);
  if (hex_end == std::string::npos || hex_end + 1 != text.size()) {
    return Status::DataLoss(
        "'" + path + "': manifest_crc trailer is not the final line");
  }
  auto stored = io::Crc32cFromHex(
      std::string_view(text).substr(hex_begin, hex_end - hex_begin));
  if (!stored.ok()) {
    return Status::DataLoss("'" + path + "': " + stored.status().message());
  }
  const uint32_t computed = io::Crc32c(std::string_view(text).substr(0, trailer));
  if (computed != stored.ValueOrDie()) {
    return Status::DataLoss(
        "'" + path + "': manifest checksum mismatch (stored " +
        io::Crc32cToHex(stored.ValueOrDie()) + ", computed " +
        io::Crc32cToHex(computed) + ") — the manifest itself is corrupt");
  }

  // Body lines between the magic and the trailer.
  Manifest manifest;
  bool saw_version = false;
  bool saw_rows = false;
  size_t pos = magic_line.size();
  size_t line_no = 2;  // 1-based; the magic was line 1
  while (pos < trailer) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos || eol > trailer) eol = trailer;
    std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    auto loc = [&] { return "'" + path + "' line " + std::to_string(line_no); };
    ++line_no;
    if (line.rfind("version: ", 0) == 0) {
      PCLEAN_ASSIGN_OR_RETURN(int64_t v, ParseInt64(line.substr(9)));
      if (v != kFormatVersion) {
        return Status::FailedPrecondition(
            "'" + path + "' declares release format version " +
            std::to_string(v) + "; this reader supports version " +
            std::to_string(kFormatVersion));
      }
      saw_version = true;
    } else if (line.rfind("rows: ", 0) == 0) {
      PCLEAN_ASSIGN_OR_RETURN(int64_t v, ParseInt64(line.substr(6)));
      if (v < 0) return Status::DataLoss(loc() + ": negative row count");
      manifest.rows = static_cast<uint64_t>(v);
      saw_rows = true;
    } else if (line.rfind("mechanism: ", 0) == 0) {
      PCLEAN_FAILPOINT("release.mechanism.parse", path);
      auto spec = ParseMechanismSpec(line.substr(11));
      if (!spec.ok()) {
        return Status::DataLoss(loc() + ": corrupt mechanism entry: " +
                                spec.status().message());
      }
      Status valid = ValidateMechanismSpec(spec.ValueOrDie());
      if (!valid.ok()) {
        // Unknown mechanism *name* is a capability gap of this reader
        // (FailedPrecondition, like an unknown format version); anything
        // else — bad parameters under a known name — is a damaged
        // manifest.
        if (valid.IsFailedPrecondition()) return valid;
        return Status::DataLoss(loc() + ": " + valid.message());
      }
      manifest.mechanism = std::move(spec).ValueOrDie();
    } else if (line.rfind("relation: ", 0) == 0) {
      auto name = UnescapeManifestName(line.substr(10));
      if (!name.ok()) {
        return Status::DataLoss(loc() + ": " + name.status().message());
      }
      manifest.relation_name = std::move(name).ValueOrDie();
      if (manifest.relation_name.empty()) {
        return Status::DataLoss(loc() + ": empty relation name");
      }
    } else if (line.rfind("column: ", 0) == 0) {
      // "column: <kind> <type> <name>" — name last, may contain spaces.
      const std::string body = line.substr(8);
      const size_t sp1 = body.find(' ');
      const size_t sp2 =
          sp1 == std::string::npos ? std::string::npos : body.find(' ', sp1 + 1);
      if (sp2 == std::string::npos || sp2 + 1 >= body.size()) {
        return Status::DataLoss(loc() + ": malformed column entry '" + line +
                                "'");
      }
      ManifestColumn column;
      column.kind = body.substr(0, sp1);
      column.type = body.substr(sp1 + 1, sp2 - sp1 - 1);
      auto name = UnescapeManifestName(body.substr(sp2 + 1));
      if (!name.ok()) {
        return Status::DataLoss(loc() + ": " + name.status().message());
      }
      column.name = std::move(name).ValueOrDie();
      if (column.kind != "discrete" && column.kind != "numeric") {
        return Status::DataLoss(loc() + ": unknown column kind '" +
                                column.kind + "'");
      }
      manifest.columns.push_back(std::move(column));
    } else if (line.rfind("file: ", 0) == 0) {
      // "file: <crc8hex> <bytes> <name>"
      const std::string body = line.substr(6);
      const size_t sp1 = body.find(' ');
      const size_t sp2 =
          sp1 == std::string::npos ? std::string::npos : body.find(' ', sp1 + 1);
      if (sp2 == std::string::npos || sp2 + 1 >= body.size()) {
        return Status::DataLoss(loc() + ": malformed file entry '" + line +
                                "'");
      }
      ManifestEntry entry;
      auto crc = io::Crc32cFromHex(std::string_view(body).substr(0, sp1));
      if (!crc.ok()) {
        return Status::DataLoss(loc() + ": " + crc.status().message());
      }
      entry.crc = crc.ValueOrDie();
      auto bytes = ParseInt64(body.substr(sp1 + 1, sp2 - sp1 - 1));
      if (!bytes.ok() || bytes.ValueOrDie() < 0) {
        return Status::DataLoss(loc() + ": malformed byte length in '" +
                                line + "'");
      }
      entry.bytes = static_cast<uint64_t>(bytes.ValueOrDie());
      entry.name = body.substr(sp2 + 1);
      if (entry.name.empty() || entry.name.find('/') != std::string::npos ||
          entry.name == "..") {
        return Status::DataLoss(loc() + ": invalid file name '" + entry.name +
                                "'");
      }
      manifest.files.push_back(std::move(entry));
    } else {
      return Status::DataLoss(loc() + ": unrecognized manifest line '" + line +
                              "'");
    }
  }
  if (!saw_version || !saw_rows || manifest.files.empty()) {
    return Status::DataLoss("'" + path +
                            "': manifest is missing version, rows, or file "
                            "entries");
  }
  return manifest;
}

/// Reads one MANIFEST-listed file and verifies its length and CRC32C.
/// On success `*content` holds the verified bytes.
Status FetchAndCheck(const std::string& dir, const ManifestEntry& entry,
                     std::string* content) {
  const std::string path = dir + "/" + entry.name;
  auto read = io::ReadFileWithRetry(path);
  if (!read.ok()) {
    if (read.status().IsNotFound()) {
      return Status::DataLoss("'" + path +
                              "' is listed in the MANIFEST but missing");
    }
    return read.status();
  }
  std::string bytes = std::move(read).ValueOrDie();
  if (bytes.size() != entry.bytes) {
    return Status::DataLoss(
        "'" + path + "' is " + std::to_string(bytes.size()) +
        " bytes but the MANIFEST records " + std::to_string(entry.bytes) +
        " (content diverges at byte " +
        std::to_string(std::min<uint64_t>(bytes.size(), entry.bytes)) +
        "; truncated or torn write)");
  }
  const uint32_t crc = io::Crc32c(bytes);
  if (crc != entry.crc) {
    return Status::DataLoss("'" + path + "': checksum mismatch (stored " +
                            io::Crc32cToHex(entry.crc) + ", computed " +
                            io::Crc32cToHex(crc) + ") over " +
                            std::to_string(bytes.size()) +
                            " bytes — file content is corrupt");
  }
  *content = std::move(bytes);
  return Status::OK();
}

/// Provides the bytes of a named release file to the shared parser.
/// v2 serves checksum-verified bytes already in memory; v1 reads from
/// disk with retry.
using FileFetcher = std::function<Result<std::string>(const std::string&)>;

/// Parses meta.csv / domain files / data.csv into a LoadedRelease.
/// Shared by the v1 and v2 read paths; `fetch` abstracts where verified
/// bytes come from. `mechanism` is the manifest's declared family (the
/// legacy-GRR default for v1 and pre-mechanism v2 releases); every
/// discrete attribute's meta.csv `param` is bound through it, so a
/// parameter the family rejects surfaces as DataLoss naming meta.csv.
Result<LoadedRelease> ParseReleaseTables(
    const FileFetcher& fetch, const std::string& dir,
    const MechanismSpec& mechanism, const ExecutionOptions& exec,
    const std::vector<ManifestColumn>* manifest_columns = nullptr) {
  PCLEAN_ASSIGN_OR_RETURN(Schema meta_schema, MetaSchema());
  PCLEAN_ASSIGN_OR_RETURN(std::string meta_text, fetch(kMetaFile));
  PCLEAN_ASSIGN_OR_RETURN(
      Table meta, CsvToTable(meta_text, meta_schema,
                             ReleaseReadOptions(CsvOptions{}, dir, kMetaFile)));
  if (meta.num_rows() == 0) {
    return Status::DataLoss("'" + dir + "/" + kMetaFile +
                            "': release metadata is empty");
  }

  // Reconstruct the data schema and the metadata maps.
  std::vector<Field> fields;
  LoadedRelease release;
  size_t domain_index = 0;
  /// String columns whose dictionary file should be applied after the
  /// data parse: (column index, attribute name, dict file name).
  std::vector<std::tuple<size_t, std::string, std::string>> dict_rebinds;
  for (size_t r = 0; r < meta.num_rows(); ++r) {
    std::string name(meta.column(0).StringAt(r));
    std::string kind(meta.column(1).StringAt(r));
    PCLEAN_ASSIGN_OR_RETURN(
        ValueType type,
        TypeFromName(std::string(meta.column(2).StringAt(r))));
    if (meta.column(3).IsNull(r)) {
      return Status::IOError("attribute '" + name +
                             "' missing its mechanism parameter");
    }
    double param = meta.column(3).DoubleAt(r);
    if (kind == "discrete") {
      fields.push_back(Field{name, type, AttributeKind::kDiscrete});
      if (type == ValueType::kString) {
        dict_rebinds.emplace_back(fields.size() - 1, name,
                                  DictFileName(domain_index));
      }
      PCLEAN_ASSIGN_OR_RETURN(
          Schema domain_schema,
          Schema::Make({Field::Discrete(name, type)}));
      const std::string domain_file = DomainFileName(domain_index);
      PCLEAN_ASSIGN_OR_RETURN(std::string domain_text, fetch(domain_file));
      PCLEAN_ASSIGN_OR_RETURN(
          Table domain_table,
          CsvToTable(domain_text, domain_schema,
                     ReleaseReadOptions(ReleaseCsvOptions(exec), dir,
                                        domain_file)));
      ++domain_index;
      std::vector<Value> values;
      values.reserve(domain_table.num_rows());
      for (size_t i = 0; i < domain_table.num_rows(); ++i) {
        values.push_back(domain_table.column(0).ValueAt(i));
      }
      Domain domain = Domain::FromValues(values);
      if (!meta.column(5).IsNull(r) &&
          domain.size() !=
              static_cast<size_t>(meta.column(5).Int64At(r))) {
        return Status::DataLoss(
            "'" + dir + "/" + domain_file + "' holds " +
            std::to_string(domain.size()) + " values but '" + name +
            "' records a domain of " +
            std::to_string(meta.column(5).Int64At(r)));
      }
      auto bound = MakeMechanism(mechanism, param);
      if (!bound.ok()) {
        return Status::DataLoss("'" + dir + "/" + kMetaFile +
                                "': attribute '" + name + "': " +
                                bound.status().message());
      }
      release.metadata.discrete.emplace(
          name, DiscreteAttributeMeta{param, std::move(domain),
                                      std::move(bound).ValueOrDie()});
    } else if (kind == "numeric") {
      if (type == ValueType::kString) {
        return Status::IOError("numeric attribute '" + name +
                               "' cannot be string-typed");
      }
      fields.push_back(Field{name, type, AttributeKind::kNumerical});
      double sensitivity =
          meta.column(4).IsNull(r) ? 0.0 : meta.column(4).DoubleAt(r);
      release.metadata.numeric.emplace(
          name, NumericAttributeMeta{param, sensitivity});
    } else {
      return Status::IOError("unknown attribute kind '" + kind + "'");
    }
  }
  PCLEAN_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(fields)));
  // Cross-check the MANIFEST-carried schema against meta.csv BEFORE the
  // data parse: a writer/reader disagreement about what data.csv holds
  // must fail with the offending column named, not as a downstream
  // coercion error on some row.
  if (manifest_columns != nullptr && !manifest_columns->empty()) {
    const std::vector<ManifestColumn>& expected = *manifest_columns;
    if (expected.size() != schema.num_fields()) {
      return Status::FailedPrecondition(
          "'" + dir + "': MANIFEST declares " +
          std::to_string(expected.size()) + " columns but meta.csv yields " +
          std::to_string(schema.num_fields()));
    }
    for (size_t i = 0; i < schema.num_fields(); ++i) {
      const Field& field = schema.field(i);
      const ManifestColumn& want = expected[i];
      const std::string got_kind =
          field.kind == AttributeKind::kDiscrete ? "discrete" : "numeric";
      if (field.name != want.name || got_kind != want.kind ||
          TypeName(field.type) != want.type) {
        return Status::FailedPrecondition(
            "'" + dir + "': column " + std::to_string(i) +
            " mismatch between MANIFEST and meta.csv: MANIFEST declares '" +
            want.name + "' (" + want.kind + " " + want.type +
            ") but meta.csv yields '" + field.name + "' (" + got_kind + " " +
            TypeName(field.type) + ")");
      }
    }
  }
  PCLEAN_ASSIGN_OR_RETURN(std::string data_text, fetch(kDataFile));
  PCLEAN_ASSIGN_OR_RETURN(
      release.relation,
      CsvToTable(data_text, schema,
                 ReleaseReadOptions(ReleaseCsvOptions(exec), dir, kDataFile)));
  // Restore each string column's dictionary code order from its dict
  // file. Absent files (a v1 release, or a v2 release written before
  // dictionary files existed) leave the parse-order dictionary in
  // place; a present-but-inconsistent file is DataLoss.
  for (const auto& [col_idx, attr_name, dict_file] : dict_rebinds) {
    auto dict_text = fetch(dict_file);
    if (!dict_text.ok()) {
      if (dict_text.status().IsNotFound() || dict_text.status().IsDataLoss()) {
        continue;  // Not part of this release.
      }
      return dict_text.status();
    }
    PCLEAN_ASSIGN_OR_RETURN(
        Schema dict_schema,
        Schema::Make({Field::Discrete(attr_name, ValueType::kString)}));
    PCLEAN_ASSIGN_OR_RETURN(
        Table dict_table,
        CsvToTable(dict_text.ValueOrDie(), dict_schema,
                   ReleaseReadOptions(ReleaseCsvOptions(exec), dir,
                                      dict_file)));
    std::vector<std::string_view> entries;
    entries.reserve(dict_table.num_rows());
    for (size_t i = 0; i < dict_table.num_rows(); ++i) {
      if (dict_table.column(0).IsNull(i)) {
        return Status::DataLoss("'" + dir + "/" + dict_file +
                                "' row " + std::to_string(i) +
                                ": dictionary entries cannot be NULL");
      }
      entries.push_back(dict_table.column(0).StringAt(i));
    }
    Status rebind =
        release.relation.mutable_column(col_idx)->RebindDictionary(entries);
    if (!rebind.ok()) {
      return Status::DataLoss("'" + dir + "/" + dict_file + "': " +
                              rebind.message());
    }
  }
  release.metadata.dataset_size = release.relation.num_rows();
  release.metadata.mechanism_spec = mechanism;
  return release;
}

/// Monotonic suffix so concurrent writers in one process never collide
/// on the same temporary/backup sibling.
std::string UniqueSuffix() {
  static std::atomic<uint64_t> counter{0};
  return std::to_string(static_cast<long>(::getpid())) + "." +
         std::to_string(counter.fetch_add(1));
}

/// Removes a directory tree unless disarmed — every early-error return
/// from the commit sequence cleans up its temporary directory.
struct RemoveOnFailure {
  std::string path;
  bool armed = true;
  ~RemoveOnFailure() {
    if (armed) {
      std::error_code ec;
      fs::remove_all(path, ec);
    }
  }
};

/// True when `dir` may be replaced by an atomic swap: an empty
/// directory, or one holding a release (manifest or pre-manifest).
bool IsReplaceableDir(const std::string& dir) {
  std::error_code ec;
  if (fs::exists(dir + "/" + kManifestFile, ec)) return true;
  if (fs::exists(dir + "/" + kMetaFile, ec)) return true;
  return fs::is_empty(dir, ec) && !ec;
}

}  // namespace

Status WriteRelease(const Table& private_relation,
                    const PrivateRelationMetadata& metadata,
                    const std::string& dir, const ExecutionOptions& exec) {
  // Render the entire release in memory first: validation failures
  // (missing metadata, bad schema) touch nothing on disk. The mechanism
  // spec is validated before anything renders — an unknown family or a
  // malformed parameter block must never be persisted.
  PCLEAN_RETURN_NOT_OK(ValidateMechanismSpec(metadata.mechanism_spec));
  PCLEAN_ASSIGN_OR_RETURN(
      RenderedFiles files,
      RenderReleaseFiles(private_relation, metadata, exec));
  PCLEAN_FAILPOINT("release.mechanism.render", dir);
  // An unnamed relation publishes under "r", the paper's private view R
  // — the name every pre-`relation:` release answered to.
  const std::string relation_name =
      metadata.relation_name.empty() ? "r" : metadata.relation_name;
  files.emplace_back(
      kManifestFile,
      RenderManifest(private_relation.num_rows(), metadata.mechanism_spec,
                     relation_name, private_relation.schema(), files));

  const fs::path target(dir);
  const fs::path parent =
      target.parent_path().empty() ? fs::path(".") : target.parent_path();
  std::error_code ec;
  fs::create_directories(parent, ec);
  if (ec) {
    return Status::IOError("cannot create parent directory for '" + dir +
                           "': " + ec.message());
  }

  // Stage into a temporary sibling (same filesystem, so the commit
  // rename is atomic), then swap it in.
  const std::string suffix = UniqueSuffix();
  const std::string tmp = dir + ".tmp." + suffix;
  RemoveOnFailure tmp_guard{tmp};
  fs::create_directory(tmp, ec);
  if (ec) {
    return Status::IOError("cannot create staging directory '" + tmp +
                           "': " + ec.message());
  }
  for (const auto& [name, content] : files) {
    PCLEAN_RETURN_NOT_OK(io::WriteFileDurable(tmp + "/" + name, content));
  }
  PCLEAN_RETURN_NOT_OK(io::FsyncDir(tmp));

  // Commit. A fresh target is a single rename; an existing one is
  // backed up first so a failed swap restores it.
  const bool exists = fs::exists(target, ec);
  if (exists) {
    if (!fs::is_directory(target, ec)) {
      return Status::AlreadyExists("'" + dir +
                                   "' exists and is not a directory");
    }
    if (!IsReplaceableDir(dir)) {
      return Status::AlreadyExists(
          "'" + dir +
          "' exists and is not a release directory (no MANIFEST or "
          "meta.csv); refusing to replace it");
    }
    const std::string backup = dir + ".old." + suffix;
    PCLEAN_RETURN_NOT_OK(HitSite("release.swap.backup", dir));
    fs::rename(target, backup, ec);
    if (ec) {
      return Status::IOError("cannot move existing release '" + dir +
                             "' aside: " + ec.message());
    }
    // Crash window: the target is momentarily absent. The torn-commit
    // failpoint stops here, exactly as a crash between the two renames
    // would — readers then see a typed NotFound, never a half release.
    Status torn = HitSite("release.commit.torn", dir);
    if (!torn.ok()) {
      tmp_guard.armed = false;
      return torn;
    }
    Status fault = HitSite("release.commit.rename", dir);
    ec.clear();
    if (fault.ok()) fs::rename(tmp, target, ec);
    if (!fault.ok() || ec) {
      // Roll the original release back into place (best effort — if
      // this rename also fails the backup still holds it intact).
      std::error_code rollback;
      fs::rename(backup, target, rollback);
      if (!fault.ok()) return fault;
      return Status::IOError("cannot commit release to '" + dir +
                             "': " + ec.message());
    }
    tmp_guard.armed = false;
    fs::remove_all(backup, ec);  // best effort; the release is committed
  } else {
    PCLEAN_RETURN_NOT_OK(HitSite("release.commit.rename", dir));
    fs::rename(tmp, target, ec);
    if (ec) {
      return Status::IOError("cannot commit release to '" + dir +
                             "': " + ec.message());
    }
    tmp_guard.armed = false;
  }
  // The renames are durable only once the parent directory is synced.
  return io::FsyncDir(parent.string());
}

Status WriteRelease(const GrrOutput& grr, const std::string& dir,
                    const ExecutionOptions& exec) {
  return WriteRelease(grr.table, grr.metadata, dir, exec);
}

Result<LoadedRelease> ReadRelease(const std::string& dir,
                                  const ExecutionOptions& exec) {
  const std::string manifest_path = dir + "/" + kManifestFile;
  auto manifest_text = io::ReadFileWithRetry(manifest_path);
  if (!manifest_text.ok()) {
    if (!manifest_text.status().IsNotFound()) return manifest_text.status();
    std::error_code ec;
    if (!fs::exists(dir, ec)) {
      return Status::NotFound("no release at '" + dir + "'");
    }
    if (!fs::exists(dir + "/" + kMetaFile, ec)) {
      return Status::NotFound("'" + dir +
                              "' contains no release (no MANIFEST or "
                              "meta.csv)");
    }
    // Pre-manifest (v1) directory: loadable, but nothing to check the
    // bytes against. v1 predates the mechanism zoo, so the family is
    // the explicit legacy-GRR default.
    FileFetcher from_disk = [&dir](const std::string& name) {
      return io::ReadFileWithRetry(dir + "/" + name);
    };
    PCLEAN_ASSIGN_OR_RETURN(
        LoadedRelease release,
        ParseReleaseTables(from_disk, dir, MechanismSpec{}, exec));
    release.format_version = 1;
    release.verified = false;
    release.metadata.relation_name = "r";
    return release;
  }

  PCLEAN_ASSIGN_OR_RETURN(
      Manifest manifest,
      ParseManifest(manifest_text.ValueOrDie(), manifest_path));
  // Read and checksum every listed file up front; parsing only ever
  // sees verified bytes.
  std::map<std::string, std::string> verified;
  for (const ManifestEntry& entry : manifest.files) {
    std::string content;
    PCLEAN_RETURN_NOT_OK(FetchAndCheck(dir, entry, &content));
    verified.emplace(entry.name, std::move(content));
  }
  FileFetcher from_manifest =
      [&verified, &dir](const std::string& name) -> Result<std::string> {
    auto it = verified.find(name);
    if (it == verified.end()) {
      return Status::DataLoss("'" + dir + "/" + name +
                              "' is referenced by the release but not "
                              "listed in the MANIFEST");
    }
    return it->second;
  };
  PCLEAN_ASSIGN_OR_RETURN(
      LoadedRelease release,
      ParseReleaseTables(from_manifest, dir, manifest.mechanism, exec,
                         &manifest.columns));
  release.metadata.relation_name = manifest.relation_name;
  if (release.relation.num_rows() != manifest.rows) {
    return Status::DataLoss(
        "'" + dir + "/" + kDataFile + "' parsed to " +
        std::to_string(release.relation.num_rows()) +
        " rows but the MANIFEST records " + std::to_string(manifest.rows));
  }
  release.format_version = kFormatVersion;
  release.verified = true;
  return release;
}

Result<PrivateTable> OpenRelease(const std::string& dir,
                                 const ExecutionOptions& exec) {
  PCLEAN_ASSIGN_OR_RETURN(LoadedRelease release, ReadRelease(dir, exec));
  // Injection point between the verified read and the queryable table:
  // a fault here models the analyst-side open failing after the bytes
  // were already fetched intact.
  PCLEAN_FAILPOINT("release.open.relation", dir);
  return PrivateTable::FromPrivateRelation(std::move(release.relation),
                                           std::move(release.metadata));
}

Result<ReleaseVerification> VerifyRelease(const std::string& dir) {
  const std::string manifest_path = dir + "/" + kManifestFile;
  auto manifest_text = io::ReadFileWithRetry(manifest_path);
  if (!manifest_text.ok()) {
    if (!manifest_text.status().IsNotFound()) return manifest_text.status();
    std::error_code ec;
    if (fs::exists(dir + "/" + kMetaFile, ec)) {
      // Deliberately strict: falling back to "v1, fine" here would let
      // a deleted MANIFEST silently downgrade a checksummed release.
      return Status::FailedPrecondition(
          "'" + dir +
          "' is an unverified pre-manifest (v1) release: it has no "
          "checksums to verify; rewrite it with WriteRelease to add a "
          "MANIFEST");
    }
    if (!fs::exists(dir, ec)) {
      return Status::NotFound("no release at '" + dir + "'");
    }
    return Status::NotFound("'" + dir +
                            "' contains no release (no MANIFEST or "
                            "meta.csv)");
  }

  PCLEAN_ASSIGN_OR_RETURN(
      Manifest manifest,
      ParseManifest(manifest_text.ValueOrDie(), manifest_path));
  ReleaseVerification verification;
  verification.format_version = kFormatVersion;
  verification.rows = manifest.rows;
  for (const ManifestEntry& entry : manifest.files) {
    std::string content;
    ReleaseFileCheck check;
    check.file = entry.name;
    check.bytes = entry.bytes;
    check.status = FetchAndCheck(dir, entry, &content);
    if (verification.status.ok() && !check.status.ok()) {
      verification.status = check.status;
    }
    verification.files.push_back(std::move(check));
  }
  if (verification.status.ok()) {
    // Checksums passing still leaves semantic damage (a writer bug or a
    // collision); a full parse is the final gate.
    auto loaded = ReadRelease(dir);
    if (!loaded.ok()) verification.status = loaded.status();
  }
  return verification;
}

}  // namespace privateclean
