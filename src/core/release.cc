#include "core/release.h"

#include <filesystem>

#include "table/csv.h"
#include "table/table_builder.h"

namespace privateclean {

namespace {

constexpr char kDataFile[] = "data.csv";
constexpr char kMetaFile[] = "meta.csv";
/// All release files encode NULL distinctly from the empty string.
/// data.csv historically used the writer's default (empty unquoted
/// field), which conflated a NULL string entry with "" on read; both
/// sides now pass the same literal. Reads stay backward compatible:
/// unquoted empty fields still parse as NULL under any null literal.
constexpr char kNullLiteral[] = "\\N";

CsvOptions ReleaseCsvOptions(const ExecutionOptions& exec = {}) {
  CsvOptions options;
  options.null_literal = kNullLiteral;
  options.exec = exec;
  return options;
}

Result<Schema> MetaSchema() {
  return Schema::Make(
      {Field::Discrete("attribute"), Field::Discrete("kind"),
       Field::Discrete("type"),
       Field::Numerical("param", ValueType::kDouble),
       Field::Numerical("sensitivity", ValueType::kDouble),
       Field::Numerical("domain_size", ValueType::kInt64)});
}

std::string DomainFileName(size_t index) {
  return "domain_" + std::to_string(index) + ".csv";
}

std::string TypeName(ValueType type) { return ValueTypeToString(type); }

Result<ValueType> TypeFromName(const std::string& name) {
  if (name == "int64") return ValueType::kInt64;
  if (name == "double") return ValueType::kDouble;
  if (name == "string") return ValueType::kString;
  return Status::IOError("unknown type '" + name + "' in release metadata");
}

}  // namespace

Status WriteRelease(const Table& private_relation,
                    const PrivateRelationMetadata& metadata,
                    const std::string& dir, const ExecutionOptions& exec) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("cannot create release directory '" + dir +
                           "': " + ec.message());
  }
  PCLEAN_RETURN_NOT_OK(WriteCsvFile(private_relation, dir + "/" + kDataFile,
                                    ReleaseCsvOptions(exec)));

  // meta.csv: one row per attribute, in schema order so the analyst can
  // reconstruct the schema exactly.
  PCLEAN_ASSIGN_OR_RETURN(Schema meta_schema, MetaSchema());
  TableBuilder meta(meta_schema);
  const Schema& schema = private_relation.schema();
  size_t domain_index = 0;
  for (size_t i = 0; i < schema.num_fields(); ++i) {
    const Field& field = schema.field(i);
    if (field.kind == AttributeKind::kDiscrete) {
      auto it = metadata.discrete.find(field.name);
      if (it == metadata.discrete.end()) {
        return Status::InvalidArgument(
            "metadata missing discrete attribute '" + field.name + "'");
      }
      meta.Row({Value(field.name), Value("discrete"),
                Value(TypeName(field.type)), Value(it->second.p),
                Value::Null(),
                Value(static_cast<int64_t>(it->second.domain.size()))});
      // Domain file: one typed column with the attribute's name.
      PCLEAN_ASSIGN_OR_RETURN(
          Schema domain_schema,
          Schema::Make({Field::Discrete(field.name, field.type)}));
      TableBuilder domain_table(domain_schema);
      for (const Value& v : it->second.domain.values()) {
        domain_table.Row({v});
      }
      PCLEAN_ASSIGN_OR_RETURN(Table dt, domain_table.Finish());
      PCLEAN_RETURN_NOT_OK(
          WriteCsvFile(dt, dir + "/" + DomainFileName(domain_index),
                       ReleaseCsvOptions()));
      ++domain_index;
    } else {
      auto it = metadata.numeric.find(field.name);
      if (it == metadata.numeric.end()) {
        return Status::InvalidArgument(
            "metadata missing numerical attribute '" + field.name + "'");
      }
      meta.Row({Value(field.name), Value("numeric"),
                Value(TypeName(field.type)), Value(it->second.b),
                Value(it->second.sensitivity), Value::Null()});
    }
  }
  PCLEAN_ASSIGN_OR_RETURN(Table meta_table, meta.Finish());
  return WriteCsvFile(meta_table, dir + "/" + kMetaFile);
}

Status WriteRelease(const GrrOutput& grr, const std::string& dir,
                    const ExecutionOptions& exec) {
  return WriteRelease(grr.table, grr.metadata, dir, exec);
}

Result<LoadedRelease> ReadRelease(const std::string& dir,
                                  const ExecutionOptions& exec) {
  PCLEAN_ASSIGN_OR_RETURN(Schema meta_schema, MetaSchema());
  PCLEAN_ASSIGN_OR_RETURN(Table meta,
                          ReadCsvFile(dir + "/" + kMetaFile, meta_schema));
  if (meta.num_rows() == 0) {
    return Status::IOError("release metadata is empty");
  }

  // Reconstruct the data schema and the metadata maps.
  std::vector<Field> fields;
  LoadedRelease release;
  size_t domain_index = 0;
  for (size_t r = 0; r < meta.num_rows(); ++r) {
    std::string name = meta.column(0).StringAt(r);
    std::string kind = meta.column(1).StringAt(r);
    PCLEAN_ASSIGN_OR_RETURN(ValueType type,
                            TypeFromName(meta.column(2).StringAt(r)));
    if (meta.column(3).IsNull(r)) {
      return Status::IOError("attribute '" + name +
                             "' missing its mechanism parameter");
    }
    double param = meta.column(3).DoubleAt(r);
    if (kind == "discrete") {
      fields.push_back(Field{name, type, AttributeKind::kDiscrete});
      PCLEAN_ASSIGN_OR_RETURN(
          Schema domain_schema,
          Schema::Make({Field::Discrete(name, type)}));
      PCLEAN_ASSIGN_OR_RETURN(
          Table domain_table,
          ReadCsvFile(dir + "/" + DomainFileName(domain_index),
                      domain_schema, ReleaseCsvOptions()));
      ++domain_index;
      std::vector<Value> values;
      values.reserve(domain_table.num_rows());
      for (size_t i = 0; i < domain_table.num_rows(); ++i) {
        values.push_back(domain_table.column(0).ValueAt(i));
      }
      Domain domain = Domain::FromValues(values);
      if (!meta.column(5).IsNull(r) &&
          domain.size() !=
              static_cast<size_t>(meta.column(5).Int64At(r))) {
        return Status::IOError("domain file for '" + name +
                               "' does not match the recorded size");
      }
      release.metadata.discrete.emplace(
          name, DiscreteAttributeMeta{param, std::move(domain)});
    } else if (kind == "numeric") {
      if (type == ValueType::kString) {
        return Status::IOError("numeric attribute '" + name +
                               "' cannot be string-typed");
      }
      fields.push_back(Field{name, type, AttributeKind::kNumerical});
      double sensitivity =
          meta.column(4).IsNull(r) ? 0.0 : meta.column(4).DoubleAt(r);
      release.metadata.numeric.emplace(
          name, NumericAttributeMeta{param, sensitivity});
    } else {
      return Status::IOError("unknown attribute kind '" + kind + "'");
    }
  }
  PCLEAN_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(fields)));
  PCLEAN_ASSIGN_OR_RETURN(
      release.relation,
      ReadCsvFile(dir + "/" + kDataFile, schema, ReleaseCsvOptions(exec)));
  release.metadata.dataset_size = release.relation.num_rows();
  return release;
}

Result<PrivateTable> OpenRelease(const std::string& dir,
                                 const ExecutionOptions& exec) {
  PCLEAN_ASSIGN_OR_RETURN(LoadedRelease release, ReadRelease(dir, exec));
  return PrivateTable::FromPrivateRelation(std::move(release.relation),
                                           std::move(release.metadata));
}

}  // namespace privateclean
