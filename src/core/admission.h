#ifndef PRIVATECLEAN_CORE_ADMISSION_H_
#define PRIVATECLEAN_CORE_ADMISSION_H_

#include <string>

#include "core/private_table.h"
#include "core/sql_execution.h"
#include "privacy/ledger.h"
#include "query/sql.h"

namespace privateclean {

/// The ε price of one parsed query against `table`'s mechanism
/// metadata: the sum of per-attribute ε (privacy/accountant.h, mechanism
/// aware) over the distinct attributes the query reads — the WHERE tree,
/// the aggregate's argument, GROUP BY, and DISTINCT. A query touching no
/// attribute (a bare COUNT(1)) costs 0: it reveals only the public
/// release size. An attribute the relation does not have is a typed
/// NotFound naming it — priced queries never reach execution to find
/// out there.
Result<double> QueryEpsilonCost(const PrivateTable& table,
                                const ParsedSql& parsed);

/// What admission decided for a query it let through.
struct AdmissionTicket {
  /// The ε charged (0 = free query, nothing was written to the ledger).
  double cost = 0.0;
  /// The tenant's budget BEFORE this charge (all-zero for a tenant the
  /// ledger has never seen, which can only admit free queries).
  TenantBudget before;
};

/// Admission control: prices `sql` with QueryEpsilonCost and charges the
/// tenant's budget in `ledger` — durably, BEFORE any execution side
/// effect. Typed failures:
///   ResourceExhausted — the charge overdrafts; names the tenant, spent,
///                       and remaining ε. Nothing is charged.
///   InvalidArgument   — the SQL does not parse.
///   NotFound          — the query references an attribute the relation
///                       does not have (nothing is charged), or the FROM
///                       name is not the relation the table serves.
Result<AdmissionTicket> AdmitSqlQuery(BudgetLedger& ledger,
                                      const std::string& tenant,
                                      const PrivateTable& table,
                                      const std::string& sql);

/// Renders the one-line charge acknowledgement `pclean query` prints
/// after admission ("charged epsilon E to tenant 't' (remaining R)").
/// The server prepends the same line to a served RESULT, so a charged
/// answer is byte-identical locally and over the wire. `after` is the
/// tenant's budget after the charge (BudgetLedger::BudgetOrZero).
std::string RenderAdmissionLine(const std::string& tenant,
                                const AdmissionTicket& ticket,
                                const TenantBudget& after);

/// The admission-controlled query entry point: AdmitSqlQuery, then
/// ExecuteSqlQuery. The charge is durable before the estimators run, so
/// a crash mid-query can strand at most this one query's ε as spent-
/// but-unanswered — never an answered query as unspent.
Result<SqlResultSet> ExecuteSqlQueryAdmitted(
    BudgetLedger& ledger, const std::string& tenant,
    const PrivateTable& table, const std::string& sql,
    const QueryOptions& options = QueryOptions());

}  // namespace privateclean

#endif  // PRIVATECLEAN_CORE_ADMISSION_H_
