#include "core/sql_execution.h"

#include "common/random.h"

namespace privateclean {

namespace {

bool IsExtensionAggregate(AggregateType agg) {
  return agg == AggregateType::kMedian || agg == AggregateType::kVar ||
         agg == AggregateType::kStd || agg == AggregateType::kPercentile;
}

QueryResult PointResult(double value, EstimatorKind kind, size_t s) {
  QueryResult r;
  r.estimator = kind;
  r.estimate = value;
  r.nominal = value;
  r.ci = ConfidenceInterval{value, value};
  r.s = s;
  return r;
}

}  // namespace

Result<QueryResult> ExecuteSql(const PrivateTable& table,
                               const std::string& sql,
                               const QueryOptions& options) {
  PCLEAN_ASSIGN_OR_RETURN(ParsedSql parsed, ParseSql(sql));
  if (parsed.conjunct.has_value()) {
    return table.CountConjunctive(*parsed.query.predicate,
                                  *parsed.conjunct, options);
  }
  if (IsExtensionAggregate(parsed.query.agg)) {
    if (options.bootstrap_replicates > 0) {
      // Bootstrap percentile interval (§10); the replicate loop shards
      // per options.exec with a replicate-forked RNG stream, so the
      // interval is identical at every thread count.
      Rng rng(options.bootstrap_seed);
      return table.BootstrapExtendedAggregate(
          parsed.query, rng, options.bootstrap_replicates,
          options.confidence, options.exec);
    }
    PCLEAN_ASSIGN_OR_RETURN(
        double value, table.ExtendedAggregate(parsed.query, options.exec));
    return PointResult(value, EstimatorKind::kPrivateClean, table.size());
  }
  return table.Execute(parsed.query, options);
}

Result<QueryResult> ExecuteSqlDirect(const PrivateTable& table,
                                     const std::string& sql,
                                     const ExecutionOptions& exec) {
  PCLEAN_ASSIGN_OR_RETURN(ParsedSql parsed, ParseSql(sql));
  if (parsed.conjunct.has_value()) {
    // Nominal conjunctive count: scan the quadrants, no correction.
    PCLEAN_ASSIGN_OR_RETURN(
        ConjunctiveScanStats stats,
        ScanConjunctive(table.relation(), *parsed.query.predicate,
                        *parsed.conjunct, exec));
    return PointResult(static_cast<double>(stats.count_tt),
                       EstimatorKind::kDirect, table.size());
  }
  if (IsExtensionAggregate(parsed.query.agg)) {
    // Nominal extension aggregate straight off the private relation.
    PCLEAN_ASSIGN_OR_RETURN(
        double value, ExecuteAggregate(table.relation(), parsed.query, exec));
    return PointResult(value, EstimatorKind::kDirect, table.size());
  }
  QueryOptions options;
  options.exec = exec;
  return table.ExecuteDirect(parsed.query, options);
}

}  // namespace privateclean
