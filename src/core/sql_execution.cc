#include "core/sql_execution.h"

#include <algorithm>
#include <cctype>
#include <ostream>
#include <utility>

#include "common/string_util.h"

#include "common/random.h"
#include "query/vectorized.h"

namespace privateclean {

namespace {

bool IsExtensionAggregate(AggregateType agg) {
  return agg == AggregateType::kMedian || agg == AggregateType::kVar ||
         agg == AggregateType::kStd || agg == AggregateType::kPercentile;
}

QueryResult PointResult(double value, EstimatorKind kind, size_t s) {
  QueryResult r;
  r.estimator = kind;
  r.estimate = value;
  r.nominal = value;
  r.ci = ConfidenceInterval{value, value};
  r.s = s;
  return r;
}

std::string UpperAggName(AggregateType agg) {
  std::string s = AggregateTypeToString(agg);
  for (char& c : s) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return s;
}

/// ORDER BY / LIMIT shaping of grouped rows. stable_sort keeps the
/// estimator's first-appearance order on ties, so shaping is
/// deterministic.
void ShapeRows(const ParsedSql& parsed, std::vector<SqlRow>* rows) {
  if (parsed.order_by.has_value()) {
    const SqlOrderBy order = *parsed.order_by;
    std::stable_sort(
        rows->begin(), rows->end(), [order](const SqlRow& a, const SqlRow& b) {
          if (order.by_estimate) {
            return order.descending ? a.result.estimate > b.result.estimate
                                    : a.result.estimate < b.result.estimate;
          }
          return order.descending ? *b.group < *a.group : *a.group < *b.group;
        });
  }
  if (parsed.limit.has_value() && rows->size() > *parsed.limit) {
    rows->resize(*parsed.limit);
  }
}

SqlResultSet ScalarResult(QueryResult r) {
  SqlResultSet rs;
  rs.rows.push_back(SqlRow{std::nullopt, std::move(r)});
  return rs;
}

/// The FROM name must match the relation the table was opened as. An
/// unnamed table (in-process PrivateTable::Create) accepts any
/// spelling; a release validates against its MANIFEST `relation:` name.
Status CheckRelationName(const PrivateTable& table, const ParsedSql& parsed) {
  const std::string& expected = table.metadata().relation_name;
  if (expected.empty() || parsed.table_name == expected) return Status::OK();
  return Status::NotFound("unknown relation '" + parsed.table_name +
                          "' in FROM: this release serves relation '" +
                          expected + "'");
}

}  // namespace

Result<SqlResultSet> ExecuteSqlQuery(const PrivateTable& table,
                                     const std::string& sql,
                                     const QueryOptions& options) {
  PCLEAN_ASSIGN_OR_RETURN(ParsedSql parsed, ParseSql(sql));
  PCLEAN_RETURN_NOT_OK(CheckRelationName(table, parsed));
  if (parsed.count_distinct) {
    return Status::FailedPrecondition(
        "not privately answerable: COUNT(DISTINCT " +
        parsed.distinct_attribute +
        ") — GRR spreads rows across the whole domain, so the nominal "
        "distinct count concentrates at the public domain size regardless "
        "of the data");
  }
  if (parsed.select_distinct) {
    return Status::FailedPrecondition(
        "not privately answerable: SELECT DISTINCT " +
        parsed.distinct_attribute +
        " — under GRR nearly every domain value appears in the nominal "
        "relation, so the distinct set reflects the public domain, not "
        "the data (the Direct baseline reports the nominal set)");
  }
  if (parsed.query.agg == AggregateType::kMin ||
      parsed.query.agg == AggregateType::kMax) {
    return Status::FailedPrecondition(
        "not privately answerable: " + UpperAggName(parsed.query.agg) + "(" +
        parsed.query.numeric_attribute +
        ") — extreme values are destroyed by randomization; no "
        "bias-corrected estimator exists (the Direct baseline reports the "
        "nominal extreme)");
  }
  if (!parsed.group_by.empty()) {
    if (parsed.where.has_value()) {
      return Status::FailedPrecondition(
          "not privately answerable: GROUP BY with WHERE — the per-group "
          "correction (§8.3.4) is derived for whole-relation counts");
    }
    if (parsed.query.agg != AggregateType::kCount) {
      return Status::FailedPrecondition(
          "not privately answerable: GROUP BY with " +
          UpperAggName(parsed.query.agg) +
          "(...) — the grouped estimator is derived for COUNT only "
          "(§8.3.4)");
    }
    PCLEAN_ASSIGN_OR_RETURN(auto groups,
                            table.GroupByCountEstimate(parsed.group_by,
                                                       options));
    SqlResultSet rs;
    rs.grouped = true;
    rs.rows.reserve(groups.size());
    for (auto& [key, result] : groups) {
      rs.rows.push_back(SqlRow{key, std::move(result)});
    }
    ShapeRows(parsed, &rs.rows);
    return rs;
  }
  if (parsed.where.has_value() && !parsed.query.predicate.has_value()) {
    // ParseSql accepted a WHERE tree it could not plan (pure syntax is
    // broader than the estimators); re-plan to surface the typed
    // "not privately answerable" error.
    PCLEAN_ASSIGN_OR_RETURN(WherePlan plan,
                            PlanWhere(*parsed.where, parsed.query.agg));
    parsed.query.predicate = std::move(plan.predicate);
    parsed.conjunct = std::move(plan.conjunct);
  }
  if (parsed.conjunct.has_value()) {
    PCLEAN_ASSIGN_OR_RETURN(
        QueryResult r, table.CountConjunctive(*parsed.query.predicate,
                                              *parsed.conjunct, options));
    return ScalarResult(std::move(r));
  }
  if (IsExtensionAggregate(parsed.query.agg)) {
    if (options.bootstrap_replicates > 0) {
      // Bootstrap percentile interval (§10); the replicate loop shards
      // per options.exec with a replicate-forked RNG stream, so the
      // interval is identical at every thread count.
      Rng rng(options.bootstrap_seed);
      PCLEAN_ASSIGN_OR_RETURN(
          QueryResult r,
          table.BootstrapExtendedAggregate(
              parsed.query, rng, options.bootstrap_replicates,
              options.confidence, options.exec));
      return ScalarResult(std::move(r));
    }
    PCLEAN_ASSIGN_OR_RETURN(
        double value, table.ExtendedAggregate(parsed.query, options.exec));
    return ScalarResult(
        PointResult(value, EstimatorKind::kPrivateClean, table.size()));
  }
  PCLEAN_ASSIGN_OR_RETURN(QueryResult r,
                          table.Execute(parsed.query, options));
  return ScalarResult(std::move(r));
}

Result<SqlResultSet> ExecuteSqlQueryDirect(const PrivateTable& table,
                                           const std::string& sql,
                                           const ExecutionOptions& exec) {
  PCLEAN_ASSIGN_OR_RETURN(ParsedSql parsed, ParseSql(sql));
  PCLEAN_RETURN_NOT_OK(CheckRelationName(table, parsed));
  const Table& relation = table.relation();
  if (parsed.count_distinct) {
    // Nominal distinct-value count (NULL counts as its own value iff
    // present, matching GroupByCount's bucketing).
    PCLEAN_ASSIGN_OR_RETURN(
        auto groups, GroupByCount(relation, parsed.distinct_attribute));
    return ScalarResult(PointResult(static_cast<double>(groups.size()),
                                    EstimatorKind::kDirect, table.size()));
  }
  if (parsed.select_distinct || !parsed.group_by.empty()) {
    const std::string& attr = parsed.select_distinct
                                  ? parsed.distinct_attribute
                                  : parsed.group_by;
    if (!parsed.group_by.empty() &&
        parsed.query.agg != AggregateType::kCount) {
      return Status::InvalidArgument(
          "Direct GROUP BY supports COUNT only (got " +
          UpperAggName(parsed.query.agg) + ")");
    }
    std::vector<uint8_t> mask;
    if (parsed.where.has_value()) {
      PCLEAN_ASSIGN_OR_RETURN(
          CompiledPredicate predicate,
          CompiledPredicate::Compile(relation, *parsed.where));
      PCLEAN_ASSIGN_OR_RETURN(
          mask, predicate.EvaluateAll(relation.num_rows(), exec));
    }
    PCLEAN_ASSIGN_OR_RETURN(const Column* col, relation.ColumnByName(attr));
    std::map<Value, size_t> counts;
    for (size_t r = 0; r < col->size(); ++r) {
      if (!mask.empty() && !mask[r]) continue;
      counts[col->ValueAt(r)]++;
    }
    SqlResultSet rs;
    rs.grouped = true;
    rs.rows.reserve(counts.size());
    for (const auto& [key, n] : counts) {
      rs.rows.push_back(SqlRow{
          key, PointResult(static_cast<double>(n), EstimatorKind::kDirect,
                           table.size())});
    }
    ShapeRows(parsed, &rs.rows);
    return rs;
  }
  if (parsed.conjunct.has_value()) {
    // Nominal conjunctive count: scan the quadrants, no correction.
    PCLEAN_ASSIGN_OR_RETURN(
        ConjunctiveScanStats stats,
        ScanConjunctive(relation, *parsed.query.predicate, *parsed.conjunct,
                        exec));
    return ScalarResult(PointResult(static_cast<double>(stats.count_tt),
                                    EstimatorKind::kDirect, table.size()));
  }
  if (parsed.where.has_value() && !parsed.query.predicate.has_value()) {
    // A WHERE tree beyond the private planner (e.g. OR across
    // attributes): Direct just evaluates it — compile the whole tree to
    // a vectorized mask and aggregate nominally.
    PCLEAN_ASSIGN_OR_RETURN(
        CompiledPredicate predicate,
        CompiledPredicate::Compile(relation, *parsed.where));
    PCLEAN_ASSIGN_OR_RETURN(
        double value,
        ExecuteAggregate(relation, parsed.query, predicate, exec));
    return ScalarResult(
        PointResult(value, EstimatorKind::kDirect, table.size()));
  }
  if (IsExtensionAggregate(parsed.query.agg)) {
    // Nominal extension aggregate straight off the private relation.
    PCLEAN_ASSIGN_OR_RETURN(
        double value, ExecuteAggregate(relation, parsed.query, exec));
    return ScalarResult(
        PointResult(value, EstimatorKind::kDirect, table.size()));
  }
  QueryOptions options;
  options.exec = exec;
  PCLEAN_ASSIGN_OR_RETURN(QueryResult r,
                          table.ExecuteDirect(parsed.query, options));
  return ScalarResult(std::move(r));
}

void RenderSqlResultText(const SqlResultSet& rs, bool direct,
                         double confidence, std::ostream& out) {
  if (direct) {
    if (rs.grouped) {
      // Group keys render as SQL literals, so NULL and '' stay distinct.
      for (const SqlRow& row : rs.rows) {
        out << RenderSqlLiteral(*row.group) << ": "
            << FormatDouble(row.result.estimate) << "\n";
      }
      return;
    }
    out << "direct: " << FormatDouble(rs.rows.front().result.estimate)
        << "\n";
    return;
  }
  if (rs.grouped) {
    for (const SqlRow& row : rs.rows) {
      out << RenderSqlLiteral(*row.group) << ": "
          << FormatDouble(row.result.estimate) << " CI: ["
          << FormatDouble(row.result.ci.lo) << ", "
          << FormatDouble(row.result.ci.hi) << "]\n";
    }
    return;
  }
  const QueryResult& r = rs.rows.front().result;
  out << "estimate: " << FormatDouble(r.estimate) << "\n";
  if (r.ci.Width() > 0.0) {
    out << FormatDouble(confidence * 100) << "% CI: ["
        << FormatDouble(r.ci.lo) << ", " << FormatDouble(r.ci.hi) << "]\n";
  }
  if (r.replicates_requested > 0) {
    // Degenerate resamples drop out of the interval; surface the count
    // so a thinned interval is visible to the analyst.
    out << "bootstrap replicates: " << r.replicates_effective << "/"
        << r.replicates_requested << "\n";
  }
}

Result<QueryResult> ExecuteSql(const PrivateTable& table,
                               const std::string& sql,
                               const QueryOptions& options) {
  PCLEAN_ASSIGN_OR_RETURN(SqlResultSet rs, ExecuteSqlQuery(table, sql, options));
  if (rs.grouped) {
    return Status::InvalidArgument(
        "query returns " + std::to_string(rs.rows.size()) +
        " grouped rows; use ExecuteSqlQuery for GROUP BY / SELECT DISTINCT");
  }
  return std::move(rs.rows.front().result);
}

Result<QueryResult> ExecuteSqlDirect(const PrivateTable& table,
                                     const std::string& sql,
                                     const ExecutionOptions& exec) {
  PCLEAN_ASSIGN_OR_RETURN(SqlResultSet rs,
                          ExecuteSqlQueryDirect(table, sql, exec));
  if (rs.grouped) {
    return Status::InvalidArgument(
        "query returns " + std::to_string(rs.rows.size()) +
        " grouped rows; use ExecuteSqlQueryDirect for GROUP BY / SELECT "
        "DISTINCT");
  }
  return std::move(rs.rows.front().result);
}

}  // namespace privateclean
