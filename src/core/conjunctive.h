#ifndef PRIVATECLEAN_CORE_CONJUNCTIVE_H_
#define PRIVATECLEAN_CORE_CONJUNCTIVE_H_

#include "common/result.h"
#include "common/thread_pool.h"
#include "core/estimators.h"
#include "query/predicate.h"
#include "table/table.h"

namespace privateclean {

/// §10 extension ("Aggregates over Select-Project-Join Views"): COUNT
/// with a conjunctive predicate over *two different* discrete
/// attributes,
///
///   SELECT count(1) FROM R WHERE cond_a(d_a) AND cond_b(d_b)
///
/// GRR randomizes the attributes independently, so the joint
/// observation is governed by the Kronecker product of the two
/// per-attribute 2×2 transition matrices; inverting it (the inverse of a
/// Kronecker product is the Kronecker product of the inverses) yields an
/// unbiased estimate of the true quadrant counts.

/// One-pass quadrant counts for the pair (cond_a, cond_b) over the
/// cleaned private relation.
struct ConjunctiveScanStats {
  size_t total_rows = 0;
  size_t count_tt = 0;  ///< a true,  b true (the target quadrant)
  size_t count_tf = 0;  ///< a true,  b false
  size_t count_ft = 0;  ///< a false, b true
  size_t count_ff = 0;  ///< a false, b false
};

/// Scans `table` once, evaluating both predicates per row. The scan is
/// sharded per `exec` (common/thread_pool.h); per-shard quadrant counts
/// are summed in shard order, so the result is thread-count independent.
Result<ConjunctiveScanStats> ScanConjunctive(const Table& table,
                                             const Predicate& cond_a,
                                             const Predicate& cond_b,
                                             const ExecutionOptions& exec = {});

/// Solves the 4×4 linear system (M_a ⊗ M_b)·q_true = q_observed for the
/// true quadrant counts and returns the corrected count of rows
/// satisfying both predicates, with a CLT interval. `in_a`/`in_b` carry
/// each attribute's (p, l, N) — provenance-adjusted when cleaning
/// happened, exactly as for single-predicate estimation.
Result<QueryResult> EstimateConjunctiveCount(
    const ConjunctiveScanStats& stats, const EstimationInputs& in_a,
    const EstimationInputs& in_b);

}  // namespace privateclean

#endif  // PRIVATECLEAN_CORE_CONJUNCTIVE_H_
