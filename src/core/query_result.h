#ifndef PRIVATECLEAN_CORE_QUERY_RESULT_H_
#define PRIVATECLEAN_CORE_QUERY_RESULT_H_

#include <cstddef>

#include "common/statistics.h"

namespace privateclean {

/// Memory accounting captured when a query result was produced: the
/// footprint of the relation the query scanned, plus the process-wide
/// arena profiler totals (common/arena.h). Dictionary bytes live in
/// per-column arenas, so `dictionary_bytes` is the interned-string
/// portion of `arena_live_bytes`.
struct MemoryStats {
  size_t relation_payload_bytes = 0;  ///< Code/value/validity vectors.
  size_t dictionary_bytes = 0;        ///< Interned string bytes (arenas).
  size_t dictionary_entries = 0;      ///< Distinct strings across columns.
  size_t arena_live_bytes = 0;        ///< Live bytes across all arena sites.
  size_t arena_peak_bytes = 0;        ///< Summed per-site high-water marks.
  size_t arena_alloc_calls = 0;       ///< Cumulative arena allocations.
};

/// Which estimator produced a result.
enum class EstimatorKind {
  kDirect = 0,        ///< Nominal value read off the private relation.
  kPrivateClean = 1,  ///< Bias-corrected weighted estimate (this paper).
};

/// An estimated aggregate with its CLT confidence interval and the
/// deterministic quantities that parameterized the estimate — useful for
/// diagnostics and for the experiment harnesses.
struct QueryResult {
  double estimate = 0.0;
  ConfidenceInterval ci;
  double confidence = 0.95;  ///< Nominal coverage of `ci`.
  EstimatorKind estimator = EstimatorKind::kPrivateClean;

  // Diagnostics (paper §5.3/§6.3 parameters).
  double nominal = 0.0;  ///< Uncorrected value on the private relation.
  double p = 0.0;        ///< Discrete randomization probability.
  double l = 0.0;        ///< Dirty-side distinct-value selectivity.
  double n = 0.0;        ///< N, dirty domain size.
  size_t s = 0;          ///< S, relation size.

  // Bootstrap provenance (zero for non-bootstrap results). Degenerate
  // resamples (e.g. an empty selection) are dropped, so the interval may
  // rest on fewer replicates than requested; callers that care about
  // interval quality should compare the two.
  size_t replicates_requested = 0;  ///< Bootstrap replicates asked for.
  size_t replicates_effective = 0;  ///< Replicates the CI was computed on.

  /// Relation/arena memory accounting at result time (zeroed for results
  /// built outside PrivateTable's query entry points).
  MemoryStats memory;
};

}  // namespace privateclean

#endif  // PRIVATECLEAN_CORE_QUERY_RESULT_H_
