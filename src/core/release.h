#ifndef PRIVATECLEAN_CORE_RELEASE_H_
#define PRIVATECLEAN_CORE_RELEASE_H_

#include <string>

#include "common/result.h"
#include "core/private_table.h"
#include "privacy/grr.h"

namespace privateclean {

/// Serialization of a private release — the actual provider→analyst
/// handoff. A release directory contains:
///
///   data.csv       the private relation V (RFC-4180 CSV)
///   meta.csv       one row per attribute: name, kind, physical type,
///                  mechanism parameter (p or b), sensitivity, domain
///                  size; plus the relation size
///   domain_<i>.csv the randomization-time domain of the i-th discrete
///                  attribute (one typed column; nulls encoded as \N)
///
/// Everything in the release is a public parameter of the mechanism —
/// shipping it alongside V does not weaken ε-local differential privacy
/// — and it is exactly what the analyst-side estimators need (p_i, b_i,
/// the dirty domains fixing N, and S).

/// Writes the release into `dir` (created if missing). `exec` shards the
/// CSV serialization of data.csv (see CsvOptions::exec); the bytes
/// written are identical at every thread count.
Status WriteRelease(const Table& private_relation,
                    const PrivateRelationMetadata& metadata,
                    const std::string& dir, const ExecutionOptions& exec = {});

/// Convenience overload for a fresh GRR output.
Status WriteRelease(const GrrOutput& grr, const std::string& dir,
                    const ExecutionOptions& exec = {});

/// A loaded release: the private relation and its mechanism metadata.
struct LoadedRelease {
  Table relation;
  PrivateRelationMetadata metadata;
};

/// Reads a release directory back. `exec` shards the CSV cell typing of
/// data.csv; the resulting Table is identical at every thread count.
Result<LoadedRelease> ReadRelease(const std::string& dir,
                                  const ExecutionOptions& exec = {});

/// Reconstructs an analyst-side PrivateTable from a loaded release. The
/// relation must be the *uncleaned* private relation as released (the
/// provenance snapshot anchors to it); apply cleaners afterwards via
/// PrivateTable::Clean as usual.
Result<PrivateTable> OpenRelease(const std::string& dir,
                                 const ExecutionOptions& exec = {});

}  // namespace privateclean

#endif  // PRIVATECLEAN_CORE_RELEASE_H_
