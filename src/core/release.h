#ifndef PRIVATECLEAN_CORE_RELEASE_H_
#define PRIVATECLEAN_CORE_RELEASE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/private_table.h"
#include "privacy/grr.h"

namespace privateclean {

/// Serialization of a private release — the actual provider→analyst
/// handoff. A format-v2 release directory contains:
///
///   MANIFEST       magic, format version, relation size, and one line
///                  per payload file with its byte length and CRC32C,
///                  followed by a self-checksum of the manifest itself
///   data.csv       the private relation V (RFC-4180 CSV)
///   meta.csv       one row per attribute: name, kind, physical type,
///                  mechanism parameter (p or b), sensitivity, domain
///                  size; plus the relation size
///   domain_<i>.csv the randomization-time domain of the i-th discrete
///                  attribute (one typed column; nulls encoded as \N)
///
/// Everything in the release is a public parameter of the mechanism —
/// shipping it alongside V does not weaken ε-local differential privacy
/// — and it is exactly what the analyst-side estimators need (p_i, b_i,
/// the dirty domains fixing N, and S).
///
/// Durability contract. WriteRelease renders every file in memory
/// first, writes them into a temporary sibling directory with
/// write+fsync, fsyncs that directory, and only then renames it over
/// the target (backing up and restoring an existing release if the
/// swap fails part-way). ReadRelease reads each payload file once,
/// verifies its length and CRC32C against the MANIFEST before parsing,
/// and maps damage to typed statuses:
///
///   NotFound           no release at that path (or a torn swap left
///                      nothing behind)
///   DataLoss           checksum/length mismatch, truncated record, or
///                      a file the MANIFEST lists but the dir lacks
///   IOError            possibly-transient read failure (retried with
///                      bounded backoff before being returned)
///   FailedPrecondition strict verification of a pre-manifest (v1)
///                      release, which has no checksums to check
///   AlreadyExists      the target exists and is not a replaceable
///                      release directory

/// Writes the release into `dir` atomically: on return the target is
/// either the complete new release or (on error) its previous content.
/// An existing release directory (or empty directory) at `dir` is
/// replaced by atomic swap; anything else there fails with
/// AlreadyExists. `exec` shards the CSV serialization of data.csv (see
/// CsvOptions::exec); the bytes written are identical at every thread
/// count.
Status WriteRelease(const Table& private_relation,
                    const PrivateRelationMetadata& metadata,
                    const std::string& dir, const ExecutionOptions& exec = {});

/// Convenience overload for a fresh GRR output.
Status WriteRelease(const GrrOutput& grr, const std::string& dir,
                    const ExecutionOptions& exec = {});

/// A loaded release: the private relation and its mechanism metadata.
struct LoadedRelease {
  Table relation;
  PrivateRelationMetadata metadata;
  /// 2 for manifest releases, 1 for pre-manifest directories.
  int format_version = 2;
  /// True iff every payload file was checked against MANIFEST checksums
  /// before parsing. v1 releases load with `verified = false`.
  bool verified = false;
};

/// Reads a release directory back, verifying MANIFEST checksums. v1
/// directories (no MANIFEST, but a meta.csv) still load, flagged
/// `verified = false`. `exec` shards the CSV cell typing of data.csv;
/// the resulting Table is identical at every thread count.
Result<LoadedRelease> ReadRelease(const std::string& dir,
                                  const ExecutionOptions& exec = {});

/// Reconstructs an analyst-side PrivateTable from a loaded release. The
/// relation must be the *uncleaned* private relation as released (the
/// provenance snapshot anchors to it); apply cleaners afterwards via
/// PrivateTable::Clean as usual.
Result<PrivateTable> OpenRelease(const std::string& dir,
                                 const ExecutionOptions& exec = {});

/// Outcome of checking one payload file against the MANIFEST.
struct ReleaseFileCheck {
  std::string file;    ///< name relative to the release directory
  uint64_t bytes = 0;  ///< size recorded in the MANIFEST
  Status status;       ///< OK, or typed DataLoss/NotFound/IOError
};

/// Result of `VerifyRelease` on a manifest release.
struct ReleaseVerification {
  int format_version = 2;
  uint64_t rows = 0;  ///< relation size recorded in the MANIFEST
  std::vector<ReleaseFileCheck> files;
  /// OK iff every file check passed and the release parses; otherwise
  /// the first failure, with its file named in the message.
  Status status;
};

/// Strict integrity check behind `pclean verify`. Unlike ReadRelease it
/// does NOT accept v1 directories: a release without a MANIFEST cannot
/// be verified and yields FailedPrecondition (otherwise deleting the
/// MANIFEST would silently downgrade a checksummed release to an
/// unchecked one). Returns an error Result when there is no manifest to
/// check against (NotFound / DataLoss / FailedPrecondition); otherwise
/// returns per-file outcomes plus an overall status.
Result<ReleaseVerification> VerifyRelease(const std::string& dir);

}  // namespace privateclean

#endif  // PRIVATECLEAN_CORE_RELEASE_H_
