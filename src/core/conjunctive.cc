#include "core/conjunctive.h"

#include <algorithm>
#include <cmath>

#include "privacy/randomized_response.h"
#include "query/vectorized.h"

namespace privateclean {

Result<ConjunctiveScanStats> ScanConjunctive(const Table& table,
                                             const Predicate& cond_a,
                                             const Predicate& cond_b,
                                             const ExecutionOptions& exec) {
  if (cond_a.attribute() == cond_b.attribute()) {
    return Status::InvalidArgument(
        "conjunctive estimation requires predicates on two different "
        "attributes (combine same-attribute conditions into one "
        "Predicate instead)");
  }
  PCLEAN_ASSIGN_OR_RETURN(CompiledPredicate pred_a,
                          CompiledPredicate::Compile(table, cond_a));
  PCLEAN_ASSIGN_OR_RETURN(CompiledPredicate pred_b,
                          CompiledPredicate::Compile(table, cond_b));
  ConjunctiveScanStats stats;
  stats.total_rows = table.num_rows();
  const size_t shards = ShardCountForRows(table.num_rows());
  std::vector<ConjunctiveScanStats> partials(shards);
  PCLEAN_RETURN_NOT_OK(ParallelFor(
      table.num_rows(), shards, exec,
      [&](size_t shard, size_t begin, size_t end) -> Status {
        ConjunctiveScanStats& part = partials[shard];
        uint8_t mask_a[kVectorBatchRows];
        uint8_t mask_b[kVectorBatchRows];
        for (size_t b = begin; b < end; b += kVectorBatchRows) {
          const size_t batch = std::min(kVectorBatchRows, end - b);
          pred_a.EvalBatch(b, batch, mask_a);
          pred_b.EvalBatch(b, batch, mask_b);
          for (size_t i = 0; i < batch; ++i) {
            if (mask_a[i] && mask_b[i]) {
              ++part.count_tt;
            } else if (mask_a[i]) {
              ++part.count_tf;
            } else if (mask_b[i]) {
              ++part.count_ft;
            } else {
              ++part.count_ff;
            }
          }
        }
        return Status::OK();
      }));
  for (const ConjunctiveScanStats& part : partials) {
    stats.count_tt += part.count_tt;
    stats.count_tf += part.count_tf;
    stats.count_ft += part.count_ft;
    stats.count_ff += part.count_ff;
  }
  return stats;
}

Result<QueryResult> EstimateConjunctiveCount(
    const ConjunctiveScanStats& stats, const EstimationInputs& in_a,
    const EstimationInputs& in_b) {
  PCLEAN_RETURN_NOT_OK(in_a.Validate());
  PCLEAN_RETURN_NOT_OK(in_b.Validate());
  if (stats.total_rows == 0) {
    return Status::InvalidArgument("cannot estimate over an empty relation");
  }
  PCLEAN_ASSIGN_OR_RETURN(TransitionProbabilities ta,
                          TransitionsForInputs(in_a));
  PCLEAN_ASSIGN_OR_RETURN(TransitionProbabilities tb,
                          TransitionsForInputs(in_b));

  // Per-attribute inverse transition matrix:
  //   M = [[tau_p, tau_n], [1-tau_p, 1-tau_n]],
  //   M^-1 = 1/(tau_p - tau_n) [[1-tau_n, -tau_n], [-(1-tau_p), tau_p]].
  // The joint inverse is Minv_a (x) Minv_b; we only need the first row of
  // the Kronecker product (the TT component of q_true).
  double det_a = ta.true_positive - ta.false_positive;  // == 1 - p_a.
  double det_b = tb.true_positive - tb.false_positive;  // == 1 - p_b.
  double ia_t = (1.0 - ta.false_positive) / det_a;   // Minv_a[0][0]
  double ia_f = -ta.false_positive / det_a;          // Minv_a[0][1]
  double ib_t = (1.0 - tb.false_positive) / det_b;   // Minv_b[0][0]
  double ib_f = -tb.false_positive / det_b;          // Minv_b[0][1]

  double q_tt = static_cast<double>(stats.count_tt);
  double q_tf = static_cast<double>(stats.count_tf);
  double q_ft = static_cast<double>(stats.count_ft);
  double q_ff = static_cast<double>(stats.count_ff);
  double estimate = ia_t * ib_t * q_tt + ia_t * ib_f * q_tf +
                    ia_f * ib_t * q_ft + ia_f * ib_f * q_ff;

  // CLT interval: the observed TT indicator is Bernoulli per row; the
  // correction weights are bounded by 1/((1-p_a)(1-p_b)). Conservative
  // multinomial bound on the dominant term.
  double s = static_cast<double>(stats.total_rows);
  double frac_tt = q_tt / s;
  double conf = in_a.confidence;  // Shared level; in_b's is informational.
  PCLEAN_ASSIGN_OR_RETURN(double z, ZScoreForConfidence(conf));
  double half = z / (det_a * det_b) *
                std::sqrt(s * frac_tt * (1.0 - frac_tt) + 0.25 * s);

  QueryResult result;
  result.estimator = EstimatorKind::kPrivateClean;
  result.estimate = estimate;
  result.ci = ConfidenceInterval{estimate - half, estimate + half};
  result.confidence = conf;
  result.nominal = q_tt;
  result.p = in_a.p;  // Diagnostics carry attribute a's parameters.
  result.l = in_a.l;
  result.n = in_a.n;
  result.s = stats.total_rows;
  return result;
}

}  // namespace privateclean
