#include "core/admission.h"

#include <set>
#include <vector>

#include "common/string_util.h"
#include "privacy/accountant.h"
#include "query/sql_expr.h"

namespace privateclean {

Result<double> QueryEpsilonCost(const PrivateTable& table,
                                const ParsedSql& parsed) {
  std::set<std::string> attributes;
  if (parsed.where.has_value()) {
    for (const std::string& a : SqlExprAttributes(*parsed.where)) {
      attributes.insert(a);
    }
  }
  if (!parsed.query.numeric_attribute.empty()) {
    attributes.insert(parsed.query.numeric_attribute);
  }
  if (!parsed.distinct_attribute.empty()) {
    attributes.insert(parsed.distinct_attribute);
  }
  if (!parsed.group_by.empty()) {
    attributes.insert(parsed.group_by);
  }
  if (attributes.empty()) return 0.0;

  PCLEAN_ASSIGN_OR_RETURN(PrivacyReport report,
                          AccountPrivacy(table.metadata()));
  double cost = 0.0;
  for (const std::string& attribute : attributes) {
    auto it = report.per_attribute_epsilon.find(attribute);
    if (it == report.per_attribute_epsilon.end()) {
      return Status::NotFound("attribute '" + attribute +
                              "' is not part of the private relation; "
                              "nothing was charged");
    }
    cost += it->second;
  }
  return cost;
}

Result<AdmissionTicket> AdmitSqlQuery(BudgetLedger& ledger,
                                      const std::string& tenant,
                                      const PrivateTable& table,
                                      const std::string& sql) {
  PCLEAN_ASSIGN_OR_RETURN(ParsedSql parsed, ParseSql(sql));
  // Reject a bad FROM name before pricing: admission must agree with
  // execution about which queries exist at all.
  const std::string& relation = table.metadata().relation_name;
  if (!relation.empty() && parsed.table_name != relation) {
    return Status::NotFound("unknown relation '" + parsed.table_name +
                            "' in FROM: this release serves relation '" +
                            relation + "'; nothing was charged");
  }
  PCLEAN_ASSIGN_OR_RETURN(double cost, QueryEpsilonCost(table, parsed));

  AdmissionTicket ticket;
  ticket.cost = cost;
  auto before = ledger.Budget(tenant);
  if (before.ok()) {
    ticket.before = *before;
  } else if (!before.status().IsNotFound()) {
    return before.status();
  }
  if (cost > 0.0) {
    // The durable charge IS the admission decision: Charge's
    // check-and-spend is atomic, so concurrent queries cannot jointly
    // overdraft, and its ResourceExhausted already names the tenant,
    // spent, and remaining ε.
    PCLEAN_RETURN_NOT_OK(ledger.Charge(tenant, cost));
  }
  return ticket;
}

Result<SqlResultSet> ExecuteSqlQueryAdmitted(BudgetLedger& ledger,
                                             const std::string& tenant,
                                             const PrivateTable& table,
                                             const std::string& sql,
                                             const QueryOptions& options) {
  PCLEAN_ASSIGN_OR_RETURN(AdmissionTicket ticket,
                          AdmitSqlQuery(ledger, tenant, table, sql));
  (void)ticket;
  return ExecuteSqlQuery(table, sql, options);
}

std::string RenderAdmissionLine(const std::string& tenant,
                                const AdmissionTicket& ticket,
                                const TenantBudget& after) {
  return "charged epsilon " + FormatDouble(ticket.cost) + " to tenant '" +
         tenant + "' (remaining " + FormatDouble(after.remaining()) + ")\n";
}

}  // namespace privateclean
