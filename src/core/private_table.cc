#include "core/private_table.h"

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "common/arena.h"
#include "common/check.h"
#include "privacy/allocation.h"

namespace privateclean {

namespace {

/// Stamps QueryResult::memory with the scanned relation's footprint and
/// the process-wide arena totals at result time.
void StampMemoryStats(const Table& relation, QueryResult* r) {
  ColumnMemory m = relation.MemoryUsage();
  r->memory.relation_payload_bytes = m.payload_bytes;
  r->memory.dictionary_bytes = m.dictionary_bytes;
  r->memory.dictionary_entries = m.dictionary_entries;
  ArenaSiteStats totals = ArenaProfiler::Totals();
  r->memory.arena_live_bytes = totals.live_bytes;
  r->memory.arena_peak_bytes = totals.peak_live_bytes;
  r->memory.arena_alloc_calls = totals.alloc_calls;
}

}  // namespace

Result<PrivateTable> PrivateTable::Create(const Table& original,
                                          const GrrParams& params,
                                          const GrrOptions& options,
                                          Rng& rng) {
  PCLEAN_ASSIGN_OR_RETURN(GrrOutput grr, ApplyGrr(original, params, options, rng));
  PrivateTable table;
  table.relation_ = std::move(grr.table);
  table.metadata_ = std::move(grr.metadata);
  // Anchor provenance in the randomization-time domains so N matches the
  // mechanism exactly.
  std::unordered_map<std::string, Domain> domains;
  for (const auto& [name, meta] : table.metadata_.discrete) {
    domains.emplace(name, meta.domain);
  }
  PCLEAN_ASSIGN_OR_RETURN(table.provenance_,
                          ProvenanceManager::Create(table.relation_, domains));
  return table;
}

Result<PrivateTable> PrivateTable::CreateWithTuning(const Table& original,
                                                    double max_count_error,
                                                    double confidence,
                                                    Rng& rng) {
  PCLEAN_ASSIGN_OR_RETURN(
      TuningResult tuning,
      TunePrivacyParameters(original, max_count_error, confidence));
  return Create(original, ToGrrParams(tuning), GrrOptions{}, rng);
}

Result<PrivateTable> PrivateTable::CreateWithEpsilonBudget(
    const Table& original, double total_epsilon, Rng& rng) {
  PCLEAN_ASSIGN_OR_RETURN(GrrParams params,
                          AllocateEpsilonBudget(original, total_epsilon));
  return Create(original, params, GrrOptions{}, rng);
}

Result<PrivateTable> PrivateTable::FromPrivateRelation(
    Table relation, PrivateRelationMetadata metadata) {
  const Schema& schema = relation.schema();
  for (size_t i = 0; i < schema.num_fields(); ++i) {
    const Field& field = schema.field(i);
    bool covered = field.kind == AttributeKind::kDiscrete
                       ? metadata.discrete.count(field.name) > 0
                       : metadata.numeric.count(field.name) > 0;
    if (!covered) {
      return Status::InvalidArgument(
          "metadata does not cover attribute '" + field.name + "'");
    }
  }
  PrivateTable table;
  table.relation_ = std::move(relation);
  table.metadata_ = std::move(metadata);
  table.metadata_.dataset_size = table.relation_.num_rows();
  std::unordered_map<std::string, Domain> domains;
  for (const auto& [name, meta] : table.metadata_.discrete) {
    domains.emplace(name, meta.domain);
  }
  PCLEAN_ASSIGN_OR_RETURN(table.provenance_,
                          ProvenanceManager::Create(table.relation_, domains));
  return table;
}

Status PrivateTable::Clean(const Cleaner& cleaner) {
  PCLEAN_RETURN_NOT_OK(cleaner.Apply(&relation_));
  if (auto extracted = cleaner.extracted_attribute(); extracted.has_value()) {
    PCLEAN_RETURN_NOT_OK(provenance_.RegisterDerivedAttribute(
        extracted->name, extracted->provenance_anchor));
  }
  graph_cache_.clear();  // Cleaning changes the dirty->clean mapping.
  return Status::OK();
}

Result<const ProvenanceGraph*> PrivateTable::CachedGraphFor(
    const std::string& attribute, const ExecutionOptions& exec) const {
  if (auto it = graph_cache_.find(attribute); it != graph_cache_.end()) {
    return &it->second;
  }
  PCLEAN_ASSIGN_OR_RETURN(ProvenanceGraph graph,
                          provenance_.GraphFor(relation_, attribute, exec));
  auto [it, inserted] = graph_cache_.emplace(attribute, std::move(graph));
  (void)inserted;
  return &it->second;
}

Result<ProvenanceGraph> PrivateTable::ProvenanceFor(
    const std::string& attribute, const ExecutionOptions& exec) const {
  PCLEAN_ASSIGN_OR_RETURN(const ProvenanceGraph* graph,
                          CachedGraphFor(attribute, exec));
  return *graph;  // Copy: callers own their snapshot.
}

Status PrivateTable::Clean(const CleaningPipeline& pipeline) {
  for (size_t i = 0; i < pipeline.size(); ++i) {
    Status st = Clean(pipeline.cleaner(i));
    if (!st.ok()) {
      return Status::Internal("pipeline stage " + std::to_string(i) + " (" +
                              pipeline.cleaner(i).name() +
                              ") failed: " + st.ToString());
    }
  }
  return Status::OK();
}

Status PrivateTable::RejectNumericPredicateAttribute(
    const std::string& attr) const {
  if (metadata_.numeric.count(attr) > 0) {
    return Status::FailedPrecondition(
        "not privately answerable: predicate on numeric attribute '" + attr +
        "' — the bias correction needs a discrete randomized attribute "
        "(Laplace-noised numerics have no transition matrix); use the Direct "
        "baseline or a predicate on a discrete attribute");
  }
  return Status::OK();
}

Result<EstimationInputs> PrivateTable::InputsForPredicate(
    const Predicate& predicate, const std::string& numeric_attribute,
    const QueryOptions& options) const {
  const std::string& attr = predicate.attribute();
  PCLEAN_RETURN_NOT_OK(RejectNumericPredicateAttribute(attr));
  PCLEAN_ASSIGN_OR_RETURN(std::string anchor, provenance_.AnchorOf(attr));
  auto meta_it = metadata_.discrete.find(anchor);
  if (meta_it == metadata_.discrete.end()) {
    return Status::FailedPrecondition(
        "attribute '" + attr +
        "' is not backed by a randomized discrete attribute");
  }
  PCLEAN_ASSIGN_OR_RETURN(const ProvenanceGraph* graph,
                          CachedGraphFor(attr, options.exec));
  std::vector<Value> m_pred =
      predicate.MatchingValues(graph->clean_domain());

  EstimationInputs in;
  PCLEAN_ASSIGN_OR_RETURN(in.mechanism, MechanismFor(meta_it->second));
  PCLEAN_ASSIGN_OR_RETURN(
      in.p,
      in.mechanism->ReplacementProbability(meta_it->second.domain.size()));
  in.n = static_cast<double>(graph->num_dirty_values());
  in.l = options.weighted_cut
             ? graph->WeightedSelectivity(m_pred)
             : static_cast<double>(graph->UnweightedSelectivity(m_pred));
  in.confidence = options.confidence;
  if (!numeric_attribute.empty()) {
    if (auto it = metadata_.numeric.find(numeric_attribute);
        it != metadata_.numeric.end()) {
      in.b = it->second.b;
    }
  }
  return in;
}

Result<QueryScanStats> PrivateTable::Scan(const Predicate& predicate,
                                          const std::string& numeric_attribute,
                                          const ExecutionOptions& exec) const {
  return ScanWithPredicate(relation_, predicate, numeric_attribute, exec);
}

Result<QueryResult> PrivateTable::Count(const Predicate& predicate,
                                        const QueryOptions& options) const {
  PCLEAN_ASSIGN_OR_RETURN(EstimationInputs in,
                          InputsForPredicate(predicate, "", options));
  PCLEAN_ASSIGN_OR_RETURN(QueryScanStats stats,
                          Scan(predicate, "", options.exec));
  PCLEAN_ASSIGN_OR_RETURN(QueryResult r, EstimateCount(stats, in));
  StampMemoryStats(relation_, &r);
  return r;
}

Result<QueryResult> PrivateTable::Sum(const std::string& numeric_attribute,
                                      const Predicate& predicate,
                                      const QueryOptions& options) const {
  PCLEAN_ASSIGN_OR_RETURN(
      EstimationInputs in,
      InputsForPredicate(predicate, numeric_attribute, options));
  PCLEAN_ASSIGN_OR_RETURN(QueryScanStats stats,
                          Scan(predicate, numeric_attribute, options.exec));
  PCLEAN_ASSIGN_OR_RETURN(QueryResult r, EstimateSum(stats, in));
  StampMemoryStats(relation_, &r);
  return r;
}

Result<QueryResult> PrivateTable::Avg(const std::string& numeric_attribute,
                                      const Predicate& predicate,
                                      const QueryOptions& options) const {
  PCLEAN_ASSIGN_OR_RETURN(
      EstimationInputs in,
      InputsForPredicate(predicate, numeric_attribute, options));
  PCLEAN_ASSIGN_OR_RETURN(QueryScanStats stats,
                          Scan(predicate, numeric_attribute, options.exec));
  PCLEAN_ASSIGN_OR_RETURN(QueryResult r, EstimateAvg(stats, in));
  StampMemoryStats(relation_, &r);
  return r;
}

Result<QueryResult> PrivateTable::CountConjunctive(
    const Predicate& cond_a, const Predicate& cond_b,
    const QueryOptions& options) const {
  PCLEAN_ASSIGN_OR_RETURN(EstimationInputs in_a,
                          InputsForPredicate(cond_a, "", options));
  PCLEAN_ASSIGN_OR_RETURN(EstimationInputs in_b,
                          InputsForPredicate(cond_b, "", options));
  PCLEAN_ASSIGN_OR_RETURN(
      ConjunctiveScanStats stats,
      ScanConjunctive(relation_, cond_a, cond_b, options.exec));
  PCLEAN_ASSIGN_OR_RETURN(QueryResult r,
                          EstimateConjunctiveCount(stats, in_a, in_b));
  StampMemoryStats(relation_, &r);
  return r;
}

Result<std::vector<std::pair<Value, QueryResult>>>
PrivateTable::GroupByCountEstimate(const std::string& attribute,
                                   const QueryOptions& options) const {
  PCLEAN_RETURN_NOT_OK(RejectNumericPredicateAttribute(attribute));
  PCLEAN_ASSIGN_OR_RETURN(std::string anchor, provenance_.AnchorOf(attribute));
  auto meta_it = metadata_.discrete.find(anchor);
  if (meta_it == metadata_.discrete.end()) {
    return Status::FailedPrecondition(
        "attribute '" + attribute +
        "' is not backed by a randomized discrete attribute");
  }
  PCLEAN_ASSIGN_OR_RETURN(const ProvenanceGraph* graph,
                          CachedGraphFor(attribute, options.exec));
  // One sharded pass: nominal count per clean value. Each shard owns a
  // full count vector; vectors add up in shard index order (integer
  // sums, so the merge order is immaterial — kept for uniformity with
  // the other sharded paths).
  PCLEAN_ASSIGN_OR_RETURN(const Column* col,
                          relation_.ColumnByName(attribute));
  const Domain& clean_domain = graph->clean_domain();
  const size_t shards = ShardCountForRows(col->size());
  std::vector<std::vector<size_t>> partial_counts(
      shards, std::vector<size_t>(clean_domain.size(), 0));
  if (col->type() == ValueType::kString) {
    // Dictionary fast path: resolve each distinct value against the
    // clean domain once, then count codes with vector indexing. Rows can
    // only carry codes whose value is in the clean domain (it was built
    // from this column); unused dictionary entries map to a sentinel no
    // row references.
    const StringDictionary& dict = col->dictionary();
    const size_t null_slot = dict.size();
    std::vector<size_t> slot_index(dict.size() + 1, SIZE_MAX);
    for (uint32_t c = 0; c < dict.size(); ++c) {
      auto idx = clean_domain.IndexOf(Value(std::string(dict.At(c))));
      if (idx.ok()) slot_index[c] = *idx;
    }
    if (auto idx = clean_domain.IndexOf(Value::Null()); idx.ok()) {
      slot_index[null_slot] = *idx;
    }
    const uint32_t* codes = col->codes().data();
    PCLEAN_RETURN_NOT_OK(ParallelFor(
        col->size(), shards, options.exec,
        [&](size_t shard, size_t begin, size_t end) -> Status {
          std::vector<size_t>& counts = partial_counts[shard];
          for (size_t r = begin; r < end; ++r) {
            size_t slot = codes[r] == kNullCode ? null_slot : codes[r];
            PCLEAN_CHECK(slot_index[slot] != SIZE_MAX);
            ++counts[slot_index[slot]];
          }
          return Status::OK();
        }));
  } else {
    PCLEAN_RETURN_NOT_OK(ParallelFor(
        col->size(), shards, options.exec,
        [&](size_t shard, size_t begin, size_t end) -> Status {
          std::vector<size_t>& counts = partial_counts[shard];
          for (size_t r = begin; r < end; ++r) {
            ++counts[clean_domain.IndexOf(col->ValueAt(r)).ValueOrDie()];
          }
          return Status::OK();
        }));
  }
  std::vector<size_t> counts(clean_domain.size(), 0);
  for (const std::vector<size_t>& partial : partial_counts) {
    for (size_t i = 0; i < partial.size(); ++i) counts[i] += partial[i];
  }
  PCLEAN_ASSIGN_OR_RETURN(MechanismPtr mechanism,
                          MechanismFor(meta_it->second));
  PCLEAN_ASSIGN_OR_RETURN(
      double p_eff,
      mechanism->ReplacementProbability(meta_it->second.domain.size()));
  std::vector<std::pair<Value, QueryResult>> groups;
  groups.reserve(clean_domain.size());
  for (size_t i = 0; i < clean_domain.size(); ++i) {
    EstimationInputs in;
    in.mechanism = mechanism;
    in.p = p_eff;
    in.n = static_cast<double>(graph->num_dirty_values());
    std::vector<Value> m_pred{clean_domain.value(i)};
    in.l = options.weighted_cut
               ? graph->WeightedSelectivity(m_pred)
               : static_cast<double>(graph->UnweightedSelectivity(m_pred));
    in.confidence = options.confidence;
    QueryScanStats stats;
    stats.total_rows = relation_.num_rows();
    stats.matching_rows = counts[i];
    PCLEAN_ASSIGN_OR_RETURN(QueryResult r, EstimateCount(stats, in));
    StampMemoryStats(relation_, &r);
    groups.emplace_back(clean_domain.value(i), std::move(r));
  }
  return groups;
}

Result<QueryResult> PrivateTable::Execute(const AggregateQuery& query,
                                          const QueryOptions& options) const {
  if (query.agg == AggregateType::kMin || query.agg == AggregateType::kMax) {
    return Status::FailedPrecondition(
        "not privately answerable: " +
        std::string(AggregateTypeToString(query.agg)) +
        "() reads an extreme value, which randomization destroys — no "
        "bias-corrected estimator exists (use the Direct baseline for a "
        "nominal value)");
  }
  if (query.agg != AggregateType::kCount &&
      query.agg != AggregateType::kSum && query.agg != AggregateType::kAvg) {
    return Status::InvalidArgument(
        "Execute supports sum/count/avg; use ExtendedAggregate for " +
        std::string(AggregateTypeToString(query.agg)));
  }
  if (query.predicate.has_value()) {
    switch (query.agg) {
      case AggregateType::kCount:
        return Count(*query.predicate, options);
      case AggregateType::kSum:
        return Sum(query.numeric_attribute, *query.predicate, options);
      default:
        return Avg(query.numeric_attribute, *query.predicate, options);
    }
  }

  // No predicate: the Direct estimate is unbiased (§5.1) — GRR noise is
  // zero-mean and randomized response permutes within the relation. The
  // interval reflects the Laplace noise added to the numeric attribute.
  PCLEAN_ASSIGN_OR_RETURN(double nominal,
                          ExecuteAggregate(relation_, query, options.exec));
  QueryResult r;
  r.estimator = EstimatorKind::kPrivateClean;
  r.estimate = nominal;
  r.nominal = nominal;
  r.confidence = options.confidence;
  r.s = relation_.num_rows();
  double b = 0.0;
  if (auto it = metadata_.numeric.find(query.numeric_attribute);
      it != metadata_.numeric.end()) {
    b = it->second.b;
  }
  PCLEAN_ASSIGN_OR_RETURN(double z, ZScoreForConfidence(options.confidence));
  double s = static_cast<double>(relation_.num_rows());
  double half = 0.0;
  if (query.agg == AggregateType::kSum) {
    half = z * std::sqrt(2.0 * s * b * b);  // Var(Σ Laplace) = 2Sb².
  } else if (query.agg == AggregateType::kAvg) {
    half = (s > 0.0) ? z * std::sqrt(2.0 * b * b / s) : 0.0;
  }
  r.ci = ConfidenceInterval{r.estimate - half, r.estimate + half};
  StampMemoryStats(relation_, &r);
  return r;
}

Result<QueryResult> PrivateTable::ExecuteDirect(
    const AggregateQuery& query, const QueryOptions& options) const {
  if (query.agg == AggregateType::kMin || query.agg == AggregateType::kMax) {
    // Direct answers extremes nominally — the whole point of the
    // baseline is reading noised values as-is.
    PCLEAN_ASSIGN_OR_RETURN(
        double nominal, ExecuteAggregate(relation_, query, options.exec));
    QueryResult r;
    r.estimator = EstimatorKind::kDirect;
    r.estimate = nominal;
    r.nominal = nominal;
    r.ci = ConfidenceInterval{nominal, nominal};
    r.s = relation_.num_rows();
    StampMemoryStats(relation_, &r);
    return r;
  }
  if (query.agg != AggregateType::kCount &&
      query.agg != AggregateType::kSum && query.agg != AggregateType::kAvg) {
    return Status::InvalidArgument(
        "ExecuteDirect supports sum/count/avg aggregates");
  }
  if (!query.predicate.has_value()) {
    PCLEAN_ASSIGN_OR_RETURN(
        double nominal, ExecuteAggregate(relation_, query, options.exec));
    QueryResult r;
    r.estimator = EstimatorKind::kDirect;
    r.estimate = nominal;
    r.nominal = nominal;
    r.ci = ConfidenceInterval{nominal, nominal};
    r.s = relation_.num_rows();
    StampMemoryStats(relation_, &r);
    return r;
  }
  PCLEAN_ASSIGN_OR_RETURN(
      QueryScanStats stats,
      Scan(*query.predicate,
           query.agg == AggregateType::kCount ? "" : query.numeric_attribute,
           options.exec));
  Result<QueryResult> direct = [&]() -> Result<QueryResult> {
    switch (query.agg) {
      case AggregateType::kCount:
        return DirectCount(stats);
      case AggregateType::kSum:
        return DirectSum(stats);
      default:
        return DirectAvg(stats);
    }
  }();
  PCLEAN_ASSIGN_OR_RETURN(QueryResult r, std::move(direct));
  StampMemoryStats(relation_, &r);
  return r;
}

namespace {

/// Shared implementation of the §10 extension aggregates on an arbitrary
/// table (used by both the point estimate and the bootstrap replicates).
Result<double> ExtendedAggregateOnTable(const Table& table,
                                        const AggregateQuery& query,
                                        double b,
                                        const ExecutionOptions& exec) {
  switch (query.agg) {
    case AggregateType::kMedian:
    case AggregateType::kPercentile:
      // Laplace noise has zero median; the nominal value is a consistent
      // estimate (§10).
      return ExecuteAggregate(table, query, exec);
    case AggregateType::kVar:
    case AggregateType::kStd: {
      PCLEAN_ASSIGN_OR_RETURN(
          double nominal_var,
          ExecuteAggregate(table,
                           AggregateQuery{AggregateType::kVar,
                                          query.numeric_attribute,
                                          query.predicate, 50.0},
                           exec));
      // var(x + noise) = var(x) + 2b² for independent noise (§10).
      double corrected = std::max(0.0, nominal_var - 2.0 * b * b);
      return query.agg == AggregateType::kVar ? corrected
                                              : std::sqrt(corrected);
    }
    case AggregateType::kMin:
    case AggregateType::kMax:
      return Status::FailedPrecondition(
          "not privately answerable: " +
          std::string(AggregateTypeToString(query.agg)) +
          "() reads an extreme value, which randomization destroys — no "
          "bias-corrected estimator exists (use the Direct baseline for a "
          "nominal value)");
    default:
      return Status::InvalidArgument(
          "ExtendedAggregate handles median/percentile/var/std; use "
          "Execute for sum/count/avg");
  }
}

}  // namespace

Result<double> PrivateTable::NoiseScaleFor(
    const std::string& numeric_attribute) const {
  if (auto it = metadata_.numeric.find(numeric_attribute);
      it != metadata_.numeric.end()) {
    return it->second.b;  // b == 0 means "covered but un-noised".
  }
  if (!relation_.schema().FieldByName(numeric_attribute).ok()) {
    return Status::InvalidArgument(
        "extended aggregate attribute '" + numeric_attribute +
        "' does not exist in the private relation");
  }
  // Present in the relation but outside the Laplace metadata (e.g. a
  // discrete column): no noise was added, so no correction applies.
  return 0.0;
}

Result<double> PrivateTable::ExtendedAggregate(
    const AggregateQuery& query, const ExecutionOptions& exec) const {
  PCLEAN_ASSIGN_OR_RETURN(double b, NoiseScaleFor(query.numeric_attribute));
  return ExtendedAggregateOnTable(relation_, query, b, exec);
}

Result<QueryResult> PrivateTable::BootstrapExtendedAggregate(
    const AggregateQuery& query, Rng& rng, size_t replicates,
    double confidence, const ExecutionOptions& exec) const {
  if (replicates < 10) {
    return Status::InvalidArgument("need at least 10 bootstrap replicates");
  }
  if (!(confidence > 0.0 && confidence < 1.0)) {
    return Status::InvalidArgument("confidence must be in (0, 1)");
  }
  const size_t rows = relation_.num_rows();
  if (rows == 0) {
    return Status::FailedPrecondition(
        "cannot bootstrap an empty private relation");
  }
  PCLEAN_ASSIGN_OR_RETURN(double point, ExtendedAggregate(query, exec));
  PCLEAN_ASSIGN_OR_RETURN(double b, NoiseScaleFor(query.numeric_attribute));

  // One RNG stream per replicate, forked in replicate-index order (the
  // shard-indexed scheme of ApplyGrr, at replicate granularity): stream
  // assignment depends only on the replicate count, never on the thread
  // count or on how many replicates turn out degenerate.
  std::vector<Rng> replicate_rngs = rng.ForkStreams(replicates);
  std::vector<double> values(replicates, 0.0);
  std::vector<uint8_t> succeeded(replicates, 0);
  const size_t shards = ShardCountForCoarseItems(replicates);
  PCLEAN_RETURN_NOT_OK(ParallelFor(
      replicates, shards, exec,
      [&](size_t, size_t begin, size_t end) -> Status {
        // One resample index buffer per shard, reused across its
        // replicates. Replicates run their row passes inline (default
        // ExecutionOptions): the replicate axis is already parallel.
        std::vector<size_t> indices(rows);
        for (size_t rep = begin; rep < end; ++rep) {
          Rng& rep_rng = replicate_rngs[rep];
          for (size_t i = 0; i < rows; ++i) {
            indices[i] = static_cast<size_t>(rep_rng.UniformInt(rows));
          }
          PCLEAN_ASSIGN_OR_RETURN(Table resampled, relation_.Take(indices));
          auto value =
              ExtendedAggregateOnTable(resampled, query, b, ExecutionOptions{});
          if (!value.ok()) continue;  // Degenerate resample (e.g. empty group).
          values[rep] = *value;
          succeeded[rep] = 1;
        }
        return Status::OK();
      }));

  // Merge surviving replicate values in replicate order.
  std::vector<double> replicate_values;
  replicate_values.reserve(replicates);
  for (size_t rep = 0; rep < replicates; ++rep) {
    if (succeeded[rep]) replicate_values.push_back(values[rep]);
  }
  // At least half of the requested replicates must survive, rounding the
  // threshold *up* for odd counts (2·size < replicates ⇔ size < ⌈replicates/2⌉).
  if (2 * replicate_values.size() < replicates) {
    return Status::FailedPrecondition(
        "too many degenerate bootstrap replicates: " +
        std::to_string(replicate_values.size()) + " of " +
        std::to_string(replicates) + " succeeded");
  }
  const size_t effective = replicate_values.size();
  double alpha = (1.0 - confidence) / 2.0;
  PCLEAN_ASSIGN_OR_RETURN(
      PercentileEndpoints endpoints,
      PercentilePair(std::move(replicate_values), 100.0 * alpha,
                     100.0 * (1.0 - alpha)));
  QueryResult result;
  result.estimator = EstimatorKind::kPrivateClean;
  result.estimate = point;
  result.ci = ConfidenceInterval{endpoints.lo, endpoints.hi};
  result.confidence = confidence;
  result.nominal = point;
  result.s = rows;
  result.replicates_requested = replicates;
  result.replicates_effective = effective;
  StampMemoryStats(relation_, &result);
  return result;
}

}  // namespace privateclean
