#ifndef PRIVATECLEAN_CORE_PRIVATE_TABLE_H_
#define PRIVATECLEAN_CORE_PRIVATE_TABLE_H_

#include <string>
#include <unordered_map>

#include "cleaning/pipeline.h"
#include "core/conjunctive.h"
#include "core/estimators.h"
#include "core/query_result.h"
#include "privacy/accountant.h"
#include "privacy/grr.h"
#include "privacy/tuning.h"
#include "provenance/provenance_manager.h"
#include "query/aggregate.h"

namespace privateclean {

/// Per-query knobs for PrivateTable estimators.
struct QueryOptions {
  double confidence = 0.95;
  /// true: weighted provenance cut (PC-W, §7.2);
  /// false: unweighted vertex count (PC-U, §6.3) — on forked graphs this
  /// over-counts; exposed for the Figure 7 ablation.
  bool weighted_cut = true;
  /// Threading (common/thread_pool.h) for every row pass a query runs:
  /// the predicate scans of Count/Sum/Avg/CountConjunctive, the
  /// GroupByCountEstimate counting pass, ExecuteAggregate's per-row
  /// loops, provenance graph (re)builds, and the bootstrap replicate
  /// loop of the §10 extension aggregates. Results are identical at
  /// every thread count.
  ExecutionOptions exec;

  /// Extension aggregates (median/percentile/var/std) through the SQL
  /// front-end: when > 0, wrap the point estimate in a bootstrap
  /// percentile interval with this many replicates (paper §10); 0 (the
  /// default) returns the point estimate with a degenerate interval.
  size_t bootstrap_replicates = 0;

  /// Seed of the bootstrap resampling stream (only consulted when
  /// `bootstrap_replicates > 0`). Fixed seed + fixed replicate count =
  /// bit-identical interval at any thread count.
  uint64_t bootstrap_seed = 0x9E3779B97F4A7C15ULL;
};

/// The PrivateClean facade: an ε-locally-differentially-private relation
/// V that the analyst can clean (Extract/Transform/Merge) and query
/// (sum/count/avg with single-discrete-attribute predicates), with
/// bias-corrected estimates and CLT confidence intervals.
///
/// Lifecycle (paper Figure 1):
///   1. the *provider* calls Create() on the original dirty relation R —
///      GRR randomizes it and the original is no longer needed;
///   2. the *analyst* applies cleaning operations with Clean();
///   3. the analyst runs aggregate queries with Count()/Sum()/Avg() (the
///      PrivateClean estimator) or ExecuteDirect() (the uncorrected
///      baseline).
///
/// The table keeps the GRR metadata (p_i, b_i, domains, S) and a
/// provenance manager that snapshots V at creation, so after any
/// composition of cleaners it can rebuild the dirty→clean bipartite graph
/// and re-anchor query selectivity in the dirty domain (paper §6–§7).
class PrivateTable {
 public:
  /// Privatizes `original` with explicit GRR parameters.
  static Result<PrivateTable> Create(const Table& original,
                                     const GrrParams& params,
                                     const GrrOptions& options, Rng& rng);

  /// Privatizes `original` with parameters chosen by the Appendix E
  /// tuning algorithm for a desired worst-case count error (selectivity
  /// units) at the given confidence.
  static Result<PrivateTable> CreateWithTuning(const Table& original,
                                               double max_count_error,
                                               double confidence, Rng& rng);

  /// Privatizes `original` under a total ε budget, split uniformly
  /// across all attributes (Theorem 1 composition; §4.2.3 "Setting ε").
  static Result<PrivateTable> CreateWithEpsilonBudget(const Table& original,
                                                      double total_epsilon,
                                                      Rng& rng);

  /// Wraps an already-privatized relation (e.g. loaded from a release
  /// directory, see core/release.h). `relation` must be the *uncleaned*
  /// private relation: the provenance snapshot anchors to it. The
  /// metadata must cover every attribute of the relation's schema.
  static Result<PrivateTable> FromPrivateRelation(
      Table relation, PrivateRelationMetadata metadata);

  /// The current private relation (V before cleaning, V_clean after).
  const Table& relation() const { return relation_; }

  /// S, the relation size.
  size_t size() const { return relation_.num_rows(); }

  /// GRR metadata (public mechanism parameters).
  const PrivateRelationMetadata& metadata() const { return metadata_; }

  /// Theorem 1 ε accounting for this relation.
  Result<PrivacyReport> PrivacyAccounting() const {
    return AccountPrivacy(metadata_);
  }

  /// Applies one cleaner to the private relation, keeping provenance
  /// consistent (Extract cleaners are registered with their anchor).
  Status Clean(const Cleaner& cleaner);

  /// Applies a whole pipeline, stopping at the first failure.
  Status Clean(const CleaningPipeline& pipeline);

  /// --- PrivateClean estimators (bias-corrected, §5–§7) ----------------

  /// COUNT rows satisfying `predicate`.
  Result<QueryResult> Count(const Predicate& predicate,
                            const QueryOptions& options = QueryOptions()) const;

  /// SUM of `numeric_attribute` over rows satisfying `predicate`.
  Result<QueryResult> Sum(const std::string& numeric_attribute,
                          const Predicate& predicate,
                          const QueryOptions& options = QueryOptions()) const;

  /// AVG of `numeric_attribute` over rows satisfying `predicate`.
  Result<QueryResult> Avg(const std::string& numeric_attribute,
                          const Predicate& predicate,
                          const QueryOptions& options = QueryOptions()) const;

  /// COUNT rows satisfying `cond_a AND cond_b`, where the two predicates
  /// condition on two *different* discrete attributes (§10 SPJ
  /// extension): the per-attribute correction constants compose via the
  /// Kronecker product of the transition matrices. Both attributes'
  /// selectivities are provenance-adjusted, so this works after cleaning.
  Result<QueryResult> CountConjunctive(
      const Predicate& cond_a, const Predicate& cond_b,
      const QueryOptions& options = QueryOptions()) const;

  /// Corrected COUNT for every distinct value of `attribute` in the
  /// cleaned private relation — the paper's
  /// `SELECT count(1) FROM R GROUP BY attribute` (§8.3.4), one corrected
  /// estimate per group, in the clean domain's first-appearance order.
  Result<std::vector<std::pair<Value, QueryResult>>> GroupByCountEstimate(
      const std::string& attribute,
      const QueryOptions& options = QueryOptions()) const;

  /// Generic entry point: dispatches sum/count/avg, with or without a
  /// predicate. Queries without a predicate use the Direct estimator,
  /// which is unbiased there (§5.1), with a Laplace-noise interval.
  Result<QueryResult> Execute(const AggregateQuery& query,
                              const QueryOptions& options = QueryOptions()) const;

  /// --- Baselines and extensions ----------------------------------------

  /// The Direct estimator (§8.1): nominal value on the cleaned private
  /// relation, no re-weighting. Only `options.exec` is consulted (Direct
  /// has no confidence interval or provenance cut to configure).
  Result<QueryResult> ExecuteDirect(
      const AggregateQuery& query,
      const QueryOptions& options = QueryOptions()) const;

  /// §10 extension aggregates on the private relation: median and
  /// percentile pass through (Laplace noise has zero median); var/std
  /// subtract the known noise variance 2b². Predicates are applied
  /// nominally (no selectivity correction). Caveat: the median
  /// pass-through is exact only for distributions roughly symmetric
  /// around their median — on heavily skewed marginals the noised median
  /// shifts toward the heavy tail.
  ///
  /// `query.numeric_attribute` must exist in the relation (typed
  /// InvalidArgument otherwise). An attribute that exists but carries no
  /// Laplace noise — b = 0 in the metadata, or a column outside the
  /// numeric metadata entirely — gets a documented no-op correction
  /// (b = 0): its nominal value needs no de-noising.
  ///
  /// The row pass is sharded per `exec` (common/thread_pool.h).
  Result<double> ExtendedAggregate(const AggregateQuery& query,
                                   const ExecutionOptions& exec = {}) const;

  /// §10: confidence intervals for the extension aggregates via the
  /// bootstrap ("calculating confidence intervals ... require[s] an
  /// empirical method"). Resamples the private relation's rows with
  /// replacement `replicates` times and returns the point estimate with
  /// the percentile interval of the replicate statistics.
  ///
  /// Replicates run through the deterministic parallel engine per `exec`:
  /// one RNG stream is forked per replicate in replicate-index order, and
  /// replicate values merge in replicate order, so for a fixed seed the
  /// interval is bit-identical at any thread count. Degenerate resamples
  /// (e.g. an empty selection under the query's predicate) are dropped;
  /// the surviving count is reported in `QueryResult::replicates_effective`
  /// and at least half of `replicates` (rounding up for odd counts) must
  /// survive or the call fails with FailedPrecondition.
  Result<QueryResult> BootstrapExtendedAggregate(
      const AggregateQuery& query, Rng& rng, size_t replicates = 200,
      double confidence = 0.95, const ExecutionOptions& exec = {}) const;

  /// --- Introspection -----------------------------------------------------

  /// Current provenance graph of a discrete attribute.
  Result<ProvenanceGraph> ProvenanceFor(const std::string& attribute,
                                        const ExecutionOptions& exec = {}) const;

  /// Typed rejection for corrected estimators keyed on a Laplace-noised
  /// numeric attribute: no transition matrix exists, so no bias
  /// correction is possible. OK when `attr` is not a numeric attribute.
  Status RejectNumericPredicateAttribute(const std::string& attr) const;

  /// The deterministic estimator inputs (p, l, N) PrivateClean would use
  /// for this predicate right now — exposed for tests and diagnostics.
  Result<EstimationInputs> InputsForPredicate(
      const Predicate& predicate, const std::string& numeric_attribute,
      const QueryOptions& options) const;

  PrivateTable(PrivateTable&&) = default;
  PrivateTable& operator=(PrivateTable&&) = default;

 private:
  PrivateTable() = default;

  Result<QueryScanStats> Scan(const Predicate& predicate,
                              const std::string& numeric_attribute,
                              const ExecutionOptions& exec = {}) const;

  /// Laplace scale b of `numeric_attribute` for the §10 var/std
  /// correction. InvalidArgument when the relation has no such attribute
  /// (a typo would otherwise surface only as a generic scan error);
  /// 0.0 — a documented no-op correction — when the attribute exists but
  /// carries no Laplace noise.
  Result<double> NoiseScaleFor(const std::string& numeric_attribute) const;

  /// Returns the (possibly cached) provenance graph for `attribute`.
  /// Graphs cost O(S) to build, so they are cached between queries and
  /// invalidated by Clean(). PrivateTable is not thread-safe: concurrent
  /// queries on one instance would race on this cache. (Intra-query
  /// parallelism via QueryOptions::exec is fine — the scan shards never
  /// touch the cache.)
  Result<const ProvenanceGraph*> CachedGraphFor(
      const std::string& attribute, const ExecutionOptions& exec = {}) const;

  Table relation_;
  PrivateRelationMetadata metadata_;
  ProvenanceManager provenance_;
  mutable std::unordered_map<std::string, ProvenanceGraph> graph_cache_;
};

}  // namespace privateclean

#endif  // PRIVATECLEAN_CORE_PRIVATE_TABLE_H_
