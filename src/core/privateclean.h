#ifndef PRIVATECLEAN_CORE_PRIVATECLEAN_H_
#define PRIVATECLEAN_CORE_PRIVATECLEAN_H_

/// Umbrella header: everything a PrivateClean user needs.
///
///   #include "core/privateclean.h"
///
///   using namespace privateclean;
///   Rng rng(42);
///   auto private_table = PrivateTable::Create(r, GrrParams::Uniform(0.1, 10.0),
///                                             GrrOptions{}, rng);
///   private_table->Clean(FindReplace::Single("major",
///                                            "Mechanical Engineering",
///                                            "Mech. Eng."));
///   auto result = private_table->Avg("score",
///                                    Predicate::Equals("major", "Mech. Eng."));

#include "cleaning/constraints.h"
#include "cleaning/extract.h"
#include "cleaning/fd_repair.h"
#include "cleaning/md_repair.h"
#include "cleaning/merge.h"
#include "cleaning/pipeline.h"
#include "cleaning/transform.h"
#include "common/random.h"
#include "common/result.h"
#include "common/statistics.h"
#include "common/status.h"
#include "core/admission.h"
#include "core/conjunctive.h"
#include "core/estimators.h"
#include "core/private_table.h"
#include "core/query_result.h"
#include "core/release.h"
#include "core/sql_execution.h"
#include "privacy/accountant.h"
#include "privacy/allocation.h"
#include "privacy/grr.h"
#include "privacy/laplace_mechanism.h"
#include "privacy/ledger.h"
#include "privacy/mechanism.h"
#include "privacy/privacy_params.h"
#include "privacy/randomized_response.h"
#include "privacy/size_bound.h"
#include "privacy/tuning.h"
#include "query/aggregate.h"
#include "query/predicate.h"
#include "table/csv.h"
#include "table/domain.h"
#include "table/table.h"
#include "table/table_builder.h"

#endif  // PRIVATECLEAN_CORE_PRIVATECLEAN_H_
