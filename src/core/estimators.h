#ifndef PRIVATECLEAN_CORE_ESTIMATORS_H_
#define PRIVATECLEAN_CORE_ESTIMATORS_H_

#include <memory>

#include "common/result.h"
#include "core/query_result.h"
#include "privacy/randomized_response.h"
#include "query/aggregate.h"

namespace privateclean {

class Mechanism;

/// Deterministic inputs to the PrivateClean estimators (paper §5.3):
/// known to the query processor, so they do not affect the statistical
/// properties of the estimate.
struct EstimationInputs {
  /// Realized replacement probability of the predicate's attribute —
  /// for the paper's GRR this is the stored p; for other mechanisms it
  /// is the effective uniform-replacement probability their confusion
  /// matrix reduces to (privacy/mechanism.h).
  double p = 0.0;
  double l = 0.0;   ///< Dirty-side selectivity (weighted cut; §6.3/§7.2).
  double n = 1.0;   ///< N, number of distinct dirty values.
  double b = 0.0;   ///< Laplace scale of the aggregated numeric attr.
  double confidence = 0.95;
  /// The mechanism the relation was randomized under; the estimators
  /// take their transition probabilities from it. Null falls back to
  /// the paper's GRR computation over `p` (hand-built inputs, legacy
  /// callers) — identical math either way for GRR.
  std::shared_ptr<const Mechanism> mechanism;

  Status Validate() const;
};

/// The transition probabilities the bias corrections are built from:
/// the mechanism's, or the paper's GRR formula over `in.p` when no
/// mechanism is attached. The single seam between mechanisms and every
/// estimator (COUNT/SUM/AVG, conjunctive, group-by).
Result<TransitionProbabilities> TransitionsForInputs(
    const EstimationInputs& in);

/// COUNT estimator, Eq. 3:  ĉ = (c_private − S·τ_n) / (τ_p − τ_n),
/// with the CLT interval from §5.4 expressed in count units. For the
/// interval width the observed selectivity is clamped to
/// [1/(2S), 1 − 1/(2S)]: at the extremes the plug-in binomial variance
/// is identically zero and would yield a degenerate zero-width interval,
/// while the data only supports certainty up to O(1/S).
Result<QueryResult> EstimateCount(const QueryScanStats& stats,
                                  const EstimationInputs& in);

/// SUM estimator, Eq. 5 (complement-query trick, §5.5):
///   ĥ = ((1 − τ_n)·h_p − τ_n·h_p^c) / (τ_p − τ_n)
/// The interval follows §5.5, in sum units.
Result<QueryResult> EstimateSum(const QueryScanStats& stats,
                                const EstimationInputs& in);

/// AVG estimator (§5.6): avg = ĥ/ĉ (conditionally unbiased). The
/// interval is the conservative corner-ratio interval — upper CI of ĥ
/// over lower CI of ĉ and vice versa — exactly as the paper prescribes.
/// Errors with FailedPrecondition if the count interval straddles zero.
Result<QueryResult> EstimateAvg(const QueryScanStats& stats,
                                const EstimationInputs& in);

/// Direct (baseline) estimators: the nominal private values, no
/// re-weighting (§8.1). Supplied for symmetry and for the experiment
/// harnesses.
QueryResult DirectCount(const QueryScanStats& stats);
QueryResult DirectSum(const QueryScanStats& stats);
Result<QueryResult> DirectAvg(const QueryScanStats& stats);

}  // namespace privateclean

#endif  // PRIVATECLEAN_CORE_ESTIMATORS_H_
