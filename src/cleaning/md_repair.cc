#include "cleaning/md_repair.h"

#include <unordered_map>

#include "cleaning/merge.h"

namespace privateclean {

MdRepair::MdRepair(MatchingDependency md) : md_(std::move(md)) {}

std::string MdRepair::name() const { return "md_repair(" + md_.ToString() + ")"; }

Status MdRepair::Apply(Table* table) const {
  if (table == nullptr) {
    return Status::InvalidArgument("table must not be null");
  }
  PCLEAN_ASSIGN_OR_RETURN(auto clusters, FindMdClusters(*table, md_));
  std::unordered_map<Value, Value, ValueHash> replacements;
  for (const MdCluster& cluster : clusters) {
    for (const Value& member : cluster.members) {
      replacements.emplace(member, cluster.canonical);
    }
  }
  if (replacements.empty()) return Status::OK();
  FindReplace replace(md_.attribute, std::move(replacements));
  return replace.Apply(table);
}

}  // namespace privateclean
