#include "cleaning/transform.h"

#include <cstdint>
#include <map>
#include <unordered_map>

#include "common/check.h"
#include "table/domain.h"

namespace privateclean {

ValueTransform::ValueTransform(std::string attribute,
                               std::function<Value(const Value&)> fn)
    : attribute_(std::move(attribute)), fn_(std::move(fn)) {}

std::string ValueTransform::name() const {
  return "transform(" + attribute_ + ")";
}

Status ValueTransform::Apply(Table* table) const {
  if (table == nullptr) {
    return Status::InvalidArgument("table must not be null");
  }
  PCLEAN_RETURN_NOT_OK(ValidateDiscreteAttribute(*table, attribute_));
  PCLEAN_ASSIGN_OR_RETURN(
      Domain domain,
      Domain::FromColumn(*table, attribute_, /*include_null=*/true));
  // Evaluate the UDF once per distinct value.
  std::vector<Value> mapped;
  mapped.reserve(domain.size());
  for (size_t i = 0; i < domain.size(); ++i) {
    mapped.push_back(fn_(domain.value(i)));
  }
  PCLEAN_ASSIGN_OR_RETURN(Column * col,
                          table->MutableColumnByName(attribute_));
  if (col->type() == ValueType::kString) {
    // Dictionary fast path: the cleaner is a distinct->distinct map, so
    // resolve it entirely at the dictionary level — per domain value,
    // one interned output code — and rewrite rows as an integer gather.
    const size_t null_slot = col->dictionary().size();
    std::vector<size_t> slot_to_index(null_slot + 1, SIZE_MAX);
    for (uint32_t c = 0; c < null_slot; ++c) {
      auto idx = domain.IndexOf(Value(std::string(col->dictionary().At(c))));
      if (idx.ok()) slot_to_index[c] = *idx;
    }
    if (auto idx = domain.IndexOf(Value::Null()); idx.ok()) {
      slot_to_index[null_slot] = *idx;
    }
    std::vector<uint32_t> mapped_code(mapped.size(), kNullCode);
    for (size_t i = 0; i < mapped.size(); ++i) {
      if (mapped[i].is_null()) continue;
      if (mapped[i].type() != ValueType::kString) {
        return Status::InvalidArgument(
            std::string("cannot set ") +
            ValueTypeToString(mapped[i].type()) + " value in string column");
      }
      mapped_code[i] = col->InternString(mapped[i].AsString());
    }
    std::vector<uint32_t>& codes = *col->mutable_codes();
    std::vector<uint8_t>& valid = *col->mutable_validity();
    for (size_t r = 0; r < codes.size(); ++r) {
      size_t slot = codes[r] == kNullCode ? null_slot : codes[r];
      size_t idx = slot_to_index[slot];
      PCLEAN_CHECK(idx != SIZE_MAX);  // Domain was built from this column.
      codes[r] = mapped_code[idx];
      valid[r] = mapped_code[idx] == kNullCode ? 0 : 1;
    }
    col->RecomputeNullCount();
    return Status::OK();
  }
  for (size_t r = 0; r < col->size(); ++r) {
    size_t idx = domain.IndexOf(col->ValueAt(r)).ValueOrDie();
    PCLEAN_RETURN_NOT_OK(col->SetValue(r, mapped[idx]));
  }
  return Status::OK();
}

ProjectionTransform::ProjectionTransform(
    std::vector<std::string> attributes,
    std::function<std::vector<Value>(const std::vector<Value>&)> fn)
    : attributes_(std::move(attributes)), fn_(std::move(fn)) {}

std::string ProjectionTransform::name() const {
  std::string joined;
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (i > 0) joined += ", ";
    joined += attributes_[i];
  }
  return "transform(" + joined + ")";
}

Status ProjectionTransform::Apply(Table* table) const {
  if (table == nullptr) {
    return Status::InvalidArgument("table must not be null");
  }
  if (attributes_.empty()) {
    return Status::InvalidArgument("projection must be non-empty");
  }
  std::vector<Column*> cols;
  cols.reserve(attributes_.size());
  for (const std::string& attr : attributes_) {
    PCLEAN_RETURN_NOT_OK(ValidateDiscreteAttribute(*table, attr));
    PCLEAN_ASSIGN_OR_RETURN(Column * col, table->MutableColumnByName(attr));
    cols.push_back(col);
  }
  // Evaluate the UDF once per distinct projected tuple (std::map keyed by
  // the Value tuple's lexicographic order).
  std::map<std::vector<Value>, std::vector<Value>> cache;
  size_t rows = table->num_rows();
  for (size_t r = 0; r < rows; ++r) {
    std::vector<Value> tuple;
    tuple.reserve(cols.size());
    for (Column* col : cols) tuple.push_back(col->ValueAt(r));
    auto it = cache.find(tuple);
    if (it == cache.end()) {
      std::vector<Value> out = fn_(tuple);
      if (out.size() != tuple.size()) {
        return Status::InvalidArgument(
            "projection transform must return a tuple of the same arity");
      }
      it = cache.emplace(std::move(tuple), std::move(out)).first;
    }
    const std::vector<Value>& replacement = it->second;
    for (size_t c = 0; c < cols.size(); ++c) {
      PCLEAN_RETURN_NOT_OK(cols[c]->SetValue(r, replacement[c]));
    }
  }
  return Status::OK();
}

}  // namespace privateclean
