#ifndef PRIVATECLEAN_CLEANING_CLEANER_H_
#define PRIVATECLEAN_CLEANING_CLEANER_H_

#include <optional>
#include <string>
#include <utility>

#include "common/result.h"
#include "table/table.h"

namespace privateclean {

/// The three local-cleaner actions of the paper's cleaning model
/// (§3.2.1). Every supported cleaning operation is one of these,
/// restricted to discrete attributes and deterministic per distinct
/// (projected) input value.
enum class CleanerKind {
  kExtract = 0,    ///< Creates a new discrete attribute from a projection.
  kTransform = 1,  ///< Rewrites a projection's values with a UDF.
  kMerge = 2,      ///< Maps values onto other values of the same domain.
};

const char* CleanerKindToString(CleanerKind kind);

/// Description of an attribute created by an Extract cleaner: the new
/// attribute's name and the snapshotted attribute anchoring its
/// provenance graph (paper §6.2 associates each cleaned attribute with
/// exactly one original attribute).
struct ExtractedAttribute {
  std::string name;
  std::string provenance_anchor;
};

/// A deterministic user-defined cleaning operation on the discrete
/// attributes of a relation (paper §3.2.1).
///
/// Implementations mutate the table in place. Determinism — equal inputs
/// produce equal outputs within one Apply call — is what makes the
/// value-provenance graph well defined; UDF-based cleaners enforce it by
/// evaluating the UDF once per distinct (projected) value and
/// broadcasting the result to rows.
class Cleaner {
 public:
  virtual ~Cleaner() = default;

  /// Applies the operation to `table`.
  virtual Status Apply(Table* table) const = 0;

  /// Which of the three model actions this is.
  virtual CleanerKind kind() const = 0;

  /// Human-readable operation name for logs and diagnostics.
  virtual std::string name() const = 0;

  /// Non-empty for Extract cleaners: the attribute they create.
  virtual std::optional<ExtractedAttribute> extracted_attribute() const {
    return std::nullopt;
  }
};

/// Validates that `attribute` exists in `table` and is discrete
/// (cleaning never touches numerical attributes, §3.1).
Status ValidateDiscreteAttribute(const Table& table,
                                 const std::string& attribute);

}  // namespace privateclean

#endif  // PRIVATECLEAN_CLEANING_CLEANER_H_
