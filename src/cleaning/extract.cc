#include "cleaning/extract.h"

#include <map>

namespace privateclean {

ExtractAttribute::ExtractAttribute(
    std::string new_attribute, std::vector<std::string> projection,
    std::function<Value(const std::vector<Value>&)> fn,
    ValueType output_type, std::string provenance_anchor)
    : new_attribute_(std::move(new_attribute)),
      projection_(std::move(projection)),
      fn_(std::move(fn)),
      output_type_(output_type),
      provenance_anchor_(std::move(provenance_anchor)) {}

std::string ExtractAttribute::name() const {
  return "extract(" + new_attribute_ + ")";
}

std::optional<ExtractedAttribute> ExtractAttribute::extracted_attribute()
    const {
  std::string anchor = provenance_anchor_;
  if (anchor.empty() && !projection_.empty()) anchor = projection_[0];
  return ExtractedAttribute{new_attribute_, anchor};
}

Status ExtractAttribute::Apply(Table* table) const {
  if (table == nullptr) {
    return Status::InvalidArgument("table must not be null");
  }
  if (projection_.empty()) {
    return Status::InvalidArgument("projection must be non-empty");
  }
  if (table->schema().HasField(new_attribute_)) {
    return Status::AlreadyExists("attribute '" + new_attribute_ +
                                 "' already exists");
  }
  std::vector<const Column*> cols;
  cols.reserve(projection_.size());
  for (const std::string& attr : projection_) {
    PCLEAN_RETURN_NOT_OK(ValidateDiscreteAttribute(*table, attr));
    PCLEAN_ASSIGN_OR_RETURN(const Column* col, table->ColumnByName(attr));
    cols.push_back(col);
  }
  PCLEAN_ASSIGN_OR_RETURN(Column out, Column::Make(output_type_));
  out.Reserve(table->num_rows());
  std::map<std::vector<Value>, Value> cache;
  for (size_t r = 0; r < table->num_rows(); ++r) {
    std::vector<Value> tuple;
    tuple.reserve(cols.size());
    for (const Column* col : cols) tuple.push_back(col->ValueAt(r));
    auto it = cache.find(tuple);
    if (it == cache.end()) {
      Value v = fn_(tuple);
      it = cache.emplace(std::move(tuple), std::move(v)).first;
    }
    PCLEAN_RETURN_NOT_OK(out.AppendValue(it->second));
  }
  return table->AddColumn(Field::Discrete(new_attribute_, output_type_),
                          std::move(out));
}

}  // namespace privateclean
