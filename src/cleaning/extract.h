#ifndef PRIVATECLEAN_CLEANING_EXTRACT_H_
#define PRIVATECLEAN_CLEANING_EXTRACT_H_

#include <functional>
#include <string>
#include <vector>

#include "cleaning/cleaner.h"

namespace privateclean {

/// Extract cleaner: creates a new discrete attribute d_{m+1} from a
/// projection of existing discrete attributes,
/// d_{m+1} = C(v[g_i]) (paper §3.2.1, Extract).
///
/// The UDF is evaluated once per distinct projected tuple. The new
/// attribute's provenance graph is anchored to one source attribute
/// (default: the first of the projection); with a multi-attribute
/// projection the anchored graph may fork, which the weighted cut
/// handles (§7).
class ExtractAttribute : public Cleaner {
 public:
  /// `output_type` is the physical type of the new discrete attribute
  /// (string by default; int64 works for e.g. extracted codes).
  ExtractAttribute(std::string new_attribute,
                   std::vector<std::string> projection,
                   std::function<Value(const std::vector<Value>&)> fn,
                   ValueType output_type = ValueType::kString,
                   std::string provenance_anchor = "");

  Status Apply(Table* table) const override;
  CleanerKind kind() const override { return CleanerKind::kExtract; }
  std::string name() const override;
  std::optional<ExtractedAttribute> extracted_attribute() const override;

 private:
  std::string new_attribute_;
  std::vector<std::string> projection_;
  std::function<Value(const std::vector<Value>&)> fn_;
  ValueType output_type_;
  std::string provenance_anchor_;
};

}  // namespace privateclean

#endif  // PRIVATECLEAN_CLEANING_EXTRACT_H_
