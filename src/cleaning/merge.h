#ifndef PRIVATECLEAN_CLEANING_MERGE_H_
#define PRIVATECLEAN_CLEANING_MERGE_H_

#include <functional>
#include <string>
#include <unordered_map>

#include "cleaning/cleaner.h"
#include "table/domain.h"

namespace privateclean {

/// Merge cleaner: find-and-replace over a discrete attribute
/// (paper Example 1, "Electrical Engineering and Computer Sciences ->
/// EECS"). Values not present in the replacement map pass through.
class FindReplace : public Cleaner {
 public:
  FindReplace(std::string attribute,
              std::unordered_map<Value, Value, ValueHash> replacements);

  /// Convenience for the common single-pair case.
  static FindReplace Single(std::string attribute, Value from, Value to);

  Status Apply(Table* table) const override;
  CleanerKind kind() const override { return CleanerKind::kMerge; }
  std::string name() const override;

  size_t num_replacements() const { return replacements_.size(); }

 private:
  std::string attribute_;
  std::unordered_map<Value, Value, ValueHash> replacements_;
};

/// Merge cleaner matching the paper's Merge(g_i, Domain(g_i)) signature:
/// v[d] ← C(v[d], Domain(d)), i.e. the UDF picks a replacement from the
/// attribute's current domain given the value and the domain.
class DomainMerge : public Cleaner {
 public:
  DomainMerge(std::string attribute,
              std::function<Value(const Value&, const Domain&)> fn);

  Status Apply(Table* table) const override;
  CleanerKind kind() const override { return CleanerKind::kMerge; }
  std::string name() const override;

 private:
  std::string attribute_;
  std::function<Value(const Value&, const Domain&)> fn_;
};

/// Merge cleaner mapping all values flagged spurious by a predicate UDF
/// to NULL — the IntelWireless cleaning task (§8.4: "we merged all of
/// the spurious values to null").
class MergeToNull : public Cleaner {
 public:
  MergeToNull(std::string attribute,
              std::function<bool(const Value&)> is_spurious);

  Status Apply(Table* table) const override;
  CleanerKind kind() const override { return CleanerKind::kMerge; }
  std::string name() const override;

 private:
  std::string attribute_;
  std::function<bool(const Value&)> is_spurious_;
};

}  // namespace privateclean

#endif  // PRIVATECLEAN_CLEANING_MERGE_H_
