#include "cleaning/fd_repair.h"

#include <map>

namespace privateclean {

FdRepair::FdRepair(FunctionalDependency fd) : fd_(std::move(fd)) {}

std::string FdRepair::name() const { return "fd_repair(" + fd_.ToString() + ")"; }

Status FdRepair::Apply(Table* table) const {
  if (table == nullptr) {
    return Status::InvalidArgument("table must not be null");
  }
  std::vector<const Column*> lhs_cols;
  for (const std::string& attr : fd_.lhs) {
    PCLEAN_RETURN_NOT_OK(ValidateDiscreteAttribute(*table, attr));
    PCLEAN_ASSIGN_OR_RETURN(const Column* col, table->ColumnByName(attr));
    lhs_cols.push_back(col);
  }
  PCLEAN_RETURN_NOT_OK(ValidateDiscreteAttribute(*table, fd_.rhs));

  // Pass 1: count rhs values per lhs group.
  std::map<std::vector<Value>, std::map<Value, size_t>> groups;
  {
    PCLEAN_ASSIGN_OR_RETURN(const Column* rhs_col,
                            table->ColumnByName(fd_.rhs));
    for (size_t r = 0; r < table->num_rows(); ++r) {
      std::vector<Value> key;
      key.reserve(lhs_cols.size());
      for (const Column* col : lhs_cols) key.push_back(col->ValueAt(r));
      groups[std::move(key)][rhs_col->ValueAt(r)]++;
    }
  }

  // Choose the repair target per group: majority rhs value; ties broken
  // by the std::map's value order, so the repair is deterministic.
  std::map<std::vector<Value>, Value> repair_target;
  for (const auto& [key, rhs_counts] : groups) {
    if (rhs_counts.size() < 2) continue;  // Group already consistent.
    const Value* best = nullptr;
    size_t best_count = 0;
    for (const auto& [value, count] : rhs_counts) {
      if (count > best_count) {
        best = &value;
        best_count = count;
      }
    }
    repair_target.emplace(key, *best);
  }
  if (repair_target.empty()) return Status::OK();

  // Pass 2: rewrite violating rows.
  PCLEAN_ASSIGN_OR_RETURN(Column * rhs_col,
                          table->MutableColumnByName(fd_.rhs));
  for (size_t r = 0; r < table->num_rows(); ++r) {
    std::vector<Value> key;
    key.reserve(lhs_cols.size());
    for (const Column* col : lhs_cols) key.push_back(col->ValueAt(r));
    auto it = repair_target.find(key);
    if (it == repair_target.end()) continue;
    if (rhs_col->ValueAt(r) != it->second) {
      PCLEAN_RETURN_NOT_OK(rhs_col->SetValue(r, it->second));
    }
  }
  return Status::OK();
}

}  // namespace privateclean
