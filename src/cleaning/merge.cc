#include "cleaning/merge.h"

namespace privateclean {

FindReplace::FindReplace(
    std::string attribute,
    std::unordered_map<Value, Value, ValueHash> replacements)
    : attribute_(std::move(attribute)),
      replacements_(std::move(replacements)) {}

FindReplace FindReplace::Single(std::string attribute, Value from,
                                Value to) {
  std::unordered_map<Value, Value, ValueHash> map;
  map.emplace(std::move(from), std::move(to));
  return FindReplace(std::move(attribute), std::move(map));
}

std::string FindReplace::name() const {
  return "find_replace(" + attribute_ + ", " +
         std::to_string(replacements_.size()) + " rules)";
}

Status FindReplace::Apply(Table* table) const {
  if (table == nullptr) {
    return Status::InvalidArgument("table must not be null");
  }
  PCLEAN_RETURN_NOT_OK(ValidateDiscreteAttribute(*table, attribute_));
  PCLEAN_ASSIGN_OR_RETURN(Column * col,
                          table->MutableColumnByName(attribute_));
  for (size_t r = 0; r < col->size(); ++r) {
    auto it = replacements_.find(col->ValueAt(r));
    if (it == replacements_.end()) continue;
    PCLEAN_RETURN_NOT_OK(col->SetValue(r, it->second));
  }
  return Status::OK();
}

DomainMerge::DomainMerge(std::string attribute,
                         std::function<Value(const Value&, const Domain&)> fn)
    : attribute_(std::move(attribute)), fn_(std::move(fn)) {}

std::string DomainMerge::name() const {
  return "domain_merge(" + attribute_ + ")";
}

Status DomainMerge::Apply(Table* table) const {
  if (table == nullptr) {
    return Status::InvalidArgument("table must not be null");
  }
  PCLEAN_RETURN_NOT_OK(ValidateDiscreteAttribute(*table, attribute_));
  PCLEAN_ASSIGN_OR_RETURN(
      Domain domain,
      Domain::FromColumn(*table, attribute_, /*include_null=*/true));
  // One UDF evaluation per distinct value; the domain argument is the
  // pre-merge domain for every evaluation (simultaneous semantics).
  std::vector<Value> mapped;
  mapped.reserve(domain.size());
  for (size_t i = 0; i < domain.size(); ++i) {
    mapped.push_back(fn_(domain.value(i), domain));
  }
  PCLEAN_ASSIGN_OR_RETURN(Column * col,
                          table->MutableColumnByName(attribute_));
  for (size_t r = 0; r < col->size(); ++r) {
    size_t idx = domain.IndexOf(col->ValueAt(r)).ValueOrDie();
    PCLEAN_RETURN_NOT_OK(col->SetValue(r, mapped[idx]));
  }
  return Status::OK();
}

MergeToNull::MergeToNull(std::string attribute,
                         std::function<bool(const Value&)> is_spurious)
    : attribute_(std::move(attribute)),
      is_spurious_(std::move(is_spurious)) {}

std::string MergeToNull::name() const {
  return "merge_to_null(" + attribute_ + ")";
}

Status MergeToNull::Apply(Table* table) const {
  if (table == nullptr) {
    return Status::InvalidArgument("table must not be null");
  }
  PCLEAN_RETURN_NOT_OK(ValidateDiscreteAttribute(*table, attribute_));
  PCLEAN_ASSIGN_OR_RETURN(
      Domain domain,
      Domain::FromColumn(*table, attribute_, /*include_null=*/true));
  std::vector<uint8_t> spurious(domain.size());
  for (size_t i = 0; i < domain.size(); ++i) {
    spurious[i] = is_spurious_(domain.value(i)) ? 1 : 0;
  }
  PCLEAN_ASSIGN_OR_RETURN(Column * col,
                          table->MutableColumnByName(attribute_));
  for (size_t r = 0; r < col->size(); ++r) {
    size_t idx = domain.IndexOf(col->ValueAt(r)).ValueOrDie();
    if (spurious[idx]) {
      PCLEAN_RETURN_NOT_OK(col->SetValue(r, Value::Null()));
    }
  }
  return Status::OK();
}

}  // namespace privateclean
