#ifndef PRIVATECLEAN_CLEANING_MD_REPAIR_H_
#define PRIVATECLEAN_CLEANING_MD_REPAIR_H_

#include "cleaning/cleaner.h"
#include "cleaning/constraints.h"

namespace privateclean {

/// Matching-dependency repair cleaner (paper §8.3.4, Figure 8b).
///
/// Clusters the attribute's distinct string values under the edit-
/// distance bound (FindMdClusters) and merges every non-canonical member
/// onto its cluster's canonical (highest-frequency) value. Unlike FD
/// repair, the resolution is unique given the relation — the regime the
/// paper notes has no imperfect-cleaning artifacts.
class MdRepair : public Cleaner {
 public:
  explicit MdRepair(MatchingDependency md);

  Status Apply(Table* table) const override;
  CleanerKind kind() const override { return CleanerKind::kMerge; }
  std::string name() const override;

  const MatchingDependency& md() const { return md_; }

 private:
  MatchingDependency md_;
};

}  // namespace privateclean

#endif  // PRIVATECLEAN_CLEANING_MD_REPAIR_H_
