#include "cleaning/cleaner.h"

namespace privateclean {

const char* CleanerKindToString(CleanerKind kind) {
  switch (kind) {
    case CleanerKind::kExtract:
      return "extract";
    case CleanerKind::kTransform:
      return "transform";
    case CleanerKind::kMerge:
      return "merge";
  }
  return "unknown";
}

Status ValidateDiscreteAttribute(const Table& table,
                                 const std::string& attribute) {
  PCLEAN_ASSIGN_OR_RETURN(Field field,
                          table.schema().FieldByName(attribute));
  if (field.kind != AttributeKind::kDiscrete) {
    return Status::InvalidArgument(
        "cleaning operations are restricted to discrete attributes; '" +
        attribute + "' is numerical");
  }
  return Status::OK();
}

}  // namespace privateclean
