#include "cleaning/pipeline.h"

namespace privateclean {

CleaningPipeline& CleaningPipeline::Add(std::unique_ptr<Cleaner> cleaner) {
  cleaners_.push_back(std::move(cleaner));
  return *this;
}

Status CleaningPipeline::Apply(Table* table) const {
  for (size_t i = 0; i < cleaners_.size(); ++i) {
    Status st = cleaners_[i]->Apply(table);
    if (!st.ok()) {
      return Status::Internal("pipeline stage " + std::to_string(i) + " (" +
                              cleaners_[i]->name() +
                              ") failed: " + st.ToString());
    }
  }
  return Status::OK();
}

std::vector<std::string> CleaningPipeline::StageNames() const {
  std::vector<std::string> names;
  names.reserve(cleaners_.size());
  for (const auto& c : cleaners_) names.push_back(c->name());
  return names;
}

}  // namespace privateclean
