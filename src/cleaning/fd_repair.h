#ifndef PRIVATECLEAN_CLEANING_FD_REPAIR_H_
#define PRIVATECLEAN_CLEANING_FD_REPAIR_H_

#include "cleaning/cleaner.h"
#include "cleaning/constraints.h"

namespace privateclean {

/// Functional-dependency repair cleaner (paper Example 2 and §8.3.4).
///
/// Implements a cost-based value-modification heuristic in the spirit of
/// Bohannon et al. [6]: for each left-hand-side group violating the FD,
/// all rows are updated to the group's majority right-hand-side value
/// (minimum number of cell changes for that group; ties broken by value
/// order for determinism). This is a Transform over the projection
/// (lhs..., rhs) — deterministic per distinct projected tuple given the
/// relation, which is what the provenance model requires.
///
/// Like all heuristic FD repairs it can be wrong when the corruption
/// outvotes the truth in a group; the paper's Figure 8a exercises exactly
/// this imperfect-cleaning regime.
class FdRepair : public Cleaner {
 public:
  explicit FdRepair(FunctionalDependency fd);

  Status Apply(Table* table) const override;
  CleanerKind kind() const override { return CleanerKind::kTransform; }
  std::string name() const override;

  const FunctionalDependency& fd() const { return fd_; }

 private:
  FunctionalDependency fd_;
};

}  // namespace privateclean

#endif  // PRIVATECLEAN_CLEANING_FD_REPAIR_H_
