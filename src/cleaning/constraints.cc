#include "cleaning/constraints.h"

#include <algorithm>
#include <map>

#include "cleaning/cleaner.h"
#include "common/edit_distance.h"
#include "table/domain.h"

namespace privateclean {

std::string FunctionalDependency::ToString() const {
  std::string out = "[";
  for (size_t i = 0; i < lhs.size(); ++i) {
    if (i > 0) out += ", ";
    out += lhs[i];
  }
  out += "] -> [" + rhs + "]";
  return out;
}

std::string MatchingDependency::ToString() const {
  return "MD([" + attribute + "] ~ [" + attribute +
         "], edit distance <= " + std::to_string(max_edit_distance) + ")";
}

Result<std::vector<FdViolation>> FindFdViolations(
    const Table& table, const FunctionalDependency& fd) {
  if (fd.lhs.empty()) {
    return Status::InvalidArgument("FD left-hand side must be non-empty");
  }
  std::vector<const Column*> lhs_cols;
  for (const std::string& attr : fd.lhs) {
    PCLEAN_RETURN_NOT_OK(ValidateDiscreteAttribute(table, attr));
    PCLEAN_ASSIGN_OR_RETURN(const Column* col, table.ColumnByName(attr));
    lhs_cols.push_back(col);
  }
  PCLEAN_RETURN_NOT_OK(ValidateDiscreteAttribute(table, fd.rhs));
  PCLEAN_ASSIGN_OR_RETURN(const Column* rhs_col,
                          table.ColumnByName(fd.rhs));

  // Group rows by lhs tuple; count rhs values within each group.
  std::map<std::vector<Value>, std::map<Value, size_t>> groups;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    std::vector<Value> key;
    key.reserve(lhs_cols.size());
    for (const Column* col : lhs_cols) key.push_back(col->ValueAt(r));
    groups[std::move(key)][rhs_col->ValueAt(r)]++;
  }

  std::vector<FdViolation> violations;
  for (auto& [key, rhs_counts] : groups) {
    if (rhs_counts.size() < 2) continue;
    FdViolation v;
    v.lhs_tuple = key;
    for (const auto& [value, count] : rhs_counts) {
      v.rhs_values.emplace_back(value, count);
    }
    violations.push_back(std::move(v));
  }
  return violations;
}

Result<bool> SatisfiesFd(const Table& table,
                         const FunctionalDependency& fd) {
  PCLEAN_ASSIGN_OR_RETURN(auto violations, FindFdViolations(table, fd));
  return violations.empty();
}

Result<std::vector<MdCluster>> FindMdClusters(const Table& table,
                                              const MatchingDependency& md) {
  PCLEAN_RETURN_NOT_OK(ValidateDiscreteAttribute(table, md.attribute));
  PCLEAN_ASSIGN_OR_RETURN(Field field,
                          table.schema().FieldByName(md.attribute));
  if (field.type != ValueType::kString) {
    return Status::InvalidArgument(
        "matching dependencies require a string attribute");
  }
  PCLEAN_ASSIGN_OR_RETURN(
      Domain domain,
      Domain::FromColumn(table, md.attribute, /*include_null=*/false));

  // Order values by frequency descending, ties broken by value, so the
  // clustering is deterministic and canonicals are the most common
  // spellings.
  std::vector<size_t> order(domain.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (domain.frequency(a) != domain.frequency(b)) {
      return domain.frequency(a) > domain.frequency(b);
    }
    return domain.value(a) < domain.value(b);
  });

  std::vector<size_t> canonical_indices;
  std::map<size_t, std::vector<size_t>> members;  // canonical -> members
  for (size_t idx : order) {
    const std::string& s = domain.value(idx).AsString();
    bool assigned = false;
    for (size_t c : canonical_indices) {
      const std::string& canon = domain.value(c).AsString();
      if (BoundedEditDistance(s, canon, md.max_edit_distance) <=
          md.max_edit_distance) {
        members[c].push_back(idx);
        assigned = true;
        break;
      }
    }
    if (!assigned) {
      canonical_indices.push_back(idx);
      members[idx];  // Ensure the cluster exists even if it stays unary.
    }
  }

  std::vector<MdCluster> clusters;
  for (size_t c : canonical_indices) {
    const auto& m = members[c];
    if (m.empty()) continue;
    MdCluster cluster;
    cluster.canonical = domain.value(c);
    for (size_t idx : m) cluster.members.push_back(domain.value(idx));
    clusters.push_back(std::move(cluster));
  }
  return clusters;
}

}  // namespace privateclean
