#ifndef PRIVATECLEAN_CLEANING_CONSTRAINTS_H_
#define PRIVATECLEAN_CLEANING_CONSTRAINTS_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "table/table.h"

namespace privateclean {

/// Functional dependency X → y over discrete attributes: rows agreeing on
/// all of `lhs` must agree on `rhs` (paper Example 2 and the TPC-DS
/// constraint (ca_city, ca_county) → ca_state).
struct FunctionalDependency {
  std::vector<std::string> lhs;
  std::string rhs;

  std::string ToString() const;
};

/// One violating group of a functional dependency: a left-hand-side tuple
/// mapped to more than one right-hand-side value.
struct FdViolation {
  std::vector<Value> lhs_tuple;
  /// Distinct conflicting rhs values with their row counts.
  std::vector<std::pair<Value, size_t>> rhs_values;
};

/// Finds all violating groups of `fd` in `table`.
Result<std::vector<FdViolation>> FindFdViolations(
    const Table& table, const FunctionalDependency& fd);

/// True iff the relation satisfies the dependency.
Result<bool> SatisfiesFd(const Table& table, const FunctionalDependency& fd);

/// Matching dependency on one discrete string attribute: values within
/// `max_edit_distance` of each other should denote the same real-world
/// entity (the paper's MD([ca_country] ≈ [ca_country]) with edit
/// distance).
struct MatchingDependency {
  std::string attribute;
  size_t max_edit_distance = 1;

  std::string ToString() const;
};

/// One cluster of values considered equal under the matching dependency,
/// with the canonical (highest-frequency) representative first.
struct MdCluster {
  Value canonical;
  std::vector<Value> members;  ///< Non-canonical members.
};

/// Clusters a column's values under `md` (greedy frequency-descending
/// assignment, deterministic): each value joins the most frequent
/// existing canonical within the distance bound, else founds its own
/// cluster. Returns only clusters with at least one non-canonical member.
Result<std::vector<MdCluster>> FindMdClusters(const Table& table,
                                              const MatchingDependency& md);

}  // namespace privateclean

#endif  // PRIVATECLEAN_CLEANING_CONSTRAINTS_H_
