#ifndef PRIVATECLEAN_CLEANING_PIPELINE_H_
#define PRIVATECLEAN_CLEANING_PIPELINE_H_

#include <memory>
#include <string>
#include <vector>

#include "cleaning/cleaner.h"

namespace privateclean {

/// Ordered composition of cleaners, C = C_1 ∘ C_2 ∘ ... ∘ C_k
/// (paper §3.2.1). Cleaners run in insertion order; the pipeline stops at
/// the first failure and reports which stage failed.
class CleaningPipeline {
 public:
  CleaningPipeline() = default;

  /// Appends a cleaner; returns *this for chaining.
  CleaningPipeline& Add(std::unique_ptr<Cleaner> cleaner);

  /// Convenience: constructs the cleaner in place.
  template <typename T, typename... Args>
  CleaningPipeline& Emplace(Args&&... args) {
    return Add(std::make_unique<T>(std::forward<Args>(args)...));
  }

  /// Applies all cleaners to `table` in order.
  Status Apply(Table* table) const;

  size_t size() const { return cleaners_.size(); }
  const Cleaner& cleaner(size_t i) const { return *cleaners_[i]; }

  /// Stage names, for diagnostics.
  std::vector<std::string> StageNames() const;

 private:
  std::vector<std::unique_ptr<Cleaner>> cleaners_;
};

}  // namespace privateclean

#endif  // PRIVATECLEAN_CLEANING_PIPELINE_H_
