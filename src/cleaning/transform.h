#ifndef PRIVATECLEAN_CLEANING_TRANSFORM_H_
#define PRIVATECLEAN_CLEANING_TRANSFORM_H_

#include <functional>
#include <string>
#include <vector>

#include "cleaning/cleaner.h"

namespace privateclean {

/// Transform cleaner over a single discrete attribute:
/// v[d] ← C(v[d]) (paper §3.2.1, Transform with g_i = {d_i}).
///
/// The UDF is evaluated once per distinct value and the result broadcast
/// to all rows holding that value, so the operation is deterministic by
/// construction and the provenance graph stays fork-free (§6).
class ValueTransform : public Cleaner {
 public:
  /// `fn` maps a distinct value (possibly null) to its cleaned value.
  ValueTransform(std::string attribute,
                 std::function<Value(const Value&)> fn);

  Status Apply(Table* table) const override;
  CleanerKind kind() const override { return CleanerKind::kTransform; }
  std::string name() const override;

 private:
  std::string attribute_;
  std::function<Value(const Value&)> fn_;
};

/// Transform cleaner over a multi-attribute projection g_i:
/// (v[d_1], ..., v[d_k]) ← C(v[d_1], ..., v[d_k]).
///
/// The UDF sees the projected tuple and returns a replacement tuple of
/// the same arity. It is evaluated once per distinct projected tuple.
/// Because the rewrite of one attribute depends on the other attributes
/// in the projection, a single attribute's provenance graph may fork
/// (§7, Example 6) — the weighted cut handles this at query time.
class ProjectionTransform : public Cleaner {
 public:
  ProjectionTransform(
      std::vector<std::string> attributes,
      std::function<std::vector<Value>(const std::vector<Value>&)> fn);

  Status Apply(Table* table) const override;
  CleanerKind kind() const override { return CleanerKind::kTransform; }
  std::string name() const override;

 private:
  std::vector<std::string> attributes_;
  std::function<std::vector<Value>(const std::vector<Value>&)> fn_;
};

}  // namespace privateclean

#endif  // PRIVATECLEAN_CLEANING_TRANSFORM_H_
