#include "privacy/laplace_mechanism.h"

#include <algorithm>
#include <cmath>

namespace privateclean {

Status ApplyLaplaceMechanism(Column* column, double b, Rng& rng) {
  if (column == nullptr) {
    return Status::InvalidArgument("column must not be null");
  }
  return ApplyLaplaceMechanismShard(column, b, rng, 0, column->size());
}

Status ApplyLaplaceMechanismShard(Column* column, double b, Rng& rng,
                                  size_t begin, size_t end) {
  if (column == nullptr) {
    return Status::InvalidArgument("column must not be null");
  }
  if (b < 0.0) {
    return Status::InvalidArgument("Laplace scale must be >= 0");
  }
  if (column->type() == ValueType::kString) {
    return Status::InvalidArgument(
        "Laplace mechanism applies to numerical columns only");
  }
  if (end > column->size() || begin > end) {
    return Status::OutOfRange("noising range out of bounds");
  }
  if (b == 0.0) return Status::OK();
  if (column->type() == ValueType::kDouble) {
    std::vector<double>* xs = column->mutable_doubles();
    for (size_t r = begin; r < end; ++r) {
      if (column->IsNull(r)) continue;
      (*xs)[r] = rng.Laplace((*xs)[r], b);
    }
  } else {
    std::vector<int64_t>* xs = column->mutable_ints();
    for (size_t r = begin; r < end; ++r) {
      if (column->IsNull(r)) continue;
      double noised = rng.Laplace(static_cast<double>((*xs)[r]), b);
      (*xs)[r] = static_cast<int64_t>(std::llround(noised));
    }
  }
  return Status::OK();
}

Result<double> ColumnSensitivity(const Column& column) {
  if (column.type() == ValueType::kString) {
    return Status::InvalidArgument(
        "sensitivity is defined for numerical columns only");
  }
  bool any = false;
  double lo = 0.0, hi = 0.0;
  for (size_t r = 0; r < column.size(); ++r) {
    if (column.IsNull(r)) continue;
    double x = column.NumericAt(r);
    if (!any) {
      lo = hi = x;
      any = true;
    } else {
      lo = std::min(lo, x);
      hi = std::max(hi, x);
    }
  }
  if (!any) {
    return Status::FailedPrecondition(
        "sensitivity undefined: column has no non-null entries");
  }
  return hi - lo;
}

}  // namespace privateclean
