#include "privacy/laplace_mechanism.h"

#include <algorithm>
#include <cmath>

#include "common/thread_pool.h"

namespace privateclean {

Status ApplyLaplaceMechanism(Column* column, double b, Rng& rng) {
  if (column == nullptr) {
    return Status::InvalidArgument("column must not be null");
  }
  return ApplyLaplaceMechanismShard(column, b, rng, 0, column->size());
}

Status ApplyLaplaceMechanismShard(Column* column, double b, Rng& rng,
                                  size_t begin, size_t end) {
  if (column == nullptr) {
    return Status::InvalidArgument("column must not be null");
  }
  if (b < 0.0) {
    return Status::InvalidArgument("Laplace scale must be >= 0");
  }
  if (column->type() == ValueType::kString) {
    return Status::InvalidArgument(
        "Laplace mechanism applies to numerical columns only");
  }
  if (end > column->size() || begin > end) {
    return Status::OutOfRange("noising range out of bounds");
  }
  if (b == 0.0) return Status::OK();
  if (column->type() == ValueType::kDouble) {
    std::vector<double>* xs = column->mutable_doubles();
    for (size_t r = begin; r < end; ++r) {
      if (column->IsNull(r)) continue;
      (*xs)[r] = rng.Laplace((*xs)[r], b);
    }
  } else {
    std::vector<int64_t>* xs = column->mutable_ints();
    for (size_t r = begin; r < end; ++r) {
      if (column->IsNull(r)) continue;
      double noised = rng.Laplace(static_cast<double>((*xs)[r]), b);
      (*xs)[r] = static_cast<int64_t>(std::llround(noised));
    }
  }
  return Status::OK();
}

namespace {

/// Per-shard min/max partial for the sensitivity reduction. Merged in
/// shard index order per the determinism contract (the reduction is
/// order-insensitive anyway, but the contract keeps every sharded path
/// uniform and auditable).
struct MinMaxPartial {
  bool any = false;
  double lo = 0.0;
  double hi = 0.0;

  void Add(double x) {
    if (!any) {
      lo = hi = x;
      any = true;
    } else {
      lo = std::min(lo, x);
      hi = std::max(hi, x);
    }
  }
};

}  // namespace

Result<double> ColumnSensitivity(const Column& column,
                                 const ExecutionOptions& exec) {
  if (column.type() == ValueType::kString) {
    return Status::InvalidArgument(
        "sensitivity is defined for numerical columns only");
  }
  const size_t shards = ShardCountForRows(column.size());
  std::vector<MinMaxPartial> partials(shards);
  PCLEAN_RETURN_NOT_OK(ParallelFor(
      column.size(), shards, exec,
      [&](size_t shard, size_t begin, size_t end) -> Status {
        MinMaxPartial& part = partials[shard];
        for (size_t r = begin; r < end; ++r) {
          if (column.IsNull(r)) continue;
          part.Add(column.NumericAt(r));
        }
        return Status::OK();
      }));
  MinMaxPartial merged;
  for (const MinMaxPartial& part : partials) {
    if (!part.any) continue;
    merged.Add(part.lo);
    merged.Add(part.hi);
  }
  if (!merged.any) {
    return Status::FailedPrecondition(
        "sensitivity undefined: column has no non-null entries");
  }
  return merged.hi - merged.lo;
}

}  // namespace privateclean
