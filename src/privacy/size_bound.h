#ifndef PRIVATECLEAN_PRIVACY_SIZE_BOUND_H_
#define PRIVATECLEAN_PRIVACY_SIZE_BOUND_H_

#include <cstddef>

#include "common/result.h"

namespace privateclean {

/// Theorem 2 machinery: how large must the dataset be so that, with
/// probability 1 − α, every distinct value of a discrete attribute is
/// still visible after randomized response?

/// Lower bound on the probability that *all* N domain values survive GRR
/// on a dataset of S rows with randomization probability p (union bound
/// from the proof of Theorem 2):
///   P[all] >= 1 − p(N−1)(1 − p/N)^(S−1)
/// Clamped to [0, 1]. Requires N >= 1, S >= 1, p in [0, 1].
Result<double> DomainPreservationLowerBound(size_t num_distinct, double p,
                                            size_t dataset_size);

/// Minimum dataset size from Theorem 2's closed form:
///   S > (N/p) · ln(pN / α)
/// Requires N >= 1, p in (0, 1], α in (0, 1). Returns 1 when the log term
/// is non-positive (tiny domains are trivially preserved).
Result<size_t> MinDatasetSizeForDomainPreservation(size_t num_distinct,
                                                   double p, double alpha);

/// Exact-form minimum size obtained by inverting the union bound directly
/// (tighter than the closed form):
///   S >= 1 + ln(α / (p(N−1))) / ln(1 − p/N)
Result<size_t> MinDatasetSizeExact(size_t num_distinct, double p,
                                   double alpha);

/// Expected number of GRR regenerations until a domain-preserving private
/// relation is drawn, 1 / (1 − α) with α the failure probability bound
/// (paper §4.3).
Result<double> ExpectedRegenerations(size_t num_distinct, double p,
                                     size_t dataset_size);

}  // namespace privateclean

#endif  // PRIVATECLEAN_PRIVACY_SIZE_BOUND_H_
