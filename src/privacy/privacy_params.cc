#include "privacy/privacy_params.h"

#include <cmath>

namespace privateclean {

Result<double> EpsilonForRandomizedResponse(double p) {
  if (!(p > 0.0 && p <= 1.0)) {
    return Status::InvalidArgument(
        "randomization probability must be in (0, 1], got " +
        std::to_string(p));
  }
  return std::log(3.0 / p - 2.0);
}

Result<double> RandomizationForEpsilon(double epsilon) {
  if (epsilon < 0.0) {
    return Status::InvalidArgument("epsilon must be >= 0");
  }
  return 3.0 / (std::exp(epsilon) + 2.0);
}

Result<double> EpsilonForLaplace(double delta, double b) {
  if (delta < 0.0) {
    return Status::InvalidArgument("sensitivity must be >= 0");
  }
  if (!(b > 0.0)) {
    return Status::InvalidArgument("Laplace scale must be > 0");
  }
  return delta / b;
}

Result<double> LaplaceScaleForEpsilon(double delta, double epsilon) {
  if (delta < 0.0) {
    return Status::InvalidArgument("sensitivity must be >= 0");
  }
  if (!(epsilon > 0.0)) {
    return Status::InvalidArgument("epsilon must be > 0");
  }
  return delta / epsilon;
}

GrrParams GrrParams::Uniform(double p, double b) {
  GrrParams params;
  params.default_p = p;
  params.default_b = b;
  return params;
}

}  // namespace privateclean
