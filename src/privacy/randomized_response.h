#ifndef PRIVATECLEAN_PRIVACY_RANDOMIZED_RESPONSE_H_
#define PRIVATECLEAN_PRIVACY_RANDOMIZED_RESPONSE_H_

#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "table/column.h"
#include "table/domain.h"

namespace privateclean {

/// Randomized-response mechanism for a discrete attribute (paper §4.2.1):
///
///   r'[d] = r[d]              with probability 1 - p
///         = U(Domain(d))      with probability p
///
/// The replacement is drawn uniformly from `domain` — which must be the
/// domain of the *original dirty* column, captured before randomization.
/// Null is a legitimate domain member (spurious/missing values in the
/// dirty data are part of Domain(d) and participate in randomization).
///
/// Requires p in [0, 1] and a non-empty domain. p == 0 leaves the column
/// untouched (no privacy); p == 1 replaces every value.
Status ApplyRandomizedResponse(Column* column, const Domain& domain,
                               double p, Rng& rng);

/// Pre-interns every string domain value into the dictionary of a string
/// `column` and returns the domain-index -> dictionary-code table (the
/// null domain member maps to kNullCode). This is the single-writer step
/// that must run *before* sharded randomization: with the table in hand,
/// the parallel kernels replace a row with one Bernoulli draw, one
/// uniform integer draw, and a plain `uint32_t` store — no string copies
/// and no dictionary mutation. Rejects non-string domain members with
/// InvalidArgument (they could never be stored in the column).
///
/// For non-string columns returns an empty table; the kernels then write
/// through the typed numeric storage as before.
Result<std::vector<uint32_t>> PrepareDomainCodes(Column* column,
                                                 const Domain& domain);

/// Row-range kernel of randomized response, for sharded execution
/// (common/thread_pool.h): randomizes rows [begin, end) of `column`
/// drawing from `rng`. Kernels over disjoint ranges may run concurrently
/// on one column — writes go through the raw typed storage and skip the
/// shared null bookkeeping, so the caller must invoke
/// `column->RecomputeNullCount()` after all shards finish.
///
/// `domain_codes` must be the table returned by PrepareDomainCodes for
/// this (column, domain) pair; it is required for string columns (the
/// kernel writes codes, never strings) and ignored for numeric ones.
///
/// If `coverage` is non-null it must point at `domain.size()` flags; the
/// kernel sets the flag of every domain value that appears in the range
/// *after* randomization — replaced rows mark the drawn index, untouched
/// rows mark `original_indices[r]` (the domain index of the row's
/// pre-randomization value, which the caller computes once per column;
/// UINT32_MAX marks a value outside the domain and contributes nothing).
/// This is how `ApplyGrr` tracks Theorem 2 domain preservation in the
/// same pass as the randomization instead of rescanning the column.
/// `original_indices` may be null when `coverage` is null.
Status ApplyRandomizedResponseShard(Column* column, const Domain& domain,
                                    double p, Rng& rng, size_t begin,
                                    size_t end,
                                    const uint32_t* original_indices,
                                    uint8_t* coverage,
                                    const uint32_t* domain_codes = nullptr);

/// Sentinel a perturbation draw functor returns to keep a row's original
/// value (no replacement).
inline constexpr size_t kKeepRowDraw = static_cast<size_t>(-1);

/// Generic row-range perturbation kernel shared by every registered
/// mechanism (privacy/mechanism.h). `draw(rng, n)` decides each row's
/// fate: `kKeepRowDraw` keeps the original value, any other return is
/// the domain index of the replacement. The functor owns the mechanism's
/// entire draw sequence, so two mechanisms differ *only* in their
/// functor — storage writes, coverage tracking, and the dictionary fast
/// path are identical. The legacy GRR kernel
/// (ApplyRandomizedResponseShard) is the `Bernoulli(p)` +
/// `UniformInt(n)` instantiation of this template, byte-for-byte.
///
/// Contract is identical to ApplyRandomizedResponseShard below:
/// `domain_codes` from PrepareDomainCodes is required for string
/// columns, `coverage`/`original_indices` track Theorem 2 domain
/// preservation, and the caller recomputes the null count after all
/// shards finish.
template <typename DrawFn>
Status PerturbCodesShard(Column* column, const Domain& domain, DrawFn&& draw,
                         Rng& rng, size_t begin, size_t end,
                         const uint32_t* original_indices, uint8_t* coverage,
                         const uint32_t* domain_codes) {
  if (column == nullptr) {
    return Status::InvalidArgument("column must not be null");
  }
  if (domain.empty()) {
    return Status::FailedPrecondition(
        "randomized response requires a non-empty domain");
  }
  if (end > column->size() || begin > end) {
    return Status::OutOfRange("randomization range out of bounds");
  }
  if (coverage != nullptr && original_indices == nullptr) {
    return Status::InvalidArgument(
        "coverage tracking requires the original domain indices");
  }
  if (column->type() == ValueType::kString && domain_codes == nullptr) {
    return Status::InvalidArgument(
        "string columns require the PrepareDomainCodes table");
  }

  uint8_t* valid = column->mutable_validity()->data();
  const size_t n = domain.size();

  if (column->type() == ValueType::kString) {
    // Dictionary fast path: a replacement is one table lookup and one
    // aligned 4-byte store. The draw sequence lives entirely in the
    // functor, so the string and boxed paths produce bit-identical
    // columns from the same stream.
    uint32_t* codes = column->mutable_codes()->data();
    for (size_t r = begin; r < end; ++r) {
      size_t j = draw(rng, n);
      if (j == kKeepRowDraw) {
        if (coverage != nullptr && original_indices[r] != UINT32_MAX) {
          coverage[original_indices[r]] = 1;
        }
        continue;
      }
      uint32_t code = domain_codes[j];
      codes[r] = code;
      valid[r] = (code == kNullCode) ? 0 : 1;
      if (coverage != nullptr) coverage[j] = 1;
    }
    return Status::OK();
  }

  for (size_t r = begin; r < end; ++r) {
    size_t j = draw(rng, n);
    if (j == kKeepRowDraw) {
      // UINT32_MAX flags a row whose original value is outside the
      // domain (possible only with a caller-supplied domain); it
      // contributes no coverage.
      if (coverage != nullptr && original_indices[r] != UINT32_MAX) {
        coverage[original_indices[r]] = 1;
      }
      continue;
    }
    const Value& v = domain.value(j);
    if (v.is_null()) {
      switch (column->type()) {
        case ValueType::kInt64:
          (*column->mutable_ints())[r] = 0;
          break;
        case ValueType::kDouble:
          (*column->mutable_doubles())[r] = 0.0;
          break;
        default:
          return Status::Internal("unexpected column type");
      }
      valid[r] = 0;
    } else {
      if (v.type() != column->type()) {
        return Status::InvalidArgument(
            std::string("cannot set ") + ValueTypeToString(v.type()) +
            " value in " + ValueTypeToString(column->type()) + " column");
      }
      switch (column->type()) {
        case ValueType::kInt64:
          (*column->mutable_ints())[r] = v.AsInt64();
          break;
        case ValueType::kDouble:
          (*column->mutable_doubles())[r] = v.AsDouble();
          break;
        default:
          return Status::Internal("unexpected column type");
      }
      valid[r] = 1;
    }
    if (coverage != nullptr) coverage[j] = 1;
  }
  return Status::OK();
}

/// Transition probabilities of randomized response for a predicate that
/// selects l of the N distinct values (paper §5.3). These are the
/// deterministic constants the estimators are parameterized by.
struct TransitionProbabilities {
  double true_positive = 0.0;   ///< τ_p = (1-p) + p·l/N
  double false_positive = 0.0;  ///< τ_n = p·l/N
  double true_negative = 0.0;   ///< (1-p) + p·(N-l)/N
  double false_negative = 0.0;  ///< p·(N-l)/N
};

/// Computes the transition probabilities. `l` may be fractional in the
/// multi-attribute (weighted provenance) case (§7.2). Requires
/// 0 <= p <= 1, N >= 1 and 0 <= l <= N.
Result<TransitionProbabilities> ComputeTransitionProbabilities(double p,
                                                               double l,
                                                               double n);

}  // namespace privateclean

#endif  // PRIVATECLEAN_PRIVACY_RANDOMIZED_RESPONSE_H_
