#ifndef PRIVATECLEAN_PRIVACY_RANDOMIZED_RESPONSE_H_
#define PRIVATECLEAN_PRIVACY_RANDOMIZED_RESPONSE_H_

#include "common/random.h"
#include "common/result.h"
#include "table/column.h"
#include "table/domain.h"

namespace privateclean {

/// Randomized-response mechanism for a discrete attribute (paper §4.2.1):
///
///   r'[d] = r[d]              with probability 1 - p
///         = U(Domain(d))      with probability p
///
/// The replacement is drawn uniformly from `domain` — which must be the
/// domain of the *original dirty* column, captured before randomization.
/// Null is a legitimate domain member (spurious/missing values in the
/// dirty data are part of Domain(d) and participate in randomization).
///
/// Requires p in [0, 1] and a non-empty domain. p == 0 leaves the column
/// untouched (no privacy); p == 1 replaces every value.
Status ApplyRandomizedResponse(Column* column, const Domain& domain,
                               double p, Rng& rng);

/// Transition probabilities of randomized response for a predicate that
/// selects l of the N distinct values (paper §5.3). These are the
/// deterministic constants the estimators are parameterized by.
struct TransitionProbabilities {
  double true_positive = 0.0;   ///< τ_p = (1-p) + p·l/N
  double false_positive = 0.0;  ///< τ_n = p·l/N
  double true_negative = 0.0;   ///< (1-p) + p·(N-l)/N
  double false_negative = 0.0;  ///< p·(N-l)/N
};

/// Computes the transition probabilities. `l` may be fractional in the
/// multi-attribute (weighted provenance) case (§7.2). Requires
/// 0 <= p <= 1, N >= 1 and 0 <= l <= N.
Result<TransitionProbabilities> ComputeTransitionProbabilities(double p,
                                                               double l,
                                                               double n);

}  // namespace privateclean

#endif  // PRIVATECLEAN_PRIVACY_RANDOMIZED_RESPONSE_H_
