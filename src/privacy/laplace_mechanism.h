#ifndef PRIVATECLEAN_PRIVACY_LAPLACE_MECHANISM_H_
#define PRIVATECLEAN_PRIVACY_LAPLACE_MECHANISM_H_

#include "common/random.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "table/column.h"

namespace privateclean {

/// Laplace mechanism for a numerical attribute (paper §4.2.2):
/// r'[a] = r[a] + Laplace(0, b). Null entries stay null.
///
/// Double columns receive real-valued noise. Int64 columns receive
/// rounded noise (round(x + Laplace(0, b))): rounding is deterministic
/// post-processing of an ε-DP output, so privacy is preserved
/// (Dwork & Roth Prop. 2.1), and by the symmetry of the Laplace
/// distribution the rounded noise remains zero-mean, which is all the
/// estimators rely on.
///
/// Requires b >= 0 (b == 0 is a no-op, meaning no privacy).
Status ApplyLaplaceMechanism(Column* column, double b, Rng& rng);

/// Row-range kernel of the Laplace mechanism, for sharded execution
/// (common/thread_pool.h): noises rows [begin, end) drawing from `rng`.
/// Kernels over disjoint ranges may run concurrently on one column; the
/// validity vector is only read, so no null-count fixup is needed.
Status ApplyLaplaceMechanismShard(Column* column, double b, Rng& rng,
                                  size_t begin, size_t end);

/// Sensitivity Δ of a numerical column: max − min over non-null entries
/// (paper Proposition 1). Errors if the column has no non-null entries.
///
/// The reduction is sharded per `exec` (common/thread_pool.h) with
/// per-shard min/max partials merged in shard index order, so the result
/// is identical at every thread count.
Result<double> ColumnSensitivity(const Column& column,
                                 const ExecutionOptions& exec = {});

}  // namespace privateclean

#endif  // PRIVATECLEAN_PRIVACY_LAPLACE_MECHANISM_H_
