#include "privacy/grr.h"

#include <limits>

#include "common/thread_pool.h"
#include "privacy/laplace_mechanism.h"
#include "privacy/randomized_response.h"

namespace privateclean {

namespace {

constexpr uint32_t kNoDomainIndex = std::numeric_limits<uint32_t>::max();

/// Domain index of every row of `column` before randomization, so the
/// sharded kernels can track Theorem 2 domain coverage during the
/// randomization pass itself (a retry round then costs one pass, not a
/// randomize-then-rescan pair). Rows whose value is somehow outside the
/// domain (cannot happen when the domain was taken from this column; be
/// safe) get a sentinel the kernels skip.
std::vector<uint32_t> DomainIndices(const Column& column, const Domain& domain,
                                    const ExecutionOptions& exec) {
  std::vector<uint32_t> indices(column.size(), kNoDomainIndex);
  // Read-only on the column and domain, so sharding is safe; the result
  // does not depend on the shard layout.
  if (column.type() == ValueType::kString) {
    // Dictionary fast path: resolve each *distinct* value against the
    // domain once (O(distinct) hash lookups), then the per-row pass is a
    // pair of array reads. Null rows resolve through the null member's
    // domain index, exactly as IndexOf(Value::Null()) would.
    const StringDictionary& dict = column.dictionary();
    std::vector<uint32_t> code_to_index(dict.size(), kNoDomainIndex);
    for (uint32_t c = 0; c < dict.size(); ++c) {
      auto idx = domain.IndexOf(Value(std::string(dict.At(c))));
      if (idx.ok()) code_to_index[c] = static_cast<uint32_t>(*idx);
    }
    uint32_t null_index = kNoDomainIndex;
    if (auto idx = domain.IndexOf(Value::Null()); idx.ok()) {
      null_index = static_cast<uint32_t>(*idx);
    }
    const uint32_t* codes = column.codes().data();
    (void)ParallelFor(
        column.size(), ShardCountForRows(column.size()), exec,
        [&](size_t, size_t begin, size_t end) -> Status {
          for (size_t r = begin; r < end; ++r) {
            indices[r] = codes[r] == kNullCode ? null_index
                                               : code_to_index[codes[r]];
          }
          return Status::OK();
        });
    return indices;
  }
  (void)ParallelFor(
      column.size(), ShardCountForRows(column.size()), exec,
      [&](size_t, size_t begin, size_t end) -> Status {
        for (size_t r = begin; r < end; ++r) {
          auto idx = domain.IndexOf(column.ValueAt(r));
          if (idx.ok()) indices[r] = static_cast<uint32_t>(*idx);
        }
        return Status::OK();
      });
  return indices;
}

/// Randomizes one discrete column in place with the Theorem 2
/// regeneration loop, sharded over row ranges. Every attempt forks one
/// RNG stream per shard, in shard order, off the caller's `rng` — the
/// stream assignment depends only on the shard layout (a function of the
/// row count), never on the thread count, so output is reproducible from
/// the seed regardless of parallelism. The perturbation itself is the
/// mechanism's kernel; this loop only owns sharding and coverage.
Status RandomizeDiscreteColumn(Column* col, const Column& original,
                               const Domain& domain,
                               const Mechanism& mechanism,
                               const std::string& name,
                               const GrrOptions& options, Rng& rng,
                               size_t* total_regenerations) {
  const size_t rows = col->size();
  const size_t shards = ShardCountForRows(rows);
  PCLEAN_ASSIGN_OR_RETURN(double p_eff,
                          mechanism.ReplacementProbability(domain.size()));
  const bool track_coverage = options.ensure_domain_preserved && p_eff > 0.0;

  std::vector<uint32_t> original_indices;
  std::vector<std::vector<uint8_t>> coverage;
  if (track_coverage) {
    original_indices = DomainIndices(original, domain, options.exec);
    coverage.resize(shards);
  }

  // Single-writer dictionary step before the parallel section: intern
  // every string domain value so the sharded kernels write plain codes.
  PCLEAN_ASSIGN_OR_RETURN(std::vector<uint32_t> domain_codes,
                          PrepareDomainCodes(col, domain));

  size_t attempts = 0;
  for (;;) {
    std::vector<Rng> shard_rngs = rng.ForkStreams(shards);
    if (track_coverage) {
      for (auto& c : coverage) c.assign(domain.size(), 0);
    }
    PCLEAN_RETURN_NOT_OK(ParallelFor(
        rows, shards, options.exec,
        [&](size_t shard, size_t begin, size_t end) -> Status {
          uint8_t* shard_coverage = nullptr;
          const uint32_t* indices = nullptr;
          if (track_coverage) {
            shard_coverage = coverage[shard].data();
            indices = original_indices.data();
          }
          return mechanism.PerturbShard(
              col, domain, shard_rngs[shard], begin, end, indices,
              shard_coverage,
              domain_codes.empty() ? nullptr : domain_codes.data());
        }));
    col->RecomputeNullCount();
    if (!track_coverage) return Status::OK();

    // Merge per-shard coverage: preserved iff every domain value is
    // visible in some shard.
    bool preserved = true;
    for (size_t v = 0; v < domain.size() && preserved; ++v) {
      bool seen = false;
      for (size_t s = 0; s < shards && !seen; ++s) {
        seen = coverage[s][v] != 0;
      }
      preserved = seen;
    }
    if (preserved) return Status::OK();

    ++attempts;
    ++*total_regenerations;
    if (attempts >= options.max_regenerations) {
      return Status::FailedPrecondition(
          "attribute '" + name + "' failed domain preservation after " +
          std::to_string(attempts) +
          " regenerations; dataset likely violates the Theorem 2 size "
          "bound");
    }
    // Restore the original values and retry with fresh randomness. The
    // restore also restores the original's dictionary, so the domain
    // codes must be re-prepared against it before the next attempt.
    *col = original;
    PCLEAN_ASSIGN_OR_RETURN(domain_codes, PrepareDomainCodes(col, domain));
  }
}

/// Noises one numerical column through the mechanism's numeric kernel
/// (Laplace for every registered family), sharded like the discrete
/// path (shard-indexed RNG forks, thread-count-independent).
Status NoiseNumericColumn(Column* col, const Mechanism& mechanism, double b,
                          const GrrOptions& options, Rng& rng) {
  const size_t rows = col->size();
  const size_t shards = ShardCountForRows(rows);
  std::vector<Rng> shard_rngs = rng.ForkStreams(shards);
  return ParallelFor(rows, shards, options.exec,
                     [&](size_t shard, size_t begin, size_t end) -> Status {
                       return mechanism.NoiseNumericShard(
                           col, b, shard_rngs[shard], begin, end);
                     });
}

}  // namespace

Result<MechanismPtr> MechanismFor(const DiscreteAttributeMeta& meta) {
  if (meta.mechanism != nullptr) return meta.mechanism;
  return MakeMechanism(MechanismSpec{}, meta.p);
}

Result<GrrOutput> ApplyGrr(const Table& input, const GrrParams& params,
                           const GrrOptions& options, Rng& rng) {
  if (input.num_rows() == 0) {
    return Status::InvalidArgument("cannot privatize an empty relation");
  }
  PCLEAN_RETURN_NOT_OK(ValidateMechanismSpec(options.mechanism));
  GrrOutput out;
  out.table = input.Clone();
  out.metadata.dataset_size = input.num_rows();
  out.metadata.mechanism_spec = options.mechanism;

  const Schema& schema = input.schema();
  for (size_t i = 0; i < schema.num_fields(); ++i) {
    const Field& field = schema.field(i);
    const std::string& name = field.name;

    if (field.kind == AttributeKind::kDiscrete) {
      double p;
      if (auto it = params.discrete_p.find(name);
          it != params.discrete_p.end()) {
        p = it->second;
      } else if (params.default_p >= 0.0) {
        p = params.default_p;
      } else {
        return Status::InvalidArgument(
            "no randomization probability for discrete attribute '" + name +
            "' (a non-private column would de-privatize the relation)");
      }
      auto mechanism = MakeMechanism(options.mechanism, p);
      if (!mechanism.ok()) {
        return Status::InvalidArgument("attribute '" + name + "': " +
                                       mechanism.status().message());
      }
      PCLEAN_ASSIGN_OR_RETURN(
          Domain domain,
          Domain::FromColumn(input, name, /*include_null=*/true));
      if (domain.empty()) {
        return Status::FailedPrecondition("attribute '" + name +
                                          "' has an empty domain");
      }

      PCLEAN_RETURN_NOT_OK(RandomizeDiscreteColumn(
          out.table.mutable_column(i), input.column(i), domain,
          **mechanism, name, options, rng, &out.total_regenerations));
      out.metadata.discrete.emplace(
          name, DiscreteAttributeMeta{p, std::move(domain),
                                      std::move(mechanism).ValueOrDie()});
    } else {
      double b;
      if (auto it = params.numeric_b.find(name);
          it != params.numeric_b.end()) {
        b = it->second;
      } else if (params.default_b >= 0.0) {
        b = params.default_b;
      } else {
        return Status::InvalidArgument(
            "no Laplace scale for numerical attribute '" + name +
            "' (a non-private column would de-privatize the relation)");
      }
      PCLEAN_ASSIGN_OR_RETURN(
          double delta, ColumnSensitivity(input.column(i), options.exec));
      // The numeric kernel is parameterized by b alone; bind the family
      // with a neutral per-attribute parameter.
      PCLEAN_ASSIGN_OR_RETURN(MechanismPtr numeric_mechanism,
                              MakeMechanism(options.mechanism, 0.0));
      PCLEAN_RETURN_NOT_OK(NoiseNumericColumn(out.table.mutable_column(i),
                                              *numeric_mechanism, b, options,
                                              rng));
      out.metadata.numeric.emplace(name, NumericAttributeMeta{b, delta});
    }
  }
  return out;
}

}  // namespace privateclean
