#include "privacy/grr.h"

#include "privacy/laplace_mechanism.h"
#include "privacy/randomized_response.h"

namespace privateclean {

namespace {

/// True iff every value of `domain` appears in `column`.
bool DomainPreserved(const Column& column, const Domain& domain) {
  std::vector<uint8_t> seen(domain.size(), 0);
  size_t remaining = domain.size();
  for (size_t r = 0; r < column.size() && remaining > 0; ++r) {
    auto idx = domain.IndexOf(column.ValueAt(r));
    if (!idx.ok()) continue;  // Cannot happen for RR output; be safe.
    if (!seen[*idx]) {
      seen[*idx] = 1;
      --remaining;
    }
  }
  return remaining == 0;
}

}  // namespace

Result<GrrOutput> ApplyGrr(const Table& input, const GrrParams& params,
                           const GrrOptions& options, Rng& rng) {
  if (input.num_rows() == 0) {
    return Status::InvalidArgument("cannot privatize an empty relation");
  }
  GrrOutput out;
  out.table = input.Clone();
  out.metadata.dataset_size = input.num_rows();

  const Schema& schema = input.schema();
  for (size_t i = 0; i < schema.num_fields(); ++i) {
    const Field& field = schema.field(i);
    const std::string& name = field.name;

    if (field.kind == AttributeKind::kDiscrete) {
      double p;
      if (auto it = params.discrete_p.find(name);
          it != params.discrete_p.end()) {
        p = it->second;
      } else if (params.default_p >= 0.0) {
        p = params.default_p;
      } else {
        return Status::InvalidArgument(
            "no randomization probability for discrete attribute '" + name +
            "' (a non-private column would de-privatize the relation)");
      }
      if (!(p >= 0.0 && p <= 1.0)) {
        return Status::InvalidArgument("p for '" + name +
                                       "' must be in [0, 1]");
      }
      PCLEAN_ASSIGN_OR_RETURN(
          Domain domain,
          Domain::FromColumn(input, name, /*include_null=*/true));
      if (domain.empty()) {
        return Status::FailedPrecondition("attribute '" + name +
                                          "' has an empty domain");
      }

      Column* col = out.table.mutable_column(i);
      const Column& original = input.column(i);
      size_t attempts = 0;
      for (;;) {
        PCLEAN_RETURN_NOT_OK(ApplyRandomizedResponse(col, domain, p, rng));
        if (!options.ensure_domain_preserved || p == 0.0 ||
            DomainPreserved(*col, domain)) {
          break;
        }
        ++attempts;
        ++out.total_regenerations;
        if (attempts >= options.max_regenerations) {
          return Status::FailedPrecondition(
              "attribute '" + name + "' failed domain preservation after " +
              std::to_string(attempts) +
              " regenerations; dataset likely violates the Theorem 2 size "
              "bound");
        }
        // Restore the original values and retry with fresh randomness.
        *col = original;
      }
      out.metadata.discrete.emplace(
          name, DiscreteAttributeMeta{p, std::move(domain)});
    } else {
      double b;
      if (auto it = params.numeric_b.find(name);
          it != params.numeric_b.end()) {
        b = it->second;
      } else if (params.default_b >= 0.0) {
        b = params.default_b;
      } else {
        return Status::InvalidArgument(
            "no Laplace scale for numerical attribute '" + name +
            "' (a non-private column would de-privatize the relation)");
      }
      PCLEAN_ASSIGN_OR_RETURN(double delta, ColumnSensitivity(input.column(i)));
      PCLEAN_RETURN_NOT_OK(
          ApplyLaplaceMechanism(out.table.mutable_column(i), b, rng));
      out.metadata.numeric.emplace(name, NumericAttributeMeta{b, delta});
    }
  }
  return out;
}

}  // namespace privateclean
