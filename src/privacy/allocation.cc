#include "privacy/allocation.h"

#include <cmath>

#include "privacy/laplace_mechanism.h"

namespace privateclean {

namespace {

/// The per-attribute mechanism parameter that spends a discrete ε share
/// under the given family (see the header for the per-family math).
Result<double> DiscreteParamForShare(const MechanismSpec& mechanism,
                                     double eps_i) {
  if (mechanism.name == "hlm") return eps_i;
  if (mechanism.name == "sampling") {
    double beta = 1.0;
    if (auto it = mechanism.params.find("beta");
        it != mechanism.params.end()) {
      beta = it->second;
    }
    // Invert the amplification bound ε_i = ln(1 + β(e^{ε0} − 1)); the
    // log1p/expm1 forms keep small budgets accurate.
    double inner = std::log1p(std::expm1(eps_i) / beta);
    return RandomizationForEpsilon(inner);
  }
  return RandomizationForEpsilon(eps_i);
}

}  // namespace

Result<GrrParams> AllocateEpsilonBudget(
    const Table& table, double total_epsilon,
    const std::unordered_map<std::string, double>& weights,
    const MechanismSpec& mechanism) {
  PCLEAN_RETURN_NOT_OK(ValidateMechanismSpec(mechanism));
  if (!(total_epsilon > 0.0)) {
    return Status::InvalidArgument("total epsilon budget must be > 0");
  }
  const Schema& schema = table.schema();
  if (schema.num_fields() == 0) {
    return Status::InvalidArgument("relation has no attributes");
  }
  for (const auto& [name, weight] : weights) {
    if (!schema.HasField(name)) {
      return Status::NotFound("weight given for unknown attribute '" +
                              name + "'");
    }
    if (!(weight > 0.0)) {
      return Status::InvalidArgument("weight for '" + name +
                                     "' must be > 0");
    }
  }

  double total_weight = 0.0;
  for (size_t i = 0; i < schema.num_fields(); ++i) {
    auto it = weights.find(schema.field(i).name);
    total_weight += it != weights.end() ? it->second : 1.0;
  }

  GrrParams params;
  for (size_t i = 0; i < schema.num_fields(); ++i) {
    const Field& field = schema.field(i);
    auto it = weights.find(field.name);
    double weight = it != weights.end() ? it->second : 1.0;
    double eps_i = total_epsilon * weight / total_weight;
    if (field.kind == AttributeKind::kDiscrete) {
      PCLEAN_ASSIGN_OR_RETURN(double p,
                              DiscreteParamForShare(mechanism, eps_i));
      params.discrete_p.emplace(field.name, p);
    } else {
      PCLEAN_ASSIGN_OR_RETURN(double delta,
                              ColumnSensitivity(table.column(i)));
      if (delta == 0.0) {
        // Constant column: carries no information, any noise works.
        params.numeric_b.emplace(field.name, 0.0);
      } else {
        PCLEAN_ASSIGN_OR_RETURN(double b,
                                LaplaceScaleForEpsilon(delta, eps_i));
        params.numeric_b.emplace(field.name, b);
      }
    }
  }
  return params;
}

}  // namespace privateclean
