#ifndef PRIVATECLEAN_PRIVACY_LEDGER_H_
#define PRIVATECLEAN_PRIVACY_LEDGER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "common/result.h"
#include "common/status.h"

namespace privateclean {

/// One tenant's ε allowance: how much has been granted (initial grants
/// plus gradual-release top-ups) and how much queries have spent.
struct TenantBudget {
  double granted = 0.0;
  double spent = 0.0;
  double remaining() const { return granted - spent; }
};

/// Crash-safe per-tenant ε-budget ledger.
///
/// The ledger is the durable source of truth for privacy accounting: a
/// query's ε cost must be charged here — and be on disk — before the
/// query executes, so a crash can never forget a spend that a tenant
/// was already served an answer for.
///
/// ## On-disk format
///
/// Two files inside the ledger directory:
///
///   ledger.wal   append-only log of CRC32C-framed records. One frame is
///                `<crc32c-hex8> <payload-len> <payload>\n` where the CRC
///                covers exactly the payload bytes, and the payload is
///                `<seq> <op> <epsilon-bits-hex16> <tenant>` (op one of
///                grant/relax/charge; the ε is stored as the hex of its
///                IEEE-754 bit pattern so replay is bit-exact).
///   ledger.ckpt  a compacted snapshot: `%PCLEAN-LEDGER` magic, the last
///                sequence number it covers, one line per tenant, and a
///                self-checksum trailer. Written to a temp sibling and
///                published by atomic rename, like a release MANIFEST.
///
/// ## Commit protocol (group commit)
///
/// Mutations append a frame and return only after an fsync barrier has
/// made it durable. Concurrent mutations batch: whichever thread finds
/// no commit in flight becomes the leader, drains the whole queue with
/// one append and ONE fsync, and wakes the followers. Commit order is
/// sequence order, so the WAL bytes are a serialization of the applied
/// records. After the fsync the leader cross-checks the WAL length
/// against the expected offset, so even a silently short append (a
/// lying device) fails the commit instead of acknowledging a spend the
/// disk never took.
///
/// A failed commit *wounds* the ledger: the in-memory image may disagree
/// with disk, so every later operation returns FailedPrecondition until
/// the caller reopens (recovery re-derives truth from disk). This is the
/// fail-stop stance of the monotonicity invariant: after any crash or
/// wound, recovered spend is never LESS than what was acknowledged, and
/// exceeds it by at most the records in the one commit that was in
/// flight.
///
/// ## Recovery
///
/// Open() loads the checkpoint (if any), then replays WAL frames with
/// seq greater than the checkpoint's. A frame that runs past EOF is a
/// torn tail: recovery truncates the file back to the last whole frame
/// and continues — re-crashing during recovery and recovering again
/// yields the identical state, because truncation is idempotent. A
/// damaged frame with bytes beyond it (bit flip mid-log) is NOT a tear a
/// crash could produce in an append-only file, so recovery refuses with
/// DataLoss naming the file and byte offset rather than silently
/// dropping acknowledged spend.
///
/// Failpoint sites: ledger.wal.append, ledger.wal.short,
/// ledger.wal.fsync, ledger.ckpt.write, ledger.ckpt.rename,
/// ledger.recover.open, ledger.recover.torn, ledger.recover.bitflip.
///
/// Thread-safe; all methods may be called concurrently.
class BudgetLedger {
 public:
  struct Options {
    /// When false, every mutation pays its own fsync even if others are
    /// queued (the benchmark baseline). Group commit stays correct
    /// either way; this only widens the fsync barrier.
    bool group_commit = true;
    /// Compact the WAL into a fresh checkpoint after this many records
    /// accumulate past the last one. 0 disables automatic compaction
    /// (Checkpoint() can still be called explicitly).
    uint64_t checkpoint_every = 1024;
  };

  /// Opens (creating if absent) the ledger in `dir`, running recovery:
  /// checkpoint load, WAL replay, torn-tail repair. Typed failures:
  ///   DataLoss — mid-log corruption, naming the file and byte offset;
  ///   IOError  — the directory or files could not be read/repaired.
  static Result<BudgetLedger> Open(const std::string& dir,
                                   const Options& options);
  static Result<BudgetLedger> Open(const std::string& dir);

  /// Durably adds `epsilon` to `tenant`'s granted budget. `Relax` is the
  /// gradual-release alias: semantically identical on the ledger, but
  /// recorded with its own op so the WAL documents *why* the allowance
  /// grew (initial grant vs. a later loosening of the privacy stance).
  Status Grant(const std::string& tenant, double epsilon);
  Status Relax(const std::string& tenant, double epsilon);

  /// Durably charges `epsilon` against `tenant`'s remaining budget. The
  /// check-and-spend is atomic: concurrent charges cannot jointly
  /// overdraft. Typed failures:
  ///   ResourceExhausted  — the charge exceeds the remaining budget; the
  ///                        message names the tenant, spent, and
  ///                        remaining ε. Nothing is written.
  ///   FailedPrecondition — the ledger is wounded and must be reopened.
  Status Charge(const std::string& tenant, double epsilon);

  /// The tenant's current budget; NotFound if no grant ever named them.
  Result<TenantBudget> Budget(const std::string& tenant) const;

  /// Budget() with the NotFound case folded to an all-zero budget — the
  /// natural reading for display paths, where a tenant the ledger has
  /// never seen simply has nothing granted and nothing spent. Intended
  /// for reporting right after a successful mutation (a wounded ledger
  /// returns the in-memory view, which may be ahead of what committed).
  TenantBudget BudgetOrZero(const std::string& tenant) const;

  /// All tenants, sorted by name.
  Result<std::map<std::string, TenantBudget>> Snapshot() const;

  /// Compacts the WAL into a fresh checkpoint: pending commits are
  /// flushed, the snapshot is written to a temp file and published by
  /// atomic rename, then the WAL is truncated to empty. A failure
  /// anywhere leaves the previous checkpoint + WAL pair intact (the
  /// ledger is NOT wounded — nothing was acknowledged on this path).
  Status Checkpoint();

  /// Sequence number of the last record assigned (0 = none yet).
  uint64_t last_seq() const;

  /// Records appended since the last checkpoint (drives auto-compaction;
  /// exposed for tests).
  uint64_t records_since_checkpoint() const;

  /// True once a commit failure has wounded the ledger (all mutations
  /// refuse until reopened).
  bool wounded() const;

  /// The ledger directory this instance serves.
  const std::string& dir() const;

  BudgetLedger(BudgetLedger&&) noexcept;
  BudgetLedger& operator=(BudgetLedger&&) noexcept;
  ~BudgetLedger();

  /// Implementation state (defined in ledger.cc).
  struct Rep;

 private:
  explicit BudgetLedger(std::unique_ptr<Rep> rep);
  std::unique_ptr<Rep> rep_;
};

}  // namespace privateclean

#endif  // PRIVATECLEAN_PRIVACY_LEDGER_H_
