#ifndef PRIVATECLEAN_PRIVACY_ALLOCATION_H_
#define PRIVATECLEAN_PRIVACY_ALLOCATION_H_

#include <string>
#include <unordered_map>

#include "common/result.h"
#include "privacy/mechanism.h"
#include "privacy/privacy_params.h"
#include "table/table.h"

namespace privateclean {

/// ε-budget allocation (paper §4.2.3, "Setting ε"): the provider fixes a
/// total privacy budget and splits it across attributes; Theorem 1's
/// composition then guarantees the released relation is
/// total_epsilon-locally-differentially-private.
///
/// Each attribute's share ε_i is converted to its mechanism parameter:
/// discrete attributes get p_i = 3/(exp(ε_i) + 2) (inverse of Lemma 1),
/// numerical attributes get b_j = Δ_j/ε_j with Δ_j the attribute's
/// observed sensitivity (Proposition 1).
///
/// `weights` optionally skews the split (keyed by attribute name;
/// missing attributes get weight 1). Shares are proportional to weight,
/// so AllocateEpsilonBudget(t, 3.0, {{"ssn", 0.5}}) gives the "ssn"
/// column half the ε (i.e. *more* privacy) of every other column.
///
/// `mechanism` converts each discrete share ε_i into the per-attribute
/// parameter of the requested family (default: the paper's GRR):
///  - "grr":      p_i = 3/(exp(ε_i) + 2), the paper inversion above.
///  - "hlm":      the parameter *is* the target ε_i; the mechanism
///                calibrates p_eff = N/(e^{ε_i} + N − 1) per attribute at
///                randomization time.
///  - "sampling": the share is spent through the amplification bound —
///                the inner budget is ε0 = ln(1 + (e^{ε_i} − 1)/β) and
///                p0_i = 3/(exp(ε0) + 2). Since amplification only ever
///                helps, the realized ε never exceeds the share.
/// Numerical attributes get b_j = Δ_j/ε_j under every family.
Result<GrrParams> AllocateEpsilonBudget(
    const Table& table, double total_epsilon,
    const std::unordered_map<std::string, double>& weights = {},
    const MechanismSpec& mechanism = MechanismSpec{});

}  // namespace privateclean

#endif  // PRIVATECLEAN_PRIVACY_ALLOCATION_H_
