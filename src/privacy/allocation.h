#ifndef PRIVATECLEAN_PRIVACY_ALLOCATION_H_
#define PRIVATECLEAN_PRIVACY_ALLOCATION_H_

#include <string>
#include <unordered_map>

#include "common/result.h"
#include "privacy/privacy_params.h"
#include "table/table.h"

namespace privateclean {

/// ε-budget allocation (paper §4.2.3, "Setting ε"): the provider fixes a
/// total privacy budget and splits it across attributes; Theorem 1's
/// composition then guarantees the released relation is
/// total_epsilon-locally-differentially-private.
///
/// Each attribute's share ε_i is converted to its mechanism parameter:
/// discrete attributes get p_i = 3/(exp(ε_i) + 2) (inverse of Lemma 1),
/// numerical attributes get b_j = Δ_j/ε_j with Δ_j the attribute's
/// observed sensitivity (Proposition 1).
///
/// `weights` optionally skews the split (keyed by attribute name;
/// missing attributes get weight 1). Shares are proportional to weight,
/// so AllocateEpsilonBudget(t, 3.0, {{"ssn", 0.5}}) gives the "ssn"
/// column half the ε (i.e. *more* privacy) of every other column.
Result<GrrParams> AllocateEpsilonBudget(
    const Table& table, double total_epsilon,
    const std::unordered_map<std::string, double>& weights = {});

}  // namespace privateclean

#endif  // PRIVATECLEAN_PRIVACY_ALLOCATION_H_
